#pragma once
// Tessellate tiling engines (paper §3.4; Yuan SC'17).
//
// Space-time is covered by triangles (stage 0) and inverted triangles
// (stage 1) per dimension; multidimensional domains use the tensor product
// of the per-dimension shapes, with one stage per subset of dimensions using
// the inverted profile, processed in subset order (DESIGN.md §6.3). All
// tiles within a stage are independent and run under `omp parallel for`.
//
// The engines are generic over the *advance* callback, which moves a region
// forward one time unit between the two Jacobi parity buffers. A unit is one
// time step for ordinary methods (slope = r) or one two-step pair for the
// unroll-and-jam scheme (slope = 2r) — the engine is agnostic.
//
// Boundary tiles do not shrink at physical domain edges (Dirichlet halo
// values are valid at every time level), making boundary triangles
// trapezoids; the seams between tiles are filled by inverted triangles.

#include <omp.h>

#include <utility>

#include "tsv/common/check.hpp"
#include "tsv/common/grid.hpp"

namespace tsv {

/// Half-open range of a (possibly boundary-extended) triangle tile at unit u.
inline std::pair<index, index> tri_range(index c, index ntiles, index n,
                                         index blk, index slope, index u) {
  const index lo = c * blk;
  const index hi = std::min(n, lo + blk);
  const index a = (c == 0) ? 0 : lo + slope * u;
  const index b = (c == ntiles - 1) ? n : hi - slope * u;
  return {a, std::min(b, n)};
}

/// Half-open range of the inverted triangle at seam m, unit u (empty at u=0).
inline std::pair<index, index> inv_range(index m, index n, index slope,
                                         index u) {
  return {std::max<index>(0, m - slope * u), std::min(n, m + slope * u)};
}

inline index tile_count(index n, index blk) { return (n + blk - 1) / blk; }

/// Validates a tiling configuration for one dimension.
inline void check_tile_dim(index n, index blk, index slope, index tau,
                           const char* dim) {
  require_fmt(blk > 0 && tau > 0, "tess: block and time range must be > 0 (",
              dim, ")");
  if (tile_count(n, blk) > 1)
    require_fmt(blk >= 2 * slope * tau, "tess: block ", blk, " in ", dim,
                " must be >= 2*slope*tau = ", 2 * slope * tau,
                " (shrinking triangles must not invert)");
}

// ---------------------------------------------------------------------------
// 1D engine. Also drives SDSL's split tiling (domain = DLT columns) and the
// outer-dimension-only hybrid tilings, since the domain length is explicit.
// ---------------------------------------------------------------------------

/// Advances @p units time units; A holds even-parity units, B odd. The
/// result is guaranteed to end in A. adv(in, out, lo, hi) advances one unit.
template <typename GridT, typename AdvanceFn>
void tess1d_engine(GridT& A, GridT& B, index domain, index units, index tau,
                   index slope, index blk, AdvanceFn&& adv) {
  check_tile_dim(domain, blk, slope, tau, "x");
  const index ntiles = tile_count(domain, blk);
  index parity = 0;
  auto in_buf = [&](index u) -> const GridT& {
    return ((parity + u) % 2 == 0) ? A : B;
  };
  auto out_buf = [&](index u) -> GridT& {
    return ((parity + u + 1) % 2 == 0) ? A : B;
  };

  index done = 0;
  while (done < units) {
    const index t = std::min(tau, units - done);
    // Static schedule on purpose: the legality bound (blk >= 2*slope*tau)
    // makes every interior tile's work identical at each unit, and the
    // boundary trapezoids differ by at most slope*tau cells — so there is
    // nothing for a dynamic scheduler to balance. Static dispatch drops the
    // per-tile queue traffic and keeps the tile->thread mapping stable
    // across time blocks, which is what the workspace first-touch relies
    // on for NUMA locality. (fig8/fig9 smoke showed parity-or-better on
    // this box; the ragged-tile split engine in tiling/tiled.hpp is the
    // one place dynamic stays.)
#pragma omp parallel for schedule(static)
    for (index c = 0; c < ntiles; ++c)
      for (index u = 0; u < t; ++u) {
        const auto [a, b] = tri_range(c, ntiles, domain, blk, slope, u);
        if (a < b) adv(in_buf(u), out_buf(u), a, b);
      }
#pragma omp parallel for schedule(static)
    for (index c = 1; c < ntiles; ++c)
      for (index u = 1; u < t; ++u) {
        const auto [a, b] = inv_range(c * blk, domain, slope, u);
        if (a < b) adv(in_buf(u), out_buf(u), a, b);
      }
    parity += t;
    done += t;
  }
  if (parity % 2 != 0) A.swap_storage(B);
}

// ---------------------------------------------------------------------------
// 2D engine: four tensor-product stages.
// ---------------------------------------------------------------------------

template <typename GridT, typename AdvanceFn>
void tess2d_engine(GridT& A, GridT& B, index units,
                   index tau, index slope, index bx, index by,
                   AdvanceFn&& adv) {
  const index nx = A.nx(), ny = A.ny();
  check_tile_dim(nx, bx, slope, tau, "x");
  check_tile_dim(ny, by, slope, tau, "y");
  const index cx = tile_count(nx, bx), cy = tile_count(ny, by);
  index parity = 0;
  auto in_buf = [&](index u) -> const GridT& {
    return ((parity + u) % 2 == 0) ? A : B;
  };
  auto out_buf = [&](index u) -> GridT& {
    return ((parity + u + 1) % 2 == 0) ? A : B;
  };

  index done = 0;
  while (done < units) {
    const index t = std::min(tau, units - done);
    for (int mask = 0; mask < 4; ++mask) {
      const bool ix = mask & 1, iy = mask & 2;  // inverted profile per dim?
      const index n_x = ix ? cx - 1 : cx;
      const index n_y = iy ? cy - 1 : cy;
      if (n_x <= 0 || n_y <= 0) continue;
      const index u0 = (mask == 0) ? 0 : 1;
      // Static for the same homogeneity reason as tess1d_engine above.
#pragma omp parallel for collapse(2) schedule(static)
      for (index tx = 0; tx < n_x; ++tx)
        for (index ty = 0; ty < n_y; ++ty)
          for (index u = u0; u < t; ++u) {
            const auto xr = ix ? inv_range((tx + 1) * bx, nx, slope, u)
                               : tri_range(tx, cx, nx, bx, slope, u);
            const auto yr = iy ? inv_range((ty + 1) * by, ny, slope, u)
                               : tri_range(ty, cy, ny, by, slope, u);
            if (xr.first < xr.second && yr.first < yr.second)
              adv(in_buf(u), out_buf(u), xr.first, xr.second, yr.first,
                  yr.second);
          }
    }
    parity += t;
    done += t;
  }
  if (parity % 2 != 0) A.swap_storage(B);
}

// ---------------------------------------------------------------------------
// 3D engine: eight tensor-product stages.
// ---------------------------------------------------------------------------

template <typename GridT, typename AdvanceFn>
void tess3d_engine(GridT& A, GridT& B, index units,
                   index tau, index slope, index bx, index by, index bz,
                   AdvanceFn&& adv) {
  const index nx = A.nx(), ny = A.ny(), nz = A.nz();
  check_tile_dim(nx, bx, slope, tau, "x");
  check_tile_dim(ny, by, slope, tau, "y");
  check_tile_dim(nz, bz, slope, tau, "z");
  const index cx = tile_count(nx, bx), cy = tile_count(ny, by),
              cz = tile_count(nz, bz);
  index parity = 0;
  auto in_buf = [&](index u) -> const GridT& {
    return ((parity + u) % 2 == 0) ? A : B;
  };
  auto out_buf = [&](index u) -> GridT& {
    return ((parity + u + 1) % 2 == 0) ? A : B;
  };

  index done = 0;
  while (done < units) {
    const index t = std::min(tau, units - done);
    for (int mask = 0; mask < 8; ++mask) {
      const bool ix = mask & 1, iy = mask & 2, iz = mask & 4;
      const index n_x = ix ? cx - 1 : cx;
      const index n_y = iy ? cy - 1 : cy;
      const index n_z = iz ? cz - 1 : cz;
      if (n_x <= 0 || n_y <= 0 || n_z <= 0) continue;
      const index u0 = (mask == 0) ? 0 : 1;
      // Static for the same homogeneity reason as tess1d_engine above.
#pragma omp parallel for collapse(3) schedule(static)
      for (index tx = 0; tx < n_x; ++tx)
        for (index ty = 0; ty < n_y; ++ty)
          for (index tz = 0; tz < n_z; ++tz)
            for (index u = u0; u < t; ++u) {
              const auto xr = ix ? inv_range((tx + 1) * bx, nx, slope, u)
                                 : tri_range(tx, cx, nx, bx, slope, u);
              const auto yr = iy ? inv_range((ty + 1) * by, ny, slope, u)
                                 : tri_range(ty, cy, ny, by, slope, u);
              const auto zr = iz ? inv_range((tz + 1) * bz, nz, slope, u)
                                 : tri_range(tz, cz, nz, bz, slope, u);
              if (xr.first < xr.second && yr.first < yr.second &&
                  zr.first < zr.second)
                adv(in_buf(u), out_buf(u), xr.first, xr.second, yr.first,
                    yr.second, zr.first, zr.second);
            }
    }
    parity += t;
    done += t;
  }
  if (parity % 2 != 0) A.swap_storage(B);
}

}  // namespace tsv
