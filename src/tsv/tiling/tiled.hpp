#pragma once
// Tiled method drivers: each paper method composed with its tiling framework.
//
//  * tess_autovec_run      — "Tessellation" baseline (Yuan SC'17): tessellate
//                            tiling + compiler-vectorized kernels.
//  * tess_multiload/reorg  — ablation variants.
//  * tess_transpose_run    — the paper's scheme ("Our"): tessellate tiling +
//                            transpose-layout vector sets; partial sets at
//                            moving tile edges via the layout index map.
//  * tess_transpose_uj2_run— "Our (2 steps)": tessellation at two-step *pair*
//                            granularity (triangle slope 2r per pair, paper
//                            Fig. 5); the intermediate odd time level lives
//                            only in a per-thread L1/L2 scratch, so main
//                            memory sees one read + one write per two steps.
//  * sdsl_run              — SDSL baseline (Henretty ICS'13): DLT layout +
//                            split tiling (1D: triangles over DLT columns
//                            with a wrapped seam at the lane boundary;
//                            2D/3D: hybrid tiling — outer-dimension
//                            tessellation over full DLT rows/planes).
//
// Every driver is generic over the element type: the V-parameterized ones
// compute in vec_value_t<V>, the autovec ones in the grid's own T.
//
// Memory behaviour: every buffer a driver needs beyond the user's grid —
// the tessellation parity buffer, DLT staging grids, per-thread uj2 scratch
// pools — comes from the plan-owned Workspace (core/workspace.hpp), so the
// second and subsequent executes of a plan are allocation-free. Parity /
// staging buffers only need their *halo* refreshed per execute (every time
// unit rewrites the whole interior before reading it); per-thread pools are
// first-touched by their owning threads. Each driver also has a
// self-contained overload (local Workspace) for direct/test use.
// The @p stream flag (plan-resolved; see ResolvedOptions::streaming) selects
// non-temporal write-back in the vector sweeps — only ever enabled when the
// working set exceeds the LLC threshold and the temporal block is 1, i.e.
// when there is no cache reuse for regular stores to protect.

#include <omp.h>

#include <vector>

#include "tsv/core/workspace.hpp"
#include "tsv/tiling/tess.hpp"
#include "tsv/vectorize/autovec.hpp"
#include "tsv/vectorize/dlt_method.hpp"
#include "tsv/vectorize/multiload.hpp"
#include "tsv/vectorize/reorg.hpp"
#include "tsv/vectorize/unroll_jam.hpp"

namespace tsv {

// ---------------------------------------------------------------------------
// 1D drivers
// ---------------------------------------------------------------------------

template <int R, typename T>
TSV_NOINLINE void tess_autovec_run(Grid1D<T>& g, const Stencil1D<R, T>& s, index steps,
                      index bx, index bt, Workspace& ws) {
  Grid1D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess1d_engine(g, tmp, g.nx(), steps, bt, R, bx,
                [&](const Grid1D<T>& in, Grid1D<T>& out, index lo,
                    index hi) { autovec_step_region(in, out, s, lo, hi); });
}

template <int R, typename T>
void tess_autovec_run(Grid1D<T>& g, const Stencil1D<R, T>& s, index steps,
                      index bx, index bt) {
  Workspace ws;
  tess_autovec_run(g, s, steps, bx, bt, ws);
}

template <typename V, int R>
TSV_NOINLINE void tess_multiload_run(Grid1D<vec_value_t<V>>& g,
                        const Stencil1D<R, vec_value_t<V>>& s, index steps,
                        index bx, index bt, Workspace& ws) {
  using T = vec_value_t<V>;
  Grid1D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess1d_engine(g, tmp, g.nx(), steps, bt, R, bx,
                [&](const Grid1D<T>& in, Grid1D<T>& out, index lo,
                    index hi) { multiload_step_region<V>(in, out, s, lo, hi); });
}

template <typename V, int R>
void tess_multiload_run(Grid1D<vec_value_t<V>>& g,
                        const Stencil1D<R, vec_value_t<V>>& s, index steps,
                        index bx, index bt) {
  Workspace ws;
  tess_multiload_run<V>(g, s, steps, bx, bt, ws);
}

template <typename V, int R>
TSV_NOINLINE void tess_reorg_run(Grid1D<vec_value_t<V>>& g,
                    const Stencil1D<R, vec_value_t<V>>& s, index steps,
                    index bx, index bt, Workspace& ws) {
  using T = vec_value_t<V>;
  Grid1D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess1d_engine(g, tmp, g.nx(), steps, bt, R, bx,
                [&](const Grid1D<T>& in, Grid1D<T>& out, index lo,
                    index hi) { reorg_step_region<V>(in, out, s, lo, hi); });
}

template <typename V, int R>
void tess_reorg_run(Grid1D<vec_value_t<V>>& g,
                    const Stencil1D<R, vec_value_t<V>>& s, index steps,
                    index bx, index bt) {
  Workspace ws;
  tess_reorg_run<V>(g, s, steps, bx, bt, ws);
}

template <typename V, int R>
TSV_NOINLINE void tess_transpose_run(Grid1D<vec_value_t<V>>& g,
                        const Stencil1D<R, vec_value_t<V>>& s, index steps,
                        index bx, index bt, Workspace& ws,
                        bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  block_transpose_grid<T, W>(g);
  {
    Grid1D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
    tmp.copy_halo_from(g);
    const index nx = g.nx();
    const auto sweep = stream ? &transpose_sweep_row_region<V, R, 1, true>
                              : &transpose_sweep_row_region<V, R, 1, false>;
    tess1d_engine(g, tmp, nx, steps, bt, R, bx,
                  [&](const Grid1D<T>& in, Grid1D<T>& out, index lo,
                      index hi) {
                    sweep({in.x0()}, out.x0(), {s.w}, nx, lo, hi);
                    if (stream) stream_fence();  // once per region
                  });
  }
  block_transpose_grid<T, W>(g);
}

template <typename V, int R>
void tess_transpose_run(Grid1D<vec_value_t<V>>& g,
                        const Stencil1D<R, vec_value_t<V>>& s, index steps,
                        index bx, index bt) {
  Workspace ws;
  tess_transpose_run<V>(g, s, steps, bx, bt, ws);
}

/// "Our (2 steps)" with tiling: pair-granular tessellation. @p bt is the time
/// range in *steps* (must be even when tiling is active).
template <typename V, int R>
TSV_NOINLINE void tess_transpose_uj2_run(Grid1D<vec_value_t<V>>& g,
                            const Stencil1D<R, vec_value_t<V>>& s,
                            index steps, index bx, index bt, Workspace& ws) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  constexpr index B = block_elems<W>;
  detail::require_transpose_conforming(g, W);
  require_fmt(bt % 2 == 0, "uj2 tiling: time range bt=", bt, " must be even");
  const index nx = g.nx();

  block_transpose_grid<T, W>(g);
  {
    Grid1D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
    tmp.copy_halo_from(g);
    // Per-thread scratch for the transient odd level of one tile region,
    // first-touched by its owning thread (static schedule = thread i zeroes
    // pool[i] when the team matches, which is how the tile loops index it).
    // The lead halo must cover the deepest left-tail vector load of the
    // second sweep — R*W elements before the first touched block when the
    // virtual row origin sits below x = 0 of the scratch.
    const index scr_len = bx + 2 * B + 2 * R + 16;
    const index scr_halo = std::max<index>(static_cast<index>(R) * W, 8);
    const int nthreads = omp_get_max_threads();
    using Pool = std::vector<detail::ScratchRow<T>>;
    Pool& pool = ws.slot<Pool>(
        kWsScratchPool, ws_key(scr_len, scr_halo, nthreads), [&] {
          Pool p(static_cast<std::size_t>(nthreads));
          for (auto& q : p)
            q = detail::ScratchRow<T>(scr_len, scr_halo, FirstTouch::kNone);
#pragma omp parallel for schedule(static)
          for (int i = 0; i < nthreads; ++i) p[i].zero();
          return p;
        });

    auto pair_adv = [&](const Grid1D<T>& in, Grid1D<T>& out,
                        index lo, index hi) {
      detail::ScratchRow<T>& scr = pool[omp_get_thread_num()];
      const index c_lo = std::max<index>(0, lo - R);
      const index c_hi = std::min(nx, hi + R);
      const index b0 = c_lo / B * B;
      T* view = scr.x0() - b0;  // virtual row origin, block-aligned
      if (c_lo == 0)
        for (index l = 1; l <= R; ++l) view[-l] = in.x0()[-l];
      if (c_hi == nx)
        for (index l = 0; l < R; ++l) view[nx + l] = in.x0()[nx + l];
      // Level +1 (odd, transient) over the extended range into scratch.
      transpose_sweep_row_region<V, R, 1>({in.x0()}, view, {s.w}, nx, c_lo,
                                          c_hi);
      // Level +2 over the store range into the opposite parity buffer.
      transpose_sweep_row_region<V, R, 1>({view}, out.x0(), {s.w}, nx, lo, hi);
    };

    const index pairs = steps / 2;
    if (pairs > 0)
      tess1d_engine(g, tmp, nx, pairs, std::max<index>(1, bt / 2), 2 * R, bx,
                    pair_adv);
    if (steps % 2 != 0)  // odd tail: one ordinary tiled step
      tess1d_engine(g, tmp, nx, 1, 1, R, bx,
                    [&](const Grid1D<T>& in, Grid1D<T>& out,
                        index lo, index hi) {
                      transpose_sweep_row_region<V, R, 1>(
                          {in.x0()}, out.x0(), {s.w}, nx, lo, hi);
                    });
  }
  block_transpose_grid<T, W>(g);
}

template <typename V, int R>
void tess_transpose_uj2_run(Grid1D<vec_value_t<V>>& g,
                            const Stencil1D<R, vec_value_t<V>>& s,
                            index steps, index bx, index bt) {
  Workspace ws;
  tess_transpose_uj2_run<V>(g, s, steps, bx, bt, ws);
}

/// Split-tiling engine over DLT columns: like tess1d_engine, but *all* tiles
/// shrink (the domain ends are not physical boundaries — columns 0 and L-1
/// are coupled through the lane seam) and the seam set includes the wrapped
/// seam at column 0/L, processed as two ranges.
///
/// Both stage loops stay schedule(dynamic): the last tile may be ragged
/// (tile_count rounds up) and tile 0 of the seam stage does the wrapped
/// seam's two disjoint ranges, so per-tile work is NOT homogeneous here —
/// unlike the tessellate engines (see tess.hpp), where the legality bound
/// makes all interior tiles identical and static scheduling measured no
/// worse while saving the dynamic dispatch.
template <typename GridT, typename AdvanceFn>
void split1d_wrap_engine(GridT& A, GridT& B, index domain, index units,
                         index tau, index slope, index blk, AdvanceFn&& adv) {
  const index ntiles = tile_count(domain, blk);
  // Every tile, including a ragged last one, must be wide enough that the
  // inverted seams (and the wrapped seam) never overlap. tau == 1 degenerates
  // to plain full sweeps with no cross-tile dependencies and is always legal.
  const index last_tile = domain - (ntiles - 1) * blk;
  if (tau > 1)
    require_fmt(std::min(blk, last_tile) >= 2 * slope * tau &&
                    domain >= 2 * slope * tau,
                "split tiling: tile/domain too small for tau=", tau);
  index parity = 0;
  auto in_buf = [&](index u) -> const GridT& {
    return ((parity + u) % 2 == 0) ? A : B;
  };
  auto out_buf = [&](index u) -> GridT& {
    return ((parity + u + 1) % 2 == 0) ? A : B;
  };
  index done = 0;
  while (done < units) {
    const index t = std::min(tau, units - done);
#pragma omp parallel for schedule(dynamic)
    for (index c = 0; c < ntiles; ++c)
      for (index u = 0; u < t; ++u) {
        const index lo = c * blk, hi = std::min(domain, lo + blk);
        const index a = lo + slope * u, b = hi - slope * u;
        if (a < b) adv(in_buf(u), out_buf(u), a, b);
      }
#pragma omp parallel for schedule(dynamic)
    for (index c = 0; c < ntiles; ++c)
      for (index u = 1; u < t; ++u) {
        if (c == 0) {  // wrapped seam: both domain ends, same level
          adv(in_buf(u), out_buf(u), 0, std::min(domain, slope * u));
          adv(in_buf(u), out_buf(u), std::max<index>(0, domain - slope * u),
              domain);
        } else {
          const index m = c * blk;
          adv(in_buf(u), out_buf(u), std::max<index>(0, m - slope * u),
              std::min(domain, m + slope * u));
        }
      }
    parity += t;
    done += t;
  }
  if (parity % 2 != 0) A.swap_storage(B);
}

/// SDSL baseline, 1D: DLT layout + split tiling over columns. @p bi is the
/// tile size in columns (elements / W).
template <typename V, int R>
TSV_NOINLINE void sdsl_run(Grid1D<vec_value_t<V>>& g,
              const Stencil1D<R, vec_value_t<V>>& s, index steps, index bi,
              index bt, Workspace& ws, bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  require_fmt(g.nx() % W == 0, "SDSL/DLT requires nx % W == 0");
  const index nx = g.nx();
  const index L = nx / W;
  // Clamp the temporal range so the inverted seams fit the smallest tile
  // (ragged last tiles would otherwise make seam regions overlap the wrap).
  const index ntiles = tile_count(L, bi);
  const index last_tile = L - (ntiles - 1) * bi;
  const index tau =
      std::max<index>(1, std::min(bt, std::min(bi, last_tile) / (2 * R)));
  Grid1D<T>& dltA = ws_grid_like(ws, kWsDltA, g);
  dltA.copy_halo_from(g);
  dlt_forward_grid<T, W>(g, dltA);
  Grid1D<T>& dltB = ws_grid_like(ws, kWsDltB, g);
  dltB.copy_halo_from(dltA);
  // The plan only resolves stream=true at bt == 1, where tau clamps to 1 —
  // every sweep is then a full pass with no cross-unit cache reuse.
  const auto sweep = stream ? &dlt_sweep_row_region<V, R, 1, true>
                            : &dlt_sweep_row_region<V, R, 1, false>;
  split1d_wrap_engine(dltA, dltB, L, steps, tau, R, bi,
                      [&](const Grid1D<T>& in, Grid1D<T>& out,
                          index ilo, index ihi) {
                        sweep({in.x0()}, out.x0(), {s.w}, nx, ilo, ihi);
                        if (stream) stream_fence();  // once per region
                      });
  dlt_backward_grid<T, W>(dltA, g);
}

template <typename V, int R>
void sdsl_run(Grid1D<vec_value_t<V>>& g,
              const Stencil1D<R, vec_value_t<V>>& s, index steps, index bi,
              index bt) {
  Workspace ws;
  sdsl_run<V>(g, s, steps, bi, bt, ws);
}

// ---------------------------------------------------------------------------
// 2D drivers
// ---------------------------------------------------------------------------

template <int R, int NR, typename T>
TSV_NOINLINE void tess_autovec_run(Grid2D<T>& g, const Stencil2D<R, NR, T>& s,
                      index steps, index bx, index by, index bt,
                      Workspace& ws) {
  Grid2D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess2d_engine(g, tmp, steps, bt, R, bx, by,
                [&](const Grid2D<T>& in, Grid2D<T>& out, index xlo,
                    index xhi, index ylo, index yhi) {
                  autovec_step_region(in, out, s, xlo, xhi, ylo, yhi);
                });
}

template <int R, int NR, typename T>
void tess_autovec_run(Grid2D<T>& g, const Stencil2D<R, NR, T>& s,
                      index steps, index bx, index by, index bt) {
  Workspace ws;
  tess_autovec_run(g, s, steps, bx, by, bt, ws);
}

template <typename V, int R, int NR>
TSV_NOINLINE void tess_transpose_run(Grid2D<vec_value_t<V>>& g,
                        const Stencil2D<R, NR, vec_value_t<V>>& s,
                        index steps, index bx, index by, index bt,
                        Workspace& ws, bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  block_transpose_grid<T, W>(g);
  {
    Grid2D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
    tmp.copy_halo_from(g);
    const index nx = g.nx();
    std::array<std::array<T, 2 * R + 1>, NR> w;
    for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
    const auto sweep = stream ? &transpose_sweep_row_region<V, R, NR, true>
                              : &transpose_sweep_row_region<V, R, NR, false>;
    tess2d_engine(g, tmp, steps, bt, R, bx, by,
                  [&](const Grid2D<T>& in, Grid2D<T>& out, index xlo,
                      index xhi, index ylo, index yhi) {
                    for (index y = ylo; y < yhi; ++y) {
                      std::array<const T*, NR> rp;
                      for (int r = 0; r < NR; ++r)
                        rp[r] = in.row(y + s.rows[r].dy);
                      sweep(rp, out.row(y), w, nx, xlo, xhi);
                    }
                    if (stream) stream_fence();  // once per region
                  });
  }
  block_transpose_grid<T, W>(g);
}

template <typename V, int R, int NR>
void tess_transpose_run(Grid2D<vec_value_t<V>>& g,
                        const Stencil2D<R, NR, vec_value_t<V>>& s,
                        index steps, index bx, index by, index bt) {
  Workspace ws;
  tess_transpose_run<V>(g, s, steps, bx, by, bt, ws);
}

template <typename V, int R, int NR>
TSV_NOINLINE void tess_transpose_uj2_run(Grid2D<vec_value_t<V>>& g,
                            const Stencil2D<R, NR, vec_value_t<V>>& s,
                            index steps, index bx, index by, index bt,
                            Workspace& ws) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  require_fmt(bt % 2 == 0, "uj2 tiling: time range bt=", bt, " must be even");
  const index nx = g.nx(), ny = g.ny();
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);

  block_transpose_grid<T, W>(g);
  {
    Grid2D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
    tmp.copy_halo_from(g);
    const index scr_ny = std::min(ny, by) + 2 * R + 4;
    const int nthreads = omp_get_max_threads();
    using Pool = std::vector<Grid2D<T>>;
    Pool& pool = ws.slot<Pool>(
        kWsScratchPool, ws_key(nx, scr_ny, R, nthreads), [&] {
          Pool p;
          p.reserve(static_cast<std::size_t>(nthreads));
          for (int i = 0; i < nthreads; ++i)
            p.emplace_back(nx, scr_ny, std::max<index>(R, 1),
                           FirstTouch::kNone);
#pragma omp parallel for schedule(static)
          for (int i = 0; i < nthreads; ++i) p[i].zero();
          return p;
        });

    auto pair_adv = [&](const Grid2D<T>& in, Grid2D<T>& out,
                        index xlo, index xhi, index ylo, index yhi) {
      Grid2D<T>& scr = pool[omp_get_thread_num()];
      const index c_xlo = std::max<index>(0, xlo - R);
      const index c_xhi = std::min(nx, xhi + R);
      const index c_ylo = std::max<index>(0, ylo - R);
      const index c_yhi = std::min(ny, yhi + R);
      // Level +1 into scratch rows (y - c_ylo).
      for (index y = c_ylo; y < c_yhi; ++y) {
        T* d = scr.row(y - c_ylo);
        const T* src = in.row(y);
        for (index l = 1; l <= R; ++l) d[-l] = src[-l];
        for (index l = 0; l < R; ++l) d[nx + l] = src[nx + l];
        std::array<const T*, NR> rp;
        for (int r = 0; r < NR; ++r) rp[r] = in.row(y + s.rows[r].dy);
        transpose_sweep_row_region<V, R, NR>(rp, d, w, nx, c_xlo, c_xhi);
      }
      // Level +2 into the opposite parity buffer.
      for (index y = ylo; y < yhi; ++y) {
        std::array<const T*, NR> rp;
        for (int r = 0; r < NR; ++r) {
          const index yy = y + s.rows[r].dy;
          rp[r] = (yy >= c_ylo && yy < c_yhi) ? scr.row(yy - c_ylo)
                                              : in.row(yy);  // grid halo row
        }
        transpose_sweep_row_region<V, R, NR>(rp, out.row(y), w, nx, xlo, xhi);
      }
    };

    const index pairs = steps / 2;
    if (pairs > 0)
      tess2d_engine(g, tmp, pairs, std::max<index>(1, bt / 2), 2 * R, bx, by,
                    pair_adv);
    if (steps % 2 != 0)
      tess2d_engine(g, tmp, 1, 1, R, bx, by,
                    [&](const Grid2D<T>& in, Grid2D<T>& out,
                        index xlo, index xhi, index ylo, index yhi) {
                      for (index y = ylo; y < yhi; ++y) {
                        std::array<const T*, NR> rp;
                        for (int r = 0; r < NR; ++r)
                          rp[r] = in.row(y + s.rows[r].dy);
                        transpose_sweep_row_region<V, R, NR>(rp, out.row(y), w,
                                                             nx, xlo, xhi);
                      }
                    });
  }
  block_transpose_grid<T, W>(g);
}

template <typename V, int R, int NR>
void tess_transpose_uj2_run(Grid2D<vec_value_t<V>>& g,
                            const Stencil2D<R, NR, vec_value_t<V>>& s,
                            index steps, index bx, index by, index bt) {
  Workspace ws;
  tess_transpose_uj2_run<V>(g, s, steps, bx, by, bt, ws);
}

/// SDSL baseline, 2D (hybrid tiling): DLT layout on x, tessellation over y
/// with full rows per region.
template <typename V, int R, int NR>
TSV_NOINLINE void sdsl_run(Grid2D<vec_value_t<V>>& g,
              const Stencil2D<R, NR, vec_value_t<V>>& s, index steps,
              index by, index bt, Workspace& ws, bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  require_fmt(g.nx() % W == 0, "SDSL/DLT requires nx % W == 0");
  const index nx = g.nx();
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  Grid2D<T>& dltA = ws_grid_like(ws, kWsDltA, g);
  dltA.copy_halo_from(g);
  dlt_forward_grid<T, W>(g, dltA);
  Grid2D<T>& dltB = ws_grid_like(ws, kWsDltB, g);
  dltB.copy_halo_from(dltA);
  const auto sweep = stream ? &dlt_sweep_row<V, R, NR, true>
                            : &dlt_sweep_row<V, R, NR, false>;
  tess1d_engine(dltA, dltB, g.ny(), steps, bt, R, by,
                [&](const Grid2D<T>& in, Grid2D<T>& out, index ylo,
                    index yhi) {
                  for (index y = ylo; y < yhi; ++y) {
                    std::array<const T*, NR> rp;
                    for (int r = 0; r < NR; ++r)
                      rp[r] = in.row(y + s.rows[r].dy);
                    sweep(rp, out.row(y), w, nx);
                  }
                  if (stream) stream_fence();  // once per region
                });
  dlt_backward_grid<T, W>(dltA, g);
}

template <typename V, int R, int NR>
void sdsl_run(Grid2D<vec_value_t<V>>& g,
              const Stencil2D<R, NR, vec_value_t<V>>& s, index steps,
              index by, index bt) {
  Workspace ws;
  sdsl_run<V>(g, s, steps, by, bt, ws);
}

// ---------------------------------------------------------------------------
// 3D drivers
// ---------------------------------------------------------------------------

template <int R, int NR, typename T>
TSV_NOINLINE void tess_autovec_run(Grid3D<T>& g, const Stencil3D<R, NR, T>& s,
                      index steps, index bx, index by, index bz, index bt,
                      Workspace& ws) {
  Grid3D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess3d_engine(g, tmp, steps, bt, R, bx, by, bz,
                [&](const Grid3D<T>& in, Grid3D<T>& out, index xlo,
                    index xhi, index ylo, index yhi, index zlo, index zhi) {
                  autovec_step_region(in, out, s, xlo, xhi, ylo, yhi, zlo,
                                      zhi);
                });
}

template <int R, int NR, typename T>
void tess_autovec_run(Grid3D<T>& g, const Stencil3D<R, NR, T>& s,
                      index steps, index bx, index by, index bz, index bt) {
  Workspace ws;
  tess_autovec_run(g, s, steps, bx, by, bz, bt, ws);
}

template <typename V, int R, int NR>
TSV_NOINLINE void tess_transpose_run(Grid3D<vec_value_t<V>>& g,
                        const Stencil3D<R, NR, vec_value_t<V>>& s,
                        index steps, index bx, index by, index bz, index bt,
                        Workspace& ws, bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  block_transpose_grid<T, W>(g);
  {
    Grid3D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
    tmp.copy_halo_from(g);
    const index nx = g.nx();
    std::array<std::array<T, 2 * R + 1>, NR> w;
    for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
    const auto sweep = stream ? &transpose_sweep_row_region<V, R, NR, true>
                              : &transpose_sweep_row_region<V, R, NR, false>;
    tess3d_engine(g, tmp, steps, bt, R, bx, by, bz,
                  [&](const Grid3D<T>& in, Grid3D<T>& out, index xlo,
                      index xhi, index ylo, index yhi, index zlo, index zhi) {
                    for (index z = zlo; z < zhi; ++z)
                      for (index y = ylo; y < yhi; ++y) {
                        std::array<const T*, NR> rp;
                        for (int r = 0; r < NR; ++r)
                          rp[r] =
                              in.row(y + s.rows[r].dy, z + s.rows[r].dz);
                        sweep(rp, out.row(y, z), w, nx, xlo, xhi);
                      }
                    if (stream) stream_fence();  // once per region
                  });
  }
  block_transpose_grid<T, W>(g);
}

template <typename V, int R, int NR>
void tess_transpose_run(Grid3D<vec_value_t<V>>& g,
                        const Stencil3D<R, NR, vec_value_t<V>>& s,
                        index steps, index bx, index by, index bz, index bt) {
  Workspace ws;
  tess_transpose_run<V>(g, s, steps, bx, by, bz, bt, ws);
}

template <typename V, int R, int NR>
TSV_NOINLINE void tess_transpose_uj2_run(Grid3D<vec_value_t<V>>& g,
                            const Stencil3D<R, NR, vec_value_t<V>>& s,
                            index steps, index bx, index by, index bz,
                            index bt, Workspace& ws) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  require_fmt(bt % 2 == 0, "uj2 tiling: time range bt=", bt, " must be even");
  const index nx = g.nx(), ny = g.ny(), nz = g.nz();
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);

  block_transpose_grid<T, W>(g);
  {
    Grid3D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
    tmp.copy_halo_from(g);
    const index scr_nz = std::min(nz, bz) + 2 * R + 4;
    const int nthreads = omp_get_max_threads();
    using Pool = std::vector<Grid3D<T>>;
    Pool& pool = ws.slot<Pool>(
        kWsScratchPool, ws_key(nx, ny, scr_nz, R, nthreads), [&] {
          Pool p;
          p.reserve(static_cast<std::size_t>(nthreads));
          for (int i = 0; i < nthreads; ++i)
            p.emplace_back(nx, ny, scr_nz, std::max<index>(R, 1),
                           FirstTouch::kNone);
#pragma omp parallel for schedule(static)
          for (int i = 0; i < nthreads; ++i) p[i].zero();
          return p;
        });

    auto pair_adv = [&](const Grid3D<T>& in, Grid3D<T>& out,
                        index xlo, index xhi, index ylo, index yhi, index zlo,
                        index zhi) {
      Grid3D<T>& scr = pool[omp_get_thread_num()];
      const index c_xlo = std::max<index>(0, xlo - R);
      const index c_xhi = std::min(nx, xhi + R);
      const index c_ylo = std::max<index>(0, ylo - R);
      const index c_yhi = std::min(ny, yhi + R);
      const index c_zlo = std::max<index>(0, zlo - R);
      const index c_zhi = std::min(nz, zhi + R);
      for (index z = c_zlo; z < c_zhi; ++z)
        for (index y = c_ylo; y < c_yhi; ++y) {
          T* d = scr.row(y, z - c_zlo);
          const T* src = in.row(y, z);
          for (index l = 1; l <= R; ++l) d[-l] = src[-l];
          for (index l = 0; l < R; ++l) d[nx + l] = src[nx + l];
          std::array<const T*, NR> rp;
          for (int r = 0; r < NR; ++r)
            rp[r] = in.row(y + s.rows[r].dy, z + s.rows[r].dz);
          transpose_sweep_row_region<V, R, NR>(rp, d, w, nx, c_xlo, c_xhi);
        }
      for (index z = zlo; z < zhi; ++z)
        for (index y = ylo; y < yhi; ++y) {
          std::array<const T*, NR> rp;
          for (int r = 0; r < NR; ++r) {
            const index yy = y + s.rows[r].dy;
            const index zz = z + s.rows[r].dz;
            rp[r] = (yy >= c_ylo && yy < c_yhi && zz >= c_zlo && zz < c_zhi)
                        ? scr.row(yy, zz - c_zlo)
                        : in.row(yy, zz);  // grid halo
          }
          transpose_sweep_row_region<V, R, NR>(rp, out.row(y, z), w, nx, xlo,
                                               xhi);
        }
    };

    const index pairs = steps / 2;
    if (pairs > 0)
      tess3d_engine(g, tmp, pairs, std::max<index>(1, bt / 2), 2 * R, bx, by,
                    bz, pair_adv);
    if (steps % 2 != 0)
      tess3d_engine(g, tmp, 1, 1, R, bx, by, bz,
                    [&](const Grid3D<T>& in, Grid3D<T>& out,
                        index xlo, index xhi, index ylo, index yhi, index zlo,
                        index zhi) {
                      for (index z = zlo; z < zhi; ++z)
                        for (index y = ylo; y < yhi; ++y) {
                          std::array<const T*, NR> rp;
                          for (int r = 0; r < NR; ++r)
                            rp[r] =
                                in.row(y + s.rows[r].dy, z + s.rows[r].dz);
                          transpose_sweep_row_region<V, R, NR>(
                              rp, out.row(y, z), w, nx, xlo, xhi);
                        }
                    });
  }
  block_transpose_grid<T, W>(g);
}

template <typename V, int R, int NR>
void tess_transpose_uj2_run(Grid3D<vec_value_t<V>>& g,
                            const Stencil3D<R, NR, vec_value_t<V>>& s,
                            index steps, index bx, index by, index bz,
                            index bt) {
  Workspace ws;
  tess_transpose_uj2_run<V>(g, s, steps, bx, by, bz, bt, ws);
}

/// SDSL baseline, 3D (hybrid tiling): DLT layout on x, tessellation over z
/// with full (x, y) planes per region.
template <typename V, int R, int NR>
TSV_NOINLINE void sdsl_run(Grid3D<vec_value_t<V>>& g,
              const Stencil3D<R, NR, vec_value_t<V>>& s, index steps,
              index bz, index bt, Workspace& ws, bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  require_fmt(g.nx() % W == 0, "SDSL/DLT requires nx % W == 0");
  const index nx = g.nx();
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  Grid3D<T>& dltA = ws_grid_like(ws, kWsDltA, g);
  dltA.copy_halo_from(g);
  dlt_forward_grid<T, W>(g, dltA);
  Grid3D<T>& dltB = ws_grid_like(ws, kWsDltB, g);
  dltB.copy_halo_from(dltA);
  const auto sweep = stream ? &dlt_sweep_row<V, R, NR, true>
                            : &dlt_sweep_row<V, R, NR, false>;
  tess1d_engine(dltA, dltB, g.nz(), steps, bt, R, bz,
                [&](const Grid3D<T>& in, Grid3D<T>& out, index zlo,
                    index zhi) {
                  for (index z = zlo; z < zhi; ++z)
                    for (index y = 0; y < in.ny(); ++y) {
                      std::array<const T*, NR> rp;
                      for (int r = 0; r < NR; ++r)
                        rp[r] = in.row(y + s.rows[r].dy, z + s.rows[r].dz);
                      sweep(rp, out.row(y, z), w, nx);
                    }
                  if (stream) stream_fence();  // once per region
                });
  dlt_backward_grid<T, W>(dltA, g);
}

template <typename V, int R, int NR>
void sdsl_run(Grid3D<vec_value_t<V>>& g,
              const Stencil3D<R, NR, vec_value_t<V>>& s, index steps,
              index bz, index bt) {
  Workspace ws;
  sdsl_run<V>(g, s, steps, bz, bt, ws);
}

}  // namespace tsv
