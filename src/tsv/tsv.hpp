#pragma once
// Umbrella header for the tsv library — Transpose-layout Stencil
// Vectorization, a reproduction of "An Efficient Vectorization Scheme for
// Stencil Computation" (Li, Yuan, Zhang, Yue, Cao, Lu — IPDPS'22).
//
// Typical usage:
//
//   #include "tsv/tsv.hpp"
//
//   tsv::Grid2D<double> grid(nx, ny, /*halo=*/1);
//   grid.fill([](tsv::index x, tsv::index y) { return initial(x, y); });
//
//   // One-shot:
//   tsv::run(grid, tsv::make_2d5p(), {.method = tsv::Method::kTransposeUJ,
//                                     .tiling = tsv::Tiling::kTessellate,
//                                     .steps = 1000,
//                                     .bx = 256, .by = 128, .bt = 32});
//
//   // Configure once, execute many:
//   auto plan = tsv::make_plan(tsv::shape_of(grid), tsv::make_2d5p(),
//                              {.tiling = tsv::Tiling::kTessellate,
//                               .steps = 1000, .bx = 256, .by = 128,
//                               .bt = 32});
//   plan.execute(grid);
//
// See README.md for the architecture overview and the capability table.

#include "tsv/common/aligned.hpp"    // IWYU pragma: export
#include "tsv/common/cpu.hpp"        // IWYU pragma: export
#include "tsv/common/grid.hpp"       // IWYU pragma: export
#include "tsv/common/timer.hpp"      // IWYU pragma: export
#include "tsv/core/capability.hpp"   // IWYU pragma: export
#include "tsv/core/executor.hpp"     // IWYU pragma: export
#include "tsv/core/fault.hpp"        // IWYU pragma: export
#include "tsv/core/generic_stencil.hpp"  // IWYU pragma: export
#include "tsv/core/halo.hpp"         // IWYU pragma: export
#include "tsv/core/health.hpp"       // IWYU pragma: export
#include "tsv/core/metrics.hpp"      // IWYU pragma: export
#include "tsv/core/options.hpp"      // IWYU pragma: export
#include "tsv/core/plan.hpp"         // IWYU pragma: export
#include "tsv/core/plan_cache.hpp"   // IWYU pragma: export
#include "tsv/core/problems.hpp"     // IWYU pragma: export
#include "tsv/core/registry.hpp"     // IWYU pragma: export
#include "tsv/core/run.hpp"          // IWYU pragma: export
#include "tsv/core/scheduler.hpp"    // IWYU pragma: export
#include "tsv/core/shard.hpp"        // IWYU pragma: export
#include "tsv/core/tunedb.hpp"       // IWYU pragma: export
#include "tsv/core/tuner.hpp"        // IWYU pragma: export
#include "tsv/core/workspace.hpp"    // IWYU pragma: export
#include "tsv/kernels/stencil.hpp"   // IWYU pragma: export
