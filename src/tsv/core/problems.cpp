#include "tsv/core/problems.hpp"

namespace tsv {

const char* stencil_kind_name(StencilKind k) {
  switch (k) {
    case StencilKind::k1d3p: return "1d3p";
    case StencilKind::k1d5p: return "1d5p";
    case StencilKind::k2d5p: return "2d5p";
    case StencilKind::k2d9p: return "2d9p";
    case StencilKind::k3d7p: return "3d7p";
    case StencilKind::k3d27p: return "3d27p";
  }
  return "?";
}

std::optional<StencilKind> stencil_kind_from_name(std::string_view name) {
  for (StencilKind k :
       {StencilKind::k1d3p, StencilKind::k1d5p, StencilKind::k2d5p,
        StencilKind::k2d9p, StencilKind::k3d7p, StencilKind::k3d27p})
    if (name == stencil_kind_name(k)) return k;
  return std::nullopt;
}

int stencil_kind_rank(StencilKind k) {
  switch (k) {
    case StencilKind::k1d3p:
    case StencilKind::k1d5p: return 1;
    case StencilKind::k2d5p:
    case StencilKind::k2d9p: return 2;
    case StencilKind::k3d7p:
    case StencilKind::k3d27p: return 3;
  }
  return 0;
}

int stencil_kind_radius(StencilKind k) {
  return k == StencilKind::k1d5p ? 2 : 1;
}

// Factory parameter counts, in the order kernels/stencil.hpp declares them:
// 1d3p(a); 1d5p(w2, w1, wc); 2d5p(wc, wx, wy); 2d9p(wc, edge, corner);
// 3d7p(wc, wx, wy, wz); 3d27p(wc).
std::size_t stencil_kind_coeff_count(StencilKind k) {
  switch (k) {
    case StencilKind::k1d3p: return 1;
    case StencilKind::k1d5p: return 3;
    case StencilKind::k2d5p: return 3;
    case StencilKind::k2d9p: return 3;
    case StencilKind::k3d7p: return 4;
    case StencilKind::k3d27p: return 1;
  }
  return 0;
}

std::vector<Problem> table1_problems(bool paper_scale) {
  // Paper Table 1, with x extents rounded up to a multiple of 64 (= W^2 for
  // AVX-512 doubles) so every layout-constrained method accepts them.
  // Scaled defaults keep the same cache-level placement on one machine while
  // finishing in minutes; --paper-scale restores the published sizes.
  std::vector<Problem> v;
  if (paper_scale) {
    v.push_back({.name = "1d3p", .kind = StencilKind::k1d3p,
                 .nx = 10240000, .ny = 1, .nz = 1, .steps = 1000,
                 .bx = 2048, .by = 1, .bz = 1, .bt = 1000});
    v.push_back({.name = "1d5p", .kind = StencilKind::k1d5p,
                 .nx = 10240000, .ny = 1, .nz = 1, .steps = 1000,
                 .bx = 2048, .by = 1, .bz = 1, .bt = 500});
    v.push_back({.name = "2d5p", .kind = StencilKind::k2d5p,
                 .nx = 3072, .ny = 3000, .nz = 1, .steps = 1000,
                 .bx = 256, .by = 200, .bz = 1, .bt = 50});
    v.push_back({.name = "2d9p", .kind = StencilKind::k2d9p,
                 .nx = 3072, .ny = 3000, .nz = 1, .steps = 1000,
                 .bx = 128, .by = 128, .bz = 1, .bt = 60});
    v.push_back({.name = "3d7p", .kind = StencilKind::k3d7p,
                 .nx = 128, .ny = 128, .nz = 128, .steps = 1000,
                 .bx = 64, .by = 23, .bz = 23, .bt = 10});
    v.push_back({.name = "3d27p", .kind = StencilKind::k3d27p,
                 .nx = 128, .ny = 128, .nz = 128, .steps = 1000,
                 .bx = 64, .by = 23, .bz = 23, .bt = 10});
  } else {
    v.push_back({.name = "1d3p", .kind = StencilKind::k1d3p,
                 .nx = 1024000, .ny = 1, .nz = 1, .steps = 100,
                 .bx = 2048, .by = 1, .bz = 1, .bt = 100});
    v.push_back({.name = "1d5p", .kind = StencilKind::k1d5p,
                 .nx = 1024000, .ny = 1, .nz = 1, .steps = 100,
                 .bx = 2048, .by = 1, .bz = 1, .bt = 50});
    v.push_back({.name = "2d5p", .kind = StencilKind::k2d5p,
                 .nx = 1024, .ny = 1000, .nz = 1, .steps = 100,
                 .bx = 256, .by = 100, .bz = 1, .bt = 24});
    v.push_back({.name = "2d9p", .kind = StencilKind::k2d9p,
                 .nx = 1024, .ny = 1000, .nz = 1, .steps = 100,
                 .bx = 128, .by = 128, .bz = 1, .bt = 30});
    v.push_back({.name = "3d7p", .kind = StencilKind::k3d7p,
                 .nx = 128, .ny = 96, .nz = 96, .steps = 100,
                 .bx = 64, .by = 23, .bz = 23, .bt = 10});
    v.push_back({.name = "3d27p", .kind = StencilKind::k3d27p,
                 .nx = 128, .ny = 96, .nz = 96, .steps = 100,
                 .bx = 64, .by = 23, .bz = 23, .bt = 10});
  }
  return v;
}

}  // namespace tsv
