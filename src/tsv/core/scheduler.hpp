#pragma once
// Deadline-aware serving scheduler: tail-latency control on top of the
// batched Executor (core/executor.hpp).
//
//   tsv::Scheduler sched({.executor = {.gangs = 2},
//                         .queue_capacity = 256,
//                         .max_inflight_per_tenant = 1});
//   std::future<tsv::Scheduler::Result> done = sched.submit({
//       .grid = &grid,
//       .stencil = {.kind = tsv::StencilKind::k2d5p},
//       .options = {.steps = 100},
//       .cls = tsv::ServiceClass::kInteractive,
//       .deadline_ms = 50,
//       .tenant = "tenant-a"});
//   tsv::Scheduler::Result r = done.get();  // throws OverloadError if shed,
//                                           // ConfigError if invalid
//
// The Executor gives throughput: G gangs pop a FIFO queue, so one long
// batch job ahead of a small interactive request costs the interactive
// request the batch job's full service time. The Scheduler gives latency
// SLOs — it owns admission and ORDER, and hands the executor only as much
// work as the gangs can run right now (at most `gangs` requests in flight),
// so the executor's FIFO never reorders what the policy decided:
//
//   * bounded admission queue with load-shedding — a submission against a
//     full queue first sheds queued work that is already past its deadline
//     (lowest priority class first: dead batch work before dead interactive
//     work), and is rejected with OverloadError through its future when
//     there is nothing sheddable. Overload degrades loudly and cheaply,
//     never by unbounded queue growth.
//   * priority/deadline-aware dispatch — interactive requests bypass every
//     queued batch request; within a class, earliest absolute deadline
//     first (no deadline sorts last), admission order breaking ties.
//     kFifo policy disables the reordering (A/B control in bench/fig12 and
//     the test suite) while keeping every other mechanism identical.
//   * per-tenant quotas — at most max_inflight_per_tenant requests of one
//     tenant run concurrently; a tenant with a deep backlog keeps its
//     excess queued while other tenants' work overtakes it.
//   * single-flight coalescing — concurrent submissions with identical
//     (stencil, shape, options, grid-content digest) become ONE executor
//     request: the leader computes, followers' grids receive a byte copy of
//     the leader's result, every waiter's future completes. The coalescing
//     window is the leader's time in the queue — by the time it is
//     dispatched its input is being consumed, so a later identical
//     submission starts a fresh group.
//
// Completion latency (admission -> future ready) is recorded per class in
// log-scaled histograms; SchedulerStats carries them plus the admission
// counters and the wrapped ExecutorStats, so one snapshot answers both
// "is the service meeting its SLO" (p99, shed rate, deadline misses) and
// "is the machine keeping up" (gang utilization, cache hit rate).
//
// Lifetime: the destructor resumes a paused scheduler, dispatches
// everything still queued, and joins only after every admitted request has
// completed (or failed) — no future is ever abandoned.

#include <array>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "tsv/core/executor.hpp"
#include "tsv/core/fault.hpp"

namespace tsv {

/// Priority class of a request. Interactive work bypasses batch work in the
/// dispatch order; batch work is shed before interactive work under
/// overload. The enum order IS the priority order (lower = more urgent).
enum class ServiceClass { kInteractive = 0, kBatch = 1 };
inline constexpr int kServiceClasses = 2;

const char* service_class_name(ServiceClass c);

/// Raised through the future of a submission the scheduler could not serve:
/// rejected at admission (queue full, nothing sheddable) or shed from the
/// queue to make room for newer work. The request never executed. Part of
/// the TsvError taxonomy (core/fault.hpp); not transient — resubmitting the
/// same request into the same overload cannot help.
class OverloadError : public std::runtime_error, public TsvError {
 public:
  using std::runtime_error::runtime_error;
};

/// Log-scaled latency histogram: 1 µs base bucket, powers of two up to
/// ~2400 s. Fixed storage, no allocation on record(); quantiles are read by
/// linear interpolation inside the landing bucket, so p50/p95/p99 are exact
/// to within one bucket's resolution (a factor of 2 — plenty for SLO gates
/// that fire on order-of-magnitude regressions).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 42;
  static constexpr double kBaseSeconds = 1e-6;

  void record(double seconds);

  std::uint64_t count() const { return n_; }
  double sum_seconds() const { return sum_; }
  double mean_seconds() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  /// Latency (seconds) at quantile @p q in [0, 1]; 0 when empty.
  double quantile(double q) const;

  /// Raw bucket count for @p b in [0, kBuckets): the Prometheus exposition
  /// (core/metrics.hpp) emits cumulative `le` buckets from these.
  std::uint64_t bucket_count(int b) const {
    return counts_[static_cast<std::size_t>(b)];
  }
  /// Upper bound (seconds) of bucket @p b — bucket b spans
  /// [2^b µs, 2^(b+1) µs), with bucket 0 reaching down to 0.
  static double bucket_upper_seconds(int b);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
};

/// One request's lifecycle timeline, recorded when SchedulerConfig::
/// trace_capacity is non-zero. Timestamps are seconds since the scheduler's
/// construction (steady clock), so span arithmetic needs no epoch plumbing:
/// queue time = dispatch_s - submit_s, gang wait = sweep_s - dispatch_s,
/// service time = complete_s - sweep_s. Spans cover requests that reached a
/// gang (completed or failed there); rejected and shed submissions never
/// dispatch and are visible in the counters instead.
struct TraceSpan {
  std::uint64_t seq = 0;           ///< group admission order
  std::uint64_t dispatch_seq = 0;  ///< group dispatch order
  ServiceClass cls = ServiceClass::kBatch;
  bool coalesced = false;  ///< this member rode another request's execution
  /// Outcome: 'C' completed, 'F' failed, 'X' cancelled, 'T' timed out.
  char outcome = 'C';
  double submit_s = 0.0;    ///< admitted into the queue
  double dispatch_s = 0.0;  ///< handed to the executor (queueing ends)
  double sweep_s = 0.0;     ///< execution began on a gang
  double complete_s = 0.0;  ///< outcome recorded (future fulfilled next)
};

/// Dispatch-order policy. kDeadline is the scheduler's reason to exist;
/// kFifo preserves admission order (the control arm for A/B latency runs —
/// identical admission, coalescing, quotas and accounting, no reordering).
enum class SchedPolicy { kDeadline, kFifo };

struct SchedulerConfig {
  ExecutorConfig executor;       ///< the wrapped worker pool
  std::size_t queue_capacity = 1024;  ///< queued groups before shedding
  int max_inflight_per_tenant = 0;    ///< 0 = unlimited
  SchedPolicy policy = SchedPolicy::kDeadline;
  bool coalesce = true;          ///< single-flight identical submissions
  /// Transparent re-executions per dispatched group on a TRANSIENT failure
  /// (TransientError, KernelFault, std::bad_alloc — see
  /// is_transient_error). Every fault point fires before its step mutates
  /// anything and the group's input is snapshotted before the first
  /// attempt, so a retried request is bit-identical to a fault-free run.
  /// Coalesced followers ride their leader's retries: one budget per group,
  /// one shared outcome. 0 disables retry (transients surface immediately).
  int retry_budget = 0;
  /// First retry's backoff in ms; doubles per retry up to
  /// retry_backoff_max_ms, scaled by a deterministic jitter in [0.5, 1.0]
  /// derived from the group's admission seq (no global rng, replayable).
  double retry_backoff_ms = 1.0;
  double retry_backoff_max_ms = 50.0;  ///< cap on the exponential backoff
  /// Per-request trace spans: 0 (default) records nothing; N keeps the most
  /// recent N spans in a fixed ring (no allocation after construction,
  /// oldest overwritten) surfaced through SchedulerStats::traces.
  std::size_t trace_capacity = 0;
};

/// Cumulative serving counters plus the per-class latency distributions.
/// submitted = admitted + rejected; admitted requests end up in exactly one
/// of completed / failed / shed. deadline_missed counts COMPLETED requests
/// that finished after their deadline (shed work is counted as shed, not
/// missed). coalesced counts followers fanned out from a leader's result.
struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< refused at admission (OverloadError)
  std::uint64_t shed = 0;       ///< dropped from the queue (OverloadError)
  std::uint64_t coalesced = 0;  ///< served by another request's execution
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     ///< raised into the future (e.g. ConfigError)
  std::uint64_t deadline_missed = 0;
  /// Transient-failure re-executions performed (one group retry serves the
  /// whole coalesce group but counts once).
  std::uint64_t retries = 0;
  /// Groups whose transient error surfaced to the callers — the retry
  /// budget (possibly 0) was spent without a success. A healthy service
  /// under injected transient faults keeps this at 0.
  std::uint64_t retry_exhausted = 0;
  std::uint64_t cancelled = 0;  ///< failed with CancelledError (subset of failed)
  std::uint64_t timed_out = 0;  ///< failed with TimeoutError (subset of failed)
  std::size_t queued = 0;           ///< gauge: coalesce groups waiting
  std::size_t inflight = 0;         ///< gauge: groups handed to the executor
  std::size_t peak_tenant_inflight = 0;  ///< max concurrent in-flight of one tenant
  /// Completion latency (admission -> future ready), indexed by
  /// ServiceClass; successful completions only.
  std::array<LatencyHistogram, kServiceClasses> latency;
  /// The most recent trace spans, oldest first (empty unless
  /// SchedulerConfig::trace_capacity opted in).
  std::vector<TraceSpan> traces;
  ExecutorStats executor;  ///< the wrapped pool's own accounting

  const LatencyHistogram& latency_of(ServiceClass c) const {
    return latency[static_cast<std::size_t>(c)];
  }
};

class Scheduler {
 public:
  using GridRef = Executor::GridRef;
  using Clock = std::chrono::steady_clock;

  /// One serving request: the executor's work unit plus the serving
  /// metadata the scheduler dispatches on.
  struct Request {
    GridRef grid;
    StencilSpec stencil;
    Options options;
    ServiceClass cls = ServiceClass::kBatch;
    /// Relative completion deadline in milliseconds from submission;
    /// <= 0 means no deadline (sorts after every dated request in EDF and
    /// is never shed as "past deadline").
    double deadline_ms = 0.0;
    /// Quota bucket. Followers coalesced onto another tenant's leader ride
    /// that leader's quota — the work is charged to whoever computes it.
    std::string tenant;
    /// Hard wall-clock budget in ms from submission (0 = none). Where
    /// deadline_ms is the soft SLO (tracked in deadline_missed, never
    /// enforced), timeout_ms is ENFORCED: an expired request fails with
    /// TimeoutError — at dispatch if it never started, between time steps
    /// if it did. Queueing time counts against the budget.
    double timeout_ms = 0.0;
    /// Cooperative cancellation handle (default: inert). cancel() fails the
    /// request with CancelledError at the next dispatch/step poll. A
    /// coalesced group aborts mid-run only when EVERY member cancelled —
    /// one waiter's cancel must not take the shared result from the rest.
    CancelToken cancel;
  };

  /// What a completed submission observed (future<Result>::get()).
  struct Result {
    /// Position in the dispatch order (0-based). Coalesced followers share
    /// their leader's seq — the group was one dispatch.
    std::uint64_t dispatch_seq = 0;
    double latency_seconds = 0.0;  ///< admission -> completion
    bool deadline_missed = false;
    bool coalesced = false;        ///< served by a leader's execution
  };

  explicit Scheduler(SchedulerConfig cfg = {});
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Admits @p req and returns immediately. The future resolves to the
  /// request's Result when it completed, or throws: OverloadError
  /// (rejected/shed), ConfigError (invalid configuration, surfaced at
  /// execution exactly like Executor::submit). Never throws directly.
  std::future<Result> submit(Request req);

  /// Convenience: one grid, explicit serving metadata.
  template <typename G>
  std::future<Result> submit(G& g, const StencilSpec& spec, const Options& o,
                             ServiceClass cls = ServiceClass::kBatch,
                             double deadline_ms = 0.0,
                             std::string tenant = {}) {
    return submit(Request{GridRef{&g}, spec, o, cls, deadline_ms,
                          std::move(tenant)});
  }

  /// Stops handing work to the executor (admission stays open). Queued
  /// requests dispatch again on resume(). An operator's drain valve, and
  /// the test suite's determinism lever: pause, build a queue state,
  /// resume, observe the dispatch order.
  void pause();
  void resume();

  /// Blocks until nothing is queued or in flight.
  void wait_idle();

  SchedulerStats stats() const;

  /// The wrapped executor (introspection; submitting to it directly
  /// bypasses every serving policy).
  Executor& executor() { return ex_; }

 private:
  struct Member;  // one submission's completion endpoint
  struct Group;   // one queue entry: a leader plus coalesced followers

  void dispatch_locked(std::unique_lock<std::mutex>& lock);
  void run_group(const std::shared_ptr<Group>& group);
  void on_group_done(const std::shared_ptr<Group>& group,
                     std::exception_ptr error);
  void flush_failed_dispatches();

  SchedulerConfig cfg_;
  Executor ex_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;  // queued == 0 && inflight == 0
  std::deque<std::shared_ptr<Group>> queue_;
  /// Coalesce index over QUEUED groups: (plan key, content digest) -> group.
  std::map<std::pair<PlanKey, std::uint64_t>, std::shared_ptr<Group>> open_;
  std::map<std::string, int> tenant_inflight_;
  /// Groups whose executor handoff itself threw (dispatch_locked catches
  /// it): accounting is undone under mu_, the promises are fulfilled here
  /// OUTSIDE mu_ — a waiter woken by set_exception may immediately call
  /// stats() and must not self-deadlock.
  std::vector<std::pair<std::shared_ptr<Group>, std::exception_ptr>>
      failed_dispatch_;
  std::size_t inflight_ = 0;
  bool paused_ = false;
  bool stopping_ = false;

  std::uint64_t seq_ = 0;           // admission order (EDF tiebreak)
  std::uint64_t dispatch_seq_ = 0;  // dispatch order (Result::dispatch_seq)
  SchedulerStats stats_;            // counters + histograms (executor field
                                    // filled per stats() call)

  /// Trace ring (guarded by mu_): fixed capacity, oldest overwritten.
  /// trace_pos_ is the next overwrite slot once the ring is full.
  const Clock::time_point epoch_ = Clock::now();
  std::vector<TraceSpan> trace_ring_;
  std::size_t trace_pos_ = 0;
  void push_trace_locked(const TraceSpan& ts);
};

}  // namespace tsv
