#pragma once
// Runtime-programmable stencils (ROADMAP item 3).
//
// The precompiled Table-1 kinds cover the paper's experiments, but real
// workloads bring arbitrary shapes: anisotropic weights, radius 3 stars,
// asymmetric upwind taps, FDTD-style multi-point updates. `GenericStencil`
// describes such a shape as plain data — a rank, a list of (offset, weight)
// taps, and optionally a per-cell coefficient field — and the plan layer
// lowers it onto the same compile-time row descriptors the specialized
// kernels use (kernels/stencil.hpp), executed by the register-blocked
// interpreter in vectorize/generic.hpp (Method::kGeneric).
//
// Lowering picks the template radius R from the declared/derived radius and
// the element type T from Options::dtype, then groups taps into Row2D/Row3D
// spans. The lowered descriptors (`GenericStencil1D/2D/3D<R, T>`) satisfy
// the same implicit concept as Stencil1D/2D/3D — value_type, dim, radius,
// `rows`/`w`, `apply` — except that the row count is runtime, which is
// exactly why only the generic interpreter (and the scalar oracle) can run
// them: the specialized kernels unroll over a compile-time row count.
//
// The optional coefficient field ("scale") models out[c] = scale[c] * sum of
// taps — variable-coefficient diffusion, masks, locally-varying CFL factors.
// It is sampled over the grid *interior* (row-major, x fastest), so the
// lowered descriptor carries the extents it was built for and rejects any
// other grid shape at plan time (see check_shape).

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "tsv/common/aligned.hpp"
#include "tsv/core/problems.hpp"
#include "tsv/kernels/stencil.hpp"

namespace tsv {

/// Largest radius the generic path instantiates kernels for. Shapes beyond
/// this are rejected at validation; raising it is a compile-time knob (it
/// multiplies the interpreter instantiation count).
inline constexpr int kMaxGenericRadius = 3;

/// One tap: out[x, y, z] += weight * in[x+dx, y+dy, z+dz]. Off-rank
/// components must be zero (dy for rank 1, dz for rank <= 2).
struct GenericTap {
  int dx = 0;
  int dy = 0;
  int dz = 0;
  double weight = 0.0;

  friend bool operator==(const GenericTap&, const GenericTap&) = default;
};

/// A runtime stencil description. Plain aggregate; validated by
/// `generic_violation` when it enters the plan layer (make_plan throws
/// ConfigError with the violation text).
struct GenericStencil {
  int rank = 2;

  /// Halo radius the shape promises to stay within. 0 means "derive from
  /// the taps" (with a floor of 1 so a pointwise shape still gets a legal
  /// halo); a non-zero value both checks the taps against it and widens the
  /// halo requirement beyond the tap extent if larger.
  int radius = 0;

  /// The tap set. Duplicate offsets are rejected; zero-weight taps are
  /// legal (they drop out during lowering but still count against radius).
  std::vector<GenericTap> taps;

  /// Optional per-cell coefficient field over the grid interior, row-major
  /// with x fastest: out[c] = scale[c] * (sum of taps). Empty = absent.
  /// When present, scale_nx/ny/nz must match the grid the plan is built
  /// for (axes beyond `rank` stay 1).
  std::vector<double> scale;
  index scale_nx = 0;
  index scale_ny = 1;
  index scale_nz = 1;

  /// Largest |offset| component over the taps (0 for an empty/pointwise
  /// tap set — callers wanting the halo requirement use effective_radius).
  int derived_radius() const;

  /// The radius the plan layer lowers at: the declared radius when set,
  /// else max(derived_radius(), 1).
  int effective_radius() const;
};

/// nullptr when @p gs is well-formed, else a static string naming the first
/// violation (rank out of range, empty taps, duplicate or off-rank offsets,
/// tap beyond the declared radius, radius beyond kMaxGenericRadius,
/// non-finite weight, scale extents inconsistent with scale.size()).
const char* generic_violation(const GenericStencil& gs);

// ---------------------------------------------------------------------------
// Shape builders (validation-clean by construction).
// ---------------------------------------------------------------------------

/// Star of the given rank/radius: a center tap plus arms along each axis at
/// distances 1..radius. `center` is the center weight, `arm` every arm tap.
GenericStencil generic_star(int rank, int radius, double center, double arm);

/// Full box (Chebyshev ball): every offset with max-norm <= radius. The
/// center gets `center`, every other tap `other`.
GenericStencil generic_box(int rank, int radius, double center, double other);

/// The Table-1 kind re-expressed as a GenericStencil. @p coeffs follows the
/// kind's factory parameter order (kernels/stencil.hpp) and may be empty for
/// the factory defaults — the same contract as StencilSpec::coeffs. Throws
/// std::invalid_argument on a coefficient-count mismatch.
GenericStencil generic_from_kind(StencilKind kind,
                                 const std::vector<double>& coeffs = {});

// ---------------------------------------------------------------------------
// Lowered descriptors: what the interpreter actually executes. Produced by
// detail::lower_generic_*; user code normally never spells these.
// ---------------------------------------------------------------------------

/// Lowered 1D generic stencil: a centered tap array like Stencil1D plus the
/// optional scale field.
template <int R, typename T>
struct GenericStencil1D {
  using value_type = T;
  static constexpr int dim = 1;
  static constexpr int radius = R;

  std::array<T, 2 * R + 1> w{};  ///< weight at x-offset dx is w[dx + R]
  std::shared_ptr<const std::vector<T>> scale;  ///< null = no scale field
  index snx = 0;
  index flops_per_point = 0;

  /// Interior scale row, or nullptr when the shape has no scale field.
  const T* scale_row() const { return scale ? scale->data() : nullptr; }

  /// nullptr when this descriptor may run on a grid of the given interior
  /// extents; else the reason (the scale field is bound to exact extents,
  /// so e.g. a ShardedPlan shard cannot reuse a whole-domain field).
  const char* check_shape(int rank, index nx, index ny, index nz) const {
    (void)rank; (void)ny; (void)nz;
    if (scale && nx != snx)
      return "generic scale field extents do not match the grid interior";
    return nullptr;
  }

  T apply(const T* p) const {
    T acc = 0;
    for (int dx = -R; dx <= R; ++dx) acc += w[dx + R] * p[dx];
    return acc;
  }
};

/// Lowered 2D generic stencil: Row2D spans like Stencil2D, but the row count
/// is runtime (std::vector), bounded by 2R+1.
template <int R, typename T>
struct GenericStencil2D {
  using value_type = T;
  static constexpr int dim = 2;
  static constexpr int radius = R;

  std::vector<Row2D<R, T>> rows;
  std::shared_ptr<const std::vector<T>> scale;
  index snx = 0, sny = 0;
  index flops_per_point = 0;

  const T* scale_row(index y) const {
    return scale ? scale->data() + y * snx : nullptr;
  }

  const char* check_shape(int rank, index nx, index ny, index nz) const {
    (void)rank; (void)nz;
    if (scale && (nx != snx || ny != sny))
      return "generic scale field extents do not match the grid interior";
    return nullptr;
  }

  template <typename RowPtr>
  T apply(RowPtr&& row_at, index x) const {
    T acc = 0;
    for (const auto& r : rows) {
      const T* p = row_at(r.dy);
      for (int dx = r.xlo; dx <= r.xhi; ++dx)
        acc += r.w[dx - r.xlo] * p[x + dx];
    }
    return acc;
  }
};

/// Lowered 3D generic stencil: Row3D spans, runtime row count bounded by
/// (2R+1)^2.
template <int R, typename T>
struct GenericStencil3D {
  using value_type = T;
  static constexpr int dim = 3;
  static constexpr int radius = R;

  std::vector<Row3D<R, T>> rows;
  std::shared_ptr<const std::vector<T>> scale;
  index snx = 0, sny = 0, snz = 0;
  index flops_per_point = 0;

  const T* scale_row(index y, index z) const {
    return scale ? scale->data() + (z * sny + y) * snx : nullptr;
  }

  const char* check_shape(int rank, index nx, index ny, index nz) const {
    (void)rank;
    if (scale && (nx != snx || ny != sny || nz != snz))
      return "generic scale field extents do not match the grid interior";
    return nullptr;
  }

  template <typename RowPtr>
  T apply(RowPtr&& row_at, index x) const {
    T acc = 0;
    for (const auto& r : rows) {
      const T* p = row_at(r.dy, r.dz);
      for (int dx = r.xlo; dx <= r.xhi; ++dx)
        acc += r.w[dx - r.xlo] * p[x + dx];
    }
    return acc;
  }
};

/// True for the lowered generic descriptors. The dispatch table uses this to
/// avoid instantiating the specialized kernels against a runtime-row type
/// (their bodies require a compile-time row count and would not compile).
template <typename S>
inline constexpr bool is_generic_stencil_v = false;
template <int R, typename T>
inline constexpr bool is_generic_stencil_v<GenericStencil1D<R, T>> = true;
template <int R, typename T>
inline constexpr bool is_generic_stencil_v<GenericStencil2D<R, T>> = true;
template <int R, typename T>
inline constexpr bool is_generic_stencil_v<GenericStencil3D<R, T>> = true;

namespace detail {

/// Upper bound on std::size(s.rows), usable as a compile-time array
/// capacity: the compile-time row count for the specialized descriptors,
/// the radius-derived bound for the lowered generic ones.
template <typename S>
constexpr int generic_max_rows() {
  if constexpr (requires { S::nrows; }) {
    return S::nrows;
  } else if constexpr (S::dim == 2) {
    return 2 * S::radius + 1;
  } else {
    return (2 * S::radius + 1) * (2 * S::radius + 1);
  }
}

template <typename T>
std::shared_ptr<const std::vector<T>> lower_scale(const GenericStencil& gs) {
  if (gs.scale.empty()) return nullptr;
  auto v = std::make_shared<std::vector<T>>(gs.scale.size());
  for (std::size_t i = 0; i < gs.scale.size(); ++i)
    (*v)[i] = T(gs.scale[i]);
  return v;
}

/// Validated `gs` -> centered tap array. Zero-weight taps drop out here
/// (the interpreter skips structural zeros anyway; dropping them keeps the
/// lowered shape minimal).
template <int R, typename T>
GenericStencil1D<R, T> lower_generic_1d(const GenericStencil& gs) {
  GenericStencil1D<R, T> s;
  index taps = 0;
  for (const GenericTap& t : gs.taps)
    if (t.weight != 0.0) {
      s.w[t.dx + R] = T(t.weight);
      ++taps;
    }
  s.scale = lower_scale<T>(gs);
  s.snx = gs.scale_nx;
  s.flops_per_point = 2 * std::max<index>(taps, 1) - 1 + (s.scale ? 1 : 0);
  return s;
}

/// Validated `gs` -> Row2D spans grouped by dy, ascending (the same row
/// order the Table-1 factories emit).
template <int R, typename T>
GenericStencil2D<R, T> lower_generic_2d(const GenericStencil& gs) {
  GenericStencil2D<R, T> s;
  index taps = 0;
  for (int dy = -R; dy <= R; ++dy) {
    int xlo = 0, xhi = 0;
    bool any = false;
    for (const GenericTap& t : gs.taps)
      if (t.dy == dy && t.weight != 0.0) {
        xlo = any ? std::min(xlo, t.dx) : t.dx;
        xhi = any ? std::max(xhi, t.dx) : t.dx;
        any = true;
      }
    if (!any) continue;
    Row2D<R, T> row;
    row.dy = dy;
    row.xlo = xlo;
    row.xhi = xhi;
    for (const GenericTap& t : gs.taps)
      if (t.dy == dy && t.weight != 0.0) {
        row.w[t.dx - xlo] = T(t.weight);
        ++taps;
      }
    s.rows.push_back(row);
  }
  s.scale = lower_scale<T>(gs);
  s.snx = gs.scale_nx;
  s.sny = gs.scale_ny;
  s.flops_per_point = 2 * std::max<index>(taps, 1) - 1 + (s.scale ? 1 : 0);
  return s;
}

/// Validated `gs` -> Row3D spans grouped by (dz, dy), ascending.
template <int R, typename T>
GenericStencil3D<R, T> lower_generic_3d(const GenericStencil& gs) {
  GenericStencil3D<R, T> s;
  index taps = 0;
  for (int dz = -R; dz <= R; ++dz)
    for (int dy = -R; dy <= R; ++dy) {
      int xlo = 0, xhi = 0;
      bool any = false;
      for (const GenericTap& t : gs.taps)
        if (t.dz == dz && t.dy == dy && t.weight != 0.0) {
          xlo = any ? std::min(xlo, t.dx) : t.dx;
          xhi = any ? std::max(xhi, t.dx) : t.dx;
          any = true;
        }
      if (!any) continue;
      Row3D<R, T> row;
      row.dy = dy;
      row.dz = dz;
      row.xlo = xlo;
      row.xhi = xhi;
      for (const GenericTap& t : gs.taps)
        if (t.dz == dz && t.dy == dy && t.weight != 0.0) {
          row.w[t.dx - xlo] = T(t.weight);
          ++taps;
        }
      s.rows.push_back(row);
    }
  s.scale = lower_scale<T>(gs);
  s.snx = gs.scale_nx;
  s.sny = gs.scale_ny;
  s.snz = gs.scale_nz;
  s.flops_per_point = 2 * std::max<index>(taps, 1) - 1 + (s.scale ? 1 : 0);
  return s;
}

}  // namespace detail

}  // namespace tsv
