#pragma once
// Executable plans: configure once, execute many.
//
//   auto plan = tsv::make_plan(tsv::shape_of(grid), stencil,
//                              {.method = tsv::Method::kTransposeUJ,
//                               .tiling = tsv::Tiling::kTessellate,
//                               .steps = 1000, .bx = 256, .by = 128,
//                               .bt = 32});
//   plan.execute(grid);   // repeatable; no re-validation, no re-dispatch
//
// make_plan validates the configuration ONCE against the capability
// registry (core/registry.hpp), resolves ISA / threads / block sizes to
// concrete values (Options fields left at 0 / kAuto get sane defaults), and
// binds the kernel through a rank-generic dispatch table. Invalid
// configurations throw tsv::ConfigError at plan time — never from deep
// inside a kernel. Plan::execute then only checks that the grid matches the
// planned shape and jumps through the resolved function pointer.
//
// The dispatch table below is the ONLY place that maps (method, tiling) to
// kernels; it is written once, generically over grid rank, replacing the
// seed's three hand-written per-rank switch pyramids.

#include <omp.h>

#include <algorithm>
#include <array>
#include <functional>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "tsv/common/timer.hpp"
#include "tsv/core/fault.hpp"
#include "tsv/core/halo.hpp"
#include "tsv/core/health.hpp"
#include "tsv/core/problems.hpp"
#include "tsv/core/registry.hpp"
#include "tsv/core/shard.hpp"
#include "tsv/core/tuner.hpp"
#include "tsv/core/workspace.hpp"
#include "tsv/kernels/reference.hpp"
#include "tsv/tiling/tiled.hpp"
#include "tsv/vectorize/generic.hpp"

namespace tsv {

/// Grid geometry a plan is built for. ny/nz stay 1 for lower ranks.
struct Shape {
  int rank = 1;
  index nx = 0, ny = 1, nz = 1;
  index halo = 1;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.rank == b.rank && a.nx == b.nx && a.ny == b.ny && a.nz == b.nz &&
           a.halo == b.halo;
  }
};

inline Shape shape1d(index nx, index halo = 1) {
  return {.rank = 1, .nx = nx, .ny = 1, .nz = 1, .halo = halo};
}
inline Shape shape2d(index nx, index ny, index halo = 1) {
  return {.rank = 2, .nx = nx, .ny = ny, .nz = 1, .halo = halo};
}
inline Shape shape3d(index nx, index ny, index nz, index halo = 1) {
  return {.rank = 3, .nx = nx, .ny = ny, .nz = nz, .halo = halo};
}

template <typename T>
Shape shape_of(const Grid1D<T>& g) {
  return shape1d(g.nx(), g.halo());
}
template <typename T>
Shape shape_of(const Grid2D<T>& g) {
  return shape2d(g.nx(), g.ny(), g.halo());
}
template <typename T>
Shape shape_of(const Grid3D<T>& g) {
  return shape3d(g.nx(), g.ny(), g.nz(), g.halo());
}

/// Fully resolved execution parameters: every field is concrete (no kAuto,
/// no 0-means-default). Introspectable via Plan::config().
struct ResolvedOptions {
  Method method = Method::kTranspose;
  Tiling tiling = Tiling::kNone;
  Isa isa = Isa::kScalar;  ///< concrete ISA the kernels were bound for
  Dtype dtype = Dtype::kF64;  ///< concrete element type the kernels compute in
  index width = 2;         ///< kernel vector width in dtype lanes (2..16)
  index steps = 0;
  index bx = 0, by = 0, bz = 0;  ///< resolved tessellation blocks (elements)
  index bt = 0;                  ///< resolved temporal block
  /// Split tiling blocks exactly one axis; this is its resolved block size in
  /// units of that axis: DLT columns (1D), rows (2D) or planes (3D). See
  /// "resolved-blocking rule" in plan.cpp.
  index split_block = 0;
  int threads = 1;  ///< resolved OpenMP team (1 for untiled sweeps)
  /// Post-execute NaN/Inf scan scope (core/health.hpp); part of the plan
  /// identity so cached plans with different scan scopes never collide.
  HealthCheck health = HealthCheck::kOff;
  /// Non-temporal write-back resolved on: the working set exceeds the LLC
  /// threshold and the schedule has no temporal cache reuse to protect
  /// (untiled sweeps, or tiled with bt == 1). See core/workspace.cpp.
  bool streaming = false;
  Tune tune = Tune::kOff;  ///< tuning mode the plan was built with
  /// Per-axis boundary conditions, normalized (axes beyond the rank are
  /// kDirichlet). When any axis is periodic/Neumann the plan executes
  /// step-at-a-time with a ghost refresh between steps, and bt above
  /// reports the temporal block that actually executes (1, or 2 for the
  /// even-bt unroll&jam rows). See core/halo.hpp.
  BoundarySpec boundary;
};

/// Validates (shape, stencil radius, options) against the registry and
/// resolves every parameter. Throws ConfigError on invalid configurations.
/// This is the single validation path; make_plan calls it once.
ResolvedOptions resolve_options(const Shape& shape, int radius,
                                const Options& o);

namespace detail {

/// One rung down the graceful-degradation chain AVX-512 -> AVX2 -> scalar,
/// skipping rungs this binary/machine cannot run. Returns false from the
/// bottom rung (nothing left to degrade to). Defined in plan.cpp.
bool degraded_isa(Isa from, Isa* to);

}  // namespace detail

// ---------------------------------------------------------------------------
// Rank-generic dispatch table.
// ---------------------------------------------------------------------------

namespace detail {

/// The OpenMP team a tiled plan resolves when Options::threads is 0:
/// captured once, at first use, from the calling thread (plan.cpp). The
/// Executor constructor invokes this before spawning its ICV-pinned
/// workers so the capture can never come from a gang-sized worker thread.
int runtime_default_threads();

template <typename G>
inline constexpr int grid_rank = 0;
template <typename T>
inline constexpr int grid_rank<Grid1D<T>> = 1;
template <typename T>
inline constexpr int grid_rank<Grid2D<T>> = 2;
template <typename T>
inline constexpr int grid_rank<Grid3D<T>> = 3;

template <int Dim, typename T>
struct grid_for;
template <typename T>
struct grid_for<1, T> {
  using type = Grid1D<T>;
};
template <typename T>
struct grid_for<2, T> {
  using type = Grid2D<T>;
};
template <typename T>
struct grid_for<3, T> {
  using type = Grid3D<T>;
};
template <typename S>
using grid_for_t = typename grid_for<S::dim, typename S::value_type>::type;

template <typename G>
struct grid_value;
template <typename T>
struct grid_value<Grid1D<T>> {
  using type = T;
};
template <typename T>
struct grid_value<Grid2D<T>> {
  using type = T;
};
template <typename T>
struct grid_value<Grid3D<T>> {
  using type = T;
};
template <typename G>
using grid_value_t = typename grid_value<G>::type;

template <typename G, typename S>
using ExecFn = void (*)(G&, const S&, const ResolvedOptions&, Workspace&);

/// The kernel adapters: each (method, tiling) combination defined ONCE,
/// generically over grid rank. `if constexpr` forwards the rank-appropriate
/// block arguments; combinations the registry does not claim for a rank are
/// never registered, so their discarded branches never run. Every adapter
/// passes the plan's Workspace down so steady-state executes never allocate;
/// the vector write-back drivers also receive the resolved streaming flag.
template <typename V, typename G, typename S>
struct Exec {
  static constexpr int rank = grid_rank<G>;

  // -- untiled --------------------------------------------------------------
  static void scalar(G& g, const S& s, const ResolvedOptions& r,
                     Workspace& ws) {
    jacobi_run(g, r.steps, ws, kWsTmpGrid,
               [&](const G& in, G& out) { reference_step(in, out, s); });
  }
  static void autovec(G& g, const S& s, const ResolvedOptions& r,
                      Workspace& ws) {
    autovec_run(g, s, r.steps, ws);
  }
  static void multiload(G& g, const S& s, const ResolvedOptions& r,
                        Workspace& ws) {
    multiload_run<V>(g, s, r.steps, ws);
  }
  static void reorg(G& g, const S& s, const ResolvedOptions& r,
                    Workspace& ws) {
    reorg_run<V>(g, s, r.steps, ws);
  }
  static void dlt(G& g, const S& s, const ResolvedOptions& r, Workspace& ws) {
    dlt_run<V>(g, s, r.steps, ws, r.streaming);
  }
  static void transpose(G& g, const S& s, const ResolvedOptions& r,
                        Workspace& ws) {
    transpose_vs_run<V>(g, s, r.steps, ws, r.streaming);
  }
  static void transpose_uj(G& g, const S& s, const ResolvedOptions& r,
                           Workspace& ws) {
    if constexpr (rank == 1)
      unroll_jam_run<V, S::radius, 2>(g, s, r.steps, ws);
    else
      unroll_jam2_run<V>(g, s, r.steps, ws);
  }

  // -- tessellate tiling ----------------------------------------------------
  static void tess_autovec(G& g, const S& s, const ResolvedOptions& r,
                           Workspace& ws) {
    if constexpr (rank == 1)
      tess_autovec_run(g, s, r.steps, r.bx, r.bt, ws);
    else if constexpr (rank == 2)
      tess_autovec_run(g, s, r.steps, r.bx, r.by, r.bt, ws);
    else
      tess_autovec_run(g, s, r.steps, r.bx, r.by, r.bz, r.bt, ws);
  }
  static void tess_multiload(G& g, const S& s, const ResolvedOptions& r,
                             Workspace& ws) {
    if constexpr (rank == 1)
      tess_multiload_run<V>(g, s, r.steps, r.bx, r.bt, ws);
  }
  static void tess_reorg(G& g, const S& s, const ResolvedOptions& r,
                         Workspace& ws) {
    if constexpr (rank == 1) tess_reorg_run<V>(g, s, r.steps, r.bx, r.bt, ws);
  }
  static void tess_transpose(G& g, const S& s, const ResolvedOptions& r,
                             Workspace& ws) {
    if constexpr (rank == 1)
      tess_transpose_run<V>(g, s, r.steps, r.bx, r.bt, ws, r.streaming);
    else if constexpr (rank == 2)
      tess_transpose_run<V>(g, s, r.steps, r.bx, r.by, r.bt, ws, r.streaming);
    else
      tess_transpose_run<V>(g, s, r.steps, r.bx, r.by, r.bz, r.bt, ws,
                            r.streaming);
  }
  static void tess_transpose_uj(G& g, const S& s, const ResolvedOptions& r,
                                Workspace& ws) {
    if constexpr (rank == 1)
      tess_transpose_uj2_run<V>(g, s, r.steps, r.bx, r.bt, ws);
    else if constexpr (rank == 2)
      tess_transpose_uj2_run<V>(g, s, r.steps, r.bx, r.by, r.bt, ws);
    else
      tess_transpose_uj2_run<V>(g, s, r.steps, r.bx, r.by, r.bz, r.bt, ws);
  }

  // -- split tiling (uniform signature: the split axis is resolved) ---------
  static void split_dlt(G& g, const S& s, const ResolvedOptions& r,
                        Workspace& ws) {
    sdsl_run<V>(g, s, r.steps, r.split_block, r.bt, ws, r.streaming);
  }

  // -- generic interpreter (any row-based S, compiled or lowered) -----------
  static void generic(G& g, const S& s, const ResolvedOptions& r,
                      Workspace& ws) {
    generic_run<V>(g, s, r.steps, ws);
  }
  static void tess_generic(G& g, const S& s, const ResolvedOptions& r,
                           Workspace& ws) {
    if constexpr (rank == 1)
      tess_generic_run<V>(g, s, r.steps, r.bx, r.bt, ws);
    else if constexpr (rank == 2)
      tess_generic_run<V>(g, s, r.steps, r.bx, r.by, r.bt, ws);
    else
      tess_generic_run<V>(g, s, r.steps, r.bx, r.by, r.bz, r.bt, ws);
  }
};

/// Enum -> kernel adapter for one vector width. The one and only
/// method/tiling switch, shared by every rank. Returns nullptr for
/// combinations the registry must not claim.
template <typename V, typename G, typename S>
ExecFn<G, S> exec_for(Method m, Tiling t) {
  using E = Exec<V, G, S>;
  // Runtime-row descriptors (lowered GenericStencils) execute ONLY through
  // the generic interpreter. The branch below is `if constexpr` on purpose:
  // taking a specialized adapter's address instantiates its body, and those
  // bodies require a compile-time row count — they would not compile
  // against a vector-of-rows type even though they could never be called.
  if constexpr (is_generic_stencil_v<S>) {
    if (m != Method::kGeneric) return nullptr;
    return t == Tiling::kNone        ? &E::generic
           : t == Tiling::kTessellate ? &E::tess_generic
                                       : nullptr;
  } else {
    switch (t) {
      case Tiling::kNone:
        switch (m) {
          case Method::kScalar: return &E::scalar;
          case Method::kAutoVec: return &E::autovec;
          case Method::kMultiLoad: return &E::multiload;
          case Method::kReorg: return &E::reorg;
          case Method::kDlt: return &E::dlt;
          case Method::kTranspose: return &E::transpose;
          case Method::kTransposeUJ: return &E::transpose_uj;
          // The interpreter also runs the compiled descriptors — that is
          // what the fig14 overhead bench and the registry sweep measure.
          case Method::kGeneric: return &E::generic;
        }
        return nullptr;
      case Tiling::kTessellate:
        switch (m) {
          case Method::kAutoVec: return &E::tess_autovec;
          case Method::kMultiLoad:
            return E::rank == 1 ? &E::tess_multiload : nullptr;
          case Method::kReorg: return E::rank == 1 ? &E::tess_reorg : nullptr;
          case Method::kTranspose: return &E::tess_transpose;
          case Method::kTransposeUJ: return &E::tess_transpose_uj;
          case Method::kGeneric: return &E::tess_generic;
          default: return nullptr;
        }
      case Tiling::kSplit:
        return m == Method::kDlt ? &E::split_dlt : nullptr;
    }
    return nullptr;
  }
}

template <typename G, typename S>
struct ExecEntry {
  Method method;
  Tiling tiling;
  Isa isa;
  ExecFn<G, S> fn;
};

template <typename V, typename G, typename S>
void add_entries(std::vector<ExecEntry<G, S>>& table, Isa isa) {
  for (const Capability& cap : capabilities()) {
    if (!cap.supports_rank(grid_rank<G>)) continue;
    if (ExecFn<G, S> fn = exec_for<V, G, S>(cap.method, cap.tiling))
      table.push_back({cap.method, cap.tiling, isa, fn});
  }
}

/// Per-(grid, stencil) dispatch table, built once from the registry: one row
/// per registry capability per compiled vector width. The element type comes
/// from the stencil; a float table binds the same kernels at 2x the lanes.
template <typename G, typename S>
const std::vector<ExecEntry<G, S>>& exec_table() {
  using T = typename S::value_type;
  static const std::vector<ExecEntry<G, S>> table = [] {
    std::vector<ExecEntry<G, S>> t;
    add_entries<Vec<T, 16 / sizeof(T)>, G, S>(t, Isa::kScalar);
#if defined(__AVX2__)
    add_entries<Vec<T, 32 / sizeof(T)>, G, S>(t, Isa::kAvx2);
#endif
#if defined(__AVX512F__)
    add_entries<Vec<T, 64 / sizeof(T)>, G, S>(t, Isa::kAvx512);
#endif
    return t;
  }();
  return table;
}

template <typename G, typename S>
ExecFn<G, S> lookup_exec(const ResolvedOptions& r) {
  for (const ExecEntry<G, S>& e : exec_table<G, S>())
    if (e.method == r.method && e.tiling == r.tiling && e.isa == r.isa)
      return e.fn;
  throw ConfigError(r.method, r.tiling, grid_rank<G>,
                    "registry/dispatch-table mismatch: no kernel bound for "
                    "this combination (internal error)");
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Plans.
// ---------------------------------------------------------------------------

/// A validated, fully resolved execution plan for one (grid shape, stencil)
/// pair. Cheap to copy; execute() is const and reusable.
///
/// The plan owns a Workspace holding every scratch buffer its kernels need;
/// the first execute populates it (NUMA first touch by the compute threads)
/// and all subsequent executes are allocation-free. Copies of a plan SHARE
/// the workspace, so one plan object must not be executed from two threads
/// concurrently THROUGH THE OWNED WORKSPACE — either build one plan per
/// concurrent execution stream, or use the execute(g, ws) overload with a
/// distinct Workspace per in-flight call (what the batched executor's
/// per-request workspace pool does; everything else in the plan is
/// immutable after construction and safe to share).
template <typename G, typename S>
class TypedPlan {
 public:
  TypedPlan(const Shape& shape, const S& stencil, const ResolvedOptions& cfg)
      : shape_(shape),
        stencil_(stencil),
        cfg_(cfg),
        fn_(detail::lookup_exec<G, S>(cfg)),
        ws_(std::make_shared<Workspace>()) {}

  /// Advances @p g by config().steps time steps. The grid must match the
  /// planned shape (checked; everything else was validated at plan time).
  ///
  /// Boundary handling (core/halo.hpp): kDirichlet axes never touch the
  /// ghost cells; kZero axes are zeroed once up front; a periodic/Neumann
  /// axis makes the ghost values depend on the evolving interior, so the
  /// plan runs the bound driver one step at a time with a fill_ghosts
  /// refresh before each step. The interior kernels are identical in every
  /// case — the boundary work is O(halo) per step, outside the hot loops.
  void execute(G& g) const { execute(g, *ws_); }

  /// As execute(g), but every scratch buffer comes from @p ws instead of the
  /// plan-owned workspace. This is the concurrency-safe entry point: the
  /// plan itself is immutable, so any number of threads may run this
  /// overload simultaneously as long as each brings its own grid AND its
  /// own workspace (core/workspace.hpp's WorkspacePool hands out exactly
  /// that). A workspace reused across executes of the same plan stays
  /// allocation-free after its first use, like the owned one.
  /// @p ctl (optional) is the cooperative cancellation/timeout control: when
  /// active, the plan runs step-at-a-time (the same slicing the per-step
  /// boundaries use — bit-identical results, see below) and polls the
  /// control between steps, so a cancelled or expired request frees its
  /// thread within one step. Per-step slicing is bit-identical to the
  /// blocked schedule because every cell's update at step t is the same FP
  /// expression over the same step-(t-1) values no matter how the steps are
  /// grouped — blocking reorders traversal, never arithmetic.
  void execute(G& g, Workspace& ws, const ExecControl* ctl = nullptr) const {
    if (shape_of(g) != shape_)
      throw ConfigError(cfg_.method, cfg_.tiling, detail::grid_rank<G>,
                        "grid does not match the planned shape");
    // Pre-mutation: an injected kernel fault (or a real one, on the first
    // instruction of an unsupported path) leaves the grid untouched, so the
    // caller can rebuild a degraded plan and re-run from the same input.
    fault_point(FaultSite::kKernelSweep);
    const bool polled = ctl != nullptr && ctl->active();
    if (polled) ctl->check();
    if (cfg_.tiling != Tiling::kNone)
      omp_set_num_threads(cfg_.threads);  // per-thread ICV; concrete after
                                          // resolve, so no cross-plan leak
    if (cfg_.steps <= 0) return;
    if (needs_per_step_fill(cfg_.boundary) || polled)
      step_loop(g, ws, polled ? ctl : nullptr);
    else {
      fill_ghosts(g, cfg_.boundary, S::radius);  // no-op unless a kZero axis
      fn_(g, stencil_, cfg_, ws);
    }
    health_scan(g, cfg_.health);
  }

  const Shape& shape() const { return shape_; }
  const S& stencil() const { return stencil_; }
  const ResolvedOptions& config() const { return cfg_; }
  /// The plan-owned scratch storage (introspection / tests).
  Workspace& workspace() const { return *ws_; }

 private:
  /// The steps=1 slicing driver shared by the per-step-boundary path (ghost
  /// refresh between steps) and the cancel/timeout-poll path. One loop for
  /// both means the two compose by construction: a cancellation delivered
  /// at step t leaves the grid at an exact t-step prefix whose ghosts were
  /// refreshed before every completed step. @p ctl may be null (no polling);
  /// the poll comes BEFORE the step's ghost fill, so an aborted run never
  /// half-updates anything.
  void step_loop(G& g, Workspace& ws, const ExecControl* ctl) const {
    ResolvedOptions step = cfg_;
    step.steps = 1;
    for (index t = 0; t < cfg_.steps; ++t) {
      if (ctl != nullptr && t > 0) ctl->check();
      fill_ghosts(g, cfg_.boundary, S::radius);
      fn_(g, stencil_, step, ws);
    }
  }

  Shape shape_;
  S stencil_;
  ResolvedOptions cfg_;
  detail::ExecFn<G, S> fn_;
  std::shared_ptr<Workspace> ws_;
};

template <int R, typename T = double>
using Plan1D = TypedPlan<Grid1D<T>, Stencil1D<R, T>>;
template <int R, int NR, typename T = double>
using Plan2D = TypedPlan<Grid2D<T>, Stencil2D<R, NR, T>>;
template <int R, int NR, typename T = double>
using Plan3D = TypedPlan<Grid3D<T>, Stencil3D<R, NR, T>>;

// ---------------------------------------------------------------------------
// Plan-time autotuning (Options::tune; see core/tuner.hpp).
// ---------------------------------------------------------------------------

namespace detail {

/// Synthetic same-shape grid the tuner times candidate plans on (make_plan
/// only sees the shape, never the user's data — and trials must not advance
/// the user's grid anyway).
template <typename G>
G make_trial_grid(const Shape& shape) {
  using T = grid_value_t<G>;
  if constexpr (grid_rank<G> == 1) {
    G g(shape.nx, shape.halo);
    g.fill([](index x) {
      return static_cast<T>(0.25 + 1e-4 * static_cast<double>(x % 97));
    });
    return g;
  } else if constexpr (grid_rank<G> == 2) {
    G g(shape.nx, shape.ny, shape.halo);
    g.fill([](index x, index y) {
      return static_cast<T>(0.25 +
                            1e-4 * static_cast<double>((x + 3 * y) % 97));
    });
    return g;
  } else {
    G g(shape.nx, shape.ny, shape.nz, shape.halo);
    g.fill([](index x, index y, index z) {
      return static_cast<T>(
          0.25 + 1e-4 * static_cast<double>((x + 3 * y + 7 * z) % 97));
    });
    return g;
  }
}

/// Resolves bx/by/bz/bt empirically: candidate blockings (cache-topology
/// seeded, legality-clamped) race over short timed trials on a synthetic
/// grid of the planned shape; the winner is memoized under the full resolved
/// tuple. Fields the user pinned are never changed. Trials run with tune =
/// kOff, so there is no recursion, and each candidate's step count is
/// budget-capped (tune_trial_steps).
template <typename G, typename S>
Options tuned_options(const Shape& shape, const S& stencil, const Options& o) {
  const ResolvedOptions r0 = resolve_options(shape, S::radius, o);
  const TuneKey key{r0.method, r0.tiling,  shape.rank, r0.isa,  r0.dtype,
                    shape.nx,  shape.ny,   shape.nz,   S::radius,
                    r0.threads, r0.steps,  o.bx,       o.by,    o.bz,
                    o.bt,       r0.boundary};
  // Tuning fills ONLY the fields the user left at 0 — a pinned field is
  // never overwritten, not even by a cache hit (the pins are part of the
  // key, so an entry found here was searched under the same constraints).
  auto apply = [&](const TunedBlocks& b) {
    Options out = o;
    if (o.bx == 0) out.bx = b.bx;
    if (o.by == 0) out.by = b.by;
    if (o.bz == 0) out.bz = b.bz;
    if (o.bt == 0) out.bt = b.bt;
    return out;
  };
  if (o.tune == Tune::kCached)
    if (auto hit = tune_cache_lookup(key)) return apply(*hit);

  // Single-flight: serialize the trial section so concurrent make_plan
  // calls never run timed trials on top of each other (overlapping trials
  // memoize each other's noise), then re-check the cache — the racing
  // planner that lost the lock must reuse the winner's search, not repeat
  // it. kFull skips the re-check by contract (it always re-trials) but
  // still serializes.
  std::lock_guard<std::mutex> trial_lock(tune_trial_mutex());
  if (o.tune == Tune::kCached)
    if (auto hit = tune_cache_lookup(key)) return apply(*hit);

  const Capability* cap = find_capability(o.method, o.tiling);
  const bool even_bt = cap != nullptr && cap->needs_even_bt;
  const auto candidates =
      tune_candidates(shape.rank, shape.nx, shape.ny, shape.nz, S::radius,
                      o.tiling, even_bt, o.steps, o);
  const index points = shape.nx * (shape.rank >= 2 ? shape.ny : 1) *
                       (shape.rank >= 3 ? shape.nz : 1);

  // Pre-resolve every candidate under the REAL run length (legality, and
  // the concrete bt the 0-default resolves to), then time all survivors
  // over ONE shared step count sized for the largest bt. Unequal trial
  // lengths would bias the scores: per-execute fixed costs (the two layout
  // transforms, workspace halo refresh) amortize differently over 2 steps
  // than over 256, and the default candidate must lose only if it is
  // genuinely slower per step.
  struct Candidate {
    TunedBlocks blocks;
    Options opts;
  };
  std::vector<Candidate> runnable;
  std::vector<std::array<index, 4>> seen;  // resolved (bx, by, bz, bt)
  index max_bt = 1;
  for (const TunedBlocks& cand : candidates) {
    Options oc = apply(cand);
    oc.tune = Tune::kOff;
    try {
      const ResolvedOptions rc = resolve_options(shape, S::radius, oc);
      // Race each RESOLVED blocking once: distinct candidates can collapse
      // to the same concrete blocks (e.g. every bt variant resolves to the
      // forced step-granular bt under a periodic/Neumann boundary), and a
      // duplicate trial costs two timed executions for zero information.
      // The first candidate wins ties — tune_candidates puts the
      // fixed-heuristic default first.
      const std::array<index, 4> blocks{rc.bx, rc.by, rc.bz, rc.bt};
      if (std::find(seen.begin(), seen.end(), blocks) != seen.end()) continue;
      seen.push_back(blocks);
      max_bt = std::max(max_bt, rc.bt);
      runnable.push_back({cand, oc});
    } catch (const std::invalid_argument&) {
      continue;  // candidate illegal on this shape: skip it
    }
  }
  // Fully pinned configurations (or a search space the legality rules
  // collapsed to one option) have nothing to race: skip the trial grid —
  // a full second copy of the problem — and both throwaway executions.
  if (runnable.size() <= 1) {
    const TunedBlocks only =
        runnable.empty() ? TunedBlocks{o.bx, o.by, o.bz, o.bt}
                         : runnable.front().blocks;
    tune_cache_store(key, only);
    return apply(only);
  }
  const index trial_steps = tune_trial_steps(points, max_bt, o.steps);

  G trial = make_trial_grid<G>(shape);
  double best_score = -1.0;
  TunedBlocks best{o.bx, o.by, o.bz, o.bt};
  std::uint64_t trial_execs = 0;  // timed executes, for TuneCounters
  for (Candidate& c : runnable) {
    c.opts.steps = trial_steps;
    double score = -1.0;
    try {
      const TypedPlan<G, S> p(shape, stencil,
                              resolve_options(shape, S::radius, c.opts));
      double secs = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < 2; ++rep) {  // best-of-2 absorbs warmup noise
        Timer t;
        p.execute(trial);
        ++trial_execs;
        secs = std::min(secs, t.seconds());
      }
      score = static_cast<double>(points) *
              static_cast<double>(trial_steps) / std::max(secs, 1e-9);
    } catch (const std::invalid_argument&) {
      continue;  // engine-level rejection under the trial step count
    }
    if (score > best_score) {
      best_score = score;
      best = c.blocks;
    }
  }
  detail::tune_note_trials(1, trial_execs);
  tune_cache_store(key, best);
  return apply(best);
}

}  // namespace detail

/// Builds a plan for an explicit stencil descriptor. Validates once against
/// the registry; throws ConfigError on invalid configurations. The element
/// type is the stencil's: Options::dtype is overridden here and only drives
/// the StencilKind overload below. With Options::tune enabled (and a tiled
/// configuration), block sizes the user left at 0 are autotuned here — at
/// plan time, never inside execute.
template <typename S>
TypedPlan<detail::grid_for_t<S>, S> make_plan(const Shape& shape,
                                              const S& stencil,
                                              const Options& o = {}) {
  if (shape.rank != S::dim)
    throw ConfigError(o.method, o.tiling, shape.rank,
                      "shape rank does not match the stencil's rank");
  // Descriptors bound to concrete grid extents (a lowered GenericStencil
  // carrying a per-cell scale field) veto mismatched shapes here — this is
  // what rejects sharding a whole-domain coefficient field across shards
  // whose extents differ from the field's.
  if constexpr (requires {
                  stencil.check_shape(shape.rank, shape.nx, shape.ny,
                                      shape.nz);
                }) {
    if (const char* why =
            stencil.check_shape(shape.rank, shape.nx, shape.ny, shape.nz))
      throw ConfigError(o.method, o.tiling, shape.rank, why);
  }
  Options oo = o;
  oo.dtype = dtype_of<typename S::value_type>();
  if (oo.tune != Tune::kOff && oo.tiling != Tiling::kNone)
    oo = detail::tuned_options<detail::grid_for_t<S>, S>(shape, stencil, oo);
  return TypedPlan<detail::grid_for_t<S>, S>(
      shape, stencil, resolve_options(shape, S::radius, oo));
}

// ---------------------------------------------------------------------------
// Sharded plans: one TypedPlan per shard, driven as exchange/compute waves.
// ---------------------------------------------------------------------------

class Executor;  // core/executor.hpp

namespace detail {

/// Runs every task in @p tasks to completion: concurrently over @p ex's
/// gangs when an executor is given (one barrier — the wave ends when the
/// last task finishes; the first raised exception is rethrown after all
/// tasks drained), serially in order otherwise. Defined in plan.cpp.
void run_wave(Executor* ex, std::vector<std::function<void()>>& tasks);

}  // namespace detail

/// A plan over a ShardedGrid<G>: the monolithic domain split along its
/// outermost axis (core/shard.hpp), one TypedPlan — and therefore one
/// private Workspace — per shard, and a step loop that drives the shards as
/// three kinds of parallel waves:
///
///   fill  F   per shard: non-split-axis ghosts (fill_ghosts) + physical
///             split faces (fill_ghost_face) — own-grid writes only
///   exch  E   per shard: split-axis ghost strips copied from the
///             neighbors' interior edges (+ the periodic ring wrap)
///   sweep S   per shard: one time step via its TypedPlan, then the next
///             step's F fill fused behind the sweep
///
/// as F, then per step E -> S. Within a wave every task touches a disjoint
/// data set (E reads neighbor interiors written in the PREVIOUS wave and
/// writes only its own ghosts), so waves need no locks — just the barrier
/// between them. With an Executor, one shard's exchange memcpys overlap
/// other shards' sweeps across gangs, and each shard's fill is fused behind
/// its own sweep inside one task — the O(halo) boundary work hides behind
/// the O(interior) compute.
///
/// Every shard plan is built with an all-Dirichlet boundary and steps = 1:
/// the SHARDED plan owns every ghost write and the step loop, the shard
/// plans only sweep interiors. Results are bit-identical to the monolithic
/// TypedPlan under the same options (see core/shard.hpp on why the
/// exchange reproduces fill_ghosts' corner semantics exactly).
template <typename G, typename S>
class ShardedPlan {
 public:
  /// Validates the decomposition (outermost axis only, shard extents >=
  /// radius) and the full configuration: each shard plan goes through
  /// resolve_options, and the split-axis boundary — which the shard plans
  /// never see — is checked against the registry here. Throws ConfigError.
  ShardedPlan(const Shape& shape, const S& stencil, const ShardSpec& spec,
              const Options& o)
      : shape_(shape), steps_(o.steps), stencil_(stencil) {
    const int rank = shape.rank;
    auto fail = [&](const std::string& reason) -> void {
      throw ConfigError(o.method, o.tiling, rank, reason);
    };
    if (rank != S::dim) fail("shape rank does not match the stencil's rank");
    const index outer = rank == 1 ? shape.nx : rank == 2 ? shape.ny : shape.nz;
    try {
      layout_ = shard_layout(rank, outer, spec);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    }
    if (const char* why = shard_violation(layout_, S::radius)) fail(why);

    // Normalize the user boundary to the rank (mirrors resolve_options) and
    // validate the split axis against the registry: the shard plans run
    // all-Dirichlet, so without this check an unsupported periodic split
    // axis would silently pass validation.
    bc_ = o.boundary;
    if (rank < 2) bc_.y = Boundary::kDirichlet;
    if (rank < 3) bc_.z = Boundary::kDirichlet;
    const Boundary split_b = rank == 1 ? bc_.x : rank == 2 ? bc_.y : bc_.z;
    if (const Capability* cap = find_capability(o.method, o.tiling);
        cap != nullptr && !cap->supports_boundary(split_b))
      fail(std::string("not implemented for boundary ") +
           boundary_name(split_b));

    Options oi = o;
    oi.steps = 1;  // the sharded plan owns the step loop
    oi.boundary = bc_;
    (rank == 1 ? oi.boundary.x : rank == 2 ? oi.boundary.y : oi.boundary.z) =
        Boundary::kDirichlet;
    if (spec.threads_per_shard > 0)
      oi.max_threads = o.max_threads > 0
                           ? std::min(o.max_threads, spec.threads_per_shard)
                           : spec.threads_per_shard;
    oi_ = oi;  // kept for degraded-ISA shard-plan rebuilds (execute_impl)
    plans_.reserve(static_cast<std::size_t>(layout_.count));
    for (int i = 0; i < layout_.count; ++i) {
      const index e = layout_.extent[static_cast<std::size_t>(i)];
      Shape si = shape;
      (rank == 1 ? si.nx : rank == 2 ? si.ny : si.nz) = e;
      plans_.push_back(make_plan(si, stencil, oi));
    }
  }

  /// Advances @p sg by steps() time steps, running every wave serially on
  /// the calling thread (no executor — tests and single-core use).
  void execute(ShardedGrid<G>& sg) const { execute_impl(sg, nullptr); }

  /// As execute(sg), but each wave fans out over @p ex's gangs (one task
  /// per shard). The executor may serve other requests concurrently; this
  /// call blocks until the last wave drains.
  void execute(ShardedGrid<G>& sg, Executor& ex) const {
    execute_impl(sg, &ex);
  }

  const Shape& shape() const { return shape_; }
  const ShardLayout& layout() const { return layout_; }
  int shards() const { return layout_.count; }
  index steps() const { return steps_; }
  /// The per-shard plan (introspection: resolved blocks, threads, ...).
  const TypedPlan<G, S>& shard_plan(int i) const {
    return plans_[static_cast<std::size_t>(i)];
  }
  /// The normalized boundary conditions the sharded step loop applies.
  const BoundarySpec& boundary() const { return bc_; }

 private:
  void execute_impl(ShardedGrid<G>& sg, Executor* ex) const {
    if (sg.shards() != layout_.count ||
        shape_of(sg.shard(0)) != plans_.front().shape())
      throw ConfigError(plans_.front().config().method,
                        plans_.front().config().tiling, shape_.rank,
                        "sharded grid does not match the planned "
                        "decomposition");
    if (steps_ <= 0) return;
    const int n = layout_.count;
    std::vector<std::function<void()>> wave(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      wave[static_cast<std::size_t>(i)] = [this, &sg, i] {
        sg.fill_shard_ghosts(i, bc_, S::radius);
      };
    detail::run_wave(ex, wave);
    for (index t = 0; t < steps_; ++t) {
      for (int i = 0; i < n; ++i)
        wave[static_cast<std::size_t>(i)] = [this, &sg, i] {
          // The exchange only copies neighbor interior edges frozen by the
          // previous wave into this shard's ghosts — idempotent, so one
          // in-place retry contains a transient fault inside the wave.
          try {
            fault_point(FaultSite::kShardExchange);
            sg.exchange_shard_ghosts(i, bc_, S::radius);
          } catch (const TransientError&) {
            sg.exchange_shard_ghosts(i, bc_, S::radius);
          }
        };
      detail::run_wave(ex, wave);
      const bool last = t + 1 == steps_;
      for (int i = 0; i < n; ++i)
        wave[static_cast<std::size_t>(i)] = [this, &sg, i, last] {
          const std::size_t si = static_cast<std::size_t>(i);
          try {
            plans_[si].execute(sg.shard(i));
          } catch (const KernelFault&) {
            // Per-wave containment: a kernel fault fires pre-mutation, so
            // this shard's sub-grid is still at step t. Rebuild its plan
            // one ISA rung down and retry the step before the wave barrier
            // would rethrow — one faulting shard must not poison an
            // otherwise-complete wave.
            Isa down;
            if (!detail::degraded_isa(plans_[si].config().isa, &down)) throw;
            Options od = oi_;
            od.isa = down;
            make_plan(plans_[si].shape(), stencil_, od).execute(sg.shard(i));
          }
          if (!last) sg.fill_shard_ghosts(i, bc_, S::radius);
        };
      detail::run_wave(ex, wave);
    }
  }

  Shape shape_;
  index steps_ = 0;
  S stencil_;
  Options oi_;  ///< per-shard options (steps=1, Dirichlet split axis)
  ShardLayout layout_;
  BoundarySpec bc_;
  std::vector<TypedPlan<G, S>> plans_;
};

/// Builds a sharded plan for an explicit stencil descriptor (the typed
/// analogue of make_plan; the grid type follows from the stencil).
template <typename S>
ShardedPlan<detail::grid_for_t<S>, S> make_sharded_plan(
    const Shape& shape, const S& stencil, const ShardSpec& spec,
    const Options& o = {}) {
  return ShardedPlan<detail::grid_for_t<S>, S>(shape, stencil, spec, o);
}

/// Rank-erased plan for runtime stencil kinds (CLI / bench / service use).
/// Holds a TypedPlan for one of the named Table-1 stencils in the dtype the
/// Options selected; execute() on the wrong grid rank — or on a grid whose
/// element type differs from the planned dtype — throws ConfigError.
///
/// Concurrency follows TypedPlan's rule: the one-argument execute() goes
/// through the shared plan-owned workspace (single execution stream only);
/// the (grid, workspace) overloads are safe from any number of threads as
/// long as each in-flight call brings its own grid and workspace.
class Plan {
 public:
  void execute(Grid1D<double>& g) const { dispatch(f1_, g, nullptr, nullptr); }
  void execute(Grid2D<double>& g) const { dispatch(f2_, g, nullptr, nullptr); }
  void execute(Grid3D<double>& g) const { dispatch(f3_, g, nullptr, nullptr); }
  void execute(Grid1D<float>& g) const { dispatch(f1f_, g, nullptr, nullptr); }
  void execute(Grid2D<float>& g) const { dispatch(f2f_, g, nullptr, nullptr); }
  void execute(Grid3D<float>& g) const { dispatch(f3f_, g, nullptr, nullptr); }

  /// The @p ctl overloads thread an ExecControl (cancel/timeout polling)
  /// down to TypedPlan::execute; see its documentation.
  void execute(Grid1D<double>& g, Workspace& ws,
               const ExecControl* ctl = nullptr) const {
    dispatch(f1_, g, &ws, ctl);
  }
  void execute(Grid2D<double>& g, Workspace& ws,
               const ExecControl* ctl = nullptr) const {
    dispatch(f2_, g, &ws, ctl);
  }
  void execute(Grid3D<double>& g, Workspace& ws,
               const ExecControl* ctl = nullptr) const {
    dispatch(f3_, g, &ws, ctl);
  }
  void execute(Grid1D<float>& g, Workspace& ws,
               const ExecControl* ctl = nullptr) const {
    dispatch(f1f_, g, &ws, ctl);
  }
  void execute(Grid2D<float>& g, Workspace& ws,
               const ExecControl* ctl = nullptr) const {
    dispatch(f2f_, g, &ws, ctl);
  }
  void execute(Grid3D<float>& g, Workspace& ws,
               const ExecControl* ctl = nullptr) const {
    dispatch(f3f_, g, &ws, ctl);
  }

  int rank() const { return shape_.rank; }
  const Shape& shape() const { return shape_; }
  const ResolvedOptions& config() const { return cfg_; }

 private:
  friend Plan make_plan(const Shape& shape, StencilKind kind,
                        const Options& o);
  friend Plan make_plan(const Shape& shape, const StencilSpec& spec,
                        const Options& o);
  friend Plan make_plan(const Shape& shape, const GenericStencil& gs,
                        const Options& o);

  /// Builds the typed plan for @p stencil and stores its execute closure in
  /// the rank/dtype slot it belongs to — the one lowering step every
  /// rank-erased binder (kind, spec, generic) shares. Private; reachable
  /// only through the friended make_plan overloads.
  template <typename S>
  static void bind_typed(Plan& p, const Shape& shape, const S& stencil,
                         const Options& o) {
    auto typed = make_plan(shape, stencil, o);
    p.cfg_ = typed.config();
    using G = detail::grid_for_t<S>;
    constexpr bool f32 = std::is_same_v<typename S::value_type, float>;
    auto fn = [typed = std::move(typed)](G& g, Workspace* ws,
                                         const ExecControl* ctl) {
      ws != nullptr ? typed.execute(g, *ws, ctl) : typed.execute(g);
    };
    if constexpr (detail::grid_rank<G> == 1) {
      if constexpr (f32) p.f1f_ = std::move(fn);
      else p.f1_ = std::move(fn);
    } else if constexpr (detail::grid_rank<G> == 2) {
      if constexpr (f32) p.f2f_ = std::move(fn);
      else p.f2_ = std::move(fn);
    } else {
      if constexpr (f32) p.f3f_ = std::move(fn);
      else p.f3_ = std::move(fn);
    }
  }

  template <typename F, typename G>
  void dispatch(const F& f, G& g, Workspace* ws, const ExecControl* ctl) const {
    if (!f)
      throw ConfigError(cfg_.method, cfg_.tiling, detail::grid_rank<G>,
                        "plan was built for a different grid rank or dtype");
    f(g, ws, ctl);
  }

  std::function<void(Grid1D<double>&, Workspace*, const ExecControl*)> f1_;
  std::function<void(Grid2D<double>&, Workspace*, const ExecControl*)> f2_;
  std::function<void(Grid3D<double>&, Workspace*, const ExecControl*)> f3_;
  std::function<void(Grid1D<float>&, Workspace*, const ExecControl*)> f1f_;
  std::function<void(Grid2D<float>&, Workspace*, const ExecControl*)> f2f_;
  std::function<void(Grid3D<float>&, Workspace*, const ExecControl*)> f3f_;
  Shape shape_;
  ResolvedOptions cfg_;
};

/// Builds a rank-erased plan for one of the named Table-1 stencil kinds
/// (with the factory-default weights). Defined in plan.cpp.
Plan make_plan(const Shape& shape, StencilKind kind, const Options& o = {});

/// Builds a rank-erased plan from a runtime StencilSpec — one of the
/// compiled stencil shapes carrying user coefficients (and an optional
/// radius cross-check); see core/problems.hpp. Throws ConfigError on a
/// radius mismatch or a wrong coefficient count. When spec.generic is set,
/// forwards to the GenericStencil overload below. Defined in plan.cpp.
Plan make_plan(const Shape& shape, const StencilSpec& spec,
               const Options& o = {});

/// Builds a rank-erased plan from a runtime GenericStencil
/// (core/generic_stencil.hpp): validates the shape (generic_violation),
/// requires Options::method == Method::kGeneric (the interpreter is the one
/// kernel able to run an arbitrary tap set — demanding the explicit opt-in
/// beats silently ignoring the requested method), lowers the taps at the
/// shape's effective radius in the Options dtype, and binds the
/// register-blocked interpreter. Throws ConfigError on any violation.
/// Defined in plan.cpp.
Plan make_plan(const Shape& shape, const GenericStencil& gs,
               const Options& o = {});

}  // namespace tsv
