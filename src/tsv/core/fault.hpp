// Resilience primitives: the structured error taxonomy every layer throws
// from, cooperative cancellation/timeout plumbing, and a deterministic,
// seed-replayable fault injector.
//
// Error taxonomy
// --------------
// `TsvError` is a mixin base (not a std::exception subclass) so existing
// exception types can adopt it without changing their std:: lineage:
// `ConfigError` stays a `std::invalid_argument`, `OverloadError` stays a
// `std::runtime_error`, and both now ALSO inherit `TsvError`. Callers that
// only care about retryability catch via `is_transient_error()` on the
// exception_ptr; callers that care about the class catch the concrete type.
//
//   TsvError (mixin, is_transient() -> false)
//    +- ConfigError     invalid request/options        (capability.hpp)
//    +- OverloadError   admission rejected / shed      (scheduler.hpp)
//    +- TransientError  retryable infrastructure fault (is_transient -> true)
//    +- TimeoutError    per-request deadline expired
//    +- CancelledError  cooperative cancel delivered
//    +- KernelFault     kernel path failed; plan may degrade to a lower ISA
//    +- NumericalError  NaN/Inf detected by a health scan (health.hpp)
//
// std::bad_alloc is treated as transient by is_transient_error(): an OOM
// inside a WorkspacePool checkout is exactly the kind of pressure spike a
// backoff-retry absorbs.
//
// Fault injection
// ---------------
// Five named fault points thread through the execution stack:
//
//   workspace.alloc     WorkspacePool::checkout, before any allocation
//   plan.build          PlanCache::get, before make_plan
//   executor.dispatch   gang task body, before execution starts
//   shard.exchange      ShardedPlan halo-exchange wave
//   kernel.sweep        TypedPlan::execute, before the kernel dispatch
//
// Every site fires BEFORE the step it guards mutates anything, so a
// transient fault is always retry-safe: re-running the request from the
// same input is bit-identical to a fault-free run.
//
// The injector is off unless the environment sets TSV_FAULT_INJECTION=1
// (checked once at first use); when off, `fault_point()` is a single
// relaxed atomic load. Armed points fire deterministically: each point
// owns a splitmix64 stream seeded from TSV_FAULT_SEED (or `seed()`) xor
// the point name's FNV-1a hash, so a given (seed, submission order) replays
// the same fault schedule — chaos tests assert exact outcomes, not
// distributions.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "tsv/common/aligned.hpp"

namespace tsv {

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

// Mixin root of the library's error taxonomy. Deliberately NOT derived from
// std::exception: concrete errors keep their natural std:: base
// (invalid_argument, runtime_error) and add this one, so `catch (const
// TsvError&)` spans the whole taxonomy while `catch (const
// std::invalid_argument&)` still works for ConfigError.
class TsvError {
 public:
  virtual ~TsvError() = default;
  // True when retrying the same request against the same input can succeed
  // (resource pressure, injected transient faults). Config/overload/cancel/
  // timeout/numerical errors are not retryable: the request itself is the
  // problem.
  virtual bool is_transient() const noexcept { return false; }
};

// Retryable infrastructure fault: allocation pressure, an injected
// transient, a failed (idempotent) halo exchange.
class TransientError : public std::runtime_error, public TsvError {
 public:
  explicit TransientError(const std::string& what)
      : std::runtime_error(what) {}
  bool is_transient() const noexcept override { return true; }
};

// The request's deadline budget (`timeout_ms`) expired before or during
// execution. Not transient: retrying an expired request cannot help.
class TimeoutError : public std::runtime_error, public TsvError {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

// Cooperative cancellation was delivered through a CancelToken.
class CancelledError : public std::runtime_error, public TsvError {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

// A kernel path failed (injected or real, e.g. an illegal instruction on a
// heterogeneous fleet). PlanCache reacts by degrading the plan one ISA rung
// (AVX-512 -> AVX2 -> scalar) and rebuilding; only when the scalar rung
// itself faults does the error surface — and then it is still transient
// (the fault fires pre-mutation, so a scheduler-level retry of the whole
// request against the now-degraded plan can succeed).
class KernelFault : public std::runtime_error, public TsvError {
 public:
  explicit KernelFault(const std::string& what) : std::runtime_error(what) {}
  bool is_transient() const noexcept override { return true; }
};

// A health scan (Options::health_check) found a non-finite value in the
// output. Carries the linear interior index of the first bad cell so the
// caller can localize the corruption.
class NumericalError : public std::runtime_error, public TsvError {
 public:
  NumericalError(const std::string& what, index first_bad)
      : std::runtime_error(what), first_bad_index_(first_bad) {}
  index first_bad_index() const noexcept { return first_bad_index_; }

 private:
  index first_bad_index_;
};

// Classify a captured exception for the retry loop: TsvError answers for
// itself, bad_alloc counts as transient (memory pressure), everything else
// is permanent. Null pointers are not an error (not transient).
bool is_transient_error(const std::exception_ptr& ep) noexcept;

// ---------------------------------------------------------------------------
// Cooperative cancellation.
// ---------------------------------------------------------------------------

// Copyable handle to a shared cancellation flag. Default-constructed tokens
// are inert (`valid() == false`, never cancelled); `CancelToken::make()`
// creates a live one. Cancel is cooperative: the executor checks the token
// at dispatch and between time steps, so a cancelled long-running request
// frees its gang within one step, not one request.
class CancelToken {
 public:
  CancelToken() = default;
  static CancelToken make() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }
  void cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }
  bool valid() const noexcept { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Execution-control block threaded down to TypedPlan::execute: the kernel
// loop polls it between time steps (via the existing steps=1 slicing) and
// aborts with the matching error. `cancelled` is a predicate, not a token,
// so a coalesced group can encode "all live members cancelled" without the
// plan layer knowing about groups.
struct ExecControl {
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline = Clock::time_point::max();
  std::function<bool()> cancelled;

  // True when this control can ever fire — lets the plan skip the per-step
  // slicing (and its per-step ghost fills) for plain requests.
  bool active() const {
    return static_cast<bool>(cancelled) ||
           deadline != Clock::time_point::max();
  }
  // Throws CancelledError / TimeoutError when the request should stop.
  // Cancel wins over timeout: an explicit cancel is the caller's word.
  void check() const;
};

// ---------------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------------

enum class FaultSite : int {
  kWorkspaceAlloc = 0,  // "workspace.alloc"
  kPlanBuild = 1,       // "plan.build"
  kExecutorDispatch = 2,  // "executor.dispatch"
  kShardExchange = 3,   // "shard.exchange"
  kKernelSweep = 4,     // "kernel.sweep"
};
inline constexpr int kFaultSiteCount = 5;

const char* fault_site_name(FaultSite site) noexcept;

class FaultInjector {
 public:
  struct Config {
    double probability = 0.0;  // fire on each pass with this probability
    std::uint64_t count = 0;   // additionally fire the first `count` passes
    bool once = false;         // fire exactly the next pass, then disarm
  };

  struct PointStats {
    std::uint64_t passes = 0;  // times the site was reached while enabled
    std::uint64_t fires = 0;   // times it threw
  };

  static FaultInjector& instance();

  // Master switch. Reads TSV_FAULT_INJECTION at construction; tests may
  // force it on without the environment.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept;

  // Re-seed every point's deterministic stream and clear pass/fire
  // counters. Also applied by the TSV_FAULT_SEED environment variable.
  void seed(std::uint64_t s);

  // Arm a point by name ("workspace.alloc", ...). Throws std::out_of_range
  // for an unknown name. Arming implies set_enabled(true).
  void arm(const std::string& point, Config cfg);
  void disarm(const std::string& point);
  // Disarm every point and clear counters; leaves enabled() untouched.
  void reset();

  PointStats stats(const std::string& point) const;

  // Internal: called by fault_point() on the slow path.
  void maybe_fire(FaultSite site);

 private:
  FaultInjector();

  struct Point;
  std::unique_ptr<Point> points_[kFaultSiteCount];
  std::atomic<bool> enabled_{false};
  std::uint64_t base_seed_ = 0x9e3779b97f4a7c15ull;

  int index_of(const std::string& point) const;
};

// The fault point itself: a single relaxed load when injection is off (the
// only cost production code pays), a registry call when on.
inline void fault_point(FaultSite site) {
  FaultInjector& fi = FaultInjector::instance();
  if (fi.enabled()) fi.maybe_fire(site);
}

}  // namespace tsv
