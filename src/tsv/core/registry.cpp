#include "tsv/core/registry.hpp"

namespace tsv {

namespace {

constexpr unsigned kRank1 = 1u << 0;
constexpr unsigned kRank2 = 1u << 1;
constexpr unsigned kRank3 = 1u << 2;
constexpr unsigned kAllRanks = kRank1 | kRank2 | kRank3;

// The registry table. One row per implemented (method, tiling) pair; the
// kernels behind each row are wired up once, rank-generically, in
// core/plan.hpp's dispatch table.
const std::vector<Capability>& table() {
  static const std::vector<Capability> rows = {
      // -- untiled sweeps (paper §4.2; single-threaded by design) ----------
      {Method::kScalar, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries, XRule::kNone,
       false, false,
       "plain scalar reference"},
      {Method::kAutoVec, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries, XRule::kNone,
       false, false,
       "compiler auto-vectorization"},
      {Method::kMultiLoad, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries, XRule::kNone,
       false, false,
       "unaligned load per shifted vector (paper §2.1)"},
      {Method::kReorg, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries, XRule::kNone,
       false, false,
       "aligned loads + register shuffles (paper §2.1)"},
      {Method::kDlt, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries, XRule::kWidth,
       false, true,
       "dimension-lifting transpose (Henretty; paper §2.2)"},
      {Method::kTranspose, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries,
       XRule::kWidth2, false, true,
       "register-block transpose layout (paper §3.2, \"Our\")"},
      {Method::kTransposeUJ, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries,
       XRule::kWidth2, false, false,
       "transpose layout + 2-step unroll&jam (paper §3.3, \"Our (2 steps)\")"},
      // -- tessellate tiling (paper §3.4; Yuan SC'17), multicore -----------
      {Method::kAutoVec, Tiling::kTessellate, kAllRanks, kAllDtypes, kAllBoundaries,
       XRule::kNone, false, false,
       "tessellation baseline: tiled compiler-vectorized sweeps"},
      {Method::kMultiLoad, Tiling::kTessellate, kRank1, kAllDtypes, kAllBoundaries,
       XRule::kNone, false, false,
       "ablation: tessellate tiling over multiload sweeps (1D)"},
      {Method::kReorg, Tiling::kTessellate, kRank1, kAllDtypes, kAllBoundaries, XRule::kNone,
       false, false,
       "ablation: tessellate tiling over reorg sweeps (1D)"},
      {Method::kTranspose, Tiling::kTessellate, kAllRanks, kAllDtypes, kAllBoundaries,
       XRule::kWidth2, false, true,
       "the paper's scheme: tessellate tiling + transpose layout"},
      {Method::kTransposeUJ, Tiling::kTessellate, kAllRanks, kAllDtypes, kAllBoundaries,
       XRule::kWidth2, true, false,
       "pair-granular tessellation of the 2-step unroll&jam scheme"},
      // -- generic interpreter (runtime tap lists; core/generic_stencil.hpp)
      {Method::kGeneric, Tiling::kNone, kAllRanks, kAllDtypes, kAllBoundaries,
       XRule::kNone, false, false,
       "register-blocked interpreter over runtime tap lists"},
      {Method::kGeneric, Tiling::kTessellate, kAllRanks, kAllDtypes,
       kAllBoundaries, XRule::kNone, false, false,
       "tessellate tiling over the generic interpreter"},
      // -- split tiling over the DLT layout (SDSL baseline) ----------------
      {Method::kDlt, Tiling::kSplit, kAllRanks, kAllDtypes, kAllBoundaries, XRule::kWidth,
       false, true,
       "SDSL baseline: DLT layout + split/hybrid tiling"},
  };
  return rows;
}

}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::kScalar: return "scalar";
    case Method::kAutoVec: return "autovec";
    case Method::kMultiLoad: return "multiload";
    case Method::kReorg: return "reorg";
    case Method::kDlt: return "dlt";
    case Method::kTranspose: return "transpose";
    case Method::kTransposeUJ: return "transpose-uj2";
    case Method::kGeneric: return "generic";
  }
  return "?";
}

const char* tiling_name(Tiling t) {
  switch (t) {
    case Tiling::kNone: return "none";
    case Tiling::kTessellate: return "tessellate";
    case Tiling::kSplit: return "split";
  }
  return "?";
}

const std::vector<Capability>& capabilities() { return table(); }

const Capability* find_capability(Method m, Tiling t) {
  for (const Capability& c : table())
    if (c.method == m && c.tiling == t) return &c;
  return nullptr;
}

bool supports(Method m, Tiling t, int rank, Isa isa) {
  return supports(m, t, rank, isa, Dtype::kF64) ||
         supports(m, t, rank, isa, Dtype::kF32);
}

bool supports(Method m, Tiling t, int rank, Isa isa, Dtype dtype) {
  const Capability* cap = find_capability(m, t);
  if (cap == nullptr || !cap->supports_rank(rank) ||
      !cap->supports_dtype(dtype))
    return false;
  if (isa == Isa::kAuto) isa = best_isa();
  return isa_compiled(isa) && isa_supported(isa);
}

bool supports(Method m, Tiling t, int rank, Isa isa, Dtype dtype,
              Boundary boundary) {
  if (!supports(m, t, rank, isa, dtype)) return false;
  return find_capability(m, t)->supports_boundary(boundary);
}

std::vector<Method> supported_methods(Tiling t, int rank) {
  std::vector<Method> v;
  for (const Capability& c : table())
    if (c.tiling == t && c.supports_rank(rank)) v.push_back(c.method);
  return v;
}

std::vector<Isa> runnable_isas() {
  std::vector<Isa> v;
  for (Isa isa : all_isas())
    if (isa_compiled(isa) && isa_supported(isa)) v.push_back(isa);
  return v;
}

const std::vector<Method>& all_methods() {
  static const std::vector<Method> v = {
      Method::kScalar,    Method::kAutoVec,   Method::kMultiLoad,
      Method::kReorg,     Method::kDlt,       Method::kTranspose,
      Method::kTransposeUJ, Method::kGeneric};
  return v;
}

const std::vector<Tiling>& all_tilings() {
  static const std::vector<Tiling> v = {Tiling::kNone, Tiling::kTessellate,
                                        Tiling::kSplit};
  return v;
}

const std::vector<Isa>& all_isas() {
  static const std::vector<Isa> v = {Isa::kScalar, Isa::kAvx2, Isa::kAvx512};
  return v;
}

const std::vector<Dtype>& all_dtypes() {
  static const std::vector<Dtype> v = {Dtype::kF64, Dtype::kF32};
  return v;
}

std::optional<Method> method_from_name(std::string_view name) {
  for (Method m : all_methods())
    if (name == method_name(m)) return m;
  return std::nullopt;
}

std::optional<Tiling> tiling_from_name(std::string_view name) {
  for (Tiling t : all_tilings())
    if (name == tiling_name(t)) return t;
  return std::nullopt;
}

std::optional<Isa> isa_from_name(std::string_view name) {
  if (name == isa_name(Isa::kAuto)) return Isa::kAuto;
  for (Isa isa : all_isas())
    if (name == isa_name(isa)) return isa;
  return std::nullopt;
}

std::optional<Dtype> dtype_from_name(std::string_view name) {
  if (name == "double") return Dtype::kF64;
  if (name == "float") return Dtype::kF32;
  for (Dtype d : all_dtypes())
    if (name == dtype_name(d)) return d;
  return std::nullopt;
}

}  // namespace tsv
