#include "tsv/core/halo.hpp"

namespace tsv {

const char* boundary_name(Boundary b) {
  switch (b) {
    case Boundary::kDirichlet: return "dirichlet";
    case Boundary::kZero: return "zero";
    case Boundary::kPeriodic: return "periodic";
    case Boundary::kNeumann: return "neumann";
  }
  return "?";
}

const std::vector<Boundary>& all_boundaries() {
  static const std::vector<Boundary> v = {
      Boundary::kDirichlet, Boundary::kZero, Boundary::kPeriodic,
      Boundary::kNeumann};
  return v;
}

std::optional<Boundary> boundary_from_name(std::string_view name) {
  for (Boundary b : all_boundaries())
    if (name == boundary_name(b)) return b;
  return std::nullopt;
}

const char* boundary_violation(int rank, index nx, index ny, index nz,
                               int radius, const BoundarySpec& bc) {
  const struct {
    Boundary b;
    index n;
  } axes[] = {{bc.x, nx}, {bc.y, ny}, {bc.z, nz}};
  static const char* const msgs[] = {
      "periodic/neumann boundary in x needs an extent >= the stencil radius",
      "periodic/neumann boundary in y needs an extent >= the stencil radius",
      "periodic/neumann boundary in z needs an extent >= the stencil radius"};
  for (int a = 0; a < rank; ++a)
    if (boundary_per_step(axes[a].b) && axes[a].n < radius) return msgs[a];
  return nullptr;
}

}  // namespace tsv
