#include "tsv/core/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "tsv/common/cpu.hpp"
#include "tsv/core/halo.hpp"
#include "tsv/core/registry.hpp"

namespace tsv {

const char* tune_name(Tune t) {
  switch (t) {
    case Tune::kOff: return "off";
    case Tune::kCached: return "cached";
    case Tune::kFull: return "full";
  }
  return "?";
}

std::optional<Tune> tune_from_name(std::string_view name) {
  for (Tune t : {Tune::kOff, Tune::kCached, Tune::kFull})
    if (name == tune_name(t)) return t;
  return std::nullopt;
}

namespace {

auto key_tie(const TuneKey& k) {
  return std::tie(k.method, k.tiling, k.rank, k.isa, k.dtype, k.nx, k.ny,
                  k.nz, k.radius, k.threads, k.steps, k.pin_bx, k.pin_by,
                  k.pin_bz, k.pin_bt, k.boundary.x, k.boundary.y,
                  k.boundary.z);
}

std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

/// Cache slot: the tuned blocks plus where they came from. The origin mark
/// is what distinguishes a db WARM hit from an ordinary memo hit in the
/// counters; a fresh trial result overwrites the mark (the entry is then
/// this process's own measurement, not inherited state).
struct Slot {
  TunedBlocks blocks;
  bool from_db = false;
};

std::map<TuneKey, Slot>& cache() {
  static std::map<TuneKey, Slot> c;
  return c;
}

/// Monotone counters. Individually atomic (relaxed): readers take a
/// snapshot, not a transaction — same contract as every stats() in the
/// library.
struct Counters {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> memo_hits{0};
  std::atomic<std::uint64_t> db_warm_hits{0};
  std::atomic<std::uint64_t> trial_searches{0};
  std::atomic<std::uint64_t> trial_executions{0};
  std::atomic<std::uint64_t> db_loads{0};
  std::atomic<std::uint64_t> db_entries_loaded{0};
  std::atomic<std::uint64_t> db_load_rejects{0};
  std::atomic<std::uint64_t> db_saves{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

}  // namespace

bool operator<(const TuneKey& a, const TuneKey& b) {
  return key_tie(a) < key_tie(b);
}

TuneCounters tune_counters() {
  const Counters& c = counters();
  TuneCounters out;
  out.lookups = c.lookups.load(std::memory_order_relaxed);
  out.memo_hits = c.memo_hits.load(std::memory_order_relaxed);
  out.db_warm_hits = c.db_warm_hits.load(std::memory_order_relaxed);
  out.trial_searches = c.trial_searches.load(std::memory_order_relaxed);
  out.trial_executions = c.trial_executions.load(std::memory_order_relaxed);
  out.db_loads = c.db_loads.load(std::memory_order_relaxed);
  out.db_entries_loaded = c.db_entries_loaded.load(std::memory_order_relaxed);
  out.db_load_rejects = c.db_load_rejects.load(std::memory_order_relaxed);
  out.db_saves = c.db_saves.load(std::memory_order_relaxed);
  return out;
}

void tune_counters_reset() {
  Counters& c = counters();
  c.lookups.store(0, std::memory_order_relaxed);
  c.memo_hits.store(0, std::memory_order_relaxed);
  c.db_warm_hits.store(0, std::memory_order_relaxed);
  c.trial_searches.store(0, std::memory_order_relaxed);
  c.trial_executions.store(0, std::memory_order_relaxed);
  c.db_loads.store(0, std::memory_order_relaxed);
  c.db_entries_loaded.store(0, std::memory_order_relaxed);
  c.db_load_rejects.store(0, std::memory_order_relaxed);
  c.db_saves.store(0, std::memory_order_relaxed);
}

namespace detail {

void tune_note_trials(std::uint64_t searches, std::uint64_t executions) {
  counters().trial_searches.fetch_add(searches, std::memory_order_relaxed);
  counters().trial_executions.fetch_add(executions,
                                        std::memory_order_relaxed);
}

void tune_note_db_load(std::uint64_t entries) {
  counters().db_loads.fetch_add(1, std::memory_order_relaxed);
  counters().db_entries_loaded.fetch_add(entries, std::memory_order_relaxed);
}

void tune_note_db_reject() {
  counters().db_load_rejects.fetch_add(1, std::memory_order_relaxed);
}

void tune_note_db_save() {
  counters().db_saves.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

std::optional<TunedBlocks> tune_cache_lookup(const TuneKey& key) {
  counters().lookups.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto it = cache().find(key);
  if (it == cache().end()) return std::nullopt;
  counters().memo_hits.fetch_add(1, std::memory_order_relaxed);
  if (it->second.from_db)
    counters().db_warm_hits.fetch_add(1, std::memory_order_relaxed);
  return it->second.blocks;
}

void tune_cache_store(const TuneKey& key, const TunedBlocks& blocks) {
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache()[key] = Slot{blocks, false};
}

void tune_cache_store_from_db(const TuneKey& key, const TunedBlocks& blocks) {
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache()[key] = Slot{blocks, true};
}

void tune_cache_clear() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache().clear();
}

std::size_t tune_cache_size() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  return cache().size();
}

std::vector<std::pair<TuneKey, TunedBlocks>> tune_cache_snapshot() {
  std::vector<std::pair<TuneKey, TunedBlocks>> out;
  std::lock_guard<std::mutex> lock(cache_mutex());
  out.reserve(cache().size());
  for (const auto& [k, s] : cache()) out.emplace_back(k, s.blocks);
  return out;
}

std::mutex& tune_trial_mutex() {
  static std::mutex m;
  return m;
}

// ---------------------------------------------------------------------------
// JSON pinning. The format is a flat array of one-line objects so bench
// trajectories and CI diffs stay readable; the parser below accepts exactly
// what tune_cache_to_json emits (plus arbitrary whitespace) and rejects
// anything else loudly — a silently skipped entry would un-pin a config.
// ---------------------------------------------------------------------------

std::string tune_entries_to_json(
    const std::vector<std::pair<TuneKey, TunedBlocks>>& entries) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& [k, b] : entries) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << " {\"method\":\"" << method_name(k.method) << "\""
       << ",\"tiling\":\"" << tiling_name(k.tiling) << "\""
       << ",\"rank\":" << k.rank << ",\"isa\":\"" << isa_name(k.isa) << "\""
       << ",\"dtype\":\"" << dtype_name(k.dtype) << "\""
       << ",\"nx\":" << k.nx << ",\"ny\":" << k.ny << ",\"nz\":" << k.nz
       << ",\"radius\":" << k.radius << ",\"threads\":" << k.threads
       << ",\"steps\":" << k.steps << ",\"pin_bx\":" << k.pin_bx
       << ",\"pin_by\":" << k.pin_by << ",\"pin_bz\":" << k.pin_bz
       << ",\"pin_bt\":" << k.pin_bt
       << ",\"bc_x\":\"" << boundary_name(k.boundary.x) << "\""
       << ",\"bc_y\":\"" << boundary_name(k.boundary.y) << "\""
       << ",\"bc_z\":\"" << boundary_name(k.boundary.z) << "\""
       << ",\"bx\":" << b.bx
       << ",\"by\":" << b.by << ",\"bz\":" << b.bz << ",\"bt\":" << b.bt
       << "}";
  }
  os << "\n]\n";
  return os.str();
}

std::string tune_cache_to_json() {
  return tune_entries_to_json(tune_cache_snapshot());
}

namespace {

/// Minimal scanner for the flat objects emitted above.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool at_end() {
    skip_ws();
    return i_ >= s_.size();
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') out += s_[i_++];
    expect('"');
    return out;
  }

  index number_value() {
    skip_ws();
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    const std::size_t digits = i_;
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
      ++i_;
    if (i_ == digits) fail("expected a number");  // also catches a bare sign
    try {
      return static_cast<index>(std::stoll(s_.substr(start, i_ - start)));
    } catch (const std::out_of_range&) {
      fail("number out of range");  // keep the invalid_argument contract
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("tune cache JSON: " + what + " at offset " +
                                std::to_string(i_));
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

std::vector<std::pair<TuneKey, TunedBlocks>> tune_entries_from_json(
    const std::string& json) {
  JsonScanner sc(json);
  sc.expect('[');
  // Parse the WHOLE document before touching the cache: a malformed later
  // entry must not leave earlier entries half-merged (all-or-nothing, per
  // the header contract).
  std::vector<std::pair<TuneKey, TunedBlocks>> parsed;
  // Every field of the key and the blocks must be present exactly: a
  // partial entry would merge under a default-initialized key that no real
  // plan ever looks up — the config would be silently un-pinned. Exception:
  // the boundary fields (bc_x/bc_y/bc_z) may be absent and default to
  // kDirichlet — caches exported before the boundary axis existed were
  // tuned under exactly those semantics and must stay importable.
  static constexpr const char* kFields[] = {
      "method", "tiling",  "rank",  "isa",    "dtype",  "nx",     "ny",
      "nz",     "radius",  "threads", "steps", "pin_bx", "pin_by", "pin_bz",
      "pin_bt", "bc_x",    "bc_y",  "bc_z",   "bx",     "by",     "bz",
      "bt"};
  constexpr unsigned kNumFields = sizeof(kFields) / sizeof(*kFields);
  auto field_bit = [&](const std::string& name) -> unsigned {
    for (unsigned i = 0; i < kNumFields; ++i)
      if (name == kFields[i]) return 1u << i;
    return 0;
  };
  const unsigned optional_fields =
      field_bit("bc_x") | field_bit("bc_y") | field_bit("bc_z");
  const unsigned required_fields = ((1u << kNumFields) - 1) & ~optional_fields;
  if (!sc.consume(']')) {
    do {
      sc.expect('{');
      TuneKey k;
      TunedBlocks b;
      unsigned seen = 0;
      bool more = !sc.consume('}');
      while (more) {
        const std::string field = sc.string_value();
        seen |= field_bit(field);
        sc.expect(':');
        if (field == "method") {
          auto m = method_from_name(sc.string_value());
          if (!m) sc.fail("unknown method name");
          k.method = *m;
        } else if (field == "tiling") {
          auto t = tiling_from_name(sc.string_value());
          if (!t) sc.fail("unknown tiling name");
          k.tiling = *t;
        } else if (field == "isa") {
          auto i = isa_from_name(sc.string_value());
          if (!i) sc.fail("unknown isa name");
          k.isa = *i;
        } else if (field == "dtype") {
          auto d = dtype_from_name(sc.string_value());
          if (!d) sc.fail("unknown dtype name");
          k.dtype = *d;
        } else if (field == "rank") {
          k.rank = static_cast<int>(sc.number_value());
        } else if (field == "nx") {
          k.nx = sc.number_value();
        } else if (field == "ny") {
          k.ny = sc.number_value();
        } else if (field == "nz") {
          k.nz = sc.number_value();
        } else if (field == "radius") {
          k.radius = static_cast<int>(sc.number_value());
        } else if (field == "threads") {
          k.threads = static_cast<int>(sc.number_value());
        } else if (field == "steps") {
          k.steps = sc.number_value();
        } else if (field == "pin_bx") {
          k.pin_bx = sc.number_value();
        } else if (field == "pin_by") {
          k.pin_by = sc.number_value();
        } else if (field == "pin_bz") {
          k.pin_bz = sc.number_value();
        } else if (field == "pin_bt") {
          k.pin_bt = sc.number_value();
        } else if (field == "bc_x") {
          auto b0 = boundary_from_name(sc.string_value());
          if (!b0) sc.fail("unknown boundary name");
          k.boundary.x = *b0;
        } else if (field == "bc_y") {
          auto b0 = boundary_from_name(sc.string_value());
          if (!b0) sc.fail("unknown boundary name");
          k.boundary.y = *b0;
        } else if (field == "bc_z") {
          auto b0 = boundary_from_name(sc.string_value());
          if (!b0) sc.fail("unknown boundary name");
          k.boundary.z = *b0;
        } else if (field == "bx") {
          b.bx = sc.number_value();
        } else if (field == "by") {
          b.by = sc.number_value();
        } else if (field == "bz") {
          b.bz = sc.number_value();
        } else if (field == "bt") {
          b.bt = sc.number_value();
        } else {
          sc.fail("unknown field \"" + field + "\"");
        }
        if (sc.consume('}')) break;
        sc.expect(',');
      }
      if ((seen & required_fields) != required_fields)
        sc.fail("entry is missing required fields");
      parsed.emplace_back(k, b);
    } while (sc.consume(','));
    sc.expect(']');
  }
  if (!sc.at_end()) sc.fail("trailing content");
  return parsed;
}

std::size_t tune_cache_from_json(const std::string& json) {
  const auto parsed = tune_entries_from_json(json);
  for (const auto& [k, b] : parsed) tune_cache_store(k, b);
  return parsed.size();
}

bool tune_cache_export_json(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << tune_cache_to_json();
  return static_cast<bool>(f);
}

std::size_t tune_cache_import_json(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw std::invalid_argument("tune cache JSON: cannot read " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return tune_cache_from_json(os.str());
}

// ---------------------------------------------------------------------------
// Candidate generation.
// ---------------------------------------------------------------------------

namespace {

/// Elements per spatial block such that one tile's two parity regions fit a
/// fraction of @p cache_bytes; rounded down to a 256-element granule (every
/// layout rule accepts multiples of 256 at every compiled width/dtype).
index cache_fit_elems(index cache_bytes, index elem_size, double frac) {
  const index raw =
      static_cast<index>(static_cast<double>(cache_bytes) * frac) /
      (2 * elem_size);
  return std::max<index>(256, raw / 256 * 256);
}

void push_unique(std::vector<index>& v, index x) {
  if (x > 0 && std::find(v.begin(), v.end(), x) == v.end()) v.push_back(x);
}

void push_unique(std::vector<TunedBlocks>& v, const TunedBlocks& b) {
  if (std::find(v.begin(), v.end(), b) == v.end()) v.push_back(b);
}

}  // namespace

index tune_trial_steps(index points, index bt, index steps) {
  // ~2^26 point-updates per trial keeps one candidate in the tens of
  // milliseconds even at memory bandwidth; small grids instead run enough
  // steps (two full time blocks) to see the temporal-blocking effect.
  constexpr index kBudget = index{1} << 26;
  const index want = std::max<index>(2, 2 * std::max<index>(bt, 1));
  const index cap = std::max<index>(2, kBudget / std::max<index>(points, 1));
  index t = std::min(want, cap);
  if (steps > 0) t = std::min(t, steps);
  return std::max<index>(1, t);
}

std::vector<TunedBlocks> tune_candidates(int rank, index nx, index ny,
                                         index nz, int radius, Tiling tiling,
                                         bool needs_even_bt, index steps,
                                         const Options& user) {
  std::vector<TunedBlocks> out;
  // Candidate 0: the fixed-heuristic default (exactly what the user set;
  // unset fields resolve to plan.cpp's defaults). Tuning can only improve
  // on it — a tie keeps the default.
  out.push_back({user.bx, user.by, user.bz, user.bt});
  if (tiling == Tiling::kNone) return out;

  const auto& cpu = cpu_info();
  const index elem_size = dtype_size(user.dtype);
  const index l1e = cache_fit_elems(cpu.l1_bytes, elem_size, 0.5);
  const index l2e = cache_fit_elems(cpu.l2_bytes, elem_size, 0.5);

  // Temporal block candidates. The 2-step scheme needs even bt; a bt beyond
  // 2x the run length cannot help (tau clamps to the remaining units).
  std::vector<index> bts;
  if (user.bt > 0) {
    bts.push_back(user.bt);
  } else {
    for (index bt : {index{2}, index{4}, index{8}, index{32}, index{128}}) {
      if (needs_even_bt && bt % 2 != 0) continue;
      if (steps > 0 && bt > 2 * steps) continue;
      push_unique(bts, bt);
    }
    if (tiling == Tiling::kSplit) push_unique(bts, 1);
    if (bts.empty()) bts.push_back(needs_even_bt ? 2 : 1);
  }

  if (tiling == Tiling::kSplit) {
    // Split tiling blocks exactly one axis; the driver clamps tau to keep
    // every candidate legal. Seed the axis block from the cache ladder.
    std::vector<index> blks;
    const index axis_n = rank == 1 ? nx : rank == 2 ? ny : nz;
    const index axis_block_user = rank == 1   ? user.bx
                                  : rank == 2 ? (user.by ? user.by : user.bx)
                                              : (user.bz ? user.bz : user.bx);
    if (axis_block_user > 0) {
      blks.push_back(axis_block_user);
    } else if (rank == 1) {
      for (index b : {l1e, l2e, nx}) push_unique(blks, std::min(b, nx));
    } else {
      const index rows_per_l2 = std::max<index>(1, l2e / std::max<index>(nx, 1));
      for (index b : {rows_per_l2, axis_n}) push_unique(blks, std::min(b, axis_n));
    }
    for (index bt : bts)
      for (index blk : blks) {
        TunedBlocks b{};
        b.bt = bt;
        if (rank == 1) b.bx = blk;
        else if (rank == 2) b.by = blk;
        else b.bz = blk;
        push_unique(out, b);
      }
    return out;
  }

  // Tessellate. Legality: every multi-tile axis needs block >= 2*slope*tau,
  // with the 2-step scheme tessellating pairs (slope 2r, tau bt/2).
  auto min_block = [&](index bt) {
    index slope = radius, tau = std::max<index>(1, bt);
    if (needs_even_bt) {
      if (steps >= 2) {
        slope = 2 * radius;
        tau = std::max<index>(1, bt / 2);
      } else {
        tau = 1;
      }
    }
    return 2 * slope * tau;
  };

  std::vector<index> bxs;
  if (user.bx > 0) {
    bxs.push_back(user.bx);
  } else if (rank == 1) {
    for (index b : {l1e, l2e, kDefaultBxTarget, nx})
      push_unique(bxs, std::min(b, nx));
  } else {
    bxs.push_back(0);      // heuristic default (min(nx, ~4096))
    push_unique(bxs, nx);  // one tile in x
  }

  std::vector<index> bys{index{0}};
  if (rank >= 2) {
    bys.clear();
    if (user.by > 0) {
      bys.push_back(user.by);
    } else {
      bys.push_back(0);  // full extent (one tile)
      const index rows_per_l2 = std::max<index>(1, l2e / std::max<index>(nx, 1));
      push_unique(bys, std::min(rows_per_l2, ny));
    }
  }

  std::vector<index> bzs{index{0}};
  if (rank >= 3) {
    bzs.clear();
    if (user.bz > 0) {
      bzs.push_back(user.bz);
    } else {
      bzs.push_back(0);  // full extent
      const index planes = std::max<index>(
          1, l2e / std::max<index>(nx * std::max<index>(ny, 1), 1));
      push_unique(bzs, std::min(planes, nz));
    }
  }

  for (index bt : bts) {
    const index mb = min_block(bt);
    for (index bx : bxs)
      for (index by : bys)
        for (index bz : bzs) {
          TunedBlocks b{bx, by, bz, bt};
          // Legalize: a blocked (multi-tile) axis must respect the bound;
          // clamping to the full extent collapses it to one tile, which is
          // always legal.
          auto legal_axis = [&](index blk, index n) {
            if (blk <= 0) return blk;  // resolve picks the default
            index v = std::min(blk, n);
            if (v < n && v < mb) v = std::min(n, mb);
            return v;
          };
          b.bx = legal_axis(b.bx, nx);
          if (rank >= 2) b.by = legal_axis(b.by, ny);
          if (rank >= 3) b.bz = legal_axis(b.bz, nz);
          // The heuristic x default is only legal when min(nx, target) >=
          // mb; pre-empt an invalid resolve by pinning bx to the bound.
          if (b.bx == 0 && std::min(nx, kDefaultBxTarget) < mb)
            b.bx = std::min(nx, mb);
          push_unique(out, b);
        }
  }
  return out;
}

}  // namespace tsv
