#include "tsv/core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>
#include <variant>

namespace tsv {

namespace {

using Clock = Scheduler::Clock;

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

// Deterministic backoff jitter: a splitmix64 stream seeded from the group's
// admission seq, so a replayed fault schedule replays its backoff schedule
// too (no global rng, no cross-request coupling).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

// Which taxonomy class a member's failure belongs to, for the
// cancelled/timed_out counters (subsets of failed).
enum class ErrKind { kOther, kCancelled, kTimeout };

ErrKind err_kind(const std::exception_ptr& e) noexcept {
  try {
    std::rethrow_exception(e);
  } catch (const CancelledError&) {
    return ErrKind::kCancelled;
  } catch (const TimeoutError&) {
    return ErrKind::kTimeout;
  } catch (...) {
    return ErrKind::kOther;
  }
}

// ---- grid content digest / fan-out copy -----------------------------------
//
// Coalescing identity must cover the INPUT DATA, not just the configuration:
// two requests with equal (spec, shape, options) but different grid contents
// produce different results and must never share one execution. The digest
// is FNV-1a over every logical cell including the halo (Dirichlet halos are
// inputs too); lead-padding bytes outside the halo are skipped, so two grids
// that are cell-for-cell equal hash equal regardless of allocator noise.
// The cost is one O(n) read per submission — the price of content
// addressing, paid on the submitter's thread, never on a gang.

std::uint64_t fnv1a(std::uint64_t h, const void* p, std::size_t bytes) {
  const unsigned char* c = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= c[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t content_digest(const Grid1D<T>& g) {
  const index h = g.halo();
  return fnv1a(1469598103934665603ull, &g.at(-h),
               static_cast<std::size_t>(g.nx() + 2 * h) * sizeof(T));
}

template <typename T>
std::uint64_t content_digest(const Grid2D<T>& g) {
  const index h = g.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(g.nx() + 2 * h) * sizeof(T);
  std::uint64_t d = 1469598103934665603ull;
  for (index y = -h; y < g.ny() + h; ++y) d = fnv1a(d, g.row(y) - h, row_bytes);
  return d;
}

template <typename T>
std::uint64_t content_digest(const Grid3D<T>& g) {
  const index h = g.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(g.nx() + 2 * h) * sizeof(T);
  std::uint64_t d = 1469598103934665603ull;
  for (index z = -h; z < g.nz() + h; ++z)
    for (index y = -h; y < g.ny() + h; ++y)
      d = fnv1a(d, g.row(y, z) - h, row_bytes);
  return d;
}

std::uint64_t content_digest(const Scheduler::GridRef& ref) {
  return std::visit([](auto* g) { return content_digest(*g); }, ref);
}

template <typename T>
void copy_content(Grid1D<T>& dst, const Grid1D<T>& src) {
  const index h = dst.halo();
  std::memcpy(&dst.at(-h), &src.at(-h),
              static_cast<std::size_t>(dst.nx() + 2 * h) * sizeof(T));
}

template <typename T>
void copy_content(Grid2D<T>& dst, const Grid2D<T>& src) {
  const index h = dst.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(dst.nx() + 2 * h) * sizeof(T);
  for (index y = -h; y < dst.ny() + h; ++y)
    std::memcpy(dst.row(y) - h, src.row(y) - h, row_bytes);
}

template <typename T>
void copy_content(Grid3D<T>& dst, const Grid3D<T>& src) {
  const index h = dst.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(dst.nx() + 2 * h) * sizeof(T);
  for (index z = -h; z < dst.nz() + h; ++z)
    for (index y = -h; y < dst.ny() + h; ++y)
      std::memcpy(dst.row(y, z) - h, src.row(y, z) - h, row_bytes);
}

/// Fans a leader's finished grid out to a follower. Same variant
/// alternative by construction: the coalesce key contains rank and dtype,
/// so a mismatch is a scheduler bug, not a user error.
void copy_content(Scheduler::GridRef dst, const Scheduler::GridRef& src) {
  std::visit(
      [](auto* d, auto* s) {
        if constexpr (std::is_same_v<decltype(d), decltype(s)>) {
          copy_content(*d, *s);
        } else {
          require(false, "Scheduler: coalesced grids of different type");
        }
      },
      dst, src);
}

// Retry snapshot: an owned deep copy of the group's input grid, taken
// before the first attempt and copied back before each re-execution. Every
// fault point fires pre-mutation, so for INJECTED faults the restore is a
// no-op by construction — the snapshot is what makes the retry guarantee
// hold for real faults too (a bad_alloc or partial failure mid-execution
// leaves whatever state it leaves; the restore erases it).
using GridCopy =
    std::variant<Grid1D<double>, Grid2D<double>, Grid3D<double>,
                 Grid1D<float>, Grid2D<float>, Grid3D<float>>;

GridCopy snapshot_content(const Scheduler::GridRef& src) {
  return std::visit([](auto* g) { return GridCopy{*g}; }, src);
}

void restore_content(Scheduler::GridRef dst, const GridCopy& src) {
  std::visit(
      [](auto* d, const auto& s) {
        if constexpr (std::is_same_v<std::remove_pointer_t<decltype(d)>,
                                     std::decay_t<decltype(s)>>) {
          copy_content(*d, s);
        } else {
          require(false, "Scheduler: snapshot/grid type mismatch");
        }
      },
      dst, src);
}

}  // namespace

const char* service_class_name(ServiceClass c) {
  switch (c) {
    case ServiceClass::kInteractive: return "interactive";
    case ServiceClass::kBatch: return "batch";
  }
  return "?";
}

// ---- LatencyHistogram ------------------------------------------------------

void LatencyHistogram::record(double seconds) {
  ++n_;
  sum_ += seconds;
  double v = seconds / kBaseSeconds;
  int b = 0;
  while (b < kBuckets - 1 && v >= 2.0) {
    v *= 0.5;
    ++b;
  }
  ++counts_[static_cast<std::size_t>(b)];
}

double LatencyHistogram::bucket_upper_seconds(int b) {
  return std::ldexp(kBaseSeconds, b + 1);
}

double LatencyHistogram::quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n_);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate inside the landing bucket [lo, hi).
      const double lo = b == 0 ? 0.0 : std::ldexp(kBaseSeconds, b);
      const double hi = std::ldexp(kBaseSeconds, b + 1);
      const double frac = std::clamp(
          (target - static_cast<double>(cum)) / static_cast<double>(c), 0.0,
          1.0);
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return std::ldexp(kBaseSeconds, kBuckets);  // unreachable
}

// ---- Scheduler -------------------------------------------------------------

/// One submission's completion endpoint: its promise plus everything the
/// completion path needs to account it (class, deadline, admission time).
struct Scheduler::Member {
  std::promise<Result> promise;
  Clock::time_point admitted;
  Clock::time_point deadline = kNoDeadline;       ///< soft SLO (tracked)
  Clock::time_point exec_deadline = kNoDeadline;  ///< hard timeout (enforced)
  ServiceClass cls = ServiceClass::kBatch;
  GridRef grid;
  CancelToken cancel;
  bool follower = false;
};

/// One admission-queue entry: the leader submission plus every follower
/// coalesced onto it. The group's class/deadline are the most urgent of its
/// members, so a follower can PROMOTE a queued batch request into the
/// interactive lane — the result serves both, so it inherits the stricter
/// SLO.
struct Scheduler::Group {
  StencilSpec spec;
  Options options;  ///< normalized: dtype from the grid, gang-capped team
  Shape shape;
  std::pair<PlanKey, std::uint64_t> key;
  ServiceClass cls = ServiceClass::kBatch;
  Clock::time_point deadline = kNoDeadline;
  std::uint64_t seq = 0;           ///< admission order (tiebreak)
  std::uint64_t dispatch_seq = 0;  ///< set when handed to the executor
  std::string tenant;              ///< leader's quota bucket
  std::vector<Member> members;     ///< members[0] is the leader

  // Written by run_group on the gang (single-threaded there), read by
  // on_group_done on the same thread — no synchronization needed.
  std::vector<std::exception_ptr> member_errors;  ///< per-member overrides
  std::uint64_t retries_used = 0;
  bool retry_exhausted = false;

  // Trace timestamps. `dispatched` is written under mu_ (dispatch_locked);
  // `sweep_start` is written by run_group on the gang and read by
  // on_group_done on the same thread, like member_errors above.
  Clock::time_point dispatched{};
  Clock::time_point sweep_start{};
};

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_(cfg), ex_(cfg.executor) {
  cfg_.queue_capacity = std::max<std::size_t>(1, cfg_.queue_capacity);
  trace_ring_.reserve(cfg_.trace_capacity);
}

Scheduler::~Scheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    paused_ = false;  // a paused scheduler still drains on destruction
    dispatch_locked(lock);
    idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
  }
  // After the drain no task can reference this scheduler again; the
  // executor member's own destructor joins its (now idle) workers. Any
  // group whose handoff threw during the final dispatch still owes its
  // futures an answer.
  flush_failed_dispatches();
}

std::future<Scheduler::Result> Scheduler::submit(Request req) {
  const Clock::time_point now = Clock::now();

  // Normalize exactly like Executor::submit: the grid is the source of
  // truth for the dtype, and the gang size caps the team (negative caps
  // pass through so resolve_options rejects them on the worker).
  Options o = req.options;
  std::visit(
      [&o](auto* g) {
        using G = std::remove_pointer_t<decltype(g)>;
        o.dtype = dtype_of<typename detail::grid_value_t<G>>();
      },
      req.grid);
  if (o.max_threads == 0)
    o.max_threads = ex_.threads_per_gang();
  else if (o.max_threads > 0)
    o.max_threads = std::min(o.max_threads, ex_.threads_per_gang());

  const Shape shape = std::visit([](auto* g) { return shape_of(*g); }, req.grid);

  Member m;
  m.admitted = now;
  if (req.deadline_ms > 0.0)
    m.deadline = now + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               req.deadline_ms));
  // The timeout budget starts at submit — queueing counts against it.
  if (req.timeout_ms > 0.0)
    m.exec_deadline = now + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    req.timeout_ms));
  m.cls = req.cls;
  m.grid = req.grid;
  m.cancel = req.cancel;
  std::future<Result> fut = m.promise.get_future();

  std::shared_ptr<Group> victim;       // shed group: promises failed post-unlock
  const char* reject_msg = nullptr;    // set => reject this submission
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;

    if (stopping_) {
      ++stats_.rejected;
      reject_msg = "tsv::Scheduler: shutting down";
    } else {
      std::pair<PlanKey, std::uint64_t> key{
          PlanKey::make(shape, req.stencil, o), 0};
      if (cfg_.coalesce) {
        // The digest read races nothing: the caller owns the grid until the
        // future resolves, and no queued leader with the same key has been
        // dispatched yet (dispatch closes the group).
        key.second = content_digest(req.grid);
        auto it = open_.find(key);
        if (it != open_.end()) {
          Group& g = *it->second;
          m.follower = true;
          g.cls = std::min(g.cls, req.cls);
          g.deadline = std::min(g.deadline, m.deadline);
          g.members.push_back(std::move(m));
          ++stats_.admitted;
          ++stats_.coalesced;
          return fut;  // no queue slot consumed: the work already exists
        }
      }

      if (queue_.size() >= cfg_.queue_capacity) {
        // Full: shed queued work that is already past its deadline —
        // lowest priority class first, then most overdue, then oldest.
        // Nothing sheddable means the NEWCOMER is rejected: admitted work
        // with a live deadline is never dropped for later arrivals.
        // Victim order: lowest priority class first (batch before
        // interactive), then most overdue, then oldest.
        const auto shed_rank = [](const Group& g) {
          return std::tuple(-static_cast<int>(g.cls), g.deadline, g.seq);
        };
        std::size_t best = queue_.size();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          const Group& g = *queue_[i];
          if (g.deadline == kNoDeadline || g.deadline > now) continue;
          if (best == queue_.size() || shed_rank(g) < shed_rank(*queue_[best]))
            best = i;
        }
        if (best < queue_.size()) {
          victim = queue_[best];
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
          if (cfg_.coalesce) open_.erase(victim->key);
          stats_.shed += victim->members.size();
        } else {
          ++stats_.rejected;
          reject_msg = "tsv::Scheduler: admission queue full";
        }
      }

      if (reject_msg == nullptr) {
        auto g = std::make_shared<Group>();
        g->spec = std::move(req.stencil);
        g->options = o;
        g->shape = shape;
        g->key = key;
        g->cls = m.cls;
        g->deadline = m.deadline;
        g->seq = seq_++;
        g->tenant = std::move(req.tenant);
        g->members.push_back(std::move(m));
        if (cfg_.coalesce) open_.emplace(g->key, g);
        queue_.push_back(std::move(g));
        ++stats_.admitted;
        dispatch_locked(lock);
      }
    }
  }

  // Promise resolution happens outside the lock: a waiter woken by
  // set_exception may immediately call stats() and must not self-deadlock.
  if (victim)
    for (Member& vm : victim->members)
      vm.promise.set_exception(std::make_exception_ptr(OverloadError(
          "tsv::Scheduler: shed past-deadline request (queue full)")));
  if (reject_msg != nullptr)
    m.promise.set_exception(
        std::make_exception_ptr(OverloadError(reject_msg)));
  flush_failed_dispatches();
  return fut;
}

void Scheduler::dispatch_locked(std::unique_lock<std::mutex>& lock) {
  // Hand the executor at most `gangs` groups: every dispatched group starts
  // immediately on an idle gang, so the FIFO inside the executor never
  // holds more than the work already running — ORDER lives here.
  (void)lock;  // held by the caller; documents the contract
  while (!paused_ && inflight_ < static_cast<std::size_t>(ex_.gangs()) &&
         !queue_.empty()) {
    std::size_t best = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Group& g = *queue_[i];
      if (cfg_.max_inflight_per_tenant > 0) {
        auto it = tenant_inflight_.find(g.tenant);
        if (it != tenant_inflight_.end() &&
            it->second >= cfg_.max_inflight_per_tenant)
          continue;  // tenant at quota: its backlog waits, others overtake
      }
      if (best == queue_.size()) {
        best = i;
        continue;
      }
      const Group& b = *queue_[best];
      const bool wins =
          cfg_.policy == SchedPolicy::kFifo
              ? g.seq < b.seq
              // Interactive before batch; within a class earliest deadline
              // first (no deadline = kNoDeadline sorts last); admission
              // order breaks ties.
              : std::tuple(static_cast<int>(g.cls), g.deadline, g.seq) <
                    std::tuple(static_cast<int>(b.cls), b.deadline, b.seq);
      if (wins) best = i;
    }
    if (best == queue_.size()) return;  // everything eligible is at quota

    std::shared_ptr<Group> g = queue_[best];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    if (cfg_.coalesce) open_.erase(g->key);  // group closed: input in use
    g->dispatch_seq = dispatch_seq_++;
    g->dispatched = Clock::now();

    // The handoff itself can throw (std::bad_alloc growing the executor's
    // queue, std::system_error from a dead pool). If it does, the group is
    // already off the queue and its task will never run — without this
    // catch every member's future would stay unfulfilled forever. The
    // group parks in failed_dispatch_; the promises are resolved by
    // flush_failed_dispatches() OUTSIDE mu_. Counted before the inflight
    // bump, so nothing needs undoing.
    try {
      ex_.submit_task([this, g] { run_group(g); });
    } catch (...) {
      stats_.failed += g->members.size();
      failed_dispatch_.emplace_back(g, std::current_exception());
      continue;
    }
    ++inflight_;
    const int t = ++tenant_inflight_[g->tenant];
    stats_.peak_tenant_inflight =
        std::max(stats_.peak_tenant_inflight, static_cast<std::size_t>(t));
  }
}

void Scheduler::flush_failed_dispatches() {
  std::vector<std::pair<std::shared_ptr<Group>, std::exception_ptr>> failed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed.swap(failed_dispatch_);
  }
  for (auto& [g, e] : failed)
    for (Member& m : g->members) m.promise.set_exception(e);
}

/// The executor task for one dispatched group. The first live member
/// computes through the shared plan cache (one cache probe, one execution
/// per GROUP) under the group's ExecControl; the other live members receive
/// a byte copy of that result — coalesced waiters are bit-identical by
/// construction. Transient failures re-execute from a snapshot of the input
/// under the retry budget; members already cancelled or timed out at
/// dispatch are pruned up front and fail individually without costing an
/// execution. Errors reach every member's future and still count in the
/// executor's own failed_ (the rethrow).
void Scheduler::run_group(const std::shared_ptr<Group>& g) {
  g->sweep_start = Clock::now();
  std::exception_ptr err;
  try {
    const Clock::time_point now = g->sweep_start;

    // Prune members that are dead on arrival: a cancelled member fails with
    // CancelledError, an expired one with TimeoutError — and neither blocks
    // the live members' execution. Cancel wins when both apply (an explicit
    // cancel is the caller's word).
    g->member_errors.assign(g->members.size(), nullptr);
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < g->members.size(); ++i) {
      const Member& m = g->members[i];
      if (m.cancel.cancelled()) {
        g->member_errors[i] = std::make_exception_ptr(CancelledError(
            "tsv::Scheduler: request cancelled before dispatch"));
      } else if (m.exec_deadline != kNoDeadline && now >= m.exec_deadline) {
        g->member_errors[i] = std::make_exception_ptr(TimeoutError(
            "tsv::Scheduler: timeout expired before dispatch"));
      } else {
        live.push_back(i);
      }
    }

    if (!live.empty()) {
      // Group-level execution control. The cancel predicate fires only when
      // EVERY live member cancelled (one waiter's cancel must not take the
      // shared result from the rest). The deadline is finite only when
      // every live member has one, and then it is the LATEST: the hard
      // abort exists to reclaim the gang once NO member's budget can still
      // use the result — a member whose own budget expires mid-run still
      // receives the completed result (the work was done; enforcement
      // never destroys usable output).
      ExecControl ctl;
      ctl.cancelled = [g, live] {
        for (std::size_t i : live) {
          const Member& m = g->members[i];
          if (!m.cancel.valid() || !m.cancel.cancelled()) return false;
        }
        return true;
      };
      bool all_dated = true;
      Clock::time_point latest = Clock::time_point::min();
      for (std::size_t i : live) {
        if (g->members[i].exec_deadline == kNoDeadline) {
          all_dated = false;
          break;
        }
        latest = std::max(latest, g->members[i].exec_deadline);
      }
      if (all_dated) ctl.deadline = latest;

      GridRef exec_grid = g->members[live.front()].grid;
      std::optional<GridCopy> snap;
      if (cfg_.retry_budget > 0) snap = snapshot_content(exec_grid);
      std::uint64_t jitter_state = g->seq;

      for (int attempt = 0;; ++attempt) {
        try {
          fault_point(FaultSite::kExecutorDispatch);
          ctl.check();
          detail::execute_request(ex_.plan_cache(), g->shape, g->spec,
                                  g->options, exec_grid, &ctl);
          break;
        } catch (...) {
          std::exception_ptr e = std::current_exception();
          if (!is_transient_error(e)) throw;
          if (attempt >= cfg_.retry_budget) {
            g->retry_exhausted = true;
            throw;
          }
          ++g->retries_used;
          if (snap) restore_content(exec_grid, *snap);
          double backoff_ms =
              std::min(cfg_.retry_backoff_ms * std::ldexp(1.0, attempt),
                       cfg_.retry_backoff_max_ms);
          backoff_ms *= 0.5 + 0.5 * uniform01(jitter_state);
          if (backoff_ms > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff_ms));
        }
      }
      for (std::size_t k = 1; k < live.size(); ++k)
        copy_content(g->members[live[k]].grid, exec_grid);
    }
  } catch (...) {
    err = std::current_exception();
  }
  on_group_done(g, err);
  if (err) std::rethrow_exception(err);
}

void Scheduler::on_group_done(const std::shared_ptr<Group>& group,
                              std::exception_ptr error) {
  const Clock::time_point now = Clock::now();
  // A member's outcome is its OWN error when run_group pruned it (cancelled
  // or expired before dispatch), otherwise the group's shared outcome.
  const auto member_error = [&](std::size_t i) {
    return i < group->member_errors.size() && group->member_errors[i]
               ? group->member_errors[i]
               : error;
  };
  std::vector<Result> results(group->members.size());
  std::vector<std::pair<std::shared_ptr<Group>, std::exception_ptr>> failed;
  {
    std::unique_lock<std::mutex> lock(mu_);
    --inflight_;
    auto it = tenant_inflight_.find(group->tenant);
    if (it != tenant_inflight_.end() && --it->second <= 0)
      tenant_inflight_.erase(it);
    stats_.retries += group->retries_used;
    if (group->retry_exhausted) ++stats_.retry_exhausted;
    const auto rel = [this](Clock::time_point t) {
      return std::chrono::duration<double>(t - epoch_).count();
    };
    for (std::size_t i = 0; i < group->members.size(); ++i) {
      const Member& m = group->members[i];
      char outcome = 'C';
      if (std::exception_ptr e = member_error(i)) {
        ++stats_.failed;
        outcome = 'F';
        switch (err_kind(e)) {
          case ErrKind::kCancelled: ++stats_.cancelled; outcome = 'X'; break;
          case ErrKind::kTimeout: ++stats_.timed_out; outcome = 'T'; break;
          case ErrKind::kOther: break;
        }
      } else {
        Result& r = results[i];
        r.dispatch_seq = group->dispatch_seq;
        r.latency_seconds =
            std::chrono::duration<double>(now - m.admitted).count();
        r.deadline_missed = m.deadline != kNoDeadline && now > m.deadline;
        r.coalesced = m.follower;
        ++stats_.completed;
        if (r.deadline_missed) ++stats_.deadline_missed;
        stats_.latency[static_cast<std::size_t>(m.cls)].record(
            r.latency_seconds);
      }
      if (cfg_.trace_capacity > 0) {
        TraceSpan ts;
        ts.seq = group->seq;
        ts.dispatch_seq = group->dispatch_seq;
        ts.cls = m.cls;
        ts.coalesced = m.follower;
        ts.outcome = outcome;
        ts.submit_s = rel(m.admitted);
        ts.dispatch_s = rel(group->dispatched);
        ts.sweep_s = rel(group->sweep_start);
        ts.complete_s = rel(now);
        push_trace_locked(ts);
      }
    }
    dispatch_locked(lock);
    failed.swap(failed_dispatch_);
    if (queue_.empty() && inflight_ == 0) idle_cv_.notify_all();
  }
  // Outside the lock — and touching only groups, never `this`: once the
  // destructor observed the drain it may already be tearing the scheduler
  // down while this tail runs. (That is also why the failed-dispatch flush
  // is inlined here instead of calling flush_failed_dispatches().)
  for (auto& [fg, fe] : failed)
    for (Member& fm : fg->members) fm.promise.set_exception(fe);
  for (std::size_t i = 0; i < group->members.size(); ++i) {
    if (std::exception_ptr e = member_error(i))
      group->members[i].promise.set_exception(e);
    else
      group->members[i].promise.set_value(results[i]);
  }
}

void Scheduler::push_trace_locked(const TraceSpan& ts) {
  if (trace_ring_.size() < cfg_.trace_capacity) {
    trace_ring_.push_back(ts);
    return;
  }
  trace_ring_[trace_pos_] = ts;
  trace_pos_ = (trace_pos_ + 1) % cfg_.trace_capacity;
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
    dispatch_locked(lock);
  }
  flush_failed_dispatches();
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    s.queued = queue_.size();
    s.inflight = inflight_;
    // Oldest-first: the ring overwrites at trace_pos_, so chronological
    // order is [trace_pos_, end) then [0, trace_pos_).
    s.traces.reserve(trace_ring_.size());
    for (std::size_t i = 0; i < trace_ring_.size(); ++i)
      s.traces.push_back(
          trace_ring_[(trace_pos_ + i) % trace_ring_.size()]);
  }
  s.executor = ex_.stats();
  return s;
}

}  // namespace tsv
