#include "tsv/core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>
#include <utility>

namespace tsv {

namespace {

using Clock = Scheduler::Clock;

constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

// ---- grid content digest / fan-out copy -----------------------------------
//
// Coalescing identity must cover the INPUT DATA, not just the configuration:
// two requests with equal (spec, shape, options) but different grid contents
// produce different results and must never share one execution. The digest
// is FNV-1a over every logical cell including the halo (Dirichlet halos are
// inputs too); lead-padding bytes outside the halo are skipped, so two grids
// that are cell-for-cell equal hash equal regardless of allocator noise.
// The cost is one O(n) read per submission — the price of content
// addressing, paid on the submitter's thread, never on a gang.

std::uint64_t fnv1a(std::uint64_t h, const void* p, std::size_t bytes) {
  const unsigned char* c = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= c[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t content_digest(const Grid1D<T>& g) {
  const index h = g.halo();
  return fnv1a(1469598103934665603ull, &g.at(-h),
               static_cast<std::size_t>(g.nx() + 2 * h) * sizeof(T));
}

template <typename T>
std::uint64_t content_digest(const Grid2D<T>& g) {
  const index h = g.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(g.nx() + 2 * h) * sizeof(T);
  std::uint64_t d = 1469598103934665603ull;
  for (index y = -h; y < g.ny() + h; ++y) d = fnv1a(d, g.row(y) - h, row_bytes);
  return d;
}

template <typename T>
std::uint64_t content_digest(const Grid3D<T>& g) {
  const index h = g.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(g.nx() + 2 * h) * sizeof(T);
  std::uint64_t d = 1469598103934665603ull;
  for (index z = -h; z < g.nz() + h; ++z)
    for (index y = -h; y < g.ny() + h; ++y)
      d = fnv1a(d, g.row(y, z) - h, row_bytes);
  return d;
}

std::uint64_t content_digest(const Scheduler::GridRef& ref) {
  return std::visit([](auto* g) { return content_digest(*g); }, ref);
}

template <typename T>
void copy_content(Grid1D<T>& dst, const Grid1D<T>& src) {
  const index h = dst.halo();
  std::memcpy(&dst.at(-h), &src.at(-h),
              static_cast<std::size_t>(dst.nx() + 2 * h) * sizeof(T));
}

template <typename T>
void copy_content(Grid2D<T>& dst, const Grid2D<T>& src) {
  const index h = dst.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(dst.nx() + 2 * h) * sizeof(T);
  for (index y = -h; y < dst.ny() + h; ++y)
    std::memcpy(dst.row(y) - h, src.row(y) - h, row_bytes);
}

template <typename T>
void copy_content(Grid3D<T>& dst, const Grid3D<T>& src) {
  const index h = dst.halo();
  const std::size_t row_bytes =
      static_cast<std::size_t>(dst.nx() + 2 * h) * sizeof(T);
  for (index z = -h; z < dst.nz() + h; ++z)
    for (index y = -h; y < dst.ny() + h; ++y)
      std::memcpy(dst.row(y, z) - h, src.row(y, z) - h, row_bytes);
}

/// Fans a leader's finished grid out to a follower. Same variant
/// alternative by construction: the coalesce key contains rank and dtype,
/// so a mismatch is a scheduler bug, not a user error.
void copy_content(Scheduler::GridRef dst, const Scheduler::GridRef& src) {
  std::visit(
      [](auto* d, auto* s) {
        if constexpr (std::is_same_v<decltype(d), decltype(s)>) {
          copy_content(*d, *s);
        } else {
          require(false, "Scheduler: coalesced grids of different type");
        }
      },
      dst, src);
}

}  // namespace

const char* service_class_name(ServiceClass c) {
  switch (c) {
    case ServiceClass::kInteractive: return "interactive";
    case ServiceClass::kBatch: return "batch";
  }
  return "?";
}

// ---- LatencyHistogram ------------------------------------------------------

void LatencyHistogram::record(double seconds) {
  ++n_;
  sum_ += seconds;
  double v = seconds / kBaseSeconds;
  int b = 0;
  while (b < kBuckets - 1 && v >= 2.0) {
    v *= 0.5;
    ++b;
  }
  ++counts_[static_cast<std::size_t>(b)];
}

double LatencyHistogram::quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n_);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = counts_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate inside the landing bucket [lo, hi).
      const double lo = b == 0 ? 0.0 : std::ldexp(kBaseSeconds, b);
      const double hi = std::ldexp(kBaseSeconds, b + 1);
      const double frac = std::clamp(
          (target - static_cast<double>(cum)) / static_cast<double>(c), 0.0,
          1.0);
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return std::ldexp(kBaseSeconds, kBuckets);  // unreachable
}

// ---- Scheduler -------------------------------------------------------------

/// One submission's completion endpoint: its promise plus everything the
/// completion path needs to account it (class, deadline, admission time).
struct Scheduler::Member {
  std::promise<Result> promise;
  Clock::time_point admitted;
  Clock::time_point deadline = kNoDeadline;
  ServiceClass cls = ServiceClass::kBatch;
  GridRef grid;
  bool follower = false;
};

/// One admission-queue entry: the leader submission plus every follower
/// coalesced onto it. The group's class/deadline are the most urgent of its
/// members, so a follower can PROMOTE a queued batch request into the
/// interactive lane — the result serves both, so it inherits the stricter
/// SLO.
struct Scheduler::Group {
  StencilSpec spec;
  Options options;  ///< normalized: dtype from the grid, gang-capped team
  Shape shape;
  std::pair<PlanKey, std::uint64_t> key;
  ServiceClass cls = ServiceClass::kBatch;
  Clock::time_point deadline = kNoDeadline;
  std::uint64_t seq = 0;           ///< admission order (tiebreak)
  std::uint64_t dispatch_seq = 0;  ///< set when handed to the executor
  std::string tenant;              ///< leader's quota bucket
  std::vector<Member> members;     ///< members[0] is the leader
};

Scheduler::Scheduler(SchedulerConfig cfg) : cfg_(cfg), ex_(cfg.executor) {
  cfg_.queue_capacity = std::max<std::size_t>(1, cfg_.queue_capacity);
}

Scheduler::~Scheduler() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  paused_ = false;  // a paused scheduler still drains on destruction
  dispatch_locked(lock);
  idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
  // After the drain no task can reference this scheduler again; the
  // executor member's own destructor joins its (now idle) workers.
}

std::future<Scheduler::Result> Scheduler::submit(Request req) {
  const Clock::time_point now = Clock::now();

  // Normalize exactly like Executor::submit: the grid is the source of
  // truth for the dtype, and the gang size caps the team (negative caps
  // pass through so resolve_options rejects them on the worker).
  Options o = req.options;
  std::visit(
      [&o](auto* g) {
        using G = std::remove_pointer_t<decltype(g)>;
        o.dtype = dtype_of<typename detail::grid_value_t<G>>();
      },
      req.grid);
  if (o.max_threads == 0)
    o.max_threads = ex_.threads_per_gang();
  else if (o.max_threads > 0)
    o.max_threads = std::min(o.max_threads, ex_.threads_per_gang());

  const Shape shape = std::visit([](auto* g) { return shape_of(*g); }, req.grid);

  Member m;
  m.admitted = now;
  if (req.deadline_ms > 0.0)
    m.deadline = now + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               req.deadline_ms));
  m.cls = req.cls;
  m.grid = req.grid;
  std::future<Result> fut = m.promise.get_future();

  std::shared_ptr<Group> victim;       // shed group: promises failed post-unlock
  const char* reject_msg = nullptr;    // set => reject this submission
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;

    if (stopping_) {
      ++stats_.rejected;
      reject_msg = "tsv::Scheduler: shutting down";
    } else {
      std::pair<PlanKey, std::uint64_t> key{
          PlanKey::make(shape, req.stencil, o), 0};
      if (cfg_.coalesce) {
        // The digest read races nothing: the caller owns the grid until the
        // future resolves, and no queued leader with the same key has been
        // dispatched yet (dispatch closes the group).
        key.second = content_digest(req.grid);
        auto it = open_.find(key);
        if (it != open_.end()) {
          Group& g = *it->second;
          m.follower = true;
          g.cls = std::min(g.cls, req.cls);
          g.deadline = std::min(g.deadline, m.deadline);
          g.members.push_back(std::move(m));
          ++stats_.admitted;
          ++stats_.coalesced;
          return fut;  // no queue slot consumed: the work already exists
        }
      }

      if (queue_.size() >= cfg_.queue_capacity) {
        // Full: shed queued work that is already past its deadline —
        // lowest priority class first, then most overdue, then oldest.
        // Nothing sheddable means the NEWCOMER is rejected: admitted work
        // with a live deadline is never dropped for later arrivals.
        // Victim order: lowest priority class first (batch before
        // interactive), then most overdue, then oldest.
        const auto shed_rank = [](const Group& g) {
          return std::tuple(-static_cast<int>(g.cls), g.deadline, g.seq);
        };
        std::size_t best = queue_.size();
        for (std::size_t i = 0; i < queue_.size(); ++i) {
          const Group& g = *queue_[i];
          if (g.deadline == kNoDeadline || g.deadline > now) continue;
          if (best == queue_.size() || shed_rank(g) < shed_rank(*queue_[best]))
            best = i;
        }
        if (best < queue_.size()) {
          victim = queue_[best];
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
          if (cfg_.coalesce) open_.erase(victim->key);
          stats_.shed += victim->members.size();
        } else {
          ++stats_.rejected;
          reject_msg = "tsv::Scheduler: admission queue full";
        }
      }

      if (reject_msg == nullptr) {
        auto g = std::make_shared<Group>();
        g->spec = std::move(req.stencil);
        g->options = o;
        g->shape = shape;
        g->key = key;
        g->cls = m.cls;
        g->deadline = m.deadline;
        g->seq = seq_++;
        g->tenant = std::move(req.tenant);
        g->members.push_back(std::move(m));
        if (cfg_.coalesce) open_.emplace(g->key, g);
        queue_.push_back(std::move(g));
        ++stats_.admitted;
        dispatch_locked(lock);
      }
    }
  }

  // Promise resolution happens outside the lock: a waiter woken by
  // set_exception may immediately call stats() and must not self-deadlock.
  if (victim)
    for (Member& vm : victim->members)
      vm.promise.set_exception(std::make_exception_ptr(OverloadError(
          "tsv::Scheduler: shed past-deadline request (queue full)")));
  if (reject_msg != nullptr)
    m.promise.set_exception(
        std::make_exception_ptr(OverloadError(reject_msg)));
  return fut;
}

void Scheduler::dispatch_locked(std::unique_lock<std::mutex>& lock) {
  // Hand the executor at most `gangs` groups: every dispatched group starts
  // immediately on an idle gang, so the FIFO inside the executor never
  // holds more than the work already running — ORDER lives here.
  (void)lock;  // held by the caller; documents the contract
  while (!paused_ && inflight_ < static_cast<std::size_t>(ex_.gangs()) &&
         !queue_.empty()) {
    std::size_t best = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const Group& g = *queue_[i];
      if (cfg_.max_inflight_per_tenant > 0) {
        auto it = tenant_inflight_.find(g.tenant);
        if (it != tenant_inflight_.end() &&
            it->second >= cfg_.max_inflight_per_tenant)
          continue;  // tenant at quota: its backlog waits, others overtake
      }
      if (best == queue_.size()) {
        best = i;
        continue;
      }
      const Group& b = *queue_[best];
      const bool wins =
          cfg_.policy == SchedPolicy::kFifo
              ? g.seq < b.seq
              // Interactive before batch; within a class earliest deadline
              // first (no deadline = kNoDeadline sorts last); admission
              // order breaks ties.
              : std::tuple(static_cast<int>(g.cls), g.deadline, g.seq) <
                    std::tuple(static_cast<int>(b.cls), b.deadline, b.seq);
      if (wins) best = i;
    }
    if (best == queue_.size()) return;  // everything eligible is at quota

    std::shared_ptr<Group> g = queue_[best];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    if (cfg_.coalesce) open_.erase(g->key);  // group closed: input in use
    g->dispatch_seq = dispatch_seq_++;
    ++inflight_;
    const int t = ++tenant_inflight_[g->tenant];
    stats_.peak_tenant_inflight =
        std::max(stats_.peak_tenant_inflight, static_cast<std::size_t>(t));

    // The executor task: the leader computes through the shared plan cache
    // (one cache probe, one execution per GROUP), followers receive a byte
    // copy of the leader's result — coalesced waiters are bit-identical by
    // construction. Errors reach every member's future and still count in
    // the executor's own failed_ (the rethrow).
    ex_.submit_task([this, g] {
      std::exception_ptr err;
      try {
        std::shared_ptr<PlanCache::Entry> entry =
            ex_.plan_cache().get(g->shape, g->spec, g->options);
        WorkspacePool::Lease ws = entry->workspaces().checkout();
        std::visit([&](auto* grid) { entry->plan().execute(*grid, *ws); },
                   g->members.front().grid);
        for (std::size_t i = 1; i < g->members.size(); ++i)
          copy_content(g->members[i].grid, g->members.front().grid);
      } catch (...) {
        err = std::current_exception();
      }
      on_group_done(g, err);
      if (err) std::rethrow_exception(err);
    });
  }
}

void Scheduler::on_group_done(const std::shared_ptr<Group>& group,
                              std::exception_ptr error) {
  const Clock::time_point now = Clock::now();
  std::vector<Result> results(group->members.size());
  {
    std::unique_lock<std::mutex> lock(mu_);
    --inflight_;
    auto it = tenant_inflight_.find(group->tenant);
    if (it != tenant_inflight_.end() && --it->second <= 0)
      tenant_inflight_.erase(it);
    for (std::size_t i = 0; i < group->members.size(); ++i) {
      const Member& m = group->members[i];
      if (error) {
        ++stats_.failed;
        continue;
      }
      Result& r = results[i];
      r.dispatch_seq = group->dispatch_seq;
      r.latency_seconds =
          std::chrono::duration<double>(now - m.admitted).count();
      r.deadline_missed = m.deadline != kNoDeadline && now > m.deadline;
      r.coalesced = m.follower;
      ++stats_.completed;
      if (r.deadline_missed) ++stats_.deadline_missed;
      stats_.latency[static_cast<std::size_t>(m.cls)].record(
          r.latency_seconds);
    }
    dispatch_locked(lock);
    if (queue_.empty() && inflight_ == 0) idle_cv_.notify_all();
  }
  // Outside the lock — and touching only the group, never `this`: once the
  // destructor observed the drain it may already be tearing the scheduler
  // down while this tail runs.
  for (std::size_t i = 0; i < group->members.size(); ++i) {
    if (error)
      group->members[i].promise.set_exception(error);
    else
      group->members[i].promise.set_value(results[i]);
  }
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Scheduler::resume() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = false;
  dispatch_locked(lock);
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    s.queued = queue_.size();
    s.inflight = inflight_;
  }
  s.executor = ex_.stats();
  return s;
}

}  // namespace tsv
