#include "tsv/core/fault.hpp"

#include <cstdlib>
#include <mutex>
#include <new>

namespace tsv {

namespace {

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 1469598103934665603ull;
  for (; *s; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr const char* kSiteNames[kFaultSiteCount] = {
    "workspace.alloc", "plan.build", "executor.dispatch", "shard.exchange",
    "kernel.sweep",
};

}  // namespace

bool is_transient_error(const std::exception_ptr& ep) noexcept {
  if (!ep) return false;
  try {
    std::rethrow_exception(ep);
  } catch (const TsvError& e) {
    return e.is_transient();
  } catch (const std::bad_alloc&) {
    return true;  // memory pressure: the retry's backoff is the remedy
  } catch (...) {
    return false;
  }
}

void ExecControl::check() const {
  if (cancelled && cancelled()) throw CancelledError("request cancelled");
  if (deadline != Clock::time_point::max() && Clock::now() >= deadline)
    throw TimeoutError("request timeout expired");
}

const char* fault_site_name(FaultSite site) noexcept {
  return kSiteNames[static_cast<int>(site)];
}

// Per-point state. The mutex serializes the rng stream and the trigger
// config; the fast path never touches it (fault_point() checks enabled()
// first, and the common production state is "disabled").
struct FaultInjector::Point {
  mutable std::mutex mu;
  std::uint64_t rng = 0;
  Config cfg;
  bool armed = false;
  PointStats st;
};

FaultInjector& FaultInjector::instance() {
  // Leaked singleton: fault points are hit from gang workers that may
  // outlive static destruction order in exotic shutdown paths.
  static FaultInjector* fi = new FaultInjector();
  return *fi;
}

FaultInjector::FaultInjector() {
  for (int i = 0; i < kFaultSiteCount; ++i)
    points_[i] = std::make_unique<Point>();
  if (const char* s = std::getenv("TSV_FAULT_SEED"))
    base_seed_ = std::strtoull(s, nullptr, 0);
  seed(base_seed_);
  if (const char* e = std::getenv("TSV_FAULT_INJECTION"))
    enabled_.store(e[0] == '1', std::memory_order_relaxed);
}

void FaultInjector::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

void FaultInjector::seed(std::uint64_t s) {
  base_seed_ = s;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    Point& p = *points_[i];
    std::lock_guard<std::mutex> lk(p.mu);
    p.rng = s ^ fnv1a(kSiteNames[i]);
    p.st = PointStats{};
  }
}

int FaultInjector::index_of(const std::string& point) const {
  for (int i = 0; i < kFaultSiteCount; ++i)
    if (point == kSiteNames[i]) return i;
  throw std::out_of_range("FaultInjector: unknown fault point '" + point +
                          "'");
}

void FaultInjector::arm(const std::string& point, Config cfg) {
  Point& p = *points_[index_of(point)];
  {
    std::lock_guard<std::mutex> lk(p.mu);
    p.cfg = cfg;
    p.armed = true;
  }
  set_enabled(true);
}

void FaultInjector::disarm(const std::string& point) {
  Point& p = *points_[index_of(point)];
  std::lock_guard<std::mutex> lk(p.mu);
  p.armed = false;
}

void FaultInjector::reset() {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    Point& p = *points_[i];
    std::lock_guard<std::mutex> lk(p.mu);
    p.armed = false;
    p.cfg = Config{};
    p.st = PointStats{};
    p.rng = base_seed_ ^ fnv1a(kSiteNames[i]);
  }
}

FaultInjector::PointStats FaultInjector::stats(const std::string& point) const {
  const Point& p = *points_[index_of(point)];
  std::lock_guard<std::mutex> lk(p.mu);
  return p.st;
}

void FaultInjector::maybe_fire(FaultSite site) {
  Point& p = *points_[static_cast<int>(site)];
  bool fire = false;
  {
    std::lock_guard<std::mutex> lk(p.mu);
    if (!p.armed) return;
    ++p.st.passes;
    if (p.cfg.once) {
      fire = true;
      p.armed = false;
    } else if (p.cfg.count > 0 && p.st.passes <= p.cfg.count) {
      fire = true;
    } else if (p.cfg.probability > 0.0) {
      // 53-bit uniform in [0, 1) from the point's private stream: the
      // schedule depends only on (seed, pass order), never on wall time.
      const double u =
          static_cast<double>(splitmix64(p.rng) >> 11) * 0x1.0p-53;
      fire = u < p.cfg.probability;
    }
    if (fire) ++p.st.fires;
  }
  if (!fire) return;
  if (site == FaultSite::kKernelSweep)
    throw KernelFault(std::string("injected kernel fault at ") +
                      kSiteNames[static_cast<int>(site)]);
  throw TransientError(std::string("injected transient fault at ") +
                       kSiteNames[static_cast<int>(site)]);
}

}  // namespace tsv
