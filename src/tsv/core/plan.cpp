#include "tsv/core/plan.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <string>

#include "tsv/core/executor.hpp"
#include "tsv/core/workspace.hpp"

namespace tsv {

namespace {

// Default temporal block for tiled runs when Options::bt is 0. Small enough
// that the matching default spatial blocks stay legal on modest grids.
// (The matching x-block default, kDefaultBxTarget, lives in options.hpp —
// the autotuner's candidate seeding shares it.)
constexpr index kDefaultBt = 4;


std::string isa_err(const char* what, Isa isa) {
  std::string s = "ISA ";
  s += isa_name(isa);
  s += what;
  return s;
}

}  // namespace

namespace detail {

// Default OpenMP team for tiled runs when Options::threads is 0: the
// calling thread's nthreads ICV at FIRST use, captured once. First-use
// capture honors a deliberate pre-plan omp_set_num_threads() in the
// application's main() while staying immune to the thread counts
// Plan::execute itself sets later (the first make_plan necessarily
// precedes the first execute). The one thread that must never be first is
// an executor worker — its ICV is pinned to the gang size — so the
// Executor constructor calls this before spawning workers, pinning the
// capture to the constructing thread's environment.
int runtime_default_threads() {
  static const int threads = omp_get_max_threads();
  return threads;
}

bool degraded_isa(Isa from, Isa* to) {
  if (from == Isa::kAvx512) {
    *to = isa_compiled(Isa::kAvx2) && isa_supported(Isa::kAvx2) ? Isa::kAvx2
                                                                : Isa::kScalar;
    return true;
  }
  if (from == Isa::kAvx2) {
    *to = Isa::kScalar;
    return true;
  }
  return false;  // scalar is the bottom rung
}

void run_wave(Executor* ex, std::vector<std::function<void()>>& tasks) {
  // One task (or no executor) gains nothing from the submit/future round
  // trip — run inline. Order within a wave is free by construction: every
  // wave's tasks touch disjoint data (see ShardedPlan).
  if (ex == nullptr || tasks.size() <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  std::vector<std::future<void>> done;
  done.reserve(tasks.size());
  for (auto& task : tasks) done.push_back(ex->submit_task(task));
  // The wave is a barrier: drain EVERY future before rethrowing, so no
  // task is still running (and touching the caller's sharded grid) when
  // the exception unwinds the stack the tasks reference.
  std::exception_ptr first;
  for (auto& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace detail

ResolvedOptions resolve_options(const Shape& shape, int radius,
                                const Options& o) {
  const int rank = shape.rank;
  auto fail = [&](const std::string& reason) -> void {
    throw ConfigError(o.method, o.tiling, rank, reason);
  };

  if (rank < 1 || rank > 3) fail("shape rank must be 1, 2 or 3");
  if (shape.nx <= 0 || shape.ny <= 0 || shape.nz <= 0)
    fail("shape extents must be positive");
  if (o.steps < 0) fail("steps must be >= 0");
  if (shape.halo < radius)
    fail("grid halo " + std::to_string(shape.halo) +
         " is smaller than the stencil radius " + std::to_string(radius));

  ResolvedOptions r;
  r.method = o.method;
  r.tiling = o.tiling;
  r.steps = o.steps;
  r.tune = o.tune;
  r.health = o.health_check;
  // Threads resolve to a concrete team size: untiled sweeps are
  // single-threaded by design; tiled runs default to the runtime team
  // captured at first use (see detail::runtime_default_threads above).
  // max_threads caps the resolved team (never errors): the executor's gang
  // hint, so a request scheduled onto a gang cannot fork a machine-wide team.
  if (o.max_threads < 0) fail("max_threads must be >= 0");
  r.threads = o.threads > 0 ? o.threads
              : o.tiling == Tiling::kNone ? 1
                                          : detail::runtime_default_threads();
  if (o.max_threads > 0) r.threads = std::min(r.threads, o.max_threads);

  // ISA: kAuto resolves to the widest compiled+supported ISA. The dtype is
  // already concrete (no auto); the kernel width is lanes of that dtype.
  r.isa = (o.isa == Isa::kAuto) ? best_isa() : o.isa;
  if (!isa_compiled(r.isa)) fail(isa_err(" not compiled into this binary", r.isa));
  if (!isa_supported(r.isa)) fail(isa_err(" not supported on this machine", r.isa));
  r.dtype = o.dtype;
  r.width = kernel_width(r.isa, r.dtype);

  // Registry validation: is (method, tiling) implemented at this rank and
  // dtype?
  const Capability* cap = find_capability(o.method, o.tiling);
  if (cap == nullptr) {
    if (o.tiling == Tiling::kSplit)
      fail("split tiling is defined over the DLT layout (method dlt)");
    if (o.tiling == Tiling::kTessellate)
      fail("tessellate tiling does not support this method");
    fail("method/tiling combination is not implemented");
  }
  if (!cap->supports_rank(rank))
    fail(std::string("not implemented for rank ") + std::to_string(rank));
  if (!cap->supports_dtype(o.dtype))
    fail(std::string("not implemented for dtype ") + dtype_name(o.dtype));

  // Boundary conditions: normalize axes beyond the rank to the frozen
  // default, check the registry's boundary axis, and reject shapes the
  // wrap/mirror fills cannot source from (core/halo.hpp).
  r.boundary = o.boundary;
  if (rank < 2) r.boundary.y = Boundary::kDirichlet;
  if (rank < 3) r.boundary.z = Boundary::kDirichlet;
  for (Boundary b : {r.boundary.x, r.boundary.y, r.boundary.z})
    if (!cap->supports_boundary(b))
      fail(std::string("not implemented for boundary ") + boundary_name(b));
  if (const char* why = boundary_violation(rank, shape.nx, shape.ny, shape.nz,
                                           radius, r.boundary))
    fail(why);
  const bool per_step = needs_per_step_fill(r.boundary);

  // Layout divisibility rules, checked against the planned shape.
  switch (cap->x_rule) {
    case XRule::kNone: break;
    case XRule::kWidth:
      if (shape.nx % r.width != 0)
        fail("DLT layout requires nx % W == 0 (nx=" + std::to_string(shape.nx) +
             ", W=" + std::to_string(r.width) + ")");
      break;
    case XRule::kWidth2:
      if (shape.nx % (r.width * r.width) != 0)
        fail("transpose layout requires nx % W^2 == 0 (nx=" +
             std::to_string(shape.nx) +
             ", W^2=" + std::to_string(r.width * r.width) + ")");
      break;
  }

  // Streaming-store policy. kOn/kOff override only the TOPOLOGY heuristic
  // (working set vs the LLC threshold; Options::stream_threshold scales the
  // multiple). The temporal-reuse gate is structural and always applies:
  // tiled runs with bt > 1 re-read each time block's stores while they are
  // hot, so streaming there would be a pessimization the drivers refuse —
  // and the resolved flag must report what actually executes. Untiled full
  // sweeps and bt == 1 tiled runs (a time block degenerates to a full
  // sweep) are the no-reuse schedules. Combinations without a streaming
  // write-back variant (Capability::streams unset: scalar, autovec,
  // multiload, reorg, the uj2 schemes) never resolve streaming=true — the
  // flag must report what actually executes.
  const bool ws_big =
      working_set_bytes(rank, shape.nx, shape.ny, shape.nz,
                        dtype_size(r.dtype)) >
      streaming_threshold_bytes(o.stream_threshold);
  auto resolve_streaming = [&](bool no_temporal_reuse) {
    const bool want = o.stream == StreamMode::kOn    ? true
                      : o.stream == StreamMode::kOff ? false
                                                     : ws_big;
    r.streaming = want && no_temporal_reuse && cap->streams;
  };

  if (o.tiling == Tiling::kNone) {
    resolve_streaming(true);
    return r;  // blocks stay zero
  }

  // ---- resolved-blocking rule (tiled runs) --------------------------------
  // bt: temporal block, defaulting to kDefaultBt; the 2-step unroll&jam
  // scheme tessellates at pair granularity and needs an even bt. A
  // periodic/Neumann boundary inserts a ghost refresh between every pair of
  // steps, so a temporal block cannot span more than one step: bt resolves
  // to 1 (2 for the even-bt rows, whose engines then take the single-step
  // path) and reports what actually executes.
  r.bt = per_step ? (cap->needs_even_bt ? 2 : 1)
                  : (o.bt > 0 ? o.bt : kDefaultBt);
  resolve_streaming(r.bt == 1);
  if (cap->needs_even_bt && r.bt % 2 != 0)
    fail("2-step unroll&jam tiling needs an even temporal block bt (got " +
         std::to_string(r.bt) + ")");

  if (o.tiling == Tiling::kTessellate) {
    // Tile slope and time range as the engines will see them: ordinary
    // methods advance single steps (slope = r, tau = bt); the 2-step scheme
    // advances pairs (slope = 2r, tau = bt/2) whenever it has >= 1 pair.
    index slope = radius, tau = r.bt;
    if (cap->needs_even_bt) {
      if (r.steps >= 2) {
        slope = 2 * radius;
        tau = std::max<index>(1, r.bt / 2);
      } else {
        tau = 1;  // odd tail only: one ordinary tiled step
      }
    }
    const index min_block = 2 * slope * tau;

    // Per-axis blocks: x defaults to a cache-friendly target, y/z default to
    // the full extent (one tile). A multi-tile axis must keep shrinking
    // triangles from inverting: block >= 2 * slope * tau.
    r.bx = o.bx > 0 ? o.bx
                    : std::min(shape.nx, std::max(min_block, kDefaultBxTarget));
    r.by = rank >= 2 ? (o.by > 0 ? o.by : shape.ny) : 0;
    r.bz = rank >= 3 ? (o.bz > 0 ? o.bz : shape.nz) : 0;

    const struct {
      const char* name;
      index n, blk;
    } axes[] = {{"x", shape.nx, r.bx}, {"y", shape.ny, r.by},
                {"z", shape.nz, r.bz}};
    for (int a = 0; a < rank; ++a) {
      if (axes[a].blk <= 0)
        fail(std::string("tessellate tiling needs a positive block in ") +
             axes[a].name);
      if (tile_count(axes[a].n, axes[a].blk) > 1 && axes[a].blk < min_block)
        fail(std::string("block ") + std::to_string(axes[a].blk) + " in " +
             axes[a].name + " must be >= 2*slope*tau = " +
             std::to_string(min_block) +
             " (shrinking triangles must not invert)");
    }
    return r;
  }

  // Split tiling blocks exactly one axis — the outermost one: DLT columns in
  // 1D, rows in 2D, planes in 3D. One rule across ranks: the block comes
  // from that axis's own option field, falls back to bx, then to the full
  // extent; the 1D block is given in ELEMENTS and resolved to columns
  // (elements / W). This replaces the seed's three ad-hoc interpretations.
  switch (rank) {
    case 1: {
      const index elems = o.bx > 0 ? o.bx : shape.nx;
      r.split_block = std::max<index>(1, elems / r.width);
      break;
    }
    case 2:
      r.split_block = o.by > 0 ? o.by : (o.bx > 0 ? o.bx : shape.ny);
      break;
    default:
      r.split_block = o.bz > 0 ? o.bz : (o.bx > 0 ? o.bx : shape.nz);
      break;
  }
  r.split_block = std::max<index>(1, r.split_block);
  return r;
}

Plan make_plan(const Shape& shape, const StencilSpec& spec, const Options& o) {
  if (spec.generic != nullptr) return make_plan(shape, *spec.generic, o);
  // Spec validation: the kind's shape (rank, radius, tap structure) is
  // compile-time; only the weights are runtime data. A radius of 0 means
  // "the kind's own"; anything else is a cross-check.
  if (spec.radius != 0 && spec.radius != stencil_kind_radius(spec.kind))
    throw ConfigError(o.method, o.tiling, shape.rank,
                      std::string("stencil ") + stencil_kind_name(spec.kind) +
                          " has radius " +
                          std::to_string(stencil_kind_radius(spec.kind)) +
                          ", spec says " + std::to_string(spec.radius));
  const std::size_t want = stencil_kind_coeff_count(spec.kind);
  if (!spec.coeffs.empty() && spec.coeffs.size() != want)
    throw ConfigError(o.method, o.tiling, shape.rank,
                      std::string("stencil ") + stencil_kind_name(spec.kind) +
                          " takes " + std::to_string(want) +
                          " coefficients (got " +
                          std::to_string(spec.coeffs.size()) +
                          "; empty = defaults)");

  Plan p;
  p.shape_ = shape;
  auto bind = [&](auto stencil) { Plan::bind_typed(p, shape, stencil, o); };
  // The Options dtype selects which instantiation of the Table-1 stencil the
  // plan binds; the grid handed to execute() must match it. User
  // coefficients ride through the factories in their parameter order.
  const std::vector<double>& c = spec.coeffs;
  auto bind_kind = [&]<typename T>() {
    switch (spec.kind) {
      case StencilKind::k1d3p:
        c.empty() ? bind(make_1d3p<T>()) : bind(make_1d3p<T>(c[0]));
        break;
      case StencilKind::k1d5p:
        c.empty() ? bind(make_1d5p<T>())
                  : bind(make_1d5p<T>(c[0], c[1], c[2]));
        break;
      case StencilKind::k2d5p:
        c.empty() ? bind(make_2d5p<T>())
                  : bind(make_2d5p<T>(c[0], c[1], c[2]));
        break;
      case StencilKind::k2d9p:
        c.empty() ? bind(make_2d9p<T>())
                  : bind(make_2d9p<T>(c[0], c[1], c[2]));
        break;
      case StencilKind::k3d7p:
        c.empty() ? bind(make_3d7p<T>())
                  : bind(make_3d7p<T>(c[0], c[1], c[2], c[3]));
        break;
      case StencilKind::k3d27p:
        c.empty() ? bind(make_3d27p<T>()) : bind(make_3d27p<T>(c[0]));
        break;
    }
  };
  if (o.dtype == Dtype::kF32)
    bind_kind.template operator()<float>();
  else
    bind_kind.template operator()<double>();
  return p;
}

Plan make_plan(const Shape& shape, StencilKind kind, const Options& o) {
  return make_plan(shape, StencilSpec{.kind = kind}, o);
}

Plan make_plan(const Shape& shape, const GenericStencil& gs,
               const Options& o) {
  auto fail = [&](const std::string& reason) -> void {
    throw ConfigError(o.method, o.tiling, shape.rank, reason);
  };
  if (const char* why = generic_violation(gs)) fail(why);
  if (o.method != Method::kGeneric)
    fail(std::string("a GenericStencil executes through method generic "
                     "(options request method ") +
         method_name(o.method) + ")");
  if (shape.rank != gs.rank)
    fail("shape rank " + std::to_string(shape.rank) +
         " does not match the generic stencil's rank " +
         std::to_string(gs.rank));

  Plan p;
  p.shape_ = shape;
  auto bind = [&](auto stencil) { Plan::bind_typed(p, shape, stencil, o); };
  // The lowering is a rank x radius x dtype dispatch: the interpreter is
  // templated on the radius (its tap unroll) and the element type, so each
  // cell below instantiates one lowered descriptor type. The effective
  // radius is validated <= kMaxGenericRadius above.
  const int radius = gs.effective_radius();
  auto bind_generic = [&]<typename T>() {
    switch (shape.rank) {
      case 1:
        switch (radius) {
          case 1: bind(detail::lower_generic_1d<1, T>(gs)); break;
          case 2: bind(detail::lower_generic_1d<2, T>(gs)); break;
          default: bind(detail::lower_generic_1d<3, T>(gs)); break;
        }
        break;
      case 2:
        switch (radius) {
          case 1: bind(detail::lower_generic_2d<1, T>(gs)); break;
          case 2: bind(detail::lower_generic_2d<2, T>(gs)); break;
          default: bind(detail::lower_generic_2d<3, T>(gs)); break;
        }
        break;
      default:
        switch (radius) {
          case 1: bind(detail::lower_generic_3d<1, T>(gs)); break;
          case 2: bind(detail::lower_generic_3d<2, T>(gs)); break;
          default: bind(detail::lower_generic_3d<3, T>(gs)); break;
        }
        break;
    }
  };
  if (o.dtype == Dtype::kF32)
    bind_generic.template operator()<float>();
  else
    bind_generic.template operator()<double>();
  return p;
}

}  // namespace tsv
