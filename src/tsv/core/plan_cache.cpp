#include "tsv/core/plan_cache.hpp"

#include <algorithm>
#include <bit>
#include <tuple>

#include "tsv/core/generic_stencil.hpp"

namespace tsv {

namespace {

// THE key identity: ordering, equality and the hash below all derive from
// this one tuple, so a future field added to PlanKey (and PlanKey::make)
// only needs one more entry here to participate in all three consistently.
auto key_tie(const PlanKey& k) {
  return std::tie(k.kind, k.radius, k.coeff_bits, k.generic_bits, k.rank,
                  k.nx, k.ny, k.nz,
                  k.halo, k.method, k.tiling, k.isa, k.dtype, k.steps, k.bx,
                  k.by, k.bz, k.bt, k.threads, k.max_threads, k.tune,
                  k.stream, k.stream_threshold_bits, k.boundary.x,
                  k.boundary.y, k.boundary.z, k.health);
}

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
}

void hash_field(std::uint64_t& h, const std::vector<std::uint64_t>& v) {
  hash_mix(h, v.size());
  for (std::uint64_t bits : v) hash_mix(h, bits);
}

template <typename T>
void hash_field(std::uint64_t& h, const T& v) {
  hash_mix(h, static_cast<std::uint64_t>(v));
}

}  // namespace

bool operator<(const PlanKey& a, const PlanKey& b) {
  return key_tie(a) < key_tie(b);
}

bool operator==(const PlanKey& a, const PlanKey& b) {
  return key_tie(a) == key_tie(b);
}

PlanKey PlanKey::make(const Shape& shape, const StencilSpec& spec,
                      const Options& o) {
  PlanKey k;
  k.kind = spec.kind;
  // radius 0 means "the kind's own"; normalize so the two spellings of the
  // same stencil share one entry. (A WRONG explicit radius also normalizes
  // — and then fails in make_plan exactly as it would uncached.)
  k.radius = spec.radius != 0 ? spec.radius : stencil_kind_radius(spec.kind);
  k.coeff_bits.reserve(spec.coeffs.size());
  for (double c : spec.coeffs)
    k.coeff_bits.push_back(std::bit_cast<std::uint64_t>(c));
  if (spec.generic != nullptr) {
    // A runtime-programmable spec ignores kind/radius/coeffs (make_plan
    // routes on the GenericStencil alone), so the key must carry the full
    // tap set instead: rank, count, and per tap the packed offset plus the
    // weight's bit pattern (same NaN-safe reasoning as coeff_bits). The
    // radius slot reuses the shape's effective radius — the structural fact
    // lowering dispatches on.
    const GenericStencil& gs = *spec.generic;
    k.radius = gs.effective_radius();
    k.generic_bits.reserve(2 + 2 * gs.taps.size() + 2);
    k.generic_bits.push_back(static_cast<std::uint64_t>(gs.rank));
    k.generic_bits.push_back(gs.taps.size());
    for (const GenericTap& t : gs.taps) {
      const auto off = static_cast<std::uint64_t>(t.dx + 128) |
                       (static_cast<std::uint64_t>(t.dy + 128) << 8) |
                       (static_cast<std::uint64_t>(t.dz + 128) << 16);
      k.generic_bits.push_back(off);
      k.generic_bits.push_back(std::bit_cast<std::uint64_t>(t.weight));
    }
    if (!gs.scale.empty()) {
      // Scale fields are grid-sized; digest rather than copy. FNV-1a over
      // the value bit patterns keeps distinct fields (overwhelmingly)
      // distinct entries without retaining megabytes per key.
      k.generic_bits.push_back(static_cast<std::uint64_t>(gs.scale_nx) |
                               (static_cast<std::uint64_t>(gs.scale_ny) << 21) |
                               (static_cast<std::uint64_t>(gs.scale_nz) << 42));
      std::uint64_t digest = 1469598103934665603ull;
      for (double v : gs.scale) {
        digest ^= std::bit_cast<std::uint64_t>(v);
        digest *= 1099511628211ull;
      }
      k.generic_bits.push_back(digest);
    }
  }
  k.rank = shape.rank;
  k.nx = shape.nx;
  k.ny = shape.ny;
  k.nz = shape.nz;
  k.halo = shape.halo;
  k.method = o.method;
  k.tiling = o.tiling;
  k.isa = o.isa;
  k.dtype = o.dtype;
  k.steps = o.steps;
  k.bx = o.bx;
  k.by = o.by;
  k.bz = o.bz;
  k.bt = o.bt;
  k.threads = o.threads;
  k.max_threads = o.max_threads;
  k.tune = o.tune;
  k.stream = o.stream;
  k.stream_threshold_bits = std::bit_cast<std::uint64_t>(o.stream_threshold);
  // Axes beyond the rank normalize to the frozen default, mirroring
  // resolve_options — otherwise {kPeriodic x, junk z} and {kPeriodic x}
  // would occupy two entries for one plan.
  k.boundary = o.boundary;
  if (k.rank < 2) k.boundary.y = Boundary::kDirichlet;
  if (k.rank < 3) k.boundary.z = Boundary::kDirichlet;
  k.health = o.health_check;
  return k;
}

std::uint64_t PlanKey::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  std::apply([&h](const auto&... field) { (hash_field(h, field), ...); },
             key_tie(*this));
  return h;
}

std::shared_ptr<PlanCache::Entry> PlanCache::get(const Shape& shape,
                                                 const StencilSpec& spec,
                                                 const Options& o) {
  const PlanKey key = PlanKey::make(shape, spec, o);
  // Degradation pin: the entry stays keyed by the ORIGINAL request, but a
  // degraded configuration builds at its pinned (lower) ISA rung.
  Options build_o = o;
  {
    std::lock_guard<std::mutex> lock(override_mu_);
    auto it = isa_override_.find(key);
    if (it != isa_override_.end()) build_o.isa = it->second;
  }
  Shard& shard = shard_for(key);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      entry = it->second;
    } else {
      // Size bound: before inserting into a full shard, drop idle entries
      // — ones no in-flight request still holds (use_count == 1: the map's
      // own reference). An evicted configuration is merely rebuilt on its
      // next use; entries pinned by running requests are never touched, so
      // a shard can exceed its share only while that many requests are
      // simultaneously in flight. The evicted pools' lifetime totals move
      // into the retired accumulators so workspace_stats() never goes
      // backwards.
      if (max_entries_ > 0) {
        const std::size_t shard_cap =
            std::max<std::size_t>(1, max_entries_ / kShards);
        for (auto it2 = shard.entries.begin();
             shard.entries.size() >= shard_cap &&
             it2 != shard.entries.end();) {
          if (it2->second.use_count() == 1) {
            const WorkspacePool::Stats dead = it2->second->pool_.stats();
            retired_ws_created_.fetch_add(dead.created,
                                          std::memory_order_relaxed);
            retired_ws_reused_.fetch_add(dead.reused,
                                         std::memory_order_relaxed);
            it2 = shard.entries.erase(it2);
            evictions_.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++it2;
          }
        }
      }
      entry = std::make_shared<Entry>();
      shard.entries.emplace(key, entry);
    }
  }
  // Build OUTSIDE the shard lock: plan construction can run autotuning
  // trials lasting milliseconds-to-seconds, and the other configurations in
  // this shard must not stall behind them. The entry's own state machine
  // single-flights the build: one caller claims kBuilding and runs
  // make_plan unlocked, everyone else waits; a build failure releases the
  // claim (the next waiter retries and throws the same deterministic
  // ConfigError) while propagating to the claimant's caller.
  //
  // Hit/miss accounting follows the build OUTCOME, not map presence: a
  // caller that performed (or attempted) construction counts as a miss
  // even when the kUnbuilt entry was already in the map from an earlier
  // failure — a "hit" that re-runs make_plan would let a dashboard show a
  // healthy hit rate while every request pays full construction.
  bool built_here = false;
  std::unique_lock<std::mutex> lock(entry->mu_);
  while (entry->state_ != Entry::State::kBuilt) {
    if (entry->state_ == Entry::State::kUnbuilt) {
      entry->state_ = Entry::State::kBuilding;
      built_here = true;
      lock.unlock();
      try {
        // Pre-build: an injected fault here models a failed construction
        // (e.g. an allocation failure inside autotuning trials); the claim
        // release below makes it retry-clean for every waiter.
        fault_point(FaultSite::kPlanBuild);
        Plan plan = make_plan(shape, spec, build_o);
        lock.lock();
        entry->plan_.emplace(std::move(plan));
        entry->state_ = Entry::State::kBuilt;
        entry->cv_.notify_all();
      } catch (...) {
        lock.lock();
        entry->state_ = Entry::State::kUnbuilt;
        entry->cv_.notify_all();
        misses_.fetch_add(1, std::memory_order_relaxed);
        throw;
      }
    } else {
      entry->cv_.wait(lock, [&] {
        return entry->state_ != Entry::State::kBuilding;
      });
    }
  }
  (built_here ? misses_ : hits_).fetch_add(1, std::memory_order_relaxed);
  return entry;
}

bool PlanCache::degrade(const Shape& shape, const StencilSpec& spec,
                        const Options& o) {
  const PlanKey key = PlanKey::make(shape, spec, o);
  {
    std::lock_guard<std::mutex> lock(override_mu_);
    auto it = isa_override_.find(key);
    const Isa cur = it != isa_override_.end()
                        ? it->second
                        : (o.isa == Isa::kAuto ? best_isa() : o.isa);
    Isa next;
    if (!detail::degraded_isa(cur, &next)) return false;
    isa_override_[key] = next;
  }
  // Drop the cached entry so the next get() under the same key rebuilds at
  // the pinned rung. In-flight holders keep the old entry alive until their
  // leases drain; its pool's lifetime totals retire so workspace_stats()
  // never goes backwards (same bookkeeping as eviction).
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    const WorkspacePool::Stats dead = it->second->pool_.stats();
    retired_ws_created_.fetch_add(dead.created, std::memory_order_relaxed);
    retired_ws_reused_.fetch_add(dead.reused, std::memory_order_relaxed);
    shard.entries.erase(it);
  }
  return true;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(override_mu_);
    s.degraded_plans = isa_override_.size();
  }
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.entries.size();
  }
  return s;
}

WorkspacePool::Stats PlanCache::workspace_stats() const {
  WorkspacePool::Stats total;
  // Lifetime totals of pools whose entries were evicted: without these the
  // cumulative created/reused counters would go BACKWARDS across an
  // eviction, breaking monitors that difference successive reads.
  total.created = retired_ws_created_.load(std::memory_order_relaxed);
  total.reused = retired_ws_reused_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::vector<std::shared_ptr<Entry>> entries;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [key, e] : shard.entries) entries.push_back(e);
    }
    for (const auto& e : entries) {
      const WorkspacePool::Stats s = e->pool_.stats();
      total.created += s.created;
      total.reused += s.reused;
      total.free += s.free;
      total.in_flight += s.in_flight;
    }
  }
  return total;
}

void PlanCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, e] : shard.entries) {
      const WorkspacePool::Stats dead = e->pool_.stats();
      retired_ws_created_.fetch_add(dead.created, std::memory_order_relaxed);
      retired_ws_reused_.fetch_add(dead.reused, std::memory_order_relaxed);
    }
    shard.entries.clear();
  }
}

std::size_t PlanCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

}  // namespace tsv
