// Numerical health guards: opt-in NaN/Inf scans over a grid's interior,
// throwing NumericalError (core/fault.hpp) with the linear interior index
// of the first corrupt cell.
//
// The scan is written to auto-vectorize: each row is reduced with pure
// integer ops (load bits, mask the exponent, OR a "saw non-finite" flag) —
// no FP compares, so it is immune to -ffast-math-style NaN assumptions and
// compiles to a handful of SIMD ops per cache line. Only when a row's flag
// trips does a scalar rescan pinpoint the offending cell; the fault-free
// fast path never branches per element.
//
// Two scopes (Options::health_check):
//   kBoundary  the outermost interior ring — O(surface). Boundary/halo bugs
//              (the dominant corruption source in stencil codes: a bad
//              ghost fill, a wrong mirror) poison the ring on the very next
//              step, so this catches them at ~zero cost for large grids.
//   kFull      every interior cell — O(volume), catches mid-grid
//              corruption (bad coefficients, overflowing dynamics) too.

#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "tsv/common/grid.hpp"
#include "tsv/core/fault.hpp"
#include "tsv/core/options.hpp"

namespace tsv {

namespace detail {

template <typename T>
using FiniteBits =
    std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;

// IEEE-754: a value is non-finite (NaN or Inf) iff its exponent field is
// all ones.
template <typename T>
constexpr FiniteBits<T> exponent_mask() {
  return sizeof(T) == 4 ? FiniteBits<T>(0x7f800000u)
                        : FiniteBits<T>(0x7ff0000000000000ull);
}

template <typename T>
inline bool is_finite_value(T v) {
  FiniteBits<T> b;
  std::memcpy(&b, &v, sizeof(T));
  return (b & exponent_mask<T>()) != exponent_mask<T>();
}

// Branch-free OR-reduction over a contiguous run; the hot loop is integer
// only and auto-vectorizes.
template <typename T>
inline bool run_all_finite(const T* p, index n) {
  constexpr FiniteBits<T> kExp = exponent_mask<T>();
  FiniteBits<T> bad = 0;
  for (index i = 0; i < n; ++i) {
    FiniteBits<T> b;
    std::memcpy(&b, p + i, sizeof(T));
    bad |= static_cast<FiniteBits<T>>((b & kExp) == kExp);
  }
  return bad == 0;
}

// Index of the first non-finite element in [p, p+n), or -1.
template <typename T>
inline index first_non_finite(const T* p, index n) {
  if (run_all_finite(p, n)) return -1;
  for (index i = 0; i < n; ++i)
    if (!is_finite_value(p[i])) return i;
  return -1;  // unreachable: the OR-reduction saw a bad exponent
}

[[noreturn]] void throw_numerical_error(index linear_index);

}  // namespace detail

/// Scans @p g's interior per @p mode; throws NumericalError carrying the
/// linear interior index (x, x + nx*y, x + nx*(y + ny*z)) of the first
/// non-finite cell. kOff returns immediately.
template <typename T>
void health_scan(const Grid1D<T>& g, HealthCheck mode) {
  if (mode == HealthCheck::kOff) return;
  if (mode == HealthCheck::kBoundary) {
    // 1D "ring": the two edge cells.
    if (!detail::is_finite_value(g.at(0))) detail::throw_numerical_error(0);
    if (!detail::is_finite_value(g.at(g.nx() - 1)))
      detail::throw_numerical_error(g.nx() - 1);
    return;
  }
  const index i = detail::first_non_finite(&g.at(0), g.nx());
  if (i >= 0) detail::throw_numerical_error(i);
}

template <typename T>
void health_scan(const Grid2D<T>& g, HealthCheck mode) {
  if (mode == HealthCheck::kOff) return;
  const index nx = g.nx(), ny = g.ny();
  auto scan_row = [&](index y, index x0, index n) {
    const index i = detail::first_non_finite(&g.at(x0, y), n);
    if (i >= 0) detail::throw_numerical_error(x0 + i + nx * y);
  };
  if (mode == HealthCheck::kBoundary) {
    scan_row(0, 0, nx);
    if (ny > 1) scan_row(ny - 1, 0, nx);
    for (index y = 1; y < ny - 1; ++y) {
      scan_row(y, 0, 1);
      if (nx > 1) scan_row(y, nx - 1, 1);
    }
    return;
  }
  for (index y = 0; y < ny; ++y) scan_row(y, 0, nx);
}

template <typename T>
void health_scan(const Grid3D<T>& g, HealthCheck mode) {
  if (mode == HealthCheck::kOff) return;
  const index nx = g.nx(), ny = g.ny(), nz = g.nz();
  auto scan_row = [&](index y, index z, index x0, index n) {
    const index i = detail::first_non_finite(&g.at(x0, y, z), n);
    if (i >= 0) detail::throw_numerical_error(x0 + i + nx * (y + ny * z));
  };
  if (mode == HealthCheck::kBoundary) {
    for (index z = 0; z < nz; ++z) {
      const bool face_z = z == 0 || z == nz - 1;
      for (index y = 0; y < ny; ++y) {
        if (face_z || y == 0 || y == ny - 1) {
          scan_row(y, z, 0, nx);
        } else {
          scan_row(y, z, 0, 1);
          if (nx > 1) scan_row(y, z, nx - 1, 1);
        }
      }
    }
    return;
  }
  for (index z = 0; z < nz; ++z)
    for (index y = 0; y < ny; ++y) scan_row(y, z, 0, nx);
}

}  // namespace tsv
