#pragma once
// Public run options: which vectorization method, which tiling framework,
// which ISA, and the blocking parameters.

#include <string>

#include "tsv/common/aligned.hpp"
#include "tsv/common/cpu.hpp"

namespace tsv {

/// Vectorization schemes evaluated by the paper.
enum class Method {
  kScalar,       ///< plain scalar reference
  kAutoVec,      ///< compiler auto-vectorization (pragma simd)
  kMultiLoad,    ///< unaligned load per shifted vector (paper §2.1)
  kReorg,        ///< aligned loads + register shuffles (paper §2.1)
  kDlt,          ///< dimension-lifting transpose (Henretty; paper §2.2)
  kTranspose,    ///< register-block transpose layout (paper §3.2) — "Our"
  kTransposeUJ,  ///< + time unroll-and-jam, k=2 (paper §3.3) — "Our (2 steps)"
};

/// Tiling frameworks.
enum class Tiling {
  kNone,        ///< untiled sweeps (paper §4.2 block-free experiments)
  kTessellate,  ///< tessellate tiling (paper §3.4; Yuan SC'17)
  kSplit,       ///< split tiling over DLT layout (SDSL baseline)
};

/// Stable human-readable names ("transpose", "tessellate", ...). Defined in
/// core/registry.cpp; registry.hpp adds the name -> enum inverses.
const char* method_name(Method m);
const char* tiling_name(Tiling t);

struct Options {
  Method method = Method::kTranspose;
  Tiling tiling = Tiling::kNone;
  Isa isa = Isa::kAuto;     ///< kAuto resolves to best_isa() at plan time
  Dtype dtype = Dtype::kF64;  ///< element type; typed plans derive it from
                              ///< the stencil instead
  index steps = 1;          ///< time steps T
  index bx = 0, by = 0, bz = 0;  ///< spatial block sizes (0 = plan default)
  index bt = 0;             ///< temporal block (0 = plan default)
  int threads = 0;          ///< OpenMP threads; 0 = runtime default
};

}  // namespace tsv
