#pragma once
// Public run options: which vectorization method, which tiling framework,
// which ISA, and the blocking parameters.

#include <string>

#include "tsv/common/aligned.hpp"
#include "tsv/common/cpu.hpp"

namespace tsv {

/// Vectorization schemes evaluated by the paper.
enum class Method {
  kScalar,       ///< plain scalar reference
  kAutoVec,      ///< compiler auto-vectorization (pragma simd)
  kMultiLoad,    ///< unaligned load per shifted vector (paper §2.1)
  kReorg,        ///< aligned loads + register shuffles (paper §2.1)
  kDlt,          ///< dimension-lifting transpose (Henretty; paper §2.2)
  kTranspose,    ///< register-block transpose layout (paper §3.2) — "Our"
  kTransposeUJ,  ///< + time unroll-and-jam, k=2 (paper §3.3) — "Our (2 steps)"
  kGeneric,      ///< register-blocked interpreter over runtime tap lists
                 ///< (core/generic_stencil.hpp); also runs the compiled kinds
};

/// Tiling frameworks.
enum class Tiling {
  kNone,        ///< untiled sweeps (paper §4.2 block-free experiments)
  kTessellate,  ///< tessellate tiling (paper §3.4; Yuan SC'17)
  kSplit,       ///< split tiling over DLT layout (SDSL baseline)
};

/// Block-size autotuning policy (core/tuner.hpp). Tuning runs at plan time,
/// never inside Plan::execute.
enum class Tune {
  kOff,     ///< use explicit blocks / fixed heuristics (default)
  kCached,  ///< reuse a memoized (or JSON-imported) result; trial on miss
  kFull,    ///< always re-run timed trials, then update the cache
};

/// Non-temporal (streaming) store policy for the vector write-back paths.
/// kOn/kOff override the working-set-vs-LLC heuristic only; the structural
/// temporal-reuse gate always applies (tiled runs stream only at bt == 1),
/// and ResolvedOptions::streaming reports the decision that executes.
enum class StreamMode {
  kAuto,  ///< stream when the working set exceeds the LLC threshold and the
          ///< schedule has no temporal reuse (default)
  kOff,   ///< never stream
  kOn,    ///< stream whenever the schedule permits it (ignore the threshold)
};

/// Boundary condition applied on one grid axis. The halo ("ghost") cells of
/// the grid are the carrier in every case; the conditions differ only in who
/// writes them and when (core/halo.hpp implements the fills):
///
///  * kDirichlet — ghost cells hold user-supplied fixed boundary values and
///    are never touched by the library (the seed's convention: fill() the
///    halo yourself; it stays frozen in time). This is the default.
///  * kZero     — Dirichlet with value 0, enforced: the library zeroes the
///    ghost cells once per execute (the paper's implicit zero halo).
///  * kPeriodic — the axis wraps; ghost cells are refreshed from the
///    opposite interior edge before every time step.
///  * kNeumann  — zero-gradient (reflecting): the ghost cell at distance d
///    outside a face mirrors the interior cell at distance d-1 inside it,
///    refreshed before every time step.
///
/// Periodic and Neumann ghosts depend on the evolving interior, so plans
/// with such an axis execute step-at-a-time with a ghost refresh between
/// steps (see TypedPlan::execute); the interior kernels stay branch-free.
enum class Boundary {
  kDirichlet,  ///< frozen user-supplied halo values (default)
  kZero,       ///< enforced zero halo (paper's implicit convention)
  kPeriodic,   ///< wrap-around, refreshed every step
  kNeumann,    ///< zero-gradient mirror, refreshed every step
};

/// Per-axis boundary conditions. Axes beyond the grid rank are ignored (and
/// normalized to kDirichlet in ResolvedOptions).
struct BoundarySpec {
  Boundary x = Boundary::kDirichlet;
  Boundary y = Boundary::kDirichlet;
  Boundary z = Boundary::kDirichlet;

  /// The same condition on every axis.
  static BoundarySpec uniform(Boundary b) { return {b, b, b}; }

  friend bool operator==(const BoundarySpec&, const BoundarySpec&) = default;
};

/// True when @p b requires a ghost refresh before every time step (the
/// ghost values depend on the evolving interior).
inline bool boundary_per_step(Boundary b) {
  return b == Boundary::kPeriodic || b == Boundary::kNeumann;
}

/// True when any axis of @p bc needs per-step ghost refreshes.
inline bool needs_per_step_fill(const BoundarySpec& bc) {
  return boundary_per_step(bc.x) || boundary_per_step(bc.y) ||
         boundary_per_step(bc.z);
}

/// Stable human-readable names ("transpose", "tessellate", ...). Defined in
/// core/registry.cpp; registry.hpp adds the name -> enum inverses.
/// boundary_name lives in core/halo.cpp with its name -> enum inverse.
const char* method_name(Method m);
const char* tiling_name(Tiling t);
const char* boundary_name(Boundary b);

/// Stable names for the tuning knob ("off", "cached", "full"); inverse in
/// core/tuner.hpp.
const char* tune_name(Tune t);

/// Output health scan (core/health.hpp): after every execute, check the
/// result for NaN/Inf and throw NumericalError (with the first bad interior
/// index) on corruption. kBoundary scans only the outermost interior ring —
/// O(surface), catches halo/boundary corruption where it shows first;
/// kFull scans the whole interior — O(volume), catches everything.
enum class HealthCheck {
  kOff,       ///< no scan (default)
  kBoundary,  ///< outermost interior ring only
  kFull,      ///< entire interior
};

/// Stable names ("off", "boundary", "full") and the inverse; core/health.cpp.
const char* health_check_name(HealthCheck h);
HealthCheck health_check_from_name(const std::string& name);

/// Default x-block target (elements) for tiled plans when Options::bx is 0:
/// a few thousand elements keeps a tile's working set in L1/L2 while
/// amortizing tile overheads. Shared by the resolver (plan.cpp) and the
/// autotuner's candidate seeding (tuner.cpp) so the two cannot drift.
inline constexpr index kDefaultBxTarget = 4096;

struct Options {
  Method method = Method::kTranspose;
  Tiling tiling = Tiling::kNone;
  Isa isa = Isa::kAuto;     ///< kAuto resolves to best_isa() at plan time
  Dtype dtype = Dtype::kF64;  ///< element type; typed plans derive it from
                              ///< the stencil instead
  index steps = 1;          ///< time steps T
  index bx = 0, by = 0, bz = 0;  ///< spatial block sizes (0 = plan default)
  index bt = 0;             ///< temporal block (0 = plan default)
  int threads = 0;          ///< OpenMP threads; 0 = runtime default
  /// Upper bound on the resolved OpenMP team (0 = no cap). This is the
  /// executor's gang hint (core/executor.hpp): a batched service partitions
  /// the machine into gangs and caps every request's team at its gang size,
  /// so concurrent requests compose instead of each claiming the whole
  /// machine. Applies after the `threads` default resolves; an explicit
  /// `threads` larger than the cap is clamped, never an error.
  int max_threads = 0;
  Tune tune = Tune::kOff;   ///< block autotuning (fills only fields left 0)
  StreamMode stream = StreamMode::kAuto;  ///< non-temporal store policy
  double stream_threshold = 0.0;  ///< LLC multiple for kAuto; 0 = default
  /// Per-axis boundary conditions (core/halo.hpp). The default, kDirichlet
  /// on every axis, is the seed behaviour: the halo you fill()ed is frozen.
  BoundarySpec boundary;
  /// Post-execute NaN/Inf output scan (core/health.hpp). Off by default —
  /// the scan costs an extra pass over the scanned cells.
  HealthCheck health_check = HealthCheck::kOff;
};

}  // namespace tsv
