#pragma once
// Sharded grids: domain decomposition along the outermost axis.
//
// A ShardedGrid<G> splits one logical grid into `count` contiguous slabs
// along the OUTERMOST axis (x for 1D, y for 2D, z for 3D — the only axis
// whose slabs are whole unit-stride rows/planes, so every per-row layout
// transform the kernels rely on sees exactly the data it would see in the
// monolithic grid). Each shard is a full Grid with its own radius-deep
// ghost rim; the ghost strips on the two split faces are by construction
// either
//
//   * INTERNAL faces — refreshed every step by copying the neighboring
//     shard's interior edge (exchange_shard_ghosts); a periodic split axis
//     wraps the same copies around the ring, or
//   * PHYSICAL faces — the global domain boundary, filled by the same
//     machinery the monolithic plan uses (fill_ghosts for the non-split
//     axes, fill_ghost_face for the split faces), so Dirichlet halos stay
//     frozen and zero/Neumann faces get bit-identical values.
//
// The exchange copies whole EXTENDED rows/planes (interior plus the
// inner-axis ghost rim, which the neighbor filled first), reproducing the
// sequential x -> y -> z fill order of core/halo.hpp exactly: every corner
// and edge ghost of every shard holds the same bits the monolithic
// fill_ghosts would have written. That is what makes sharded execution
// bit-identical to the monolithic plan (tests/test_shard.cpp pins this).
//
// ShardedPlan (core/plan.hpp) owns the step loop and drives these fills as
// parallel waves over Executor gangs; this header owns the geometry and the
// per-shard copy bodies.

#include <vector>

#include "tsv/common/grid.hpp"
#include "tsv/core/halo.hpp"
#include "tsv/core/options.hpp"

namespace tsv {

/// How to decompose a grid into shards and how to place them.
struct ShardSpec {
  /// Split axis: -1 selects the outermost axis of the grid's rank (x for
  /// 1D, y for 2D, z for 3D). An explicit axis must BE that outermost axis
  /// (0-based: 0=x, 1=y, 2=z) — inner axes would break the unit-stride row
  /// layout the vector kernels transform, and are rejected.
  int axis = -1;
  /// Number of shards; 0 = one per logical core, clamped so every shard
  /// keeps at least one interior slab.
  int count = 0;
  /// Cap on each shard plan's OpenMP team (Options::max_threads). The
  /// default 1 runs every shard single-threaded — pure shard-level
  /// parallelism, one shard per executor gang; raise it when gangs span
  /// several cores. 0 leaves the plan's own resolution uncapped.
  int threads_per_shard = 1;
  /// First-touch policy for the per-shard buffers (NUMA placement: with
  /// kParallel each shard's pages are touched by the team that computes
  /// it).
  FirstTouch first_touch = FirstTouch::kSerial;
};

/// Resolved decomposition: concrete axis/count plus each shard's base
/// offset and extent along the split axis. Extents are as even as possible
/// (the remainder goes to the leading shards, one slab each).
struct ShardLayout {
  int axis = 0;
  int count = 1;
  std::vector<index> base;    ///< global offset of shard i's first slab
  std::vector<index> extent;  ///< slabs of shard i (>= 1)
};

/// Resolves @p spec against a rank-@p rank grid whose outermost-axis extent
/// is @p outer. Throws std::invalid_argument for a non-outermost axis or a
/// count the extent cannot satisfy. Defined in shard.cpp.
ShardLayout shard_layout(int rank, index outer, const ShardSpec& spec);

/// Reason the layout cannot run a radius-@p radius stencil (static
/// storage), or nullptr when it can. The exchange copies radius slabs of
/// neighbor interior into each internal face, so every shard extent must be
/// >= radius. Used by ShardedPlan validation. Defined in shard.cpp.
const char* shard_violation(const ShardLayout& layout, int radius);

/// One logical grid stored as per-shard subgrids (see the header comment).
/// G is Grid1D/2D/3D<T>. The sharded grid never aliases the monolithic
/// one: scatter()/gather() copy data in and out explicitly.
template <typename G>
class ShardedGrid {
 public:
  using value_type = typename G::value_type;
  static constexpr int kRank = G::kRank;

  /// Decomposes the geometry of @p like (extents + halo; its data is not
  /// read — use scatter()). Throws std::invalid_argument on a bad spec.
  ShardedGrid(const G& like, const ShardSpec& spec)
      : nx_(like.nx()), ny_(1), nz_(1), halo_(like.halo()) {
    if constexpr (kRank >= 2) ny_ = like.ny();
    if constexpr (kRank >= 3) nz_ = like.nz();
    layout_ = shard_layout(kRank, outer_extent(), spec);
    shards_.reserve(static_cast<std::size_t>(layout_.count));
    for (int i = 0; i < layout_.count; ++i) {
      const index e = layout_.extent[static_cast<std::size_t>(i)];
      if constexpr (kRank == 1)
        shards_.emplace_back(e, halo_, spec.first_touch);
      else if constexpr (kRank == 2)
        shards_.emplace_back(nx_, e, halo_, spec.first_touch);
      else
        shards_.emplace_back(nx_, ny_, e, halo_, spec.first_touch);
    }
  }

  int shards() const { return layout_.count; }
  const ShardLayout& layout() const { return layout_; }
  G& shard(int i) { return shards_[static_cast<std::size_t>(i)]; }
  const G& shard(int i) const { return shards_[static_cast<std::size_t>(i)]; }

  /// Global extents and halo of the logical grid.
  index nx() const { return nx_; }
  index ny() const { return ny_; }
  index nz() const { return nz_; }
  index halo() const { return halo_; }

  /// Copies @p src (same geometry as the prototype) into the shards,
  /// INCLUDING each shard's full halo-deep ghost rim: internal-face ghosts
  /// land on neighbor interior (refreshed by the exchange anyway) and
  /// physical-face ghosts inherit src's halo — which is how frozen
  /// Dirichlet boundary values enter the shards.
  void scatter(const G& src) {
    check_geometry(src, "ShardedGrid::scatter");
    const index h = halo_;
    const index w = nx_ + 2 * h;
    for (int i = 0; i < layout_.count; ++i) {
      G& d = shards_[static_cast<std::size_t>(i)];
      const index b = layout_.base[static_cast<std::size_t>(i)];
      const index e = layout_.extent[static_cast<std::size_t>(i)];
      if constexpr (kRank == 1) {
        detail::copy_row_segment(d.x0() - h, src.x0() + b - h, e + 2 * h);
      } else if constexpr (kRank == 2) {
        for (index y = -h; y < e + h; ++y)
          detail::copy_row_segment(d.row(y) - h, src.row(b + y) - h, w);
      } else {
        for (index z = -h; z < e + h; ++z)
          for (index y = -h; y < ny_ + h; ++y)
            detail::copy_row_segment(d.row(y, z) - h, src.row(y, b + z) - h,
                                     w);
      }
    }
  }

  /// Copies every shard's interior back into @p dst (ghosts untouched).
  void gather(G& dst) const {
    check_geometry(dst, "ShardedGrid::gather");
    for (int i = 0; i < layout_.count; ++i) {
      const G& s = shards_[static_cast<std::size_t>(i)];
      const index b = layout_.base[static_cast<std::size_t>(i)];
      const index e = layout_.extent[static_cast<std::size_t>(i)];
      if constexpr (kRank == 1) {
        detail::copy_row_segment(dst.x0() + b, s.x0(), e);
      } else if constexpr (kRank == 2) {
        for (index y = 0; y < e; ++y)
          detail::copy_row_segment(dst.row(b + y), s.row(y), nx_);
      } else {
        for (index z = 0; z < e; ++z)
          for (index y = 0; y < ny_; ++y)
            detail::copy_row_segment(dst.row(y, b + z), s.row(y, z), nx_);
      }
    }
  }

  /// Fills shard @p i's boundary ghosts: the non-split axes via fill_ghosts
  /// (exactly the monolithic fills — every shard spans those axes fully),
  /// then the PHYSICAL split faces of the first/last shard via
  /// fill_ghost_face, after the inner axes so the face strips inherit fresh
  /// corner values. Periodic split faces are left to the ring exchange;
  /// Dirichlet faces stay frozen (scatter installed them). Touches only
  /// shard i — safe to run for all shards concurrently.
  void fill_shard_ghosts(int i, const BoundarySpec& bc, int radius) {
    BoundarySpec inner = bc;
    split_boundary_ref(inner) = Boundary::kDirichlet;
    G& g = shards_[static_cast<std::size_t>(i)];
    fill_ghosts(g, inner, radius);
    const Boundary b = split_boundary(bc);
    if (b == Boundary::kZero || b == Boundary::kNeumann) {
      if (i == 0) fill_ghost_face(g, b, radius, /*high=*/false);
      if (i == layout_.count - 1) fill_ghost_face(g, b, radius, /*high=*/true);
    }
  }

  /// Refreshes shard @p i's split-axis ghost strips from its neighbors'
  /// interior edges: radius extended rows/planes per internal face, plus
  /// the ring wrap when the split axis is periodic. Reads only neighbor
  /// interiors and writes only shard i's own ghosts, so all shards may
  /// exchange concurrently between two fill waves.
  void exchange_shard_ghosts(int i, const BoundarySpec& bc, int radius) {
    const int n = layout_.count;
    const bool wrap = split_boundary(bc) == Boundary::kPeriodic;
    if (i > 0)
      copy_split_face(i, i - 1, /*high=*/false, radius);
    else if (wrap)
      copy_split_face(i, n - 1, /*high=*/false, radius);
    if (i < n - 1)
      copy_split_face(i, i + 1, /*high=*/true, radius);
    else if (wrap)
      copy_split_face(i, 0, /*high=*/true, radius);
  }

 private:
  index outer_extent() const {
    return kRank == 1 ? nx_ : kRank == 2 ? ny_ : nz_;
  }

  Boundary split_boundary(const BoundarySpec& bc) const {
    return kRank == 1 ? bc.x : kRank == 2 ? bc.y : bc.z;
  }
  Boundary& split_boundary_ref(BoundarySpec& bc) const {
    return kRank == 1 ? bc.x : kRank == 2 ? bc.y : bc.z;
  }

  void check_geometry(const G& g, const char* who) const {
    bool ok = g.nx() == nx_ && g.halo() == halo_;
    if constexpr (kRank >= 2) ok = ok && g.ny() == ny_;
    if constexpr (kRank >= 3) ok = ok && g.nz() == nz_;
    require(ok, std::string(who) + ": grid does not match the sharded geometry");
  }

  /// Copies the low (high=false) or high ghost strip of shard @p dst_i from
  /// the facing interior edge of shard @p src_i. The strips are EXTENDED
  /// rows/planes (width nx + 2*radius), so the neighbor's inner-axis ghost
  /// fill rides along — identical corner bits to the monolithic fill order.
  void copy_split_face(int dst_i, int src_i, bool high, int radius) {
    G& d = shards_[static_cast<std::size_t>(dst_i)];
    const G& s = shards_[static_cast<std::size_t>(src_i)];
    const int r = radius;
    const index de = layout_.extent[static_cast<std::size_t>(dst_i)];
    const index se = layout_.extent[static_cast<std::size_t>(src_i)];
    if constexpr (kRank == 1) {
      for (int k = 1; k <= r; ++k) {
        if (high)
          d.at(de - 1 + k) = s.at(k - 1);
        else
          d.at(-k) = s.at(se - k);
      }
    } else if constexpr (kRank == 2) {
      const index w = nx_ + 2 * r;
      for (int k = 1; k <= r; ++k) {
        const index dy = high ? de - 1 + k : -k;
        const index sy = high ? k - 1 : se - k;
        detail::copy_row_segment(d.row(dy) - r, s.row(sy) - r, w);
      }
    } else {
      const index w = nx_ + 2 * r;
      for (int k = 1; k <= r; ++k) {
        const index dz = high ? de - 1 + k : -k;
        const index sz = high ? k - 1 : se - k;
        for (index y = -r; y < ny_ + r; ++y)
          detail::copy_row_segment(d.row(y, dz) - r, s.row(y, sz) - r, w);
      }
    }
  }

  index nx_, ny_, nz_, halo_;
  ShardLayout layout_;
  std::vector<G> shards_;
};

}  // namespace tsv
