#pragma once
// Public entry point: dispatches (method × tiling × ISA) to the kernels.
//
//   tsv::Grid1D<double> g(nx, /*halo=*/1);
//   g.fill(...);
//   tsv::run(g, tsv::make_1d3p(), {.method = tsv::Method::kTransposeUJ,
//                                  .tiling = tsv::Tiling::kTessellate,
//                                  .isa = tsv::best_isa(), .steps = 1000,
//                                  .bx = 2048, .bt = 128});
//
// Untiled runs are single-threaded by design (the paper's block-free
// experiments are sequential; multicore execution always goes through a
// tiling framework). Tiled runs use OpenMP with `options.threads` threads.

#include <omp.h>

#include "tsv/core/options.hpp"
#include "tsv/kernels/reference.hpp"
#include "tsv/tiling/tiled.hpp"

namespace tsv {

namespace detail {

inline void validate_common(const Options& o) {
  require(o.steps >= 0, "run: steps must be >= 0");
  require_fmt(isa_supported(o.isa), "run: ISA ", isa_name(o.isa),
              " not supported on this machine");
  if (o.tiling != Tiling::kNone) {
    require(o.bx > 0 || o.tiling == Tiling::kSplit,
            "run: tiled execution needs block sizes (bx, ...)");
    require(o.bt > 0, "run: tiled execution needs a temporal block (bt)");
  }
  if (o.tiling == Tiling::kSplit)
    require(o.method == Method::kDlt,
            "run: split tiling is defined over the DLT layout (method kDlt)");
  if (o.tiling == Tiling::kTessellate)
    require(o.method != Method::kDlt && o.method != Method::kScalar,
            "run: tessellate tiling supports autovec/multiload/reorg/"
            "transpose/transposeUJ methods");
}

inline void apply_threads(const Options& o) {
  if (o.threads > 0) omp_set_num_threads(o.threads);
}

// Per-width 1D dispatch.
template <typename V, int R>
void run_1d_w(Grid1D<double>& g, const Stencil1D<R>& s, const Options& o) {
  switch (o.tiling) {
    case Tiling::kNone:
      switch (o.method) {
        case Method::kScalar: reference_run(g, s, o.steps); return;
        case Method::kAutoVec: autovec_run(g, s, o.steps); return;
        case Method::kMultiLoad: multiload_run<V>(g, s, o.steps); return;
        case Method::kReorg: reorg_run<V>(g, s, o.steps); return;
        case Method::kDlt: dlt_run<V>(g, s, o.steps); return;
        case Method::kTranspose: transpose_vs_run<V>(g, s, o.steps); return;
        case Method::kTransposeUJ:
          unroll_jam_run<V, R, 2>(g, s, o.steps);
          return;
      }
      break;
    case Tiling::kTessellate:
      apply_threads(o);
      switch (o.method) {
        case Method::kAutoVec:
          tess_autovec_run(g, s, o.steps, o.bx, o.bt);
          return;
        case Method::kMultiLoad:
          tess_multiload_run<V>(g, s, o.steps, o.bx, o.bt);
          return;
        case Method::kReorg:
          tess_reorg_run<V>(g, s, o.steps, o.bx, o.bt);
          return;
        case Method::kTranspose:
          tess_transpose_run<V>(g, s, o.steps, o.bx, o.bt);
          return;
        case Method::kTransposeUJ:
          tess_transpose_uj2_run<V>(g, s, o.steps, o.bx, o.bt);
          return;
        default: break;
      }
      break;
    case Tiling::kSplit:
      apply_threads(o);
      // bx is interpreted in elements; split tiling blocks DLT columns.
      sdsl_run<V>(g, s, o.steps, std::max<index>(1, o.bx / V::width), o.bt);
      return;
  }
  throw std::invalid_argument("run: unsupported method/tiling combination");
}

template <typename V, int R, int NR>
void run_2d_w(Grid2D<double>& g, const Stencil2D<R, NR>& s, const Options& o) {
  switch (o.tiling) {
    case Tiling::kNone:
      switch (o.method) {
        case Method::kScalar: reference_run(g, s, o.steps); return;
        case Method::kAutoVec: autovec_run(g, s, o.steps); return;
        case Method::kMultiLoad: multiload_run<V>(g, s, o.steps); return;
        case Method::kReorg: reorg_run<V>(g, s, o.steps); return;
        case Method::kDlt: dlt_run<V>(g, s, o.steps); return;
        case Method::kTranspose: transpose_vs_run<V>(g, s, o.steps); return;
        case Method::kTransposeUJ: unroll_jam2_run<V>(g, s, o.steps); return;
      }
      break;
    case Tiling::kTessellate:
      apply_threads(o);
      switch (o.method) {
        case Method::kAutoVec:
          tess_autovec_run(g, s, o.steps, o.bx, o.by, o.bt);
          return;
        case Method::kTranspose:
          tess_transpose_run<V>(g, s, o.steps, o.bx, o.by, o.bt);
          return;
        case Method::kTransposeUJ:
          tess_transpose_uj2_run<V>(g, s, o.steps, o.bx, o.by, o.bt);
          return;
        default: break;
      }
      break;
    case Tiling::kSplit:
      apply_threads(o);
      sdsl_run<V>(g, s, o.steps, o.by > 0 ? o.by : o.bx, o.bt);
      return;
  }
  throw std::invalid_argument("run: unsupported method/tiling combination");
}

template <typename V, int R, int NR>
void run_3d_w(Grid3D<double>& g, const Stencil3D<R, NR>& s, const Options& o) {
  switch (o.tiling) {
    case Tiling::kNone:
      switch (o.method) {
        case Method::kScalar: reference_run(g, s, o.steps); return;
        case Method::kAutoVec: autovec_run(g, s, o.steps); return;
        case Method::kMultiLoad: multiload_run<V>(g, s, o.steps); return;
        case Method::kReorg: reorg_run<V>(g, s, o.steps); return;
        case Method::kDlt: dlt_run<V>(g, s, o.steps); return;
        case Method::kTranspose: transpose_vs_run<V>(g, s, o.steps); return;
        case Method::kTransposeUJ: unroll_jam2_run<V>(g, s, o.steps); return;
      }
      break;
    case Tiling::kTessellate:
      apply_threads(o);
      switch (o.method) {
        case Method::kAutoVec:
          tess_autovec_run(g, s, o.steps, o.bx, o.by, o.bz, o.bt);
          return;
        case Method::kTranspose:
          tess_transpose_run<V>(g, s, o.steps, o.bx, o.by, o.bz, o.bt);
          return;
        case Method::kTransposeUJ:
          tess_transpose_uj2_run<V>(g, s, o.steps, o.bx, o.by, o.bz, o.bt);
          return;
        default: break;
      }
      break;
    case Tiling::kSplit:
      apply_threads(o);
      sdsl_run<V>(g, s, o.steps, o.bz > 0 ? o.bz : o.bx, o.bt);
      return;
  }
  throw std::invalid_argument("run: unsupported method/tiling combination");
}

}  // namespace detail

/// Advances @p g by `o.steps` Jacobi steps of stencil @p s using the selected
/// method / tiling / ISA. The result (and the untouched Dirichlet halo) ends
/// in @p g. Throws std::invalid_argument on invalid configurations, including
/// layout-divisibility violations.
template <int R>
void run(Grid1D<double>& g, const Stencil1D<R>& s, const Options& o) {
  detail::validate_common(o);
  switch (o.isa) {
#if defined(__AVX2__)
    case Isa::kAvx2: detail::run_1d_w<Vec<double, 4>>(g, s, o); return;
#endif
#if defined(__AVX512F__)
    case Isa::kAvx512: detail::run_1d_w<Vec<double, 8>>(g, s, o); return;
#endif
    default: detail::run_1d_w<Vec<double, 2>>(g, s, o); return;
  }
}

template <int R, int NR>
void run(Grid2D<double>& g, const Stencil2D<R, NR>& s, const Options& o) {
  detail::validate_common(o);
  switch (o.isa) {
#if defined(__AVX2__)
    case Isa::kAvx2: detail::run_2d_w<Vec<double, 4>>(g, s, o); return;
#endif
#if defined(__AVX512F__)
    case Isa::kAvx512: detail::run_2d_w<Vec<double, 8>>(g, s, o); return;
#endif
    default: detail::run_2d_w<Vec<double, 2>>(g, s, o); return;
  }
}

template <int R, int NR>
void run(Grid3D<double>& g, const Stencil3D<R, NR>& s, const Options& o) {
  detail::validate_common(o);
  switch (o.isa) {
#if defined(__AVX2__)
    case Isa::kAvx2: detail::run_3d_w<Vec<double, 4>>(g, s, o); return;
#endif
#if defined(__AVX512F__)
    case Isa::kAvx512: detail::run_3d_w<Vec<double, 8>>(g, s, o); return;
#endif
    default: detail::run_3d_w<Vec<double, 2>>(g, s, o); return;
  }
}

}  // namespace tsv
