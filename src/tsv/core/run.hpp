#pragma once
// Source-compatible one-shot entry point: plan + execute in one call.
//
//   tsv::Grid1D<double> g(nx, /*halo=*/1);
//   g.fill(...);
//   tsv::run(g, tsv::make_1d3p(), {.method = tsv::Method::kTransposeUJ,
//                                  .tiling = tsv::Tiling::kTessellate,
//                                  .steps = 1000, .bx = 2048, .bt = 128});
//
// run() is a thin wrapper over the plan engine (core/plan.hpp): it builds a
// Plan for the grid's shape — validating once against the capability
// registry and resolving ISA/threads/blocks — and executes it. Services
// that execute the same configuration repeatedly should call make_plan()
// once and reuse the Plan instead.
//
// Untiled runs are single-threaded by design (the paper's block-free
// experiments are sequential; multicore execution always goes through a
// tiling framework). Tiled runs use OpenMP with `options.threads` threads.

#include "tsv/core/plan.hpp"

namespace tsv {

/// Advances @p g by `o.steps` Jacobi steps of stencil @p s using the selected
/// method / tiling / ISA / boundary conditions. The result ends in @p g
/// (under the default all-Dirichlet boundary the halo is left untouched;
/// see core/halo.hpp for the other conditions). Throws tsv::ConfigError (a
/// std::invalid_argument) on invalid configurations, including
/// layout-divisibility violations. The element type follows the
/// grid/stencil pair (double by default, float for Grid1D<float> +
/// make_1d3p<float>() and friends).
template <int R, typename T>
void run(Grid1D<T>& g, const Stencil1D<R, T>& s, const Options& o) {
  make_plan(shape_of(g), s, o).execute(g);
}

template <int R, int NR, typename T>
void run(Grid2D<T>& g, const Stencil2D<R, NR, T>& s, const Options& o) {
  make_plan(shape_of(g), s, o).execute(g);
}

template <int R, int NR, typename T>
void run(Grid3D<T>& g, const Stencil3D<R, NR, T>& s, const Options& o) {
  make_plan(shape_of(g), s, o).execute(g);
}

}  // namespace tsv
