#pragma once
// Named problem presets (paper Table 1).

#include <string>
#include <vector>

#include "tsv/common/aligned.hpp"

namespace tsv {

enum class StencilKind { k1d3p, k1d5p, k2d5p, k2d9p, k3d7p, k3d27p };

struct Problem {
  std::string name;
  StencilKind kind{};
  index nx = 0, ny = 1, nz = 1;  ///< interior extents (ny/nz == 1 for lower rank)
  index steps = 0;               ///< total time steps T
  index bx = 0, by = 0, bz = 0;  ///< spatial blocking sizes (Table 1)
  index bt = 0;                  ///< temporal block (time range per tile stage)
};

/// The six stencil problems of Table 1. @p paper_scale selects the published
/// sizes; the default is a scaled configuration with identical structure.
std::vector<Problem> table1_problems(bool paper_scale = false);

}  // namespace tsv
