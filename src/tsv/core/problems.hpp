#pragma once
// Named problem presets (paper Table 1).

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tsv/common/aligned.hpp"

namespace tsv {

enum class StencilKind { k1d3p, k1d5p, k2d5p, k2d9p, k3d7p, k3d27p };

/// Stable names ("1d3p", ...) and the name -> enum inverse (CLI parsing).
const char* stencil_kind_name(StencilKind k);
std::optional<StencilKind> stencil_kind_from_name(std::string_view name);

/// Structural facts about a kind: grid rank, stencil radius, and how many
/// coefficients its factory takes (kernels/stencil.hpp, in parameter order).
int stencil_kind_rank(StencilKind k);
int stencil_kind_radius(StencilKind k);
std::size_t stencil_kind_coeff_count(StencilKind k);

/// A runtime stencil description for the rank-erased plan path: one of the
/// compiled Table-1 shapes, carrying user coefficients instead of the
/// hard-coded factory defaults. The shapes (radius, tap structure) are
/// compile-time — that is what the vector kernels specialize on — but the
/// weights are plain runtime data, so services can plan application
/// stencils (heat conductivity, smoothing weights, upwind CFL factors)
/// without recompiling.
///
///   tsv::StencilSpec spec{.kind = tsv::StencilKind::k2d5p,
///                         .coeffs = {0.4, 0.15, 0.15}};  // wc, wx, wy
///   tsv::Plan plan = tsv::make_plan(shape, spec, opts);
///
/// `coeffs` must be empty (factory defaults) or exactly
/// stencil_kind_coeff_count(kind) values in the factory's parameter order.
/// `radius` is a cross-check: 0 means "the kind's own radius"; any other
/// value must match stencil_kind_radius(kind) or make_plan throws
/// ConfigError.
struct GenericStencil;  // core/generic_stencil.hpp

struct StencilSpec {
  StencilKind kind = StencilKind::k2d5p;
  int radius = 0;               ///< 0 = kind's radius; else must match it
  std::vector<double> coeffs;   ///< empty = Table-1 defaults
  /// When set, the spec describes a runtime-programmable stencil
  /// (core/generic_stencil.hpp) and the fields above are ignored: rank and
  /// radius come from the GenericStencil, and the plan must be built with
  /// Options::method = Method::kGeneric (the interpreter is the only kernel
  /// that can run an arbitrary tap set). shared_ptr because specs are
  /// copied into plan-cache keys and executor requests; the shape itself is
  /// immutable once planned.
  std::shared_ptr<const GenericStencil> generic;
};

struct Problem {
  std::string name;
  StencilKind kind{};
  index nx = 0, ny = 1, nz = 1;  ///< interior extents (ny/nz == 1 for lower rank)
  index steps = 0;               ///< total time steps T
  index bx = 0, by = 0, bz = 0;  ///< spatial blocking sizes (Table 1)
  index bt = 0;                  ///< temporal block (time range per tile stage)
};

/// The six stencil problems of Table 1. @p paper_scale selects the published
/// sizes; the default is a scaled configuration with identical structure.
std::vector<Problem> table1_problems(bool paper_scale = false);

}  // namespace tsv
