#pragma once
// Plan-owned execution workspace: reusable, 64-byte-aligned scratch storage
// for everything a kernel driver would otherwise allocate per execute —
// Jacobi/tessellation parity buffers, DLT staging grids, per-thread
// unroll&jam scratch pools.
//
// Why it exists: the hot path of a service that executes the same plan many
// times must not touch the allocator (or fault in fresh pages) after the
// first call. Every driver fetches its buffers from the plan's Workspace
// through typed slots; a slot creates its object on first use — with
// NUMA-aware first touch (see FirstTouch in common/aligned.hpp) — and hands
// the same object back on every subsequent execute with a matching key.
// The workspace test suite asserts the second execute of every tiled driver
// performs zero heap allocations.
//
// Concurrency contract: a Workspace (and therefore Plan::execute on one plan
// object) is NOT safe to enter from two threads at once. Copies of a
// TypedPlan share one workspace; create separate plans for concurrent
// execution streams.

#include <cstdint>
#include <map>
#include <memory>
#include <typeindex>
#include <typeinfo>
#include <utility>

#include "tsv/common/grid.hpp"

namespace tsv {

/// Well-known workspace slot ids. A slot holds one logical buffer (or pool);
/// ids only need to be unique within one driver invocation, but keeping them
/// globally distinct makes workspace dumps readable.
enum WsSlot : int {
  kWsTmpGrid = 0,      ///< Jacobi / tessellation parity buffer
  kWsScratchPool = 1,  ///< per-thread transient-level scratch (uj2 tiling)
  kWsDltA = 2,         ///< DLT staging grid A
  kWsDltB = 3,         ///< DLT staging grid B
  kWsRing = 4,         ///< untiled uj2 intermediate-level ring
};

/// Order-sensitive FNV-1a mix of shape parameters into a slot key. A slot
/// whose key changes (grid reshaped, thread count changed) is recreated.
inline std::uint64_t ws_key() { return 1469598103934665603ull; }
template <typename... Rest>
std::uint64_t ws_key(index head, Rest... rest) {
  std::uint64_t h = ws_key(rest...);
  h ^= static_cast<std::uint64_t>(head);
  h *= 1099511628211ull;
  return h;
}

class Workspace {
 public:
  /// Returns the slot's cached object, constructing it with @p make() on
  /// first use or whenever @p key / the stored type changes. The reference
  /// stays valid until the slot is recreated or the workspace cleared.
  template <typename T, typename Make>
  T& slot(int id, std::uint64_t key, Make&& make) {
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.key != key ||
        it->second.type != std::type_index(typeid(T))) {
      Entry e;
      e.key = key;
      e.type = std::type_index(typeid(T));
      e.obj = std::shared_ptr<void>(new T(make()),
                                    [](void* p) { delete static_cast<T*>(p); });
      it = entries_.insert_or_assign(id, std::move(e)).first;
    }
    return *static_cast<T*>(it->second.obj.get());
  }

  /// Drops every cached buffer (storage is released immediately).
  void clear() { entries_.clear(); }

  /// Number of live slots.
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::type_index type = std::type_index(typeid(void));
    std::shared_ptr<void> obj;
  };
  std::map<int, Entry> entries_;
};

// ---------------------------------------------------------------------------
// Grid-shaped slots: the common case. The scratch grid matches @p g's shape
// and is zeroed by an OpenMP static team on creation (first touch in the
// same thread order the tiled compute loops use), so on NUMA machines its
// pages land next to the threads that will process them. Interior contents
// are NOT preserved or refreshed — callers re-establish whatever invariant
// they need (typically copy_halo_from) each execute.
// ---------------------------------------------------------------------------

template <typename T>
Grid1D<T>& ws_grid_like(Workspace& ws, int slot, const Grid1D<T>& g) {
  return ws.slot<Grid1D<T>>(slot, ws_key(g.nx(), g.halo()), [&] {
    return Grid1D<T>(g.nx(), g.halo(), FirstTouch::kParallel);
  });
}

template <typename T>
Grid2D<T>& ws_grid_like(Workspace& ws, int slot, const Grid2D<T>& g) {
  return ws.slot<Grid2D<T>>(slot, ws_key(g.nx(), g.ny(), g.halo()), [&] {
    return Grid2D<T>(g.nx(), g.ny(), g.halo(), FirstTouch::kParallel);
  });
}

template <typename T>
Grid3D<T>& ws_grid_like(Workspace& ws, int slot, const Grid3D<T>& g) {
  return ws.slot<Grid3D<T>>(slot, ws_key(g.nx(), g.ny(), g.nz(), g.halo()),
                            [&] {
                              return Grid3D<T>(g.nx(), g.ny(), g.nz(),
                                               g.halo(), FirstTouch::kParallel);
                            });
}

// ---------------------------------------------------------------------------
// Memory-bandwidth policy (defined in workspace.cpp).
// ---------------------------------------------------------------------------

/// Bytes a Jacobi-style run of this interior moves through the cache
/// hierarchy per sweep: two parity buffers of rank-appropriate extent.
index working_set_bytes(int rank, index nx, index ny, index nz,
                        index elem_size);

/// Topology-derived streaming-store threshold in bytes. Working sets larger
/// than this exceed the last-level cache by enough that regular (write-
/// allocate) stores only add read-for-ownership traffic; non-temporal
/// stores cut the store stream's bandwidth cost by ~1/3. @p factor scales
/// the detected LLC capacity; <= 0 selects the default multiple.
index streaming_threshold_bytes(double factor = 0.0);

}  // namespace tsv
