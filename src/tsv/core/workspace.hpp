#pragma once
// Plan-owned execution workspace: reusable, 64-byte-aligned scratch storage
// for everything a kernel driver would otherwise allocate per execute —
// Jacobi/tessellation parity buffers, DLT staging grids, per-thread
// unroll&jam scratch pools.
//
// Why it exists: the hot path of a service that executes the same plan many
// times must not touch the allocator (or fault in fresh pages) after the
// first call. Every driver fetches its buffers from the plan's Workspace
// through typed slots; a slot creates its object on first use — with
// NUMA-aware first touch (see FirstTouch in common/aligned.hpp) — and hands
// the same object back on every subsequent execute with a matching key.
// The workspace test suite asserts the second execute of every tiled driver
// performs zero heap allocations.
//
// Concurrency contract: a Workspace (and therefore Plan::execute on one plan
// object) is NOT safe to enter from two threads at once. Copies of a
// TypedPlan share one workspace; create separate plans for concurrent
// execution streams.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <typeindex>
#include <typeinfo>
#include <utility>
#include <vector>

#include "tsv/common/grid.hpp"

namespace tsv {

/// Well-known workspace slot ids. A slot holds one logical buffer (or pool);
/// ids only need to be unique within one driver invocation, but keeping them
/// globally distinct makes workspace dumps readable.
enum WsSlot : int {
  kWsTmpGrid = 0,      ///< Jacobi / tessellation parity buffer
  kWsScratchPool = 1,  ///< per-thread transient-level scratch (uj2 tiling)
  kWsDltA = 2,         ///< DLT staging grid A
  kWsDltB = 3,         ///< DLT staging grid B
  kWsRing = 4,         ///< untiled uj2 intermediate-level ring
};

/// Order-sensitive FNV-1a mix of shape parameters into a slot key. A slot
/// whose key changes (grid reshaped, thread count changed) is recreated.
inline std::uint64_t ws_key() { return 1469598103934665603ull; }
template <typename... Rest>
std::uint64_t ws_key(index head, Rest... rest) {
  std::uint64_t h = ws_key(rest...);
  h ^= static_cast<std::uint64_t>(head);
  h *= 1099511628211ull;
  return h;
}

class Workspace {
 public:
  /// Returns the slot's cached object, constructing it with @p make() on
  /// first use or whenever @p key / the stored type changes. The reference
  /// stays valid until the slot is recreated or the workspace cleared.
  template <typename T, typename Make>
  T& slot(int id, std::uint64_t key, Make&& make) {
    auto it = entries_.find(id);
    if (it == entries_.end() || it->second.key != key ||
        it->second.type != std::type_index(typeid(T))) {
      Entry e;
      e.key = key;
      e.type = std::type_index(typeid(T));
      e.obj = std::shared_ptr<void>(new T(make()),
                                    [](void* p) { delete static_cast<T*>(p); });
      it = entries_.insert_or_assign(id, std::move(e)).first;
    }
    return *static_cast<T*>(it->second.obj.get());
  }

  /// Drops every cached buffer (storage is released immediately).
  void clear() { entries_.clear(); }

  /// Number of live slots.
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::type_index type = std::type_index(typeid(void));
    std::shared_ptr<void> obj;
  };
  std::map<int, Entry> entries_;
};

// ---------------------------------------------------------------------------
// Workspace reuse pool: the multi-tenant counterpart of the plan-owned
// workspace. One pool serves one plan (the batched executor's PlanCache
// keeps a pool per cached plan, so a recycled workspace's slots always
// match the next request's keys and steady-state checkouts stay
// allocation-free). Checkout moves a workspace OUT of the free list under
// the pool mutex, so two in-flight requests can never observe the same
// instance — the exclusivity the Workspace concurrency contract requires.
// ---------------------------------------------------------------------------

class WorkspacePool {
 public:
  /// RAII checkout: holds exclusive ownership of one Workspace and returns
  /// it to the pool on destruction. Movable, not copyable. The pool must
  /// outlive the lease (the executor guarantees this by keeping the cached
  /// plan entry alive for the duration of every request it spawned).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        ws_ = std::move(other.ws_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    Workspace& operator*() const { return *ws_; }
    Workspace* operator->() const { return ws_.get(); }
    Workspace* get() const { return ws_.get(); }
    explicit operator bool() const { return ws_ != nullptr; }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, std::unique_ptr<Workspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    void release();

    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<Workspace> ws_;
  };

  /// Checkout totals since construction. `in_flight` is the number of live
  /// leases; `created` only grows when a checkout finds the free list empty
  /// (i.e. it equals the peak concurrency this pool ever served).
  struct Stats {
    std::uint64_t created = 0;  ///< workspaces constructed on empty-pool hits
    std::uint64_t reused = 0;   ///< checkouts served from the free list
    std::size_t free = 0;       ///< workspaces currently parked in the pool
    std::size_t in_flight = 0;  ///< live leases
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Exclusive checkout: reuses a parked workspace when one is free,
  /// constructs a fresh one otherwise (never blocks waiting for a return).
  Lease checkout();

  Stats stats() const;

 private:
  void checkin(std::unique_ptr<Workspace> ws);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Workspace>> free_;
  std::uint64_t created_ = 0;
  std::uint64_t reused_ = 0;
  std::size_t in_flight_ = 0;
};

// ---------------------------------------------------------------------------
// Grid-shaped slots: the common case. The scratch grid matches @p g's shape
// and is zeroed by an OpenMP static team on creation (first touch in the
// same thread order the tiled compute loops use), so on NUMA machines its
// pages land next to the threads that will process them. Interior contents
// are NOT preserved or refreshed — callers re-establish whatever invariant
// they need (typically copy_halo_from) each execute.
// ---------------------------------------------------------------------------

template <typename T>
Grid1D<T>& ws_grid_like(Workspace& ws, int slot, const Grid1D<T>& g) {
  return ws.slot<Grid1D<T>>(slot, ws_key(g.nx(), g.halo()), [&] {
    return Grid1D<T>(g.nx(), g.halo(), FirstTouch::kParallel);
  });
}

template <typename T>
Grid2D<T>& ws_grid_like(Workspace& ws, int slot, const Grid2D<T>& g) {
  return ws.slot<Grid2D<T>>(slot, ws_key(g.nx(), g.ny(), g.halo()), [&] {
    return Grid2D<T>(g.nx(), g.ny(), g.halo(), FirstTouch::kParallel);
  });
}

template <typename T>
Grid3D<T>& ws_grid_like(Workspace& ws, int slot, const Grid3D<T>& g) {
  return ws.slot<Grid3D<T>>(slot, ws_key(g.nx(), g.ny(), g.nz(), g.halo()),
                            [&] {
                              return Grid3D<T>(g.nx(), g.ny(), g.nz(),
                                               g.halo(), FirstTouch::kParallel);
                            });
}

// ---------------------------------------------------------------------------
// Memory-bandwidth policy (defined in workspace.cpp).
// ---------------------------------------------------------------------------

/// Bytes a Jacobi-style run of this interior moves through the cache
/// hierarchy per sweep: two parity buffers of rank-appropriate extent.
index working_set_bytes(int rank, index nx, index ny, index nz,
                        index elem_size);

/// Topology-derived streaming-store threshold in bytes. Working sets larger
/// than this exceed the last-level cache by enough that regular (write-
/// allocate) stores only add read-for-ownership traffic; non-temporal
/// stores cut the store stream's bandwidth cost by ~1/3. @p factor scales
/// the detected LLC capacity; <= 0 selects the default multiple.
index streaming_threshold_bytes(double factor = 0.0);

}  // namespace tsv
