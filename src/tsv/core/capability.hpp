#pragma once
// Capability descriptors and the structured configuration error.
//
// A Capability row describes one (vectorization method x tiling framework)
// combination the library implements: which grid ranks it covers, which
// divisibility rule its data layout imposes on the unit-stride extent, and
// any blocking constraints. The rows live in one table (core/registry.cpp);
// plan creation (core/plan.hpp) validates against that table, so adding a
// method or tiling means adding a registry row plus one dispatch-table
// entry — never another per-rank switch.

#include <stdexcept>
#include <string>

#include "tsv/common/cpu.hpp"
#include "tsv/core/fault.hpp"
#include "tsv/core/options.hpp"

namespace tsv {

/// Divisibility rule a method's data layout imposes on nx (the unit-stride
/// interior extent), in terms of the kernel vector width W.
enum class XRule {
  kNone,     ///< any nx
  kWidth,    ///< nx % W == 0 (DLT dimension-lifting)
  kWidth2,   ///< nx % W^2 == 0 (register-block transpose layout)
};

/// Dtype-mask bits for Capability rows.
inline constexpr unsigned kDtypeF64 = 1u << 0;
inline constexpr unsigned kDtypeF32 = 1u << 1;
inline constexpr unsigned kAllDtypes = kDtypeF64 | kDtypeF32;

/// Boundary-mask bits for Capability rows (one per Boundary enumerator).
inline constexpr unsigned boundary_bit(Boundary b) {
  return 1u << static_cast<unsigned>(b);
}
inline constexpr unsigned kAllBoundaries =
    boundary_bit(Boundary::kDirichlet) | boundary_bit(Boundary::kZero) |
    boundary_bit(Boundary::kPeriodic) | boundary_bit(Boundary::kNeumann);

/// One supported (method, tiling) combination.
struct Capability {
  Method method;
  Tiling tiling;
  unsigned rank_mask;   ///< bit (r-1) set when grid rank r is supported
  unsigned dtype_mask;  ///< kDtypeF64/kDtypeF32 bits for the element types
  /// boundary_bit() bits for the boundary conditions this row handles.
  /// Every current row claims kAllBoundaries — the ghost fill happens at
  /// the plan layer, outside the kernels — but the mask keeps the axis
  /// explicit so a future row can opt out and supports() stays honest.
  unsigned boundary_mask;
  XRule x_rule;         ///< layout divisibility constraint on nx
  bool needs_even_bt;   ///< temporal block must be even (2-step unroll&jam)
  /// True when this combination's write-back path has a non-temporal
  /// (streaming-store) variant; ResolvedOptions::streaming can only resolve
  /// true for rows that set this, so the flag reports what executes.
  bool streams;
  const char* note;     ///< one-line description for docs/CLI listings

  bool supports_rank(int rank) const {
    return rank >= 1 && rank <= 3 && (rank_mask & (1u << (rank - 1))) != 0;
  }

  bool supports_dtype(Dtype d) const {
    return (dtype_mask & (d == Dtype::kF32 ? kDtypeF32 : kDtypeF64)) != 0;
  }

  bool supports_boundary(Boundary b) const {
    return (boundary_mask & boundary_bit(b)) != 0;
  }
};

/// Structured configuration error thrown at plan creation (and for shape
/// mismatches at execute). Derives from std::invalid_argument so call sites
/// written against the seed's stringly-typed throws keep working, and from
/// TsvError (core/fault.hpp) so it slots into the error taxonomy — a config
/// error is never transient, so the scheduler will not retry it.
class ConfigError : public std::invalid_argument, public TsvError {
 public:
  ConfigError(Method method, Tiling tiling, int rank, std::string reason)
      : std::invalid_argument(format(method, tiling, rank, reason)),
        method_(method),
        tiling_(tiling),
        rank_(rank),
        reason_(std::move(reason)) {}

  Method method() const { return method_; }
  Tiling tiling() const { return tiling_; }
  int rank() const { return rank_; }
  const std::string& reason() const { return reason_; }

 private:
  static std::string format(Method m, Tiling t, int rank,
                            const std::string& reason) {
    std::string s = "tsv: invalid configuration (method=";
    s += method_name(m);
    s += ", tiling=";
    s += tiling_name(t);
    s += ", rank=";
    s += std::to_string(rank);
    s += "): ";
    s += reason;
    return s;
  }

  Method method_;
  Tiling tiling_;
  int rank_;
  std::string reason_;
};

}  // namespace tsv
