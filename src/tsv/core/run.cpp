#include "tsv/core/run.hpp"

namespace tsv {

const char* method_name(Method m) {
  switch (m) {
    case Method::kScalar: return "scalar";
    case Method::kAutoVec: return "autovec";
    case Method::kMultiLoad: return "multiload";
    case Method::kReorg: return "reorg";
    case Method::kDlt: return "dlt";
    case Method::kTranspose: return "transpose";
    case Method::kTransposeUJ: return "transpose-uj2";
  }
  return "?";
}

const char* tiling_name(Tiling t) {
  switch (t) {
    case Tiling::kNone: return "none";
    case Tiling::kTessellate: return "tessellate";
    case Tiling::kSplit: return "split";
  }
  return "?";
}

}  // namespace tsv
