#include "tsv/core/health.hpp"

#include <stdexcept>
#include <string>

namespace tsv {

const char* health_check_name(HealthCheck h) {
  switch (h) {
    case HealthCheck::kOff:
      return "off";
    case HealthCheck::kBoundary:
      return "boundary";
    case HealthCheck::kFull:
      return "full";
  }
  return "?";
}

HealthCheck health_check_from_name(const std::string& name) {
  if (name == "off") return HealthCheck::kOff;
  if (name == "boundary") return HealthCheck::kBoundary;
  if (name == "full") return HealthCheck::kFull;
  throw std::invalid_argument("unknown health_check '" + name +
                              "' (off|boundary|full)");
}

namespace detail {

void throw_numerical_error(index linear_index) {
  throw NumericalError(
      "health check: non-finite value at interior index " +
          std::to_string(linear_index),
      linear_index);
}

}  // namespace detail

}  // namespace tsv
