#include "tsv/core/tunedb.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "tsv/common/cpu.hpp"

namespace tsv {

const char* tune_db_status_name(TuneDbStatus s) {
  switch (s) {
    case TuneDbStatus::kLoaded: return "loaded";
    case TuneDbStatus::kMissing: return "missing";
    case TuneDbStatus::kCorrupt: return "corrupt";
    case TuneDbStatus::kSchemaMismatch: return "schema-mismatch";
    case TuneDbStatus::kFingerprintMismatch: return "fingerprint-mismatch";
  }
  return "?";
}

TuneDbFingerprint TuneDbFingerprint::current() {
  TuneDbFingerprint fp;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (!isa_compiled(isa) || !isa_supported(isa)) continue;
    if (!fp.isas.empty()) fp.isas += "+";
    fp.isas += isa_name(isa);
  }
  const CpuInfo& cpu = cpu_info();
  fp.cores = cpu.logical_cores;
  fp.l1_bytes = cpu.l1_bytes;
  fp.l2_bytes = cpu.l2_bytes;
  fp.l3_bytes = cpu.l3_bytes;
  fp.f32_bytes = dtype_size(Dtype::kF32);
  fp.f64_bytes = dtype_size(Dtype::kF64);
  return fp;
}

namespace {

// ---------------------------------------------------------------------------
// Envelope scanning. Same philosophy as the tuner's entry parser: accept
// exactly what we emit (plus whitespace), reject everything else loudly —
// except that here "loudly" means a status, never an escaped exception.
// ---------------------------------------------------------------------------

class Scanner {
 public:
  explicit Scanner(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }

  bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool at_end() {
    skip_ws();
    return i_ >= s_.size();
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') out += s_[i_++];
    expect('"');
    return out;
  }

  long long number_value() {
    skip_ws();
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    const std::size_t digits = i_;
    while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
      ++i_;
    if (i_ == digits) fail("expected a number");
    try {
      return std::stoll(s_.substr(start, i_ - start));
    } catch (const std::out_of_range&) {
      fail("number out of range");
    }
  }

  void expect_key(const char* name) {
    if (string_value() != name)
      fail(std::string("expected key \"") + name + "\"");
    expect(':');
  }

  /// Consumes a complete [...] array and returns its text. The payload is
  /// the tuner's flat entry array — its strings are enum names and never
  /// contain brackets, so bracket depth alone finds the end; anything that
  /// defeats this heuristic fails the entry parser right after and lands in
  /// kCorrupt like every other malformation.
  std::string array_text() {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != '[') fail("expected '['");
    const std::size_t start = i_;
    int depth = 0;
    while (i_ < s_.size()) {
      if (s_[i_] == '[') ++depth;
      if (s_[i_] == ']' && --depth == 0) {
        ++i_;
        return s_.substr(start, i_ - start);
      }
      ++i_;
    }
    fail("unterminated array");
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("tune db: " + what + " at offset " +
                                std::to_string(i_));
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

struct Envelope {
  long long schema = -1;
  TuneDbFingerprint fp;
  std::vector<std::pair<TuneKey, TunedBlocks>> entries;
};

std::string fingerprint_json(const TuneDbFingerprint& fp) {
  std::ostringstream os;
  os << "{\"isas\":\"" << fp.isas << "\",\"cores\":" << fp.cores
     << ",\"l1\":" << fp.l1_bytes << ",\"l2\":" << fp.l2_bytes
     << ",\"l3\":" << fp.l3_bytes << ",\"f32\":" << fp.f32_bytes
     << ",\"f64\":" << fp.f64_bytes << "}";
  return os.str();
}

std::string envelope_json(
    const TuneDbFingerprint& fp,
    const std::vector<std::pair<TuneKey, TunedBlocks>>& entries) {
  std::string payload = tune_entries_to_json(entries);
  while (!payload.empty() &&
         std::isspace(static_cast<unsigned char>(payload.back())))
    payload.pop_back();
  std::ostringstream os;
  os << "{\n \"schema\": " << kTuneDbSchemaVersion << ",\n \"fingerprint\": "
     << fingerprint_json(fp) << ",\n \"entries\": " << payload << "\n}\n";
  return os.str();
}

/// Parses the envelope. Throws std::invalid_argument on malformed content.
/// An unknown schema version returns early with only `schema` set — the
/// rest of a future format is by definition unreadable here, and the caller
/// must preserve the file, not call it corrupt.
Envelope parse_envelope(const std::string& text) {
  Envelope env;
  Scanner sc(text);
  sc.expect('{');
  sc.expect_key("schema");
  env.schema = sc.number_value();
  if (env.schema != kTuneDbSchemaVersion) return env;
  sc.expect(',');
  sc.expect_key("fingerprint");
  sc.expect('{');
  sc.expect_key("isas");
  env.fp.isas = sc.string_value();
  sc.expect(',');
  sc.expect_key("cores");
  env.fp.cores = static_cast<index>(sc.number_value());
  sc.expect(',');
  sc.expect_key("l1");
  env.fp.l1_bytes = static_cast<index>(sc.number_value());
  sc.expect(',');
  sc.expect_key("l2");
  env.fp.l2_bytes = static_cast<index>(sc.number_value());
  sc.expect(',');
  sc.expect_key("l3");
  env.fp.l3_bytes = static_cast<index>(sc.number_value());
  sc.expect(',');
  sc.expect_key("f32");
  env.fp.f32_bytes = static_cast<index>(sc.number_value());
  sc.expect(',');
  sc.expect_key("f64");
  env.fp.f64_bytes = static_cast<index>(sc.number_value());
  sc.expect('}');
  sc.expect(',');
  sc.expect_key("entries");
  env.entries = tune_entries_from_json(sc.array_text());
  sc.expect('}');
  if (!sc.at_end()) sc.fail("trailing content");
  return env;
}

/// Reads the whole file; nullopt when it cannot be opened.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

TuneDbLoadResult tune_db_load(const std::string& path) {
  TuneDbLoadResult r;
  const std::optional<std::string> text = slurp(path);
  if (!text) {
    r.status = TuneDbStatus::kMissing;
    r.detail = "no tune db at " + path;
    return r;
  }
  Envelope env;
  try {
    env = parse_envelope(*text);
  } catch (const std::invalid_argument& e) {
    r.status = TuneDbStatus::kCorrupt;
    r.detail = e.what();
    detail::tune_note_db_reject();
    std::fprintf(stderr, "tsv: tune db %s ignored (%s)\n", path.c_str(),
                 e.what());
    return r;
  }
  if (env.schema != kTuneDbSchemaVersion) {
    r.status = TuneDbStatus::kSchemaMismatch;
    r.detail = "schema version " + std::to_string(env.schema) +
               " (this build reads " + std::to_string(kTuneDbSchemaVersion) +
               "); file preserved";
    detail::tune_note_db_reject();
    std::fprintf(stderr, "tsv: tune db %s ignored (%s)\n", path.c_str(),
                 r.detail.c_str());
    return r;
  }
  if (!(env.fp == TuneDbFingerprint::current())) {
    r.status = TuneDbStatus::kFingerprintMismatch;
    r.detail = "fingerprint mismatch: db is for another machine";
    detail::tune_note_db_reject();
    std::fprintf(stderr, "tsv: tune db %s ignored (%s)\n", path.c_str(),
                 r.detail.c_str());
    return r;
  }
  for (const auto& [k, b] : env.entries) tune_cache_store_from_db(k, b);
  detail::tune_note_db_load(env.entries.size());
  r.status = TuneDbStatus::kLoaded;
  r.entries = env.entries.size();
  return r;
}

bool tune_db_save(const std::string& path, std::string* error) {
  const auto set_err = [&](std::string m) {
    if (error) *error = std::move(m);
  };
  const TuneDbFingerprint fp = TuneDbFingerprint::current();

  // Merge base: the file's current same-fingerprint entries. This process's
  // snapshot overwrites conflicting keys below (last writer wins); a
  // corrupt or foreign-fingerprint file contributes nothing and is
  // replaced; an unknown schema version is preserved — this build cannot
  // read what it would destroy.
  std::map<TuneKey, TunedBlocks> merged;
  if (const std::optional<std::string> text = slurp(path)) {
    try {
      Envelope env = parse_envelope(*text);
      if (env.schema != kTuneDbSchemaVersion) {
        set_err("existing db has unknown schema version " +
                std::to_string(env.schema) + "; preserved");
        return false;
      }
      if (env.fp == fp)
        for (const auto& [k, b] : env.entries) merged[k] = b;
    } catch (const std::invalid_argument&) {
      // Unreadable content: replaced by the fresh write below.
    }
  }
  for (const auto& [k, b] : tune_cache_snapshot()) merged[k] = b;

  const std::string body = envelope_json(
      fp, std::vector<std::pair<TuneKey, TunedBlocks>>(merged.begin(),
                                                       merged.end()));

  // Atomic replace: a unique temp file (pid + per-process counter, so
  // concurrent threads never share one) renamed over the target. Readers
  // and racing writers only ever observe complete files.
  static std::atomic<unsigned> temp_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(temp_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      set_err("cannot write " + tmp);
      return false;
    }
    out << body;
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      set_err("short write to " + tmp);
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    set_err("rename " + tmp + " -> " + path + " failed");
    return false;
  }
  detail::tune_note_db_save();
  return true;
}

std::optional<std::string> tune_db_env_path() {
  const char* p = std::getenv(kTuneDbEnvVar);
  if (p == nullptr || *p == '\0') return std::nullopt;
  return std::string(p);
}

TuneDbLoadResult tune_db_load_env() {
  if (const auto p = tune_db_env_path()) return tune_db_load(*p);
  return {};
}

bool tune_db_save_env() {
  if (const auto p = tune_db_env_path()) return tune_db_save(*p);
  return false;
}

TuneDbSession::~TuneDbSession() {
  if (path_.empty()) return;
  std::string err;
  if (!tune_db_save(path_, &err))
    std::fprintf(stderr, "tsv: tune db save to %s failed (%s)\n",
                 path_.c_str(), err.c_str());
}

}  // namespace tsv
