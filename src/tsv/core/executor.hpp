#pragma once
// Batched, asynchronous execution: a fixed worker pool serving many stencil
// requests concurrently.
//
//   tsv::Executor ex({.gangs = 4, .threads_per_gang = 2});
//   std::future<void> done =
//       ex.submit(grid, tsv::StencilSpec{.kind = tsv::StencilKind::k2d5p},
//                 {.method = tsv::Method::kTranspose, .steps = 100});
//   ...
//   done.get();   // rethrows tsv::ConfigError for invalid configurations
//
// Model: the machine is partitioned into GANGS. Each gang is one worker
// thread that pops requests off a shared queue; a request's plan may fork
// an OpenMP team of up to threads_per_gang inside that worker (the
// Options::max_threads cap is applied at submit), so a large tiled grid
// claims its gang's full team while many small (untiled, single-threaded)
// grids run one per gang, concurrently. Throughput therefore scales with
// independent requests instead of serializing every request behind one
// machine-wide OpenMP team.
//
// Shared state along the request path and who guards it:
//   * plan construction  — deduplicated + single-flighted by the executor's
//     PlanCache (core/plan_cache.hpp); tuning trials additionally serialize
//     on the tuner's process-wide trial lock (core/tuner.hpp).
//   * scratch buffers    — every in-flight request checks a private
//     Workspace out of its cached plan's WorkspacePool; the plan itself is
//     immutable and shared.
//   * the grid           — owned by the caller. A grid must not be passed
//     to a second submit (or touched) while a request on it is in flight;
//     the future is the handoff.
//
// Results are bit-identical to executing the same (grid, spec, options)
// serially through Plan::execute: the executor changes scheduling, never
// kernels or arithmetic (tests/test_executor.cpp pins this).
//
// Lifetime: the destructor drains the queue — every submitted request runs
// to completion (or to its exception) before the workers join, so no
// future is ever abandoned.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "tsv/common/timer.hpp"
#include "tsv/core/plan_cache.hpp"

namespace tsv {

struct ExecutorConfig {
  /// Worker gangs (one worker thread each). 0 = one gang per
  /// threads_per_gang-sized slice of the machine's logical cores (at least
  /// one).
  int gangs = 0;
  /// OpenMP team cap per request: submit clamps every request's
  /// Options::max_threads to this, so one gang can never fork a
  /// machine-wide team. 1 (the default) runs every request single-threaded
  /// — pure request-level parallelism.
  int threads_per_gang = 1;
};

/// Per-gang busy-time accounting: how many tasks this gang ran and how much
/// wall time it spent inside them. busy / uptime is the gang's utilization;
/// a skewed tasks distribution across gangs exposes queue imbalance.
struct GangStats {
  std::uint64_t tasks = 0;
  double busy_seconds = 0.0;
};

struct ExecutorStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< finished successfully
  std::uint64_t failed = 0;     ///< finished by raising into the future
  std::size_t queue_depth = 0;  ///< gauge: tasks waiting for a gang
  PlanCacheStats plan_cache;
  WorkspacePool::Stats workspaces;  ///< aggregated over all cached plans
  std::vector<GangStats> gangs;     ///< one entry per gang, stable order
  double uptime_seconds = 0.0;      ///< wall time since construction
};

/// Whole-pool utilization in [0, 1]: the busy fraction of every gang's
/// uptime, summed. 1.0 means every gang computed the entire time.
inline double utilization(const ExecutorStats& s) {
  if (s.gangs.empty() || s.uptime_seconds <= 0.0) return 0.0;
  double busy = 0.0;
  for (const GangStats& g : s.gangs) busy += g.busy_seconds;
  return busy / (s.uptime_seconds * static_cast<double>(s.gangs.size()));
}

class Executor {
 public:
  /// Non-owning reference to a caller grid of any rank/dtype.
  using GridRef =
      std::variant<Grid1D<double>*, Grid2D<double>*, Grid3D<double>*,
                   Grid1D<float>*, Grid2D<float>*, Grid3D<float>*>;

  /// One unit of work: advance `grid` by `options.steps` steps of
  /// `stencil`. `options.dtype` is overridden from the grid's element type
  /// at submit (the grid is the source of truth), and
  /// `options.max_threads` is clamped to the gang size.
  struct Request {
    GridRef grid;
    StencilSpec stencil;
    Options options;
    /// Wall-clock budget in ms measured from submit (0 = none). An expired
    /// request fails with TimeoutError — at dispatch if it never started,
    /// between time steps if it did (the plan slices steps=1 and polls).
    double timeout_ms = 0.0;
    /// Cooperative cancellation handle (default: inert). cancel() makes the
    /// request fail with CancelledError at the next dispatch/step poll.
    CancelToken cancel;
  };

  explicit Executor(ExecutorConfig cfg = {});
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  ~Executor();

  /// Enqueues @p req and returns immediately. The future becomes ready when
  /// the request finished; plan-time validation also happens on the worker,
  /// so invalid configurations surface as a ConfigError from future.get(),
  /// never as a throw from submit.
  std::future<void> submit(Request req);

  /// Convenience: submit one grid with a stencil spec / named kind.
  template <typename G>
  std::future<void> submit(G& g, const StencilSpec& spec,
                           const Options& o = {}) {
    return submit(Request{GridRef{&g}, spec, o});
  }
  template <typename G>
  std::future<void> submit(G& g, StencilKind kind, const Options& o = {}) {
    return submit(Request{GridRef{&g}, StencilSpec{.kind = kind}, o});
  }

  /// Enqueues an arbitrary closure to run on a gang — the sharded plan's
  /// wave driver (core/plan.hpp) fans its per-shard fill/exchange/sweep
  /// tasks out through this. The task runs with the gang's OpenMP pin like
  /// any request and counts in submitted/completed/failed and the per-gang
  /// stats; it bypasses the plan cache (the closure brings its own plan).
  std::future<void> submit_task(std::function<void()> fn);

  /// Blocks until every submitted request has finished. (Per-request
  /// completion is the future; this is the whole-batch barrier.)
  void wait_idle();

  ExecutorStats stats() const;

  /// The executor-owned plan cache (introspection; shared by every worker).
  PlanCache& plan_cache() { return cache_; }

  int gangs() const { return static_cast<int>(workers_.size()); }
  int threads_per_gang() const { return threads_per_gang_; }

  /// Tasks enqueued but not yet picked up by a gang. The Scheduler
  /// (core/scheduler.hpp) keeps this at most `gangs()` by construction —
  /// its admission queue is where requests wait, so dispatch order stays a
  /// policy decision instead of executor FIFO order.
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  void worker_loop(int gang);
  std::future<void> enqueue(std::packaged_task<void()> task);

  PlanCache cache_;
  int threads_per_gang_ = 1;
  Timer uptime_;  ///< utilization denominator (stats().uptime_seconds)

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // queue became non-empty / stopping
  std::condition_variable idle_cv_;   // queue drained and no active request
  std::deque<std::packaged_task<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<GangStats> gang_stats_;  // guarded by mu_; sized at construction

  std::vector<std::thread> workers_;  // last member: joins before the rest
};

namespace detail {

/// The one execution path every request funnels through (Executor::submit
/// and the Scheduler's group runner): cache lookup, workspace checkout,
/// plan execute under @p ctl — with graceful ISA degradation wrapped
/// around it: a KernelFault fires pre-mutation, so the request retries on a
/// plan rebuilt one ISA rung down (PlanCache::degrade) until the scalar
/// rung itself fails. Defined in executor.cpp.
void execute_request(PlanCache& cache, const Shape& shape,
                     const StencilSpec& spec, const Options& o,
                     Executor::GridRef grid, const ExecControl* ctl);

}  // namespace detail

}  // namespace tsv
