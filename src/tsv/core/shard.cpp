#include "tsv/core/shard.hpp"

#include <algorithm>
#include <string>

#include "tsv/common/cpu.hpp"

namespace tsv {

ShardLayout shard_layout(int rank, index outer, const ShardSpec& spec) {
  require(rank >= 1 && rank <= 3, "shard_layout: rank must be 1, 2 or 3");
  require(outer > 0, "shard_layout: outermost extent must be positive");
  const int outermost = rank - 1;
  if (spec.axis != -1 && spec.axis != outermost)
    throw std::invalid_argument(
        "ShardSpec: only the outermost axis (axis " +
        std::to_string(outermost) + " for rank " + std::to_string(rank) +
        ") can be sharded — inner axes would cut unit-stride rows, and the "
        "vector layout transforms require them intact (got axis " +
        std::to_string(spec.axis) + ")");
  if (spec.count < 0)
    throw std::invalid_argument("ShardSpec: count must be >= 0");
  int count = spec.count;
  if (count == 0)
    count = static_cast<int>(
        std::min<index>(cpu_info().logical_cores, outer));
  count = std::max(count, 1);
  if (static_cast<index>(count) > outer)
    throw std::invalid_argument(
        "ShardSpec: " + std::to_string(count) + " shards need at least " +
        std::to_string(count) + " slabs on the split axis (extent " +
        std::to_string(outer) + ")");

  ShardLayout layout;
  layout.axis = outermost;
  layout.count = count;
  layout.base.reserve(static_cast<std::size_t>(count));
  layout.extent.reserve(static_cast<std::size_t>(count));
  // Even split; the remainder goes to the leading shards, one slab each.
  const index per = outer / count;
  const index rem = outer % count;
  index base = 0;
  for (int i = 0; i < count; ++i) {
    const index e = per + (static_cast<index>(i) < rem ? 1 : 0);
    layout.base.push_back(base);
    layout.extent.push_back(e);
    base += e;
  }
  return layout;
}

const char* shard_violation(const ShardLayout& layout, int radius) {
  for (const index e : layout.extent)
    if (e < static_cast<index>(radius))
      return "a shard's split-axis extent is smaller than the stencil "
             "radius: the ghost exchange copies radius slabs of neighbor "
             "interior, so every shard needs extent >= radius (use fewer "
             "shards)";
  return nullptr;
}

}  // namespace tsv
