#include "tsv/core/executor.hpp"

#include <omp.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "tsv/common/cpu.hpp"

namespace tsv {

namespace detail {

void execute_request(PlanCache& cache, const Shape& shape,
                     const StencilSpec& spec, const Options& o,
                     Executor::GridRef grid, const ExecControl* ctl) {
  for (;;) {
    std::shared_ptr<PlanCache::Entry> entry = cache.get(shape, spec, o);
    WorkspacePool::Lease ws = entry->workspaces().checkout();
    try {
      std::visit([&](auto* g) { entry->plan().execute(*g, *ws, ctl); }, grid);
      return;
    } catch (const KernelFault&) {
      // Graceful ISA degradation: kernel faults fire pre-mutation, so the
      // grid still holds the request's input — pin this configuration one
      // rung down (AVX-512 -> AVX2 -> scalar) and retry on the rebuilt
      // plan. Only the bottom rung's fault surfaces to the caller.
      if (!cache.degrade(shape, spec, o)) throw;
    }
  }
}

}  // namespace detail

Executor::Executor(ExecutorConfig cfg) {
  threads_per_gang_ = std::max(1, cfg.threads_per_gang);
  // Pin the process-wide default-team capture to THIS thread's environment
  // before any ICV-pinned worker exists: if the process's first make_plan
  // happened on a worker, the tiled-plan default would silently become the
  // gang size for every plan built outside the executor too.
  detail::runtime_default_threads();
  int gangs = cfg.gangs;
  if (gangs <= 0) {
    const int cores = static_cast<int>(cpu_info().logical_cores);
    gangs = std::max(1, cores / threads_per_gang_);
  }
  gang_stats_.resize(static_cast<std::size_t>(gangs));
  workers_.reserve(static_cast<std::size_t>(gangs));
  for (int i = 0; i < gangs; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> Executor::submit(Request req) {
  // Normalize on the submitting thread (cheap, deterministic): the grid is
  // the source of truth for the dtype, and the gang size caps the team.
  Options o = req.options;
  std::visit(
      [&o](auto* g) {
        using G = std::remove_pointer_t<decltype(g)>;
        o.dtype = dtype_of<typename detail::grid_value_t<G>>();
      },
      req.grid);
  // 0 means "unset" and becomes the gang cap; a positive cap is clamped to
  // the gang. Negative values pass through UNCHANGED so resolve_options
  // rejects them on the worker — the executor must surface the same
  // ConfigError the serial path throws, not sanitize bad input.
  if (o.max_threads == 0)
    o.max_threads = threads_per_gang_;
  else if (o.max_threads > 0)
    o.max_threads = std::min(o.max_threads, threads_per_gang_);

  // The timeout budget starts at submit (queueing time counts against it),
  // so the deadline is pinned here and rides into the task by value.
  ExecControl ctl;
  if (req.timeout_ms > 0.0)
    ctl.deadline = ExecControl::Clock::now() +
                   std::chrono::duration_cast<ExecControl::Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           req.timeout_ms));
  if (req.cancel.valid())
    ctl.cancelled = [tok = req.cancel] { return tok.cancelled(); };

  std::packaged_task<void()> task(
      [this, grid = req.grid, spec = std::move(req.stencil), o,
       ctl = std::move(ctl)]() {
        try {
          // Everything that can throw (validation, tuning, execution, the
          // injected dispatch fault, cancel/timeout delivery) lives inside
          // the packaged_task, so it raises into the future — a throw can
          // never strand it.
          fault_point(FaultSite::kExecutorDispatch);
          ctl.check();
          const Shape shape =
              std::visit([](auto* g) { return shape_of(*g); }, grid);
          detail::execute_request(cache_, shape, spec, o, grid, &ctl);
          std::lock_guard<std::mutex> lock(mu_);
          ++completed_;
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++failed_;
          }
          throw;  // into the future
        }
      });
  return enqueue(std::move(task));
}

std::future<void> Executor::submit_task(std::function<void()> fn) {
  std::packaged_task<void()> task([this, fn = std::move(fn)]() {
    try {
      fn();
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++failed_;
      }
      throw;  // into the future
    }
  });
  return enqueue(std::move(task));
}

std::future<void> Executor::enqueue(std::packaged_task<void()> task) {
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Push BEFORE counting: if push_back throws (allocation growing the
    // deque), the count must not have recorded a task that never queued —
    // submitted_ would exceed completed_ + failed_ forever and the caller
    // gets the exception with no future outstanding (the dying task's
    // promise breaks, it does not strand).
    queue_.push_back(std::move(task));
    ++submitted_;
  }
  work_cv_.notify_one();
  return fut;
}

void Executor::worker_loop(int gang) {
  // This worker is one GANG: its default OpenMP team is the gang size, so
  // anything that forks a region here (kParallel first touch, a tiled
  // plan) uses at most the gang's share of the machine. The nthreads ICV
  // is per-thread, so gangs do not interfere with each other or with the
  // caller's threads — but a tiled plan overwrites this thread's ICV with
  // its own resolved team (TypedPlan::execute), so the pin is re-applied
  // per task, not once at startup: one 2-thread request must not shrink
  // every later request's first-touch parallelism on this gang.
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      // Counted at dequeue, not after the run: the task body makes its
      // future ready (and bumps completed_/failed_) before control returns
      // here, so a post-run count could lag a caller that already drained
      // the future. busy_seconds is a duration and can only land post-run;
      // wait_idle() is the quiescent point for it.
      gang_stats_[static_cast<std::size_t>(gang)].tasks += 1;
    }
    omp_set_num_threads(threads_per_gang_);
    Timer busy;
    task();  // exceptions land in the future, never escape here
    const double busy_seconds = busy.seconds();
    {
      std::lock_guard<std::mutex> lock(mu_);
      GangStats& g = gang_stats_[static_cast<std::size_t>(gang)];
      g.busy_seconds += busy_seconds;
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void Executor::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.queue_depth = queue_.size();
    s.gangs = gang_stats_;
  }
  s.uptime_seconds = uptime_.seconds();
  s.plan_cache = cache_.stats();
  s.workspaces = cache_.workspace_stats();
  return s;
}

}  // namespace tsv
