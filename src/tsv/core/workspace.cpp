#include "tsv/core/workspace.hpp"

#include "tsv/common/cpu.hpp"
#include "tsv/core/fault.hpp"

namespace tsv {

namespace {
// Streaming stores only pay off once the two parity buffers decisively
// spill the LLC: below ~1.5x the cache can still keep much of the output
// stream resident, and evicting it with NT stores costs more than the RFO
// traffic saved.
constexpr double kDefaultLlcFactor = 1.5;
}  // namespace

index working_set_bytes(int rank, index nx, index ny, index nz,
                        index elem_size) {
  index cells = nx;
  if (rank >= 2) cells *= ny;
  if (rank >= 3) cells *= nz;
  return 2 * cells * elem_size;
}

index streaming_threshold_bytes(double factor) {
  const double f = factor > 0 ? factor : kDefaultLlcFactor;
  return static_cast<index>(f * static_cast<double>(cpu_info().l3_bytes));
}

WorkspacePool::Lease WorkspacePool::checkout() {
  // Before any allocation or counter touches: an injected fault here models
  // OOM pressure at the point the request first claims resources, so a
  // throw is trivially retry-safe (no state to unwind).
  fault_point(FaultSite::kWorkspaceAlloc);
  std::unique_ptr<Workspace> ws;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      ws = std::move(free_.back());
      free_.pop_back();
      ++reused_;
      ++in_flight_;
    }
  }
  // Empty-pool path: construct OUTSIDE the lock and count only afterwards —
  // a throwing construction (bad_alloc) must leave the counters untouched,
  // or in_flight_ would report a phantom leak forever.
  if (ws == nullptr) {
    ws = std::make_unique<Workspace>();
    std::lock_guard<std::mutex> lock(mu_);
    ++created_;
    ++in_flight_;
  }
  return Lease(this, std::move(ws));
}

void WorkspacePool::checkin(std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  // Parking is best-effort: push_back can throw bad_alloc growing the free
  // list, and this is called from the noexcept Lease destructor — an
  // escaping exception would terminate the process. Dropping the workspace
  // instead is always safe (the next checkout just constructs a fresh one)
  // and the counters stay consistent.
  try {
    free_.push_back(std::move(ws));
  } catch (...) {
  }
}

void WorkspacePool::Lease::release() {
  if (pool_ != nullptr && ws_ != nullptr) pool_->checkin(std::move(ws_));
  pool_ = nullptr;
  ws_.reset();
}

WorkspacePool::Stats WorkspacePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {created_, reused_, free_.size(), in_flight_};
}

}  // namespace tsv
