#include "tsv/core/workspace.hpp"

#include "tsv/common/cpu.hpp"

namespace tsv {

namespace {
// Streaming stores only pay off once the two parity buffers decisively
// spill the LLC: below ~1.5x the cache can still keep much of the output
// stream resident, and evicting it with NT stores costs more than the RFO
// traffic saved.
constexpr double kDefaultLlcFactor = 1.5;
}  // namespace

index working_set_bytes(int rank, index nx, index ny, index nz,
                        index elem_size) {
  index cells = nx;
  if (rank >= 2) cells *= ny;
  if (rank >= 3) cells *= nz;
  return 2 * cells * elem_size;
}

index streaming_threshold_bytes(double factor) {
  const double f = factor > 0 ? factor : kDefaultLlcFactor;
  return static_cast<index>(f * static_cast<double>(cpu_info().l3_bytes));
}

}  // namespace tsv
