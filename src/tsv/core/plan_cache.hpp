#pragma once
// Sharded, thread-safe cache of rank-erased Plans, keyed by everything a
// plan's construction depends on (the PlanKey mirrors the tuner's TuneKey
// and extends it with the stencil spec and the full option set).
//
// Why it exists: plan construction is the expensive, shared-state part of
// the pipeline — registry validation, ISA/block resolution, kernel binding,
// and (with Options::tune) timed autotuning trials. A service executing
// many requests must pay that once per distinct configuration, not once per
// request, and must be able to deduplicate CONCURRENT requests for the same
// configuration: the cache single-flights construction per entry, so N
// racing submitters build one plan and share it.
//
// Each cached entry also owns a WorkspacePool (core/workspace.hpp). A Plan
// is immutable after construction and safe to share across threads, but
// scratch buffers are not — every in-flight execution checks a private
// Workspace out of the entry's pool. Pooling per entry (rather than one
// global pool) means a recycled workspace's slot keys always match the next
// request of that entry, so steady-state checkouts are allocation-free.
//
//   tsv::PlanCache cache;
//   auto entry = cache.get(shape, spec, options);   // hit or single-flight build
//   auto ws = entry->workspaces().checkout();       // exclusive scratch
//   entry->plan().execute(grid, *ws);               // concurrent-safe
//
// The cache is sharded: the key hashes to one of kShards independent
// (mutex, map) pairs, so concurrent lookups of different configurations do
// not serialize on one lock.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "tsv/core/plan.hpp"
#include "tsv/core/problems.hpp"
#include "tsv/core/workspace.hpp"

namespace tsv {

/// Identity of one cached plan: the full (shape, stencil spec, options)
/// tuple, with don't-care fields normalized (spec.radius of 0 resolves to
/// the kind's own radius; boundary axes beyond the rank normalize to the
/// frozen default) so equivalent requests cannot miss each other.
struct PlanKey {
  // Stencil identity. Coefficients are stored as IEEE bit patterns, not
  // doubles: the key orders a std::map, and double's operator< is not a
  // strict weak order in the presence of NaN (a NaN coefficient would
  // compare "equivalent" to anything, silently aliasing another entry's
  // plan and corrupting the map's invariants). Bit patterns give a total
  // order and keep every distinct value — including any NaN a caller
  // computed from bad input — a distinct entry.
  StencilKind kind{};
  int radius = 0;
  std::vector<std::uint64_t> coeff_bits;
  /// Runtime-programmable stencils (StencilSpec::generic): rank, tap count,
  /// every tap's packed offset and weight bit pattern, and — when a per-cell
  /// coefficient field is present — its extents plus an FNV-1a digest of the
  /// field values. Empty for the compiled kinds, so the field is free for
  /// the common case; distinct tap sets (or scale fields) can never alias
  /// one cached plan.
  std::vector<std::uint64_t> generic_bits;
  // Grid geometry.
  int rank = 0;
  index nx = 0, ny = 1, nz = 1;
  index halo = 1;
  // The user-visible option fields plan construction consumes. Stored as
  // REQUESTED (kAuto ISA, 0-default blocks), not resolved: resolution is
  // deterministic per process, so requested fields identify the plan, and
  // keying pre-resolution means a cache probe never runs validation.
  Method method{};
  Tiling tiling{};
  Isa isa{};
  Dtype dtype{};
  index steps = 0;
  index bx = 0, by = 0, bz = 0, bt = 0;
  int threads = 0;
  int max_threads = 0;
  Tune tune{};
  StreamMode stream{};
  std::uint64_t stream_threshold_bits = 0;  ///< bit pattern; see coeff_bits
  BoundarySpec boundary;
  HealthCheck health{};

  /// Builds the normalized key for (shape, spec, options).
  static PlanKey make(const Shape& shape, const StencilSpec& spec,
                      const Options& o);

  /// Shard-selection / map hash (FNV-1a over every field).
  std::uint64_t hash() const;

  // Equality, ordering and hash all derive from ONE field list (key_tie in
  // plan_cache.cpp); a new field needs exactly one entry there to
  // participate in all three consistently.
  friend bool operator==(const PlanKey& a, const PlanKey& b);
  friend bool operator<(const PlanKey& a, const PlanKey& b);
};

/// Cumulative cache accounting. hits + misses = number of get() calls. A
/// miss is a call that performed (or attempted) plan construction — so a
/// retry against a previously failed key counts as a miss even though its
/// entry was found in the map; a hit always returned a ready plan without
/// building. entries counts distinct configurations currently cached;
/// evictions counts idle entries dropped to honor the size bound.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Configurations currently pinned to a lower ISA rung by degrade().
  std::uint64_t degraded_plans = 0;
  std::size_t entries = 0;
};

class PlanCache {
 public:
  /// One cached configuration: the (lazily built, immutable) Plan plus the
  /// workspace reuse pool its concurrent executions draw from.
  ///
  /// The single-flight build is a hand-rolled mutex + condvar state machine
  /// rather than std::call_once: an exceptional build must release the
  /// in-flight state so a later get() of the same (deterministically
  /// invalid) key throws again, and exceptions escaping call_once deadlock
  /// under ThreadSanitizer's pthread_once interceptor — the TSan CI job
  /// exercises exactly this path.
  class Entry {
   public:
    /// The cached plan. Only callable after PlanCache::get returned this
    /// entry (get() guarantees the single-flight build has completed).
    const Plan& plan() const { return *plan_; }
    WorkspacePool& workspaces() { return pool_; }

   private:
    friend class PlanCache;
    enum class State { kUnbuilt, kBuilding, kBuilt };

    std::mutex mu_;
    std::condition_variable cv_;
    State state_ = State::kUnbuilt;
    std::optional<Plan> plan_;
    WorkspacePool pool_;
  };

  /// @p max_entries bounds the cache (0 = unbounded). A long-running
  /// service sees unboundedly many distinct keys whenever requests vary in
  /// steps or runtime coefficients, and every entry retains a workspace
  /// pool of grid-sized scratch — so the default is bounded: when a shard
  /// exceeds its share, idle entries (no in-flight requests holding them)
  /// are evicted and simply rebuilt on their next use.
  explicit PlanCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Plans are a few hundred bytes but their workspace pools hold
  /// grid-sized buffers; 256 distinct live configurations is far beyond
  /// any sane service mix while keeping worst-case retention bounded.
  static constexpr std::size_t kDefaultMaxEntries = 256;

  /// Returns the entry for (shape, spec, options), building the plan on
  /// first use. Concurrent calls with the same key single-flight the build:
  /// exactly one caller runs make_plan, the rest block until it finishes
  /// and share the result. Construction failures (ConfigError) propagate to
  /// every waiting caller and leave the entry unbuilt, so a later call with
  /// the same (deterministically invalid) key throws again rather than
  /// returning a half-made plan.
  std::shared_ptr<Entry> get(const Shape& shape, const StencilSpec& spec,
                             const Options& o);

  /// Graceful ISA degradation after a kernel-path failure (KernelFault):
  /// pins this configuration one rung down the AVX-512 -> AVX2 -> scalar
  /// chain and drops its cached entry, so the next get() under the SAME key
  /// rebuilds at the lower rung — callers keep their original request and
  /// transparently receive the degraded plan. Returns false when already at
  /// the bottom rung (nothing left to degrade to; let the fault surface).
  bool degrade(const Shape& shape, const StencilSpec& spec, const Options& o);

  PlanCacheStats stats() const;

  /// Sum of every entry's workspace-pool stats (service observability).
  WorkspacePool::Stats workspace_stats() const;

  /// Drops every cached plan and pool. Outstanding shared_ptr<Entry>
  /// holders (in-flight requests) keep their entries alive; the cache just
  /// forgets them.
  void clear();

  std::size_t size() const;

 private:
  // 8 shards comfortably cover the worker counts this library targets
  // (tens), and a power of two keeps shard selection a mask.
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::map<PlanKey, std::shared_ptr<Entry>> entries;
  };

  Shard& shard_for(const PlanKey& key) {
    return shards_[key.hash() & (kShards - 1)];
  }

  Shard shards_[kShards];
  std::size_t max_entries_ = kDefaultMaxEntries;
  /// Degradation pins, keyed by the ORIGINAL request key and applied to the
  /// build options inside get() — the cache's identity never changes, only
  /// what it builds. Separate mutex: degrade() and get() touch it briefly
  /// and must not serialize on any one shard's lock.
  mutable std::mutex override_mu_;
  std::map<PlanKey, Isa> isa_override_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  /// Lifetime created/reused totals of evicted entries' pools, folded into
  /// workspace_stats() so cumulative counters survive eviction.
  std::atomic<std::uint64_t> retired_ws_created_{0};
  std::atomic<std::uint64_t> retired_ws_reused_{0};
};

}  // namespace tsv
