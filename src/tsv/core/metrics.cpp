#include "tsv/core/metrics.hpp"

#include <cstdio>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace tsv {

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot m;
  if (scheduler_ != nullptr) {
    m.has_scheduler = true;
    m.scheduler = scheduler_->stats();
  }
  if (executor_ != nullptr) {
    m.has_executor = true;
    m.executor = executor_->stats();
  }
  m.tuner = tune_counters();
  FaultInjector& fi = FaultInjector::instance();
  m.faults_enabled = fi.enabled();
  m.faults.reserve(kFaultSiteCount);
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const char* name = fault_site_name(static_cast<FaultSite>(i));
    m.faults.push_back({name, fi.stats(name)});
  }
  return m;
}

namespace {

// Shortest round-trippable formatting for doubles: %.17g is lossless but
// noisy; %g loses precision. Try increasing precision until the value
// round-trips.
std::string fmt_double(double v) {
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::stod(buf) == v) break;
  }
  return buf;
}

void json_executor(std::ostringstream& os, const ExecutorStats& e) {
  os << "{\"submitted\":" << e.submitted << ",\"completed\":" << e.completed
     << ",\"failed\":" << e.failed << ",\"queue_depth\":" << e.queue_depth
     << ",\"uptime_seconds\":" << fmt_double(e.uptime_seconds)
     << ",\"utilization\":" << fmt_double(utilization(e))
     << ",\"plan_cache\":{\"hits\":" << e.plan_cache.hits
     << ",\"misses\":" << e.plan_cache.misses
     << ",\"evictions\":" << e.plan_cache.evictions
     << ",\"degraded_plans\":" << e.plan_cache.degraded_plans
     << ",\"entries\":" << e.plan_cache.entries
     << "},\"workspaces\":{\"created\":" << e.workspaces.created
     << ",\"reused\":" << e.workspaces.reused
     << ",\"free\":" << e.workspaces.free
     << ",\"in_flight\":" << e.workspaces.in_flight << "},\"gangs\":[";
  for (std::size_t g = 0; g < e.gangs.size(); ++g) {
    if (g) os << ",";
    os << "{\"tasks\":" << e.gangs[g].tasks
       << ",\"busy_seconds\":" << fmt_double(e.gangs[g].busy_seconds) << "}";
  }
  os << "]}";
}

void json_latency(std::ostringstream& os, const LatencyHistogram& h) {
  os << "{\"count\":" << h.count() << ",\"sum_s\":" << fmt_double(h.sum_seconds())
     << ",\"mean_s\":" << fmt_double(h.mean_seconds())
     << ",\"p50_s\":" << fmt_double(h.quantile(0.50))
     << ",\"p95_s\":" << fmt_double(h.quantile(0.95))
     << ",\"p99_s\":" << fmt_double(h.quantile(0.99)) << "}";
}

}  // namespace

std::string metrics_to_json(const MetricsSnapshot& m) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  const auto section = [&](const char* name) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
  };
  if (m.has_scheduler) {
    const SchedulerStats& s = m.scheduler;
    section("scheduler");
    os << "{\"submitted\":" << s.submitted << ",\"admitted\":" << s.admitted
       << ",\"rejected\":" << s.rejected << ",\"shed\":" << s.shed
       << ",\"coalesced\":" << s.coalesced << ",\"completed\":" << s.completed
       << ",\"failed\":" << s.failed
       << ",\"deadline_missed\":" << s.deadline_missed
       << ",\"retries\":" << s.retries
       << ",\"retry_exhausted\":" << s.retry_exhausted
       << ",\"cancelled\":" << s.cancelled << ",\"timed_out\":" << s.timed_out
       << ",\"queued\":" << s.queued << ",\"inflight\":" << s.inflight
       << ",\"peak_tenant_inflight\":" << s.peak_tenant_inflight
       << ",\"latency\":{";
    for (int c = 0; c < kServiceClasses; ++c) {
      if (c) os << ",";
      os << "\"" << service_class_name(static_cast<ServiceClass>(c)) << "\":";
      json_latency(os, s.latency[static_cast<std::size_t>(c)]);
    }
    os << "},\"traces\":[";
    for (std::size_t i = 0; i < s.traces.size(); ++i) {
      const TraceSpan& t = s.traces[i];
      if (i) os << ",";
      os << "{\"seq\":" << t.seq << ",\"dispatch_seq\":" << t.dispatch_seq
         << ",\"class\":\"" << service_class_name(t.cls) << "\""
         << ",\"coalesced\":" << (t.coalesced ? "true" : "false")
         << ",\"outcome\":\"" << t.outcome << "\""
         << ",\"submit_s\":" << fmt_double(t.submit_s)
         << ",\"dispatch_s\":" << fmt_double(t.dispatch_s)
         << ",\"sweep_s\":" << fmt_double(t.sweep_s)
         << ",\"complete_s\":" << fmt_double(t.complete_s) << "}";
    }
    os << "],\"executor\":";
    json_executor(os, s.executor);
    os << "}";
  }
  if (m.has_executor) {
    section("executor");
    json_executor(os, m.executor);
  }
  section("tuner");
  os << "{\"lookups\":" << m.tuner.lookups
     << ",\"memo_hits\":" << m.tuner.memo_hits
     << ",\"db_warm_hits\":" << m.tuner.db_warm_hits
     << ",\"trial_searches\":" << m.tuner.trial_searches
     << ",\"trial_executions\":" << m.tuner.trial_executions
     << ",\"db_loads\":" << m.tuner.db_loads
     << ",\"db_entries_loaded\":" << m.tuner.db_entries_loaded
     << ",\"db_load_rejects\":" << m.tuner.db_load_rejects
     << ",\"db_saves\":" << m.tuner.db_saves << "}";
  section("faults");
  os << "{\"enabled\":" << (m.faults_enabled ? "true" : "false")
     << ",\"sites\":[";
  for (std::size_t i = 0; i < m.faults.size(); ++i) {
    if (i) os << ",";
    os << "{\"site\":\"" << m.faults[i].site
       << "\",\"passes\":" << m.faults[i].stats.passes
       << ",\"fires\":" << m.faults[i].stats.fires << "}";
  }
  os << "]}}";
  return os.str();
}

namespace {

/// Emitter for one Prometheus metric family: HELP/TYPE header once, then
/// any number of samples (multiple label sets share the header, as the
/// format requires).
class PromFamily {
 public:
  PromFamily(std::ostringstream& os, const char* name, const char* type,
             const char* help)
      : os_(os), name_(name) {
    os_ << "# HELP " << name_ << " " << help << "\n";
    os_ << "# TYPE " << name_ << " " << type << "\n";
  }

  void sample(std::uint64_t v, const std::string& labels = {}) {
    os_ << name_ << labels << " " << v << "\n";
  }
  void sample(double v, const std::string& labels = {}) {
    os_ << name_ << labels << " " << fmt_double(v) << "\n";
  }
  /// Suffixed sample: histogram _bucket/_sum/_count lines share the
  /// family's header.
  template <typename V>
  void suffixed(const char* suffix, V v, const std::string& labels = {}) {
    os_ << name_ << suffix << labels;
    if constexpr (std::is_floating_point_v<V>)
      os_ << " " << fmt_double(v) << "\n";
    else
      os_ << " " << v << "\n";
  }

 private:
  std::ostringstream& os_;
  const char* name_;
};

std::string label(const char* k, const std::string& v) {
  return std::string("{") + k + "=\"" + v + "\"}";
}

void prom_executor(std::ostringstream& os,
                   const std::vector<std::pair<std::string, const ExecutorStats*>>& srcs) {
  const auto family = [&](const char* name, const char* type,
                          const char* help) {
    return PromFamily(os, name, type, help);
  };
  const auto emit = [&](const char* name, const char* type, const char* help,
                        auto field) {
    PromFamily f = family(name, type, help);
    for (const auto& [via, e] : srcs) f.sample(field(*e), label("via", via));
  };
  emit("tsv_executor_submitted_total", "counter",
       "Requests handed to the executor pool.",
       [](const ExecutorStats& e) { return e.submitted; });
  emit("tsv_executor_completed_total", "counter",
       "Executor requests finished successfully.",
       [](const ExecutorStats& e) { return e.completed; });
  emit("tsv_executor_failed_total", "counter",
       "Executor requests finished by raising into the future.",
       [](const ExecutorStats& e) { return e.failed; });
  emit("tsv_executor_queue_depth", "gauge",
       "Tasks waiting for a gang.",
       [](const ExecutorStats& e) { return std::uint64_t(e.queue_depth); });
  emit("tsv_executor_uptime_seconds", "gauge",
       "Wall time since executor construction.",
       [](const ExecutorStats& e) { return e.uptime_seconds; });
  emit("tsv_executor_utilization", "gauge",
       "Whole-pool busy fraction in [0,1].",
       [](const ExecutorStats& e) { return utilization(e); });
  {
    PromFamily f = family("tsv_executor_gang_tasks_total", "counter",
                          "Tasks run, per gang.");
    for (const auto& [via, e] : srcs)
      for (std::size_t g = 0; g < e->gangs.size(); ++g)
        f.sample(e->gangs[g].tasks,
                 "{via=\"" + via + "\",gang=\"" + std::to_string(g) + "\"}");
  }
  {
    PromFamily f = family("tsv_executor_gang_busy_seconds_total", "counter",
                          "Wall time spent inside tasks, per gang.");
    for (const auto& [via, e] : srcs)
      for (std::size_t g = 0; g < e->gangs.size(); ++g)
        f.sample(e->gangs[g].busy_seconds,
                 "{via=\"" + via + "\",gang=\"" + std::to_string(g) + "\"}");
  }
  emit("tsv_plan_cache_hits_total", "counter", "Plan cache lookups served.",
       [](const ExecutorStats& e) { return e.plan_cache.hits; });
  emit("tsv_plan_cache_misses_total", "counter",
       "Plan cache lookups that built a plan.",
       [](const ExecutorStats& e) { return e.plan_cache.misses; });
  emit("tsv_plan_cache_evictions_total", "counter",
       "Plans evicted by capacity.",
       [](const ExecutorStats& e) { return e.plan_cache.evictions; });
  emit("tsv_plan_cache_degraded_plans", "gauge",
       "Configurations pinned to a lower ISA rung.",
       [](const ExecutorStats& e) { return e.plan_cache.degraded_plans; });
  emit("tsv_plan_cache_entries", "gauge", "Plans currently cached.",
       [](const ExecutorStats& e) { return std::uint64_t(e.plan_cache.entries); });
  emit("tsv_workspace_created_total", "counter",
       "Workspaces constructed on empty-pool checkouts.",
       [](const ExecutorStats& e) { return e.workspaces.created; });
  emit("tsv_workspace_reused_total", "counter",
       "Checkouts served from the free list.",
       [](const ExecutorStats& e) { return e.workspaces.reused; });
  emit("tsv_workspace_free", "gauge", "Workspaces parked in pools.",
       [](const ExecutorStats& e) { return std::uint64_t(e.workspaces.free); });
  emit("tsv_workspace_in_flight", "gauge", "Live workspace leases.",
       [](const ExecutorStats& e) { return std::uint64_t(e.workspaces.in_flight); });
}

}  // namespace

std::string metrics_to_prometheus(const MetricsSnapshot& m) {
  std::ostringstream os;
  if (m.has_scheduler) {
    const SchedulerStats& s = m.scheduler;
    const auto counter = [&](const char* name, const char* help,
                             std::uint64_t v) {
      PromFamily(os, name, "counter", help).sample(v);
    };
    const auto gauge = [&](const char* name, const char* help,
                           std::uint64_t v) {
      PromFamily(os, name, "gauge", help).sample(v);
    };
    counter("tsv_scheduler_submitted_total",
            "Requests submitted (admitted + rejected).", s.submitted);
    counter("tsv_scheduler_admitted_total", "Requests admitted to the queue.",
            s.admitted);
    counter("tsv_scheduler_rejected_total",
            "Submissions refused at admission (queue full).", s.rejected);
    counter("tsv_scheduler_shed_total",
            "Queued requests dropped to make room for newer work.", s.shed);
    counter("tsv_scheduler_coalesced_total",
            "Requests served by another request's execution.", s.coalesced);
    counter("tsv_scheduler_completed_total",
            "Requests completed successfully.", s.completed);
    counter("tsv_scheduler_failed_total",
            "Requests failed into their future.", s.failed);
    counter("tsv_scheduler_deadline_missed_total",
            "Completed requests that finished past their deadline.",
            s.deadline_missed);
    counter("tsv_scheduler_retries_total",
            "Transient-failure re-executions performed.", s.retries);
    counter("tsv_scheduler_retry_exhausted_total",
            "Groups whose transient error surfaced after the retry budget.",
            s.retry_exhausted);
    counter("tsv_scheduler_cancelled_total",
            "Requests failed with CancelledError (subset of failed).",
            s.cancelled);
    counter("tsv_scheduler_timed_out_total",
            "Requests failed with TimeoutError (subset of failed).",
            s.timed_out);
    gauge("tsv_scheduler_queued", "Coalesce groups waiting in the queue.",
          s.queued);
    gauge("tsv_scheduler_inflight", "Groups handed to the executor.",
          s.inflight);
    gauge("tsv_scheduler_peak_tenant_inflight",
          "Max concurrent in-flight requests of one tenant.",
          s.peak_tenant_inflight);
    {
      PromFamily f(os, "tsv_request_latency_seconds", "histogram",
                   "Completion latency, admission to future ready.");
      for (int c = 0; c < kServiceClasses; ++c) {
        const std::string cls =
            service_class_name(static_cast<ServiceClass>(c));
        const LatencyHistogram& h = s.latency[static_cast<std::size_t>(c)];
        std::uint64_t cum = 0;
        for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
          cum += h.bucket_count(b);
          f.suffixed("_bucket", cum,
                     "{class=\"" + cls + "\",le=\"" +
                         fmt_double(LatencyHistogram::bucket_upper_seconds(b)) +
                         "\"}");
        }
        f.suffixed("_bucket", h.count(),
                   "{class=\"" + cls + "\",le=\"+Inf\"}");
        f.suffixed("_sum", h.sum_seconds(), label("class", cls));
        f.suffixed("_count", h.count(), label("class", cls));
      }
    }
  }
  {
    std::vector<std::pair<std::string, const ExecutorStats*>> srcs;
    if (m.has_scheduler) srcs.emplace_back("scheduler", &m.scheduler.executor);
    if (m.has_executor) srcs.emplace_back("direct", &m.executor);
    if (!srcs.empty()) prom_executor(os, srcs);
  }
  const auto tune_counter = [&](const char* name, const char* help,
                                std::uint64_t v) {
    PromFamily(os, name, "counter", help).sample(v);
  };
  tune_counter("tsv_tune_lookups_total", "Memo-cache lookups.",
               m.tuner.lookups);
  tune_counter("tsv_tune_memo_hits_total", "Memo-cache hits.",
               m.tuner.memo_hits);
  tune_counter("tsv_tune_db_warm_hits_total",
               "Memo-cache hits served by tune-db-loaded entries.",
               m.tuner.db_warm_hits);
  tune_counter("tsv_tune_trial_searches_total",
               "Timed candidate searches run.", m.tuner.trial_searches);
  tune_counter("tsv_tune_trial_executions_total",
               "Timed trial plan executions (0 on a warm start).",
               m.tuner.trial_executions);
  tune_counter("tsv_tune_db_loads_total", "Tune databases merged on load.",
               m.tuner.db_loads);
  tune_counter("tsv_tune_db_entries_loaded_total",
               "Entries merged from tune databases.",
               m.tuner.db_entries_loaded);
  tune_counter("tsv_tune_db_load_rejects_total",
               "Tune databases rejected (corrupt/schema/fingerprint).",
               m.tuner.db_load_rejects);
  tune_counter("tsv_tune_db_saves_total", "Tune databases written.",
               m.tuner.db_saves);
  PromFamily(os, "tsv_fault_injection_enabled", "gauge",
             "1 when the fault-injection master switch is armed.")
      .sample(std::uint64_t(m.faults_enabled ? 1 : 0));
  {
    PromFamily f(os, "tsv_fault_passes_total", "counter",
                 "Times a fault site was reached while armed.");
    for (const FaultSiteStats& fs : m.faults)
      f.sample(fs.stats.passes, label("site", fs.site));
  }
  {
    PromFamily f(os, "tsv_fault_fires_total", "counter",
                 "Times a fault site threw an injected fault.");
    for (const FaultSiteStats& fs : m.faults)
      f.sample(fs.stats.fires, label("site", fs.site));
  }
  return os.str();
}

std::vector<std::string> metrics_check_invariants(const MetricsSnapshot& m,
                                                  bool idle) {
  std::vector<std::string> out;
  const auto fail = [&](std::ostringstream& os) { out.push_back(os.str()); };
  const auto check = [&](bool ok, const char* what, std::uint64_t lhs,
                         std::uint64_t rhs) {
    if (ok) return;
    std::ostringstream os;
    os << what << " (" << lhs << " vs " << rhs << ")";
    fail(os);
  };

  const auto check_executor = [&](const ExecutorStats& e, const char* who) {
    const std::string w(who);
    check(e.completed + e.failed <= e.submitted,
          (w + " executor: completed + failed <= submitted").c_str(),
          e.completed + e.failed, e.submitted);
    check(e.workspaces.free + e.workspaces.in_flight <= e.workspaces.created,
          (w + " executor: workspace free + in_flight <= created").c_str(),
          e.workspaces.free + e.workspaces.in_flight, e.workspaces.created);
    // Gang tasks count at dequeue; completed/failed land at the end of the
    // run — so tasks can lead under load and match only when quiesced.
    std::uint64_t gang_tasks = 0;
    for (const GangStats& g : e.gangs) gang_tasks += g.tasks;
    check(e.completed + e.failed <= gang_tasks,
          (w + " executor: completed + failed <= gang tasks").c_str(),
          e.completed + e.failed, gang_tasks);
    if (idle) {
      check(gang_tasks == e.completed + e.failed,
            (w + " executor idle: gang tasks == completed + failed").c_str(),
            gang_tasks, e.completed + e.failed);
      check(e.completed + e.failed == e.submitted,
            (w + " executor idle: completed + failed == submitted").c_str(),
            e.completed + e.failed, e.submitted);
      check(e.queue_depth == 0, (w + " executor idle: queue_depth == 0").c_str(),
            e.queue_depth, 0);
      check(e.workspaces.in_flight == 0,
            (w + " executor idle: workspace in_flight == 0").c_str(),
            e.workspaces.in_flight, 0);
    }
  };

  if (m.has_scheduler) {
    const SchedulerStats& s = m.scheduler;
    check(s.admitted + s.rejected == s.submitted,
          "scheduler: admitted + rejected == submitted",
          s.admitted + s.rejected, s.submitted);
    check(s.completed + s.failed + s.shed <= s.admitted,
          "scheduler: completed + failed + shed <= admitted",
          s.completed + s.failed + s.shed, s.admitted);
    check(s.cancelled + s.timed_out <= s.failed,
          "scheduler: cancelled + timed_out <= failed",
          s.cancelled + s.timed_out, s.failed);
    check(s.deadline_missed <= s.completed,
          "scheduler: deadline_missed <= completed", s.deadline_missed,
          s.completed);
    std::uint64_t latency_n = 0;
    for (const LatencyHistogram& h : s.latency) latency_n += h.count();
    check(latency_n == s.completed,
          "scheduler: latency counts sum == completed", latency_n,
          s.completed);
    check(s.coalesced <= s.admitted, "scheduler: coalesced <= admitted",
          s.coalesced, s.admitted);
    if (idle) {
      check(s.completed + s.failed + s.shed == s.admitted,
            "scheduler idle: completed + failed + shed == admitted",
            s.completed + s.failed + s.shed, s.admitted);
      check(s.queued == 0, "scheduler idle: queued == 0", s.queued, 0);
      check(s.inflight == 0, "scheduler idle: inflight == 0", s.inflight, 0);
    }
    check_executor(s.executor, "scheduler's");
  }
  if (m.has_executor) check_executor(m.executor, "direct");

  check(m.tuner.memo_hits <= m.tuner.lookups,
        "tuner: memo_hits <= lookups", m.tuner.memo_hits, m.tuner.lookups);
  check(m.tuner.db_warm_hits <= m.tuner.memo_hits,
        "tuner: db_warm_hits <= memo_hits", m.tuner.db_warm_hits,
        m.tuner.memo_hits);
  for (const FaultSiteStats& fs : m.faults)
    check(fs.stats.fires <= fs.stats.passes,
          ("fault site " + fs.site + ": fires <= passes").c_str(),
          fs.stats.fires, fs.stats.passes);
  return out;
}

}  // namespace tsv
