#pragma once
// Persistent tune database: the autotuner's memo cache (core/tuner.hpp) on
// disk, so a fleet restart does not re-pay thousands of timed trial races
// for configurations the machine already tuned.
//
//   // load-on-start / merge-on-exit around a process lifetime:
//   tsv::TuneDbSession db;             // path from $TSV_TUNE_DB (inert if unset)
//   ... make_plan with Options::tune = Tune::kCached ...
//   // ~TuneDbSession merges the memo cache back into the file.
//
//   // or explicitly:
//   tsv::TuneDbLoadResult r = tsv::tune_db_load("tuned.tsvdb.json");
//   ...
//   tsv::tune_db_save("tuned.tsvdb.json");
//
// File format: a versioned JSON envelope wrapping the tuner's existing flat
// entry array (docs/OBSERVABILITY.md documents every field):
//
//   {
//    "schema": 1,
//    "fingerprint": {"isas":"scalar+avx2","cores":16,"l1":32768,
//                    "l2":1048576,"l3":33554432,"f32":4,"f64":8},
//    "entries": [ {"method":"transpose", ... ,"bt":8}, ... ]
//   }
//
// Contracts — each one exists because its violation is a silent perf or
// correctness bug (tests/test_tunedb.cpp pins all of them):
//
//  * Hardware fingerprint. Tuned blocks are machine decisions: the winning
//    candidate depends on the ISA set, the core count and the cache ladder
//    that seeded it. A db written on one machine is REJECTED on another
//    (status kFingerprintMismatch, nothing merged) — a stale wrong-machine
//    entry would silently serve mistuned blocks forever.
//  * Schema version, reject-and-preserve. A file with an unknown (newer)
//    schema is never merged AND never overwritten: tune_db_save fails
//    loudly instead of clobbering data this build cannot read.
//  * Corruption tolerance. A truncated, garbage or empty file is logged and
//    ignored on load — never a crash, never a poisoned memo cache (parsing
//    is all-or-nothing before the first entry is merged). Save replaces a
//    corrupt file (its content is unreadable; preserving it helps no one).
//  * Atomic save, last-writer-wins. Save snapshots the memo cache, merges
//    the file's current same-fingerprint entries under it (this process
//    wins conflicting keys), writes a temp file and renames it into place —
//    a reader or racing writer always sees a complete, parseable db, and
//    the race's loser loses whole-file, not half-file.
//
// Entries loaded from a db are marked in the memo cache: a lookup they
// serve counts in TuneCounters::db_warm_hits, and the warm-start guarantee
// — zero timed trials for previously tuned keys — is counter-asserted via
// TuneCounters::trial_executions staying flat.

#include <optional>
#include <string>

#include "tsv/core/tuner.hpp"

namespace tsv {

/// Version of the on-disk envelope this build reads and writes.
inline constexpr int kTuneDbSchemaVersion = 1;

/// Environment variable naming the db file for the env-driven entry points.
inline constexpr const char* kTuneDbEnvVar = "TSV_TUNE_DB";

/// Identity of the machine a tune database speaks for. Every field feeds
/// the tuner's candidate generation or legality rules, so two machines that
/// differ in any of them can disagree on the optimum.
struct TuneDbFingerprint {
  std::string isas;         ///< "+"-joined compiled-and-runnable ISA names
  index cores = 0;          ///< logical core count (threads default)
  index l1_bytes = 0;       ///< per-core L1d capacity (candidate seeding)
  index l2_bytes = 0;       ///< per-core L2 capacity (candidate seeding)
  index l3_bytes = 0;       ///< shared LLC (streaming-store threshold)
  index f32_bytes = 4;      ///< dtype widths: frozen today, but the layout
  index f64_bytes = 8;      ///< rules are width-derived, so they are identity

  /// The running machine's fingerprint (cpu_info + compiled ISA set).
  static TuneDbFingerprint current();

  friend bool operator==(const TuneDbFingerprint&,
                         const TuneDbFingerprint&) = default;
};

enum class TuneDbStatus {
  kLoaded,               ///< entries merged into the memo cache
  kMissing,              ///< no file at the path (normal cold start)
  kCorrupt,              ///< unparseable content, logged and ignored
  kSchemaMismatch,       ///< unknown schema version, preserved untouched
  kFingerprintMismatch,  ///< another machine's db, nothing merged
};

const char* tune_db_status_name(TuneDbStatus s);

struct TuneDbLoadResult {
  TuneDbStatus status = TuneDbStatus::kMissing;
  std::size_t entries = 0;  ///< entries merged (kLoaded only)
  std::string detail;       ///< human-readable reason for non-kLoaded

  bool loaded() const { return status == TuneDbStatus::kLoaded; }
};

/// Load-on-start: merges @p path's entries into the memo cache as
/// db-originated (imported entries win over nothing — the cache is usually
/// empty at start; on key conflict the db entry overwrites). NEVER throws
/// for a bad file: every failure mode maps to a TuneDbStatus, non-kLoaded
/// outcomes other than kMissing are logged to stderr, and the memo cache is
/// untouched unless the whole file parsed.
TuneDbLoadResult tune_db_load(const std::string& path);

/// Merge-on-exit: writes the memo cache to @p path under the current
/// fingerprint. An existing same-fingerprint db at the path is merged
/// underneath (its keys survive; conflicting keys take THIS process's value
/// — last writer wins); a corrupt or foreign-fingerprint file is replaced;
/// a file with an unknown schema version is preserved and the save fails.
/// The write is atomic (temp file + rename): concurrent savers race whole
/// files, never interleave. Returns false on failure; @p error (optional)
/// receives the reason.
bool tune_db_save(const std::string& path, std::string* error = nullptr);

/// The $TSV_TUNE_DB path, or nullopt when unset/empty.
std::optional<std::string> tune_db_env_path();

/// tune_db_load / tune_db_save against $TSV_TUNE_DB. No-ops (kMissing /
/// false) when the variable is unset.
TuneDbLoadResult tune_db_load_env();
bool tune_db_save_env();

/// RAII load-on-start / merge-on-exit. Constructed with an explicit path,
/// or from $TSV_TUNE_DB (inert when unset — a process that never opted in
/// pays nothing). The destructor saves only when the path is set; save
/// failures are logged, never thrown (destructors must not throw).
class TuneDbSession {
 public:
  TuneDbSession() : TuneDbSession(tune_db_env_path().value_or("")) {}
  explicit TuneDbSession(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) load_ = tune_db_load(path_);
  }
  TuneDbSession(const TuneDbSession&) = delete;
  TuneDbSession& operator=(const TuneDbSession&) = delete;
  ~TuneDbSession();

  const std::string& path() const { return path_; }
  bool active() const { return !path_.empty(); }
  const TuneDbLoadResult& load_result() const { return load_; }

 private:
  std::string path_;
  TuneDbLoadResult load_;
};

}  // namespace tsv
