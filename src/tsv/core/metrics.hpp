#pragma once
// Fleet observability: one coherent snapshot of every stats producer in the
// stack — Scheduler (admission/shedding/latency/traces), Executor (gangs,
// plan cache, workspace pools), the autotuner (trials, memo hits, tune-db
// warm hits) and the fault-injection ledgers — exportable as JSON for
// dashboards and as Prometheus text exposition for scrapers.
//
//   tsv::MetricsRegistry reg;
//   reg.attach(&scheduler);            // non-owning; detach before destroy
//   tsv::MetricsSnapshot m = reg.snapshot();
//   std::string page = tsv::metrics_to_prometheus(m);
//   std::string json = tsv::metrics_to_json(m);
//   for (const std::string& v : tsv::metrics_check_invariants(m, true))
//     std::fprintf(stderr, "invariant violated: %s\n", v.c_str());
//
// A snapshot is PULL-based and read-only: every source keeps its own
// counters under its own lock, snapshot() collects them, and nothing on the
// request path knows metrics exist. The per-source snapshots are each
// internally consistent (taken under that source's lock) but not mutually
// atomic — across sources a scrape under load may be skewed by in-flight
// requests, which is why metrics_check_invariants distinguishes the
// always-true identities (submitted == admitted + rejected) from the
// idle-only ones (submitted == completed + failed + shed + rejected).
//
// Metric names, types and labels are documented in docs/OBSERVABILITY.md;
// tests/test_metrics.cpp validates the exposition against the Prometheus
// text-format grammar and pins every conservation invariant.

#include <cstdint>
#include <string>
#include <vector>

#include "tsv/core/executor.hpp"
#include "tsv/core/fault.hpp"
#include "tsv/core/scheduler.hpp"
#include "tsv/core/tuner.hpp"

namespace tsv {

/// Pass/fire counters of one named fault-injection site
/// (core/fault.hpp). Zero-valued sites are included so a scrape always
/// exposes the full site set.
struct FaultSiteStats {
  std::string site;
  FaultInjector::PointStats stats;
};

/// Everything the stack can tell an operator at one instant. `has_*` flags
/// record which sources were attached — an absent source is omitted from
/// both export formats rather than exported as zeros.
struct MetricsSnapshot {
  bool has_scheduler = false;
  SchedulerStats scheduler;  ///< includes the wrapped executor's stats

  bool has_executor = false;
  ExecutorStats executor;  ///< a standalone (unscheduled) executor

  TuneCounters tuner;  ///< process-wide (core/tuner.hpp)

  bool faults_enabled = false;      ///< FaultInjector master switch
  std::vector<FaultSiteStats> faults;  ///< every site, fixed order
};

/// Non-owning registry of stat sources. attach() stores a pointer; the
/// caller guarantees the source outlives the registry (or detaches first).
/// snapshot() is safe to call concurrently with serving traffic — it only
/// takes each source's stats() snapshot. Tuner and fault counters are
/// process-wide singletons and are always included.
class MetricsRegistry {
 public:
  void attach(const Scheduler* s) { scheduler_ = s; }
  void attach(const Executor* e) { executor_ = e; }
  void detach_scheduler() { scheduler_ = nullptr; }
  void detach_executor() { executor_ = nullptr; }

  MetricsSnapshot snapshot() const;

 private:
  const Scheduler* scheduler_ = nullptr;
  const Executor* executor_ = nullptr;
};

/// JSON export: one object with "scheduler" / "executor" / "tuner" /
/// "faults" sections (absent sources omitted). Trace spans ride along under
/// scheduler.traces — they are per-request events, so they appear here and
/// not in the Prometheus exposition.
std::string metrics_to_json(const MetricsSnapshot& m);

/// Prometheus text exposition (format 0.0.4): `# HELP` / `# TYPE` headers,
/// `tsv_`-prefixed names, counters suffixed `_total`, latency as a native
/// histogram (cumulative `le` buckets from LatencyHistogram's log2 buckets,
/// plus `_sum` and `_count`) labelled by service class. Executor metrics
/// carry via="scheduler" or via="direct" so a process running both exports
/// both without a collision.
std::string metrics_to_prometheus(const MetricsSnapshot& m);

/// Checks the conservation invariants that must hold for ANY snapshot, and
/// — when @p idle asserts nothing is queued or in flight — the stricter
/// quiesced identities. "Idle" means EVERY layer drained: the scheduler's
/// completion hook runs inside the executor task body, so callers must
/// reach Scheduler::wait_idle AND Executor::wait_idle (in that order)
/// before asserting the idle set.
///
///   always: admitted + rejected == submitted
///           completed + failed + shed <= admitted
///           cancelled + timed_out <= failed
///           per-class latency counts sum to completed... <= completed live
///           deadline_missed <= completed
///           executor completed + failed <= submitted
///           workspace free + in_flight <= created
///           tuner memo_hits <= lookups, db_warm_hits <= memo_hits
///           per-site fault fires <= passes
///   idle:   completed + failed + shed == admitted; queued == inflight == 0
///           executor completed + failed == submitted; queue_depth == 0
///           workspace in_flight == 0
///           latency counts sum == completed exactly
///
/// Returns one human-readable line per violated invariant; empty = healthy.
std::vector<std::string> metrics_check_invariants(const MetricsSnapshot& m,
                                                  bool idle = false);

}  // namespace tsv
