#pragma once
// Boundary-condition ghost fills (the halo-exchange layer).
//
// Every grid already carries ghost cells (the halo) and every kernel in the
// library reads them for out-of-domain taps — that is how the seed
// implemented frozen Dirichlet boundaries with branch-free interior loops.
// This header adds the fills that make the other Boundary conditions work
// with the SAME kernels: fill_ghosts() writes the ghost cells of the
// radius-deep rim from the interior (periodic wrap, Neumann mirror) or with
// zeros, in O(halo) memcpy/loop segments — never an interior sweep.
//
// Axis order and corners: axes are filled x, then y, then z. The x fill
// covers interior rows only; the y fill copies whole extended rows
// (including the just-filled x ghosts) into the ghost rows; the z fill
// copies whole extended planes. Corner/edge ghost cells therefore get the
// standard sequential-exchange values (e.g. the periodic diagonal wrap),
// and because the scalar reference oracle (kernels/reference.hpp) uses this
// very function, optimized methods and the oracle always read identical
// ghost values.
//
// Execution model (see TypedPlan::execute in core/plan.hpp): kDirichlet
// axes are never touched; kZero axes are filled once per execute; plans
// with a kPeriodic or kNeumann axis run step-at-a-time with a fill_ghosts
// refresh between steps, because those ghosts depend on the evolving
// interior. Methods that fuse several time steps per driver call (the
// 2-step unroll&jam scheme, temporal tiling with bt > 1) degrade gracefully
// to their single-step path between refreshes — resolve_options reports the
// temporal block that actually executes.

#include <cstring>
#include <optional>
#include <string_view>
#include <vector>

#include "tsv/common/grid.hpp"
#include "tsv/core/options.hpp"

namespace tsv {

/// Every Boundary enumerator, for exhaustive sweeps (registry-style).
const std::vector<Boundary>& all_boundaries();

/// Name -> enum inverse of boundary_name(); nullopt for unknown spellings.
std::optional<Boundary> boundary_from_name(std::string_view name);

/// Reason the boundary spec cannot run on this shape (static storage), or
/// nullptr when it is valid. Wrap/mirror fills read @p radius interior
/// cells next to each face, so a periodic or Neumann axis needs an extent
/// of at least the stencil radius. Used by resolve_options.
const char* boundary_violation(int rank, index nx, index ny, index nz,
                               int radius, const BoundarySpec& bc);

namespace detail {

/// Row-granular ghost copies: the y/z-axis fills move whole extended rows,
/// so they are straight memcpy/memset segments (IEEE zero is all-zero
/// bytes).
template <typename T>
void copy_row_segment(T* dst, const T* src, index n) {
  std::memcpy(dst, src, static_cast<std::size_t>(n) * sizeof(T));
}

template <typename T>
void zero_row_segment(T* dst, index n) {
  std::memset(dst, 0, static_cast<std::size_t>(n) * sizeof(T));
}

/// x-axis fill for one unit-stride row, one side at a time: lo fills the
/// ghost cells at [-r, 0), hi the ones at [nx, nx + r), around the interior
/// [0, nx). Element loops, O(r). Split per face so the sharded execution
/// path can fill exactly the physical face of a split axis.
template <typename T>
void fill_row_x_lo(T* row, index nx, int r, Boundary b) {
  switch (b) {
    case Boundary::kDirichlet:
      break;
    case Boundary::kZero:
      for (int d = 1; d <= r; ++d) row[-d] = T(0);
      break;
    case Boundary::kPeriodic:
      for (int d = 1; d <= r; ++d) row[-d] = row[nx - d];
      break;
    case Boundary::kNeumann:
      for (int d = 1; d <= r; ++d) row[-d] = row[d - 1];
      break;
  }
}

template <typename T>
void fill_row_x_hi(T* row, index nx, int r, Boundary b) {
  switch (b) {
    case Boundary::kDirichlet:
      break;
    case Boundary::kZero:
      for (int d = 0; d < r; ++d) row[nx + d] = T(0);
      break;
    case Boundary::kPeriodic:
      for (int d = 0; d < r; ++d) row[nx + d] = row[d];
      break;
    case Boundary::kNeumann:
      for (int d = 0; d < r; ++d) row[nx + d] = row[nx - 1 - d];
      break;
  }
}

template <typename T>
void fill_row_x(T* row, index nx, int r, Boundary b) {
  fill_row_x_lo(row, nx, r, b);
  fill_row_x_hi(row, nx, r, b);
}

/// Source index (in the interior) a ghost layer at distance @p d outside a
/// face copies from, for the axis-granular (row/plane) fills. Low face:
/// ghost index -d; high face: ghost index n-1+d.
inline index ghost_src_lo(index n, int d, Boundary b) {
  return b == Boundary::kPeriodic ? n - d : d - 1;  // wrap : mirror
}
inline index ghost_src_hi(index n, int d, Boundary b) {
  return b == Boundary::kPeriodic ? d - 1 : n - d;  // wrap : mirror
}

}  // namespace detail

/// Fills ONE face of the grid's outermost axis (x for 1D, y for 2D, z for
/// 3D): the radius-deep ghost strip outside the low (high=false) or high
/// (high=true) face, per boundary @p b. kDirichlet is a no-op. The copied
/// strips are whole extended rows/planes, so inner-axis ghosts must already
/// be filled — the face then inherits the same sequential-exchange corner
/// semantics as fill_ghosts. The sharded execution path (core/shard.hpp)
/// uses this for the PHYSICAL faces of its split axis; internal shard faces
/// are neighbor-interior copies instead (periodic wraps ride the same ring
/// exchange, so they never come through here).
template <typename T>
void fill_ghost_face(Grid1D<T>& g, Boundary b, int radius, bool high) {
  if (high)
    detail::fill_row_x_hi(g.x0(), g.nx(), radius, b);
  else
    detail::fill_row_x_lo(g.x0(), g.nx(), radius, b);
}

template <typename T>
void fill_ghost_face(Grid2D<T>& g, Boundary b, int radius, bool high) {
  if (b == Boundary::kDirichlet) return;
  const index ny = g.ny();
  const int r = radius;
  const index w = g.nx() + 2 * r;
  for (int d = 1; d <= r; ++d) {
    T* dst = (high ? g.row(ny - 1 + d) : g.row(-d)) - r;
    if (b == Boundary::kZero) {
      detail::zero_row_segment(dst, w);
      continue;
    }
    const index src = high ? detail::ghost_src_hi(ny, d, b)
                           : detail::ghost_src_lo(ny, d, b);
    detail::copy_row_segment(dst, g.row(src) - r, w);
  }
}

template <typename T>
void fill_ghost_face(Grid3D<T>& g, Boundary b, int radius, bool high) {
  if (b == Boundary::kDirichlet) return;
  const index ny = g.ny(), nz = g.nz();
  const int r = radius;
  const index w = g.nx() + 2 * r;
  for (int d = 1; d <= r; ++d)
    for (index y = -r; y < ny + r; ++y) {
      T* dst = (high ? g.row(y, nz - 1 + d) : g.row(y, -d)) - r;
      if (b == Boundary::kZero) {
        detail::zero_row_segment(dst, w);
        continue;
      }
      const index src = high ? detail::ghost_src_hi(nz, d, b)
                             : detail::ghost_src_lo(nz, d, b);
      detail::copy_row_segment(dst, g.row(y, src) - r, w);
    }
}

/// Fills the radius-@p radius ghost rim of @p g according to @p bc (see the
/// header comment for semantics and corner handling). kDirichlet axes are
/// left untouched. The grid's halo must be >= radius (plan-validated).
template <typename T>
void fill_ghosts(Grid1D<T>& g, const BoundarySpec& bc, int radius) {
  detail::fill_row_x(g.x0(), g.nx(), radius, bc.x);
}

template <typename T>
void fill_ghosts(Grid2D<T>& g, const BoundarySpec& bc, int radius) {
  const index nx = g.nx(), ny = g.ny();
  const int r = radius;
  if (bc.x != Boundary::kDirichlet)
    for (index y = 0; y < ny; ++y) detail::fill_row_x(g.row(y), nx, r, bc.x);
  // Ghost rows copy the whole extended row [-r, nx + r) so corners inherit
  // the x fill of their source row (fill_ghost_face implements the copies).
  fill_ghost_face(g, bc.y, r, /*high=*/false);
  fill_ghost_face(g, bc.y, r, /*high=*/true);
}

template <typename T>
void fill_ghosts(Grid3D<T>& g, const BoundarySpec& bc, int radius) {
  const index nx = g.nx(), ny = g.ny(), nz = g.nz();
  const int r = radius;
  if (bc.x != Boundary::kDirichlet)
    for (index z = 0; z < nz; ++z)
      for (index y = 0; y < ny; ++y)
        detail::fill_row_x(g.row(y, z), nx, r, bc.x);
  const index w = nx + 2 * r;
  if (bc.y != Boundary::kDirichlet) {
    for (index z = 0; z < nz; ++z)
      for (int d = 1; d <= r; ++d) {
        if (bc.y == Boundary::kZero) {
          detail::zero_row_segment(g.row(-d, z) - r, w);
          detail::zero_row_segment(g.row(ny - 1 + d, z) - r, w);
          continue;
        }
        detail::copy_row_segment(
            g.row(-d, z) - r, g.row(detail::ghost_src_lo(ny, d, bc.y), z) - r,
            w);
        detail::copy_row_segment(
            g.row(ny - 1 + d, z) - r,
            g.row(detail::ghost_src_hi(ny, d, bc.y), z) - r, w);
      }
  }
  // Ghost planes copy whole extended planes (rows [-r, ny + r), each row
  // extended by the x rim) so edges and corners inherit the x and y fills
  // (fill_ghost_face implements the copies).
  fill_ghost_face(g, bc.z, r, /*high=*/false);
  fill_ghost_face(g, bc.z, r, /*high=*/true);
}

}  // namespace tsv
