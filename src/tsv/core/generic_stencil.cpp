#include "tsv/core/generic_stencil.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tsv {

int GenericStencil::derived_radius() const {
  int r = 0;
  for (const GenericTap& t : taps)
    r = std::max({r, std::abs(t.dx), std::abs(t.dy), std::abs(t.dz)});
  return r;
}

int GenericStencil::effective_radius() const {
  return radius != 0 ? radius : std::max(derived_radius(), 1);
}

const char* generic_violation(const GenericStencil& gs) {
  if (gs.rank < 1 || gs.rank > 3)
    return "generic stencil rank must be 1, 2 or 3";
  if (gs.taps.empty()) return "generic stencil has no taps";
  if (gs.radius < 0) return "generic stencil radius must be >= 0";
  if (gs.radius > kMaxGenericRadius)
    return "generic stencil radius exceeds kMaxGenericRadius";
  if (gs.derived_radius() > kMaxGenericRadius)
    return "generic stencil tap offsets exceed kMaxGenericRadius";
  const int r = gs.effective_radius();
  for (const GenericTap& t : gs.taps) {
    if (std::abs(t.dx) > r || std::abs(t.dy) > r || std::abs(t.dz) > r)
      return "generic stencil tap offset beyond the declared radius";
    if (gs.rank < 2 && t.dy != 0)
      return "generic stencil tap uses the y axis beyond its rank";
    if (gs.rank < 3 && t.dz != 0)
      return "generic stencil tap uses the z axis beyond its rank";
    if (!std::isfinite(t.weight))
      return "generic stencil tap weight is not finite";
  }
  for (std::size_t i = 0; i < gs.taps.size(); ++i)
    for (std::size_t j = i + 1; j < gs.taps.size(); ++j)
      if (gs.taps[i].dx == gs.taps[j].dx && gs.taps[i].dy == gs.taps[j].dy &&
          gs.taps[i].dz == gs.taps[j].dz)
        return "generic stencil has duplicate tap offsets";
  if (!gs.scale.empty()) {
    if (gs.scale_nx <= 0 || gs.scale_ny <= 0 || gs.scale_nz <= 0)
      return "generic scale field extents must be positive";
    const index cells = gs.scale_nx * gs.scale_ny * gs.scale_nz;
    if (cells != static_cast<index>(gs.scale.size()))
      return "generic scale field extents do not match scale.size()";
  }
  return nullptr;
}

namespace {

void check_built(const GenericStencil& gs) {
  if (const char* why = generic_violation(gs))
    throw std::invalid_argument(std::string("generic stencil builder: ") +
                                why);
}

}  // namespace

GenericStencil generic_star(int rank, int radius, double center, double arm) {
  GenericStencil gs;
  gs.rank = rank;
  gs.radius = radius;
  gs.taps.push_back({0, 0, 0, center});
  for (int axis = 0; axis < rank; ++axis)
    for (int d = 1; d <= radius; ++d)
      for (int sign : {-1, 1}) {
        GenericTap t;
        t.weight = arm;
        (axis == 0 ? t.dx : axis == 1 ? t.dy : t.dz) = sign * d;
        gs.taps.push_back(t);
      }
  check_built(gs);
  return gs;
}

GenericStencil generic_box(int rank, int radius, double center, double other) {
  GenericStencil gs;
  gs.rank = rank;
  gs.radius = radius;
  const int ylim = rank >= 2 ? radius : 0;
  const int zlim = rank >= 3 ? radius : 0;
  for (int dz = -zlim; dz <= zlim; ++dz)
    for (int dy = -ylim; dy <= ylim; ++dy)
      for (int dx = -radius; dx <= radius; ++dx)
        gs.taps.push_back(
            {dx, dy, dz,
             (dx == 0 && dy == 0 && dz == 0) ? center : other});
  check_built(gs);
  return gs;
}

GenericStencil generic_from_kind(StencilKind kind,
                                 const std::vector<double>& coeffs) {
  if (!coeffs.empty() && coeffs.size() != stencil_kind_coeff_count(kind))
    throw std::invalid_argument(
        "generic_from_kind: coeffs must be empty or exactly "
        "stencil_kind_coeff_count(kind) values");
  auto c = [&](std::size_t i, double dflt) {
    return coeffs.empty() ? dflt : coeffs[i];
  };
  GenericStencil gs;
  gs.rank = stencil_kind_rank(kind);
  gs.radius = stencil_kind_radius(kind);
  switch (kind) {
    case StencilKind::k1d3p: {
      const double a = c(0, 1.0 / 3.0);
      gs.taps = {{-1, 0, 0, a}, {0, 0, 0, a}, {1, 0, 0, a}};
      break;
    }
    case StencilKind::k1d5p: {
      const double w2 = c(0, 0.05), w1 = c(1, 0.15), wc = c(2, 0.6);
      gs.taps = {{-2, 0, 0, w2},
                 {-1, 0, 0, w1},
                 {0, 0, 0, wc},
                 {1, 0, 0, w1},
                 {2, 0, 0, w2}};
      break;
    }
    case StencilKind::k2d5p: {
      const double wc = c(0, 0.5), wx = c(1, 0.125), wy = c(2, 0.125);
      gs.taps = {{0, -1, 0, wy},
                 {-1, 0, 0, wx},
                 {0, 0, 0, wc},
                 {1, 0, 0, wx},
                 {0, 1, 0, wy}};
      break;
    }
    case StencilKind::k2d9p: {
      const double wc = c(0, 0.2), edge = c(1, 0.125), corner = c(2, 0.075);
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          const int d = std::abs(dx) + std::abs(dy);
          gs.taps.push_back({dx, dy, 0, d == 0 ? wc : d == 1 ? edge : corner});
        }
      break;
    }
    case StencilKind::k3d7p: {
      const double wc = c(0, 0.4), wx = c(1, 0.1), wy = c(2, 0.1),
                   wz = c(3, 0.1);
      gs.taps = {{0, 0, -1, wz}, {0, -1, 0, wy}, {-1, 0, 0, wx},
                 {0, 0, 0, wc},  {1, 0, 0, wx},  {0, 1, 0, wy},
                 {0, 0, 1, wz}};
      break;
    }
    case StencilKind::k3d27p: {
      const double wc = c(0, 0.1);
      for (int dz = -1; dz <= 1; ++dz)
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            const int d = std::abs(dx) + std::abs(dy) + std::abs(dz);
            gs.taps.push_back(
                {dx, dy, dz, d == 0 ? wc : wc / (2.0 * d + 1.0)});
          }
      break;
    }
  }
  check_built(gs);
  return gs;
}

}  // namespace tsv
