#pragma once
// The capability registry: the single source of truth for which
// (method, tiling, rank, ISA) combinations this library executes.
//
// Benches, examples, tests and CLI parsers enumerate methods from here
// instead of hard-coding lists; plan creation validates against it. See
// capability.hpp for the row format.

#include <optional>
#include <string_view>
#include <vector>

#include "tsv/core/capability.hpp"

namespace tsv {

/// All implemented (method, tiling) combinations, in stable order: tiling
/// major (untiled, then tessellate, then split), method minor. Bench column
/// order and the generated capability table follow this order.
const std::vector<Capability>& capabilities();

/// The registry row for (method, tiling), or nullptr when the combination
/// is not implemented for any rank.
const Capability* find_capability(Method m, Tiling t);

/// True when (method, tiling) is implemented for grid rank @p rank and the
/// kernels for @p isa are compiled into this binary and can run on this
/// machine. kAuto resolves to best_isa().
bool supports(Method m, Tiling t, int rank, Isa isa = Isa::kAuto);

/// Full-tuple form: additionally requires the row to claim @p dtype. The
/// registry enumerates (method, tiling, rank, isa, dtype) tuples; plan
/// creation rejects exactly the tuples this predicate rejects.
bool supports(Method m, Tiling t, int rank, Isa isa, Dtype dtype);

/// Boundary-axis form: additionally requires the row's boundary_mask to
/// claim @p boundary (core/halo.hpp enumerates the axis itself via
/// all_boundaries()/boundary_from_name()).
bool supports(Method m, Tiling t, int rank, Isa isa, Dtype dtype,
              Boundary boundary);

/// Methods usable with tiling @p t at rank @p rank, in registry order.
std::vector<Method> supported_methods(Tiling t, int rank);

/// ISAs compiled into this binary AND supported by this machine, widest
/// last. Always contains at least Isa::kScalar; never contains kAuto.
std::vector<Isa> runnable_isas();

/// Every enumerator, for exhaustive sweeps (kAuto excluded from all_isas).
const std::vector<Method>& all_methods();
const std::vector<Tiling>& all_tilings();
const std::vector<Isa>& all_isas();
const std::vector<Dtype>& all_dtypes();

/// Name -> enum inverses of method_name/tiling_name/isa_name/dtype_name, for
/// CLI and bench parsing. Return nullopt for unknown names; dtype_from_name
/// also accepts the spellings "double"/"float".
std::optional<Method> method_from_name(std::string_view name);
std::optional<Tiling> tiling_from_name(std::string_view name);
std::optional<Isa> isa_from_name(std::string_view name);
std::optional<Dtype> dtype_from_name(std::string_view name);

}  // namespace tsv
