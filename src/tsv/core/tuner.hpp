#pragma once
// Empirical block-size autotuner (plan-time; Options::tune knob).
//
// make_plan with tune != kOff resolves bx/by/bz/bt by timing short trials of
// a cache-topology-seeded candidate set on a synthetic grid of the planned
// shape, instead of trusting the fixed heuristics in plan.cpp. Results are
// memoized in a process-wide cache keyed by the full resolved tuple
// (method, tiling, rank, isa, dtype, shape, radius, threads, steps, and the
// user's pinned block fields — see TuneKey), and the cache round-trips
// through JSON so benches and CI can pin tuned configurations:
//
//   tsv::Options o{.tiling = tsv::Tiling::kTessellate, .steps = 1000,
//                  .tune = tsv::Tune::kCached};
//   auto plan = tsv::make_plan(shape, stencil, o);   // trials on first miss
//   tsv::tune_cache_export_json("tuned.json");       // pin for later runs
//
// Only fields the user left at 0 are searched; explicitly set blocks are
// respected (pinned) by the candidate generator. Candidates are legal by
// construction for the tessellate rules and re-validated by resolve_options,
// so a tuned plan can never be less valid than a default one. Trials run
// with tune = kOff (no recursion) and are budgeted: the trial step count is
// capped so one make_plan spends milliseconds-to-seconds, not minutes, even
// on LLC-exceeding grids.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tsv/core/options.hpp"

namespace tsv {

/// One blocking choice, in Options units (bx/by/bz in elements / rows /
/// planes exactly as Options interprets them for the tiling; bt in steps).
struct TunedBlocks {
  index bx = 0, by = 0, bz = 0, bt = 0;

  friend bool operator==(const TunedBlocks& a, const TunedBlocks& b) {
    return a.bx == b.bx && a.by == b.by && a.bz == b.bz && a.bt == b.bt;
  }
};

/// Identity of one tuning decision: everything the optimum can depend on.
struct TuneKey {
  Method method{};
  Tiling tiling{};
  int rank = 0;
  Isa isa{};       ///< concrete (resolved) ISA, never kAuto
  Dtype dtype{};
  index nx = 0, ny = 1, nz = 1;
  int radius = 0;
  int threads = 0;  ///< concrete (resolved) team size
  /// Run length the plan was tuned for. Part of the key because the
  /// candidate set depends on it (bt > 2*steps is pruned) — a short-run
  /// winner must not be served to a long-run plan.
  index steps = 0;
  /// The user's explicitly pinned block fields (0 = unpinned). Part of the
  /// key because pins constrain the search space: a winner found under one
  /// pin set must not be served to a plan with different pins.
  index pin_bx = 0, pin_by = 0, pin_bz = 0, pin_bt = 0;
  /// Resolved per-axis boundary conditions. Part of the key because a
  /// periodic/Neumann axis forces step-granular execution (bt resolves to
  /// 1/2 and every step pays a ghost refresh) — blocks tuned under one
  /// boundary regime must not be served to another.
  BoundarySpec boundary;

  friend bool operator==(const TuneKey&, const TuneKey&) = default;
  friend bool operator<(const TuneKey& a, const TuneKey& b);
};

/// The inverse of tune_name(); nullopt for unknown spellings.
std::optional<Tune> tune_from_name(std::string_view name);

/// Cumulative tuner accounting (process-wide, monotone except for
/// tune_counters_reset). The load-bearing invariants, exported through
/// core/metrics.hpp and pinned by tests/test_tunedb.cpp:
///
///   * memo_hits <= lookups; misses are lookups - memo_hits.
///   * db_warm_hits <= memo_hits: a warm hit is a memo hit whose entry came
///     from a tune database load (core/tunedb.hpp) rather than a trial.
///   * trial_executions == 0 across a plan whose key was warm-loaded — the
///     "zero timed trials on warm start" guarantee is THIS counter staying
///     flat, not an absence of log lines.
struct TuneCounters {
  std::uint64_t lookups = 0;           ///< tune_cache_lookup calls
  std::uint64_t memo_hits = 0;         ///< lookups that found an entry
  std::uint64_t db_warm_hits = 0;      ///< memo hits served by a db entry
  std::uint64_t trial_searches = 0;    ///< timed candidate races run
  std::uint64_t trial_executions = 0;  ///< timed trial executes (2 per cand.)
  std::uint64_t db_loads = 0;          ///< successful tune_db_load calls
  std::uint64_t db_entries_loaded = 0; ///< entries merged by those loads
  std::uint64_t db_load_rejects = 0;   ///< loads ignored (corrupt/mismatch)
  std::uint64_t db_saves = 0;          ///< successful tune_db_save calls
};

/// Snapshot of the process-wide counters (each field individually atomic:
/// cross-field identities are exact only at quiesce, like every other stats
/// snapshot in this library).
TuneCounters tune_counters();
void tune_counters_reset();

// ---- process-wide memo cache (thread-safe) ---------------------------------

std::optional<TunedBlocks> tune_cache_lookup(const TuneKey& key);
void tune_cache_store(const TuneKey& key, const TunedBlocks& blocks);
/// Store an entry loaded from a persistent tune database. Identical to
/// tune_cache_store except the entry is marked as db-originated, so lookups
/// that it serves count in TuneCounters::db_warm_hits. A later trial result
/// for the same key (tune_cache_store) clears the mark — the entry is then
/// this process's own work.
void tune_cache_store_from_db(const TuneKey& key, const TunedBlocks& blocks);
void tune_cache_clear();
std::size_t tune_cache_size();

/// Ordered copy of the whole cache (db-origin marks dropped: persistence
/// does not care who produced an entry, only what it says).
std::vector<std::pair<TuneKey, TunedBlocks>> tune_cache_snapshot();

/// Process-wide single-flight lock for plan-time tuning TRIALS (the memo
/// cache itself has its own internal mutex). Concurrent make_plan calls
/// with tuning enabled must not run timed trials simultaneously: two
/// overlapping trials time-share the cores and memoize each other's noise
/// as the "optimal" blocks, and N concurrent kCached misses on the same key
/// would each pay the full search. The plan layer (core/plan.hpp) takes
/// this lock around the trial section and re-checks the cache after
/// acquiring it, so N racing planners run exactly one search.
std::mutex& tune_trial_mutex();

// ---- JSON pinning ----------------------------------------------------------

/// Serializes @p entries as the tuner's JSON array of flat objects (stable
/// key order is the caller's responsibility; tune_cache_snapshot is already
/// ordered). This is the entry payload core/tunedb.hpp wraps in its
/// versioned envelope.
std::string tune_entries_to_json(
    const std::vector<std::pair<TuneKey, TunedBlocks>>& entries);

/// Parses a tuner JSON array without touching the cache. All-or-nothing:
/// throws std::invalid_argument on malformed input or unknown enum names,
/// returning nothing rather than a prefix.
std::vector<std::pair<TuneKey, TunedBlocks>> tune_entries_from_json(
    const std::string& json);

/// Serializes the whole cache as a JSON array of flat objects (stable key
/// order, one entry per line).
std::string tune_cache_to_json();

/// Merges entries parsed from @p json into the cache (imported entries win).
/// Returns the number of entries merged; throws std::invalid_argument on
/// malformed input or unknown enum names.
std::size_t tune_cache_from_json(const std::string& json);

/// File variants of the above. Export returns false when the file cannot be
/// written; import returns the number of entries merged and throws on
/// malformed content (a missing file throws too — pinning must be loud).
bool tune_cache_export_json(const std::string& path);
std::size_t tune_cache_import_json(const std::string& path);

// ---- candidate generation (pure; used by the plan layer) -------------------

/// Topology-seeded candidate blockings for a tiled plan (block sizes are
/// seeded from the detected L1/L2 capacities and the shape). @p
/// needs_even_bt mirrors the registry's constraint for the 2-step
/// unroll&jam scheme. Fields the user pinned (non-zero in @p user) are kept
/// at the pinned value in every candidate. Every candidate satisfies the
/// tessellate legality bound (multi-tile axes >= 2 * slope * tau) for the
/// shape it was generated for. The first candidate is always the
/// fixed-heuristic default (the user's own fields), so tuning can never
/// pick something worse than "don't tune" by more than trial noise.
std::vector<TunedBlocks> tune_candidates(int rank, index nx, index ny,
                                         index nz, int radius, Tiling tiling,
                                         bool needs_even_bt, index steps,
                                         const Options& user);

/// Trial step count for one candidate: enough steps to exercise the
/// temporal blocking (>= one full time block) but budget-capped so trials
/// on LLC-exceeding grids stay short. Never exceeds @p steps (the real run
/// length) when that is smaller.
index tune_trial_steps(index points, index bt, index steps);

namespace detail {

/// Accounting hooks for the plan layer (core/plan.hpp) and the tune
/// database (core/tunedb.cpp). Not user API.
void tune_note_trials(std::uint64_t searches, std::uint64_t executions);
void tune_note_db_load(std::uint64_t entries);
void tune_note_db_reject();
void tune_note_db_save();

}  // namespace detail

}  // namespace tsv
