#pragma once
// AVX2 specializations: 256-bit vectors of 4 doubles or 8 floats.
// Included by tsv/simd/vec.hpp; do not include directly.

#include <immintrin.h>

namespace tsv {

template <typename T, int W>
struct Vec;

template <>
struct Vec<double, 4> {
  using value_type = double;
  static constexpr int width = 4;

  __m256d v;

  Vec() = default;
  explicit Vec(__m256d x) : v(x) {}

  static Vec load(const double* p) { return Vec(_mm256_load_pd(p)); }
  static Vec loadu(const double* p) { return Vec(_mm256_loadu_pd(p)); }
  static Vec broadcast(double s) { return Vec(_mm256_set1_pd(s)); }
  static Vec zero() { return Vec(_mm256_setzero_pd()); }

  void store(double* p) const { _mm256_store_pd(p, v); }
  void storeu(double* p) const { _mm256_storeu_pd(p, v); }

  /// Non-temporal aligned store (see the primary template's contract).
  void stream(double* p) const { _mm256_stream_pd(p, v); }

  /// Stores only the lanes whose bit is set in @p mask (bit i = lane i).
  void store_mask(double* p, unsigned mask) const {
    const __m256i m = _mm256_set_epi64x(
        mask & 8u ? -1 : 0, mask & 4u ? -1 : 0, mask & 2u ? -1 : 0,
        mask & 1u ? -1 : 0);
    _mm256_maskstore_pd(p, m, v);
  }

  double operator[](int i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm256_add_pd(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm256_sub_pd(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm256_mul_pd(a.v, b.v)); }
};

inline Vec<double, 4> fma(Vec<double, 4> a, Vec<double, 4> b,
                          Vec<double, 4> c) {
  return Vec<double, 4>(_mm256_fmadd_pd(a.v, b.v, c.v));
}

template <>
struct Vec<float, 8> {
  using value_type = float;
  static constexpr int width = 8;

  __m256 v;

  Vec() = default;
  explicit Vec(__m256 x) : v(x) {}

  static Vec load(const float* p) { return Vec(_mm256_load_ps(p)); }
  static Vec loadu(const float* p) { return Vec(_mm256_loadu_ps(p)); }
  static Vec broadcast(float s) { return Vec(_mm256_set1_ps(s)); }
  static Vec zero() { return Vec(_mm256_setzero_ps()); }

  void store(float* p) const { _mm256_store_ps(p, v); }
  void storeu(float* p) const { _mm256_storeu_ps(p, v); }

  /// Non-temporal aligned store (see the primary template's contract).
  void stream(float* p) const { _mm256_stream_ps(p, v); }

  /// Stores only the lanes whose bit is set in @p mask (bit i = lane i).
  void store_mask(float* p, unsigned mask) const {
    const __m256i m = _mm256_setr_epi32(
        mask & 1u ? -1 : 0, mask & 2u ? -1 : 0, mask & 4u ? -1 : 0,
        mask & 8u ? -1 : 0, mask & 16u ? -1 : 0, mask & 32u ? -1 : 0,
        mask & 64u ? -1 : 0, mask & 128u ? -1 : 0);
    _mm256_maskstore_ps(p, m, v);
  }

  float operator[](int i) const {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v);
    return tmp[i];
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm256_add_ps(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm256_sub_ps(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm256_mul_ps(a.v, b.v)); }
};

inline Vec<float, 8> fma(Vec<float, 8> a, Vec<float, 8> b, Vec<float, 8> c) {
  return Vec<float, 8>(_mm256_fmadd_ps(a.v, b.v, c.v));
}

}  // namespace tsv
