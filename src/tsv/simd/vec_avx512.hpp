#pragma once
// AVX-512 specializations: 512-bit vectors of 8 doubles or 16 floats.
// Included by tsv/simd/vec.hpp; do not include directly.

#include <immintrin.h>

namespace tsv {

template <typename T, int W>
struct Vec;

template <>
struct Vec<double, 8> {
  using value_type = double;
  static constexpr int width = 8;

  __m512d v;

  Vec() = default;
  explicit Vec(__m512d x) : v(x) {}

  static Vec load(const double* p) { return Vec(_mm512_load_pd(p)); }
  static Vec loadu(const double* p) { return Vec(_mm512_loadu_pd(p)); }
  static Vec broadcast(double s) { return Vec(_mm512_set1_pd(s)); }
  static Vec zero() { return Vec(_mm512_setzero_pd()); }

  void store(double* p) const { _mm512_store_pd(p, v); }
  void storeu(double* p) const { _mm512_storeu_pd(p, v); }

  /// Non-temporal aligned store (see the primary template's contract).
  void stream(double* p) const { _mm512_stream_pd(p, v); }

  /// Stores only the lanes whose bit is set in @p mask (bit i = lane i).
  void store_mask(double* p, unsigned mask) const {
    _mm512_mask_store_pd(p, static_cast<__mmask8>(mask), v);
  }

  double operator[](int i) const {
    alignas(64) double tmp[8];
    _mm512_store_pd(tmp, v);
    return tmp[i];
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm512_add_pd(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm512_sub_pd(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm512_mul_pd(a.v, b.v)); }
};

inline Vec<double, 8> fma(Vec<double, 8> a, Vec<double, 8> b,
                          Vec<double, 8> c) {
  return Vec<double, 8>(_mm512_fmadd_pd(a.v, b.v, c.v));
}

template <>
struct Vec<float, 16> {
  using value_type = float;
  static constexpr int width = 16;

  __m512 v;

  Vec() = default;
  explicit Vec(__m512 x) : v(x) {}

  static Vec load(const float* p) { return Vec(_mm512_load_ps(p)); }
  static Vec loadu(const float* p) { return Vec(_mm512_loadu_ps(p)); }
  static Vec broadcast(float s) { return Vec(_mm512_set1_ps(s)); }
  static Vec zero() { return Vec(_mm512_setzero_ps()); }

  void store(float* p) const { _mm512_store_ps(p, v); }
  void storeu(float* p) const { _mm512_storeu_ps(p, v); }

  /// Non-temporal aligned store (see the primary template's contract).
  void stream(float* p) const { _mm512_stream_ps(p, v); }

  /// Stores only the lanes whose bit is set in @p mask (bit i = lane i).
  void store_mask(float* p, unsigned mask) const {
    _mm512_mask_store_ps(p, static_cast<__mmask16>(mask), v);
  }

  float operator[](int i) const {
    alignas(64) float tmp[16];
    _mm512_store_ps(tmp, v);
    return tmp[i];
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm512_add_ps(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm512_sub_ps(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm512_mul_ps(a.v, b.v)); }
};

inline Vec<float, 16> fma(Vec<float, 16> a, Vec<float, 16> b,
                          Vec<float, 16> c) {
  return Vec<float, 16>(_mm512_fmadd_ps(a.v, b.v, c.v));
}

}  // namespace tsv
