#pragma once
// Fixed-width SIMD value wrapper.
//
// The primary template is plain portable C++ (arrays + loops) that the
// compiler may auto-vectorize; it exists so every algorithm in the library can
// be unit-tested for arbitrary element types and widths. Specializations for
// the two ISAs the paper evaluates — AVX2 (double x 4 / float x 8) and
// AVX-512 (double x 8 / float x 16) — are included at the bottom of this
// header and are bit-compatible drop-ins.

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "tsv/common/aligned.hpp"

namespace tsv {

/// Orders all pending non-temporal (streaming) stores before subsequent
/// stores become globally visible. Call once at the end of a streamed
/// region, before any other thread may read it. No-op without SSE2.
inline void stream_fence() {
#if defined(__SSE2__)
  _mm_sfence();
#endif
}

template <typename T, int W>
struct Vec {
  static_assert(W >= 1, "vector width must be positive");
  using value_type = T;
  static constexpr int width = W;

  T lane[W];

  static Vec load(const T* p) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = p[i];
    return v;
  }
  static Vec loadu(const T* p) { return load(p); }
  static Vec broadcast(T s) {
    Vec v;
    for (int i = 0; i < W; ++i) v.lane[i] = s;
    return v;
  }
  static Vec zero() { return broadcast(T(0)); }

  void store(T* p) const {
    for (int i = 0; i < W; ++i) p[i] = lane[i];
  }
  void storeu(T* p) const { store(p); }

  /// Non-temporal (cache-bypassing) aligned store where the ISA provides
  /// one; the portable fallback is a plain store. Callers must end a
  /// streamed region with stream_fence().
  void stream(T* p) const { store(p); }

  /// Stores only the lanes whose bit is set in @p mask (bit i = lane i).
  void store_mask(T* p, unsigned mask) const {
    for (int i = 0; i < W; ++i)
      if (mask & (1u << i)) p[i] = lane[i];
  }

  T operator[](int i) const { return lane[i]; }

  friend Vec operator+(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend Vec operator-(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend Vec operator*(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
};

/// r = a*b + c with a single rounding where the ISA provides FMA.
template <typename T, int W>
inline Vec<T, W> fma(Vec<T, W> a, Vec<T, W> b, Vec<T, W> c) {
  Vec<T, W> r;
  for (int i = 0; i < W; ++i) r.lane[i] = a.lane[i] * b.lane[i] + c.lane[i];
  return r;
}

/// Comma-free aliases (usable as single macro arguments).
using VecD2 = Vec<double, 2>;
using VecD4 = Vec<double, 4>;
using VecD8 = Vec<double, 8>;
using VecF4 = Vec<float, 4>;
using VecF8 = Vec<float, 8>;
using VecF16 = Vec<float, 16>;

}  // namespace tsv

#if defined(__AVX2__)
#include "tsv/simd/vec_avx2.hpp"  // IWYU pragma: keep
#endif
#if defined(__AVX512F__)
#include "tsv/simd/vec_avx512.hpp"  // IWYU pragma: keep
#endif
