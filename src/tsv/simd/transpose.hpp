#pragma once
// In-register W x W matrix transpose (paper §3.5).
//
// The paper's observation: the information-theoretic lower bound is
// W·log2(W) shuffles, but *which* shuffles come first matters. Lane-crossing
// instructions (vperm2f128 / vshuff64x2) have 3-cycle latency while in-lane
// unpacks are single-cycle, so issuing the lane-crossing stage first lets its
// latency overlap the dependent single-cycle stage ("improved" schedule,
// Fig. 6). The conventional schedule (unpack first, lane-crossing last —
// Hormati-style) leaves the long-latency instructions exposed at the end;
// the paper measures ~25% overhead for it. Both schedules are provided so
// bench/ablation_transpose can reproduce the comparison.
//
// transpose(v): v[j] becomes the j-th column of the input matrix whose rows
// were v[0..W-1]; i.e. out[j].lane[i] = in[i].lane[j].

#include "tsv/simd/vec.hpp"

namespace tsv {

/// Portable transpose for any width (reference semantics for the tests).
template <typename T, int W>
inline void transpose(Vec<T, W> (&v)[W]) {
  T m[W][W];
  for (int i = 0; i < W; ++i)
    for (int j = 0; j < W; ++j) m[i][j] = v[i].lane[j];
  for (int j = 0; j < W; ++j)
    for (int i = 0; i < W; ++i) v[j].lane[i] = m[i][j];
}

template <typename T, int W>
inline void transpose_baseline(Vec<T, W> (&v)[W]) {
  transpose(v);
}

#if defined(__AVX2__)
/// Improved schedule (paper Fig. 6): lane-crossing vperm2f128 stage first,
/// single-cycle unpacks second. 8 shuffles total = 4·log2(4).
inline void transpose(Vec<double, 4> (&v)[4]) {
  const __m256d p0 = _mm256_permute2f128_pd(v[0].v, v[2].v, 0x20);  // a0 a1 c0 c1
  const __m256d p1 = _mm256_permute2f128_pd(v[1].v, v[3].v, 0x20);  // b0 b1 d0 d1
  const __m256d p2 = _mm256_permute2f128_pd(v[0].v, v[2].v, 0x31);  // a2 a3 c2 c3
  const __m256d p3 = _mm256_permute2f128_pd(v[1].v, v[3].v, 0x31);  // b2 b3 d2 d3
  v[0].v = _mm256_unpacklo_pd(p0, p1);  // a0 b0 c0 d0
  v[1].v = _mm256_unpackhi_pd(p0, p1);  // a1 b1 c1 d1
  v[2].v = _mm256_unpacklo_pd(p2, p3);  // a2 b2 c2 d2
  v[3].v = _mm256_unpackhi_pd(p2, p3);  // a3 b3 c3 d3
}

/// Conventional schedule: in-lane unpacks first, lane-crossing last. Same 8
/// shuffles, but the two 3-cycle vperm2f128 chains end the dependency graph.
inline void transpose_baseline(Vec<double, 4> (&v)[4]) {
  const __m256d u0 = _mm256_unpacklo_pd(v[0].v, v[1].v);  // a0 b0 a2 b2
  const __m256d u1 = _mm256_unpackhi_pd(v[0].v, v[1].v);  // a1 b1 a3 b3
  const __m256d u2 = _mm256_unpacklo_pd(v[2].v, v[3].v);  // c0 d0 c2 d2
  const __m256d u3 = _mm256_unpackhi_pd(v[2].v, v[3].v);  // c1 d1 c3 d3
  v[0].v = _mm256_permute2f128_pd(u0, u2, 0x20);  // a0 b0 c0 d0
  v[1].v = _mm256_permute2f128_pd(u1, u3, 0x20);  // a1 b1 c1 d1
  v[2].v = _mm256_permute2f128_pd(u0, u2, 0x31);  // a2 b2 c2 d2
  v[3].v = _mm256_permute2f128_pd(u1, u3, 0x31);  // a3 b3 c3 d3
}
/// 8x8 float transpose, improved schedule: the eight 3-cycle vperm2f128
/// lane-crossing shuffles are issued first, the single-cycle unpack/shuffle
/// stages second. 24 shuffles total = 8·log2(8).
inline void transpose(Vec<float, 8> (&v)[8]) {
  // Stage 1 (lane-crossing): pair the 128-bit halves of rows i and i+4, so
  // every later stage is in-lane. p0..p3 carry columns 0-3, p4..p7 columns
  // 4-7; lane 1 of each holds rows 4-7.
  const __m256 p0 = _mm256_permute2f128_ps(v[0].v, v[4].v, 0x20);
  const __m256 p1 = _mm256_permute2f128_ps(v[1].v, v[5].v, 0x20);
  const __m256 p2 = _mm256_permute2f128_ps(v[2].v, v[6].v, 0x20);
  const __m256 p3 = _mm256_permute2f128_ps(v[3].v, v[7].v, 0x20);
  const __m256 p4 = _mm256_permute2f128_ps(v[0].v, v[4].v, 0x31);
  const __m256 p5 = _mm256_permute2f128_ps(v[1].v, v[5].v, 0x31);
  const __m256 p6 = _mm256_permute2f128_ps(v[2].v, v[6].v, 0x31);
  const __m256 p7 = _mm256_permute2f128_ps(v[3].v, v[7].v, 0x31);
  // Stage 2+3 (in-lane): 4x4 transpose of each 128-bit lane.
  const __m256 t0 = _mm256_unpacklo_ps(p0, p1);
  const __m256 t1 = _mm256_unpackhi_ps(p0, p1);
  const __m256 t2 = _mm256_unpacklo_ps(p2, p3);
  const __m256 t3 = _mm256_unpackhi_ps(p2, p3);
  const __m256 t4 = _mm256_unpacklo_ps(p4, p5);
  const __m256 t5 = _mm256_unpackhi_ps(p4, p5);
  const __m256 t6 = _mm256_unpacklo_ps(p6, p7);
  const __m256 t7 = _mm256_unpackhi_ps(p6, p7);
  v[0].v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  v[1].v = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  v[2].v = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  v[3].v = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  v[4].v = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  v[5].v = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  v[6].v = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  v[7].v = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
}

/// Conventional schedule: in-lane unpack/shuffle first, the lane-crossing
/// vperm2f128 chain exposed at the end (the comparator in ablation_transpose).
inline void transpose_baseline(Vec<float, 8> (&v)[8]) {
  const __m256 t0 = _mm256_unpacklo_ps(v[0].v, v[1].v);
  const __m256 t1 = _mm256_unpackhi_ps(v[0].v, v[1].v);
  const __m256 t2 = _mm256_unpacklo_ps(v[2].v, v[3].v);
  const __m256 t3 = _mm256_unpackhi_ps(v[2].v, v[3].v);
  const __m256 t4 = _mm256_unpacklo_ps(v[4].v, v[5].v);
  const __m256 t5 = _mm256_unpackhi_ps(v[4].v, v[5].v);
  const __m256 t6 = _mm256_unpacklo_ps(v[6].v, v[7].v);
  const __m256 t7 = _mm256_unpackhi_ps(v[6].v, v[7].v);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
  v[0].v = _mm256_permute2f128_ps(u0, u4, 0x20);
  v[1].v = _mm256_permute2f128_ps(u1, u5, 0x20);
  v[2].v = _mm256_permute2f128_ps(u2, u6, 0x20);
  v[3].v = _mm256_permute2f128_ps(u3, u7, 0x20);
  v[4].v = _mm256_permute2f128_ps(u0, u4, 0x31);
  v[5].v = _mm256_permute2f128_ps(u1, u5, 0x31);
  v[6].v = _mm256_permute2f128_ps(u2, u6, 0x31);
  v[7].v = _mm256_permute2f128_ps(u3, u7, 0x31);
}
#endif  // __AVX2__

#if defined(__AVX512F__)
/// Three-stage 8x8 transpose: 24 shuffles = 8·log2(8). The single-cycle
/// in-lane unpacks are issued first; the two vshuff64x2 (lane-crossing)
/// stages follow, each of whose latency overlaps the other's throughput.
inline void transpose(Vec<double, 8> (&v)[8]) {
  // Stage 1: pair rows within 128-bit lanes.
  const __m512d t0 = _mm512_unpacklo_pd(v[0].v, v[1].v);
  const __m512d t1 = _mm512_unpackhi_pd(v[0].v, v[1].v);
  const __m512d t2 = _mm512_unpacklo_pd(v[2].v, v[3].v);
  const __m512d t3 = _mm512_unpackhi_pd(v[2].v, v[3].v);
  const __m512d t4 = _mm512_unpacklo_pd(v[4].v, v[5].v);
  const __m512d t5 = _mm512_unpackhi_pd(v[4].v, v[5].v);
  const __m512d t6 = _mm512_unpacklo_pd(v[6].v, v[7].v);
  const __m512d t7 = _mm512_unpackhi_pd(v[6].v, v[7].v);
  // Stage 2: gather column pairs {c, c+4} for row quads.
  const __m512d m0 = _mm512_shuffle_f64x2(t0, t2, 0x88);  // cols {0,4} rows 0-3
  const __m512d m1 = _mm512_shuffle_f64x2(t4, t6, 0x88);  // cols {0,4} rows 4-7
  const __m512d m2 = _mm512_shuffle_f64x2(t1, t3, 0x88);  // cols {1,5} rows 0-3
  const __m512d m3 = _mm512_shuffle_f64x2(t5, t7, 0x88);  // cols {1,5} rows 4-7
  const __m512d m4 = _mm512_shuffle_f64x2(t0, t2, 0xDD);  // cols {2,6} rows 0-3
  const __m512d m5 = _mm512_shuffle_f64x2(t4, t6, 0xDD);  // cols {2,6} rows 4-7
  const __m512d m6 = _mm512_shuffle_f64x2(t1, t3, 0xDD);  // cols {3,7} rows 0-3
  const __m512d m7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);  // cols {3,7} rows 4-7
  // Stage 3: splice row quads into full columns.
  v[0].v = _mm512_shuffle_f64x2(m0, m1, 0x88);
  v[4].v = _mm512_shuffle_f64x2(m0, m1, 0xDD);
  v[1].v = _mm512_shuffle_f64x2(m2, m3, 0x88);
  v[5].v = _mm512_shuffle_f64x2(m2, m3, 0xDD);
  v[2].v = _mm512_shuffle_f64x2(m4, m5, 0x88);
  v[6].v = _mm512_shuffle_f64x2(m4, m5, 0xDD);
  v[3].v = _mm512_shuffle_f64x2(m6, m7, 0x88);
  v[7].v = _mm512_shuffle_f64x2(m6, m7, 0xDD);
}

/// Alternative AVX-512 schedule built from four 4x4 sub-transposes via
/// 256-bit extract/insert — more instructions, all lane-crossing; serves as
/// the unoptimized comparator in bench/ablation_transpose.
inline void transpose_baseline(Vec<double, 8> (&v)[8]) {
  Vec<double, 4> lo[4], hi[4], lo2[4], hi2[4];
  for (int i = 0; i < 4; ++i) {
    lo[i].v = _mm512_castpd512_pd256(v[i].v);
    hi[i].v = _mm512_extractf64x4_pd(v[i].v, 1);
    lo2[i].v = _mm512_castpd512_pd256(v[i + 4].v);
    hi2[i].v = _mm512_extractf64x4_pd(v[i + 4].v, 1);
  }
  transpose_baseline(lo);   // block (rows 0-3, cols 0-3)
  transpose_baseline(hi);   // block (rows 0-3, cols 4-7)
  transpose_baseline(lo2);  // block (rows 4-7, cols 0-3)
  transpose_baseline(hi2);  // block (rows 4-7, cols 4-7)
  for (int i = 0; i < 4; ++i) {
    v[i].v = _mm512_insertf64x4(_mm512_castpd256_pd512(lo[i].v), lo2[i].v, 1);
    v[i + 4].v =
        _mm512_insertf64x4(_mm512_castpd256_pd512(hi[i].v), hi2[i].v, 1);
  }
}

/// 16x16 float transpose, same three-phase structure as the 8x8 double
/// version: single-cycle in-lane unpack/shuffle stages first (they transpose
/// every 4x4 sub-block within its 128-bit lane), then two overlapping
/// vshuff32x4 lane-crossing stages that transpose the 4x4 grid of lanes.
/// 64 shuffles total = 16·log2(16).
inline void transpose(Vec<float, 16> (&v)[16]) {
  __m512 u[16];
  for (int g = 0; g < 4; ++g) {  // rows 4g..4g+3
    const __m512 t0 = _mm512_unpacklo_ps(v[4 * g + 0].v, v[4 * g + 1].v);
    const __m512 t1 = _mm512_unpackhi_ps(v[4 * g + 0].v, v[4 * g + 1].v);
    const __m512 t2 = _mm512_unpacklo_ps(v[4 * g + 2].v, v[4 * g + 3].v);
    const __m512 t3 = _mm512_unpackhi_ps(v[4 * g + 2].v, v[4 * g + 3].v);
    // u[4g + c], 128-bit lane J = column 4J + c of rows 4g..4g+3.
    u[4 * g + 0] = _mm512_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    u[4 * g + 1] = _mm512_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    u[4 * g + 2] = _mm512_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    u[4 * g + 3] = _mm512_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
  }
  for (int c = 0; c < 4; ++c) {
    // Lane-level 4x4 transpose: out[4J + c].lane I = u[4I + c].lane J.
    const __m512 m0 = _mm512_shuffle_f32x4(u[c], u[4 + c], 0x88);
    const __m512 m1 = _mm512_shuffle_f32x4(u[8 + c], u[12 + c], 0x88);
    const __m512 m2 = _mm512_shuffle_f32x4(u[c], u[4 + c], 0xDD);
    const __m512 m3 = _mm512_shuffle_f32x4(u[8 + c], u[12 + c], 0xDD);
    v[c].v = _mm512_shuffle_f32x4(m0, m1, 0x88);
    v[8 + c].v = _mm512_shuffle_f32x4(m0, m1, 0xDD);
    v[4 + c].v = _mm512_shuffle_f32x4(m2, m3, 0x88);
    v[12 + c].v = _mm512_shuffle_f32x4(m2, m3, 0xDD);
  }
}

#if defined(__AVX2__)
/// Unoptimized comparator: four 8x8 sub-transposes via 256-bit
/// extract/insert, mirroring the double-precision baseline.
inline void transpose_baseline(Vec<float, 16> (&v)[16]) {
  auto lo_half = [](__m512 x) { return _mm512_castps512_ps256(x); };
  auto hi_half = [](__m512 x) {
    return _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(x), 1));
  };
  Vec<float, 8> lo[8], hi[8], lo2[8], hi2[8];
  for (int i = 0; i < 8; ++i) {
    lo[i].v = lo_half(v[i].v);
    hi[i].v = hi_half(v[i].v);
    lo2[i].v = lo_half(v[i + 8].v);
    hi2[i].v = hi_half(v[i + 8].v);
  }
  transpose_baseline(lo);   // block (rows 0-7, cols 0-7)
  transpose_baseline(hi);   // block (rows 0-7, cols 8-15)
  transpose_baseline(lo2);  // block (rows 8-15, cols 0-7)
  transpose_baseline(hi2);  // block (rows 8-15, cols 8-15)
  auto join = [](__m256 l, __m256 h) {
    return _mm512_castpd_ps(_mm512_insertf64x4(
        _mm512_castps_pd(_mm512_castps256_ps512(l)), _mm256_castps_pd(h), 1));
  };
  for (int i = 0; i < 8; ++i) {
    v[i].v = join(lo[i].v, lo2[i].v);
    v[i + 8].v = join(hi[i].v, hi2[i].v);
  }
}
#else
inline void transpose_baseline(Vec<float, 16> (&v)[16]) { transpose(v); }
#endif
#endif  // __AVX512F__

/// Transposes one W*W-element block in place. @p p must be 64-byte aligned.
template <typename T, int W>
inline void transpose_block_inplace(T* p) {
  Vec<T, W> v[W];
  for (int j = 0; j < W; ++j) v[j] = Vec<T, W>::load(p + j * W);
  transpose(v);
  for (int j = 0; j < W; ++j) v[j].store(p + j * W);
}

/// Transposes one W*W-element block from @p src into @p dst (both aligned).
template <typename T, int W>
inline void transpose_block(const T* src, T* dst) {
  Vec<T, W> v[W];
  for (int j = 0; j < W; ++j) v[j] = Vec<T, W>::load(src + j * W);
  transpose(v);
  for (int j = 0; j < W; ++j) v[j].store(dst + j * W);
}

}  // namespace tsv
