#pragma once
// In-register W x W matrix transpose (paper §3.5).
//
// The paper's observation: the information-theoretic lower bound is
// W·log2(W) shuffles, but *which* shuffles come first matters. Lane-crossing
// instructions (vperm2f128 / vshuff64x2) have 3-cycle latency while in-lane
// unpacks are single-cycle, so issuing the lane-crossing stage first lets its
// latency overlap the dependent single-cycle stage ("improved" schedule,
// Fig. 6). The conventional schedule (unpack first, lane-crossing last —
// Hormati-style) leaves the long-latency instructions exposed at the end;
// the paper measures ~25% overhead for it. Both schedules are provided so
// bench/ablation_transpose can reproduce the comparison.
//
// transpose(v): v[j] becomes the j-th column of the input matrix whose rows
// were v[0..W-1]; i.e. out[j].lane[i] = in[i].lane[j].

#include "tsv/simd/vec.hpp"

namespace tsv {

/// Portable transpose for any width (reference semantics for the tests).
template <typename T, int W>
inline void transpose(Vec<T, W> (&v)[W]) {
  T m[W][W];
  for (int i = 0; i < W; ++i)
    for (int j = 0; j < W; ++j) m[i][j] = v[i].lane[j];
  for (int j = 0; j < W; ++j)
    for (int i = 0; i < W; ++i) v[j].lane[i] = m[i][j];
}

template <typename T, int W>
inline void transpose_baseline(Vec<T, W> (&v)[W]) {
  transpose(v);
}

#if defined(__AVX2__)
/// Improved schedule (paper Fig. 6): lane-crossing vperm2f128 stage first,
/// single-cycle unpacks second. 8 shuffles total = 4·log2(4).
inline void transpose(Vec<double, 4> (&v)[4]) {
  const __m256d p0 = _mm256_permute2f128_pd(v[0].v, v[2].v, 0x20);  // a0 a1 c0 c1
  const __m256d p1 = _mm256_permute2f128_pd(v[1].v, v[3].v, 0x20);  // b0 b1 d0 d1
  const __m256d p2 = _mm256_permute2f128_pd(v[0].v, v[2].v, 0x31);  // a2 a3 c2 c3
  const __m256d p3 = _mm256_permute2f128_pd(v[1].v, v[3].v, 0x31);  // b2 b3 d2 d3
  v[0].v = _mm256_unpacklo_pd(p0, p1);  // a0 b0 c0 d0
  v[1].v = _mm256_unpackhi_pd(p0, p1);  // a1 b1 c1 d1
  v[2].v = _mm256_unpacklo_pd(p2, p3);  // a2 b2 c2 d2
  v[3].v = _mm256_unpackhi_pd(p2, p3);  // a3 b3 c3 d3
}

/// Conventional schedule: in-lane unpacks first, lane-crossing last. Same 8
/// shuffles, but the two 3-cycle vperm2f128 chains end the dependency graph.
inline void transpose_baseline(Vec<double, 4> (&v)[4]) {
  const __m256d u0 = _mm256_unpacklo_pd(v[0].v, v[1].v);  // a0 b0 a2 b2
  const __m256d u1 = _mm256_unpackhi_pd(v[0].v, v[1].v);  // a1 b1 a3 b3
  const __m256d u2 = _mm256_unpacklo_pd(v[2].v, v[3].v);  // c0 d0 c2 d2
  const __m256d u3 = _mm256_unpackhi_pd(v[2].v, v[3].v);  // c1 d1 c3 d3
  v[0].v = _mm256_permute2f128_pd(u0, u2, 0x20);  // a0 b0 c0 d0
  v[1].v = _mm256_permute2f128_pd(u1, u3, 0x20);  // a1 b1 c1 d1
  v[2].v = _mm256_permute2f128_pd(u0, u2, 0x31);  // a2 b2 c2 d2
  v[3].v = _mm256_permute2f128_pd(u1, u3, 0x31);  // a3 b3 c3 d3
}
#endif  // __AVX2__

#if defined(__AVX512F__)
/// Three-stage 8x8 transpose: 24 shuffles = 8·log2(8). The single-cycle
/// in-lane unpacks are issued first; the two vshuff64x2 (lane-crossing)
/// stages follow, each of whose latency overlaps the other's throughput.
inline void transpose(Vec<double, 8> (&v)[8]) {
  // Stage 1: pair rows within 128-bit lanes.
  const __m512d t0 = _mm512_unpacklo_pd(v[0].v, v[1].v);
  const __m512d t1 = _mm512_unpackhi_pd(v[0].v, v[1].v);
  const __m512d t2 = _mm512_unpacklo_pd(v[2].v, v[3].v);
  const __m512d t3 = _mm512_unpackhi_pd(v[2].v, v[3].v);
  const __m512d t4 = _mm512_unpacklo_pd(v[4].v, v[5].v);
  const __m512d t5 = _mm512_unpackhi_pd(v[4].v, v[5].v);
  const __m512d t6 = _mm512_unpacklo_pd(v[6].v, v[7].v);
  const __m512d t7 = _mm512_unpackhi_pd(v[6].v, v[7].v);
  // Stage 2: gather column pairs {c, c+4} for row quads.
  const __m512d m0 = _mm512_shuffle_f64x2(t0, t2, 0x88);  // cols {0,4} rows 0-3
  const __m512d m1 = _mm512_shuffle_f64x2(t4, t6, 0x88);  // cols {0,4} rows 4-7
  const __m512d m2 = _mm512_shuffle_f64x2(t1, t3, 0x88);  // cols {1,5} rows 0-3
  const __m512d m3 = _mm512_shuffle_f64x2(t5, t7, 0x88);  // cols {1,5} rows 4-7
  const __m512d m4 = _mm512_shuffle_f64x2(t0, t2, 0xDD);  // cols {2,6} rows 0-3
  const __m512d m5 = _mm512_shuffle_f64x2(t4, t6, 0xDD);  // cols {2,6} rows 4-7
  const __m512d m6 = _mm512_shuffle_f64x2(t1, t3, 0xDD);  // cols {3,7} rows 0-3
  const __m512d m7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);  // cols {3,7} rows 4-7
  // Stage 3: splice row quads into full columns.
  v[0].v = _mm512_shuffle_f64x2(m0, m1, 0x88);
  v[4].v = _mm512_shuffle_f64x2(m0, m1, 0xDD);
  v[1].v = _mm512_shuffle_f64x2(m2, m3, 0x88);
  v[5].v = _mm512_shuffle_f64x2(m2, m3, 0xDD);
  v[2].v = _mm512_shuffle_f64x2(m4, m5, 0x88);
  v[6].v = _mm512_shuffle_f64x2(m4, m5, 0xDD);
  v[3].v = _mm512_shuffle_f64x2(m6, m7, 0x88);
  v[7].v = _mm512_shuffle_f64x2(m6, m7, 0xDD);
}

/// Alternative AVX-512 schedule built from four 4x4 sub-transposes via
/// 256-bit extract/insert — more instructions, all lane-crossing; serves as
/// the unoptimized comparator in bench/ablation_transpose.
inline void transpose_baseline(Vec<double, 8> (&v)[8]) {
  Vec<double, 4> lo[4], hi[4], lo2[4], hi2[4];
  for (int i = 0; i < 4; ++i) {
    lo[i].v = _mm512_castpd512_pd256(v[i].v);
    hi[i].v = _mm512_extractf64x4_pd(v[i].v, 1);
    lo2[i].v = _mm512_castpd512_pd256(v[i + 4].v);
    hi2[i].v = _mm512_extractf64x4_pd(v[i + 4].v, 1);
  }
  transpose_baseline(lo);   // block (rows 0-3, cols 0-3)
  transpose_baseline(hi);   // block (rows 0-3, cols 4-7)
  transpose_baseline(lo2);  // block (rows 4-7, cols 0-3)
  transpose_baseline(hi2);  // block (rows 4-7, cols 4-7)
  for (int i = 0; i < 4; ++i) {
    v[i].v = _mm512_insertf64x4(_mm512_castpd256_pd512(lo[i].v), lo2[i].v, 1);
    v[i + 4].v =
        _mm512_insertf64x4(_mm512_castpd256_pd512(hi[i].v), hi2[i].v, 1);
  }
}
#endif  // __AVX512F__

/// Transposes one W*W-element block in place. @p p must be 64-byte aligned.
template <typename T, int W>
inline void transpose_block_inplace(T* p) {
  Vec<T, W> v[W];
  for (int j = 0; j < W; ++j) v[j] = Vec<T, W>::load(p + j * W);
  transpose(v);
  for (int j = 0; j < W; ++j) v[j].store(p + j * W);
}

/// Transposes one W*W-element block from @p src into @p dst (both aligned).
template <typename T, int W>
inline void transpose_block(const T* src, T* dst) {
  Vec<T, W> v[W];
  for (int j = 0; j < W; ++j) v[j] = Vec<T, W>::load(src + j * W);
  transpose(v);
  for (int j = 0; j < W; ++j) v[j].store(dst + j * W);
}

}  // namespace tsv
