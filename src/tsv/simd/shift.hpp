#pragma once
// Inter-vector lane-shift operations.
//
// concat_shift<S>(a, b) returns lanes (a[S..W-1], b[0..S-1]) — the window of
// width W starting S lanes into the concatenation a:b. It is the only data
// reorganization primitive the stencil kernels need:
//
//  * the paper's Assemble for the transpose layout (Fig. 3, Algorithm 1) is
//    assemble_left  = concat_shift<W-1>  (one blend + one permute on AVX2),
//    assemble_right = concat_shift<1>;
//  * the data-reorganization baseline uses general S in [1, W-1];
//  * DLT seam handling uses S = 1 and W-1 as well.

#include <utility>

#include "tsv/simd/vec.hpp"

namespace tsv {

namespace detail {
template <int S, typename T, int W>
inline Vec<T, W> concat_shift_generic(Vec<T, W> a, Vec<T, W> b) {
  static_assert(S >= 0 && S <= W, "shift amount out of range");
  Vec<T, W> r;
  for (int i = 0; i < W; ++i)
    r.lane[i] = (i + S < W) ? a.lane[i + S] : b.lane[i + S - W];
  return r;
}
}  // namespace detail

template <int S, typename T, int W>
inline Vec<T, W> concat_shift(Vec<T, W> a, Vec<T, W> b) {
  return detail::concat_shift_generic<S>(a, b);
}

#if defined(__AVX2__)
template <int S>
inline Vec<double, 4> concat_shift(Vec<double, 4> a, Vec<double, 4> b) {
  static_assert(S >= 0 && S <= 4, "shift amount out of range");
  if constexpr (S == 0) {
    return a;
  } else if constexpr (S == 4) {
    return b;
  } else if constexpr (S == 2) {
    return Vec<double, 4>(_mm256_permute2f128_pd(a.v, b.v, 0x21));
  } else if constexpr (S == 1) {
    const __m256d mid = _mm256_permute2f128_pd(a.v, b.v, 0x21);  // a2 a3 b0 b1
    return Vec<double, 4>(_mm256_shuffle_pd(a.v, mid, 0b0101));  // a1 a2 a3 b0
  } else {  // S == 3
    const __m256d mid = _mm256_permute2f128_pd(a.v, b.v, 0x21);  // a2 a3 b0 b1
    return Vec<double, 4>(_mm256_shuffle_pd(mid, b.v, 0b0101));  // a3 b0 b1 b2
  }
}
#endif

#if defined(__AVX2__)
template <int S>
inline Vec<float, 8> concat_shift(Vec<float, 8> a, Vec<float, 8> b) {
  static_assert(S >= 0 && S <= 8, "shift amount out of range");
  if constexpr (S == 0) {
    return a;
  } else if constexpr (S == 8) {
    return b;
  } else {
    // mid = (a_hi : b_lo); vpalignr then shifts within each 128-bit lane,
    // and pairing (mid, a) / (b, mid) makes those per-lane shifts line up
    // with the cross-register window: 2 instructions for any S.
    const __m256 mid = _mm256_permute2f128_ps(a.v, b.v, 0x21);
    if constexpr (S == 4) {
      return Vec<float, 8>(mid);
    } else if constexpr (S < 4) {
      return Vec<float, 8>(_mm256_castsi256_ps(_mm256_alignr_epi8(
          _mm256_castps_si256(mid), _mm256_castps_si256(a.v), 4 * S)));
    } else {  // S in (4, 8)
      return Vec<float, 8>(_mm256_castsi256_ps(_mm256_alignr_epi8(
          _mm256_castps_si256(b.v), _mm256_castps_si256(mid), 4 * (S - 4))));
    }
  }
}
#endif

#if defined(__AVX512F__)
template <int S>
inline Vec<double, 8> concat_shift(Vec<double, 8> a, Vec<double, 8> b) {
  static_assert(S >= 0 && S <= 8, "shift amount out of range");
  if constexpr (S == 0) {
    return a;
  } else if constexpr (S == 8) {
    return b;
  } else {
    // Single cross-lane instruction: (b:a) >> S qwords.
    return Vec<double, 8>(_mm512_castsi512_pd(_mm512_alignr_epi64(
        _mm512_castpd_si512(b.v), _mm512_castpd_si512(a.v), S)));
  }
}

template <int S>
inline Vec<float, 16> concat_shift(Vec<float, 16> a, Vec<float, 16> b) {
  static_assert(S >= 0 && S <= 16, "shift amount out of range");
  if constexpr (S == 0) {
    return a;
  } else if constexpr (S == 16) {
    return b;
  } else {
    // Single cross-lane instruction: (b:a) >> S dwords.
    return Vec<float, 16>(_mm512_castsi512_ps(_mm512_alignr_epi32(
        _mm512_castps_si512(b.v), _mm512_castps_si512(a.v), S)));
  }
}
#endif

/// Paper Fig. 3 / Algorithm 1 "Assemble": left dependent vector.
/// Returns (prev[W-1], cur[0], ..., cur[W-2]). Only lane W-1 of @p prev is
/// consumed, which is what allows boundary code to pass a broadcast instead.
///
/// On AVX2 this is implemented exactly as the paper describes — one
/// _mm256_blend_pd followed by one _mm256_permute4x64_pd.
template <typename T, int W>
inline Vec<T, W> assemble_left(Vec<T, W> prev, Vec<T, W> cur) {
  return concat_shift<W - 1>(prev, cur);
}

/// Right dependent vector: (cur[1], ..., cur[W-1], next[0]). Only lane 0 of
/// @p next is consumed.
template <typename T, int W>
inline Vec<T, W> assemble_right(Vec<T, W> cur, Vec<T, W> next) {
  return concat_shift<1>(cur, next);
}

#if defined(__AVX2__)
inline Vec<double, 4> assemble_left(Vec<double, 4> prev, Vec<double, 4> cur) {
  // (cur0 cur1 cur2 prev3) then rotate right one lane -> (prev3 cur0 cur1 cur2)
  const __m256d blended = _mm256_blend_pd(cur.v, prev.v, 0b1000);
  return Vec<double, 4>(_mm256_permute4x64_pd(blended, 0x93));
}

inline Vec<double, 4> assemble_right(Vec<double, 4> cur, Vec<double, 4> next) {
  // (next0 cur1 cur2 cur3) then rotate left one lane -> (cur1 cur2 cur3 next0)
  const __m256d blended = _mm256_blend_pd(cur.v, next.v, 0b0001);
  return Vec<double, 4>(_mm256_permute4x64_pd(blended, 0x39));
}
#endif

#if defined(__AVX512F__)
inline Vec<double, 8> assemble_left(Vec<double, 8> prev, Vec<double, 8> cur) {
  return concat_shift<7>(prev, cur);
}
inline Vec<double, 8> assemble_right(Vec<double, 8> cur, Vec<double, 8> next) {
  return concat_shift<1>(cur, next);
}
#endif

/// Runtime-S dispatcher (used by generic-radius code paths; S in [0, W]).
/// One fold over the compile-time shift ladder, so every width — including
/// the 16-lane float vectors — dispatches to its specialized shuffles.
template <typename T, int W>
inline Vec<T, W> concat_shift_rt(Vec<T, W> a, Vec<T, W> b, int s) {
  Vec<T, W> r = a;
  [&]<int... S>(std::integer_sequence<int, S...>) {
    (void)((s == S ? (r = concat_shift<S>(a, b), true) : false) || ...);
  }(std::make_integer_sequence<int, W + 1>{});
  return r;
}

}  // namespace tsv
