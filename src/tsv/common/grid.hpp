#pragma once
// Row-major grid containers with symmetric halos.
//
// Layout guarantees relied upon by the SIMD kernels:
//  * the first interior element of every unit-stride row is 64-byte aligned;
//  * the x stride between consecutive rows/planes is a multiple of the widest
//    vector length, so aligned row kernels stay aligned on every row.
//
// Halo semantics: halo cells carry the boundary condition. By default
// (Boundary::kDirichlet) they hold user-supplied fixed values the stencil
// drivers never write, so they are constant in time; the other conditions
// (zero, periodic wrap, Neumann mirror) are realized by the plan layer
// writing these same cells via core/halo.hpp — the kernels are identical.

#include <algorithm>
#include <cmath>
#include <functional>

#include "tsv/common/aligned.hpp"
#include "tsv/common/check.hpp"

namespace tsv {

namespace detail {
template <typename T>
constexpr index align_elems() {
  return static_cast<index>(kAlignment / sizeof(T));
}
}  // namespace detail

/// One-dimensional grid: interior x in [0, nx), halo x in [-halo, 0) and
/// [nx, nx+halo).
template <typename T>
class Grid1D {
 public:
  using value_type = T;
  static constexpr int kRank = 1;

  Grid1D(index nx, index halo, FirstTouch ft = FirstTouch::kSerial)
      : nx_(nx), halo_(halo) {
    require(nx > 0 && halo >= 0, "Grid1D: need nx > 0, halo >= 0");
    lead_ = round_up(std::max<index>(halo, 1), detail::align_elems<T>());
    buf_ = AlignedBuffer<T>(lead_ + nx + lead_, ft);
  }

  index nx() const { return nx_; }
  index halo() const { return halo_; }

  /// Pointer to x = 0 (64-byte aligned).
  T* x0() { return buf_.data() + lead_; }
  const T* x0() const { return buf_.data() + lead_; }

  T& at(index x) { return x0()[x]; }
  const T& at(index x) const { return x0()[x]; }

  /// Applies f(x) to every cell including halo.
  template <typename F>
  void fill(F&& f) {
    for (index x = -halo_; x < nx_ + halo_; ++x) at(x) = f(x);
  }

  /// Copies halo cells (both sides) from @p other.
  void copy_halo_from(const Grid1D& other) {
    for (index x = -halo_; x < 0; ++x) at(x) = other.at(x);
    for (index x = nx_; x < nx_ + halo_; ++x) at(x) = other.at(x);
  }

  /// Zeroes every cell (interior and halo) on the calling thread.
  void zero() { buf_.zero(); }
  /// Zeroes every cell under an OpenMP static team (NUMA first touch).
  void zero_parallel() { buf_.zero_parallel(); }

  /// O(1) exchange of storage with a same-shaped grid (Jacobi buffer swap).
  void swap_storage(Grid1D& other) {
    require(nx_ == other.nx_ && halo_ == other.halo_,
            "swap_storage: shape mismatch");
    buf_.swap(other.buf_);
  }

 private:
  index nx_, halo_, lead_;
  AlignedBuffer<T> buf_;
};

/// Two-dimensional grid, row-major, x unit-stride.
template <typename T>
class Grid2D {
 public:
  using value_type = T;
  static constexpr int kRank = 2;

  Grid2D(index nx, index ny, index halo, FirstTouch ft = FirstTouch::kSerial)
      : nx_(nx), ny_(ny), halo_(halo) {
    require(nx > 0 && ny > 0 && halo >= 0, "Grid2D: bad extents");
    lead_ = round_up(std::max<index>(halo, 1), detail::align_elems<T>());
    stride_ = lead_ + round_up(nx + std::max<index>(halo, 1),
                               detail::align_elems<T>());
    buf_ = AlignedBuffer<T>(stride_ * (ny + 2 * halo_) + lead_, ft);
  }

  index nx() const { return nx_; }
  index ny() const { return ny_; }
  index halo() const { return halo_; }
  /// Distance in elements between (x, y) and (x, y+1).
  index row_stride() const { return stride_; }

  /// Pointer to (0, y); y in [-halo, ny+halo). 64-byte aligned.
  T* row(index y) { return buf_.data() + lead_ + (y + halo_) * stride_; }
  const T* row(index y) const {
    return buf_.data() + lead_ + (y + halo_) * stride_;
  }

  T& at(index x, index y) { return row(y)[x]; }
  const T& at(index x, index y) const { return row(y)[x]; }

  template <typename F>
  void fill(F&& f) {
    for (index y = -halo_; y < ny_ + halo_; ++y)
      for (index x = -halo_; x < nx_ + halo_; ++x) at(x, y) = f(x, y);
  }

  /// Copies every halo cell from @p other. Halo-only rows are copied with
  /// one memcpy per row; interior rows copy just their two x-halo segments —
  /// this runs once per Plan::execute to refresh reusable workspace buffers,
  /// so it must cost O(halo), not O(interior).
  void copy_halo_from(const Grid2D& other) {
    const std::size_t row_bytes =
        static_cast<std::size_t>(nx_ + 2 * halo_) * sizeof(T);
    const std::size_t side_bytes = static_cast<std::size_t>(halo_) * sizeof(T);
    for (index y = -halo_; y < ny_ + halo_; ++y) {
      if (y < 0 || y >= ny_) {
        std::memcpy(row(y) - halo_, other.row(y) - halo_, row_bytes);
      } else if (halo_ > 0) {
        std::memcpy(row(y) - halo_, other.row(y) - halo_, side_bytes);
        std::memcpy(row(y) + nx_, other.row(y) + nx_, side_bytes);
      }
    }
  }

  /// Zeroes every cell (interior and halo) on the calling thread.
  void zero() { buf_.zero(); }
  /// Zeroes every cell under an OpenMP static team (NUMA first touch).
  void zero_parallel() { buf_.zero_parallel(); }

  /// O(1) exchange of storage with a same-shaped grid (Jacobi buffer swap).
  void swap_storage(Grid2D& other) {
    require(nx_ == other.nx_ && ny_ == other.ny_ && halo_ == other.halo_,
            "swap_storage: shape mismatch");
    buf_.swap(other.buf_);
  }

 private:
  index nx_, ny_, halo_, lead_, stride_;
  AlignedBuffer<T> buf_;
};

/// Three-dimensional grid, x unit-stride, then y, then z.
template <typename T>
class Grid3D {
 public:
  using value_type = T;
  static constexpr int kRank = 3;

  Grid3D(index nx, index ny, index nz, index halo,
         FirstTouch ft = FirstTouch::kSerial)
      : nx_(nx), ny_(ny), nz_(nz), halo_(halo) {
    require(nx > 0 && ny > 0 && nz > 0 && halo >= 0, "Grid3D: bad extents");
    lead_ = round_up(std::max<index>(halo, 1), detail::align_elems<T>());
    stride_ = lead_ + round_up(nx + std::max<index>(halo, 1),
                               detail::align_elems<T>());
    plane_ = stride_ * (ny + 2 * halo_);
    buf_ = AlignedBuffer<T>(plane_ * (nz + 2 * halo_) + lead_, ft);
  }

  index nx() const { return nx_; }
  index ny() const { return ny_; }
  index nz() const { return nz_; }
  index halo() const { return halo_; }
  index row_stride() const { return stride_; }
  index plane_stride() const { return plane_; }

  /// Pointer to (0, y, z). 64-byte aligned.
  T* row(index y, index z) {
    return buf_.data() + lead_ + (z + halo_) * plane_ + (y + halo_) * stride_;
  }
  const T* row(index y, index z) const {
    return buf_.data() + lead_ + (z + halo_) * plane_ + (y + halo_) * stride_;
  }

  T& at(index x, index y, index z) { return row(y, z)[x]; }
  const T& at(index x, index y, index z) const { return row(y, z)[x]; }

  template <typename F>
  void fill(F&& f) {
    for (index z = -halo_; z < nz_ + halo_; ++z)
      for (index y = -halo_; y < ny_ + halo_; ++y)
        for (index x = -halo_; x < nx_ + halo_; ++x)
          at(x, y, z) = f(x, y, z);
  }

  /// Copies every halo cell from @p other (see the Grid2D overload: O(halo)
  /// memcpy segments, not an O(interior) sweep).
  void copy_halo_from(const Grid3D& other) {
    const std::size_t row_bytes =
        static_cast<std::size_t>(nx_ + 2 * halo_) * sizeof(T);
    const std::size_t side_bytes = static_cast<std::size_t>(halo_) * sizeof(T);
    for (index z = -halo_; z < nz_ + halo_; ++z)
      for (index y = -halo_; y < ny_ + halo_; ++y) {
        if (z < 0 || z >= nz_ || y < 0 || y >= ny_) {
          std::memcpy(row(y, z) - halo_, other.row(y, z) - halo_, row_bytes);
        } else if (halo_ > 0) {
          std::memcpy(row(y, z) - halo_, other.row(y, z) - halo_, side_bytes);
          std::memcpy(row(y, z) + nx_, other.row(y, z) + nx_, side_bytes);
        }
      }
  }

  /// Zeroes every cell (interior and halo) on the calling thread.
  void zero() { buf_.zero(); }
  /// Zeroes every cell under an OpenMP static team (NUMA first touch).
  void zero_parallel() { buf_.zero_parallel(); }

  /// O(1) exchange of storage with a same-shaped grid (Jacobi buffer swap).
  void swap_storage(Grid3D& other) {
    require(nx_ == other.nx_ && ny_ == other.ny_ && nz_ == other.nz_ &&
                halo_ == other.halo_,
            "swap_storage: shape mismatch");
    buf_.swap(other.buf_);
  }

 private:
  index nx_, ny_, nz_, halo_, lead_, stride_, plane_;
  AlignedBuffer<T> buf_;
};

/// Largest |a-b| over the interior of two grids (used by the test suite).
template <typename T>
T max_abs_diff(const Grid1D<T>& a, const Grid1D<T>& b) {
  T m = 0;
  for (index x = 0; x < a.nx(); ++x)
    m = std::max(m, std::abs(a.at(x) - b.at(x)));
  return m;
}

template <typename T>
T max_abs_diff(const Grid2D<T>& a, const Grid2D<T>& b) {
  T m = 0;
  for (index y = 0; y < a.ny(); ++y)
    for (index x = 0; x < a.nx(); ++x)
      m = std::max(m, std::abs(a.at(x, y) - b.at(x, y)));
  return m;
}

template <typename T>
T max_abs_diff(const Grid3D<T>& a, const Grid3D<T>& b) {
  T m = 0;
  for (index z = 0; z < a.nz(); ++z)
    for (index y = 0; y < a.ny(); ++y)
      for (index x = 0; x < a.nx(); ++x)
        m = std::max(m, std::abs(a.at(x, y, z) - b.at(x, y, z)));
  return m;
}

}  // namespace tsv
