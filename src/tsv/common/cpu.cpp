#include "tsv/common/cpu.hpp"

#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

namespace tsv {
namespace {

// Parses sysfs cache sizes like "32K" / "25344K". Returns 0 on failure.
index read_sysfs_cache_bytes(int cpu, int idx) {
  const std::string base = "/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                           "/cache/index" + std::to_string(idx) + "/";
  std::ifstream type_f(base + "type");
  std::string type;
  if (!(type_f >> type)) return 0;
  if (type == "Instruction") return 0;
  std::ifstream size_f(base + "size");
  std::string size;
  if (!(size_f >> size)) return 0;
  index mult = 1;
  if (!size.empty() && (size.back() == 'K' || size.back() == 'k')) {
    mult = 1024;
    size.pop_back();
  } else if (!size.empty() && (size.back() == 'M' || size.back() == 'm')) {
    mult = 1024 * 1024;
    size.pop_back();
  }
  try {
    return static_cast<index>(std::stoll(size)) * mult;
  } catch (const std::exception&) {
    return 0;
  }
}

index read_sysfs_cache_level(int cpu, int idx) {
  const std::string base = "/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                           "/cache/index" + std::to_string(idx) + "/level";
  std::ifstream f(base);
  index level = 0;
  f >> level;
  return level;
}

CpuInfo detect() {
  CpuInfo info;
  info.has_avx2 = __builtin_cpu_supports("avx2") != 0;
  info.has_avx512f = __builtin_cpu_supports("avx512f") != 0;
  info.logical_cores =
      static_cast<index>(std::thread::hardware_concurrency());
  if (info.logical_cores <= 0) info.logical_cores = 1;

  for (int idx = 0; idx < 8; ++idx) {
    const index bytes = read_sysfs_cache_bytes(0, idx);
    if (bytes == 0) continue;
    switch (read_sysfs_cache_level(0, idx)) {
      case 1: info.l1_bytes = bytes; break;
      case 2: info.l2_bytes = bytes; break;
      case 3: info.l3_bytes = bytes; break;
      default: break;
    }
  }
  // Conservative fallbacks (Skylake-SP-class, matching the paper's testbed)
  // so size sweeps still cover every cache level on locked-down systems.
  if (info.l1_bytes == 0) info.l1_bytes = 32 * 1024;
  if (info.l2_bytes == 0) info.l2_bytes = 1024 * 1024;
  if (info.l3_bytes == 0) info.l3_bytes = 24 * 1024 * 1024;
  return info;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
    case Isa::kAuto: return "auto";
  }
  return "?";
}

index isa_width(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return 1;
    case Isa::kAvx2: return 4;
    case Isa::kAvx512: return 8;
    case Isa::kAuto: return isa_width(best_isa());
  }
  return 1;
}

const char* dtype_name(Dtype d) {
  switch (d) {
    case Dtype::kF64: return "f64";
    case Dtype::kF32: return "f32";
  }
  return "?";
}

index dtype_size(Dtype d) { return d == Dtype::kF32 ? 4 : 8; }

index kernel_width(Isa isa, Dtype dtype) {
  // One register's worth of lanes: 512/256/128 bits over the element size.
  // The scalar ISA runs the generic 128-bit-wide kernels (W=2 doubles /
  // W=4 floats), which is also what the plan's layout rules must use.
  index bits = 128;
  switch (isa) {
    case Isa::kAvx512: bits = 512; break;
    case Isa::kAvx2: bits = 256; break;
    case Isa::kScalar: bits = 128; break;
    case Isa::kAuto: return kernel_width(best_isa(), dtype);
  }
  return bits / (8 * dtype_size(dtype));
}

index kernel_width(Isa isa) { return kernel_width(isa, Dtype::kF64); }

const CpuInfo& cpu_info() {
  static const CpuInfo info = detect();
  return info;
}

Isa best_isa() {
  const CpuInfo& info = cpu_info();
  if (info.has_avx512f && isa_compiled(Isa::kAvx512)) return Isa::kAvx512;
  if (info.has_avx2 && isa_compiled(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kAvx2: return cpu_info().has_avx2;
    case Isa::kAvx512: return cpu_info().has_avx512f;
    case Isa::kAuto: return true;
  }
  return false;
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
#if defined(__AVX2__)
    case Isa::kAvx2: return true;
#endif
#if defined(__AVX512F__)
    case Isa::kAvx512: return true;
#endif
    case Isa::kAuto: return true;
    default: return false;
  }
}

}  // namespace tsv
