#pragma once
// Monotonic wall-clock timing for the benchmark harness.

#include <chrono>

namespace tsv {

/// Thin wrapper over std::chrono::steady_clock. Started at construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tsv
