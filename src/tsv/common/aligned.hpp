#pragma once
// Cache-line-aligned storage primitives used by every grid and scratch buffer.

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <utility>

namespace tsv {

/// Signed index type used for all loop arithmetic (Core Guidelines ES.102/107).
using index = std::ptrdiff_t;

/// Hot per-vector-set helpers must be inlined even in large translation
/// units, or their Vec-array parameters round-trip through the stack.
#if defined(__GNUC__)
#define TSV_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define TSV_ALWAYS_INLINE inline
#endif

/// Top-level run drivers must NOT be inlined into callers: a caller invoking
/// several methods would otherwise become one giant function whose size
/// exhausts the optimizer's budget and degrades every hot loop inside it.
#if defined(__GNUC__)
#define TSV_NOINLINE __attribute__((noinline))
#else
#define TSV_NOINLINE
#endif

/// always_inline spelled for lambda declarators (empty where unsupported).
#if defined(__GNUC__)
#define TSV_ALWAYS_INLINE_LAMBDA __attribute__((always_inline))
#else
#define TSV_ALWAYS_INLINE_LAMBDA
#endif

/// Alignment used for all numeric storage. 64 bytes covers one cache line and
/// the widest vector register we target (AVX-512).
inline constexpr std::size_t kAlignment = 64;

/// Rounds @p n up to the next multiple of @p m (m > 0).
constexpr index round_up(index n, index m) { return (n + m - 1) / m * m; }

/// RAII owner of a 64-byte-aligned array of trivially-copyable elements.
///
/// Unlike std::vector this guarantees the *first element* is aligned, which
/// the SIMD kernels rely on for aligned loads/stores.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer only holds trivially copyable element types");

 public:
  AlignedBuffer() = default;

  /// Allocates @p n zero-initialized elements.
  explicit AlignedBuffer(index n) : size_(n) {
    if (n < 0) throw std::invalid_argument("AlignedBuffer: negative size");
    if (n == 0) return;
    const std::size_t bytes =
        static_cast<std::size_t>(round_up(n * static_cast<index>(sizeof(T)),
                                          static_cast<index>(kAlignment)));
    data_ = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    std::memset(data_, 0, bytes);
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ > 0)
      std::memcpy(data_, other.data_,
                  static_cast<std::size_t>(size_) * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    swap(other);
    return *this;
  }

  ~AlignedBuffer() { std::free(data_); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  index size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](index i) noexcept { return data_[i]; }
  const T& operator[](index i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  T* data_ = nullptr;
  index size_ = 0;
};

}  // namespace tsv
