#pragma once
// Cache-line-aligned storage primitives used by every grid and scratch buffer.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <utility>

namespace tsv {

/// Signed index type used for all loop arithmetic (Core Guidelines ES.102/107).
using index = std::ptrdiff_t;

/// Hot per-vector-set helpers must be inlined even in large translation
/// units, or their Vec-array parameters round-trip through the stack.
#if defined(__GNUC__)
#define TSV_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define TSV_ALWAYS_INLINE inline
#endif

/// Top-level run drivers must NOT be inlined into callers: a caller invoking
/// several methods would otherwise become one giant function whose size
/// exhausts the optimizer's budget and degrades every hot loop inside it.
#if defined(__GNUC__)
#define TSV_NOINLINE __attribute__((noinline))
#else
#define TSV_NOINLINE
#endif

/// always_inline spelled for lambda declarators (empty where unsupported).
#if defined(__GNUC__)
#define TSV_ALWAYS_INLINE_LAMBDA __attribute__((always_inline))
#else
#define TSV_ALWAYS_INLINE_LAMBDA
#endif

/// Alignment used for all numeric storage. 64 bytes covers one cache line and
/// the widest vector register we target (AVX-512).
inline constexpr std::size_t kAlignment = 64;

/// Rounds @p n up to the next multiple of @p m (m > 0).
constexpr index round_up(index n, index m) { return (n + m - 1) / m * m; }

/// How a freshly allocated buffer's pages get their first write. On NUMA
/// systems the first-touch policy places each page on the node of the
/// touching thread, so buffers that will be processed by an OpenMP team
/// should be zeroed by that team (kParallel) — in the same static thread
/// order the compute loops use — not by the allocating thread.
enum class FirstTouch {
  kSerial,    ///< zero on the calling thread (default; matches old behaviour)
  kParallel,  ///< zero under `omp parallel for schedule(static)`
  kNone,      ///< leave pages untouched; the caller performs the first touch
};

namespace detail {
/// Monotonic count of AlignedBuffer heap allocations. Test hook: the
/// workspace suite asserts steady-state Plan::execute stays at zero new
/// buffer allocations. One relaxed increment per allocation is noise next
/// to the page-touching cost of the allocation itself.
inline std::atomic<std::uint64_t>& aligned_alloc_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
}  // namespace detail

/// Number of AlignedBuffer heap allocations performed so far, process-wide.
inline std::uint64_t aligned_alloc_count() {
  return detail::aligned_alloc_counter().load(std::memory_order_relaxed);
}

/// RAII owner of a 64-byte-aligned array of trivially-copyable elements.
///
/// Unlike std::vector this guarantees the *first element* is aligned, which
/// the SIMD kernels rely on for aligned loads/stores.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer only holds trivially copyable element types");

 public:
  AlignedBuffer() = default;

  /// Allocates @p n zero-initialized elements (see FirstTouch for who
  /// touches the pages; kNone skips the zeroing entirely).
  explicit AlignedBuffer(index n, FirstTouch ft = FirstTouch::kSerial)
      : size_(n) {
    if (n < 0) throw std::invalid_argument("AlignedBuffer: negative size");
    if (n == 0) return;
    const std::size_t bytes =
        static_cast<std::size_t>(round_up(n * static_cast<index>(sizeof(T)),
                                          static_cast<index>(kAlignment)));
    data_ = static_cast<T*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    detail::aligned_alloc_counter().fetch_add(1, std::memory_order_relaxed);
    if (ft == FirstTouch::kSerial) {
      std::memset(data_, 0, bytes);
    } else if (ft == FirstTouch::kParallel) {
      zero_parallel(bytes);
    }
  }

  /// Zeroes the whole buffer under an OpenMP static-schedule team. Safe to
  /// call after a FirstTouch::kNone allocation to perform the first touch
  /// from compute threads, and from inside a parallel region (the pragma
  /// then degenerates to a serial loop on the calling thread).
  void zero_parallel() {
    if (data_ != nullptr)
      zero_parallel(static_cast<std::size_t>(
          round_up(size_ * static_cast<index>(sizeof(T)),
                   static_cast<index>(kAlignment))));
  }

  /// Zeroes the whole buffer on the calling thread.
  void zero() {
    if (data_ != nullptr)
      std::memset(data_, 0,
                  static_cast<std::size_t>(size_) * sizeof(T));
  }

  AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.size_) {
    if (size_ > 0)
      std::memcpy(data_, other.data_,
                  static_cast<std::size_t>(size_) * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    swap(other);
    return *this;
  }

  ~AlignedBuffer() { std::free(data_); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  index size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](index i) noexcept { return data_[i]; }
  const T& operator[](index i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  // 2 MiB chunks: big enough that the per-iteration overhead vanishes,
  // small enough that a static schedule spreads pages evenly over the team.
  static constexpr std::size_t kTouchChunk = std::size_t{2} << 20;

  void zero_parallel(std::size_t bytes) {
    const index nchunks =
        static_cast<index>((bytes + kTouchChunk - 1) / kTouchChunk);
    char* base = reinterpret_cast<char*>(data_);
#pragma omp parallel for schedule(static)
    for (index c = 0; c < nchunks; ++c) {
      const std::size_t off = static_cast<std::size_t>(c) * kTouchChunk;
      std::memset(base + off, 0, std::min(kTouchChunk, bytes - off));
    }
  }

  T* data_ = nullptr;
  index size_ = 0;
};

}  // namespace tsv
