#pragma once
// Precondition checking shared by the public entry points, plus the
// dtype-aware accuracy-tolerance policy used by tests, examples and benches.
//
// Tolerance policy: optimized kernels differ from the scalar reference only
// in summation order and in FMA contraction, so the defensible bound is
// *relative* and scales with the element type's epsilon and the number of
// Jacobi steps. Each step accumulates O(taps) products whose reassociation
// contributes a few ulps, and a T-step Jacobi run compounds those errors at
// most linearly for the convex-combination weights used here. We therefore
// accept
//
//     |vectorized - reference| <= eps(T) * kTolSlack * max(steps, 1)
//
// per grid point, with kTolSlack = 32 covering the tap-count and a safety
// margin. For double (eps ~ 2.2e-16) this is far tighter than the seed's
// absolute 1e-11 threshold at the step counts the tests use; for float
// (eps ~ 1.2e-7) an absolute double-style threshold would be meaningless,
// which is why everything dtype-generic must come through here.

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "tsv/common/aligned.hpp"

namespace tsv {

/// Throws std::invalid_argument with @p message when @p cond is false.
/// Used at API boundaries; hot loops use assertions instead.
///
/// The const char* overload matters: string literals must not be promoted
/// to std::string on the success path, or every swap_storage in a Jacobi
/// loop costs a heap allocation — the workspace test counts those and
/// demands zero in steady state.
inline void require(bool cond, const char* message) {
  if (!cond) throw std::invalid_argument(message);
}

inline void require(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename Head, typename... Tail>
void format_into(std::ostringstream& os, const Head& head,
                 const Tail&... tail) {
  os << head;
  format_into(os, tail...);
}
}  // namespace detail

/// require() with streamed message parts: require_fmt(ok, "nx=", nx, " bad").
template <typename... Parts>
void require_fmt(bool cond, const Parts&... parts) {
  if (!cond) {
    std::ostringstream os;
    detail::format_into(os, parts...);
    throw std::invalid_argument(os.str());
  }
}

/// Slack factor in the accuracy tolerance (see the header comment).
inline constexpr double kTolSlack = 32.0;

/// Maximum acceptable |optimized - reference| per grid point after @p steps
/// Jacobi steps in element type T, for O(1)-magnitude fields. See the
/// tolerance policy in this header's comment.
template <typename T>
constexpr double accuracy_tolerance(index steps) {
  return static_cast<double>(std::numeric_limits<T>::epsilon()) * kTolSlack *
         static_cast<double>(steps > 1 ? steps : 1);
}

}  // namespace tsv
