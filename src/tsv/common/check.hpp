#pragma once
// Precondition checking shared by the public entry points.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tsv {

/// Throws std::invalid_argument with @p message when @p cond is false.
/// Used at API boundaries; hot loops use assertions instead.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw std::invalid_argument(message);
}

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename Head, typename... Tail>
void format_into(std::ostringstream& os, const Head& head,
                 const Tail&... tail) {
  os << head;
  format_into(os, tail...);
}
}  // namespace detail

/// require() with streamed message parts: require_fmt(ok, "nx=", nx, " bad").
template <typename... Parts>
void require_fmt(bool cond, const Parts&... parts) {
  if (!cond) {
    std::ostringstream os;
    detail::format_into(os, parts...);
    throw std::invalid_argument(os.str());
  }
}

}  // namespace tsv
