#pragma once
// Runtime CPU capability and cache-hierarchy discovery.
//
// The benchmark harness uses cache sizes to pick the problem sizes that land
// in L1/L2/L3/memory (paper Figs. 7-8), and the executor uses the feature
// flags to choose the widest available kernel.

#include <cstddef>
#include <string>
#include <type_traits>

#include "tsv/common/aligned.hpp"

namespace tsv {

/// Instruction-set families evaluated by the paper.
enum class Isa {
  kScalar,  ///< generic C++ (compiler may still auto-vectorize)
  kAvx2,    ///< 256-bit vectors, 4 doubles
  kAvx512,  ///< 512-bit vectors, 8 doubles
  kAuto,    ///< resolve to best_isa() at plan creation (Options default)
};

/// Element types the kernels are compiled for. Every vector register holds
/// twice as many kF32 lanes as kF64 lanes — the cheapest 2x throughput lever
/// the hardware offers for workloads that tolerate single precision.
enum class Dtype {
  kF64,  ///< IEEE double precision (the paper's evaluation dtype)
  kF32,  ///< IEEE single precision (2x lanes per vector)
};

/// Human-readable name ("scalar", "avx2", "avx512", "auto").
const char* isa_name(Isa isa);

/// Human-readable name ("f64", "f32").
const char* dtype_name(Dtype d);

/// Element size in bytes (8 or 4).
index dtype_size(Dtype d);

/// Vector length in doubles for @p isa (1, 4 or 8; kAuto reports the width
/// best_isa() would resolve to).
index isa_width(Isa isa);

/// Vector width of the KERNELS the planner binds for @p isa (2, 4 or 8 for
/// kF64; twice that for kF32): the scalar ISA still runs the 128-bit-wide
/// generic kernels, so layout rules (nx % W, nx % W^2) use this width, not
/// isa_width().
index kernel_width(Isa isa, Dtype dtype);

/// Double-precision kernel width (source-compatible shorthand).
index kernel_width(Isa isa);

/// The Dtype enumerator for a C++ element type (float or double).
template <typename T>
constexpr Dtype dtype_of() {
  static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                "tsv kernels support float and double elements");
  return std::is_same_v<T, float> ? Dtype::kF32 : Dtype::kF64;
}

struct CpuInfo {
  bool has_avx2 = false;
  bool has_avx512f = false;
  index logical_cores = 1;
  // Per-core data-cache capacities in bytes; zero when undiscoverable.
  index l1_bytes = 0;
  index l2_bytes = 0;
  index l3_bytes = 0;  // shared
};

/// Queries CPUID + sysfs once and caches the result.
const CpuInfo& cpu_info();

/// Widest ISA both compiled into this binary and supported by this machine.
Isa best_isa();

/// True when kernels specialized for @p isa can run on this machine.
/// kAuto is always supported (it resolves to best_isa()).
bool isa_supported(Isa isa);

/// True when kernels for @p isa were compiled into this binary (i.e. the
/// translation units were built with the matching -m/-march flags). kAuto
/// is always compiled; best_isa() only ever resolves to compiled ISAs it
/// can run.
bool isa_compiled(Isa isa);

}  // namespace tsv
