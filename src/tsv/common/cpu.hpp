#pragma once
// Runtime CPU capability and cache-hierarchy discovery.
//
// The benchmark harness uses cache sizes to pick the problem sizes that land
// in L1/L2/L3/memory (paper Figs. 7-8), and the executor uses the feature
// flags to choose the widest available kernel.

#include <cstddef>
#include <string>

#include "tsv/common/aligned.hpp"

namespace tsv {

/// Instruction-set families evaluated by the paper.
enum class Isa {
  kScalar,  ///< generic C++ (compiler may still auto-vectorize)
  kAvx2,    ///< 256-bit vectors, 4 doubles
  kAvx512,  ///< 512-bit vectors, 8 doubles
};

/// Human-readable name ("scalar", "avx2", "avx512").
const char* isa_name(Isa isa);

/// Vector length in doubles for @p isa (1, 4 or 8).
index isa_width(Isa isa);

struct CpuInfo {
  bool has_avx2 = false;
  bool has_avx512f = false;
  index logical_cores = 1;
  // Per-core data-cache capacities in bytes; zero when undiscoverable.
  index l1_bytes = 0;
  index l2_bytes = 0;
  index l3_bytes = 0;  // shared
};

/// Queries CPUID + sysfs once and caches the result.
const CpuInfo& cpu_info();

/// Widest ISA supported by this machine.
Isa best_isa();

/// True when kernels specialized for @p isa can run on this machine.
bool isa_supported(Isa isa);

}  // namespace tsv
