// Dedicated translation unit for the hot sweep kernels.
//
// GCC's inlining and scalar-replacement heuristics are sensitive to total
// unit size: in a TU that instantiates many drivers, the kernels' Vec
// register arrays end up materialized on the stack and every sweep runs ~2x
// slower (see the extern template comments in the kernel headers). Keeping
// the instantiations here — and nothing else — guarantees clean codegen for
// every consumer. Both element types are pinned: the float kernels are the
// same templates at twice the lane count.
#define TSV_KERNELS_TU 1

#include "tsv/vectorize/blocked_m.hpp"
#include "tsv/vectorize/dlt_method.hpp"
#include "tsv/vectorize/transpose_vs.hpp"
#include "tsv/vectorize/unroll_jam.hpp"

namespace tsv {

// Both the cached and the streaming (non-temporal write-back) variants are
// pinned here; the plan layer picks one per execute via a function pointer.
#define TSV_INSTANTIATE_TRANSPOSE_SWEEP(V, R, NR)                            \
  template void transpose_sweep_row_region<V, R, NR, false>(                \
      const std::array<const V::value_type*, NR>&, V::value_type*,          \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,   \
      index, index);                                                        \
  template void transpose_sweep_row_region<V, R, NR, true>(                 \
      const std::array<const V::value_type*, NR>&, V::value_type*,          \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,   \
      index, index);

#define TSV_INSTANTIATE_DLT_SWEEP(V, R, NR)                                  \
  template void dlt_sweep_row_region<V, R, NR, false>(                      \
      const std::array<const V::value_type*, NR>&, V::value_type*,          \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,   \
      index, index);                                                        \
  template void dlt_sweep_row_region<V, R, NR, true>(                       \
      const std::array<const V::value_type*, NR>&, V::value_type*,          \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,   \
      index, index);

#define TSV_INSTANTIATE_UJ_SWEEP(V, R, K)             \
  template void unroll_jam_sweep_row<V, R, K>(        \
      V::value_type*, const std::array<V::value_type, 2 * R + 1>&, index);

#define TSV_INSTANTIATE_ALL_FOR(V)        \
  TSV_INSTANTIATE_TRANSPOSE_SWEEP(V, 1, 1) \
  TSV_INSTANTIATE_TRANSPOSE_SWEEP(V, 2, 1) \
  TSV_INSTANTIATE_TRANSPOSE_SWEEP(V, 1, 3) \
  TSV_INSTANTIATE_TRANSPOSE_SWEEP(V, 1, 5) \
  TSV_INSTANTIATE_TRANSPOSE_SWEEP(V, 1, 9) \
  TSV_INSTANTIATE_DLT_SWEEP(V, 1, 1)       \
  TSV_INSTANTIATE_DLT_SWEEP(V, 2, 1)       \
  TSV_INSTANTIATE_DLT_SWEEP(V, 1, 3)       \
  TSV_INSTANTIATE_DLT_SWEEP(V, 1, 5)       \
  TSV_INSTANTIATE_DLT_SWEEP(V, 1, 9)       \
  TSV_INSTANTIATE_UJ_SWEEP(V, 1, 1)        \
  TSV_INSTANTIATE_UJ_SWEEP(V, 1, 2)        \
  TSV_INSTANTIATE_UJ_SWEEP(V, 1, 3)        \
  TSV_INSTANTIATE_UJ_SWEEP(V, 1, 4)        \
  TSV_INSTANTIATE_UJ_SWEEP(V, 2, 2)

TSV_INSTANTIATE_ALL_FOR(VecD2)
TSV_INSTANTIATE_ALL_FOR(VecF4)
#if defined(__AVX2__)
TSV_INSTANTIATE_ALL_FOR(VecD4)
TSV_INSTANTIATE_ALL_FOR(VecF8)
#endif
#if defined(__AVX512F__)
TSV_INSTANTIATE_ALL_FOR(VecD8)
TSV_INSTANTIATE_ALL_FOR(VecF16)
#endif

}  // namespace tsv
