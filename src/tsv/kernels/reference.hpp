#pragma once
// Scalar reference implementations — the ground truth every optimized method
// is tested against, in the same element type T the method runs in.
// Intentionally simple; no vectorization pragmas, no parallelism (multicore
// execution in this library always goes through a tiling framework, as in
// the paper's experiments).

#include "tsv/common/grid.hpp"
#include "tsv/core/generic_stencil.hpp"
#include "tsv/core/halo.hpp"
#include "tsv/kernels/stencil.hpp"

namespace tsv {

template <int R, typename T>
void reference_step(const Grid1D<T>& in, Grid1D<T>& out,
                    const Stencil1D<R, T>& s) {
  const T* ip = in.x0();
  T* op = out.x0();
  for (index x = 0; x < in.nx(); ++x) op[x] = s.apply(ip + x);
}

template <int R, int NR, typename T>
void reference_step(const Grid2D<T>& in, Grid2D<T>& out,
                    const Stencil2D<R, NR, T>& s) {
  for (index y = 0; y < in.ny(); ++y) {
    T* op = out.row(y);
    for (index x = 0; x < in.nx(); ++x)
      op[x] = s.apply([&](int dy) { return in.row(y + dy); }, x);
  }
}

template <int R, int NR, typename T>
void reference_step(const Grid3D<T>& in, Grid3D<T>& out,
                    const Stencil3D<R, NR, T>& s) {
  for (index z = 0; z < in.nz(); ++z)
    for (index y = 0; y < in.ny(); ++y) {
      T* op = out.row(y, z);
      for (index x = 0; x < in.nx(); ++x)
        op[x] =
            s.apply([&](int dy, int dz) { return in.row(y + dy, z + dz); }, x);
    }
}

// Lowered generic descriptors (core/generic_stencil.hpp): the tap sum plus
// the optional per-cell scale multiply, in the same element type T the
// interpreter runs in.

template <int R, typename T>
void reference_step(const Grid1D<T>& in, Grid1D<T>& out,
                    const GenericStencil1D<R, T>& s) {
  const T* ip = in.x0();
  T* op = out.x0();
  const T* sp = s.scale_row();
  for (index x = 0; x < in.nx(); ++x) {
    const T acc = s.apply(ip + x);
    op[x] = sp != nullptr ? sp[x] * acc : acc;
  }
}

template <int R, typename T>
void reference_step(const Grid2D<T>& in, Grid2D<T>& out,
                    const GenericStencil2D<R, T>& s) {
  for (index y = 0; y < in.ny(); ++y) {
    T* op = out.row(y);
    const T* sp = s.scale_row(y);
    for (index x = 0; x < in.nx(); ++x) {
      const T acc = s.apply([&](int dy) { return in.row(y + dy); }, x);
      op[x] = sp != nullptr ? sp[x] * acc : acc;
    }
  }
}

template <int R, typename T>
void reference_step(const Grid3D<T>& in, Grid3D<T>& out,
                    const GenericStencil3D<R, T>& s) {
  for (index z = 0; z < in.nz(); ++z)
    for (index y = 0; y < in.ny(); ++y) {
      T* op = out.row(y, z);
      const T* sp = s.scale_row(y, z);
      for (index x = 0; x < in.nx(); ++x) {
        const T acc =
            s.apply([&](int dy, int dz) { return in.row(y + dy, z + dz); }, x);
        op[x] = sp != nullptr ? sp[x] * acc : acc;
      }
    }
}

// Runtime-tap oracle: steps an UNLOWERED GenericStencil directly, one tap at
// a time, weights and scale rounded into the grid's own T — the ground truth
// the generic interpreter (and its lowering) is fuzzed against. No template
// radius anywhere: the ghost refresh uses the shape's effective radius.

template <typename T>
void generic_reference_step(const Grid1D<T>& in, Grid1D<T>& out,
                            const GenericStencil& gs) {
  const T* ip = in.x0();
  T* op = out.x0();
  for (index x = 0; x < in.nx(); ++x) {
    T acc = 0;
    for (const GenericTap& t : gs.taps) acc += T(t.weight) * ip[x + t.dx];
    if (!gs.scale.empty()) acc *= T(gs.scale[x]);
    op[x] = acc;
  }
}

template <typename T>
void generic_reference_step(const Grid2D<T>& in, Grid2D<T>& out,
                            const GenericStencil& gs) {
  for (index y = 0; y < in.ny(); ++y) {
    T* op = out.row(y);
    for (index x = 0; x < in.nx(); ++x) {
      T acc = 0;
      for (const GenericTap& t : gs.taps)
        acc += T(t.weight) * in.row(y + t.dy)[x + t.dx];
      if (!gs.scale.empty()) acc *= T(gs.scale[y * gs.scale_nx + x]);
      op[x] = acc;
    }
  }
}

template <typename T>
void generic_reference_step(const Grid3D<T>& in, Grid3D<T>& out,
                            const GenericStencil& gs) {
  for (index z = 0; z < in.nz(); ++z)
    for (index y = 0; y < in.ny(); ++y) {
      T* op = out.row(y, z);
      for (index x = 0; x < in.nx(); ++x) {
        T acc = 0;
        for (const GenericTap& t : gs.taps)
          acc += T(t.weight) * in.row(y + t.dy, z + t.dz)[x + t.dx];
        if (!gs.scale.empty())
          acc *= T(gs.scale[(z * gs.scale_ny + y) * gs.scale_nx + x]);
        op[x] = acc;
      }
    }
}

/// Boundary-aware runtime-tap oracle, the generic counterpart of the
/// reference_run overload below: ghosts refreshed with the same fill_ghosts
/// the plan layer uses, at the shape's effective radius, before every step.
template <typename Grid>
void generic_reference_run(Grid& g, const GenericStencil& gs, index steps,
                           const BoundarySpec& bc) {
  const int radius = gs.effective_radius();
  Grid tmp = g;  // copies shape, interior and halo (frozen-axis ghosts)
  for (index t = 0; t < steps; ++t) {
    fill_ghosts(g, bc, radius);
    generic_reference_step(g, tmp, gs);
    g.swap_storage(tmp);
  }
}

/// Advances @p g by @p steps Jacobi steps; result (including untouched halo)
/// ends up back in @p g. Works for all three grid ranks. The halo is frozen
/// — this is the all-kDirichlet behaviour of the boundary-aware overload
/// below.
template <typename Grid, typename S>
void reference_run(Grid& g, const S& s, index steps) {
  Grid tmp = g;  // copies shape, interior and halo
  for (index t = 0; t < steps; ++t) {
    reference_step(g, tmp, s);
    g.swap_storage(tmp);
  }
}

/// Boundary-aware oracle: ghost cells are refreshed with the SAME
/// fill_ghosts the plan layer uses (core/halo.hpp) before every step, so an
/// optimized method under any BoundarySpec must reproduce this bit-for-bit
/// in exact arithmetic (and within the dtype tolerance otherwise). Only the
/// interior of the result is meaningful — final ghost contents depend on
/// the swap parity.
template <typename Grid, typename S>
void reference_run(Grid& g, const S& s, index steps, const BoundarySpec& bc) {
  Grid tmp = g;  // copies shape, interior and halo (frozen-axis ghosts)
  for (index t = 0; t < steps; ++t) {
    fill_ghosts(g, bc, S::radius);
    reference_step(g, tmp, s);
    g.swap_storage(tmp);
  }
}

}  // namespace tsv
