#pragma once
// Scalar reference implementations — the ground truth every optimized method
// is tested against. Intentionally simple; no vectorization pragmas, no
// parallelism (multicore execution in this library always goes through a
// tiling framework, as in the paper's experiments).

#include "tsv/common/grid.hpp"
#include "tsv/kernels/stencil.hpp"

namespace tsv {

template <int R>
void reference_step(const Grid1D<double>& in, Grid1D<double>& out,
                    const Stencil1D<R>& s) {
  const double* ip = in.x0();
  double* op = out.x0();
  for (index x = 0; x < in.nx(); ++x) op[x] = s.apply(ip + x);
}

template <int R, int NR>
void reference_step(const Grid2D<double>& in, Grid2D<double>& out,
                    const Stencil2D<R, NR>& s) {
  for (index y = 0; y < in.ny(); ++y) {
    double* op = out.row(y);
    for (index x = 0; x < in.nx(); ++x)
      op[x] = s.apply([&](int dy) { return in.row(y + dy); }, x);
  }
}

template <int R, int NR>
void reference_step(const Grid3D<double>& in, Grid3D<double>& out,
                    const Stencil3D<R, NR>& s) {
  for (index z = 0; z < in.nz(); ++z)
    for (index y = 0; y < in.ny(); ++y) {
      double* op = out.row(y, z);
      for (index x = 0; x < in.nx(); ++x)
        op[x] =
            s.apply([&](int dy, int dz) { return in.row(y + dy, z + dz); }, x);
    }
}

/// Advances @p g by @p steps Jacobi steps; result (including untouched halo)
/// ends up back in @p g. Works for all three grid ranks.
template <typename Grid, typename S>
void reference_run(Grid& g, const S& s, index steps) {
  Grid tmp = g;  // copies shape, interior and halo
  for (index t = 0; t < steps; ++t) {
    reference_step(g, tmp, s);
    g.swap_storage(tmp);
  }
}

}  // namespace tsv
