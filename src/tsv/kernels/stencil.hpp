#pragma once
// Compile-time stencil descriptors.
//
// A stencil is represented as a set of *rows*: for each (dy[, dz]) offset in
// the support there is a contiguous span of x-taps [xlo, xhi] with weights.
// This shape is what every vector kernel exploits: x-taps need shifted
// (assembled) vectors, while row offsets are plain strided loads. Star
// stencils have a single multi-tap row per axis line, box stencils have full
// rows — exactly the six instances of the paper's Table 1.

#include <array>
#include <cmath>

#include "tsv/common/aligned.hpp"

namespace tsv {

/// 1D stencil of radius R: out[x] = sum_dx w[dx+R] * in[x+dx].
template <int R>
struct Stencil1D {
  static constexpr int dim = 1;
  static constexpr int radius = R;
  static constexpr int ntaps = 2 * R + 1;

  std::array<double, ntaps> w{};

  double apply(const double* p) const {
    double acc = 0;
    for (int dx = -R; dx <= R; ++dx) acc += w[dx + R] * p[dx];
    return acc;
  }

  /// mul+add count per updated point (same convention for every method).
  static constexpr index flops_per_point = 2 * ntaps - 1;
};

/// One x-tap row of a 2D stencil at vertical offset dy.
template <int R>
struct Row2D {
  int dy = 0;
  int xlo = 0, xhi = 0;              // inclusive tap span
  std::array<double, 2 * R + 1> w{};  // weight for dx is w[dx - xlo]

  int ntaps() const { return xhi - xlo + 1; }
};

/// 2D stencil of radius R with NR tap rows.
template <int R, int NR>
struct Stencil2D {
  static constexpr int dim = 2;
  static constexpr int radius = R;
  static constexpr int nrows = NR;

  std::array<Row2D<R>, NR> rows{};
  index flops_per_point = 0;  // filled by factory

  template <typename RowPtr>
  double apply(RowPtr&& row_at, index x) const {
    double acc = 0;
    for (const auto& r : rows) {
      const double* p = row_at(r.dy);
      for (int dx = r.xlo; dx <= r.xhi; ++dx)
        acc += r.w[dx - r.xlo] * p[x + dx];
    }
    return acc;
  }
};

/// One x-tap row of a 3D stencil at offset (dy, dz).
template <int R>
struct Row3D {
  int dy = 0, dz = 0;
  int xlo = 0, xhi = 0;
  std::array<double, 2 * R + 1> w{};

  int ntaps() const { return xhi - xlo + 1; }
};

/// 3D stencil of radius R with NR tap rows.
template <int R, int NR>
struct Stencil3D {
  static constexpr int dim = 3;
  static constexpr int radius = R;
  static constexpr int nrows = NR;

  std::array<Row3D<R>, NR> rows{};
  index flops_per_point = 0;

  template <typename RowPtr>
  double apply(RowPtr&& row_at, index x) const {
    double acc = 0;
    for (const auto& r : rows) {
      const double* p = row_at(r.dy, r.dz);
      for (int dx = r.xlo; dx <= r.xhi; ++dx)
        acc += r.w[dx - r.xlo] * p[x + dx];
    }
    return acc;
  }
};

namespace detail {
template <typename S>
index count_row_flops(const S& s) {
  index taps = 0;
  for (const auto& r : s.rows) taps += r.ntaps();
  return 2 * taps - 1;
}
}  // namespace detail

// ---------------------------------------------------------------------------
// The six stencil instances evaluated by the paper (Table 1).
// ---------------------------------------------------------------------------

/// 1D 3-point (paper's "1D-Heat"): a*(A[x-1] + A[x] + A[x+1]).
inline Stencil1D<1> make_1d3p(double a = 1.0 / 3.0) {
  Stencil1D<1> s;
  s.w = {a, a, a};
  return s;
}

/// 1D 5-point star, radius 2.
inline Stencil1D<2> make_1d5p(double w2 = 0.05, double w1 = 0.15,
                              double wc = 0.6) {
  Stencil1D<2> s;
  s.w = {w2, w1, wc, w1, w2};
  return s;
}

/// 2D 5-point star (paper's "2D-Heat").
inline Stencil2D<1, 3> make_2d5p(double wc = 0.5, double wx = 0.125,
                                 double wy = 0.125) {
  Stencil2D<1, 3> s;
  s.rows[0] = {.dy = -1, .xlo = 0, .xhi = 0, .w = {wy}};
  s.rows[1] = {.dy = 0, .xlo = -1, .xhi = 1, .w = {wx, wc, wx}};
  s.rows[2] = {.dy = 1, .xlo = 0, .xhi = 0, .w = {wy}};
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

/// 2D 9-point box, radius 1.
inline Stencil2D<1, 3> make_2d9p(double wc = 0.2, double edge = 0.125,
                                 double corner = 0.075) {
  Stencil2D<1, 3> s;
  s.rows[0] = {.dy = -1, .xlo = -1, .xhi = 1, .w = {corner, edge, corner}};
  s.rows[1] = {.dy = 0, .xlo = -1, .xhi = 1, .w = {edge, wc, edge}};
  s.rows[2] = {.dy = 1, .xlo = -1, .xhi = 1, .w = {corner, edge, corner}};
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

/// 3D 7-point star (paper's "3D-Heat").
inline Stencil3D<1, 5> make_3d7p(double wc = 0.4, double wx = 0.1,
                                 double wy = 0.1, double wz = 0.1) {
  Stencil3D<1, 5> s;
  s.rows[0] = {.dy = 0, .dz = -1, .xlo = 0, .xhi = 0, .w = {wz}};
  s.rows[1] = {.dy = -1, .dz = 0, .xlo = 0, .xhi = 0, .w = {wy}};
  s.rows[2] = {.dy = 0, .dz = 0, .xlo = -1, .xhi = 1, .w = {wx, wc, wx}};
  s.rows[3] = {.dy = 1, .dz = 0, .xlo = 0, .xhi = 0, .w = {wy}};
  s.rows[4] = {.dy = 0, .dz = 1, .xlo = 0, .xhi = 0, .w = {wz}};
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

/// 3D 27-point box, radius 1.
inline Stencil3D<1, 9> make_3d27p(double wc = 0.1) {
  Stencil3D<1, 9> s;
  int r = 0;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy) {
      // Weight decays with Manhattan distance; the exact values are
      // irrelevant for performance but distinct enough to catch index bugs.
      auto wgt = [&](int dx) {
        const int d = std::abs(dx) + std::abs(dy) + std::abs(dz);
        return d == 0 ? wc : wc / (2.0 * d + 1.0);
      };
      s.rows[r++] = {.dy = dy,
                     .dz = dz,
                     .xlo = -1,
                     .xhi = 1,
                     .w = {wgt(-1), wgt(0), wgt(1)}};
    }
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

}  // namespace tsv
