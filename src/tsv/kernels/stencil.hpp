#pragma once
// Compile-time stencil descriptors.
//
// A stencil is represented as a set of *rows*: for each (dy[, dz]) offset in
// the support there is a contiguous span of x-taps [xlo, xhi] with weights.
// This shape is what every vector kernel exploits: x-taps need shifted
// (assembled) vectors, while row offsets are plain strided loads. Star
// stencils have a single multi-tap row per axis line, box stencils have full
// rows — exactly the six instances of the paper's Table 1.
//
// Every descriptor is generic over the element type T (float or double); the
// trailing template parameter defaults to double so the paper-era spelling
// Stencil2D<R, NR> keeps meaning the double-precision instance. Factories
// accept double-precision weights and round them once into T.

#include <array>
#include <cmath>

#include "tsv/common/aligned.hpp"

namespace tsv {

/// 1D stencil of radius R: out[x] = sum_dx w[dx+R] * in[x+dx].
template <int R, typename T = double>
struct Stencil1D {
  using value_type = T;
  static constexpr int dim = 1;
  static constexpr int radius = R;
  static constexpr int ntaps = 2 * R + 1;

  std::array<T, ntaps> w{};

  T apply(const T* p) const {
    T acc = 0;
    for (int dx = -R; dx <= R; ++dx) acc += w[dx + R] * p[dx];
    return acc;
  }

  /// mul+add count per updated point (same convention for every method).
  static constexpr index flops_per_point = 2 * ntaps - 1;
};

/// One x-tap row of a 2D stencil at vertical offset dy.
template <int R, typename T = double>
struct Row2D {
  using value_type = T;
  int dy = 0;
  int xlo = 0, xhi = 0;            // inclusive tap span
  std::array<T, 2 * R + 1> w{};    // weight for dx is w[dx - xlo]

  int ntaps() const { return xhi - xlo + 1; }
};

/// 2D stencil of radius R with NR tap rows.
template <int R, int NR, typename T = double>
struct Stencil2D {
  using value_type = T;
  static constexpr int dim = 2;
  static constexpr int radius = R;
  static constexpr int nrows = NR;

  std::array<Row2D<R, T>, NR> rows{};
  index flops_per_point = 0;  // filled by factory

  template <typename RowPtr>
  T apply(RowPtr&& row_at, index x) const {
    T acc = 0;
    for (const auto& r : rows) {
      const T* p = row_at(r.dy);
      for (int dx = r.xlo; dx <= r.xhi; ++dx)
        acc += r.w[dx - r.xlo] * p[x + dx];
    }
    return acc;
  }
};

/// One x-tap row of a 3D stencil at offset (dy, dz).
template <int R, typename T = double>
struct Row3D {
  using value_type = T;
  int dy = 0, dz = 0;
  int xlo = 0, xhi = 0;
  std::array<T, 2 * R + 1> w{};

  int ntaps() const { return xhi - xlo + 1; }
};

/// 3D stencil of radius R with NR tap rows.
template <int R, int NR, typename T = double>
struct Stencil3D {
  using value_type = T;
  static constexpr int dim = 3;
  static constexpr int radius = R;
  static constexpr int nrows = NR;

  std::array<Row3D<R, T>, NR> rows{};
  index flops_per_point = 0;

  template <typename RowPtr>
  T apply(RowPtr&& row_at, index x) const {
    T acc = 0;
    for (const auto& r : rows) {
      const T* p = row_at(r.dy, r.dz);
      for (int dx = r.xlo; dx <= r.xhi; ++dx)
        acc += r.w[dx - r.xlo] * p[x + dx];
    }
    return acc;
  }
};

namespace detail {
template <typename S>
index count_row_flops(const S& s) {
  index taps = 0;
  for (const auto& r : s.rows) taps += r.ntaps();
  return 2 * taps - 1;
}
}  // namespace detail

// ---------------------------------------------------------------------------
// The six stencil instances evaluated by the paper (Table 1). The explicit
// element type (make_2d5p<float>()) selects the single-precision instance.
// ---------------------------------------------------------------------------

/// 1D 3-point (paper's "1D-Heat"): a*(A[x-1] + A[x] + A[x+1]).
template <typename T = double>
Stencil1D<1, T> make_1d3p(double a = 1.0 / 3.0) {
  Stencil1D<1, T> s;
  s.w = {T(a), T(a), T(a)};
  return s;
}

/// 1D 5-point star, radius 2.
template <typename T = double>
Stencil1D<2, T> make_1d5p(double w2 = 0.05, double w1 = 0.15,
                          double wc = 0.6) {
  Stencil1D<2, T> s;
  s.w = {T(w2), T(w1), T(wc), T(w1), T(w2)};
  return s;
}

/// 2D 5-point star (paper's "2D-Heat").
template <typename T = double>
Stencil2D<1, 3, T> make_2d5p(double wc = 0.5, double wx = 0.125,
                             double wy = 0.125) {
  Stencil2D<1, 3, T> s;
  s.rows[0] = {.dy = -1, .xlo = 0, .xhi = 0, .w = {T(wy)}};
  s.rows[1] = {.dy = 0, .xlo = -1, .xhi = 1, .w = {T(wx), T(wc), T(wx)}};
  s.rows[2] = {.dy = 1, .xlo = 0, .xhi = 0, .w = {T(wy)}};
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

/// 2D 9-point box, radius 1.
template <typename T = double>
Stencil2D<1, 3, T> make_2d9p(double wc = 0.2, double edge = 0.125,
                             double corner = 0.075) {
  Stencil2D<1, 3, T> s;
  s.rows[0] = {
      .dy = -1, .xlo = -1, .xhi = 1, .w = {T(corner), T(edge), T(corner)}};
  s.rows[1] = {.dy = 0, .xlo = -1, .xhi = 1, .w = {T(edge), T(wc), T(edge)}};
  s.rows[2] = {
      .dy = 1, .xlo = -1, .xhi = 1, .w = {T(corner), T(edge), T(corner)}};
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

/// 3D 7-point star (paper's "3D-Heat").
template <typename T = double>
Stencil3D<1, 5, T> make_3d7p(double wc = 0.4, double wx = 0.1,
                             double wy = 0.1, double wz = 0.1) {
  Stencil3D<1, 5, T> s;
  s.rows[0] = {.dy = 0, .dz = -1, .xlo = 0, .xhi = 0, .w = {T(wz)}};
  s.rows[1] = {.dy = -1, .dz = 0, .xlo = 0, .xhi = 0, .w = {T(wy)}};
  s.rows[2] = {
      .dy = 0, .dz = 0, .xlo = -1, .xhi = 1, .w = {T(wx), T(wc), T(wx)}};
  s.rows[3] = {.dy = 1, .dz = 0, .xlo = 0, .xhi = 0, .w = {T(wy)}};
  s.rows[4] = {.dy = 0, .dz = 1, .xlo = 0, .xhi = 0, .w = {T(wz)}};
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

/// 3D 27-point box, radius 1.
template <typename T = double>
Stencil3D<1, 9, T> make_3d27p(double wc = 0.1) {
  Stencil3D<1, 9, T> s;
  int r = 0;
  for (int dz = -1; dz <= 1; ++dz)
    for (int dy = -1; dy <= 1; ++dy) {
      // Weight decays with Manhattan distance; the exact values are
      // irrelevant for performance but distinct enough to catch index bugs.
      auto wgt = [&](int dx) {
        const int d = std::abs(dx) + std::abs(dy) + std::abs(dz);
        return T(d == 0 ? wc : wc / (2.0 * d + 1.0));
      };
      s.rows[r++] = {.dy = dy,
                     .dz = dz,
                     .xlo = -1,
                     .xhi = 1,
                     .w = {wgt(-1), wgt(0), wgt(1)}};
    }
  s.flops_per_point = detail::count_row_flops(s);
  return s;
}

}  // namespace tsv
