#pragma once
// Time-loop unroll-and-jam (paper §3.3, Algorithm 1).
//
// 1D: a register window of K+1 vector sets slides over the row. Iteration j
// loads set j (time level 0) and raises the window sets one level each
// (downward slot loop, exactly Algorithm 1), storing a set only when it
// reaches level K — one load + one store of each set per K time steps, i.e.
// the in-CPU flops/byte ratio grows K-fold. vrl[] slots preserve each set's
// last R vectors *before* it is raised, providing the left-side lower-level
// values the in-place update would otherwise destroy. Sets beyond the array
// bounds are virtual halo sets: Dirichlet values are constant in time, so a
// broadcast is valid at every level.
//
// 2D/3D: a row (plane) can't live in registers, so the intermediate time
// level is kept in an L1/L2-resident ring of row (plane) scratch buffers and
// the final level is written in place — the same halved main-memory traffic,
// as documented in DESIGN.md §7. Implemented for K = 2 (the paper's choice).

#include <vector>

#include "tsv/vectorize/transpose_vs.hpp"

namespace tsv {

namespace detail {

/// Raises one vector set a single time level, in place (paper's Compute).
/// lt[R]: left-tail vectors (lane W-1 of lt[R-l] = element B-l at the source
/// level). rn: vectors whose lane 0 holds elements B+W², ..., B+W²+R-1 at the
/// source level (the next set's vectors 0..R-1, or halo broadcasts).
template <typename V, int R>
TSV_ALWAYS_INLINE void set_step(const V (&lt)[R], V (&v)[V::width], const V* rn,
                     const std::array<vec_value_t<V>, 2 * R + 1>& w) {
  constexpr int W = V::width;
  V ext[W + 2 * R];
  static_for<1, R + 1>(
      [&]<int L>() { ext[R - L] = assemble_left(lt[R - L], v[W - L]); });
  static_for<0, V::width>([&]<int J>() { ext[R + J] = v[J]; });
  static_for<1, R + 1>([&]<int L>() {
    ext[R + W - 1 + L] = assemble_right(v[L - 1], rn[L - 1]);
  });
  V out[W];
  static_for<0, V::width>([&]<int J>() {
    out[J] = V::zero();
    static_for<0, 2 * R + 1>([&]<int DXI>() {
      if (w[DXI] != 0)
        out[J] = fma(V::broadcast(w[DXI]), ext[J + DXI], out[J]);
    });
  });
  static_for<0, V::width>([&]<int J>() { v[J] = out[J]; });
}

}  // namespace detail

/// Advances a transpose-layout row by K time levels in place (Algorithm 1
/// with boot and epilogue folded into the slot guards). @p row must hold a
/// whole number of W² blocks; the x halo provides Dirichlet values.
template <typename V, int R, int K>
void unroll_jam_sweep_row(vec_value_t<V>* row,
                          const std::array<vec_value_t<V>, 2 * R + 1>& w,
                          index nx) {
  constexpr int W = V::width;
  constexpr index B = block_elems<W>;
  const index nsets = nx / B;

  // VS[1..K+1]: window slots; VS[i] holds set j-K+i-1 at level K-i+1 (after
  // this iteration's update). vrl[i]: the pre-update last R vectors of the
  // set in VS[i] (its level == K-i). Index 0 of vrl is the left neighbour of
  // VS[1]'s set.
  V VS[K + 2][W];
  V vrl[K + 1][R];

  // Virtual left halo: lane W-1 of vrl[i][R-l] must be element -l.
  for (int i = 0; i <= K; ++i)
    for (int l = 1; l <= R; ++l) vrl[i][R - l] = V::broadcast(row[-l]);
  // Window slots start as virtual sets; their content is never consumed for
  // a real update until a real set has been shifted in.
  for (int i = 1; i <= K + 1; ++i)
    for (int j = 0; j < W; ++j) VS[i][j] = V::broadcast(row[-1]);

  for (index jj = 0; jj <= nsets + K - 1; ++jj) {
    // Load set jj at level 0, or the virtual right-halo set: its vector j
    // only ever contributes lane 0 = element nsets*B + j = row[nx + j].
    if (jj < nsets) {
      for (int j = 0; j < W; ++j) VS[K + 1][j] = V::load(row + jj * B + j * W);
    } else {
      for (int j = 0; j < W && j < 2 * R; ++j)
        VS[K + 1][j] = V::broadcast(row[nx + j]);
    }

    for (int i = K; i >= 1; --i) {
      const index s_idx = jj - K + i - 1;
      if (s_idx < 0 || s_idx >= nsets) continue;
      for (int r = 0; r < R; ++r) vrl[i][r] = VS[i][W - R + r];  // pre-update
      detail::set_step<V, R>(vrl[i - 1], VS[i], VS[i + 1], w);
    }

    const index store_idx = jj - K;
    if (store_idx >= 0)
      for (int j = 0; j < W; ++j) VS[1][j].store(row + store_idx * B + j * W);

    for (int i = 1; i <= K; ++i)
      for (int j = 0; j < W; ++j) VS[i][j] = VS[i + 1][j];
    for (int i = 1; i <= K; ++i)
      for (int r = 0; r < R; ++r) vrl[i - 1][r] = vrl[i][r];
  }
}

// Compiled once in src/tsv/kernels_tu.cpp; see transpose_vs.hpp for why.
#define TSV_DECLARE_UJ_SWEEP(V, R, K)                   \
  extern template void unroll_jam_sweep_row<V, R, K>(   \
      V::value_type*, const std::array<V::value_type, 2 * R + 1>&, index);

#define TSV_DECLARE_UJ_SWEEPS_FOR(V) \
  TSV_DECLARE_UJ_SWEEP(V, 1, 1)      \
  TSV_DECLARE_UJ_SWEEP(V, 1, 2)      \
  TSV_DECLARE_UJ_SWEEP(V, 1, 3)      \
  TSV_DECLARE_UJ_SWEEP(V, 1, 4)      \
  TSV_DECLARE_UJ_SWEEP(V, 2, 2)

#if !defined(TSV_KERNELS_TU)
TSV_DECLARE_UJ_SWEEPS_FOR(VecD2)
TSV_DECLARE_UJ_SWEEPS_FOR(VecF4)
#if defined(__AVX2__)
TSV_DECLARE_UJ_SWEEPS_FOR(VecD4)
TSV_DECLARE_UJ_SWEEPS_FOR(VecF8)
#endif
#if defined(__AVX512F__)
TSV_DECLARE_UJ_SWEEPS_FOR(VecD8)
TSV_DECLARE_UJ_SWEEPS_FOR(VecF16)
#endif
#endif  // !TSV_KERNELS_TU

/// 1D run driver: transform to transpose layout, ⌊T/K⌋ pipelined in-place
/// sweeps + remainder Jacobi steps, transform back. The remainder parity
/// buffer lives in @p ws.
template <typename V, int R, int K = 2>
TSV_NOINLINE void unroll_jam_run(Grid1D<vec_value_t<V>>& g,
                    const Stencil1D<R, vec_value_t<V>>& s, index steps,
                    Workspace& ws) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  block_transpose_grid<T, W>(g);
  const index sweeps = steps / K;
  for (index q = 0; q < sweeps; ++q)
    unroll_jam_sweep_row<V, R, K>(g.x0(), s.w, g.nx());
  const index rem = steps - sweeps * K;
  if (rem > 0)
    jacobi_run(g, rem, ws, kWsTmpGrid, [&](const Grid1D<T>& in,
                                           Grid1D<T>& out) {
      transpose_step<V>(in, out, s);
    });
  block_transpose_grid<T, W>(g);
}

template <typename V, int R, int K = 2>
void unroll_jam_run(Grid1D<vec_value_t<V>>& g,
                    const Stencil1D<R, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  unroll_jam_run<V, R, K>(g, s, steps, ws);
}

// ---- 2D: ring of row buffers holding the intermediate level -----------------

namespace detail {

/// Scratch row with the same alignment/halo contract as a grid row.
template <typename T>
class ScratchRow {
 public:
  ScratchRow() = default;
  ScratchRow(index nx, index halo, FirstTouch ft = FirstTouch::kSerial)
      : lead_(round_up(std::max<index>(halo, 1),
                       static_cast<index>(kAlignment / sizeof(T)))),
        buf_(lead_ + nx + lead_, ft) {}

  /// Zeroes the whole row (first touch for FirstTouch::kNone buffers —
  /// per-thread pools call this from the owning thread).
  void zero() { buf_.zero(); }

  T* x0() { return buf_.data() + lead_; }
  const T* x0() const { return buf_.data() + lead_; }

  /// Copies the (constant) x halo from a grid row so boundary assembly works.
  void copy_halo(const T* grid_row, index nx, index halo) {
    for (index l = 1; l <= halo; ++l) x0()[-l] = grid_row[-l];
    for (index l = 0; l < halo; ++l) x0()[nx + l] = grid_row[nx + l];
  }

 private:
  index lead_ = 0;
  AlignedBuffer<T> buf_;
};

}  // namespace detail

/// 2D K=2 run driver (see header comment). Grid ends in original layout;
/// the level-1 row ring and the remainder parity buffer live in @p ws.
template <typename V, int R, int NR>
TSV_NOINLINE void unroll_jam2_run(Grid2D<vec_value_t<V>>& g,
                     const Stencil2D<R, NR, vec_value_t<V>>& s, index steps,
                     Workspace& ws) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  const index nx = g.nx(), ny = g.ny();
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);

  block_transpose_grid<T, W>(g);

  // Ring of 2R+1 level-1 rows; level-1 values of halo rows are the halo rows
  // themselves (Dirichlet), provided by pointer selection in row_l1().
  constexpr index RB = 2 * R + 1;
  using Ring = std::array<detail::ScratchRow<T>, RB>;
  Ring& ring = ws.slot<Ring>(kWsRing, ws_key(nx, R), [&] {
    Ring r;
    for (auto& row : r) row = detail::ScratchRow<T>(nx, R);
    return r;
  });
  auto ring_slot = [&](index y) { return ((y % RB) + RB) % RB; };
  auto row_l1 = [&](index y) -> const T* {
    return (y < 0 || y >= ny) ? g.row(y) : ring[ring_slot(y)].x0();
  };

  const index pairs = steps / 2;
  for (index q = 0; q < pairs; ++q) {
    for (index yy = 0; yy <= ny - 1 + R; ++yy) {
      if (yy < ny) {
        // Level 1 of row yy from level-0 rows (still intact in g).
        detail::ScratchRow<T>& dst = ring[ring_slot(yy)];
        dst.copy_halo(g.row(yy), nx, R);
        std::array<const T*, NR> rp;
        for (int r = 0; r < NR; ++r) rp[r] = g.row(yy + s.rows[r].dy);
        transpose_sweep_row<V, R, NR>(rp, dst.x0(), w, nx);
      }
      const index y2 = yy - R;
      if (y2 >= 0 && y2 < ny) {
        // Level 2 of row y2 from the ring, written in place.
        std::array<const T*, NR> rp;
        for (int r = 0; r < NR; ++r) rp[r] = row_l1(y2 + s.rows[r].dy);
        transpose_sweep_row<V, R, NR>(rp, g.row(y2), w, nx);
      }
    }
  }
  const index rem = steps - pairs * 2;
  if (rem > 0)
    jacobi_run(g, rem, ws, kWsTmpGrid, [&](const Grid2D<T>& in,
                                           Grid2D<T>& out) {
      transpose_step<V>(in, out, s);
    });
  block_transpose_grid<T, W>(g);
}

template <typename V, int R, int NR>
void unroll_jam2_run(Grid2D<vec_value_t<V>>& g,
                     const Stencil2D<R, NR, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  unroll_jam2_run<V>(g, s, steps, ws);
}

// ---- 3D: ring of plane buffers ----------------------------------------------

/// 3D K=2 run driver: the intermediate level lives in 2R+1 plane buffers
/// (Grid2D scratch, same row layout as g's planes); ring and remainder
/// parity buffer live in @p ws.
template <typename V, int R, int NR>
TSV_NOINLINE void unroll_jam2_run(Grid3D<vec_value_t<V>>& g,
                     const Stencil3D<R, NR, vec_value_t<V>>& s, index steps,
                     Workspace& ws) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  const index nx = g.nx(), ny = g.ny(), nz = g.nz();
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);

  block_transpose_grid<T, W>(g);

  constexpr index RB = 2 * R + 1;
  std::vector<Grid2D<T>>& ring =
      ws.slot<std::vector<Grid2D<T>>>(kWsRing, ws_key(nx, ny, R), [&] {
        std::vector<Grid2D<T>> r;
        r.reserve(RB);
        for (index i = 0; i < RB; ++i) r.emplace_back(nx, ny, R);
        return r;
      });
  auto ring_slot = [&](index z) { return ((z % RB) + RB) % RB; };
  // Row y of the level-1 plane z; halo planes and halo rows resolve to the
  // main grid (Dirichlet values, valid at every level).
  auto row_l1 = [&](index y, index z) -> const T* {
    if (z < 0 || z >= nz || y < 0 || y >= ny) return g.row(y, z);
    return ring[ring_slot(z)].row(y);
  };

  const index pairs = steps / 2;
  for (index q = 0; q < pairs; ++q) {
    for (index zz = 0; zz <= nz - 1 + R; ++zz) {
      if (zz < nz) {
        Grid2D<T>& dst = ring[ring_slot(zz)];
        for (index y = 0; y < ny; ++y) {
          // x halo of the scratch rows must carry the Dirichlet values.
          T* d = dst.row(y);
          const T* srow = g.row(y, zz);
          for (index l = 1; l <= R; ++l) d[-l] = srow[-l];
          for (index l = 0; l < R; ++l) d[nx + l] = srow[nx + l];
          std::array<const T*, NR> rp;
          for (int r = 0; r < NR; ++r)
            rp[r] = g.row(y + s.rows[r].dy, zz + s.rows[r].dz);
          transpose_sweep_row<V, R, NR>(rp, d, w, nx);
        }
      }
      const index z2 = zz - R;
      if (z2 >= 0 && z2 < nz) {
        for (index y = 0; y < ny; ++y) {
          std::array<const T*, NR> rp;
          for (int r = 0; r < NR; ++r)
            rp[r] = row_l1(y + s.rows[r].dy, z2 + s.rows[r].dz);
          transpose_sweep_row<V, R, NR>(rp, g.row(y, z2), w, nx);
        }
      }
    }
  }
  const index rem = steps - pairs * 2;
  if (rem > 0)
    jacobi_run(g, rem, ws, kWsTmpGrid, [&](const Grid3D<T>& in,
                                           Grid3D<T>& out) {
      transpose_step<V>(in, out, s);
    });
  block_transpose_grid<T, W>(g);
}

template <typename V, int R, int NR>
void unroll_jam2_run(Grid3D<vec_value_t<V>>& g,
                     const Stencil3D<R, NR, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  unroll_jam2_run<V>(g, s, steps, ws);
}

}  // namespace tsv
