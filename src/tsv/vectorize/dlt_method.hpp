#pragma once
// DLT vectorization (Henretty CC'11; paper §2.2) — the milestone baseline.
//
// The grid is globally transposed per unit-stride row into the DLT layout
// (layout/dlt.hpp) once, runs all T steps inside the layout (amortizing the
// transform, as the paper's Fig. 7(a)/(b) comparison explores), and is
// transposed back. In DLT space a stencil tap at spatial offset dx is an
// aligned load at column offset dx — except at the W-1 lane seams, where the
// neighbour vector is assembled from the wrapped column and one halo scalar.

#include "tsv/layout/dlt.hpp"
#include "tsv/vectorize/method_common.hpp"

namespace tsv {

namespace detail {

/// Vector of column @p c (may be out of [0, L)) of a DLT row. @p rp is the
/// DLT-layout row; halo scalars are read from its original-layout x halo.
template <typename V>
TSV_ALWAYS_INLINE V dlt_column_vec(const vec_value_t<V>* rp, index c, index L,
                                   index nx) {
  constexpr int W = V::width;
  if (c < 0)  // lane 0 wraps to the left halo, lanes shift down
    return assemble_left(V::broadcast(rp[c]), V::load(rp + (L + c) * W));
  if (c >= L)  // lane W-1 wraps to the right halo, lanes shift up
    return assemble_right(V::load(rp + (c - L) * W),
                          V::broadcast(rp[nx + c - L]));
  return V::load(rp + c * W);
}

/// Accumulates one padded tap row at column @p i (seam-safe path).
template <typename V, int R>
TSV_ALWAYS_INLINE V dlt_row_acc_seam(const vec_value_t<V>* rp, index i, index L,
                          index nx,
                          const std::array<vec_value_t<V>, 2 * R + 1>& w,
                          V acc) {
  for (int dx = -R; dx <= R; ++dx)
    if (w[dx + R] != 0)
      acc = fma(V::broadcast(w[dx + R]), dlt_column_vec<V>(rp, i + dx, L, nx),
                acc);
  return acc;
}

/// Accumulates one padded tap row at interior column @p i (aligned loads).
template <typename V, int R>
TSV_ALWAYS_INLINE V dlt_row_acc_core(const vec_value_t<V>* rp, index i,
                          const std::array<vec_value_t<V>, 2 * R + 1>& w,
                          V acc) {
  constexpr int W = V::width;
  static_for<0, 2 * R + 1>([&]<int DXI>() {
    if (w[DXI] != 0)
      acc = fma(V::broadcast(w[DXI]), V::load(rp + (i + (DXI - R)) * W), acc);
  });
  return acc;
}

}  // namespace detail

/// One Jacobi step over columns [ilo, ihi) of a DLT-layout row accumulating
/// NR tap rows. nx must be a multiple of W and nx/W > R. Columns within R of
/// the global column ends take the seam-safe path; everything else is
/// aligned loads. Split tiling (the SDSL baseline) drives this per tile.
///
/// Stream = true writes the column vectors with non-temporal stores; the
/// CALLER fences once per streamed step/region (same contract as
/// transpose_sweep_row_region — a per-row fence would serialize the store
/// buffer once per row in the 2D/3D loops).
template <typename V, int R, int NR, bool Stream = false>
void dlt_sweep_row_region(
    const std::array<const vec_value_t<V>*, NR>& rp, vec_value_t<V>* op,
    const std::array<std::array<vec_value_t<V>, 2 * R + 1>, NR>& w, index nx,
    index ilo, index ihi) {
  constexpr int W = V::width;
  const index L = nx / W;
  const index head = std::min<index>(std::max<index>(R, ilo), ihi);
  const index tail = std::max<index>(head, std::min<index>(L - R, ihi));

  auto emit = [&](V acc, index i) TSV_ALWAYS_INLINE_LAMBDA {
    if constexpr (Stream)
      acc.stream(op + i * W);
    else
      acc.store(op + i * W);
  };
  for (index i = ilo; i < head; ++i) {
    V acc = V::zero();
    for (int r = 0; r < NR; ++r)
      acc = detail::dlt_row_acc_seam<V, R>(rp[r], i, L, nx, w[r], acc);
    emit(acc, i);
  }
  for (index i = head; i < tail; ++i) {
    V acc = V::zero();
    for (int r = 0; r < NR; ++r)
      acc = detail::dlt_row_acc_core<V, R>(rp[r], i, w[r], acc);
    emit(acc, i);
  }
  for (index i = tail; i < ihi; ++i) {
    V acc = V::zero();
    for (int r = 0; r < NR; ++r)
      acc = detail::dlt_row_acc_seam<V, R>(rp[r], i, L, nx, w[r], acc);
    emit(acc, i);
  }
}

/// Full-row sweep (all columns).
template <typename V, int R, int NR, bool Stream = false>
inline void dlt_sweep_row(
    const std::array<const vec_value_t<V>*, NR>& rp, vec_value_t<V>* op,
    const std::array<std::array<vec_value_t<V>, 2 * R + 1>, NR>& w, index nx) {
  dlt_sweep_row_region<V, R, NR, Stream>(rp, op, w, nx, 0, nx / V::width);
}

// Compiled once in src/tsv/kernels_tu.cpp; see transpose_vs.hpp for why.
#define TSV_DECLARE_DLT_SWEEP(V, R, NR)                                      \
  extern template void dlt_sweep_row_region<V, R, NR, false>(                \
      const std::array<const V::value_type*, NR>&, V::value_type*,           \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,    \
      index, index);                                                         \
  extern template void dlt_sweep_row_region<V, R, NR, true>(                 \
      const std::array<const V::value_type*, NR>&, V::value_type*,           \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,    \
      index, index);

#define TSV_DECLARE_DLT_SWEEPS_FOR(V) \
  TSV_DECLARE_DLT_SWEEP(V, 1, 1)      \
  TSV_DECLARE_DLT_SWEEP(V, 2, 1)      \
  TSV_DECLARE_DLT_SWEEP(V, 1, 3)      \
  TSV_DECLARE_DLT_SWEEP(V, 1, 5)      \
  TSV_DECLARE_DLT_SWEEP(V, 1, 9)

#if !defined(TSV_KERNELS_TU)
TSV_DECLARE_DLT_SWEEPS_FOR(VecD2)
TSV_DECLARE_DLT_SWEEPS_FOR(VecF4)
#if defined(__AVX2__)
TSV_DECLARE_DLT_SWEEPS_FOR(VecD4)
TSV_DECLARE_DLT_SWEEPS_FOR(VecF8)
#endif
#if defined(__AVX512F__)
TSV_DECLARE_DLT_SWEEPS_FOR(VecD8)
TSV_DECLARE_DLT_SWEEPS_FOR(VecF16)
#endif
#endif  // !TSV_KERNELS_TU

// ---- full-grid steps (grids already in DLT layout) ---------------------------

template <typename V, bool Stream = false, int R>
void dlt_step(const Grid1D<vec_value_t<V>>& in, Grid1D<vec_value_t<V>>& out,
              const Stencil1D<R, vec_value_t<V>>& s) {
  dlt_sweep_row<V, R, 1, Stream>({in.x0()}, out.x0(), {s.w}, in.nx());
  if constexpr (Stream) stream_fence();
}

template <typename V, bool Stream = false, int R, int NR>
void dlt_step(const Grid2D<vec_value_t<V>>& in, Grid2D<vec_value_t<V>>& out,
              const Stencil2D<R, NR, vec_value_t<V>>& s) {
  using T = vec_value_t<V>;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index y = 0; y < in.ny(); ++y) {
    std::array<const T*, NR> rp;
    for (int r = 0; r < NR; ++r) rp[r] = in.row(y + s.rows[r].dy);
    dlt_sweep_row<V, R, NR, Stream>(rp, out.row(y), w, in.nx());
  }
  if constexpr (Stream) stream_fence();  // once per step, not per row
}

template <typename V, bool Stream = false, int R, int NR>
void dlt_step(const Grid3D<vec_value_t<V>>& in, Grid3D<vec_value_t<V>>& out,
              const Stencil3D<R, NR, vec_value_t<V>>& s) {
  using T = vec_value_t<V>;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index z = 0; z < in.nz(); ++z)
    for (index y = 0; y < in.ny(); ++y) {
      std::array<const T*, NR> rp;
      for (int r = 0; r < NR; ++r)
        rp[r] = in.row(y + s.rows[r].dy, z + s.rows[r].dz);
      dlt_sweep_row<V, R, NR, Stream>(rp, out.row(y, z), w, in.nx());
    }
  if constexpr (Stream) stream_fence();  // once per step, not per row
}

/// Full run: forward DLT (out-of-place, into a second grid — the extra array
/// the paper counts against DLT), T steps inside the layout, backward DLT.
/// The staging grid and the Jacobi parity buffer live in @p ws; @p stream
/// selects non-temporal write-back (plan-resolved).
template <typename V, typename Grid, typename S>
TSV_NOINLINE void dlt_run(Grid& g, const S& s, index steps, Workspace& ws,
                          bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  require_fmt(g.nx() % W == 0, "DLT requires nx (", g.nx(),
              ") to be a multiple of W = ", static_cast<index>(W));
  require_fmt(g.nx() / W > S::radius, "DLT requires nx/W > stencil radius");
  Grid& t = ws_grid_like(ws, kWsDltA, g);
  t.copy_halo_from(g);  // seam handling reads original-layout halo scalars
  dlt_forward_grid<T, W>(g, t);
  if (stream)
    jacobi_run(t, steps, ws, kWsTmpGrid, [&](const Grid& in, Grid& out) {
      dlt_step<V, true>(in, out, s);
    });
  else
    jacobi_run(t, steps, ws, kWsTmpGrid, [&](const Grid& in, Grid& out) {
      dlt_step<V>(in, out, s);
    });
  dlt_backward_grid<T, W>(t, g);
}

template <typename V, typename Grid, typename S>
void dlt_run(Grid& g, const S& s, index steps) {
  Workspace ws;
  dlt_run<V>(g, s, steps, ws);
}

}  // namespace tsv
