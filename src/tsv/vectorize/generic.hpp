#pragma once
// Register-blocked generic interpreter (Method::kGeneric).
//
// Executes any row-based stencil descriptor — the lowered runtime shapes
// from core/generic_stencil.hpp as well as the compiled Table-1 descriptors
// — without a shape-specialized kernel. The structure mirrors the multiload
// baseline (one unaligned load per shifted vector), with two twists that
// keep the interpreter within reach of the precompiled kernels:
//
//  * The tap loop is unrolled at compile time over the padded span 2R+1
//    (static_for) with a runtime zero-skip, so a star row costs its live
//    taps only; the *row* loop is runtime — that is the interpreted part.
//  * Register blocking: the main loop produces NB=4 output vectors per
//    iteration, so each broadcast weight register is reused across 4 FMAs
//    and the per-(row, tap) overhead amortizes. A W-granular loop and a
//    scalar loop mop up the tail.
//
// The lowered descriptors may carry a per-cell coefficient field
// ("scale"): out[c] = scale[c] * sum of taps, applied as one extra vector
// multiply before the store. Descriptors without the accessor (the
// compiled kinds) compile to the plain sum — the `requires` gate keeps the
// field access out of their instantiation entirely.

#include "tsv/core/generic_stencil.hpp"
#include "tsv/tiling/tess.hpp"
#include "tsv/vectorize/method_common.hpp"
#include "tsv/vectorize/multiload.hpp"

namespace tsv {

namespace detail {

/// Vector tap accumulate over NB consecutive output vectors: one broadcast
/// per live tap, NB fused multiply-adds per broadcast.
template <typename V, int R, int NB>
TSV_ALWAYS_INLINE void generic_row_acc(const vec_value_t<V>* p, index x,
                                       const std::array<vec_value_t<V>,
                                                        2 * R + 1>& w,
                                       std::array<V, NB>& acc) {
  static_for<0, 2 * R + 1>([&]<int DXI>() TSV_ALWAYS_INLINE_LAMBDA {
    if (w[DXI] != 0) {
      const V wv = V::broadcast(w[DXI]);
      static_for<0, NB>([&]<int B>() TSV_ALWAYS_INLINE_LAMBDA {
        acc[B] = fma(wv, V::loadu(p + x + B * V::width + (DXI - R)), acc[B]);
      });
    }
  });
}

}  // namespace detail

// ---- 1D --------------------------------------------------------------------

template <typename V, typename S>
TSV_NOINLINE void generic_step_region(const Grid1D<vec_value_t<V>>& in,
                                      Grid1D<vec_value_t<V>>& out, const S& s,
                                      index xlo, index xhi) {
  using T = vec_value_t<V>;
  constexpr int R = S::radius;
  constexpr int W = V::width;
  constexpr int NB = 4;
  const T* ip = in.x0();
  T* op = out.x0();
  const T* sp = nullptr;
  if constexpr (requires { s.scale_row(); }) sp = s.scale_row();
  index x = xlo;
  for (; x + NB * W <= xhi; x += NB * W) {
    std::array<V, NB> acc;
    static_for<0, NB>([&]<int B>() { acc[B] = V::zero(); });
    detail::generic_row_acc<V, R, NB>(ip, x, s.w, acc);
    static_for<0, NB>([&]<int B>() {
      V r = acc[B];
      if (sp != nullptr) r = r * V::loadu(sp + x + B * W);
      r.storeu(op + x + B * W);
    });
  }
  for (; x + W <= xhi; x += W) {
    std::array<V, 1> acc{V::zero()};
    detail::generic_row_acc<V, R, 1>(ip, x, s.w, acc);
    V r = acc[0];
    if (sp != nullptr) r = r * V::loadu(sp + x);
    r.storeu(op + x);
  }
  for (; x < xhi; ++x) {
    const T acc = detail::scalar_row_acc<R>(ip, x, s.w, T(0));
    op[x] = sp != nullptr ? sp[x] * acc : acc;
  }
}

template <typename V, typename S>
TSV_NOINLINE void generic_run(Grid1D<vec_value_t<V>>& g, const S& s,
                              index steps, Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid,
             [&](const Grid1D<T>& in, Grid1D<T>& out) {
               generic_step_region<V>(in, out, s, 0, g.nx());
             });
}

template <typename V, typename S>
TSV_NOINLINE void tess_generic_run(Grid1D<vec_value_t<V>>& g, const S& s,
                                   index steps, index bx, index bt,
                                   Workspace& ws) {
  using T = vec_value_t<V>;
  Grid1D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess1d_engine(g, tmp, g.nx(), steps, bt, S::radius, bx,
                [&](const Grid1D<T>& in, Grid1D<T>& out, index lo, index hi) {
                  generic_step_region<V>(in, out, s, lo, hi);
                });
}

// ---- 2D --------------------------------------------------------------------

template <typename V, typename S>
TSV_NOINLINE void generic_step_region(const Grid2D<vec_value_t<V>>& in,
                                      Grid2D<vec_value_t<V>>& out, const S& s,
                                      index xlo, index xhi, index ylo,
                                      index yhi) {
  using T = vec_value_t<V>;
  constexpr int R = S::radius;
  constexpr int W = V::width;
  constexpr int NB = 4;
  constexpr int kCap = detail::generic_max_rows<S>();
  const int nr = static_cast<int>(std::size(s.rows));
  std::array<std::array<T, 2 * R + 1>, kCap> w;
  std::array<int, kCap> dy;
  for (int r = 0; r < nr; ++r) {
    w[r] = padded_taps<R>(s.rows[r]);
    dy[r] = s.rows[r].dy;
  }
  for (index y = ylo; y < yhi; ++y) {
    T* op = out.row(y);
    std::array<const T*, kCap> rp;
    for (int r = 0; r < nr; ++r) rp[r] = in.row(y + dy[r]);
    const T* sp = nullptr;
    if constexpr (requires { s.scale_row(y); }) sp = s.scale_row(y);
    index x = xlo;
    for (; x + NB * W <= xhi; x += NB * W) {
      std::array<V, NB> acc;
      static_for<0, NB>([&]<int B>() { acc[B] = V::zero(); });
      for (int r = 0; r < nr; ++r)
        detail::generic_row_acc<V, R, NB>(rp[r], x, w[r], acc);
      static_for<0, NB>([&]<int B>() {
        V v = acc[B];
        if (sp != nullptr) v = v * V::loadu(sp + x + B * W);
        v.storeu(op + x + B * W);
      });
    }
    for (; x + W <= xhi; x += W) {
      std::array<V, 1> acc{V::zero()};
      for (int r = 0; r < nr; ++r)
        detail::generic_row_acc<V, R, 1>(rp[r], x, w[r], acc);
      V v = acc[0];
      if (sp != nullptr) v = v * V::loadu(sp + x);
      v.storeu(op + x);
    }
    for (; x < xhi; ++x) {
      T acc = 0;
      for (int r = 0; r < nr; ++r)
        acc = detail::scalar_row_acc<R>(rp[r], x, w[r], acc);
      op[x] = sp != nullptr ? sp[x] * acc : acc;
    }
  }
}

template <typename V, typename S>
TSV_NOINLINE void generic_run(Grid2D<vec_value_t<V>>& g, const S& s,
                              index steps, Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid,
             [&](const Grid2D<T>& in, Grid2D<T>& out) {
               generic_step_region<V>(in, out, s, 0, g.nx(), 0, g.ny());
             });
}

template <typename V, typename S>
TSV_NOINLINE void tess_generic_run(Grid2D<vec_value_t<V>>& g, const S& s,
                                   index steps, index bx, index by, index bt,
                                   Workspace& ws) {
  using T = vec_value_t<V>;
  Grid2D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess2d_engine(g, tmp, steps, bt, S::radius, bx, by,
                [&](const Grid2D<T>& in, Grid2D<T>& out, index xlo, index xhi,
                    index ylo, index yhi) {
                  generic_step_region<V>(in, out, s, xlo, xhi, ylo, yhi);
                });
}

// ---- 3D --------------------------------------------------------------------

template <typename V, typename S>
TSV_NOINLINE void generic_step_region(const Grid3D<vec_value_t<V>>& in,
                                      Grid3D<vec_value_t<V>>& out, const S& s,
                                      index xlo, index xhi, index ylo,
                                      index yhi, index zlo, index zhi) {
  using T = vec_value_t<V>;
  constexpr int R = S::radius;
  constexpr int W = V::width;
  constexpr int NB = 4;
  constexpr int kCap = detail::generic_max_rows<S>();
  const int nr = static_cast<int>(std::size(s.rows));
  std::array<std::array<T, 2 * R + 1>, kCap> w;
  std::array<int, kCap> dy, dz;
  for (int r = 0; r < nr; ++r) {
    w[r] = padded_taps<R>(s.rows[r]);
    dy[r] = s.rows[r].dy;
    dz[r] = s.rows[r].dz;
  }
  for (index z = zlo; z < zhi; ++z)
    for (index y = ylo; y < yhi; ++y) {
      T* op = out.row(y, z);
      std::array<const T*, kCap> rp;
      for (int r = 0; r < nr; ++r) rp[r] = in.row(y + dy[r], z + dz[r]);
      const T* sp = nullptr;
      if constexpr (requires { s.scale_row(y, z); }) sp = s.scale_row(y, z);
      index x = xlo;
      for (; x + NB * W <= xhi; x += NB * W) {
        std::array<V, NB> acc;
        static_for<0, NB>([&]<int B>() { acc[B] = V::zero(); });
        for (int r = 0; r < nr; ++r)
          detail::generic_row_acc<V, R, NB>(rp[r], x, w[r], acc);
        static_for<0, NB>([&]<int B>() {
          V v = acc[B];
          if (sp != nullptr) v = v * V::loadu(sp + x + B * W);
          v.storeu(op + x + B * W);
        });
      }
      for (; x + W <= xhi; x += W) {
        std::array<V, 1> acc{V::zero()};
        for (int r = 0; r < nr; ++r)
          detail::generic_row_acc<V, R, 1>(rp[r], x, w[r], acc);
        V v = acc[0];
        if (sp != nullptr) v = v * V::loadu(sp + x);
        v.storeu(op + x);
      }
      for (; x < xhi; ++x) {
        T acc = 0;
        for (int r = 0; r < nr; ++r)
          acc = detail::scalar_row_acc<R>(rp[r], x, w[r], acc);
        op[x] = sp != nullptr ? sp[x] * acc : acc;
      }
    }
}

template <typename V, typename S>
TSV_NOINLINE void generic_run(Grid3D<vec_value_t<V>>& g, const S& s,
                              index steps, Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid,
             [&](const Grid3D<T>& in, Grid3D<T>& out) {
               generic_step_region<V>(in, out, s, 0, g.nx(), 0, g.ny(), 0,
                                      g.nz());
             });
}

template <typename V, typename S>
TSV_NOINLINE void tess_generic_run(Grid3D<vec_value_t<V>>& g, const S& s,
                                   index steps, index bx, index by, index bz,
                                   index bt, Workspace& ws) {
  using T = vec_value_t<V>;
  Grid3D<T>& tmp = ws_grid_like(ws, kWsTmpGrid, g);
  tmp.copy_halo_from(g);
  tess3d_engine(g, tmp, steps, bt, S::radius, bx, by, bz,
                [&](const Grid3D<T>& in, Grid3D<T>& out, index xlo, index xhi,
                    index ylo, index yhi, index zlo, index zhi) {
                  generic_step_region<V>(in, out, s, xlo, xhi, ylo, yhi, zlo,
                                         zhi);
                });
}

}  // namespace tsv
