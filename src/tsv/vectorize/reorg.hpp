#pragma once
// "Data reorganization" vectorization baseline (paper §2.1, second solution).
//
// Each input element is loaded exactly once with an *aligned* load; the
// shifted vectors a stencil tap needs are assembled from the neighbouring
// aligned vectors with inter-register shuffles (concat_shift). This halves
// the memory traffic of multiload but pressures the shuffle execution port —
// the trade-off the paper discusses.
//
// Vectorized spans must start at W-aligned x positions; regions with
// unaligned edges fall back to scalar cells at the rims.

#include "tsv/vectorize/method_common.hpp"
#include "tsv/vectorize/multiload.hpp"

namespace tsv {

namespace detail {

/// Accumulates all taps of one padded row for the aligned vector at x
/// (x % W == 0). Aligned loads of prev/cur/next + compile-time shifts.
template <typename V, int R>
TSV_ALWAYS_INLINE V reorg_row_acc(const vec_value_t<V>* p, index x,
                       const std::array<vec_value_t<V>, 2 * R + 1>& w, V acc) {
  constexpr int W = V::width;
  const V cur = V::load(p + x);
  if (w[R] != 0) acc = fma(V::broadcast(w[R]), cur, acc);

  bool need_prev = false, need_next = false;
  for (int dx = -R; dx < 0; ++dx) need_prev |= (w[dx + R] != 0);
  for (int dx = 1; dx <= R; ++dx) need_next |= (w[dx + R] != 0);

  if (need_prev) {
    const V prev = V::load(p + x - W);
    static_for<0, R>([&]<int I>() {
      constexpr int dx = I - R;  // dx in [-R, 0)
      if (w[I] != 0)
        acc = fma(V::broadcast(w[I]), concat_shift<W + dx>(prev, cur), acc);
    });
  }
  if (need_next) {
    const V next = V::load(p + x + W);
    static_for<R + 1, 2 * R + 1>([&]<int I>() {
      constexpr int dx = I - R;  // dx in (0, R]
      if (w[I] != 0)
        acc = fma(V::broadcast(w[I]), concat_shift<dx>(cur, next), acc);
    });
  }
  return acc;
}

}  // namespace detail

// ---- 1D --------------------------------------------------------------------

template <typename V, int R>
TSV_NOINLINE void reorg_step_region(const Grid1D<vec_value_t<V>>& in,
                       Grid1D<vec_value_t<V>>& out,
                       const Stencil1D<R, vec_value_t<V>>& s, index xlo,
                       index xhi) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  const T* ip = in.x0();
  T* op = out.x0();
  index x = xlo;
  const index xv = std::min(round_up(xlo, W), xhi);
  for (; x < xv; ++x) op[x] = detail::scalar_row_acc<R>(ip, x, s.w, T(0));
  for (; x + W <= xhi; x += W)
    detail::reorg_row_acc<V, R>(ip, x, s.w, V::zero()).store(op + x);
  for (; x < xhi; ++x) op[x] = detail::scalar_row_acc<R>(ip, x, s.w, T(0));
}

template <typename V, int R>
TSV_NOINLINE void reorg_run(Grid1D<vec_value_t<V>>& g,
               const Stencil1D<R, vec_value_t<V>>& s, index steps,
               Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid1D<T>& in,
                                           Grid1D<T>& out) {
    reorg_step_region<V>(in, out, s, 0, g.nx());
  });
}

template <typename V, int R>
void reorg_run(Grid1D<vec_value_t<V>>& g,
               const Stencil1D<R, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  reorg_run<V>(g, s, steps, ws);
}

// ---- 2D --------------------------------------------------------------------

template <typename V, int R, int NR>
TSV_NOINLINE void reorg_step_region(const Grid2D<vec_value_t<V>>& in,
                       Grid2D<vec_value_t<V>>& out,
                       const Stencil2D<R, NR, vec_value_t<V>>& s, index xlo,
                       index xhi, index ylo, index yhi) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index y = ylo; y < yhi; ++y) {
    T* op = out.row(y);
    std::array<const T*, NR> rp;
    for (int r = 0; r < NR; ++r) rp[r] = in.row(y + s.rows[r].dy);
    index x = xlo;
    const index xv = std::min(round_up(xlo, W), xhi);
    auto scalar_cell = [&](index xx) {
      T acc = 0;
      for (int r = 0; r < NR; ++r)
        acc = detail::scalar_row_acc<R>(rp[r], xx, w[r], acc);
      op[xx] = acc;
    };
    for (; x < xv; ++x) scalar_cell(x);
    for (; x + W <= xhi; x += W) {
      V acc = V::zero();
      for (int r = 0; r < NR; ++r)
        acc = detail::reorg_row_acc<V, R>(rp[r], x, w[r], acc);
      acc.store(op + x);
    }
    for (; x < xhi; ++x) scalar_cell(x);
  }
}

template <typename V, int R, int NR>
TSV_NOINLINE void reorg_run(Grid2D<vec_value_t<V>>& g,
               const Stencil2D<R, NR, vec_value_t<V>>& s, index steps,
               Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid2D<T>& in,
                                           Grid2D<T>& out) {
    reorg_step_region<V>(in, out, s, 0, g.nx(), 0, g.ny());
  });
}

template <typename V, int R, int NR>
void reorg_run(Grid2D<vec_value_t<V>>& g,
               const Stencil2D<R, NR, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  reorg_run<V>(g, s, steps, ws);
}

// ---- 3D --------------------------------------------------------------------

template <typename V, int R, int NR>
TSV_NOINLINE void reorg_step_region(const Grid3D<vec_value_t<V>>& in,
                       Grid3D<vec_value_t<V>>& out,
                       const Stencil3D<R, NR, vec_value_t<V>>& s, index xlo,
                       index xhi, index ylo, index yhi, index zlo, index zhi) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index z = zlo; z < zhi; ++z)
    for (index y = ylo; y < yhi; ++y) {
      T* op = out.row(y, z);
      std::array<const T*, NR> rp;
      for (int r = 0; r < NR; ++r)
        rp[r] = in.row(y + s.rows[r].dy, z + s.rows[r].dz);
      index x = xlo;
      const index xv = std::min(round_up(xlo, W), xhi);
      auto scalar_cell = [&](index xx) {
        T acc = 0;
        for (int r = 0; r < NR; ++r)
          acc = detail::scalar_row_acc<R>(rp[r], xx, w[r], acc);
        op[xx] = acc;
      };
      for (; x < xv; ++x) scalar_cell(x);
      for (; x + W <= xhi; x += W) {
        V acc = V::zero();
        for (int r = 0; r < NR; ++r)
          acc = detail::reorg_row_acc<V, R>(rp[r], x, w[r], acc);
        acc.store(op + x);
      }
      for (; x < xhi; ++x) scalar_cell(x);
    }
}

template <typename V, int R, int NR>
TSV_NOINLINE void reorg_run(Grid3D<vec_value_t<V>>& g,
               const Stencil3D<R, NR, vec_value_t<V>>& s, index steps,
               Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid3D<T>& in,
                                           Grid3D<T>& out) {
    reorg_step_region<V>(in, out, s, 0, g.nx(), 0, g.ny(), 0, g.nz());
  });
}

template <typename V, int R, int NR>
void reorg_run(Grid3D<vec_value_t<V>>& g,
               const Stencil3D<R, NR, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  reorg_run<V>(g, s, steps, ws);
}

}  // namespace tsv
