#pragma once
// Compiler auto-vectorization baseline.
//
// The loops are written the way application programmers write stencils —
// plain scalar bodies over restrict pointers with an `omp simd` hint — and
// the compiler is left to vectorize them. This is the kernel the paper's
// "Tessellation" baseline uses inside its tiles (Yuan SC'17 relies on
// compiler auto-vectorization), and it stands in for "what ICC does".
//
// Region entry points take half-open x/y/z ranges so the tiling frameworks
// can drive them tile-by-tile; the *_run drivers sweep the whole interior.

#include "tsv/vectorize/method_common.hpp"

namespace tsv {

// ---- 1D --------------------------------------------------------------------

template <int R, typename T>
TSV_NOINLINE void autovec_step_region(const Grid1D<T>& in, Grid1D<T>& out,
                         const Stencil1D<R, T>& s, index xlo, index xhi) {
  const T* __restrict ip = in.x0();
  T* __restrict op = out.x0();
  const auto w = s.w;  // local copy: lets the vectorizer keep weights in regs
#pragma omp simd
  for (index x = xlo; x < xhi; ++x) {
    T acc = 0;
    for (int dx = -R; dx <= R; ++dx) acc += w[dx + R] * ip[x + dx];
    op[x] = acc;
  }
}

template <int R, typename T>
TSV_NOINLINE void autovec_run(Grid1D<T>& g, const Stencil1D<R, T>& s, index steps,
                              Workspace& ws) {
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid1D<T>& in,
                                           Grid1D<T>& out) {
    autovec_step_region(in, out, s, 0, g.nx());
  });
}

template <int R, typename T>
void autovec_run(Grid1D<T>& g, const Stencil1D<R, T>& s, index steps) {
  Workspace ws;
  autovec_run(g, s, steps, ws);
}

// ---- 2D --------------------------------------------------------------------

template <int R, int NR, typename T>
TSV_NOINLINE void autovec_step_region(const Grid2D<T>& in, Grid2D<T>& out,
                         const Stencil2D<R, NR, T>& s, index xlo, index xhi,
                         index ylo, index yhi) {
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index y = ylo; y < yhi; ++y) {
    T* __restrict op = out.row(y);
    std::array<const T*, NR> rp;
    for (int r = 0; r < NR; ++r) rp[r] = in.row(y + s.rows[r].dy);
#pragma omp simd
    for (index x = xlo; x < xhi; ++x) {
      T acc = 0;
      for (int r = 0; r < NR; ++r)
        for (int dx = -R; dx <= R; ++dx) acc += w[r][dx + R] * rp[r][x + dx];
      op[x] = acc;
    }
  }
}

template <int R, int NR, typename T>
TSV_NOINLINE void autovec_run(Grid2D<T>& g, const Stencil2D<R, NR, T>& s, index steps,
                              Workspace& ws) {
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid2D<T>& in,
                                           Grid2D<T>& out) {
    autovec_step_region(in, out, s, 0, g.nx(), 0, g.ny());
  });
}

template <int R, int NR, typename T>
void autovec_run(Grid2D<T>& g, const Stencil2D<R, NR, T>& s, index steps) {
  Workspace ws;
  autovec_run(g, s, steps, ws);
}

// ---- 3D --------------------------------------------------------------------

template <int R, int NR, typename T>
TSV_NOINLINE void autovec_step_region(const Grid3D<T>& in, Grid3D<T>& out,
                         const Stencil3D<R, NR, T>& s, index xlo, index xhi,
                         index ylo, index yhi, index zlo, index zhi) {
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index z = zlo; z < zhi; ++z)
    for (index y = ylo; y < yhi; ++y) {
      T* __restrict op = out.row(y, z);
      std::array<const T*, NR> rp;
      for (int r = 0; r < NR; ++r)
        rp[r] = in.row(y + s.rows[r].dy, z + s.rows[r].dz);
#pragma omp simd
      for (index x = xlo; x < xhi; ++x) {
        T acc = 0;
        for (int r = 0; r < NR; ++r)
          for (int dx = -R; dx <= R; ++dx) acc += w[r][dx + R] * rp[r][x + dx];
        op[x] = acc;
      }
    }
}

template <int R, int NR, typename T>
TSV_NOINLINE void autovec_run(Grid3D<T>& g, const Stencil3D<R, NR, T>& s, index steps,
                              Workspace& ws) {
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid3D<T>& in,
                                           Grid3D<T>& out) {
    autovec_step_region(in, out, s, 0, g.nx(), 0, g.ny(), 0, g.nz());
  });
}

template <int R, int NR, typename T>
void autovec_run(Grid3D<T>& g, const Stencil3D<R, NR, T>& s, index steps) {
  Workspace ws;
  autovec_run(g, s, steps, ws);
}

}  // namespace tsv
