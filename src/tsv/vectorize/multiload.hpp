#pragma once
// "Multiple loads" vectorization baseline (paper §2.1, first solution).
//
// Every shifted input vector is re-loaded from memory with an unaligned
// load — no inter-register data reorganization at all. This inflates the
// CPU-memory transfer volume and incurs unaligned-access penalties, which is
// exactly the behaviour the paper measures for this method.

#include "tsv/vectorize/method_common.hpp"

namespace tsv {

namespace detail {

/// Vector-accumulates all taps of one padded row at position x.
template <typename V, int R>
TSV_ALWAYS_INLINE V multiload_row_acc(const vec_value_t<V>* p, index x,
                           const std::array<vec_value_t<V>, 2 * R + 1>& w,
                           V acc) {
  static_for<0, 2 * R + 1>([&]<int DXI>() {
    if (w[DXI] != 0)
      acc = fma(V::broadcast(w[DXI]), V::loadu(p + x + (DXI - R)), acc);
  });
  return acc;
}

/// Scalar tap application on one padded row.
template <int R, typename T>
TSV_ALWAYS_INLINE T scalar_row_acc(const T* p, index x,
                             const std::array<T, 2 * R + 1>& w, T acc) {
  for (int dx = -R; dx <= R; ++dx) acc += w[dx + R] * p[x + dx];
  return acc;
}

}  // namespace detail

// ---- 1D --------------------------------------------------------------------

template <typename V, int R>
TSV_NOINLINE void multiload_step_region(const Grid1D<vec_value_t<V>>& in,
                           Grid1D<vec_value_t<V>>& out,
                           const Stencil1D<R, vec_value_t<V>>& s, index xlo,
                           index xhi) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  const T* ip = in.x0();
  T* op = out.x0();
  index x = xlo;
  for (; x + W <= xhi; x += W) {
    const V acc = detail::multiload_row_acc<V, R>(ip, x, s.w, V::zero());
    acc.storeu(op + x);
  }
  for (; x < xhi; ++x)
    op[x] = detail::scalar_row_acc<R>(ip, x, s.w, T(0));
}

template <typename V, int R>
TSV_NOINLINE void multiload_run(Grid1D<vec_value_t<V>>& g,
                   const Stencil1D<R, vec_value_t<V>>& s, index steps,
                   Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid1D<T>& in,
                                           Grid1D<T>& out) {
    multiload_step_region<V>(in, out, s, 0, g.nx());
  });
}

template <typename V, int R>
void multiload_run(Grid1D<vec_value_t<V>>& g,
                   const Stencil1D<R, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  multiload_run<V>(g, s, steps, ws);
}

// ---- 2D --------------------------------------------------------------------

template <typename V, int R, int NR>
TSV_NOINLINE void multiload_step_region(const Grid2D<vec_value_t<V>>& in,
                           Grid2D<vec_value_t<V>>& out,
                           const Stencil2D<R, NR, vec_value_t<V>>& s,
                           index xlo, index xhi, index ylo, index yhi) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index y = ylo; y < yhi; ++y) {
    T* op = out.row(y);
    std::array<const T*, NR> rp;
    for (int r = 0; r < NR; ++r) rp[r] = in.row(y + s.rows[r].dy);
    index x = xlo;
    for (; x + W <= xhi; x += W) {
      V acc = V::zero();
      for (int r = 0; r < NR; ++r)
        acc = detail::multiload_row_acc<V, R>(rp[r], x, w[r], acc);
      acc.storeu(op + x);
    }
    for (; x < xhi; ++x) {
      T acc = 0;
      for (int r = 0; r < NR; ++r)
        acc = detail::scalar_row_acc<R>(rp[r], x, w[r], acc);
      op[x] = acc;
    }
  }
}

template <typename V, int R, int NR>
TSV_NOINLINE void multiload_run(Grid2D<vec_value_t<V>>& g,
                   const Stencil2D<R, NR, vec_value_t<V>>& s, index steps,
                   Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid2D<T>& in,
                                           Grid2D<T>& out) {
    multiload_step_region<V>(in, out, s, 0, g.nx(), 0, g.ny());
  });
}

template <typename V, int R, int NR>
void multiload_run(Grid2D<vec_value_t<V>>& g,
                   const Stencil2D<R, NR, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  multiload_run<V>(g, s, steps, ws);
}

// ---- 3D --------------------------------------------------------------------

template <typename V, int R, int NR>
TSV_NOINLINE void multiload_step_region(const Grid3D<vec_value_t<V>>& in,
                           Grid3D<vec_value_t<V>>& out,
                           const Stencil3D<R, NR, vec_value_t<V>>& s,
                           index xlo, index xhi, index ylo, index yhi,
                           index zlo, index zhi) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index z = zlo; z < zhi; ++z)
    for (index y = ylo; y < yhi; ++y) {
      T* op = out.row(y, z);
      std::array<const T*, NR> rp;
      for (int r = 0; r < NR; ++r)
        rp[r] = in.row(y + s.rows[r].dy, z + s.rows[r].dz);
      index x = xlo;
      for (; x + W <= xhi; x += W) {
        V acc = V::zero();
        for (int r = 0; r < NR; ++r)
          acc = detail::multiload_row_acc<V, R>(rp[r], x, w[r], acc);
        acc.storeu(op + x);
      }
      for (; x < xhi; ++x) {
        T acc = 0;
        for (int r = 0; r < NR; ++r)
          acc = detail::scalar_row_acc<R>(rp[r], x, w[r], acc);
        op[x] = acc;
      }
    }
}

template <typename V, int R, int NR>
TSV_NOINLINE void multiload_run(Grid3D<vec_value_t<V>>& g,
                   const Stencil3D<R, NR, vec_value_t<V>>& s, index steps,
                   Workspace& ws) {
  using T = vec_value_t<V>;
  jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid3D<T>& in,
                                           Grid3D<T>& out) {
    multiload_step_region<V>(in, out, s, 0, g.nx(), 0, g.ny(), 0, g.nz());
  });
}

template <typename V, int R, int NR>
void multiload_run(Grid3D<vec_value_t<V>>& g,
                   const Stencil3D<R, NR, vec_value_t<V>>& s, index steps) {
  Workspace ws;
  multiload_run<V>(g, s, steps, ws);
}

}  // namespace tsv
