#pragma once
// The paper's transpose-layout vectorization scheme (§3.2, Fig. 2-3).
//
// The grid's unit-stride rows live in register-block transpose layout (see
// layout/block_transpose.hpp). One W²-element block forms a *vector set* of W
// aligned vectors; updating a set needs only 2R assembled vectors:
//
//   * R left dependents:  assemble_left(prev-set vector W-l, vector W-l)
//     — only lane W-1 of the first operand is read; it equals element B-l.
//   * R right dependents: assemble_right(vector l-1, ·) where lane 0 of the
//     second operand is element B+W²+l-1 — a scalar broadcast from the next
//     block (position (l-1)·W when transposed) or from the original-layout
//     halo at the row end.
//
// Everything else is aligned loads, FMAs and aligned stores. Neighbour rows
// (2D/3D) contribute through the same machinery at their own row pointers;
// rows whose only tap is the centre need no assembly at all. The whole
// scheme is generic over the element type: with float elements every vector
// set covers twice the cells of the double variant at the same register
// count.

#include "tsv/layout/block_transpose.hpp"
#include "tsv/vectorize/method_common.hpp"

namespace tsv {

namespace detail {

/// Per-tap-row sweep state: the previous set's input vectors W-R..W-1.
template <typename V, int R>
struct LeftTail {
  V v[R];

  /// Boundary initialisation: lane W-1 of v[R-l] must equal element -l,
  /// which lives at original position -l in the row's x halo.
  static LeftTail boundary(const vec_value_t<V>* row) {
    LeftTail t;
    static_for<1, R + 1>([&]<int L>() { t.v[R - L] = V::broadcast(row[-L]); });
    return t;
  }

  TSV_ALWAYS_INLINE void update_from_set(const V (&set)[V::width]) {
    static_for<0, R>([&]<int I>() { v[I] = set[V::width - R + I]; });
  }
};

/// Right-dependent scalar #l (l in 1..R) of the set with base @p base:
/// element base+W²+l-1, read from the next transposed block or, at the row
/// end, from the original-layout halo.
template <int W, typename T>
TSV_ALWAYS_INLINE T right_dep_scalar(const T* row, index base, index nx,
                               int l) {
  const index x = base + W * W + (l - 1);
  return (x < nx) ? row[base + W * W + (l - 1) * W] : row[x];
}

/// Accumulates one tap row into acc[W] for the vector set at @p base.
/// @p v holds the row's W input vectors; @p tail its left-tail state.
template <typename V, int R>
TSV_ALWAYS_INLINE void transpose_set_acc(
    const vec_value_t<V>* row, index base, index nx, const V (&v)[V::width],
    const std::array<vec_value_t<V>, 2 * R + 1>& w, const LeftTail<V, R>& tail,
    V (&acc)[V::width]) {
  constexpr int W = V::width;
  // All indices below are compile-time so ext/v/acc stay in registers even
  // when the surrounding function is compiled without IPA cloning.
  V ext[W + 2 * R];
  static_for<0, V::width>([&]<int J>() { ext[R + J] = v[J]; });
  static_for<1, R + 1>([&]<int L>() {
    ext[R - L] = assemble_left(tail.v[R - L], v[W - L]);
  });
  static_for<1, R + 1>([&]<int L>() {
    ext[R + W - 1 + L] = assemble_right(
        v[L - 1], V::broadcast(right_dep_scalar<W>(row, base, nx, L)));
  });
  static_for<0, V::width>([&]<int J>() {
    static_for<0, 2 * R + 1>([&]<int DXI>() {
      if (w[DXI] != 0)
        acc[J] = fma(V::broadcast(w[DXI]), ext[J + DXI], acc[J]);
    });
  });
}

/// Centre-tap-only accumulation (star-stencil off-axis rows): plain FMAs.
template <typename V>
TSV_ALWAYS_INLINE void center_only_acc(const V (&v)[V::width], vec_value_t<V> wc,
                            V (&acc)[V::width]) {
  const V wv = V::broadcast(wc);
  static_for<0, V::width>([&]<int J>() { acc[J] = fma(wv, v[J], acc[J]); });
}

template <int R, typename T>
inline bool has_off_center(const std::array<T, 2 * R + 1>& w) {
  for (int dx = -R; dx <= R; ++dx)
    if (dx != 0 && w[dx + R] != 0) return true;
  return false;
}

}  // namespace detail

/// Reads interior element @p x of a transpose-layout row with original-layout
/// x halo (boundary/partial-set path).
template <int W, typename T>
TSV_ALWAYS_INLINE T load_tl(const T* row, index x, index nx) {
  return (x < 0 || x >= nx) ? row[x] : row[block_transposed_offset<W>(x)];
}

/// One Jacobi step over cells [xlo, xhi) of a row in transpose layout,
/// accumulating NR tap rows (rp[r] is the input row for tap row r; op the
/// output row; both in transpose layout with original-layout x halo; the
/// *whole* row is in transpose layout even outside the region).
///
/// Partial vector sets at the region rims (moving tile edges, paper §3.4)
/// are computed with the *same* vector kernel — input values outside
/// [xlo-R, xhi+R) may belong to other time levels, but they only reach
/// output lanes that a masked store then discards. This keeps the rims as
/// cheap as the interior, which is the goal of the paper's Fig. 5(d)
/// boundary treatment.
///
/// Stream = true writes full interior blocks with non-temporal stores (rim
/// blocks keep masked cached stores) — for working sets that exceed the
/// LLC, where write-allocate traffic is pure waste. The CALLER must execute
/// stream_fence() once per streamed step/region before another thread (or
/// the next time level) reads the output; fencing here would serialize the
/// store buffer once per row in the 2D/3D row loops. The plan layer selects
/// the instantiation via ResolvedOptions::streaming.
template <typename V, int R, int NR, bool Stream = false>
void transpose_sweep_row_region(
    const std::array<const vec_value_t<V>*, NR>& rp, vec_value_t<V>* op,
    const std::array<std::array<vec_value_t<V>, 2 * R + 1>, NR>& w, index nx,
    index xlo, index xhi) {
  constexpr int W = V::width;
  constexpr index B = block_elems<W>;
  if (xlo >= xhi) return;

  const index first = xlo / B * B;        // base of first touched block
  const index last = (xhi - 1) / B * B;   // base of last touched block

  std::array<bool, NR> off{};
  for (int r = 0; r < NR; ++r) off[r] = detail::has_off_center<R>(w[r]);

  std::array<detail::LeftTail<V, R>, NR> tails;
  for (int r = 0; r < NR; ++r) {
    if (first == 0) {
      tails[r] = detail::LeftTail<V, R>::boundary(rp[r]);
    } else {
      // Previous set exists in memory at the same time level (only its lane
      // W-1 — elements first-R..first-1, valid by the region contract — is
      // ever consumed).
      static_for<0, R>([&]<int I>() {
        tails[r].v[I] = V::load(rp[r] + (first - B) + (W - R + I) * W);
      });
    }
  }

  for (index base = first; base <= last; base += B) {
    V acc[W];
    static_for<0, W>([&]<int J>() { acc[J] = V::zero(); });
    for (int r = 0; r < NR; ++r) {
      V v[W];
      static_for<0, W>([&]<int J>() { v[J] = V::load(rp[r] + base + J * W); });
      if (off[r]) {
        detail::transpose_set_acc<V, R>(rp[r], base, nx, v, w[r], tails[r],
                                        acc);
        tails[r].update_from_set(v);
      } else {
        detail::center_only_acc<V>(v, w[r][R], acc);
      }
    }
    if (base >= xlo && base + B <= xhi) {
      static_for<0, W>([&]<int J>() {
        if constexpr (Stream)
          acc[J].stream(op + base + J * W);
        else
          acc[J].store(op + base + J * W);
      });
    } else {
      // Rim block: store only the cells inside [xlo, xhi).
      static_for<0, W>([&]<int J>() {
        unsigned mask = 0;
        for (int i = 0; i < W; ++i) {
          const index x = base + static_cast<index>(i) * W + J;
          if (x >= xlo && x < xhi) mask |= 1u << i;
        }
        acc[J].store_mask(op + base + J * W, mask);
      });
    }
  }
}

/// Full-row sweep (whole interior).
template <typename V, int R, int NR, bool Stream = false>
inline void transpose_sweep_row(
    const std::array<const vec_value_t<V>*, NR>& rp, vec_value_t<V>* op,
    const std::array<std::array<vec_value_t<V>, 2 * R + 1>, NR>& w, index nx) {
  transpose_sweep_row_region<V, R, NR, Stream>(rp, op, w, nx, 0, nx);
}

// The hot sweep is compiled exactly once, in src/tsv/kernels_tu.cpp — a
// minimal translation unit. Large user TUs that instantiate many drivers
// push GCC's inlining/scalarization heuristics into a regime where the
// kernel's Vec register arrays get materialized on the stack (~2x slower);
// extern template pins every caller to the clean instantiation instead.
// Instantiations not on this list still compile implicitly (correct, and
// usually fine because rare combinations imply small TUs).
#define TSV_DECLARE_TRANSPOSE_SWEEP(V, R, NR)                                \
  extern template void transpose_sweep_row_region<V, R, NR, false>(          \
      const std::array<const V::value_type*, NR>&, V::value_type*,           \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,    \
      index, index);                                                         \
  extern template void transpose_sweep_row_region<V, R, NR, true>(           \
      const std::array<const V::value_type*, NR>&, V::value_type*,           \
      const std::array<std::array<V::value_type, 2 * R + 1>, NR>&, index,    \
      index, index);

#define TSV_DECLARE_TRANSPOSE_SWEEPS_FOR(V) \
  TSV_DECLARE_TRANSPOSE_SWEEP(V, 1, 1)      \
  TSV_DECLARE_TRANSPOSE_SWEEP(V, 2, 1)      \
  TSV_DECLARE_TRANSPOSE_SWEEP(V, 1, 3)      \
  TSV_DECLARE_TRANSPOSE_SWEEP(V, 1, 5)      \
  TSV_DECLARE_TRANSPOSE_SWEEP(V, 1, 9)

#if !defined(TSV_KERNELS_TU)
TSV_DECLARE_TRANSPOSE_SWEEPS_FOR(VecD2)
TSV_DECLARE_TRANSPOSE_SWEEPS_FOR(VecF4)
#if defined(__AVX2__)
TSV_DECLARE_TRANSPOSE_SWEEPS_FOR(VecD4)
TSV_DECLARE_TRANSPOSE_SWEEPS_FOR(VecF8)
#endif
#if defined(__AVX512F__)
TSV_DECLARE_TRANSPOSE_SWEEPS_FOR(VecD8)
TSV_DECLARE_TRANSPOSE_SWEEPS_FOR(VecF16)
#endif
#endif  // !TSV_KERNELS_TU

// ---- full-grid steps (grids already in transpose layout) --------------------

template <typename V, bool Stream = false, int R>
void transpose_step(const Grid1D<vec_value_t<V>>& in,
                    Grid1D<vec_value_t<V>>& out,
                    const Stencil1D<R, vec_value_t<V>>& s) {
  transpose_sweep_row<V, R, 1, Stream>({in.x0()}, out.x0(), {s.w}, in.nx());
  if constexpr (Stream) stream_fence();
}

template <typename V, bool Stream = false, int R, int NR>
void transpose_step(const Grid2D<vec_value_t<V>>& in,
                    Grid2D<vec_value_t<V>>& out,
                    const Stencil2D<R, NR, vec_value_t<V>>& s) {
  using T = vec_value_t<V>;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index y = 0; y < in.ny(); ++y) {
    std::array<const T*, NR> rp;
    for (int r = 0; r < NR; ++r) rp[r] = in.row(y + s.rows[r].dy);
    transpose_sweep_row<V, R, NR, Stream>(rp, out.row(y), w, in.nx());
  }
  if constexpr (Stream) stream_fence();  // once per step, not per row
}

template <typename V, bool Stream = false, int R, int NR>
void transpose_step(const Grid3D<vec_value_t<V>>& in,
                    Grid3D<vec_value_t<V>>& out,
                    const Stencil3D<R, NR, vec_value_t<V>>& s) {
  using T = vec_value_t<V>;
  std::array<std::array<T, 2 * R + 1>, NR> w;
  for (int r = 0; r < NR; ++r) w[r] = padded_taps<R>(s.rows[r]);
  for (index z = 0; z < in.nz(); ++z)
    for (index y = 0; y < in.ny(); ++y) {
      std::array<const T*, NR> rp;
      for (int r = 0; r < NR; ++r)
        rp[r] = in.row(y + s.rows[r].dy, z + s.rows[r].dz);
      transpose_sweep_row<V, R, NR, Stream>(rp, out.row(y, z), w, in.nx());
    }
  if constexpr (Stream) stream_fence();  // once per step, not per row
}

// ---- run drivers: transform once, T steps inside the layout, transform back.

namespace detail {
template <typename Grid>
void require_transpose_conforming(const Grid& g, int width) {
  require_fmt(g.nx() % (static_cast<index>(width) * width) == 0,
              "transpose layout requires nx (", g.nx(),
              ") to be a multiple of W^2 = ", static_cast<index>(width) * width);
}
}  // namespace detail

/// Workspace-backed run: the Jacobi parity buffer comes from @p ws (steady
/// state is allocation-free); @p stream selects non-temporal write-back for
/// LLC-exceeding working sets (resolved by the plan layer).
template <typename V, typename Grid, typename S>
TSV_NOINLINE void transpose_vs_run(Grid& g, const S& s, index steps,
                                   Workspace& ws, bool stream = false) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  detail::require_transpose_conforming(g, W);
  block_transpose_grid<T, W>(g);
  if (stream)
    jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid& in, Grid& out) {
      transpose_step<V, true>(in, out, s);
    });
  else
    jacobi_run(g, steps, ws, kWsTmpGrid, [&](const Grid& in, Grid& out) {
      transpose_step<V>(in, out, s);
    });
  block_transpose_grid<T, W>(g);
}

template <typename V, typename Grid, typename S>
void transpose_vs_run(Grid& g, const S& s, index steps) {
  Workspace ws;
  transpose_vs_run<V>(g, s, steps, ws);
}

}  // namespace tsv
