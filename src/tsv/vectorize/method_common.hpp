#pragma once
// Helpers shared by the vectorization methods.

#include <array>
#include <utility>

#include "tsv/common/grid.hpp"
#include "tsv/core/workspace.hpp"
#include "tsv/kernels/stencil.hpp"
#include "tsv/simd/shift.hpp"
#include "tsv/simd/vec.hpp"

namespace tsv {

/// Element type a vector kernel computes in (the dtype the plan resolved).
template <typename V>
using vec_value_t = typename V::value_type;

/// Compile-time counted loop: static_for<0, N>([&]<int I>() { ... }).
///
/// Deliberately flat (one fold expression, no recursion): a recursive
/// formulation creates an N-deep call chain whose inlining GCC may abandon
/// under unit-growth pressure, at which point the lambda's by-reference
/// captures (typically Vec register arrays) get materialized on the stack
/// and every hot kernel built on this helper slows down ~2x.
template <int Begin, int End, typename F>
TSV_ALWAYS_INLINE constexpr void static_for(F&& f) {
  if constexpr (Begin < End) {
    [&]<int... I>(std::integer_sequence<int, I...>) TSV_ALWAYS_INLINE_LAMBDA {
      (f.template operator()<Begin + I>(), ...);
    }(std::make_integer_sequence<int, End - Begin>{});
  }
}

/// Centered tap array for a stencil row: result[dx + R] is the weight at
/// x-offset dx, zero where the row has no tap. Lets kernels unroll the tap
/// loop at compile time and skip structural zeros at run time.
template <int R, typename Row>
std::array<typename Row::value_type, 2 * R + 1> padded_taps(const Row& r) {
  std::array<typename Row::value_type, 2 * R + 1> w{};
  for (int dx = r.xlo; dx <= r.xhi; ++dx) w[dx + R] = r.w[dx - r.xlo];
  return w;
}

/// Runs @p step (in, out) @p steps times with buffer swapping; the result
/// lands back in @p g. @p step must leave halo cells alone.
template <typename Grid, typename StepFn>
void jacobi_run(Grid& g, index steps, StepFn&& step) {
  Grid tmp = g;  // copies interior + halo, so halo is valid in both buffers
  for (index t = 0; t < steps; ++t) {
    step(std::as_const(g), tmp);
    g.swap_storage(tmp);
  }
}

/// Workspace-backed variant: the parity buffer lives in @p ws under
/// @p slot, so steady-state runs are allocation-free. Only the halo is
/// refreshed from @p g — every step writes the whole interior before
/// reading it, so stale interior contents are never observed.
template <typename Grid, typename StepFn>
void jacobi_run(Grid& g, index steps, Workspace& ws, int slot, StepFn&& step) {
  if (steps <= 0) return;
  Grid& tmp = ws_grid_like(ws, slot, g);
  tmp.copy_halo_from(g);
  for (index t = 0; t < steps; ++t) {
    step(std::as_const(g), tmp);
    g.swap_storage(tmp);
  }
}

}  // namespace tsv
