#pragma once
// Generalized transpose layout with a runtime block row size m (paper §3.2).
//
// The paper's layout views each sub-sequence of vl*m elements as a vl x m
// matrix and transposes it. m spans a continuum:
//   m = 1    -> every vector needs assembled neighbours (reorg-like extreme),
//   m = W    -> the paper's choice (square register-transpose blocks),
//   m = nx/W -> one block per row = exactly DLT.
// The paper argues m >= 3 hides the 4r data-reorganization instructions per
// block behind the (2r+1)(m-1)+1 arithmetic vector operations, and fixes
// m = vl so the transpose itself stays in registers. bench/ablation_m sweeps
// m with this implementation to reproduce that analysis.
//
// This variant is deliberately runtime-m (vector window slides over each
// block); the production path (m == W, compile-time) lives in
// transpose_vs.hpp.

#include "tsv/vectorize/method_common.hpp"

namespace tsv {

/// Position of interior element @p x within the m-blocked layout.
template <int W>
constexpr index blocked_m_offset(index x, index m) {
  const index bl = W * m;
  const index base = x / bl * bl;
  const index e = x - base;
  return base + (e % m) * W + e / m;
}

/// In-place layout transform (self-inverse would not hold for m != W, so
/// forward/backward are separate). nx must be a multiple of W*m.
template <typename T, int W>
void blocked_m_forward_row(T* row, index nx, index m) {
  require_fmt(nx % (W * m) == 0, "blocked_m: nx=", nx,
              " not a multiple of W*m=", static_cast<index>(W) * m);
  std::vector<T> tmp(static_cast<std::size_t>(W) * m);
  const index bl = W * m;
  for (index base = 0; base < nx; base += bl) {
    for (index e = 0; e < bl; ++e) tmp[(e % m) * W + e / m] = row[base + e];
    for (index e = 0; e < bl; ++e) row[base + e] = tmp[e];
  }
}

template <typename T, int W>
void blocked_m_backward_row(T* row, index nx, index m) {
  require_fmt(nx % (W * m) == 0, "blocked_m: nx=", nx,
              " not a multiple of W*m=", static_cast<index>(W) * m);
  std::vector<T> tmp(static_cast<std::size_t>(W) * m);
  const index bl = W * m;
  for (index base = 0; base < nx; base += bl) {
    for (index e = 0; e < bl; ++e) tmp[e / W * 1 + (e % W) * m] = row[base + e];
    for (index e = 0; e < bl; ++e) row[base + e] = tmp[e];
  }
}

namespace detail {

/// Vector j of the block at @p base (j may spill into [-R, m+R) for edge
/// dependents; assembled exactly like the m == W scheme).
template <typename V, int R>
TSV_ALWAYS_INLINE V blocked_m_vec_at(const vec_value_t<V>* ip, index base,
                                     index m, index nx, index j) {
  constexpr int W = V::width;
  const index bl = W * m;
  if (j >= 0 && j < m) return V::load(ip + base + j * W);
  if (j < 0) {  // left dependent #l, l = -j
    const index l = -j;
    const V cur = V::load(ip + base + (m - l) * W);
    const V prev = (base == 0) ? V::broadcast(ip[-l])
                               : V::load(ip + base - bl + (m - l) * W);
    return assemble_left(prev, cur);
  }
  const index l = j - m + 1;  // right dependent #l
  const vec_value_t<V> sc = (base + bl + l - 1 < nx)
                                ? ip[base + bl + (l - 1) * W]
                                : ip[nx + l - 1];
  return assemble_right(V::load(ip + base + (l - 1) * W), V::broadcast(sc));
}

}  // namespace detail

/// One Jacobi step over an m-blocked row (out of place, full row).
template <typename V, int R>
void blocked_m_sweep_row(const vec_value_t<V>* ip, vec_value_t<V>* op,
                         const std::array<vec_value_t<V>, 2 * R + 1>& w,
                         index nx, index m) {
  constexpr int W = V::width;
  require_fmt(m >= R, "blocked_m: m must be >= stencil radius");
  const index bl = W * m;
  for (index base = 0; base < nx; base += bl) {
    V win[2 * R + 1];
    static_for<0, 2 * R + 1>([&]<int K>() {
      win[K] = detail::blocked_m_vec_at<V, R>(ip, base, m, nx, K - R);
    });
    for (index j = 0; j < m; ++j) {
      V acc = V::zero();
      static_for<0, 2 * R + 1>([&]<int DXI>() {
        if (w[DXI] != 0)
          acc = fma(V::broadcast(w[DXI]), win[DXI], acc);
      });
      acc.store(op + base + j * W);
      static_for<0, 2 * R>([&]<int K>() { win[K] = win[K + 1]; });
      win[2 * R] = detail::blocked_m_vec_at<V, R>(ip, base, m, nx, j + 1 + R);
    }
  }
}

/// Full run driver: forward transform, T Jacobi steps, backward transform.
template <typename V, int R>
TSV_NOINLINE void blocked_m_run(Grid1D<vec_value_t<V>>& g,
                                const Stencil1D<R, vec_value_t<V>>& s,
                                index steps, index m) {
  using T = vec_value_t<V>;
  constexpr int W = V::width;
  blocked_m_forward_row<T, W>(g.x0(), g.nx(), m);
  jacobi_run(g, steps, [&](const Grid1D<T>& in, Grid1D<T>& out) {
    blocked_m_sweep_row<V, R>(in.x0(), out.x0(), s.w, in.nx(), m);
  });
  blocked_m_backward_row<T, W>(g.x0(), g.nx(), m);
}

}  // namespace tsv
