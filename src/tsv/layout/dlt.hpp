#pragma once
// Dimension-Lifting Transpose (Henretty CC'11) — the baseline layout the
// paper compares against.
//
// A row of interior length n (multiple of W) is viewed as a W × (n/W) matrix
// in row-major order and globally transposed: element j·L + i (lane j,
// column i, L = n/W) moves to position i·W + j. A vectorized stencil then
// loads aligned vectors at (i±s)·W with no lane conflicts; only the W-1 lane
// seams (columns 0 and L-1) need cross-lane assembly.
//
// As the paper notes (§2.2), DLT is impractical to apply in place, so the
// transforms are out-of-place into a caller-provided scratch row.

#include "tsv/common/check.hpp"
#include "tsv/common/grid.hpp"

namespace tsv {

/// Position of interior element @p x in the DLT layout of a row of length n.
template <int W>
constexpr index dlt_offset(index x, index n) {
  const index L = n / W;
  const index j = x / L;  // lane
  const index i = x % L;  // column
  return i * W + j;
}

/// dst[i*W + j] = src[j*L + i]. n must be a multiple of W.
template <typename T, int W>
void dlt_forward_row(const T* src, T* dst, index n) {
  require_fmt(n % W == 0, "dlt_forward_row: n=", n, " not a multiple of W=",
              static_cast<index>(W));
  const index L = n / W;
  for (index i = 0; i < L; ++i)
    for (index j = 0; j < W; ++j) dst[i * W + j] = src[j * L + i];
}

/// Inverse of dlt_forward_row.
template <typename T, int W>
void dlt_backward_row(const T* src, T* dst, index n) {
  require_fmt(n % W == 0, "dlt_backward_row: n=", n, " not a multiple of W=",
              static_cast<index>(W));
  const index L = n / W;
  for (index i = 0; i < L; ++i)
    for (index j = 0; j < W; ++j) dst[j * L + i] = src[i * W + j];
}

/// Whole-grid DLT; @p dst must have the same shape as @p src. For rank >= 2
/// the y/z halo rows are transformed too (neighbour-row loads must share the
/// layout); the x halo of each row keeps original order and is read by the
/// seam-handling code.
template <typename T, int W>
void dlt_forward_grid(const Grid1D<T>& src, Grid1D<T>& dst) {
  dlt_forward_row<T, W>(src.x0(), dst.x0(), src.nx());
}

template <typename T, int W>
void dlt_backward_grid(const Grid1D<T>& src, Grid1D<T>& dst) {
  dlt_backward_row<T, W>(src.x0(), dst.x0(), src.nx());
}

template <typename T, int W>
void dlt_forward_grid(const Grid2D<T>& src, Grid2D<T>& dst) {
  for (index y = -src.halo(); y < src.ny() + src.halo(); ++y)
    dlt_forward_row<T, W>(src.row(y), dst.row(y), src.nx());
}

template <typename T, int W>
void dlt_backward_grid(const Grid2D<T>& src, Grid2D<T>& dst) {
  for (index y = -src.halo(); y < src.ny() + src.halo(); ++y)
    dlt_backward_row<T, W>(src.row(y), dst.row(y), src.nx());
}

template <typename T, int W>
void dlt_forward_grid(const Grid3D<T>& src, Grid3D<T>& dst) {
  for (index z = -src.halo(); z < src.nz() + src.halo(); ++z)
    for (index y = -src.halo(); y < src.ny() + src.halo(); ++y)
      dlt_forward_row<T, W>(src.row(y, z), dst.row(y, z), src.nx());
}

template <typename T, int W>
void dlt_backward_grid(const Grid3D<T>& src, Grid3D<T>& dst) {
  for (index z = -src.halo(); z < src.nz() + src.halo(); ++z)
    for (index y = -src.halo(); y < src.ny() + src.halo(); ++y)
      dlt_backward_row<T, W>(src.row(y, z), dst.row(y, z), src.nx());
}

}  // namespace tsv
