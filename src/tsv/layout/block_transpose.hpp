#pragma once
// The paper's register-block ("locally transposed") layout, §3.2.
//
// A unit-stride row whose interior length is a multiple of W² is split into
// blocks of W² elements. Inside block b (base B = b·W²) element B + i·W + j
// moves to position B + j·W + i — i.e. each block is transposed as a W×W
// matrix. One aligned vector at B + j·W (the j-th vector of the block's
// *vector set*) then holds elements {B + j, B + W + j, ..., B + (W-1)·W + j}.
//
// Halo cells and any x >= nx tail stay in original layout; the transforms
// below touch interior cells only.

#include "tsv/common/check.hpp"
#include "tsv/common/grid.hpp"
#include "tsv/simd/transpose.hpp"

namespace tsv {

/// Elements per block for vector width W.
template <int W>
constexpr index block_elems = static_cast<index>(W) * W;

/// Position of interior element @p x inside a block-transposed row.
/// Involution: applying it twice yields x.
template <int W>
constexpr index block_transposed_offset(index x) {
  const index base = x / block_elems<W> * block_elems<W>;
  const index e = x - base;
  const index i = e / W, j = e % W;
  return base + j * W + i;
}

/// Transposes every W² block of @p row[0 .. n). @p n must be a multiple of
/// W²; @p row must be 64-byte aligned. The transform is its own inverse.
template <typename T, int W>
void block_transpose_row(T* row, index n) {
  require_fmt(n % block_elems<W> == 0, "block_transpose_row: n=", n,
              " not a multiple of W^2=", block_elems<W>);
  for (index b = 0; b < n; b += block_elems<W>)
    transpose_block_inplace<T, W>(row + b);
}

/// Converts @p g between original and transpose layout (self-inverse).
///
/// For rank >= 2 the transform covers the y/z *halo rows* as well: stencil
/// kernels read neighbour rows at the same transposed offsets, so every row a
/// kernel can touch must share the layout. The x halo of every row stays in
/// original order — boundary assembly reads scalars from it.
template <typename T, int W>
void block_transpose_grid(Grid1D<T>& g) {
  block_transpose_row<T, W>(g.x0(), g.nx());
}

template <typename T, int W>
void block_transpose_grid(Grid2D<T>& g) {
  for (index y = -g.halo(); y < g.ny() + g.halo(); ++y)
    block_transpose_row<T, W>(g.row(y), g.nx());
}

template <typename T, int W>
void block_transpose_grid(Grid3D<T>& g) {
  for (index z = -g.halo(); z < g.nz() + g.halo(); ++z)
    for (index y = -g.halo(); y < g.ny() + g.halo(); ++y)
      block_transpose_row<T, W>(g.row(y, z), g.nx());
}

/// Reads interior element @p x from a block-transposed row (boundary and
/// test helper; hot paths use vector loads).
template <typename T, int W>
T load_transposed(const T* row, index x) {
  return row[block_transposed_offset<W>(x)];
}

template <typename T, int W>
void store_transposed(T* row, index x, T v) {
  row[block_transposed_offset<W>(x)] = v;
}

}  // namespace tsv
