// Tests for the public API: dispatch, validation, presets.
#include <gtest/gtest.h>

#include <cmath>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

double f1(index x) { return std::sin(0.05 * x) + 0.002 * x; }
double f2(index x, index y) { return std::sin(0.04 * x - 0.06 * y); }
double f3(index x, index y, index z) {
  return std::sin(0.04 * x - 0.06 * y + 0.02 * z);
}

TEST(Names, AreStable) {
  EXPECT_STREQ(method_name(Method::kTranspose), "transpose");
  EXPECT_STREQ(method_name(Method::kTransposeUJ), "transpose-uj2");
  EXPECT_STREQ(method_name(Method::kDlt), "dlt");
  EXPECT_STREQ(tiling_name(Tiling::kTessellate), "tessellate");
  EXPECT_STREQ(tiling_name(Tiling::kSplit), "split");
}

TEST(Run1D, EveryUntiledMethodMatchesReference) {
  const auto s = make_1d3p(0.3);
  const index nx = 256;
  Grid1D<double> ref(nx, 1);
  ref.fill(f1);
  reference_run(ref, s, 5);

  // Enumerated from the registry, not a hard-coded list: new methods are
  // covered the day their registry row lands.
  for (Method m : supported_methods(Tiling::kNone, 1)) {
    Grid1D<double> g(nx, 1);
    g.fill(f1);
    Options o;
    o.method = m;
    o.tiling = Tiling::kNone;
    o.isa = best_isa();
    o.steps = 5;
    run(g, s, o);
    EXPECT_LE(max_abs_diff(ref, g), 1e-11) << method_name(m);
  }
}

TEST(Run1D, TiledCombosMatchReference) {
  const auto s = make_1d3p(0.3);
  const index nx = 512;
  Grid1D<double> ref(nx, 1);
  ref.fill(f1);
  reference_run(ref, s, 8);

  struct Combo {
    Method m;
    Tiling t;
  };
  const Combo combos[] = {{Method::kAutoVec, Tiling::kTessellate},
                          {Method::kReorg, Tiling::kTessellate},
                          {Method::kTranspose, Tiling::kTessellate},
                          {Method::kTransposeUJ, Tiling::kTessellate},
                          {Method::kDlt, Tiling::kSplit}};
  for (const auto& c : combos) {
    Grid1D<double> g(nx, 1);
    g.fill(f1);
    Options o;
    o.method = c.m;
    o.tiling = c.t;
    o.isa = best_isa();
    o.steps = 8;
    o.bx = 128;
    o.bt = 4;
    o.threads = 4;
    run(g, s, o);
    EXPECT_LE(max_abs_diff(ref, g), 1e-11)
        << method_name(c.m) << "+" << tiling_name(c.t);
  }
}

TEST(Run2D, DispatchAcrossIsas) {
  const auto s = make_2d5p(0.5, 0.12, 0.13);
  const index nx = 128, ny = 16;
  Grid2D<double> ref(nx, ny, 1);
  ref.fill(f2);
  reference_run(ref, s, 4);

  for (Isa isa : runnable_isas()) {
    Grid2D<double> g(nx, ny, 1);
    g.fill(f2);
    Options o;
    o.method = Method::kTranspose;
    o.isa = isa;
    o.steps = 4;
    run(g, s, o);
    EXPECT_LE(max_abs_diff(ref, g), 1e-11) << isa_name(isa);
  }
}

TEST(Run3D, TiledTransposeUJ) {
  const auto s = make_3d7p();
  const index nx = 128, ny = 16, nz = 16;
  Grid3D<double> ref(nx, ny, nz, 1);
  ref.fill(f3);
  reference_run(ref, s, 4);

  Grid3D<double> g(nx, ny, nz, 1);
  g.fill(f3);
  Options o;
  o.method = Method::kTransposeUJ;
  o.tiling = Tiling::kTessellate;
  o.isa = best_isa();
  o.steps = 4;
  o.bx = 64;
  o.by = 8;
  o.bz = 8;
  o.bt = 2;
  o.threads = 4;
  run(g, s, o);
  EXPECT_LE(max_abs_diff(ref, g), 1e-11);
}

TEST(Run, RejectsInvalidConfigurations) {
  const auto s = make_1d3p();
  Grid1D<double> g(64, 1);
  g.fill(f1);
  Options o;

  o.steps = -1;
  EXPECT_THROW(run(g, s, o), std::invalid_argument);

  o = Options{};
  o.method = Method::kReorg;  // split tiling needs DLT
  o.tiling = Tiling::kSplit;
  o.steps = 2;
  o.bx = 32;
  o.bt = 2;
  EXPECT_THROW(run(g, s, o), ConfigError);

  o = Options{};
  o.method = Method::kDlt;  // tessellate excludes DLT
  o.tiling = Tiling::kTessellate;
  o.steps = 2;
  o.bx = 32;
  o.bt = 2;
  EXPECT_THROW(run(g, s, o), ConfigError);
}

TEST(Run, TiledRunResolvesDefaultBlocks) {
  // The seed threw on missing bx/bt; the plan engine resolves sane
  // defaults instead and the result still matches the reference.
  const auto s = make_1d3p();
  const index nx = 256;
  Grid1D<double> ref(nx, 1), g(nx, 1);
  ref.fill(f1);
  g.fill(f1);
  reference_run(ref, s, 2);

  Options o;
  o.tiling = Tiling::kTessellate;
  o.steps = 2;  // bx/bt unset on purpose
  EXPECT_NO_THROW(run(g, s, o));
  EXPECT_LE(max_abs_diff(ref, g), 1e-11);
}

TEST(Problems, Table1PresetsAreConforming) {
  for (bool paper : {false, true}) {
    const auto probs = table1_problems(paper);
    ASSERT_EQ(probs.size(), 6u);
    for (const auto& p : probs) {
      EXPECT_EQ(p.nx % 64, 0) << p.name;  // W^2 for AVX-512 doubles
      EXPECT_GT(p.steps, 0) << p.name;
      EXPECT_GT(p.bt, 0) << p.name;
      EXPECT_GE(p.bx, 2 * 2 * p.bt * (p.ny == 1 ? 1 : 0) * 0 + 1) << p.name;
    }
    // 1D problems must satisfy the tessellation constraint bx >= 2*r*bt.
    EXPECT_GE(probs[0].bx, 2 * 1 * probs[0].bt);
    EXPECT_GE(probs[1].bx, 2 * 2 * probs[1].bt);
  }
}

}  // namespace
}  // namespace tsv
