// Persistent tune database tests: warm-start round trip with the
// zero-timed-trials counter assertion, fingerprint and schema rejection,
// corruption tolerance (truncated/garbage/empty files), pin survival across
// a reload, merge semantics (union of keys, last writer wins) and atomicity
// under racing writers. Every contract in core/tunedb.hpp is pinned here.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tsv/tsv.hpp"

namespace tsv {
namespace {

/// Fresh path under the gtest temp dir; any pre-existing file removed.
std::string db_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "tsv_tunedb_" + name + ".json";
  std::remove(p.c_str());
  return p;
}

std::string slurp_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  out << body;
}

TuneKey sample_key(index nx = 4096, int threads = 2) {
  TuneKey key;
  key.method = Method::kTranspose;
  key.tiling = Tiling::kTessellate;
  key.rank = 1;
  key.isa = Isa::kScalar;
  key.dtype = Dtype::kF64;
  key.nx = nx;
  key.radius = 1;
  key.threads = threads;
  key.steps = 100;
  return key;
}

class TuneDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tune_cache_clear();
    tune_counters_reset();
  }
  void TearDown() override { tune_cache_clear(); }
};

TEST_F(TuneDbTest, StatusNamesAreDistinct) {
  EXPECT_STREQ(tune_db_status_name(TuneDbStatus::kLoaded), "loaded");
  EXPECT_STREQ(tune_db_status_name(TuneDbStatus::kMissing), "missing");
  EXPECT_STREQ(tune_db_status_name(TuneDbStatus::kCorrupt), "corrupt");
  EXPECT_STREQ(tune_db_status_name(TuneDbStatus::kSchemaMismatch),
               "schema-mismatch");
  EXPECT_STREQ(tune_db_status_name(TuneDbStatus::kFingerprintMismatch),
               "fingerprint-mismatch");
}

TEST_F(TuneDbTest, CurrentFingerprintIsPopulated) {
  const TuneDbFingerprint fp = TuneDbFingerprint::current();
  EXPECT_FALSE(fp.isas.empty());
  EXPECT_NE(fp.isas.find("scalar"), std::string::npos);
  EXPECT_GT(fp.cores, 0);
  EXPECT_EQ(fp.f32_bytes, 4);
  EXPECT_EQ(fp.f64_bytes, 8);
  EXPECT_TRUE(fp == TuneDbFingerprint::current());
}

TEST_F(TuneDbTest, RoundTripRestoresEntries) {
  const std::string path = db_path("roundtrip");
  const TuneKey key = sample_key();
  const TunedBlocks blocks{1024, 0, 0, 4};
  tune_cache_store(key, blocks);

  ASSERT_TRUE(tune_db_save(path));
  tune_cache_clear();
  ASSERT_EQ(tune_cache_size(), 0u);

  const TuneDbLoadResult r = tune_db_load(path);
  EXPECT_TRUE(r.loaded()) << r.detail;
  EXPECT_EQ(r.entries, 1u);
  const auto hit = tune_cache_lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, blocks);
  std::remove(path.c_str());
}

// The headline guarantee: a warm-started plan performs ZERO timed trials,
// proven by the trial_executions counter staying flat — and its memo hit is
// attributed to the db (db_warm_hits), not to an in-process trial.
TEST_F(TuneDbTest, WarmStartRunsZeroTimedTrials) {
  const std::string path = db_path("warmstart");
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = 12;
  o.tune = Tune::kCached;
  const auto s = make_1d3p(0.3);
  const Shape shape = shape1d(2048);

  // Cold: the trial search runs and pays timed executions.
  const auto cold = make_plan(shape, s, o);
  const TuneCounters after_cold = tune_counters();
  EXPECT_GE(after_cold.trial_searches, 1u);
  EXPECT_GT(after_cold.trial_executions, 0u);
  EXPECT_EQ(after_cold.db_warm_hits, 0u);
  ASSERT_TRUE(tune_db_save(path));

  // Simulated restart: empty memo cache, fresh counters, db on disk.
  tune_cache_clear();
  tune_counters_reset();
  const TuneDbLoadResult r = tune_db_load(path);
  ASSERT_TRUE(r.loaded()) << r.detail;
  EXPECT_GE(r.entries, 1u);

  const auto warm = make_plan(shape, s, o);
  const TuneCounters after_warm = tune_counters();
  EXPECT_EQ(after_warm.trial_executions, 0u)
      << "warm start must not re-run timed trials";
  EXPECT_EQ(after_warm.trial_searches, 0u);
  EXPECT_GE(after_warm.db_warm_hits, 1u);
  EXPECT_LE(after_warm.db_warm_hits, after_warm.memo_hits);
  EXPECT_LE(after_warm.memo_hits, after_warm.lookups);

  // Same blocks as the cold plan: the db replayed the decision.
  EXPECT_EQ(warm.config().bx, cold.config().bx);
  EXPECT_EQ(warm.config().bt, cold.config().bt);
  std::remove(path.c_str());
}

TEST_F(TuneDbTest, ForeignFingerprintIsRejected) {
  const std::string path = db_path("foreign");
  tune_cache_store(sample_key(), {1024, 0, 0, 4});
  ASSERT_TRUE(tune_db_save(path));

  // Forge another machine's db by doubling the core count.
  std::string body = slurp_file(path);
  const std::string cores =
      "\"cores\":" + std::to_string(TuneDbFingerprint::current().cores);
  const auto pos = body.find(cores);
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, cores.size(),
               "\"cores\":" +
                   std::to_string(TuneDbFingerprint::current().cores * 2));
  write_file(path, body);

  tune_cache_clear();
  tune_counters_reset();
  const TuneDbLoadResult r = tune_db_load(path);
  EXPECT_EQ(r.status, TuneDbStatus::kFingerprintMismatch);
  EXPECT_EQ(tune_cache_size(), 0u) << "nothing merged from a foreign db";
  EXPECT_EQ(tune_counters().db_load_rejects, 1u);
  EXPECT_EQ(tune_counters().db_entries_loaded, 0u);
  std::remove(path.c_str());
}

TEST_F(TuneDbTest, UnknownSchemaIsRejectedAndPreserved) {
  const std::string path = db_path("schema");
  const std::string future =
      "{\n \"schema\": 99,\n \"something\": \"this build cannot read\"\n}\n";
  write_file(path, future);

  // Load: rejected as a schema mismatch, not corrupt.
  const TuneDbLoadResult r = tune_db_load(path);
  EXPECT_EQ(r.status, TuneDbStatus::kSchemaMismatch);
  EXPECT_EQ(tune_cache_size(), 0u);

  // Save: must FAIL and leave the future file byte-identical.
  tune_cache_store(sample_key(), {1024, 0, 0, 4});
  std::string err;
  EXPECT_FALSE(tune_db_save(path, &err));
  EXPECT_NE(err.find("schema"), std::string::npos) << err;
  EXPECT_EQ(slurp_file(path), future) << "future-schema db was clobbered";
  std::remove(path.c_str());
}

TEST_F(TuneDbTest, CorruptTruncatedAndEmptyFilesAreIgnored) {
  const std::string path = db_path("corrupt");
  tune_cache_store(sample_key(), {1024, 0, 0, 4});
  ASSERT_TRUE(tune_db_save(path));
  const std::string good = slurp_file(path);

  const std::string cases[] = {
      "",                            // empty
      "not json at all",             // garbage
      good.substr(0, good.size() / 2),  // truncated mid-envelope
      "{\"schema\": true}",          // wrong type where a number belongs
      good + "trailing garbage",     // valid prefix, trailing junk
  };
  for (const std::string& c : cases) {
    write_file(path, c);
    tune_cache_clear();
    tune_counters_reset();
    const TuneDbLoadResult r = tune_db_load(path);
    EXPECT_EQ(r.status, TuneDbStatus::kCorrupt)
        << "case: " << c.substr(0, 32);
    EXPECT_EQ(tune_cache_size(), 0u)
        << "corrupt db must never poison the memo cache";
    EXPECT_EQ(tune_counters().db_load_rejects, 1u);
  }

  // A corrupt file is replaced by the next save (its content is
  // unreadable; preserving it helps no one).
  write_file(path, "garbage");
  tune_cache_clear();
  tune_cache_store(sample_key(), {512, 0, 0, 2});
  ASSERT_TRUE(tune_db_save(path));
  tune_cache_clear();
  EXPECT_TRUE(tune_db_load(path).loaded());
  std::remove(path.c_str());
}

TEST_F(TuneDbTest, MissingFileIsSilentlyMissing) {
  tune_counters_reset();
  const TuneDbLoadResult r = tune_db_load(db_path("missing"));
  EXPECT_EQ(r.status, TuneDbStatus::kMissing);
  EXPECT_FALSE(r.loaded());
  EXPECT_EQ(tune_counters().db_load_rejects, 0u)
      << "a cold start is normal, not a reject";
}

// Save merges the file's existing same-fingerprint entries underneath the
// process snapshot: disjoint keys union, conflicting keys take the newer
// process's value (last writer wins).
TEST_F(TuneDbTest, SaveMergesUnionAndLastWriterWins) {
  const std::string path = db_path("merge");
  const TuneKey a = sample_key(1024);
  const TuneKey b = sample_key(2048);
  tune_cache_store(a, {111, 0, 0, 2});
  ASSERT_TRUE(tune_db_save(path));

  // "Second process": knows b, and disagrees about a.
  tune_cache_clear();
  tune_cache_store(a, {222, 0, 0, 4});
  tune_cache_store(b, {333, 0, 0, 8});
  ASSERT_TRUE(tune_db_save(path));

  tune_cache_clear();
  const TuneDbLoadResult r = tune_db_load(path);
  ASSERT_TRUE(r.loaded()) << r.detail;
  EXPECT_EQ(r.entries, 2u) << "disjoint keys must union";
  EXPECT_EQ(tune_cache_lookup(a)->bx, 222) << "last writer must win";
  EXPECT_EQ(tune_cache_lookup(b)->bx, 333);
  std::remove(path.c_str());
}

// User pins are part of the tune key; a db round trip must keep pinned and
// unpinned entries for the same shape distinct.
TEST_F(TuneDbTest, PinsSurviveReload) {
  const std::string path = db_path("pins");
  const TuneKey unpinned = sample_key();
  TuneKey pinned = sample_key();
  pinned.pin_bx = 256;
  tune_cache_store(unpinned, {1024, 0, 0, 4});
  tune_cache_store(pinned, {256, 0, 0, 4});
  ASSERT_TRUE(tune_db_save(path));

  tune_cache_clear();
  ASSERT_TRUE(tune_db_load(path).loaded());
  ASSERT_TRUE(tune_cache_lookup(unpinned).has_value());
  ASSERT_TRUE(tune_cache_lookup(pinned).has_value());
  EXPECT_EQ(tune_cache_lookup(unpinned)->bx, 1024);
  EXPECT_EQ(tune_cache_lookup(pinned)->bx, 256);
  std::remove(path.c_str());
}

// Racing writers must never produce a torn file: every save writes a
// private temp and renames it into place, so a concurrent load (or the
// final state) always parses. The race's loser loses whole-file.
TEST_F(TuneDbTest, RacingWritersNeverTearTheFile) {
  const std::string path = db_path("race");
  constexpr int kWriters = 8;
  for (int i = 0; i < kWriters; ++i)
    tune_cache_store(sample_key(index{256} << i), {64, 0, 0, 2});

  std::vector<std::thread> threads;
  for (int i = 0; i < kWriters; ++i)
    threads.emplace_back([&] { EXPECT_TRUE(tune_db_save(path)); });
  for (auto& t : threads) t.join();

  tune_cache_clear();
  const TuneDbLoadResult r = tune_db_load(path);
  ASSERT_TRUE(r.loaded()) << "racing saves tore the file: " << r.detail;
  EXPECT_EQ(r.entries, std::size_t{kWriters});
  std::remove(path.c_str());
}

TEST_F(TuneDbTest, EnvEntryPointsAreInertWhenUnset) {
  ASSERT_EQ(::unsetenv(kTuneDbEnvVar), 0);
  EXPECT_FALSE(tune_db_env_path().has_value());
  EXPECT_EQ(tune_db_load_env().status, TuneDbStatus::kMissing);
  EXPECT_FALSE(tune_db_save_env());
  TuneDbSession inert;  // no path: loads nothing, saves nothing
  EXPECT_FALSE(inert.active());
}

TEST_F(TuneDbTest, SessionLoadsOnConstructionAndSavesOnDestruction) {
  const std::string path = db_path("session");
  tune_cache_store(sample_key(), {1024, 0, 0, 4});
  {
    TuneDbSession db(path);
    EXPECT_TRUE(db.active());
    EXPECT_EQ(db.load_result().status, TuneDbStatus::kMissing);
  }  // dtor saves the cache
  tune_cache_clear();
  {
    TuneDbSession db(path);
    EXPECT_TRUE(db.load_result().loaded());
    EXPECT_EQ(tune_cache_size(), 1u);
  }
  std::remove(path.c_str());
}

TEST_F(TuneDbTest, SaveFailsCleanlyOnUnwritablePath) {
  tune_cache_store(sample_key(), {1024, 0, 0, 4});
  std::string err;
  EXPECT_FALSE(tune_db_save("/nonexistent-dir/sub/db.json", &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace tsv
