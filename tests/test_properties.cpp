// Property-based suites, parameterized over (method, tiling, size, steps).
//
// These pin down *mathematical invariants* of the Jacobi stencil operator
// that every implementation must preserve regardless of layout or schedule:
//   * agreement with the scalar reference (the master property),
//   * linearity in the input field,
//   * fixed point on constant fields when the weights sum to one,
//   * translation equivariance away from the boundary,
//   * determinism (bitwise-identical repeated runs),
//   * halo immutability.
//
// The file ends with two seeded randomized DIFFERENTIAL FUZZERS: the first
// draws (method, tiling, rank, dtype, boundary, shape, blocks, steps,
// coeffs) tuples from the capability registry for the compiled Table-1
// kinds; the second draws the stencil SHAPE itself — random GenericStencil
// tap sets (star, box, asymmetric; radius <= 3; random weights; optional
// per-cell coefficient field) — and runs them through the register-blocked
// interpreter (Method::kGeneric). Each tuple executes through the
// rank-erased plan path and is checked against the boundary-aware scalar
// oracle. The seed is deterministic (override with TSV_FUZZ_SEED; the
// nightly job also raises the tuple budget with TSV_FUZZ_TUPLES) and is
// printed with every failure, so any found divergence replays exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <tuple>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

struct MethodCase {
  Method method;
  Tiling tiling;
};

std::string case_name(const MethodCase& c) {
  std::string s = method_name(c.method);
  if (c.tiling != Tiling::kNone) {
    s += "_";
    s += tiling_name(c.tiling);
  }
  for (auto& ch : s)
    if (ch == '-') ch = '_';
  return s;
}

Options make_options(const MethodCase& c, index steps) {
  Options o;
  o.method = c.method;
  o.tiling = c.tiling;
  o.isa = best_isa();
  o.steps = steps;
  o.bx = 128;
  o.by = 16;
  o.bz = 16;
  o.bt = 4;
  o.threads = 4;
  return o;
}

double noise1(index x) { return std::sin(0.21 * x) * std::cos(0.047 * x); }

// ---------------------------------------------------------------------------
// 1D property suite.
// ---------------------------------------------------------------------------

using Params1D = std::tuple<MethodCase, index /*nx*/, index /*steps*/>;

class Property1D : public ::testing::TestWithParam<Params1D> {
 protected:
  MethodCase method() const { return std::get<0>(GetParam()); }
  index nx() const { return std::get<1>(GetParam()); }
  index steps() const { return std::get<2>(GetParam()); }

  template <typename F>
  Grid1D<double> run_on(F&& init, const Stencil1D<1>& s) const {
    Grid1D<double> g(nx(), 1);
    g.fill(init);
    run(g, s, make_options(method(), steps()));
    return g;
  }
};

TEST_P(Property1D, MatchesScalarReference) {
  const auto s = make_1d3p(0.31);
  Grid1D<double> ref(nx(), 1);
  ref.fill(noise1);
  reference_run(ref, s, steps());
  const Grid1D<double> got = run_on(noise1, s);
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property1D, LinearInInput) {
  const auto s = make_1d3p(0.27);
  auto f = [](index x) { return noise1(x); };
  auto g = [](index x) { return 0.3 * std::cos(0.11 * x) + 0.001 * x; };
  const double a = 1.75;
  const Grid1D<double> rf = run_on(f, s);
  const Grid1D<double> rg = run_on(g, s);
  const Grid1D<double> rsum =
      run_on([&](index x) { return a * f(x) + g(x); }, s);
  for (index x = 0; x < nx(); ++x)
    EXPECT_NEAR(rsum.at(x), a * rf.at(x) + rg.at(x), 1e-10) << "x=" << x;
}

TEST_P(Property1D, ConstantFieldIsFixedPoint) {
  const auto s = make_1d3p(1.0 / 3.0);  // weights sum to 1
  const Grid1D<double> r = run_on([](index) { return 5.5; }, s);
  for (index x = 0; x < nx(); ++x) EXPECT_NEAR(r.at(x), 5.5, 1e-11);
}

TEST_P(Property1D, Deterministic) {
  const auto s = make_1d3p(0.29);
  const Grid1D<double> a = run_on(noise1, s);
  const Grid1D<double> b = run_on(noise1, s);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);  // bitwise identical
}

TEST_P(Property1D, HaloUntouched) {
  const auto s = make_1d3p(0.31);
  Grid1D<double> g(nx(), 1);
  g.fill(noise1);
  const double left = g.at(-1), right = g.at(nx());
  run(g, s, make_options(method(), steps()));
  EXPECT_EQ(g.at(-1), left);
  EXPECT_EQ(g.at(nx()), right);
}

TEST_P(Property1D, ZeroStepsIsIdentity) {
  const auto s = make_1d3p(0.31);
  Grid1D<double> g(nx(), 1), orig(nx(), 1);
  g.fill(noise1);
  orig.fill(noise1);
  run(g, s, make_options(method(), 0));
  EXPECT_EQ(max_abs_diff(orig, g), 0.0);
}

const MethodCase kUntiled1D[] = {
    {Method::kAutoVec, Tiling::kNone},   {Method::kMultiLoad, Tiling::kNone},
    {Method::kReorg, Tiling::kNone},     {Method::kDlt, Tiling::kNone},
    {Method::kTranspose, Tiling::kNone}, {Method::kTransposeUJ, Tiling::kNone},
    {Method::kAutoVec, Tiling::kTessellate},
    {Method::kReorg, Tiling::kTessellate},
    {Method::kTranspose, Tiling::kTessellate},
    {Method::kTransposeUJ, Tiling::kTessellate},
    {Method::kDlt, Tiling::kSplit},
};

INSTANTIATE_TEST_SUITE_P(
    Methods, Property1D,
    ::testing::Combine(::testing::ValuesIn(kUntiled1D),
                       ::testing::Values<index>(256, 448),
                       ::testing::Values<index>(1, 6)),
    [](const ::testing::TestParamInfo<Params1D>& info) {
      return case_name(std::get<0>(info.param)) + "_nx" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// 2D property suite.
// ---------------------------------------------------------------------------

using Params2D = std::tuple<MethodCase, index /*steps*/>;

class Property2D : public ::testing::TestWithParam<Params2D> {
 protected:
  static constexpr index kNx = 128, kNy = 24;
  MethodCase method() const { return std::get<0>(GetParam()); }
  index steps() const { return std::get<1>(GetParam()); }
};

TEST_P(Property2D, MatchesScalarReferenceStar) {
  const auto s = make_2d5p(0.42, 0.15, 0.14);
  Grid2D<double> ref(kNx, kNy, 1), got(kNx, kNy, 1);
  auto init = [](index x, index y) { return noise1(x + 31 * y); };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property2D, MatchesScalarReferenceBox) {
  const auto s = make_2d9p(0.18, 0.12, 0.05);
  Grid2D<double> ref(kNx, kNy, 1), got(kNx, kNy, 1);
  auto init = [](index x, index y) { return noise1(3 * x - 7 * y); };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property2D, TranslationEquivariantInY) {
  const auto s = make_2d5p(0.42, 0.15, 0.14);
  auto f = [](index x, index y) { return noise1(x + 13 * y); };
  Grid2D<double> a(kNx, kNy, 1), b(kNx, kNy, 1);
  a.fill([&](index x, index y) { return f(x, y); });
  b.fill([&](index x, index y) { return f(x, y + 2); });
  run(a, s, make_options(method(), steps()));
  run(b, s, make_options(method(), steps()));
  const index margin = 2 + static_cast<index>(steps());
  for (index y = margin; y < kNy - margin - 2; ++y)
    for (index x = 0; x < kNx; ++x)
      EXPECT_NEAR(b.at(x, y), a.at(x, y + 2), 1e-10)
          << "(" << x << "," << y << ")";
}

const MethodCase kCases2D[] = {
    {Method::kAutoVec, Tiling::kNone},
    {Method::kMultiLoad, Tiling::kNone},
    {Method::kReorg, Tiling::kNone},
    {Method::kDlt, Tiling::kNone},
    {Method::kTranspose, Tiling::kNone},
    {Method::kTransposeUJ, Tiling::kNone},
    {Method::kAutoVec, Tiling::kTessellate},
    {Method::kTranspose, Tiling::kTessellate},
    {Method::kTransposeUJ, Tiling::kTessellate},
    {Method::kDlt, Tiling::kSplit},
};

INSTANTIATE_TEST_SUITE_P(
    Methods, Property2D,
    ::testing::Combine(::testing::ValuesIn(kCases2D),
                       ::testing::Values<index>(1, 4)),
    [](const ::testing::TestParamInfo<Params2D>& info) {
      return case_name(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// 3D property suite.
// ---------------------------------------------------------------------------

class Property3D : public ::testing::TestWithParam<Params2D> {
 protected:
  static constexpr index kNx = 64, kNy = 12, kNz = 10;
  MethodCase method() const { return std::get<0>(GetParam()); }
  index steps() const { return std::get<1>(GetParam()); }
};

TEST_P(Property3D, MatchesScalarReferenceStar) {
  const auto s = make_3d7p(0.4, 0.11, 0.09, 0.1);
  Grid3D<double> ref(kNx, kNy, kNz, 1), got(kNx, kNy, kNz, 1);
  auto init = [](index x, index y, index z) {
    return noise1(x + 17 * y - 5 * z);
  };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property3D, MatchesScalarReferenceBox) {
  const auto s = make_3d27p(0.11);
  Grid3D<double> ref(kNx, kNy, kNz, 1), got(kNx, kNy, kNz, 1);
  auto init = [](index x, index y, index z) {
    return noise1(2 * x - 3 * y + 11 * z);
  };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property3D, ConstantFixedPoint) {
  const auto s = make_3d7p(0.4, 0.1, 0.1, 0.1);  // sums to 1
  Grid3D<double> g(kNx, kNy, kNz, 1);
  g.fill([](index, index, index) { return -2.25; });
  run(g, s, make_options(method(), steps()));
  for (index z = 0; z < kNz; ++z)
    for (index y = 0; y < kNy; ++y)
      for (index x = 0; x < kNx; ++x)
        EXPECT_NEAR(g.at(x, y, z), -2.25, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, Property3D,
    ::testing::Combine(::testing::ValuesIn(kCases2D),
                       ::testing::Values<index>(1, 4)),
    [](const ::testing::TestParamInfo<Params2D>& info) {
      return case_name(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Tiling-parameter sweep: tiled result must not depend on the blocking.
// ---------------------------------------------------------------------------

using TileParams = std::tuple<index /*bx*/, index /*bt*/>;

class TilingInvariance : public ::testing::TestWithParam<TileParams> {};

TEST_P(TilingInvariance, ResultIndependentOfBlocking) {
  const auto [bx, bt] = GetParam();
  const index nx = 512;
  const auto s = make_1d3p(0.3);
  Grid1D<double> ref(nx, 1);
  ref.fill(noise1);
  reference_run(ref, s, 12);

  for (Method m : {Method::kTranspose, Method::kTransposeUJ}) {
    if (m == Method::kTransposeUJ && bt % 2 != 0) continue;
    Grid1D<double> g(nx, 1);
    g.fill(noise1);
    Options o;
    o.method = m;
    o.tiling = Tiling::kTessellate;
    o.isa = best_isa();
    o.steps = 12;
    o.bx = bx;
    o.bt = bt;
    o.threads = 3;
    run(g, s, o);
    EXPECT_LE(max_abs_diff(ref, g), 1e-11)
        << method_name(m) << " bx=" << bx << " bt=" << bt;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, TilingInvariance,
    ::testing::Combine(::testing::Values<index>(64, 128, 256, 512),
                       ::testing::Values<index>(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<TileParams>& info) {
      return "bx" + std::to_string(std::get<0>(info.param)) + "_bt" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Seeded randomized differential fuzzer.
//
// Every iteration draws one registry capability and randomizes everything a
// plan depends on around it — rank (from the row's rank mask), dtype (from
// its dtype mask), ISA (from the runnable set), per-axis boundaries, odd or
// width-aligned extents as the row's layout rule allows, temporal block,
// thread count, steps and runtime stencil coefficients — then executes the
// rank-erased plan and compares against the boundary-aware scalar oracle
// built from the SAME coefficients. Tuples the resolver legitimately
// rejects (a ConfigError) are resampled, but the test fails if it cannot
// land enough executed tuples: a fuzzer that silently rejects everything
// would pass vacuously.
// ---------------------------------------------------------------------------

namespace fuzz {

using Rng = std::mt19937_64;

index pick(Rng& rng, std::initializer_list<index> xs) {
  std::vector<index> v(xs);
  return v[rng() % v.size()];
}

/// A width-legal interior extent for the row's layout rule: odd/unaligned
/// shapes when the rule allows any nx, width-multiples otherwise.
index draw_nx(Rng& rng, XRule rule, index width) {
  switch (rule) {
    case XRule::kNone:
      return pick(rng, {33, 57, 96, 130, 255, 256, 384});
    case XRule::kWidth:
      return width * static_cast<index>(2 + rng() % 30);
    case XRule::kWidth2:
      return width * width * static_cast<index>(1 + rng() % 4);
  }
  return 256;
}

Boundary draw_boundary(Rng& rng) {
  const auto& all = all_boundaries();
  return all[rng() % all.size()];
}

/// The Table-1 kinds at a given rank (the fuzzer's stencil axis).
StencilKind draw_kind(Rng& rng, int rank) {
  switch (rank) {
    case 1: return rng() % 2 ? StencilKind::k1d5p : StencilKind::k1d3p;
    case 2: return rng() % 2 ? StencilKind::k2d9p : StencilKind::k2d5p;
    default: return rng() % 2 ? StencilKind::k3d27p : StencilKind::k3d7p;
  }
}

std::string describe(const StencilSpec& spec, const Shape& shape,
                     const Options& o, std::uint64_t seed, int iter) {
  std::ostringstream os;
  os << "seed=" << seed << " iter=" << iter << " kind="
     << stencil_kind_name(spec.kind) << " method=" << method_name(o.method)
     << " tiling=" << tiling_name(o.tiling) << " isa=" << isa_name(o.isa)
     << " dtype=" << dtype_name(o.dtype) << " shape=" << shape.nx << "x"
     << shape.ny << "x" << shape.nz << " halo=" << shape.halo
     << " steps=" << o.steps << " bt=" << o.bt << " threads=" << o.threads
     << " bc=" << boundary_name(o.boundary.x) << "/"
     << boundary_name(o.boundary.y) << "/" << boundary_name(o.boundary.z)
     << " coeffs=[";
  for (std::size_t i = 0; i < spec.coeffs.size(); ++i)
    os << (i ? "," : "") << spec.coeffs[i];
  os << "]  (replay: TSV_FUZZ_SEED=" << seed << ")";
  return os.str();
}

/// Executes one sampled tuple and diffs it against the oracle. Returns
/// false when the resolver rejected the tuple (the caller resamples).
template <typename T, typename G, typename S>
bool run_tuple(const S& stencil, const StencilSpec& spec, const Shape& shape,
               const Options& o, const std::string& label, index salt) {
  auto init = [&](index lin) {
    return static_cast<T>(0.2 + 1e-3 * static_cast<double>((salt * 17 + lin * 5) % 97));
  };
  G got = [&] {
    if constexpr (detail::grid_rank<G> == 1)
      return G(shape.nx, shape.halo);
    else if constexpr (detail::grid_rank<G> == 2)
      return G(shape.nx, shape.ny, shape.halo);
    else
      return G(shape.nx, shape.ny, shape.nz, shape.halo);
  }();
  if constexpr (detail::grid_rank<G> == 1)
    got.fill([&](index x) { return init(x); });
  else if constexpr (detail::grid_rank<G> == 2)
    got.fill([&](index x, index y) { return init(x + 131 * y); });
  else
    got.fill([&](index x, index y, index z) {
      return init(x + 131 * y + 1031 * z);
    });
  G ref = got;

  Plan plan;
  try {
    plan = make_plan(shape, spec, o);
  } catch (const ConfigError&) {
    return false;  // legitimately rejected tuple: resample
  }
  plan.execute(got);
  // The oracle reads the RESOLVED boundary (axes beyond the rank are
  // normalized there) so method and oracle see identical ghost fills.
  reference_run(ref, stencil, o.steps, plan.config().boundary);
  EXPECT_LE(static_cast<double>(max_abs_diff(ref, got)),
            accuracy_tolerance<T>(o.steps))
      << label;
  return true;
}

/// Dispatches a sampled kind to its compile-time stencil with the sampled
/// runtime coefficients — the same factory mapping the rank-erased plan
/// uses, so the differential really is method-vs-oracle, never
/// stencil-vs-stencil.
template <typename T>
bool run_kind(const StencilSpec& spec, const Shape& shape, const Options& o,
              const std::string& label, index salt) {
  const std::vector<double>& c = spec.coeffs;
  switch (spec.kind) {
    case StencilKind::k1d3p:
      return run_tuple<T, Grid1D<T>>(make_1d3p<T>(c[0]), spec, shape, o,
                                     label, salt);
    case StencilKind::k1d5p:
      return run_tuple<T, Grid1D<T>>(make_1d5p<T>(c[0], c[1], c[2]), spec,
                                     shape, o, label, salt);
    case StencilKind::k2d5p:
      return run_tuple<T, Grid2D<T>>(make_2d5p<T>(c[0], c[1], c[2]), spec,
                                     shape, o, label, salt);
    case StencilKind::k2d9p:
      return run_tuple<T, Grid2D<T>>(make_2d9p<T>(c[0], c[1], c[2]), spec,
                                     shape, o, label, salt);
    case StencilKind::k3d7p:
      return run_tuple<T, Grid3D<T>>(make_3d7p<T>(c[0], c[1], c[2], c[3]),
                                     spec, shape, o, label, salt);
    case StencilKind::k3d27p:
      return run_tuple<T, Grid3D<T>>(make_3d27p<T>(c[0]), spec, shape, o,
                                     label, salt);
  }
  return false;
}

}  // namespace fuzz

TEST(RandomizedDifferential, SampledTuplesMatchOracle) {
  std::uint64_t seed = 20260728;
  if (const char* env = std::getenv("TSV_FUZZ_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fuzz::Rng rng(seed);

  // 32 executed tuples per smoke run; the nightly job raises the budget via
  // TSV_FUZZ_TUPLES (an absolute executed-tuple count for both fuzzers).
  int tuples = 32;
  if (const char* env = std::getenv("TSV_FUZZ_TUPLES"))
    tuples = std::atoi(env);
  const int max_draws = tuples * 13;  // resample budget across the whole run
  int executed = 0, draws = 0;
  while (executed < tuples && draws < max_draws) {
    ++draws;
    const auto& caps = capabilities();
    const Capability& cap = caps[rng() % caps.size()];

    // Rank from the row's mask; dtype from its dtype mask.
    std::vector<int> ranks;
    for (int r = 1; r <= 3; ++r)
      if (cap.supports_rank(r)) ranks.push_back(r);
    const int rank = ranks[rng() % ranks.size()];
    std::vector<Dtype> dtypes;
    for (Dtype d : all_dtypes())
      if (cap.supports_dtype(d)) dtypes.push_back(d);
    const Dtype dtype = dtypes[rng() % dtypes.size()];
    const auto isas = runnable_isas();
    const Isa isa = isas[rng() % isas.size()];

    const StencilKind kind = fuzz::draw_kind(rng, rank);
    const int radius = stencil_kind_radius(kind);

    Options o;
    o.method = cap.method;
    o.tiling = cap.tiling;
    o.isa = isa;
    o.dtype = dtype;
    o.steps = static_cast<index>(rng() % 6);  // 0..5, incl. identity runs
    o.threads = 1 + static_cast<int>(rng() % 3);
    o.boundary = {fuzz::draw_boundary(rng),
                  rank >= 2 ? fuzz::draw_boundary(rng) : Boundary::kDirichlet,
                  rank >= 3 ? fuzz::draw_boundary(rng) : Boundary::kDirichlet};
    if (o.tiling != Tiling::kNone && rng() % 3 == 0)
      o.bt = cap.needs_even_bt ? fuzz::pick(rng, {2, 4}) : fuzz::pick(rng, {1, 2, 4});

    Shape shape;
    shape.rank = rank;
    shape.halo = radius;
    shape.nx = fuzz::draw_nx(rng, cap.x_rule, kernel_width(isa, dtype));
    // Wrap/mirror fills need extent >= radius; the y/z draws respect that.
    shape.ny = rank >= 2 ? fuzz::pick(rng, {3, 5, 8, 13, 17}) : 1;
    shape.nz = rank >= 3 ? fuzz::pick(rng, {3, 4, 7, 10}) : 1;
    if (shape.nx < 2 * radius) continue;

    StencilSpec spec;
    spec.kind = kind;
    std::uniform_real_distribution<double> coeff(0.02, 0.28);
    for (std::size_t i = 0; i < stencil_kind_coeff_count(kind); ++i)
      spec.coeffs.push_back(coeff(rng));

    const std::string label =
        fuzz::describe(spec, shape, o, seed, executed);
    const bool ran =
        dtype == Dtype::kF32
            ? fuzz::run_kind<float>(spec, shape, o, label, draws)
            : fuzz::run_kind<double>(spec, shape, o, label, draws);
    if (ran) ++executed;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "fuzzer stopped at first divergence; " << label;
      break;
    }
  }
  // A fuzzer that rejects (or exhausts) its way to a pass proves nothing.
  EXPECT_GE(executed, tuples)
      << "only " << executed << " tuples executed in " << draws
      << " draws (seed=" << seed << ")";
}

// ---------------------------------------------------------------------------
// Generic-shape differential fuzzer.
//
// Where the fuzzer above randomizes everything AROUND six fixed stencil
// shapes, this one draws the shape itself: a random GenericStencil — rank,
// radius <= kMaxGenericRadius, a star / box / asymmetric tap set with random
// weights (normalized so sum |w| ~ 0.95, keeping an O(1) field O(1) over the
// <= 5 fuzzed steps so the absolute tolerance stays meaningful), and with
// probability ~1/4 a per-cell coefficient field — then executes it through
// every plan stage the registry claims for Method::kGeneric (both tilings,
// runnable ISAs, both dtypes, all boundaries) and diffs against the
// runtime-tap oracle generic_reference_run. Tolerances are dtype-aware and
// widened by the tap count: a 27+ tap box reassociates proportionally more
// partial products per output than the 3-tap kinds kTolSlack was sized for.
// ---------------------------------------------------------------------------

namespace fuzz {

/// A random generic stencil shape. Half the draws declare `radius`
/// explicitly, half leave it 0 (derived) — both spellings must plan.
GenericStencil draw_generic(Rng& rng, int rank, int radius) {
  GenericStencil gs;
  gs.rank = rank;
  if (rng() % 2) gs.radius = radius;
  auto has = [&](int dx, int dy, int dz) {
    for (const GenericTap& t : gs.taps)
      if (t.dx == dx && t.dy == dy && t.dz == dz) return true;
    return false;
  };
  auto add = [&](int dx, int dy, int dz) {
    if (!has(dx, dy, dz)) gs.taps.push_back({dx, dy, dz, 0.0});
  };
  switch (rng() % 3) {
    case 0:  // star: center plus axis arms out to the radius
      add(0, 0, 0);
      for (int d = 1; d <= radius; ++d) {
        add(+d, 0, 0);
        add(-d, 0, 0);
        if (rank >= 2) add(0, +d, 0), add(0, -d, 0);
        if (rank >= 3) add(0, 0, +d), add(0, 0, -d);
      }
      break;
    case 1:  // box: the full Chebyshev ball
      for (int dz = rank >= 3 ? -radius : 0; dz <= (rank >= 3 ? radius : 0);
           ++dz)
        for (int dy = rank >= 2 ? -radius : 0;
             dy <= (rank >= 2 ? radius : 0); ++dy)
          for (int dx = -radius; dx <= radius; ++dx) add(dx, dy, dz);
      break;
    default: {  // asymmetric: a random sparse subset, no symmetry at all
      const int want = 1 + static_cast<int>(rng() % 12);
      auto draw_off = [&] {
        return static_cast<int>(rng() % (2 * radius + 1)) - radius;
      };
      for (int i = 0; i < want; ++i)
        add(draw_off(), rank >= 2 ? draw_off() : 0,
            rank >= 3 ? draw_off() : 0);
      break;
    }
  }
  std::uniform_real_distribution<double> wd(-1.0, 1.0);
  double sum = 0.0;
  for (GenericTap& t : gs.taps) {
    t.weight = wd(rng);
    sum += std::abs(t.weight);
  }
  if (sum < 1e-3) {
    gs.taps.front().weight = 0.5;
    sum = 0.0;
    for (const GenericTap& t : gs.taps) sum += std::abs(t.weight);
  }
  for (GenericTap& t : gs.taps) t.weight *= 0.95 / sum;
  return gs;
}

std::string describe_generic(const GenericStencil& gs, const Shape& shape,
                             const Options& o, std::uint64_t seed, int iter) {
  std::ostringstream os;
  os << "seed=" << seed << " iter=" << iter << " generic rank=" << gs.rank
     << " radius=" << gs.effective_radius() << " taps=" << gs.taps.size()
     << (gs.scale.empty() ? "" : " +scale")
     << " tiling=" << tiling_name(o.tiling) << " isa=" << isa_name(o.isa)
     << " dtype=" << dtype_name(o.dtype) << " shape=" << shape.nx << "x"
     << shape.ny << "x" << shape.nz << " halo=" << shape.halo
     << " steps=" << o.steps << " bt=" << o.bt << " threads=" << o.threads
     << " bc=" << boundary_name(o.boundary.x) << "/"
     << boundary_name(o.boundary.y) << "/" << boundary_name(o.boundary.z)
     << "  (replay: TSV_FUZZ_SEED=" << seed << ")";
  return os.str();
}

/// Executes one sampled generic tuple against the runtime-tap oracle.
/// Returns false when the resolver rejected the tuple (caller resamples).
template <typename T, typename G>
bool run_generic_tuple(const std::shared_ptr<const GenericStencil>& gs,
                       const Shape& shape, const Options& o,
                       const std::string& label, index salt) {
  auto init = [&](index lin) {
    return static_cast<T>(
        0.2 + 1e-3 * static_cast<double>((salt * 17 + lin * 5) % 97));
  };
  G got = [&] {
    if constexpr (detail::grid_rank<G> == 1)
      return G(shape.nx, shape.halo);
    else if constexpr (detail::grid_rank<G> == 2)
      return G(shape.nx, shape.ny, shape.halo);
    else
      return G(shape.nx, shape.ny, shape.nz, shape.halo);
  }();
  if constexpr (detail::grid_rank<G> == 1)
    got.fill([&](index x) { return init(x); });
  else if constexpr (detail::grid_rank<G> == 2)
    got.fill([&](index x, index y) { return init(x + 131 * y); });
  else
    got.fill([&](index x, index y, index z) {
      return init(x + 131 * y + 1031 * z);
    });
  G ref = got;

  StencilSpec spec;
  spec.generic = gs;
  Plan plan;
  try {
    plan = make_plan(shape, spec, o);
  } catch (const ConfigError&) {
    return false;  // legitimately rejected tuple: resample
  }
  plan.execute(got);
  generic_reference_run(ref, *gs, o.steps, plan.config().boundary);
  const double tol =
      accuracy_tolerance<T>(o.steps) *
      std::max(1.0, static_cast<double>(gs->taps.size()) / 8.0);
  EXPECT_LE(static_cast<double>(max_abs_diff(ref, got)), tol) << label;
  return true;
}

template <typename T>
bool run_generic_rank(const std::shared_ptr<const GenericStencil>& gs,
                      const Shape& shape, const Options& o,
                      const std::string& label, index salt) {
  switch (shape.rank) {
    case 1:
      return run_generic_tuple<T, Grid1D<T>>(gs, shape, o, label, salt);
    case 2:
      return run_generic_tuple<T, Grid2D<T>>(gs, shape, o, label, salt);
    default:
      return run_generic_tuple<T, Grid3D<T>>(gs, shape, o, label, salt);
  }
}

}  // namespace fuzz

TEST(RandomizedDifferential, GenericShapesMatchOracle) {
  std::uint64_t seed = 20260728;
  if (const char* env = std::getenv("TSV_FUZZ_SEED"))
    seed = std::strtoull(env, nullptr, 10);
  fuzz::Rng rng(seed);

  // 64 executed tuples per smoke run; the nightly job raises this ~20x via
  // TSV_FUZZ_TUPLES (an absolute executed-tuple count, not a multiplier).
  int tuples = 64;
  if (const char* env = std::getenv("TSV_FUZZ_TUPLES"))
    tuples = std::atoi(env);
  const int max_draws = tuples * 12;  // resample budget
  int executed = 0, draws = 0;
  while (executed < tuples && draws < max_draws) {
    ++draws;
    const int rank = 1 + static_cast<int>(rng() % 3);
    const int radius = 1 + static_cast<int>(rng() % kMaxGenericRadius);
    auto gs = std::make_shared<GenericStencil>(
        fuzz::draw_generic(rng, rank, radius));

    Options o;
    o.method = Method::kGeneric;
    o.tiling = rng() % 2 ? Tiling::kTessellate : Tiling::kNone;
    const auto isas = runnable_isas();
    o.isa = isas[rng() % isas.size()];
    o.dtype = rng() % 2 ? Dtype::kF32 : Dtype::kF64;
    o.steps = static_cast<index>(rng() % 6);  // 0..5, incl. identity runs
    o.threads = 1 + static_cast<int>(rng() % 3);
    o.boundary = {fuzz::draw_boundary(rng),
                  rank >= 2 ? fuzz::draw_boundary(rng) : Boundary::kDirichlet,
                  rank >= 3 ? fuzz::draw_boundary(rng) : Boundary::kDirichlet};
    if (o.tiling != Tiling::kNone && rng() % 3 == 0)
      o.bt = fuzz::pick(rng, {1, 2, 4});

    Shape shape;
    shape.rank = rank;
    shape.halo = gs->effective_radius();
    // The generic rows claim XRule::kNone, so odd/unaligned extents are
    // always legal; rank-3 boxes get smaller grids to bound the sweep cost.
    shape.nx = rank >= 3 ? fuzz::pick(rng, {33, 57, 96})
                         : fuzz::pick(rng, {33, 57, 96, 130, 255, 256, 384});
    shape.ny = rank >= 2 ? fuzz::pick(rng, {3, 5, 8, 13, 17}) : 1;
    shape.nz = rank >= 3 ? fuzz::pick(rng, {3, 4, 7, 10}) : 1;
    if (shape.nx < 2 * shape.halo) continue;

    // ~1/4 of tuples carry a per-cell coefficient field sized to the
    // interior; values in [0.5, 1] keep the damping contraction intact.
    if (rng() % 4 == 0) {
      GenericStencil with_scale = *gs;
      with_scale.scale_nx = shape.nx;
      with_scale.scale_ny = shape.ny;
      with_scale.scale_nz = shape.nz;
      std::uniform_real_distribution<double> sd(0.5, 1.0);
      with_scale.scale.resize(
          static_cast<std::size_t>(shape.nx * shape.ny * shape.nz));
      for (double& v : with_scale.scale) v = sd(rng);
      gs = std::make_shared<GenericStencil>(std::move(with_scale));
    }

    const std::string label =
        fuzz::describe_generic(*gs, shape, o, seed, executed);
    const bool ran =
        o.dtype == Dtype::kF32
            ? fuzz::run_generic_rank<float>(gs, shape, o, label, draws)
            : fuzz::run_generic_rank<double>(gs, shape, o, label, draws);
    if (ran) ++executed;
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "fuzzer stopped at first divergence; " << label;
      break;
    }
  }
  EXPECT_GE(executed, tuples)
      << "only " << executed << " generic tuples executed in " << draws
      << " draws (seed=" << seed << ")";
}

}  // namespace
}  // namespace tsv
