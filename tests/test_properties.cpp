// Property-based suites, parameterized over (method, tiling, size, steps).
//
// These pin down *mathematical invariants* of the Jacobi stencil operator
// that every implementation must preserve regardless of layout or schedule:
//   * agreement with the scalar reference (the master property),
//   * linearity in the input field,
//   * fixed point on constant fields when the weights sum to one,
//   * translation equivariance away from the boundary,
//   * determinism (bitwise-identical repeated runs),
//   * halo immutability.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

struct MethodCase {
  Method method;
  Tiling tiling;
};

std::string case_name(const MethodCase& c) {
  std::string s = method_name(c.method);
  if (c.tiling != Tiling::kNone) {
    s += "_";
    s += tiling_name(c.tiling);
  }
  for (auto& ch : s)
    if (ch == '-') ch = '_';
  return s;
}

Options make_options(const MethodCase& c, index steps) {
  Options o;
  o.method = c.method;
  o.tiling = c.tiling;
  o.isa = best_isa();
  o.steps = steps;
  o.bx = 128;
  o.by = 16;
  o.bz = 16;
  o.bt = 4;
  o.threads = 4;
  return o;
}

double noise1(index x) { return std::sin(0.21 * x) * std::cos(0.047 * x); }

// ---------------------------------------------------------------------------
// 1D property suite.
// ---------------------------------------------------------------------------

using Params1D = std::tuple<MethodCase, index /*nx*/, index /*steps*/>;

class Property1D : public ::testing::TestWithParam<Params1D> {
 protected:
  MethodCase method() const { return std::get<0>(GetParam()); }
  index nx() const { return std::get<1>(GetParam()); }
  index steps() const { return std::get<2>(GetParam()); }

  template <typename F>
  Grid1D<double> run_on(F&& init, const Stencil1D<1>& s) const {
    Grid1D<double> g(nx(), 1);
    g.fill(init);
    run(g, s, make_options(method(), steps()));
    return g;
  }
};

TEST_P(Property1D, MatchesScalarReference) {
  const auto s = make_1d3p(0.31);
  Grid1D<double> ref(nx(), 1);
  ref.fill(noise1);
  reference_run(ref, s, steps());
  const Grid1D<double> got = run_on(noise1, s);
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property1D, LinearInInput) {
  const auto s = make_1d3p(0.27);
  auto f = [](index x) { return noise1(x); };
  auto g = [](index x) { return 0.3 * std::cos(0.11 * x) + 0.001 * x; };
  const double a = 1.75;
  const Grid1D<double> rf = run_on(f, s);
  const Grid1D<double> rg = run_on(g, s);
  const Grid1D<double> rsum =
      run_on([&](index x) { return a * f(x) + g(x); }, s);
  for (index x = 0; x < nx(); ++x)
    EXPECT_NEAR(rsum.at(x), a * rf.at(x) + rg.at(x), 1e-10) << "x=" << x;
}

TEST_P(Property1D, ConstantFieldIsFixedPoint) {
  const auto s = make_1d3p(1.0 / 3.0);  // weights sum to 1
  const Grid1D<double> r = run_on([](index) { return 5.5; }, s);
  for (index x = 0; x < nx(); ++x) EXPECT_NEAR(r.at(x), 5.5, 1e-11);
}

TEST_P(Property1D, Deterministic) {
  const auto s = make_1d3p(0.29);
  const Grid1D<double> a = run_on(noise1, s);
  const Grid1D<double> b = run_on(noise1, s);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);  // bitwise identical
}

TEST_P(Property1D, HaloUntouched) {
  const auto s = make_1d3p(0.31);
  Grid1D<double> g(nx(), 1);
  g.fill(noise1);
  const double left = g.at(-1), right = g.at(nx());
  run(g, s, make_options(method(), steps()));
  EXPECT_EQ(g.at(-1), left);
  EXPECT_EQ(g.at(nx()), right);
}

TEST_P(Property1D, ZeroStepsIsIdentity) {
  const auto s = make_1d3p(0.31);
  Grid1D<double> g(nx(), 1), orig(nx(), 1);
  g.fill(noise1);
  orig.fill(noise1);
  run(g, s, make_options(method(), 0));
  EXPECT_EQ(max_abs_diff(orig, g), 0.0);
}

const MethodCase kUntiled1D[] = {
    {Method::kAutoVec, Tiling::kNone},   {Method::kMultiLoad, Tiling::kNone},
    {Method::kReorg, Tiling::kNone},     {Method::kDlt, Tiling::kNone},
    {Method::kTranspose, Tiling::kNone}, {Method::kTransposeUJ, Tiling::kNone},
    {Method::kAutoVec, Tiling::kTessellate},
    {Method::kReorg, Tiling::kTessellate},
    {Method::kTranspose, Tiling::kTessellate},
    {Method::kTransposeUJ, Tiling::kTessellate},
    {Method::kDlt, Tiling::kSplit},
};

INSTANTIATE_TEST_SUITE_P(
    Methods, Property1D,
    ::testing::Combine(::testing::ValuesIn(kUntiled1D),
                       ::testing::Values<index>(256, 448),
                       ::testing::Values<index>(1, 6)),
    [](const ::testing::TestParamInfo<Params1D>& info) {
      return case_name(std::get<0>(info.param)) + "_nx" +
             std::to_string(std::get<1>(info.param)) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// 2D property suite.
// ---------------------------------------------------------------------------

using Params2D = std::tuple<MethodCase, index /*steps*/>;

class Property2D : public ::testing::TestWithParam<Params2D> {
 protected:
  static constexpr index kNx = 128, kNy = 24;
  MethodCase method() const { return std::get<0>(GetParam()); }
  index steps() const { return std::get<1>(GetParam()); }
};

TEST_P(Property2D, MatchesScalarReferenceStar) {
  const auto s = make_2d5p(0.42, 0.15, 0.14);
  Grid2D<double> ref(kNx, kNy, 1), got(kNx, kNy, 1);
  auto init = [](index x, index y) { return noise1(x + 31 * y); };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property2D, MatchesScalarReferenceBox) {
  const auto s = make_2d9p(0.18, 0.12, 0.05);
  Grid2D<double> ref(kNx, kNy, 1), got(kNx, kNy, 1);
  auto init = [](index x, index y) { return noise1(3 * x - 7 * y); };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property2D, TranslationEquivariantInY) {
  const auto s = make_2d5p(0.42, 0.15, 0.14);
  auto f = [](index x, index y) { return noise1(x + 13 * y); };
  Grid2D<double> a(kNx, kNy, 1), b(kNx, kNy, 1);
  a.fill([&](index x, index y) { return f(x, y); });
  b.fill([&](index x, index y) { return f(x, y + 2); });
  run(a, s, make_options(method(), steps()));
  run(b, s, make_options(method(), steps()));
  const index margin = 2 + static_cast<index>(steps());
  for (index y = margin; y < kNy - margin - 2; ++y)
    for (index x = 0; x < kNx; ++x)
      EXPECT_NEAR(b.at(x, y), a.at(x, y + 2), 1e-10)
          << "(" << x << "," << y << ")";
}

const MethodCase kCases2D[] = {
    {Method::kAutoVec, Tiling::kNone},
    {Method::kMultiLoad, Tiling::kNone},
    {Method::kReorg, Tiling::kNone},
    {Method::kDlt, Tiling::kNone},
    {Method::kTranspose, Tiling::kNone},
    {Method::kTransposeUJ, Tiling::kNone},
    {Method::kAutoVec, Tiling::kTessellate},
    {Method::kTranspose, Tiling::kTessellate},
    {Method::kTransposeUJ, Tiling::kTessellate},
    {Method::kDlt, Tiling::kSplit},
};

INSTANTIATE_TEST_SUITE_P(
    Methods, Property2D,
    ::testing::Combine(::testing::ValuesIn(kCases2D),
                       ::testing::Values<index>(1, 4)),
    [](const ::testing::TestParamInfo<Params2D>& info) {
      return case_name(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// 3D property suite.
// ---------------------------------------------------------------------------

class Property3D : public ::testing::TestWithParam<Params2D> {
 protected:
  static constexpr index kNx = 64, kNy = 12, kNz = 10;
  MethodCase method() const { return std::get<0>(GetParam()); }
  index steps() const { return std::get<1>(GetParam()); }
};

TEST_P(Property3D, MatchesScalarReferenceStar) {
  const auto s = make_3d7p(0.4, 0.11, 0.09, 0.1);
  Grid3D<double> ref(kNx, kNy, kNz, 1), got(kNx, kNy, kNz, 1);
  auto init = [](index x, index y, index z) {
    return noise1(x + 17 * y - 5 * z);
  };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property3D, MatchesScalarReferenceBox) {
  const auto s = make_3d27p(0.11);
  Grid3D<double> ref(kNx, kNy, kNz, 1), got(kNx, kNy, kNz, 1);
  auto init = [](index x, index y, index z) {
    return noise1(2 * x - 3 * y + 11 * z);
  };
  ref.fill(init);
  got.fill(init);
  reference_run(ref, s, steps());
  run(got, s, make_options(method(), steps()));
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST_P(Property3D, ConstantFixedPoint) {
  const auto s = make_3d7p(0.4, 0.1, 0.1, 0.1);  // sums to 1
  Grid3D<double> g(kNx, kNy, kNz, 1);
  g.fill([](index, index, index) { return -2.25; });
  run(g, s, make_options(method(), steps()));
  for (index z = 0; z < kNz; ++z)
    for (index y = 0; y < kNy; ++y)
      for (index x = 0; x < kNx; ++x)
        EXPECT_NEAR(g.at(x, y, z), -2.25, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, Property3D,
    ::testing::Combine(::testing::ValuesIn(kCases2D),
                       ::testing::Values<index>(1, 4)),
    [](const ::testing::TestParamInfo<Params2D>& info) {
      return case_name(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Tiling-parameter sweep: tiled result must not depend on the blocking.
// ---------------------------------------------------------------------------

using TileParams = std::tuple<index /*bx*/, index /*bt*/>;

class TilingInvariance : public ::testing::TestWithParam<TileParams> {};

TEST_P(TilingInvariance, ResultIndependentOfBlocking) {
  const auto [bx, bt] = GetParam();
  const index nx = 512;
  const auto s = make_1d3p(0.3);
  Grid1D<double> ref(nx, 1);
  ref.fill(noise1);
  reference_run(ref, s, 12);

  for (Method m : {Method::kTranspose, Method::kTransposeUJ}) {
    if (m == Method::kTransposeUJ && bt % 2 != 0) continue;
    Grid1D<double> g(nx, 1);
    g.fill(noise1);
    Options o;
    o.method = m;
    o.tiling = Tiling::kTessellate;
    o.isa = best_isa();
    o.steps = 12;
    o.bx = bx;
    o.bt = bt;
    o.threads = 3;
    run(g, s, o);
    EXPECT_LE(max_abs_diff(ref, g), 1e-11)
        << method_name(m) << " bx=" << bx << " bt=" << bt;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, TilingInvariance,
    ::testing::Combine(::testing::Values<index>(64, 128, 256, 512),
                       ::testing::Values<index>(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<TileParams>& info) {
      return "bx" + std::to_string(std::get<0>(info.param)) + "_bt" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tsv
