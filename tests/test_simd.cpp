// Tests for the SIMD substrate: Vec arithmetic, concat/assemble shifts, and
// the register-block transpose in all variants, widths and element types
// (double x {2,4,8}, float x {4,8,16}).
#include <gtest/gtest.h>

#include <array>
#include <random>
#include <utility>
#include <vector>

#include "tsv/common/aligned.hpp"
#include "tsv/simd/shift.hpp"
#include "tsv/simd/transpose.hpp"
#include "tsv/simd/vec.hpp"

namespace tsv {
namespace {

template <typename V>
std::vector<typename V::value_type> lanes(V v) {
  std::vector<typename V::value_type> out(V::width);
  for (int i = 0; i < V::width; ++i) out[i] = v[i];
  return out;
}

// ---- Vec arithmetic, one test per specialization ---------------------------
// Lane values are small dyadic rationals, so sums/differences/products are
// exact in float as well as double and EXPECT_EQ is legitimate.

template <typename V>
void check_vec_roundtrip_and_arithmetic() {
  constexpr int W = V::width;
  using T = typename V::value_type;
  alignas(64) T a[W + 1], b[W], out[W];
  for (int i = 0; i < W + 1; ++i) a[i] = T(1.5 * i + 0.25);
  for (int i = 0; i < W; ++i) b[i] = T(-0.5 * i + 2.0);
  const V va = V::load(a);
  const V vb = V::load(b);

  (va + vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] + b[i]);
  (va - vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] - b[i]);
  (va * vb).store(out);
  for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], a[i] * b[i]);

  const V vc = fma(va, vb, V::broadcast(T(3)));
  for (int i = 0; i < W; ++i) EXPECT_NEAR(vc[i], a[i] * b[i] + T(3), 1e-5);

  // Unaligned load from an offset pointer.
  const V vu = V::loadu(a + 1);
  for (int i = 0; i < W; ++i) {
    EXPECT_EQ(vu[i], a[i + 1]);
  }

  EXPECT_EQ(V::zero()[0], T(0));
  EXPECT_EQ(V::broadcast(T(7.5))[W - 1], T(7.5));
}

TEST(Vec, GenericW2) { check_vec_roundtrip_and_arithmetic<Vec<double, 2>>(); }
TEST(Vec, GenericFloatW4) {
  check_vec_roundtrip_and_arithmetic<Vec<float, 4>>();
}
#if defined(__AVX2__)
TEST(Vec, Avx2W4) { check_vec_roundtrip_and_arithmetic<Vec<double, 4>>(); }
TEST(Vec, Avx2FloatW8) { check_vec_roundtrip_and_arithmetic<Vec<float, 8>>(); }
#endif
#if defined(__AVX512F__)
TEST(Vec, Avx512W8) { check_vec_roundtrip_and_arithmetic<Vec<double, 8>>(); }
TEST(Vec, Avx512FloatW16) {
  check_vec_roundtrip_and_arithmetic<Vec<float, 16>>();
}
#endif

// ---- concat_shift / assemble ------------------------------------------------

template <typename V, int S>
void check_concat_shift() {
  constexpr int W = V::width;
  using T = typename V::value_type;
  alignas(64) T a[W], b[W];
  for (int i = 0; i < W; ++i) {
    a[i] = T(i + 1);
    b[i] = T(100 + i);
  }
  const V r = concat_shift<S>(V::load(a), V::load(b));
  for (int i = 0; i < W; ++i) {
    const T expect = (i + S < W) ? a[i + S] : b[i + S - W];
    EXPECT_EQ(r[i], expect) << "S=" << S << " lane " << i;
  }
}

template <typename V>
void check_all_shifts() {
  [&]<int... S>(std::integer_sequence<int, S...>) {
    (check_concat_shift<V, S>(), ...);
  }(std::make_integer_sequence<int, V::width + 1>{});
}

TEST(ConcatShift, GenericW2) { check_all_shifts<Vec<double, 2>>(); }
TEST(ConcatShift, GenericFloatW4) { check_all_shifts<Vec<float, 4>>(); }
#if defined(__AVX2__)
TEST(ConcatShift, Avx2) { check_all_shifts<Vec<double, 4>>(); }
TEST(ConcatShift, Avx2Float) { check_all_shifts<Vec<float, 8>>(); }
#endif
#if defined(__AVX512F__)
TEST(ConcatShift, Avx512) { check_all_shifts<Vec<double, 8>>(); }
TEST(ConcatShift, Avx512Float) { check_all_shifts<Vec<float, 16>>(); }
#endif

template <typename V>
void check_assemble() {
  constexpr int W = V::width;
  using T = typename V::value_type;
  alignas(64) T prev[W], cur[W], next[W];
  for (int i = 0; i < W; ++i) {
    prev[i] = T(10 + i);
    cur[i] = T(20 + i);
    next[i] = T(30 + i);
  }
  // Paper Fig. 3: left dependent vector = (prev[W-1], cur[0..W-2]).
  const V left = assemble_left(V::load(prev), V::load(cur));
  EXPECT_EQ(left[0], prev[W - 1]);
  for (int i = 1; i < W; ++i) EXPECT_EQ(left[i], cur[i - 1]);

  // Right dependent vector = (cur[1..W-1], next[0]).
  const V right = assemble_right(V::load(cur), V::load(next));
  for (int i = 0; i + 1 < W; ++i) EXPECT_EQ(right[i], cur[i + 1]);
  EXPECT_EQ(right[W - 1], next[0]);

  // Only one lane of the partner is consumed -> broadcasts are legal stand-ins.
  const V left_b = assemble_left(V::broadcast(prev[W - 1]), V::load(cur));
  const V right_b = assemble_right(V::load(cur), V::broadcast(next[0]));
  EXPECT_EQ(lanes(left), lanes(left_b));
  EXPECT_EQ(lanes(right), lanes(right_b));
}

TEST(Assemble, GenericW2) { check_assemble<Vec<double, 2>>(); }
// W = 6 has no intrinsic specialization anywhere, so this always exercises
// the primary template (Vec<float, 8> would alias the AVX2 path).
TEST(Assemble, GenericW6) { check_assemble<Vec<double, 6>>(); }
TEST(Assemble, GenericFloatW4) { check_assemble<Vec<float, 4>>(); }
#if defined(__AVX2__)
TEST(Assemble, Avx2) { check_assemble<Vec<double, 4>>(); }
TEST(Assemble, Avx2Float) { check_assemble<Vec<float, 8>>(); }
#endif
#if defined(__AVX512F__)
TEST(Assemble, Avx512) { check_assemble<Vec<double, 8>>(); }
TEST(Assemble, Avx512Float) { check_assemble<Vec<float, 16>>(); }
#endif

template <typename V>
void check_concat_shift_rt() {
  constexpr int W = V::width;
  using T = typename V::value_type;
  alignas(64) T a[W], b[W];
  for (int i = 0; i < W; ++i) {
    a[i] = T(i + 1);
    b[i] = T(50 + i);
  }
  for (int s = 0; s <= W; ++s) {
    const V r = concat_shift_rt(V::load(a), V::load(b), s);
    for (int i = 0; i < W; ++i) {
      const T expect = (i + s < W) ? a[i + s] : b[i + s - W];
      EXPECT_EQ(r[i], expect) << "s=" << s << " lane " << i;
    }
  }
}

TEST(ConcatShift, RuntimeDispatchMatchesStatic) {
  check_concat_shift_rt<Vec<double, 2>>();
  check_concat_shift_rt<Vec<float, 4>>();
#if defined(__AVX2__)
  check_concat_shift_rt<Vec<double, 4>>();
  check_concat_shift_rt<Vec<float, 8>>();
#endif
#if defined(__AVX512F__)
  check_concat_shift_rt<Vec<double, 8>>();
  check_concat_shift_rt<Vec<float, 16>>();
#endif
}

// ---- masked stores -----------------------------------------------------------

template <typename V>
void check_store_mask() {
  constexpr int W = V::width;
  using T = typename V::value_type;
  alignas(64) T src[W], dst[W];
  for (int i = 0; i < W; ++i) {
    src[i] = T(10 + i);
    dst[i] = T(-1);
  }
  const V v = V::load(src);
  // Every mask in range for small W; a spread of masks for W >= 8.
  const unsigned all = (W >= 32) ? 0xffffffffu : ((1u << W) - 1);
  for (unsigned mask : {0u, 1u, all, all & 0xAAAAu, all & 0x137u}) {
    for (int i = 0; i < W; ++i) dst[i] = T(-1);
    v.store_mask(dst, mask);
    for (int i = 0; i < W; ++i)
      EXPECT_EQ(dst[i], (mask & (1u << i)) ? src[i] : T(-1))
          << "mask=" << mask << " lane " << i;
  }
}

TEST(StoreMask, GenericW2) { check_store_mask<Vec<double, 2>>(); }
TEST(StoreMask, GenericFloatW4) { check_store_mask<Vec<float, 4>>(); }
#if defined(__AVX2__)
TEST(StoreMask, Avx2) { check_store_mask<Vec<double, 4>>(); }
TEST(StoreMask, Avx2Float) { check_store_mask<Vec<float, 8>>(); }
#endif
#if defined(__AVX512F__)
TEST(StoreMask, Avx512) { check_store_mask<Vec<double, 8>>(); }
TEST(StoreMask, Avx512Float) { check_store_mask<Vec<float, 16>>(); }
#endif

// ---- streaming (non-temporal) stores ----------------------------------------
// Values must round-trip exactly; stream_fence() orders the write-back
// before the (same-thread) verification loads.

template <typename V>
void check_stream_store() {
  using T = typename V::value_type;
  constexpr int W = V::width;
  alignas(64) T src[W], dst[W];
  for (int i = 0; i < W; ++i) {
    src[i] = static_cast<T>(3 * i + 1);
    dst[i] = T(-1);
  }
  V::load(src).stream(dst);
  stream_fence();
  for (int i = 0; i < W; ++i) EXPECT_EQ(dst[i], src[i]) << "lane " << i;
}

TEST(StreamStore, GenericW2) { check_stream_store<Vec<double, 2>>(); }
TEST(StreamStore, GenericFloatW4) { check_stream_store<Vec<float, 4>>(); }
#if defined(__AVX2__)
TEST(StreamStore, Avx2) { check_stream_store<Vec<double, 4>>(); }
TEST(StreamStore, Avx2Float) { check_stream_store<Vec<float, 8>>(); }
#endif
#if defined(__AVX512F__)
TEST(StreamStore, Avx512) { check_stream_store<Vec<double, 8>>(); }
TEST(StreamStore, Avx512Float) { check_stream_store<Vec<float, 16>>(); }
#endif

// ---- transpose --------------------------------------------------------------

template <typename V, bool kBaseline>
void check_transpose() {
  constexpr int W = V::width;
  using T = typename V::value_type;
  alignas(64) T m[W][W];
  for (int i = 0; i < W; ++i)
    for (int j = 0; j < W; ++j) m[i][j] = T(100 * i + j);

  V v[W];
  for (int i = 0; i < W; ++i) v[i] = V::load(m[i]);
  if constexpr (kBaseline)
    transpose_baseline(v);
  else
    transpose(v);
  for (int j = 0; j < W; ++j)
    for (int i = 0; i < W; ++i)
      EXPECT_EQ(v[j][i], m[i][j]) << "out[" << j << "][" << i << "]";
}

TEST(Transpose, GenericW2) { check_transpose<Vec<double, 2>, false>(); }
TEST(Transpose, GenericW3) { check_transpose<Vec<double, 3>, false>(); }
TEST(Transpose, GenericFloatW4) { check_transpose<Vec<float, 4>, false>(); }
#if defined(__AVX2__)
TEST(Transpose, Avx2Improved) { check_transpose<Vec<double, 4>, false>(); }
TEST(Transpose, Avx2Baseline) { check_transpose<Vec<double, 4>, true>(); }
TEST(Transpose, Avx2FloatImproved) { check_transpose<Vec<float, 8>, false>(); }
TEST(Transpose, Avx2FloatBaseline) { check_transpose<Vec<float, 8>, true>(); }
#endif
#if defined(__AVX512F__)
TEST(Transpose, Avx512Improved) { check_transpose<Vec<double, 8>, false>(); }
TEST(Transpose, Avx512Baseline) { check_transpose<Vec<double, 8>, true>(); }
TEST(Transpose, Avx512FloatImproved) {
  check_transpose<Vec<float, 16>, false>();
}
TEST(Transpose, Avx512FloatBaseline) {
  check_transpose<Vec<float, 16>, true>();
}
#endif

template <typename T, int W>
void check_block_roundtrip() {
  AlignedBuffer<T> buf(W * W);
  std::mt19937 rng(12345);
  std::uniform_real_distribution<double> dist(-1, 1);
  for (auto& x : buf) x = static_cast<T>(dist(rng));
  AlignedBuffer<T> orig = buf;

  transpose_block_inplace<T, W>(buf.data());
  // Element (i, j) must now live at position j*W + i.
  for (int i = 0; i < W; ++i)
    for (int j = 0; j < W; ++j)
      EXPECT_EQ(buf[j * W + i], orig[i * W + j]);

  // Transpose is an involution.
  transpose_block_inplace<T, W>(buf.data());
  for (index i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], orig[i]);
}

TEST(TransposeBlock, InplaceRoundtripW2) { check_block_roundtrip<double, 2>(); }
TEST(TransposeBlock, InplaceRoundtripFloatW4) {
  check_block_roundtrip<float, 4>();
}
#if defined(__AVX2__)
TEST(TransposeBlock, InplaceRoundtripW4) { check_block_roundtrip<double, 4>(); }
TEST(TransposeBlock, InplaceRoundtripFloatW8) {
  check_block_roundtrip<float, 8>();
}
#endif
#if defined(__AVX512F__)
TEST(TransposeBlock, InplaceRoundtripW8) { check_block_roundtrip<double, 8>(); }
TEST(TransposeBlock, InplaceRoundtripFloatW16) {
  check_block_roundtrip<float, 16>();
}
#endif

TEST(TransposeBlock, CopyMatchesInplace) {
  constexpr int W = 4;
  AlignedBuffer<double> src(W * W), dst(W * W), ref(W * W);
  for (index i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i * i);
  ref = src;
  transpose_block_inplace<double, W>(ref.data());
  transpose_block<double, W>(src.data(), dst.data());
  for (index i = 0; i < src.size(); ++i) EXPECT_EQ(dst[i], ref[i]);
}

}  // namespace
}  // namespace tsv
