// Tests for the stencil descriptors and the scalar reference drivers.
// The reference is ground truth for the whole library, so its own behaviour
// is pinned down carefully here (hand-computed cases + invariants).
#include <gtest/gtest.h>

#include <numeric>

#include "tsv/common/grid.hpp"
#include "tsv/kernels/reference.hpp"
#include "tsv/kernels/stencil.hpp"

namespace tsv {
namespace {

TEST(StencilSpec, Apply1d3p) {
  const auto s = make_1d3p(0.5);
  double data[3] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(s.apply(data + 1), 0.5 * (1 + 2 + 4));
  EXPECT_EQ(s.flops_per_point, 5);
}

TEST(StencilSpec, Apply1d5p) {
  const auto s = make_1d5p(0.1, 0.2, 0.4);
  double data[5] = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(s.apply(data + 2),
                   0.1 * 1 + 0.2 * 2 + 0.4 * 3 + 0.2 * 4 + 0.1 * 5);
  EXPECT_EQ(s.flops_per_point, 9);
}

TEST(StencilSpec, RowsOf2d5p) {
  const auto s = make_2d5p(0.5, 0.125, 0.125);
  EXPECT_EQ(s.rows[0].ntaps(), 1);
  EXPECT_EQ(s.rows[1].ntaps(), 3);
  EXPECT_EQ(s.rows[2].ntaps(), 1);
  EXPECT_EQ(s.flops_per_point, 2 * 5 - 1);
}

TEST(StencilSpec, RowsOf2d9p) {
  const auto s = make_2d9p();
  for (const auto& r : s.rows) EXPECT_EQ(r.ntaps(), 3);
  EXPECT_EQ(s.flops_per_point, 2 * 9 - 1);
}

TEST(StencilSpec, RowsOf3d7p) {
  const auto s = make_3d7p();
  index taps = 0;
  for (const auto& r : s.rows) taps += r.ntaps();
  EXPECT_EQ(taps, 7);
  EXPECT_EQ(s.flops_per_point, 2 * 7 - 1);
}

TEST(StencilSpec, RowsOf3d27p) {
  const auto s = make_3d27p();
  index taps = 0;
  for (const auto& r : s.rows) taps += r.ntaps();
  EXPECT_EQ(taps, 27);
  EXPECT_EQ(s.flops_per_point, 2 * 27 - 1);
}

// ---- reference semantics ----------------------------------------------------

TEST(Reference1D, SingleStepHandComputed) {
  Grid1D<double> g(4, 1);
  g.fill([](index x) { return static_cast<double>(x + 1); });  // 0,1,2,3,4,5
  const auto s = make_1d3p(1.0);
  reference_run(g, s, 1);
  // out[x] = in[x-1]+in[x]+in[x+1] with in = x+1
  EXPECT_DOUBLE_EQ(g.at(0), 0 + 1 + 2);
  EXPECT_DOUBLE_EQ(g.at(3), 3 + 4 + 5);
  // Halo untouched.
  EXPECT_DOUBLE_EQ(g.at(-1), 0.0);
  EXPECT_DOUBLE_EQ(g.at(4), 5.0);
}

TEST(Reference1D, ConstantFieldIsFixedPointWhenWeightsSumToOne) {
  Grid1D<double> g(32, 2);
  g.fill([](index) { return 3.25; });
  const auto s = make_1d5p(0.1, 0.2, 0.4);  // weights sum to 1
  reference_run(g, s, 7);
  for (index x = 0; x < 32; ++x) EXPECT_NEAR(g.at(x), 3.25, 1e-12);
}

TEST(Reference1D, LinearityInInput) {
  const auto s = make_1d3p(0.3);
  Grid1D<double> a(16, 1), b(16, 1), sum(16, 1);
  a.fill([](index x) { return std::sin(0.1 * x); });
  b.fill([](index x) { return std::cos(0.2 * x); });
  sum.fill([&](index x) { return a.at(x) + b.at(x); });
  reference_run(a, s, 3);
  reference_run(b, s, 3);
  reference_run(sum, s, 3);
  for (index x = 0; x < 16; ++x)
    EXPECT_NEAR(sum.at(x), a.at(x) + b.at(x), 1e-12);
}

TEST(Reference1D, StepCompositionEqualsMultiStep) {
  const auto s = make_1d3p(0.25);
  Grid1D<double> a(24, 1), b(24, 1);
  a.fill([](index x) { return 0.01 * x * x; });
  b.fill([](index x) { return 0.01 * x * x; });
  reference_run(a, s, 5);
  for (int t = 0; t < 5; ++t) reference_run(b, s, 1);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Reference2D, SingleStepHandComputed) {
  Grid2D<double> g(3, 3, 1);
  g.fill([](index x, index y) { return static_cast<double>(10 * y + x); });
  const auto s = make_2d5p(1.0, 1.0, 1.0);  // plain 5-point sum
  reference_run(g, s, 1);
  // center (1,1): in(1,0)+in(0,1)+in(1,1)+in(2,1)+in(1,2) = 1+10+11+12+21
  EXPECT_DOUBLE_EQ(g.at(1, 1), 55.0);
  // corner (0,0): in(0,-1)+in(-1,0)+in(0,0)+in(1,0)+in(0,1) = -10-1+0+1+10
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.0);
}

TEST(Reference2D, BoxUsesCorners) {
  Grid2D<double> g(3, 3, 1);
  g.fill([](index x, index y) { return (x == 0 && y == 0) ? 1.0 : 0.0; });
  auto s = make_2d9p(0.0, 0.0, 1.0);  // only corners weighted
  reference_run(g, s, 1);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 1.0);  // sees (0,0) as its corner
  EXPECT_DOUBLE_EQ(g.at(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 0.0);  // edge-neighbor only, weight 0
}

TEST(Reference3D, SingleStepHandComputed) {
  Grid3D<double> g(3, 3, 3, 1);
  g.fill([](index x, index y, index z) {
    return static_cast<double>(100 * z + 10 * y + x);
  });
  const auto s = make_3d7p(1.0, 1.0, 1.0, 1.0);
  reference_run(g, s, 1);
  // center (1,1,1): 111*1 + (110+112) + (101+121) + (011+211)
  EXPECT_DOUBLE_EQ(g.at(1, 1, 1), 111 + 110 + 112 + 101 + 121 + 11 + 211);
}

TEST(Reference3D, ConstantFixedPoint27p) {
  Grid3D<double> g(8, 8, 8, 1);
  g.fill([](index, index, index) { return 2.0; });
  auto s = make_3d27p();
  // Normalize the 27 weights to sum to one so a constant field is invariant.
  double sum = 0;
  for (auto& r : s.rows)
    for (int i = 0; i < r.ntaps(); ++i) sum += r.w[i];
  for (auto& r : s.rows)
    for (int i = 0; i < r.ntaps(); ++i) r.w[i] /= sum;
  reference_run(g, s, 3);
  for (index z = 0; z < 8; ++z)
    for (index y = 0; y < 8; ++y)
      for (index x = 0; x < 8; ++x) EXPECT_NEAR(g.at(x, y, z), 2.0, 1e-12);
}

TEST(Reference2D, TranslationEquivariance) {
  // Shifting the input by one cell in y shifts the interior output the same
  // way (checked away from boundaries).
  const auto s = make_2d9p();
  Grid2D<double> a(16, 16, 1), b(16, 16, 1);
  auto f = [](index x, index y) { return std::sin(0.3 * x) * std::cos(0.2 * y); };
  a.fill([&](index x, index y) { return f(x, y); });
  b.fill([&](index x, index y) { return f(x, y + 1); });
  reference_run(a, s, 2);
  reference_run(b, s, 2);
  for (index y = 2; y < 12; ++y)
    for (index x = 2; x < 14; ++x)
      EXPECT_NEAR(b.at(x, y), a.at(x, y + 1), 1e-12);
}

}  // namespace
}  // namespace tsv
