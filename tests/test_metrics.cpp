// Observability layer tests (core/metrics.hpp): conservation invariants of
// a registry snapshot at idle and under racing submitters, histogram
// quantile accuracy within the log2-bucket error bound, Prometheus text
// exposition validated against the format grammar, JSON well-formedness,
// trace-span lifecycle ordering and ring-buffer semantics, and
// monotone/no-torn-reads snapshots sampled concurrently with live traffic
// (the concurrency paths are TSan-audited by the CI matrix).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tsv/tsv.hpp"

namespace tsv {
namespace {

template <typename T>
T noise(index salt, index lin) {
  return static_cast<T>(0.25 +
                        1e-3 * static_cast<double>((salt * 31 + lin * 7) % 101));
}

Options run_opts(index steps = 4) {
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kNone;
  o.steps = steps;
  return o;
}

/// One request's worth of state: an independent grid (distinct salts =
/// distinct content digests = never coalesced).
struct Req {
  std::unique_ptr<Grid1D<double>> grid;
  std::future<Scheduler::Result> fut;

  explicit Req(index salt, index nx = 256) {
    grid = std::make_unique<Grid1D<double>>(nx, 1);
    grid->fill([salt](index x) { return noise<double>(salt, x); });
  }
};

StencilSpec spec1d() { return StencilSpec{.kind = StencilKind::k1d3p}; }

/// Full quiesce for the strict idle invariants: the scheduler's completion
/// hook runs INSIDE the executor task body, so scheduler-idle can precede
/// the executor's own completed/failed accounting by a few instructions —
/// idle-snapshot tests must drain both layers.
void quiesce(Scheduler& s) {
  s.wait_idle();
  s.executor().wait_idle();
}

// ---------------------------------------------------------------------------
// Histogram accuracy: the log2 buckets bound every interpolated quantile by
// a factor of 2 of the true order statistic.
// ---------------------------------------------------------------------------

TEST(MetricsHistogram, QuantilesWithinLog2BucketBound) {
  LatencyHistogram h;
  // Deterministic skewed sample: latencies from 10 µs to ~50 ms.
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i)
    v.push_back(10e-6 * std::pow(1.0087, i));  // geometric ramp
  for (double x : v) h.record(x);
  std::sort(v.begin(), v.end());

  EXPECT_EQ(h.count(), v.size());
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_NEAR(h.sum_seconds(), sum, 1e-12 * sum);
  EXPECT_NEAR(h.mean_seconds(), sum / static_cast<double>(v.size()),
              1e-12 * sum);

  for (double q : {0.50, 0.95, 0.99}) {
    const double truth =
        v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
    const double est = h.quantile(q);
    EXPECT_GE(est, truth / 2.0) << "q=" << q;
    EXPECT_LE(est, truth * 2.0) << "q=" << q;
  }
}

TEST(MetricsHistogram, BucketAccessorsAgreeWithCount) {
  LatencyHistogram h;
  h.record(1.5e-6);
  h.record(3e-6);
  h.record(1e-3);
  std::uint64_t total = 0;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    total += h.bucket_count(b);
    // Upper bounds double per bucket.
    if (b > 0)
      EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper_seconds(b),
                       2.0 * LatencyHistogram::bucket_upper_seconds(b - 1));
  }
  EXPECT_EQ(total, h.count());
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper_seconds(0), 2e-6);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition: validated against the 0.0.4 grammar.
// ---------------------------------------------------------------------------

/// Minimal validating parser for the Prometheus text format. Checks line
/// shapes, name legality, HELP/TYPE-before-samples, numeric values, and
/// histogram structure (cumulative buckets, +Inf == _count, _sum present).
class PromValidator {
 public:
  /// Returns a list of violations (empty = valid).
  static std::vector<std::string> validate(const std::string& page) {
    PromValidator v;
    std::istringstream in(page);
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
      ++n;
      if (line.empty()) continue;
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
        v.header(line, n);
      else if (line[0] == '#')
        continue;  // free-form comment
      else
        v.sample(line, n);
    }
    v.finish();
    return v.errors_;
  }

 private:
  void err(int line, const std::string& what) {
    errors_.push_back("line " + std::to_string(line) + ": " + what);
  }

  static bool name_ok(const std::string& s) {
    if (s.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
        s[0] != ':')
      return false;
    for (char c : s)
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
        return false;
    return true;
  }

  void header(const std::string& line, int n) {
    std::istringstream is(line);
    std::string hash, kind, name, rest;
    is >> hash >> kind >> name;
    if (!name_ok(name)) err(n, "bad metric name in header: " + name);
    if (kind == "TYPE") {
      is >> rest;
      if (rest != "counter" && rest != "gauge" && rest != "histogram" &&
          rest != "summary" && rest != "untyped")
        err(n, "unknown TYPE " + rest);
      if (types_.count(name)) err(n, "duplicate TYPE for " + name);
      types_[name] = rest;
    } else {
      std::getline(is, rest);
      if (rest.empty()) err(n, "HELP with no text for " + name);
    }
    if (seen_samples_.count(name))
      err(n, "header after samples for " + name);
  }

  void sample(const std::string& line, int n) {
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) return err(n, "sample without value");
    const std::string value = line.substr(sp + 1);
    std::string series = line.substr(0, sp);
    try {
      (void)std::stod(value);
    } catch (...) {
      return err(n, "unparseable value: " + value);
    }
    std::string labels;
    const std::size_t brace = series.find('{');
    if (brace != std::string::npos) {
      if (series.back() != '}') return err(n, "unterminated label set");
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series = series.substr(0, brace);
    }
    if (!name_ok(series)) return err(n, "bad sample name: " + series);
    // Labels: k="v" pairs, comma-separated. Values here never contain
    // escapes or commas, so a split-parse suffices.
    std::string le, labels_sans_le;
    if (!labels.empty()) {
      std::istringstream ls(labels);
      std::string pair;
      while (std::getline(ls, pair, ',')) {
        const std::size_t eq = pair.find("=\"");
        if (eq == std::string::npos || pair.back() != '"')
          return err(n, "malformed label: " + pair);
        if (!name_ok(pair.substr(0, eq)))
          return err(n, "bad label name: " + pair.substr(0, eq));
        if (pair.substr(0, eq) == "le")
          le = pair.substr(eq + 2, pair.size() - eq - 3);
        else
          labels_sans_le += pair + ",";
      }
    }
    // Histogram child series resolve to their family name for TYPE lookup.
    std::string family = series;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          types_.count(family.substr(0, family.size() - s.size()))) {
        family = family.substr(0, family.size() - s.size());
        break;
      }
    }
    if (!types_.count(family))
      return err(n, "sample without TYPE header: " + series);
    seen_samples_.insert(family);
    if (types_[family] == "histogram") {
      // One cumulative run per (family, label set sans le) — the class
      // label starts a fresh child histogram.
      const std::string key = family + "{" + labels_sans_le + "}";
      if (series == family + "_bucket") {
        const double v = std::stod(value);
        auto& cum = hist_cum_[key];
        if (!cum.empty() && v + 1e-9 < cum.back())
          err(n, "non-cumulative histogram buckets for " + key);
        cum.push_back(v);
        if (le == "+Inf") hist_inf_[key] = v;
        if (le.empty()) err(n, "_bucket without le label");
      } else if (series == family + "_count") {
        hist_count_[key] = std::stod(value);
      } else if (series == family + "_sum") {
        hist_sum_seen_.insert(key);
      }
    }
  }

  void finish() {
    for (const auto& [fam, cnt] : hist_count_) {
      auto it = hist_inf_.find(fam);
      if (it == hist_inf_.end())
        errors_.push_back(fam + ": histogram missing +Inf bucket");
      else if (it->second != cnt)
        errors_.push_back(fam + ": +Inf bucket != _count");
      if (!hist_sum_seen_.count(fam))
        errors_.push_back(fam + ": histogram missing _sum");
    }
  }

  std::vector<std::string> errors_;
  std::map<std::string, std::string> types_;
  std::set<std::string> seen_samples_;
  // Cumulative-bucket tracking. One label set per class is emitted
  // back-to-back, and counts reset per class would trip the monotone check;
  // the emitter orders classes so each class's buckets are contiguous —
  // track per family+reset on _count.
  std::map<std::string, std::vector<double>> hist_cum_;
  std::map<std::string, double> hist_inf_;
  std::map<std::string, double> hist_count_;
  std::set<std::string> hist_sum_seen_;
};

TEST(MetricsProm, ExpositionMatchesGrammar) {
  Scheduler sched({.executor = {.gangs = 2}, .trace_capacity = 8});
  std::vector<Req> reqs;
  for (index i = 0; i < 6; ++i) {
    reqs.emplace_back(i);
    reqs.back().fut = sched.submit(
        {Executor::GridRef{reqs.back().grid.get()}, spec1d(), run_opts(),
         i % 2 ? ServiceClass::kBatch : ServiceClass::kInteractive});
  }
  for (Req& r : reqs) r.fut.get();
  sched.wait_idle();

  MetricsRegistry reg;
  reg.attach(&sched);
  const MetricsSnapshot m = reg.snapshot();
  const std::string page = metrics_to_prometheus(m);

  const std::vector<std::string> violations = PromValidator::validate(page);
  for (const std::string& v : violations) ADD_FAILURE() << v;
  // Spot checks: the headline families exist with the right shapes.
  EXPECT_NE(page.find("# TYPE tsv_scheduler_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE tsv_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(page.find("tsv_request_latency_seconds_bucket{class=\"interactive"
                      "\",le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(page.find("tsv_executor_submitted_total{via=\"scheduler\"}"),
            std::string::npos);
  EXPECT_NE(page.find("tsv_tune_trial_executions_total"), std::string::npos);
  EXPECT_NE(page.find("tsv_fault_fires_total{site=\"kernel.sweep\"}"),
            std::string::npos);
}

// Histogram cumulative-bucket check isolated per class: each class's
// bucket run must be monotone even though the page holds both classes.
TEST(MetricsProm, HistogramBucketsCumulativePerClass) {
  Scheduler sched({.executor = {.gangs = 1}});
  Req r(1);
  r.fut = sched.submit({Executor::GridRef{r.grid.get()}, spec1d(), run_opts(),
                        ServiceClass::kInteractive});
  r.fut.get();
  sched.wait_idle();
  MetricsRegistry reg;
  reg.attach(&sched);
  const std::string page = metrics_to_prometheus(reg.snapshot());

  std::istringstream in(page);
  std::string line;
  double prev = 0.0;
  std::string prev_class;
  while (std::getline(in, line)) {
    if (line.rfind("tsv_request_latency_seconds_bucket", 0) != 0) continue;
    const std::string cls =
        line.substr(line.find("class=\""), line.find("\",le=") + 1 -
                                               line.find("class=\""));
    if (cls != prev_class) {
      prev = 0.0;
      prev_class = cls;
    }
    const double v = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
}

// ---------------------------------------------------------------------------
// JSON export: structurally sound and carrying the load-bearing sections.
// ---------------------------------------------------------------------------

/// Tiny structural JSON check: balanced braces/brackets outside strings,
/// valid string nesting. Not a full parser — the repo policy is no JSON
/// dependency, and structural balance catches every emitter bug this file
/// has ever had.
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') stack.push_back(c);
    else if (c == '}' || c == ']') {
      if (stack.empty()) return false;
      if (c == '}' && stack.back() != '{') return false;
      if (c == ']' && stack.back() != '[') return false;
      stack.pop_back();
    }
  }
  return stack.empty() && !in_str;
}

TEST(MetricsJson, ExportIsBalancedAndSectioned) {
  Scheduler sched({.executor = {.gangs = 1}, .trace_capacity = 4});
  Req r(7);
  r.fut = sched.submit({Executor::GridRef{r.grid.get()}, spec1d(), run_opts(),
                        ServiceClass::kBatch});
  r.fut.get();
  sched.wait_idle();
  MetricsRegistry reg;
  reg.attach(&sched);
  reg.attach(&sched.executor());  // both sources at once: no collision
  const std::string json = metrics_to_json(reg.snapshot());
  EXPECT_TRUE(json_balanced(json)) << json;
  for (const char* key :
       {"\"scheduler\":", "\"executor\":", "\"tuner\":", "\"faults\":",
        "\"latency\":", "\"traces\":", "\"plan_cache\":", "\"workspaces\":",
        "\"db_warm_hits\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(MetricsJson, AbsentSourcesAreOmitted) {
  MetricsRegistry reg;
  const std::string json = metrics_to_json(reg.snapshot());
  EXPECT_TRUE(json_balanced(json));
  EXPECT_EQ(json.find("\"scheduler\":"), std::string::npos);
  EXPECT_NE(json.find("\"tuner\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Conservation invariants: at idle the strict identities hold; under load
// the always-identities hold on every sampled snapshot (no torn reads) and
// the counters are monotone between snapshots.
// ---------------------------------------------------------------------------

TEST(MetricsInvariants, HoldAtIdle) {
  Scheduler sched({.executor = {.gangs = 2}});
  std::vector<Req> reqs;
  for (index i = 0; i < 8; ++i) {
    reqs.emplace_back(100 + i);
    reqs.back().fut = sched.submit({Executor::GridRef{reqs.back().grid.get()},
                                    spec1d(), run_opts()});
  }
  for (Req& r : reqs) r.fut.get();
  quiesce(sched);

  MetricsRegistry reg;
  reg.attach(&sched);
  const MetricsSnapshot m = reg.snapshot();
  for (const std::string& v : metrics_check_invariants(m, /*idle=*/true))
    ADD_FAILURE() << v;
  EXPECT_EQ(m.scheduler.completed, 8u);
  EXPECT_EQ(m.scheduler.submitted, m.scheduler.admitted);
}

TEST(MetricsInvariants, ViolationsAreReported) {
  // A hand-corrupted snapshot must produce violation strings — the checker
  // itself is load-bearing for the chaos suite, so prove it can fail.
  MetricsSnapshot m;
  m.has_scheduler = true;
  m.scheduler.submitted = 5;
  m.scheduler.admitted = 3;  // + rejected 0 != 5
  m.scheduler.completed = 4;  // > admitted at idle
  const auto violations = metrics_check_invariants(m, true);
  EXPECT_FALSE(violations.empty());
  bool saw_admission = false;
  for (const std::string& v : violations)
    if (v.find("admitted + rejected == submitted") != std::string::npos)
      saw_admission = true;
  EXPECT_TRUE(saw_admission);
}

TEST(MetricsInvariants, SnapshotsUnderLoadAreMonotoneAndUntorn) {
  Scheduler sched({.executor = {.gangs = 2}, .trace_capacity = 16});
  MetricsRegistry reg;
  reg.attach(&sched);

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 12;
  std::vector<std::vector<Req>> lanes(kSubmitters);
  std::vector<std::thread> threads;
  for (int t = 0; t < kSubmitters; ++t) {
    auto& lane = lanes[static_cast<std::size_t>(t)];
    lane.reserve(kPerThread);
    threads.emplace_back([&lane, &sched, t] {
      for (int i = 0; i < kPerThread; ++i) {
        lane.emplace_back(1000 + t * 100 + i);
        lane.back().fut =
            sched.submit({Executor::GridRef{lane.back().grid.get()}, spec1d(),
                          run_opts(2),
                          i % 2 ? ServiceClass::kBatch
                                : ServiceClass::kInteractive});
      }
      for (Req& r : lane) r.fut.get();
    });
  }

  // Sampler races the submitters: every snapshot must satisfy the
  // always-invariants and be monotone w.r.t. its predecessor.
  std::uint64_t prev_submitted = 0, prev_completed = 0;
  for (int s = 0; s < 50; ++s) {
    const MetricsSnapshot m = reg.snapshot();
    for (const std::string& v : metrics_check_invariants(m, /*idle=*/false))
      ADD_FAILURE() << "snapshot " << s << ": " << v;
    EXPECT_GE(m.scheduler.submitted, prev_submitted) << "torn/regressed read";
    EXPECT_GE(m.scheduler.completed, prev_completed);
    prev_submitted = m.scheduler.submitted;
    prev_completed = m.scheduler.completed;
  }
  for (auto& t : threads) t.join();
  quiesce(sched);

  const MetricsSnapshot fin = reg.snapshot();
  for (const std::string& v : metrics_check_invariants(fin, /*idle=*/true))
    ADD_FAILURE() << "final: " << v;
  EXPECT_EQ(fin.scheduler.submitted,
            std::uint64_t{kSubmitters} * kPerThread);
}

// ---------------------------------------------------------------------------
// Trace spans: lifecycle ordering, ring-buffer retention, opt-in gating.
// ---------------------------------------------------------------------------

TEST(MetricsTraces, DisabledByDefault) {
  Scheduler sched({.executor = {.gangs = 1}});
  Req r(3);
  r.fut = sched.submit({Executor::GridRef{r.grid.get()}, spec1d(), run_opts()});
  r.fut.get();
  sched.wait_idle();
  EXPECT_TRUE(sched.stats().traces.empty());
}

TEST(MetricsTraces, LifecycleOrderedAndRingCapped) {
  constexpr std::size_t kCap = 4;
  Scheduler sched({.executor = {.gangs = 1}, .trace_capacity = kCap});
  for (index i = 0; i < 7; ++i) {
    Req r(50 + i);
    sched
        .submit({Executor::GridRef{r.grid.get()}, spec1d(), run_opts(),
                 ServiceClass::kInteractive})
        .get();
  }
  sched.wait_idle();

  const SchedulerStats s = sched.stats();
  ASSERT_EQ(s.traces.size(), kCap) << "ring must cap at trace_capacity";
  double prev_complete = 0.0;
  for (const TraceSpan& t : s.traces) {
    EXPECT_EQ(t.outcome, 'C');
    EXPECT_FALSE(t.coalesced);
    // submit -> dispatch -> sweep -> complete never goes backwards.
    EXPECT_LE(t.submit_s, t.dispatch_s);
    EXPECT_LE(t.dispatch_s, t.sweep_s);
    EXPECT_LE(t.sweep_s, t.complete_s);
    // Oldest-first: completion times non-decreasing across the ring.
    EXPECT_GE(t.complete_s, prev_complete);
    prev_complete = t.complete_s;
  }
  // The ring kept the LAST kCap requests (seq is the admission order).
  EXPECT_EQ(s.traces.front().seq + kCap - 1, s.traces.back().seq);
}

TEST(MetricsTraces, FailureOutcomesAreTagged) {
  Scheduler sched({.executor = {.gangs = 1}, .trace_capacity = 8});
  Req ok(60);
  sched.submit({Executor::GridRef{ok.grid.get()}, spec1d(), run_opts()}).get();
  // A cancelled request: cancel before it can dispatch (scheduler paused).
  sched.pause();
  Req doomed(61);
  CancelToken cancel = CancelToken::make();
  Scheduler::Request req{Executor::GridRef{doomed.grid.get()}, spec1d(),
                         run_opts()};
  req.cancel = cancel;
  std::future<Scheduler::Result> fut = sched.submit(std::move(req));
  cancel.cancel();
  sched.resume();
  EXPECT_THROW(fut.get(), CancelledError);
  quiesce(sched);

  const SchedulerStats s = sched.stats();
  ASSERT_EQ(s.traces.size(), 2u);
  EXPECT_EQ(s.traces.front().outcome, 'C');
  EXPECT_EQ(s.traces.back().outcome, 'X');
  for (const std::string& v :
       metrics_check_invariants(
           [&] {
             MetricsRegistry reg;
             reg.attach(&sched);
             return reg.snapshot();
           }(),
           /*idle=*/true))
    ADD_FAILURE() << v;
}

}  // namespace
}  // namespace tsv
