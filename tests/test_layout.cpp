// Tests for the two data layouts: register-block transpose and DLT.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "tsv/common/grid.hpp"
#include "tsv/layout/block_transpose.hpp"
#include "tsv/layout/dlt.hpp"

namespace tsv {
namespace {

// ---- block transpose --------------------------------------------------------

TEST(BlockTransposedOffset, MatchesDefinition) {
  constexpr int W = 4;
  // Element B + i*W + j must land at B + j*W + i.
  for (index b = 0; b < 3; ++b)
    for (index i = 0; i < W; ++i)
      for (index j = 0; j < W; ++j)
        EXPECT_EQ(block_transposed_offset<W>(b * 16 + i * W + j),
                  b * 16 + j * W + i);
}

TEST(BlockTransposedOffset, IsInvolution) {
  for (index x = 0; x < 512; ++x) {
    EXPECT_EQ(block_transposed_offset<4>(block_transposed_offset<4>(x)), x);
    EXPECT_EQ(block_transposed_offset<8>(block_transposed_offset<8>(x)), x);
  }
}

TEST(BlockTransposedOffset, BlockCornersAreFixedPoints) {
  // First and last element of every block stay put — the property the
  // cross-block assembles rely on (DESIGN.md §6.1).
  constexpr int W = 4;
  for (index b = 0; b < 8; ++b) {
    EXPECT_EQ(block_transposed_offset<W>(b * 16), b * 16);
    EXPECT_EQ(block_transposed_offset<W>(b * 16 + 15), b * 16 + 15);
  }
}

template <int W>
void check_row_roundtrip(index n) {
  AlignedBuffer<double> row(n);
  std::iota(row.begin(), row.end(), 0.0);
  block_transpose_row<double, W>(row.data(), n);
  for (index x = 0; x < n; ++x)
    EXPECT_EQ(row[block_transposed_offset<W>(x)], static_cast<double>(x));
  block_transpose_row<double, W>(row.data(), n);  // self-inverse
  for (index x = 0; x < n; ++x) EXPECT_EQ(row[x], static_cast<double>(x));
}

TEST(BlockTransposeRow, RoundtripW2) { check_row_roundtrip<2>(4 * 7); }
TEST(BlockTransposeRow, RoundtripW4) { check_row_roundtrip<4>(16 * 5); }
TEST(BlockTransposeRow, RoundtripW8) { check_row_roundtrip<8>(64 * 3); }

TEST(BlockTransposeRow, RejectsBadLength) {
  AlignedBuffer<double> row(20);
  EXPECT_THROW((block_transpose_row<double, 4>(row.data(), 20)),
               std::invalid_argument);
}

TEST(BlockTransposeGrid, Grid1DHaloUntouched) {
  Grid1D<double> g(32, 2);
  g.fill([](index x) { return static_cast<double>(x); });
  block_transpose_grid<double, 4>(g);
  EXPECT_EQ(g.at(-1), -1.0);
  EXPECT_EQ(g.at(-2), -2.0);
  EXPECT_EQ(g.at(32), 32.0);
  EXPECT_EQ(g.at(33), 33.0);
  // Interior moved per the index map.
  for (index x = 0; x < 32; ++x)
    EXPECT_EQ((load_transposed<double, 4>(g.x0(), x)), static_cast<double>(x));
}

TEST(BlockTransposeGrid, Grid2DEveryRowIndependent) {
  Grid2D<double> g(16, 3, 1);
  g.fill([](index x, index y) { return static_cast<double>(100 * y + x); });
  block_transpose_grid<double, 4>(g);
  for (index y = 0; y < 3; ++y)
    for (index x = 0; x < 16; ++x)
      EXPECT_EQ((load_transposed<double, 4>(g.row(y), x)),
                static_cast<double>(100 * y + x));
  block_transpose_grid<double, 4>(g);
  EXPECT_EQ(g.at(5, 2), 205.0);
}

TEST(BlockTransposeGrid, Grid3DRoundtrip) {
  Grid3D<double> g(16, 2, 2, 1);
  g.fill([](index x, index y, index z) {
    return static_cast<double>(z * 1000 + y * 100 + x);
  });
  block_transpose_grid<double, 4>(g);
  block_transpose_grid<double, 4>(g);
  for (index z = 0; z < 2; ++z)
    for (index y = 0; y < 2; ++y)
      for (index x = 0; x < 16; ++x)
        EXPECT_EQ(g.at(x, y, z), static_cast<double>(z * 1000 + y * 100 + x));
}

TEST(BlockTranspose, StoreThenLoad) {
  AlignedBuffer<double> row(64);
  store_transposed<double, 8>(row.data(), 13, 7.5);
  EXPECT_EQ((load_transposed<double, 8>(row.data(), 13)), 7.5);
}

// ---- DLT ---------------------------------------------------------------------

TEST(DltOffset, MatchesFigure1) {
  // Paper Fig. 1: 28 elements, W=4 -> L=7. Element order after DLT starts
  // A,H,O,V i.e. elements 0, 7, 14, 21 occupy positions 0..3.
  constexpr int W = 4;
  const index n = 28;
  EXPECT_EQ((dlt_offset<W>(0, n)), 0);
  EXPECT_EQ((dlt_offset<W>(7, n)), 1);
  EXPECT_EQ((dlt_offset<W>(14, n)), 2);
  EXPECT_EQ((dlt_offset<W>(21, n)), 3);
  // Second output vector holds elements 1, 8, 15, 22.
  EXPECT_EQ((dlt_offset<W>(1, n)), 4);
  EXPECT_EQ((dlt_offset<W>(8, n)), 5);
}

template <int W>
void check_dlt_roundtrip(index n) {
  AlignedBuffer<double> a(n), t(n), back(n);
  std::iota(a.begin(), a.end(), 0.0);
  dlt_forward_row<double, W>(a.data(), t.data(), n);
  for (index x = 0; x < n; ++x)
    EXPECT_EQ(t[dlt_offset<W>(x, n)], static_cast<double>(x));
  dlt_backward_row<double, W>(t.data(), back.data(), n);
  for (index x = 0; x < n; ++x) EXPECT_EQ(back[x], static_cast<double>(x));
}

TEST(Dlt, RoundtripW4) { check_dlt_roundtrip<4>(28); }
TEST(Dlt, RoundtripW8) { check_dlt_roundtrip<8>(8 * 11); }

TEST(Dlt, RejectsBadLength) {
  AlignedBuffer<double> a(10), t(10);
  EXPECT_THROW((dlt_forward_row<double, 4>(a.data(), t.data(), 10)),
               std::invalid_argument);
  EXPECT_THROW((dlt_backward_row<double, 4>(a.data(), t.data(), 10)),
               std::invalid_argument);
}

TEST(Dlt, NeighborsBecomeStrideWApart) {
  // The property DLT vectorization relies on: spatial neighbors x and x+1
  // sit exactly W positions apart (except at lane seams).
  constexpr int W = 4;
  const index n = 64;
  const index L = n / W;
  for (index x = 0; x < n - 1; ++x) {
    if ((x + 1) % L == 0) continue;  // lane seam
    EXPECT_EQ((dlt_offset<W>(x + 1, n)) - (dlt_offset<W>(x, n)), W);
  }
}

TEST(Dlt, Grid2DPerRow) {
  Grid2D<double> src(16, 3, 1), dst(16, 3, 1);
  src.fill([](index x, index y) { return static_cast<double>(50 * y + x); });
  dst.copy_halo_from(src);
  dlt_forward_grid<double, 4>(src, dst);
  for (index y = 0; y < 3; ++y)
    for (index x = 0; x < 16; ++x)
      EXPECT_EQ(dst.row(y)[dlt_offset<4>(x, 16)],
                static_cast<double>(50 * y + x));
}

TEST(Dlt, Grid3DRoundtrip) {
  Grid3D<double> src(16, 2, 2, 1), mid(16, 2, 2, 1), out(16, 2, 2, 1);
  src.fill([](index x, index y, index z) {
    return static_cast<double>(z * 31 + y * 7 + x);
  });
  dlt_forward_grid<double, 4>(src, mid);
  dlt_backward_grid<double, 4>(mid, out);
  for (index z = 0; z < 2; ++z)
    for (index y = 0; y < 2; ++y)
      for (index x = 0; x < 16; ++x)
        EXPECT_EQ(out.at(x, y, z), src.at(x, y, z));
}

}  // namespace
}  // namespace tsv
