// Workspace tests: the plan-owned scratch subsystem. The headline contract:
// the SECOND (and every later) Plan::execute performs zero heap allocations
// in every driver — grids and scratch pools are hoisted into the plan's
// Workspace on the first execute and reused.
//
// Two counters observe the allocator:
//  * tsv::aligned_alloc_count() — every AlignedBuffer (grids, scratch rows);
//  * a global operator new/delete replacement in this TU — std::vector pool
//    containers, std::map nodes, anything else C++-allocated.
// OpenMP runtime internals use malloc directly and are invisible to both,
// which is what we want: the assertion is about the library's own buffers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace {
std::atomic<std::uint64_t> g_new_count{0};
}

void* operator new(std::size_t n) {
  ++g_new_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tsv {
namespace {

constexpr double kTol = 1e-11;

double f1(index x) { return 0.3 + 1e-3 * static_cast<double>(x % 53); }
double f2(index x, index y) {
  return 0.3 + 1e-3 * static_cast<double>((x + 3 * y) % 53);
}
double f3(index x, index y, index z) {
  return 0.3 + 1e-3 * static_cast<double>((x + 3 * y + 7 * z) % 53);
}

struct AllocSnapshot {
  std::uint64_t aligned, cpp;
  static AllocSnapshot take() {
    return {aligned_alloc_count(), g_new_count.load()};
  }
};

/// Asserts fn() performs zero library-buffer and zero C++ heap allocations.
template <typename Fn>
void expect_alloc_free(Fn&& fn, const char* what) {
  const AllocSnapshot before = AllocSnapshot::take();
  fn();
  const AllocSnapshot after = AllocSnapshot::take();
  EXPECT_EQ(after.aligned - before.aligned, 0u)
      << what << ": AlignedBuffer allocations on a steady-state execute";
  EXPECT_EQ(after.cpp - before.cpp, 0u)
      << what << ": operator new calls on a steady-state execute";
}

// ---- Workspace unit behaviour ----------------------------------------------

TEST(Workspace, SlotCreatesOnceAndReusesByKey) {
  Workspace ws;
  int makes = 0;
  auto& a = ws.slot<int>(0, ws_key(1, 2), [&] {
    ++makes;
    return 41;
  });
  a = 42;
  auto& b = ws.slot<int>(0, ws_key(1, 2), [&] {
    ++makes;
    return 0;
  });
  EXPECT_EQ(makes, 1);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b, 42);
  EXPECT_EQ(ws.size(), 1u);
}

TEST(Workspace, KeyChangeRecreatesSlot) {
  Workspace ws;
  int makes = 0;
  ws.slot<int>(0, ws_key(16), [&] { return ++makes; });
  ws.slot<int>(0, ws_key(32), [&] { return ++makes; });  // reshaped
  EXPECT_EQ(makes, 2);
  ws.clear();
  EXPECT_EQ(ws.size(), 0u);
}

TEST(Workspace, ParallelFirstTouchZeroes) {
  Grid2D<double> g(64, 32, 1, FirstTouch::kParallel);
  for (index y = -1; y < 33; ++y)
    for (index x = -1; x < 65; ++x) ASSERT_EQ(g.at(x, y), 0.0);
  AlignedBuffer<double> b(1000, FirstTouch::kNone);
  b.zero_parallel();
  for (index i = 0; i < 1000; ++i) ASSERT_EQ(b[i], 0.0);
}

// ---- WorkspacePool: the executor's per-request scratch source ---------------

// The pool's headline invariant: a checkout is EXCLUSIVE — two in-flight
// leases can never reference the same Workspace. 8 threads hammer the pool
// and track the live instance set; any overlap is a failure (and a data
// race the TSan CI job would flag independently).
TEST(WorkspacePool, CheckoutIsExclusiveUnderContention) {
  WorkspacePool pool;
  constexpr int kThreads = 8, kIters = 100;
  std::mutex mu;
  std::set<Workspace*> live;
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WorkspacePool::Lease lease = pool.checkout();
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!live.insert(lease.get()).second) overlap = true;
        }
        // Touch a slot while holding the lease (the realistic critical
        // section a second owner would corrupt).
        lease->slot<int>(0, ws_key(i % 4), [] { return 7; });
        {
          std::lock_guard<std::mutex> lock(mu);
          live.erase(lease.get());
        }
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlap.load()) << "one workspace handed to two leases";
  const WorkspacePool::Stats s = pool.stats();
  EXPECT_EQ(s.in_flight, 0u);
  // Creation only happens on an empty free list, so the pool can never
  // hold more workspaces than its peak concurrency.
  EXPECT_LE(s.created, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.created + s.reused,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.free, s.created);
}

// A recycled workspace keeps its slots warm: the second checkout gets the
// parked instance back and a same-key slot access allocates nothing — the
// pooled equivalent of the plan-owned steady-state contract below.
TEST(WorkspacePool, RecycledWorkspaceKeepsSlotsWarm) {
  WorkspacePool pool;
  Grid1D<double> g(512, 1);
  Workspace* first = nullptr;
  {
    WorkspacePool::Lease lease = pool.checkout();
    first = lease.get();
    ws_grid_like(*lease, kWsTmpGrid, g);  // populate
  }
  WorkspacePool::Lease again = pool.checkout();
  EXPECT_EQ(again.get(), first) << "free list must serve LIFO reuse";
  expect_alloc_free([&] { ws_grid_like(*again, kWsTmpGrid, g); },
                    "same-key slot on a recycled workspace");
  EXPECT_EQ(pool.stats().reused, 1u);
}

// Leases are movable (the executor hands them across scopes): moving must
// transfer ownership exactly once.
TEST(WorkspacePool, LeaseMoveTransfersOwnership) {
  WorkspacePool pool;
  WorkspacePool::Lease a = pool.checkout();
  Workspace* raw = a.get();
  WorkspacePool::Lease b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(pool.stats().in_flight, 1u);
  b = WorkspacePool::Lease();  // releases
  EXPECT_EQ(pool.stats().in_flight, 0u);
  EXPECT_EQ(pool.stats().free, 1u);
}

// ---- steady-state executes are allocation-free ------------------------------

struct TiledConfig {
  Method method;
  Tiling tiling;
};

TEST(Workspace, SecondExecuteAllocationFree1D) {
  const auto s = make_1d3p(0.3);
  const index nx = 512;
  for (Method m : supported_methods(Tiling::kTessellate, 1)) {
    Options o;
    o.method = m;
    o.tiling = Tiling::kTessellate;
    o.steps = 6;
    o.bx = 256;
    o.bt = 2;
    Grid1D<double> g(nx, 1);
    g.fill(f1);
    const auto plan = make_plan(shape1d(nx), s, o);
    plan.execute(g);  // first execute populates the workspace
    expect_alloc_free([&] { plan.execute(g); }, method_name(m));
    expect_alloc_free([&] { plan.execute(g); }, method_name(m));
  }
  {
    Options o;
    o.method = Method::kDlt;
    o.tiling = Tiling::kSplit;
    o.steps = 6;
    o.bx = 64;
    o.bt = 2;
    Grid1D<double> g(nx, 1);
    g.fill(f1);
    const auto plan = make_plan(shape1d(nx), s, o);
    plan.execute(g);
    expect_alloc_free([&] { plan.execute(g); }, "dlt+split");
  }
}

TEST(Workspace, SecondExecuteAllocationFree2D3D) {
  {
    const auto s = make_2d5p();
    Grid2D<double> g(128, 24, 1);
    g.fill(f2);
    for (Method m : supported_methods(Tiling::kTessellate, 2)) {
      Options o;
      o.method = m;
      o.tiling = Tiling::kTessellate;
      o.steps = 5;
      o.bx = 64;
      o.by = 12;
      o.bt = 2;
      const auto plan = make_plan(shape2d(128, 24), s, o);
      plan.execute(g);
      expect_alloc_free([&] { plan.execute(g); }, method_name(m));
    }
  }
  {
    const auto s = make_3d7p();
    Grid3D<double> g(64, 8, 10, 1);
    g.fill(f3);
    for (Method m : supported_methods(Tiling::kTessellate, 3)) {
      Options o;
      o.method = m;
      o.tiling = Tiling::kTessellate;
      o.steps = 4;
      o.bx = 64;
      o.by = 8;
      o.bz = 10;
      o.bt = 2;
      const auto plan = make_plan(shape3d(64, 8, 10), s, o);
      plan.execute(g);
      expect_alloc_free([&] { plan.execute(g); }, method_name(m));
    }
  }
}

TEST(Workspace, UntiledExecutesAreAllocationFreeToo) {
  const auto s = make_1d3p(0.3);
  const index nx = 256;
  for (Method m : supported_methods(Tiling::kNone, 1)) {
    Options o;
    o.method = m;
    o.steps = 4;
    Grid1D<double> g(nx, 1);
    g.fill(f1);
    const auto plan = make_plan(shape1d(nx), s, o);
    plan.execute(g);
    expect_alloc_free([&] { plan.execute(g); }, method_name(m));
  }
}

// Reused workspace buffers must not leak state between executes: two
// single-shot plans from the same initial grid must agree exactly with one
// long-lived plan executed twice, and with the scalar reference.
TEST(Workspace, ReusedBuffersStayCorrect) {
  const auto s = make_2d5p();
  const index nx = 128, ny = 16;
  Grid2D<double> ref(nx, ny, 1), g(nx, ny, 1);
  ref.fill(f2);
  g.fill(f2);
  reference_run(ref, s, 8);

  Options o;
  o.method = Method::kTransposeUJ;
  o.tiling = Tiling::kTessellate;
  o.steps = 4;
  o.bx = 64;
  o.by = 8;
  o.bt = 2;
  const auto plan = make_plan(shape2d(nx, ny), s, o);
  plan.execute(g);
  plan.execute(g);  // second run reuses tmp + scratch pool
  EXPECT_LE(max_abs_diff(ref, g), kTol);
}

// Streaming stores must be numerically identical to cached stores (NT
// stores change cache behaviour, not values). Forced on via StreamMode::kOn
// so the test does not depend on this machine's LLC size.
TEST(Workspace, StreamingStoresBitIdenticalToCached) {
  const auto s = make_1d3p(0.3);
  const index nx = 1024;
  Grid1D<double> a(nx, 1), b(nx, 1);
  a.fill(f1);
  b.fill(f1);
  for (Method m : {Method::kTranspose, Method::kDlt}) {
    Grid1D<double> ga(nx, 1), gb(nx, 1);
    ga.fill(f1);
    gb.fill(f1);
    Options o;
    o.method = m;
    o.steps = 5;
    o.stream = StreamMode::kOff;
    make_plan(shape1d(nx), s, o).execute(ga);
    o.stream = StreamMode::kOn;
    const auto plan = make_plan(shape1d(nx), s, o);
    EXPECT_TRUE(plan.config().streaming);
    plan.execute(gb);
    EXPECT_EQ(max_abs_diff(ga, gb), 0.0) << method_name(m);
  }
}

// The resolved streaming flag follows the topology policy: tiny working
// sets never stream under kAuto; bt > 1 tiled runs never stream even when
// huge (temporal reuse would be destroyed).
TEST(Workspace, StreamingResolutionPolicy) {
  const auto s = make_1d3p(0.3);
  Options o;
  o.method = Method::kTranspose;
  o.steps = 2;
  EXPECT_FALSE(make_plan(shape1d(1024), s, o).config().streaming)
      << "L1-sized working set must not stream under kAuto";
  o.stream = StreamMode::kOn;
  EXPECT_TRUE(make_plan(shape1d(1024), s, o).config().streaming);
  o.stream = StreamMode::kAuto;
  o.tiling = Tiling::kTessellate;
  o.bx = 512;
  o.bt = 4;  // temporal blocking: reuse exists, must not stream
  o.stream_threshold = 1e-12;  // make every working set "big"
  EXPECT_FALSE(make_plan(shape1d(1024), s, o).config().streaming);
  // kOn overrides the topology threshold, never the reuse gate: the flag
  // must report what the drivers actually execute.
  o.stream = StreamMode::kOn;
  EXPECT_FALSE(make_plan(shape1d(1024), s, o).config().streaming);
  o.stream = StreamMode::kAuto;
  o.bt = 1;  // degenerate full sweeps: streaming allowed
  EXPECT_TRUE(make_plan(shape1d(1024), s, o).config().streaming);
  // Combinations without a streaming write-back variant never report
  // streaming, even under kOn (the flag reports what executes).
  Options oa;
  oa.method = Method::kAutoVec;
  oa.steps = 2;
  oa.stream = StreamMode::kOn;
  EXPECT_FALSE(make_plan(shape1d(1024), s, oa).config().streaming);
}

}  // namespace
}  // namespace tsv
