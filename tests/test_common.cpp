// Unit tests for the common substrate: aligned buffers, grids, cpu info.
#include <gtest/gtest.h>

#include <cstdint>

#include "tsv/common/aligned.hpp"
#include "tsv/common/check.hpp"
#include "tsv/common/cpu.hpp"
#include "tsv/common/grid.hpp"

namespace tsv {
namespace {

TEST(AlignedBuffer, StartsAligned) {
  AlignedBuffer<double> b(13);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kAlignment, 0u);
  EXPECT_EQ(b.size(), 13);
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer<double> b(100);
  for (double v : b) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer<double> a(4);
  a[0] = 42.0;
  AlignedBuffer<double> b = a;
  b[0] = 7.0;
  EXPECT_EQ(a[0], 42.0);
  EXPECT_EQ(b[0], 7.0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(4);
  a[1] = 5.0;
  double* p = a.data();
  AlignedBuffer<double> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[1], 5.0);
}

TEST(AlignedBuffer, EmptyIsValid) {
  AlignedBuffer<double> b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, NegativeSizeThrows) {
  EXPECT_THROW(AlignedBuffer<double>(-1), std::invalid_argument);
}

TEST(RoundUp, Basics) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

TEST(Require, ThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require_fmt(false, "nx=", 5, " not divisible");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "nx=5 not divisible");
  }
}

TEST(Grid1D, InteriorAlignedAndHaloAddressable) {
  Grid1D<double> g(100, 2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.x0()) % kAlignment, 0u);
  g.at(-2) = 1.0;
  g.at(101) = 2.0;
  EXPECT_EQ(g.at(-2), 1.0);
  EXPECT_EQ(g.at(101), 2.0);
}

TEST(Grid1D, FillCoversHalo) {
  Grid1D<double> g(10, 1);
  g.fill([](index x) { return static_cast<double>(x); });
  EXPECT_EQ(g.at(-1), -1.0);
  EXPECT_EQ(g.at(10), 10.0);
  EXPECT_EQ(g.at(5), 5.0);
}

TEST(Grid1D, SwapStorage) {
  Grid1D<double> a(8, 1), b(8, 1);
  a.fill([](index) { return 1.0; });
  b.fill([](index) { return 2.0; });
  a.swap_storage(b);
  EXPECT_EQ(a.at(0), 2.0);
  EXPECT_EQ(b.at(0), 1.0);
  Grid1D<double> c(9, 1);
  EXPECT_THROW(a.swap_storage(c), std::invalid_argument);
}

TEST(Grid2D, RowsAligned) {
  Grid2D<double> g(37, 11, 2);
  for (index y = -2; y < 13; ++y)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(y)) % kAlignment, 0u)
        << "row " << y;
}

TEST(Grid2D, FillAndAccess) {
  Grid2D<double> g(5, 4, 1);
  g.fill([](index x, index y) { return static_cast<double>(10 * y + x); });
  EXPECT_EQ(g.at(2, 3), 32.0);
  EXPECT_EQ(g.at(-1, -1), -11.0);
  EXPECT_EQ(g.at(5, 4), 45.0);
}

TEST(Grid3D, RowsAlignedAndAccess) {
  Grid3D<double> g(17, 5, 3, 1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.row(2, 1)) % kAlignment, 0u);
  g.fill([](index x, index y, index z) {
    return static_cast<double>(100 * z + 10 * y + x);
  });
  EXPECT_EQ(g.at(3, 4, 2), 243.0);
  EXPECT_EQ(g.at(-1, 0, 0), -1.0);
}

TEST(Grid, MaxAbsDiff) {
  Grid1D<double> a(6, 1), b(6, 1);
  a.fill([](index) { return 0.0; });
  b.fill([](index) { return 0.0; });
  b.at(3) = 0.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  b.at(-1) = 99.0;  // halo differences are ignored
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(Cpu, ReportsSaneValues) {
  const CpuInfo& info = cpu_info();
  EXPECT_GE(info.logical_cores, 1);
  EXPECT_GT(info.l1_bytes, 0);
  EXPECT_GT(info.l2_bytes, info.l1_bytes);
  EXPECT_GT(info.l3_bytes, info.l2_bytes);
  EXPECT_TRUE(isa_supported(Isa::kScalar));
  EXPECT_EQ(isa_width(Isa::kAvx2), 4);
  EXPECT_EQ(isa_width(Isa::kAvx512), 8);
  // best_isa must be supported by definition.
  EXPECT_TRUE(isa_supported(best_isa()));
}

}  // namespace
}  // namespace tsv
