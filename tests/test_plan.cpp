// Plan-engine tests: configure-once/execute-many semantics, default
// resolution (ISA, threads, blocks), the unified split-tiling blocking rule,
// structured ConfigError reporting, and the rank-erased StencilKind plans.
#include <gtest/gtest.h>

#include <cmath>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

constexpr double kTol = 1e-11;

double f1(index x) { return std::sin(0.05 * x) + 0.002 * x; }
double f2(index x, index y) { return std::sin(0.04 * x - 0.06 * y); }
double f3(index x, index y, index z) {
  return std::sin(0.04 * x - 0.06 * y + 0.02 * z);
}

TEST(Plan, ExecuteIsRepeatable) {
  const auto s = make_1d3p(0.3);
  const index nx = 256;
  Grid1D<double> ref(nx, 1), g(nx, 1);
  ref.fill(f1);
  g.fill(f1);
  reference_run(ref, s, 6);

  Options o;
  o.method = Method::kTranspose;
  o.steps = 3;
  const auto plan = make_plan(shape1d(nx), s, o);
  plan.execute(g);  // 3 steps
  plan.execute(g);  // 3 more: the plan is reusable with no re-validation
  EXPECT_LE(max_abs_diff(ref, g), kTol);
}

TEST(Plan, DefaultOptionsResolveToConcreteValues) {
  const auto plan = make_plan(shape1d(128), make_1d3p(), Options{});
  const ResolvedOptions& r = plan.config();
  EXPECT_EQ(r.isa, best_isa());  // kAuto resolved at plan time
  EXPECT_NE(r.isa, Isa::kAuto);
  EXPECT_EQ(r.width, kernel_width(best_isa()));
  EXPECT_EQ(r.tiling, Tiling::kNone);
  EXPECT_EQ(r.bx, 0);       // untiled: no blocking
  EXPECT_EQ(r.threads, 1);  // untiled sweeps are single-threaded by design
}

TEST(Plan, TiledThreadsResolveToConcreteTeam) {
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = 2;
  EXPECT_GT(make_plan(shape1d(256), make_1d3p(), o).config().threads, 0);
  o.threads = 3;
  EXPECT_EQ(make_plan(shape1d(256), make_1d3p(), o).config().threads, 3);
}

// The seed defaulted Options::isa to kAvx512, which threw on any
// non-AVX-512 host. Default-constructed options must now run everywhere.
TEST(Plan, DefaultConstructedOptionsRunOnAnyHost) {
  const auto s = make_1d3p(0.3);
  Grid1D<double> ref(128, 1), g(128, 1);
  ref.fill(f1);
  g.fill(f1);
  reference_run(ref, s, 1);
  EXPECT_NO_THROW(run(g, s, Options{}));
  EXPECT_LE(max_abs_diff(ref, g), kTol);
}

TEST(Plan, TiledDefaultsAreResolvedAndLegal) {
  const auto s = make_1d3p(0.3);
  const index nx = 512;
  Grid1D<double> ref(nx, 1), g(nx, 1);
  ref.fill(f1);
  g.fill(f1);
  reference_run(ref, s, 6);

  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = 6;  // bx/bt left 0: the plan resolves sane defaults
  const auto plan = make_plan(shape1d(nx), s, o);
  EXPECT_GT(plan.config().bx, 0);
  EXPECT_GT(plan.config().bt, 0);
  plan.execute(g);
  EXPECT_LE(max_abs_diff(ref, g), kTol);
}

// ---- unified split-tiling blocking rule (regression) -----------------------
//
// The seed interpreted split-tiling blocks inconsistently across ranks
// (bx/V::width in 1D, by?by:bx rows in 2D, bz?bz:bx planes in 3D). The rule
// is now: the split axis takes its block from its own field, falling back
// to bx, then the full extent; 1D blocks are elements, resolved to columns.

TEST(Plan, SplitBlockRule1D) {
  Options o;
  o.method = Method::kDlt;
  o.tiling = Tiling::kSplit;
  o.isa = Isa::kScalar;  // width-2 kernels
  o.steps = 4;
  o.bx = 64;
  o.bt = 2;
  const auto plan = make_plan(shape1d(128), make_1d3p(), o);
  EXPECT_EQ(plan.config().split_block, 32);  // 64 elements / W=2 columns
}

TEST(Plan, SplitBlockRule2DFallsBackToBx) {
  Options o;
  o.method = Method::kDlt;
  o.tiling = Tiling::kSplit;
  o.steps = 4;
  o.bx = 16;  // by unset: falls back to bx, in rows
  const auto plan = make_plan(shape2d(128, 24), make_2d5p(), o);
  EXPECT_EQ(plan.config().split_block, 16);

  Options o2 = o;
  o2.by = 5;  // own axis field wins
  EXPECT_EQ(make_plan(shape2d(128, 24), make_2d5p(), o2).config().split_block,
            5);
}

TEST(Plan, SplitBlockRule3DFallsBackToBx) {
  Options o;
  o.method = Method::kDlt;
  o.tiling = Tiling::kSplit;
  o.steps = 2;
  o.bx = 7;  // bz unset: falls back to bx, in planes
  const auto plan = make_plan(shape3d(128, 6, 14), make_3d7p(), o);
  EXPECT_EQ(plan.config().split_block, 7);

  Options o2 = o;
  o2.bz = 3;
  EXPECT_EQ(
      make_plan(shape3d(128, 6, 14), make_3d7p(), o2).config().split_block, 3);
}

TEST(Plan, SplitTilingMatchesReferenceAtEveryRank) {
  Options o;
  o.method = Method::kDlt;
  o.tiling = Tiling::kSplit;
  o.steps = 5;
  o.bx = 64;
  o.bt = 2;
  o.threads = 2;
  {
    const auto s = make_1d3p(0.3);
    Grid1D<double> ref(256, 1), g(256, 1);
    ref.fill(f1);
    g.fill(f1);
    reference_run(ref, s, 5);
    make_plan(shape1d(256), s, o).execute(g);
    EXPECT_LE(max_abs_diff(ref, g), kTol) << "rank 1";
  }
  {
    const auto s = make_2d5p();
    Grid2D<double> ref(128, 24, 1), g(128, 24, 1);
    ref.fill(f2);
    g.fill(f2);
    reference_run(ref, s, 5);
    make_plan(shape2d(128, 24), s, o).execute(g);
    EXPECT_LE(max_abs_diff(ref, g), kTol) << "rank 2";
  }
  {
    const auto s = make_3d7p();
    Grid3D<double> ref(128, 6, 14, 1), g(128, 6, 14, 1);
    ref.fill(f3);
    g.fill(f3);
    reference_run(ref, s, 5);
    make_plan(shape3d(128, 6, 14), s, o).execute(g);
    EXPECT_LE(max_abs_diff(ref, g), kTol) << "rank 3";
  }
}

// ---- structured errors ------------------------------------------------------

TEST(Plan, ConfigErrorCarriesStructuredFields) {
  Options o;
  o.method = Method::kReorg;  // split tiling is DLT-only
  o.tiling = Tiling::kSplit;
  o.steps = 2;
  try {
    make_plan(shape1d(128), make_1d3p(), o);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.method(), Method::kReorg);
    EXPECT_EQ(e.tiling(), Tiling::kSplit);
    EXPECT_EQ(e.rank(), 1);
    EXPECT_FALSE(e.reason().empty());
    EXPECT_NE(std::string(e.what()).find("reorg"), std::string::npos);
  }
  // Source compatibility: ConfigError is a std::invalid_argument.
  EXPECT_THROW(make_plan(shape1d(128), make_1d3p(), o), std::invalid_argument);
}

TEST(Plan, LayoutViolationsFailAtPlanTime) {
  Options o;  // default method kTranspose needs nx % W^2 == 0
  const index bad_nx = 10;  // not a multiple of 4, 16 or 64
  EXPECT_THROW(make_plan(shape1d(bad_nx), make_1d3p(), o), ConfigError);
  o.method = Method::kDlt;
  o.isa = Isa::kScalar;
  EXPECT_THROW(make_plan(shape1d(101), make_1d3p(), o), ConfigError);
  // MultiLoad has no layout rule: same size must plan fine.
  o.method = Method::kMultiLoad;
  EXPECT_NO_THROW(make_plan(shape1d(101), make_1d3p(), o));
}

TEST(Plan, EvenBtCheckedAtPlanTime) {
  Options o;
  o.method = Method::kTransposeUJ;
  o.tiling = Tiling::kTessellate;
  o.steps = 8;
  o.bx = 128;
  o.bt = 3;  // must be even
  EXPECT_THROW(make_plan(shape1d(256), make_1d3p(), o), ConfigError);
  o.bt = 4;
  EXPECT_NO_THROW(make_plan(shape1d(256), make_1d3p(), o));
}

TEST(Plan, HaloSmallerThanRadiusRejected) {
  EXPECT_THROW(make_plan(shape1d(128, /*halo=*/1), make_1d5p(), Options{}),
               ConfigError);
  EXPECT_NO_THROW(make_plan(shape1d(128, /*halo=*/2), make_1d5p(), Options{}));
}

TEST(Plan, ShapeMismatchAtExecute) {
  const auto s = make_1d3p();
  const auto plan = make_plan(shape1d(128), s, Options{});
  Grid1D<double> wrong(192, 1);
  wrong.fill(f1);
  EXPECT_THROW(plan.execute(wrong), ConfigError);
}

TEST(Plan, ShapeRankMismatchAtPlanTime) {
  EXPECT_THROW(make_plan(shape2d(128, 8), make_1d3p(), Options{}),
               ConfigError);
}

// ---- rank-erased plans ------------------------------------------------------

TEST(Plan, StencilKindPlanExecutes) {
  const index nx = 128, ny = 16;
  Grid2D<double> ref(nx, ny, 1), g(nx, ny, 1);
  ref.fill(f2);
  g.fill(f2);
  reference_run(ref, make_2d5p(), 4);

  Options o;
  o.method = Method::kTranspose;
  o.steps = 4;
  const Plan plan = make_plan(shape2d(nx, ny), StencilKind::k2d5p, o);
  EXPECT_EQ(plan.rank(), 2);
  EXPECT_EQ(plan.config().isa, best_isa());
  plan.execute(g);
  EXPECT_LE(max_abs_diff(ref, g), kTol);

  Grid1D<double> g1(nx, 1);
  g1.fill(f1);
  EXPECT_THROW(plan.execute(g1), ConfigError);  // wrong rank
}

}  // namespace
}  // namespace tsv
