// Generic-stencil subsystem (core/generic_stencil.hpp + vectorize/generic.hpp).
//
//  * Equivalence: every precompiled Table-1 kind, re-expressed as a
//    GenericStencil with the same weights, must match the boundary-aware
//    scalar oracle — and a specialized vectorized plan — within the
//    check.hpp dtype tolerance, across every (tiling, isa, dtype, boundary)
//    combination the registry claims for Method::kGeneric.
//  * Validation: malformed shapes (offsets beyond the declared radius, empty
//    tap sets, rank mismatches, wrong method, inconsistent scale extents)
//    surface as structured ConfigErrors at plan time, never as crashes.
//  * Pass-through: a lowered generic descriptor flows through ShardedPlan,
//    Executor and Scheduler exactly like a compiled kind (bit-identical
//    sharding; futures resolve to the oracle result).
//  * Step-slicing regression: per-step boundary refreshes and cooperative
//    cancellation share one step loop (TypedPlan::step_loop), so a cancel
//    delivered at step t must leave an exact t-step prefix whose ghosts
//    were refreshed before every completed step.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

Shape shape_for(int rank, index nx, index ny, index nz, index halo) {
  Shape s;
  s.rank = rank;
  s.nx = nx;
  s.ny = rank >= 2 ? ny : 1;
  s.nz = rank >= 3 ? nz : 1;
  s.halo = halo;
  return s;
}

template <typename G>
G make_filled(const Shape& shape) {
  using T = typename G::value_type;
  auto v = [](index lin) {
    return static_cast<T>(0.25 + 1e-3 * static_cast<double>(lin % 89));
  };
  if constexpr (G::kRank == 1) {
    G g(shape.nx, shape.halo);
    g.fill([&](index x) { return v(x); });
    return g;
  } else if constexpr (G::kRank == 2) {
    G g(shape.nx, shape.ny, shape.halo);
    g.fill([&](index x, index y) { return v(x + 131 * y); });
    return g;
  } else {
    G g(shape.nx, shape.ny, shape.nz, shape.halo);
    g.fill([&](index x, index y, index z) {
      return v(x + 131 * y + 1031 * z);
    });
    return g;
  }
}

// ---------------------------------------------------------------------------
// Equivalence: generic interpreter vs oracle, across every claimed combo.
// ---------------------------------------------------------------------------

template <typename T, typename G>
void check_kind_combo(StencilKind kind, Tiling tiling, Isa isa,
                      const BoundarySpec& bc, int* executed) {
  const int rank = stencil_kind_rank(kind);
  const int radius = stencil_kind_radius(kind);
  const Shape shape =
      shape_for(rank, rank == 1 ? 130 : 57, 9, 5, radius);

  Options o;
  o.method = Method::kGeneric;
  o.tiling = tiling;
  o.isa = isa;
  o.dtype = dtype_of<T>();
  o.steps = 3;
  o.threads = 2;
  o.boundary = bc;
  if (tiling == Tiling::kTessellate) o.bt = 2;

  StencilSpec spec;
  spec.generic =
      std::make_shared<const GenericStencil>(generic_from_kind(kind));

  G got = make_filled<G>(shape);
  G ref = got;
  Plan plan;
  try {
    plan = make_plan(shape, spec, o);
  } catch (const ConfigError&) {
    return;  // combo not claimed at this rank/isa — nothing to check
  }
  plan.execute(got);
  generic_reference_run(ref, *spec.generic, o.steps, plan.config().boundary);
  EXPECT_LE(static_cast<double>(max_abs_diff(ref, got)),
            accuracy_tolerance<T>(o.steps) * 4)
      << stencil_kind_name(kind) << " " << tiling_name(tiling) << " "
      << isa_name(isa) << " " << dtype_name(o.dtype) << " bc="
      << boundary_name(bc.x);
  ++*executed;
}

template <typename T>
void check_kind_all_combos(StencilKind kind, int* executed) {
  for (Tiling tiling : {Tiling::kNone, Tiling::kTessellate})
    for (Isa isa : runnable_isas())
      for (Boundary b : all_boundaries()) {
        const BoundarySpec bc = BoundarySpec::uniform(b);
        switch (stencil_kind_rank(kind)) {
          case 1:
            check_kind_combo<T, Grid1D<T>>(kind, tiling, isa, bc, executed);
            break;
          case 2:
            check_kind_combo<T, Grid2D<T>>(kind, tiling, isa, bc, executed);
            break;
          default:
            check_kind_combo<T, Grid3D<T>>(kind, tiling, isa, bc, executed);
            break;
        }
      }
}

TEST(GenericEquivalence, EveryKindEveryClaimedComboMatchesOracle) {
  int executed = 0;
  for (StencilKind kind :
       {StencilKind::k1d3p, StencilKind::k1d5p, StencilKind::k2d5p,
        StencilKind::k2d9p, StencilKind::k3d7p, StencilKind::k3d27p}) {
    check_kind_all_combos<double>(kind, &executed);
    check_kind_all_combos<float>(kind, &executed);
  }
  // The generic rows claim every boundary, rank and dtype at both tilings,
  // so every drawn combo must have executed — nothing silently rejected.
  const int isas = static_cast<int>(runnable_isas().size());
  EXPECT_EQ(executed, 6 * 2 * isas * 2 * static_cast<int>(
                          all_boundaries().size()));
}

/// The interpreter against a specialized vectorized plan (not just the
/// scalar oracle): both run the same weights, so they must agree within the
/// reassociation tolerance.
template <typename T>
void check_against_specialized(StencilKind kind) {
  const int rank = stencil_kind_rank(kind);
  const int radius = stencil_kind_radius(kind);
  const Shape shape =
      shape_for(rank, rank == 1 ? 256 : 64, 12, 6, radius);

  Options og;
  og.method = Method::kGeneric;
  og.dtype = dtype_of<T>();
  og.steps = 4;
  Options os = og;
  os.method = Method::kMultiLoad;

  StencilSpec gspec;
  gspec.generic =
      std::make_shared<const GenericStencil>(generic_from_kind(kind));
  StencilSpec sspec;
  sspec.kind = kind;

  auto check = [&](auto grid_tag) {
    using G = decltype(grid_tag);
    G a = make_filled<G>(shape);
    G b = a;
    make_plan(shape, gspec, og).execute(a);
    make_plan(shape, sspec, os).execute(b);
    EXPECT_LE(static_cast<double>(max_abs_diff(a, b)),
              accuracy_tolerance<T>(og.steps) * 4)
        << stencil_kind_name(kind) << " " << dtype_name(og.dtype);
  };
  if (rank == 1)
    check(Grid1D<T>{1, 1});
  else if (rank == 2)
    check(Grid2D<T>{1, 1, 1});
  else
    check(Grid3D<T>{1, 1, 1, 1});
}

TEST(GenericEquivalence, MatchesSpecializedPlanBothDtypes) {
  for (StencilKind kind :
       {StencilKind::k1d3p, StencilKind::k1d5p, StencilKind::k2d5p,
        StencilKind::k2d9p, StencilKind::k3d7p, StencilKind::k3d27p}) {
    check_against_specialized<double>(kind);
    check_against_specialized<float>(kind);
  }
}

TEST(GenericEquivalence, CustomCoefficientsFollowFactoryOrder) {
  // generic_from_kind with explicit coeffs must equal the factory stencil
  // built from the same list — pins the parameter-order contract.
  const std::vector<double> c = {0.37, 0.18, 0.11};
  const Shape shape = shape_for(2, 96, 11, 1, 1);
  StencilSpec gspec;
  gspec.generic = std::make_shared<const GenericStencil>(
      generic_from_kind(StencilKind::k2d5p, c));
  Options o;
  o.method = Method::kGeneric;
  o.steps = 3;
  Grid2D<double> got = make_filled<Grid2D<double>>(shape);
  Grid2D<double> ref = got;
  make_plan(shape, gspec, o).execute(got);
  reference_run(ref, make_2d5p(c[0], c[1], c[2]), o.steps,
                BoundarySpec::uniform(Boundary::kDirichlet));
  EXPECT_LE(max_abs_diff(ref, got), accuracy_tolerance<double>(o.steps));
}

// ---------------------------------------------------------------------------
// Validation errors.
// ---------------------------------------------------------------------------

GenericStencil center_only(int rank) {
  GenericStencil gs;
  gs.rank = rank;
  gs.taps = {{0, 0, 0, 1.0}};
  return gs;
}

TEST(GenericValidation, OffsetBeyondDeclaredRadius) {
  GenericStencil gs = center_only(2);
  gs.radius = 1;
  gs.taps.push_back({2, 0, 0, 0.1});
  EXPECT_NE(generic_violation(gs), nullptr);
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(gs);
  EXPECT_THROW(make_plan(shape_for(2, 64, 8, 1, 1), spec,
                         Options{.method = Method::kGeneric}),
               ConfigError);
}

TEST(GenericValidation, EmptyTapsRejected) {
  GenericStencil gs;
  gs.rank = 1;
  EXPECT_NE(generic_violation(gs), nullptr);
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(gs);
  EXPECT_THROW(make_plan(shape_for(1, 64, 1, 1, 1), spec,
                         Options{.method = Method::kGeneric}),
               ConfigError);
}

TEST(GenericValidation, RankMismatchRejected) {
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(center_only(2));
  EXPECT_THROW(make_plan(shape_for(3, 32, 8, 8, 1), spec,
                         Options{.method = Method::kGeneric}),
               ConfigError);
}

TEST(GenericValidation, NonGenericMethodRejected) {
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(center_only(2));
  EXPECT_THROW(make_plan(shape_for(2, 64, 8, 1, 1), spec,
                         Options{.method = Method::kTranspose}),
               ConfigError);
}

TEST(GenericValidation, OffRankOffsetsAndDuplicatesRejected) {
  GenericStencil off = center_only(1);
  off.taps.push_back({0, 1, 0, 0.1});  // dy on a rank-1 shape
  EXPECT_NE(generic_violation(off), nullptr);

  GenericStencil dup = center_only(2);
  dup.taps.push_back({0, 0, 0, 0.2});
  EXPECT_NE(generic_violation(dup), nullptr);

  GenericStencil nan = center_only(2);
  nan.taps.push_back({1, 0, 0, std::nan("")});
  EXPECT_NE(generic_violation(nan), nullptr);
}

TEST(GenericValidation, ScaleExtentMismatchRejected) {
  // Inconsistent extents-vs-size is a shape violation ...
  GenericStencil gs = center_only(2);
  gs.scale.assign(10, 1.0);
  gs.scale_nx = 5;
  gs.scale_ny = 3;  // 5 * 3 != 10
  EXPECT_NE(generic_violation(gs), nullptr);

  // ... and a well-formed field still rejects a grid of OTHER extents at
  // plan time (the field is bound to the interior it was sampled over).
  gs.scale_ny = 2;
  ASSERT_EQ(generic_violation(gs), nullptr);
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(gs);
  EXPECT_THROW(make_plan(shape_for(2, 64, 8, 1, 1), spec,
                         Options{.method = Method::kGeneric}),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Pass-through: ShardedPlan, Executor, Scheduler.
// ---------------------------------------------------------------------------

TEST(GenericPassThrough, ShardedBitIdenticalToMonolithic) {
  const Shape shape = shape_for(2, 64, 13, 1, 1);
  const auto lowered = detail::lower_generic_2d<1, double>(
      generic_from_kind(StencilKind::k2d9p));
  Options o;
  o.method = Method::kGeneric;
  o.steps = 5;
  o.boundary = BoundarySpec::uniform(Boundary::kPeriodic);

  Grid2D<double> mono = make_filled<Grid2D<double>>(shape);
  Grid2D<double> init = mono;
  make_plan(shape, lowered, o).execute(mono);

  ShardedGrid<Grid2D<double>> sg(init, ShardSpec{.count = 3});
  sg.scatter(init);
  const auto plan = make_sharded_plan(shape, lowered, ShardSpec{.count = 3}, o);
  plan.execute(sg);
  Grid2D<double> out = init;
  sg.gather(out);
  EXPECT_EQ(max_abs_diff(mono, out), 0.0);  // bit-identical
}

TEST(GenericPassThrough, ScaleFieldRejectsSharding) {
  // A per-cell field is bound to exact interior extents; a shard's slab has
  // different extents, so the per-shard plan build must throw rather than
  // silently index the whole-domain field.
  const Shape shape = shape_for(2, 64, 12, 1, 1);
  GenericStencil gs = generic_from_kind(StencilKind::k2d5p);
  gs.scale.assign(static_cast<std::size_t>(64 * 12), 0.9);
  gs.scale_nx = 64;
  gs.scale_ny = 12;
  const auto lowered = detail::lower_generic_2d<1, double>(gs);
  Options o;
  o.method = Method::kGeneric;
  o.steps = 2;
  EXPECT_THROW(make_sharded_plan(shape, lowered, ShardSpec{.count = 3}, o),
               ConfigError);
  // The monolithic plan on the matching extents stays fine.
  EXPECT_NO_THROW(make_plan(shape, lowered, o));
}

TEST(GenericPassThrough, ExecutorServesGenericRequests) {
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(
      generic_star(2, 2, 0.4, 0.05));
  Options o;
  o.method = Method::kGeneric;
  o.steps = 3;
  o.boundary = BoundarySpec::uniform(Boundary::kNeumann);

  Grid2D<double> got =
      make_filled<Grid2D<double>>(shape_for(2, 96, 9, 1, 2));
  Grid2D<double> ref = got;
  {
    Executor ex;
    ex.submit(got, spec, o).get();
  }
  generic_reference_run(ref, *spec.generic, o.steps, o.boundary);
  EXPECT_LE(max_abs_diff(ref, got), accuracy_tolerance<double>(o.steps));
}

TEST(GenericPassThrough, SchedulerServesGenericRequests) {
  const Shape base = shape_for(1, 192, 1, 1, 3);
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(
      generic_box(1, 3, 0.3, 0.05));
  Options o;
  o.method = Method::kGeneric;
  o.steps = 4;

  Grid1D<double> got = make_filled<Grid1D<double>>(base);
  Grid1D<double> ref = got;
  {
    Scheduler sched;
    auto r = sched.submit(got, spec, o).get();
    EXPECT_FALSE(r.coalesced);
  }
  generic_reference_run(ref, *spec.generic, o.steps,
                        BoundarySpec::uniform(Boundary::kDirichlet));
  EXPECT_LE(max_abs_diff(ref, got), accuracy_tolerance<double>(o.steps));
}

// ---------------------------------------------------------------------------
// Step-slicing regression: per-step boundaries + cancellation compose.
// ---------------------------------------------------------------------------

TEST(StepSlicing, CancelMidRunLeavesExactPrefixWithRefreshedGhosts) {
  // Periodic boundaries force the per-step ghost refresh; a cancellation
  // delivered before step k must leave the grid at exactly the k-step
  // oracle prefix — both features ride TypedPlan::step_loop, so this pins
  // their composition (the duplication it replaced could drift apart).
  const Shape shape = shape_for(2, 57, 11, 1, 1);
  StencilSpec spec;
  spec.generic = std::make_shared<const GenericStencil>(
      generic_from_kind(StencilKind::k2d5p));
  Options o;
  o.method = Method::kGeneric;
  o.steps = 6;
  o.boundary = BoundarySpec::uniform(Boundary::kPeriodic);

  Grid2D<double> got = make_filled<Grid2D<double>>(shape);
  Grid2D<double> ref = got;
  const Plan plan = make_plan(shape, spec, o);

  // check() runs once before step 0 and once before each step t >= 1, so a
  // predicate that trips on its (k+1)-th call cancels after k full steps.
  constexpr int kPrefix = 2;
  int calls = 0;
  ExecControl ctl;
  ctl.cancelled = [&] { return ++calls > kPrefix; };
  Workspace ws;
  EXPECT_THROW(plan.execute(got, ws, &ctl), CancelledError);

  generic_reference_run(ref, *spec.generic, kPrefix, o.boundary);
  EXPECT_LE(max_abs_diff(ref, got), accuracy_tolerance<double>(kPrefix));

  // Same plan, inert control: the full run still completes and equals the
  // full-length oracle (the prefix really was a prefix, not a detour).
  Grid2D<double> full = make_filled<Grid2D<double>>(shape);
  Grid2D<double> full_ref = full;
  plan.execute(full);
  generic_reference_run(full_ref, *spec.generic, o.steps, o.boundary);
  EXPECT_LE(max_abs_diff(full_ref, full), accuracy_tolerance<double>(o.steps));
}

}  // namespace
}  // namespace tsv
