// Chaos suite for the resilience layer (core/fault.hpp, core/health.hpp,
// and the retry/timeout/cancel/degradation paths threaded through
// Scheduler -> Executor -> PlanCache -> Plan -> ShardedPlan).
//
// Every test is DETERMINISTIC: the injector's per-point splitmix64 streams
// replay exactly under a fixed seed, trigger counts (`once`, `count`) are
// exact, and ordering-sensitive scenarios are built under Scheduler::pause.
// The suite's core claims:
//   * every fault point fires pre-mutation, so a retried request is
//     BIT-identical to a fault-free run;
//   * a fault can fail a future but never strand one, and never leaks a
//     workspace lease;
//   * error types match the taxonomy (TransientError / TimeoutError /
//     CancelledError / KernelFault / NumericalError), and the scheduler's
//     cancelled/timed_out/retries/retry_exhausted counters add up.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tsv/tsv.hpp"

namespace tsv {
namespace {

template <typename T>
T noise(index salt, index lin) {
  return static_cast<T>(0.25 +
                        1e-3 * static_cast<double>((salt * 31 + lin * 7) % 101));
}

Options opts(Method m, Tiling t, index steps) {
  Options o;
  o.method = m;
  o.tiling = t;
  o.steps = steps;
  return o;
}

/// Mirrors the scheduler's (= executor's) option normalization so a serial
/// baseline resolves to the exact plan a gang runs.
Options normalized(Options o, int threads_per_gang) {
  o.dtype = dtype_of<double>();
  o.max_threads = o.max_threads > 0 ? std::min(o.max_threads, threads_per_gang)
                                    : threads_per_gang;
  return o;
}

struct Req {
  std::unique_ptr<Grid1D<double>> grid;
  std::future<Scheduler::Result> fut;

  explicit Req(index salt, index nx = 512) {
    grid = std::make_unique<Grid1D<double>>(nx, 1);
    grid->fill([salt](index x) { return noise<double>(salt, x); });
  }
};

Grid1D<double> serial_expected(index salt, const Options& o,
                               int threads_per_gang, index nx = 512) {
  Grid1D<double> g(nx, 1);
  g.fill([salt](index x) { return noise<double>(salt, x); });
  make_plan(shape_of(g), StencilSpec{.kind = StencilKind::k1d3p},
            normalized(o, threads_per_gang))
      .execute(g);
  return g;
}

const Options kRun = opts(Method::kTranspose, Tiling::kNone, 4);
const StencilSpec kSpec{.kind = StencilKind::k1d3p};

/// Every injector-touching test starts and ends with a quiet injector so
/// the suite's tests cannot leak armed points into each other (or into
/// other suites in the same binary).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector& fi = FaultInjector::instance();
    fi.seed(0x5eed);  // also clears per-point stats
    fi.reset();
    fi.set_enabled(false);
  }
  void TearDown() override {
    FaultInjector& fi = FaultInjector::instance();
    fi.reset();
    fi.set_enabled(false);
  }
};

// ---------------------------------------------------------------------------
// Error taxonomy: classification, lineage, transience.
// ---------------------------------------------------------------------------

TEST(FaultTaxonomy, TransientClassification) {
  const auto ep = [](auto e) { return std::make_exception_ptr(e); };
  EXPECT_TRUE(is_transient_error(ep(TransientError("t"))));
  EXPECT_TRUE(is_transient_error(ep(KernelFault("k"))));
  EXPECT_TRUE(is_transient_error(ep(std::bad_alloc{})));
  EXPECT_FALSE(is_transient_error(ep(TimeoutError("t"))));
  EXPECT_FALSE(is_transient_error(ep(CancelledError("c"))));
  EXPECT_FALSE(is_transient_error(
      ep(ConfigError(Method::kTranspose, Tiling::kNone, 1, "c"))));
  EXPECT_FALSE(is_transient_error(ep(OverloadError("o"))));
  EXPECT_FALSE(is_transient_error(ep(NumericalError("n", 3))));
  EXPECT_FALSE(is_transient_error(ep(std::runtime_error("r"))));
  EXPECT_FALSE(is_transient_error(std::exception_ptr{}));
}

TEST(FaultTaxonomy, ExistingErrorsKeepLineageAndJoinTaxonomy) {
  // ConfigError: still a std::invalid_argument (old catch sites compile and
  // fire), now also a TsvError (new catch sites span the taxonomy).
  const auto bad_config = [] {
    return ConfigError(Method::kTranspose, Tiling::kNone, 1, "bad");
  };
  try {
    throw bad_config();
  } catch (const std::invalid_argument&) {
  }
  try {
    throw bad_config();
  } catch (const TsvError& e) {
    EXPECT_FALSE(e.is_transient());
  }
  try {
    throw OverloadError("full");
  } catch (const TsvError& e) {
    EXPECT_FALSE(e.is_transient());
  }
  try {
    throw NumericalError("nan", 42);
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.first_bad_index(), 42);
  }
}

TEST(FaultTaxonomy, ExecControlCancelWinsOverTimeout) {
  ExecControl none;
  EXPECT_FALSE(none.active());
  EXPECT_NO_THROW(none.check());

  ExecControl expired;
  expired.deadline = ExecControl::Clock::now() - std::chrono::milliseconds(1);
  EXPECT_TRUE(expired.active());
  EXPECT_THROW(expired.check(), TimeoutError);

  ExecControl cancelled;
  cancelled.cancelled = [] { return true; };
  EXPECT_TRUE(cancelled.active());
  EXPECT_THROW(cancelled.check(), CancelledError);

  ExecControl both = expired;
  both.cancelled = [] { return true; };
  EXPECT_THROW(both.check(), CancelledError);  // the caller's word wins

  CancelToken inert;
  EXPECT_FALSE(inert.valid());
  EXPECT_FALSE(inert.cancelled());
  inert.cancel();  // no-op, not a crash
  CancelToken live = CancelToken::make();
  CancelToken alias = live;  // copies share the flag
  live.cancel();
  EXPECT_TRUE(alias.cancelled());
}

// ---------------------------------------------------------------------------
// The injector itself: deterministic replay, trigger modes, point registry.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, SeedReplaysTheExactFaultSchedule) {
  FaultInjector& fi = FaultInjector::instance();
  const auto draw_pattern = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        fault_point(FaultSite::kKernelSweep);
      } catch (const KernelFault&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };

  fi.arm("kernel.sweep", {.probability = 0.5});
  fi.seed(1234);
  const std::vector<bool> a = draw_pattern();
  const auto sa = fi.stats("kernel.sweep");
  EXPECT_EQ(sa.passes, 64u);
  EXPECT_GT(sa.fires, 0u);
  EXPECT_LT(sa.fires, 64u);

  fi.arm("kernel.sweep", {.probability = 0.5});  // arm() keeps counters
  fi.seed(1234);                                 // rewind stream + counters
  EXPECT_EQ(draw_pattern(), a) << "same seed must replay the same schedule";

  fi.seed(99);  // a different seed diverges (with 2^-64 collision odds)
  EXPECT_NE(draw_pattern(), a);
}

TEST_F(FaultTest, TriggerModesOnceCountProbabilityAndRegistry) {
  FaultInjector& fi = FaultInjector::instance();

  fi.arm("plan.build", {.once = true});
  EXPECT_THROW(fault_point(FaultSite::kPlanBuild), TransientError);
  EXPECT_NO_THROW(fault_point(FaultSite::kPlanBuild));  // once disarmed itself
  EXPECT_EQ(fi.stats("plan.build").fires, 1u);

  fi.seed(0x5eed);  // clear counters
  fi.arm("workspace.alloc", {.count = 3});
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW(fault_point(FaultSite::kWorkspaceAlloc), TransientError);
  EXPECT_NO_THROW(fault_point(FaultSite::kWorkspaceAlloc));
  EXPECT_EQ(fi.stats("workspace.alloc").fires, 3u);
  EXPECT_EQ(fi.stats("workspace.alloc").passes, 4u);

  fi.disarm("workspace.alloc");
  EXPECT_NO_THROW(fault_point(FaultSite::kWorkspaceAlloc));

  // probability 0 never fires; probability 1 always fires.
  fi.arm("shard.exchange", {.probability = 0.0});
  EXPECT_NO_THROW(fault_point(FaultSite::kShardExchange));
  fi.arm("shard.exchange", {.probability = 1.0});
  EXPECT_THROW(fault_point(FaultSite::kShardExchange), TransientError);

  EXPECT_THROW(fi.arm("no.such.point", {}), std::out_of_range);
  EXPECT_THROW(fi.disarm("no.such.point"), std::out_of_range);
  EXPECT_THROW(fi.stats("no.such.point"), std::out_of_range);

  // Name table round-trips through the enum.
  EXPECT_STREQ(fault_site_name(FaultSite::kWorkspaceAlloc), "workspace.alloc");
  EXPECT_STREQ(fault_site_name(FaultSite::kKernelSweep), "kernel.sweep");

  // Disabled injector: armed points are inert (the production fast path).
  fi.arm("plan.build", {.once = true});
  fi.set_enabled(false);
  EXPECT_NO_THROW(fault_point(FaultSite::kPlanBuild));
}

// ---------------------------------------------------------------------------
// Health scans: exact first-bad-index, scope semantics, name round-trip.
// ---------------------------------------------------------------------------

TEST(Health, ScanFindsFirstBadIndexPerScope) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  Grid1D<double> g1(64, 1);
  g1.fill([](index) { return 1.0; });
  EXPECT_NO_THROW(health_scan(g1, HealthCheck::kFull));
  g1.at(5) = kNaN;
  EXPECT_NO_THROW(health_scan(g1, HealthCheck::kOff));
  EXPECT_NO_THROW(health_scan(g1, HealthCheck::kBoundary));  // 5 is interior
  try {
    health_scan(g1, HealthCheck::kFull);
    FAIL() << "full scan missed the NaN";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.first_bad_index(), 5);
  }
  g1.at(5) = 1.0;
  g1.at(0) = kInf;  // boundary "ring" of a 1D grid: the two edge cells
  EXPECT_THROW(health_scan(g1, HealthCheck::kBoundary), NumericalError);

  Grid2D<double> g2(8, 5, 1);
  g2.fill([](index, index) { return 1.0; });
  g2.at(3, 2) = kNaN;  // strictly interior
  EXPECT_NO_THROW(health_scan(g2, HealthCheck::kBoundary));
  try {
    health_scan(g2, HealthCheck::kFull);
    FAIL() << "full scan missed the NaN";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.first_bad_index(), 3 + 8 * 2);
  }
  g2.at(3, 2) = 1.0;
  g2.at(0, 2) = kInf;  // on the ring
  try {
    health_scan(g2, HealthCheck::kBoundary);
    FAIL() << "boundary scan missed the edge Inf";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.first_bad_index(), 0 + 8 * 2);
  }

  Grid3D<double> g3(4, 3, 5, 1);
  g3.fill([](index, index, index) { return 1.0; });
  g3.at(1, 2, 3) = -kInf;
  try {
    health_scan(g3, HealthCheck::kFull);
    FAIL() << "full scan missed the Inf";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.first_bad_index(), 1 + 4 * (2 + 3 * 3));
  }

  EXPECT_STREQ(health_check_name(HealthCheck::kOff), "off");
  EXPECT_STREQ(health_check_name(HealthCheck::kBoundary), "boundary");
  EXPECT_STREQ(health_check_name(HealthCheck::kFull), "full");
  EXPECT_EQ(health_check_from_name("boundary"), HealthCheck::kBoundary);
  EXPECT_THROW(health_check_from_name("bogus"), std::invalid_argument);
}

TEST(Health, PlanExecuteGuardsOutputWhenOptedIn) {
  Grid1D<double> g(512, 1);
  g.fill([](index x) { return noise<double>(1, x); });
  g.at(100) = std::numeric_limits<double>::quiet_NaN();

  Options off = kRun;  // default health_check = kOff: NaN propagates silently
  Grid1D<double> g_off = g;
  EXPECT_NO_THROW(make_plan(shape_of(g_off), kSpec, off).execute(g_off));

  Options full = kRun;
  full.health_check = HealthCheck::kFull;
  EXPECT_THROW(make_plan(shape_of(g), kSpec, full).execute(g), NumericalError);

  // A clean grid passes the guard with the result untouched by the scan.
  Grid1D<double> clean(512, 1), witness(512, 1);
  clean.fill([](index x) { return noise<double>(2, x); });
  witness.fill([](index x) { return noise<double>(2, x); });
  make_plan(shape_of(clean), kSpec, full).execute(clean);
  make_plan(shape_of(witness), kSpec, off).execute(witness);
  EXPECT_EQ(max_abs_diff(clean, witness), 0.0);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation/timeout inside a plan: the per-step poll slices
// steps=1, which must be bit-identical to the unsliced run — asserted via
// the exact k-step prefix a mid-run cancel leaves behind.
// ---------------------------------------------------------------------------

TEST(ExecControlPlan, CancelBetweenStepsLeavesExactStepPrefix) {
  Grid1D<double> g(512, 1);
  g.fill([](index x) { return noise<double>(3, x); });

  // Checks land at dispatch, then before steps 2, 3, 4: the third check
  // aborts, so exactly 2 of the 4 steps ran.
  int checks = 0;
  ExecControl ctl;
  ctl.cancelled = [&checks] { return ++checks > 2; };

  WorkspacePool pool;
  auto ws = pool.checkout();
  const Plan plan = make_plan(shape_of(g), kSpec, kRun);  // steps = 4
  EXPECT_THROW(plan.execute(g, *ws, &ctl), CancelledError);

  Grid1D<double> two_steps(512, 1);
  two_steps.fill([](index x) { return noise<double>(3, x); });
  make_plan(shape_of(two_steps), kSpec,
            opts(Method::kTranspose, Tiling::kNone, 2))
      .execute(two_steps);
  EXPECT_EQ(max_abs_diff(two_steps, g), 0.0)
      << "per-step slicing diverged from the unsliced plan";

  // An already-expired deadline aborts at dispatch: zero steps, input intact.
  Grid1D<double> untouched(512, 1), original(512, 1);
  untouched.fill([](index x) { return noise<double>(4, x); });
  original.fill([](index x) { return noise<double>(4, x); });
  ExecControl late;
  late.deadline = ExecControl::Clock::now() - std::chrono::milliseconds(1);
  auto ws2 = pool.checkout();
  EXPECT_THROW(plan.execute(untouched, *ws2, &late), TimeoutError);
  EXPECT_EQ(max_abs_diff(untouched, original), 0.0);
}

// ---------------------------------------------------------------------------
// Injection through the Executor: each fault point surfaces with the right
// type, never strands a future, never leaks a workspace.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, WorkspaceAllocFaultFailsCleanlyThroughExecutor) {
  Executor ex({.gangs = 1, .threads_per_gang = 1});
  FaultInjector::instance().arm("workspace.alloc", {.once = true});

  Grid1D<double> g(512, 1);
  g.fill([](index x) { return noise<double>(5, x); });
  EXPECT_THROW(ex.submit(g, kSpec, kRun).get(), TransientError);

  // The lease never existed: nothing in flight, nothing leaked.
  ExecutorStats s = ex.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.workspaces.in_flight, 0u);

  // The same request succeeds now (the point disarmed itself) and matches
  // the serial plan exactly — the fault fired before any mutation.
  g.fill([](index x) { return noise<double>(5, x); });
  EXPECT_NO_THROW(ex.submit(g, kSpec, kRun).get());
  EXPECT_EQ(max_abs_diff(serial_expected(5, kRun, 1), g), 0.0);
  EXPECT_EQ(ex.stats().workspaces.in_flight, 0u);
}

TEST_F(FaultTest, DispatchFaultNeverStrandsTheFuture) {
  // Regression for the promise-fulfillment audit: a throw at the very top
  // of the task body (before any plan/workspace state exists) must raise
  // into the future — a stranded future here deadlocks this .get().
  Executor ex({.gangs = 1, .threads_per_gang = 1});
  FaultInjector::instance().arm("executor.dispatch", {.once = true});

  Grid1D<double> g(512, 1);
  g.fill([](index x) { return noise<double>(6, x); });
  std::future<void> fut = ex.submit(g, kSpec, kRun);
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "the injected dispatch fault stranded the future";
  EXPECT_THROW(fut.get(), TransientError);
  const ExecutorStats s = ex.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 0u);
}

TEST_F(FaultTest, PlanBuildFaultReleasesTheSingleFlightClaim) {
  Executor ex({.gangs = 1, .threads_per_gang = 1});
  FaultInjector::instance().arm("plan.build", {.once = true});

  Grid1D<double> g(512, 1);
  g.fill([](index x) { return noise<double>(7, x); });
  EXPECT_THROW(ex.submit(g, kSpec, kRun).get(), TransientError);

  // The failed build released the entry's claim: the retry builds the plan
  // (a second MISS, not a hit on a half-made entry) and succeeds.
  g.fill([](index x) { return noise<double>(7, x); });
  EXPECT_NO_THROW(ex.submit(g, kSpec, kRun).get());
  EXPECT_EQ(max_abs_diff(serial_expected(7, kRun, 1), g), 0.0);
  const ExecutorStats s = ex.stats();
  EXPECT_EQ(s.plan_cache.misses, 2u);
  EXPECT_EQ(s.plan_cache.hits, 0u);
}

TEST_F(FaultTest, KernelFaultDegradesIsaOneRungAndRecovers) {
  Executor ex({.gangs = 1, .threads_per_gang = 1});
  FaultInjector::instance().arm("kernel.sweep", {.count = 1});

  Grid1D<double> g(512, 1);
  g.fill([](index x) { return noise<double>(8, x); });
  std::future<void> fut = ex.submit(g, kSpec, kRun);

  if (best_isa() == Isa::kScalar) {
    // Nothing below scalar: the fault surfaces — but typed as a transient,
    // so a scheduler-level retry could still absorb it.
    EXPECT_THROW(fut.get(), KernelFault);
    EXPECT_EQ(ex.stats().plan_cache.degraded_plans, 0u);
  } else {
    // The faulted sweep fired pre-mutation; the executor degraded the plan
    // one ISA rung and re-ran on the preserved input.
    EXPECT_NO_THROW(fut.get());
    const ExecutorStats s = ex.stats();
    EXPECT_EQ(s.plan_cache.degraded_plans, 1u);
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.failed, 0u);
    // The degraded rung computes the same stencil; allow for a different
    // (but still correct) instruction schedule.
    EXPECT_LE(max_abs_diff(serial_expected(8, kRun, 1), g), 1e-12);

    // The pin sticks: the same configuration keeps serving (at the lower
    // rung) without re-faulting.
    g.fill([](index x) { return noise<double>(8, x); });
    EXPECT_NO_THROW(ex.submit(g, kSpec, kRun).get());
    EXPECT_EQ(ex.stats().plan_cache.degraded_plans, 1u);
  }
  EXPECT_EQ(ex.stats().workspaces.in_flight, 0u);
}

// ---------------------------------------------------------------------------
// Injection through ShardedPlan: an exchange fault retries idempotently; a
// sweep fault is contained to its shard via a locally rebuilt, degraded
// plan.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ShardExchangeFaultRetriesIdempotently) {
  const Options o = opts(Method::kTranspose, Tiling::kNone, 5);
  const auto s = make_2d5p<double>();
  const Shape shape = shape2d(256, 13);

  Grid2D<double> mono(256, 13, 1), init(256, 13, 1);
  mono.fill([](index x, index y) { return noise<double>(x, y); });
  init.fill([](index x, index y) { return noise<double>(x, y); });
  make_plan(shape, s, o).execute(mono);

  FaultInjector::instance().arm("shard.exchange", {.once = true});
  ShardedGrid<Grid2D<double>> sg(init, ShardSpec{.count = 2});
  sg.scatter(init);
  const auto plan = make_sharded_plan(shape, s, ShardSpec{.count = 2}, o);
  EXPECT_NO_THROW(plan.execute(sg));
  EXPECT_EQ(FaultInjector::instance().stats("shard.exchange").fires, 1u);

  // The exchange is idempotent: the in-place retry reproduces the
  // monolithic result bit-for-bit.
  Grid2D<double> out = init;
  sg.gather(out);
  EXPECT_EQ(max_abs_diff(mono, out), 0.0);
}

TEST_F(FaultTest, ShardSweepFaultIsContainedToItsShard) {
  const Options o = opts(Method::kTranspose, Tiling::kNone, 5);
  const auto s = make_2d5p<double>();
  const Shape shape = shape2d(256, 13);

  Grid2D<double> mono(256, 13, 1), init(256, 13, 1);
  mono.fill([](index x, index y) { return noise<double>(x, y); });
  init.fill([](index x, index y) { return noise<double>(x, y); });
  make_plan(shape, s, o).execute(mono);

  FaultInjector::instance().arm("kernel.sweep", {.count = 1});
  ShardedGrid<Grid2D<double>> sg(init, ShardSpec{.count = 2});
  sg.scatter(init);
  const auto plan = make_sharded_plan(shape, s, ShardSpec{.count = 2}, o);

  if (best_isa() == Isa::kScalar) {
    // No rung left below the faulted shard's plan: the wave driver drains
    // the other shards, then rethrows the shard's fault.
    EXPECT_THROW(plan.execute(sg), KernelFault);
  } else {
    // One shard's sweep faulted; it re-ran on a locally rebuilt plan one
    // ISA rung down, before the wave barrier — the other shard never saw
    // it.
    EXPECT_NO_THROW(plan.execute(sg));
    Grid2D<double> out = init;
    sg.gather(out);
    EXPECT_LE(max_abs_diff(mono, out), 1e-12)
        << "degraded-shard recovery diverged";
  }
  EXPECT_EQ(FaultInjector::instance().stats("kernel.sweep").fires, 1u);
}

// ---------------------------------------------------------------------------
// Scheduler-level robustness: retries absorb transient faults bit-exactly,
// budgets bound the attempts, timeout/cancel surface with exact counters.
// ---------------------------------------------------------------------------

// The headline chaos run (mirrors the PR's acceptance gate): 200 mixed
// requests with 10% transient-fault probability at BOTH workspace.alloc and
// executor.dispatch. Every request must complete bit-identical to a
// fault-free run with zero exhausted retries and no unfulfilled future.
TEST_F(FaultTest, RetryAbsorbsInjectedTransientsBitIdentically) {
  FaultInjector& fi = FaultInjector::instance();
  fi.seed(20220530);  // deterministic schedule for this pass order
  fi.arm("workspace.alloc", {.probability = 0.1});
  fi.arm("executor.dispatch", {.probability = 0.1});

  // noise<T> is periodic in salt with period 101, so salts must stay below
  // 101 to keep grid contents pairwise distinct: the tail 100 submissions
  // repeat salts 0..99 and are the ONLY coalesce candidates.
  constexpr int kN = 200;
  constexpr int kDistinct = 100;
  std::vector<Req> reqs;
  {
    Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1},
                     .retry_budget = 8,
                     .retry_backoff_ms = 0.05,
                     .retry_backoff_max_ms = 0.5});
    sched.pause();  // open coalescing windows for the duplicate salts
    for (int i = 0; i < kN; ++i) {
      const index salt = i < kDistinct ? i : i - kDistinct;
      reqs.emplace_back(salt);
      Scheduler::Request r{Scheduler::GridRef{reqs.back().grid.get()}, kSpec,
                           kRun,
                           i % 2 ? ServiceClass::kBatch
                                 : ServiceClass::kInteractive,
                           0.0, i % 3 ? "a" : "b"};
      reqs.back().fut = sched.submit(std::move(r));
    }
    sched.resume();

    for (auto& r : reqs) {
      ASSERT_EQ(r.fut.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "a future went unfulfilled under fault injection";
      EXPECT_NO_THROW(r.fut.get());
    }
    sched.wait_idle();

    const SchedulerStats st = sched.stats();
    EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kN));
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kN));
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.retry_exhausted, 0u);
    EXPECT_EQ(st.coalesced, static_cast<std::uint64_t>(kN - kDistinct));
    EXPECT_EQ(st.executor.workspaces.in_flight, 0u);
    // ~10% per point over hundreds of passes: statistically impossible to
    // see zero faults; the exact count is schedule-dependent.
    EXPECT_GT(st.retries, 0u);
  }  // scheduler drained and destroyed

  fi.reset();  // the serial baselines below must run fault-free
  for (int i = 0; i < kN; ++i) {
    const index salt = i < kDistinct ? i : i - kDistinct;
    const Grid1D<double> expected = serial_expected(salt, kRun, 1);
    EXPECT_EQ(max_abs_diff(expected, *reqs[static_cast<std::size_t>(i)].grid),
              0.0)
        << "request " << i << " not bit-identical to the fault-free run";
  }
}

TEST_F(FaultTest, RetryBudgetBoundsAttemptsThenSurfacesTransient) {
  FaultInjector::instance().arm("executor.dispatch",
                                {.count = 1000000});  // every pass faults
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1},
                   .retry_budget = 2,
                   .retry_backoff_ms = 0.05,
                   .retry_backoff_max_ms = 0.2});
  Req r(9);
  r.fut = sched.submit(*r.grid, kSpec, kRun);
  EXPECT_THROW(r.fut.get(), TransientError);
  sched.wait_idle();

  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.retries, 2u);          // budget spent exactly
  EXPECT_EQ(s.retry_exhausted, 1u);  // and the transient still surfaced
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.cancelled, 0u);
  EXPECT_EQ(s.timed_out, 0u);
  // 3 attempts = 3 passes through the dispatch point.
  EXPECT_EQ(FaultInjector::instance().stats("executor.dispatch").passes, 3u);
}

TEST(SchedulerRobustness, ImpossibleTimeoutFailsWithTimeoutError) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1}});
  sched.pause();
  Req r(10);
  Scheduler::Request req{Scheduler::GridRef{r.grid.get()}, kSpec, kRun,
                         ServiceClass::kInteractive, 0.0, ""};
  req.timeout_ms = 0.001;  // gone before dispatch can happen
  r.fut = sched.submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sched.resume();

  EXPECT_THROW(r.fut.get(), TimeoutError);
  sched.wait_idle();
  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.timed_out, 1u);  // subset of failed
  EXPECT_EQ(s.cancelled, 0u);
  EXPECT_EQ(s.completed, 0u);
  // The pruned request consumed no execution: its input grid is untouched.
  Grid1D<double> original(512, 1);
  original.fill([](index x) { return noise<double>(10, x); });
  EXPECT_EQ(max_abs_diff(original, *r.grid), 0.0);
}

TEST(SchedulerRobustness, CancelPrunesOneFollowerNotTheGroup) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1}});
  sched.pause();

  // Leader + two followers coalesce (same salt); one follower cancels
  // before dispatch. The group still executes for the live members — one
  // waiter's cancel must not take the shared result from the rest.
  Req leader(11), follower(11), quitter(11);
  leader.fut = sched.submit(*leader.grid, kSpec, kRun);
  follower.fut = sched.submit(*follower.grid, kSpec, kRun);
  CancelToken tok = CancelToken::make();
  Scheduler::Request req{Scheduler::GridRef{quitter.grid.get()}, kSpec, kRun,
                         ServiceClass::kBatch, 0.0, ""};
  req.cancel = tok;
  quitter.fut = sched.submit(std::move(req));
  tok.cancel();
  sched.resume();

  EXPECT_NO_THROW(leader.fut.get());
  EXPECT_NO_THROW(follower.fut.get());
  EXPECT_THROW(quitter.fut.get(), CancelledError);
  sched.wait_idle();

  const Grid1D<double> expected = serial_expected(11, kRun, 1);
  EXPECT_EQ(max_abs_diff(expected, *leader.grid), 0.0);
  EXPECT_EQ(max_abs_diff(expected, *follower.grid), 0.0);

  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.coalesced, 2u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.timed_out, 0u);
  // One group, one executor task, one execution.
  EXPECT_EQ(s.executor.submitted, 1u);
}

TEST(SchedulerRobustness, WholeGroupCancelledSkipsExecutionEntirely) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1}});
  sched.pause();
  Req r(12);
  CancelToken tok = CancelToken::make();
  Scheduler::Request req{Scheduler::GridRef{r.grid.get()}, kSpec, kRun,
                         ServiceClass::kBatch, 0.0, ""};
  req.cancel = tok;
  r.fut = sched.submit(std::move(req));
  tok.cancel();
  sched.resume();

  EXPECT_THROW(r.fut.get(), CancelledError);
  sched.wait_idle();
  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.failed, 1u);
  // No plan was built, no workspace checked out, the grid is untouched.
  EXPECT_EQ(s.executor.plan_cache.misses, 0u);
  EXPECT_EQ(s.executor.workspaces.in_flight, 0u);
  Grid1D<double> original(512, 1);
  original.fill([](index x) { return noise<double>(12, x); });
  EXPECT_EQ(max_abs_diff(original, *r.grid), 0.0);
}

// ---------------------------------------------------------------------------
// Racing submitters against live probability faults: whatever the
// interleaving, the counters must add up and nothing may leak. (The TSan
// and ASan jobs run this suite; the chaos CI job runs it with
// TSV_FAULT_INJECTION=1 as well.)
// ---------------------------------------------------------------------------

TEST_F(FaultTest, RacingSubmittersKeepCountersConsistentUnderFaults) {
  FaultInjector& fi = FaultInjector::instance();
  fi.seed(777);
  fi.arm("workspace.alloc", {.probability = 0.15});

  Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1},
                   .retry_budget = 10,
                   .retry_backoff_ms = 0.05,
                   .retry_backoff_max_ms = 0.5});
  constexpr int kThreads = 4, kPerThread = 10;
  std::vector<Req> reqs;
  for (int i = 0; i < kThreads * kPerThread; ++i) reqs.emplace_back(i);

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      for (int i = t; i < kThreads * kPerThread; i += kThreads)
        reqs[static_cast<std::size_t>(i)].fut = sched.submit(
            *reqs[static_cast<std::size_t>(i)].grid, kSpec, kRun,
            i % 2 ? ServiceClass::kBatch : ServiceClass::kInteractive,
            /*deadline_ms=*/0.0, i % 3 ? "x" : "y");
    });
  for (auto& t : submitters) t.join();
  for (auto& r : reqs) EXPECT_NO_THROW(r.fut.get());
  sched.wait_idle();

  fi.reset();  // fault-free serial baselines
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    const Grid1D<double> expected = serial_expected(i, kRun, 1);
    EXPECT_EQ(max_abs_diff(expected, *reqs[static_cast<std::size_t>(i)].grid),
              0.0);
  }
  const SchedulerStats s = sched.stats();
  const auto n = static_cast<std::uint64_t>(kThreads * kPerThread);
  EXPECT_EQ(s.submitted, n);
  EXPECT_EQ(s.admitted, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.retry_exhausted, 0u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.inflight, 0u);
  EXPECT_EQ(s.executor.workspaces.in_flight, 0u);
}

// ---------------------------------------------------------------------------
// Chaos-stats property: under seed-replayed injection, the observability
// snapshot's ledgers (core/metrics.hpp) must equal an INDEPENDENTLY
// computed ground truth — outcomes tallied from the futures themselves,
// and the cross-ledger conservation law tying the injector's pass/fire
// counts to the scheduler's retry ledger. Two runs under the same seed
// must produce identical ledgers (the injection schedule replays exactly).
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ChaosStatsSnapshotMatchesGroundTruthAndReplays) {
  struct Ledger {
    std::uint64_t completed = 0, cancelled = 0, retries = 0;
    std::uint64_t passes = 0, fires = 0;
    std::uint64_t traces_c = 0, traces_x = 0;

    bool operator==(const Ledger&) const = default;
  };

  constexpr int kN = 30;
  // Fault-free serial baselines, computed BEFORE anything is armed: the
  // baseline executions must not contribute passes to the injector ledger.
  std::vector<Grid1D<double>> expected;
  for (int i = 0; i < kN; ++i) expected.push_back(serial_expected(i, kRun, 1));

  const auto run_once = [&](std::uint64_t seed) {
    FaultInjector& fi = FaultInjector::instance();
    fi.seed(seed);  // rewinds the streams AND clears per-point stats
    // One armed site keeps the conservation law exact: every execution
    // attempt passes workspace.alloc exactly once, every fire costs one
    // retry (the budget is deep enough that exhaustion is ~0.2^9 unlikely).
    fi.arm("workspace.alloc", {.probability = 0.2});

    Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1},
                     .retry_budget = 8,
                     .retry_backoff_ms = 0.05,
                     .retry_backoff_max_ms = 0.2,
                     .trace_capacity = kN});
    MetricsRegistry reg;
    reg.attach(&sched);

    // Independent ground truth: tally what the FUTURES report. Sequential
    // submit -> get keeps the injector's pass order deterministic (one
    // gang, one request in flight), so the schedule replays under a seed.
    std::uint64_t got_completed = 0, got_cancelled = 0;
    for (int i = 0; i < kN; ++i) {
      Req r(i);
      Scheduler::Request req{Scheduler::GridRef{r.grid.get()}, kSpec, kRun,
                             i % 2 ? ServiceClass::kBatch
                                   : ServiceClass::kInteractive};
      const bool doomed = i % 5 == 4;  // every 5th cancelled pre-submit
      if (doomed) {
        CancelToken tok = CancelToken::make();
        tok.cancel();
        req.cancel = tok;
      }
      std::future<Scheduler::Result> fut = sched.submit(std::move(req));
      try {
        fut.get();
        ++got_completed;
      } catch (const CancelledError&) {
        ++got_cancelled;
      }
      if (!doomed) {
        // Every live request must match the fault-free serial baseline
        // bit-for-bit (retried attempts replay on pristine input).
        EXPECT_EQ(
            max_abs_diff(expected[static_cast<std::size_t>(i)], *r.grid), 0.0)
            << "request " << i << " diverged under injected faults";
      }
    }
    sched.wait_idle();
    sched.executor().wait_idle();  // idle invariants span both layers

    // Snapshot ledgers vs the ground truth.
    const MetricsSnapshot m = reg.snapshot();
    for (const std::string& v : metrics_check_invariants(m, /*idle=*/true))
      ADD_FAILURE() << "seed " << seed << ": " << v;
    EXPECT_EQ(m.scheduler.submitted, static_cast<std::uint64_t>(kN));
    EXPECT_EQ(m.scheduler.completed, got_completed);
    EXPECT_EQ(m.scheduler.failed, got_cancelled);
    EXPECT_EQ(m.scheduler.cancelled, got_cancelled);
    EXPECT_EQ(m.scheduler.timed_out, 0u);
    EXPECT_EQ(m.scheduler.retry_exhausted, 0u);
    EXPECT_EQ(got_completed + got_cancelled, static_cast<std::uint64_t>(kN));

    // Cross-ledger conservation: the injector's site counters and the
    // scheduler's retry ledger describe the SAME events.
    //   passes == executions == completed + retries   (cancelled: pruned,
    //   zero passes; no exhaustion, so every fire bought one retry)
    //   fires  == retries
    Ledger led;
    for (const FaultSiteStats& fs : m.faults)
      if (fs.site == "workspace.alloc") {
        led.passes = fs.stats.passes;
        led.fires = fs.stats.fires;
      }
    EXPECT_EQ(led.passes, m.scheduler.completed + m.scheduler.retries);
    EXPECT_EQ(led.fires, m.scheduler.retries);

    // The trace ring saw every dispatched group; its outcome tallies are a
    // third independent ledger.
    EXPECT_EQ(m.scheduler.traces.size(), static_cast<std::size_t>(kN));
    for (const TraceSpan& t : m.scheduler.traces) {
      if (t.outcome == 'C') ++led.traces_c;
      if (t.outcome == 'X') ++led.traces_x;
    }
    EXPECT_EQ(led.traces_c, got_completed);
    EXPECT_EQ(led.traces_x, got_cancelled);

    led.completed = m.scheduler.completed;
    led.cancelled = m.scheduler.cancelled;
    led.retries = m.scheduler.retries;
    return led;
  };

  const Ledger a = run_once(0x5eed);
  EXPECT_GT(a.fires, 0u) << "p=0.2 over dozens of passes must fire";
  const Ledger b = run_once(0x5eed);
  EXPECT_TRUE(a == b) << "same seed must replay the same ledgers";
  const Ledger c = run_once(20220530);
  EXPECT_EQ(c.completed, a.completed);  // outcomes are seed-independent...
  EXPECT_EQ(c.cancelled, a.cancelled);
}

}  // namespace
}  // namespace tsv
