// Concurrency suite for the batched executor (core/executor.hpp).
//
// The contract under test: the executor changes SCHEDULING, never numerics.
// N threads submitting M requests over mixed shapes/dtypes/boundaries must
// produce results bit-identical to running the same (grid, spec, options)
// serially through Plan::execute; the plan cache must deduplicate
// construction (hit/miss accounting is deterministic because insertion is
// atomic under the shard lock); the workspace pool must never hand one
// instance to two in-flight requests; and plan-time failures must surface
// as ConfigError from future.get(), never crash a worker.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tsv/tsv.hpp"

namespace tsv {
namespace {

// Deterministic per-(case, copy) noise so a serially computed baseline and
// an executor-computed grid start from identical bits.
template <typename T>
T noise(index salt, index lin) {
  return static_cast<T>(0.25 + 1e-3 * static_cast<double>((salt * 31 + lin * 7) % 101));
}

template <typename G>
G make_grid(const Shape& s) {
  using T = detail::grid_value_t<G>;
  if constexpr (detail::grid_rank<G> == 1)
    return G(s.nx, s.halo);
  else if constexpr (detail::grid_rank<G> == 2)
    return G(s.nx, s.ny, s.halo);
  else
    return G(s.nx, s.ny, s.nz, s.halo);
}

template <typename G>
void fill_noise(G& g, index salt) {
  using T = detail::grid_value_t<G>;
  if constexpr (detail::grid_rank<G> == 1)
    g.fill([&](index x) { return noise<T>(salt, x); });
  else if constexpr (detail::grid_rank<G> == 2)
    g.fill([&](index x, index y) { return noise<T>(salt, x + 131 * y); });
  else
    g.fill([&](index x, index y, index z) {
      return noise<T>(salt, x + 131 * y + 1031 * z);
    });
}

/// Mirrors Executor::submit's option normalization so a serial baseline
/// resolves to the exact plan the executor runs.
template <typename G>
Options normalized(Options o, int threads_per_gang) {
  o.dtype = dtype_of<detail::grid_value_t<G>>();
  o.max_threads = o.max_threads > 0 ? std::min(o.max_threads, threads_per_gang)
                                    : threads_per_gang;
  return o;
}

// One stress case: a (stencil spec, shape, options) configuration plus
// `copies` independent grids submitted through the executor, verified
// bitwise against one serially executed baseline.
template <typename G>
class StressCase {
 public:
  StressCase(StencilSpec spec, Shape shape, Options o, int copies, index salt)
      : spec_(std::move(spec)), shape_(shape), o_(o), salt_(salt) {
    for (int c = 0; c < copies; ++c) {
      grids_.push_back(std::make_unique<G>(make_grid<G>(shape_)));
      fill_noise(*grids_.back(), salt_);
    }
  }

  /// One submit thunk per grid copy (called concurrently from N threads).
  void collect(std::vector<std::function<std::future<void>(Executor&)>>& out) {
    for (auto& g : grids_)
      out.push_back([this, grid = g.get()](Executor& ex) {
        return ex.submit(*grid, spec_, o_);
      });
  }

  void verify(int threads_per_gang) {
    G expected = make_grid<G>(shape_);
    fill_noise(expected, salt_);
    const Plan serial =
        make_plan(shape_, spec_, normalized<G>(o_, threads_per_gang));
    serial.execute(expected);
    for (std::size_t c = 0; c < grids_.size(); ++c)
      EXPECT_EQ(max_abs_diff(expected, *grids_[c]),
                detail::grid_value_t<G>(0))
          << "copy " << c << " diverged from serial Plan::execute";
  }

 private:
  StencilSpec spec_;
  Shape shape_;
  Options o_;
  index salt_;
  std::vector<std::unique_ptr<G>> grids_;
};

Options opts(Method m, Tiling t, index steps, BoundarySpec bc = {}) {
  Options o;
  o.method = m;
  o.tiling = t;
  o.steps = steps;
  o.boundary = bc;
  return o;
}

// ---------------------------------------------------------------------------
// The headline stress: 4 submitter threads x mixed shapes/dtypes/boundaries
// racing through one executor, every result bit-identical to serial.
// ---------------------------------------------------------------------------

TEST(Executor, StressMixedRequestsBitIdenticalToSerial) {
  Executor ex({.gangs = 4, .threads_per_gang = 1});
  constexpr int kCopies = 4;

  StressCase<Grid1D<double>> c1(
      StencilSpec{.kind = StencilKind::k1d3p, .coeffs = {0.31}}, shape1d(512),
      opts(Method::kTranspose, Tiling::kNone, 5,
           BoundarySpec::uniform(Boundary::kZero)),
      kCopies, 11);
  StressCase<Grid1D<float>> c2(
      StencilSpec{.kind = StencilKind::k1d3p, .coeffs = {0.3}}, shape1d(385),
      opts(Method::kMultiLoad, Tiling::kNone, 4,
           BoundarySpec::uniform(Boundary::kPeriodic)),
      kCopies, 23);
  StressCase<Grid2D<double>> c3(
      StencilSpec{.kind = StencilKind::k2d5p, .coeffs = {0.5, 0.12, 0.13}},
      shape2d(256, 24),
      [] {
        Options o = opts(Method::kTranspose, Tiling::kTessellate, 4,
                         {Boundary::kZero, Boundary::kNeumann, Boundary::kDirichlet});
        o.bx = 128;
        return o;
      }(),
      kCopies, 37);
  StressCase<Grid2D<float>> c4(
      StencilSpec{.kind = StencilKind::k2d9p, .coeffs = {0.2, 0.1, 0.05}},
      shape2d(130, 17), opts(Method::kAutoVec, Tiling::kNone, 3), kCopies, 41);
  StressCase<Grid3D<double>> c5(
      StencilSpec{.kind = StencilKind::k3d7p, .coeffs = {0.4, 0.1, 0.1, 0.09}},
      shape3d(64, 8, 6),
      opts(Method::kAutoVec, Tiling::kTessellate, 2,
           BoundarySpec::uniform(Boundary::kPeriodic)),
      kCopies, 53);
  StressCase<Grid1D<double>> c6(
      StencilSpec{.kind = StencilKind::k1d3p}, shape1d(512),
      opts(Method::kDlt, Tiling::kSplit, 6), kCopies, 67);

  std::vector<std::function<std::future<void>(Executor&)>> jobs;
  c1.collect(jobs);
  c2.collect(jobs);
  c3.collect(jobs);
  c4.collect(jobs);
  c5.collect(jobs);
  c6.collect(jobs);

  // N submitter threads racing the submit path itself.
  constexpr int kSubmitters = 4;
  std::vector<std::future<void>> futures(jobs.size());
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&, t] {
      for (std::size_t i = t; i < jobs.size(); i += kSubmitters)
        futures[i] = jobs[i](ex);
    });
  for (auto& t : submitters) t.join();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());

  c1.verify(ex.threads_per_gang());
  c2.verify(ex.threads_per_gang());
  c3.verify(ex.threads_per_gang());
  c4.verify(ex.threads_per_gang());
  c5.verify(ex.threads_per_gang());
  c6.verify(ex.threads_per_gang());

  const ExecutorStats s = ex.stats();
  EXPECT_EQ(s.submitted, jobs.size());
  EXPECT_EQ(s.completed, jobs.size());
  EXPECT_EQ(s.failed, 0u);
  // 6 distinct configurations -> exactly 6 single-flighted builds.
  EXPECT_EQ(s.plan_cache.misses, 6u);
  EXPECT_EQ(s.plan_cache.hits, jobs.size() - 6u);
  // Exclusivity bound: a pool only creates when its free list is empty, so
  // per entry at most `gangs` workspaces can ever exist (that is the peak
  // concurrency), and nothing may still be checked out after the drain.
  EXPECT_EQ(s.workspaces.in_flight, 0u);
  EXPECT_LE(s.workspaces.created, 6u * static_cast<unsigned>(ex.gangs()));
  EXPECT_EQ(s.workspaces.created + s.workspaces.reused, s.submitted);
  // Per-gang accounting: every completed request is attributed to exactly
  // one gang, busy time accumulates, and pool utilization is a fraction.
  ASSERT_EQ(s.gangs.size(), static_cast<std::size_t>(ex.gangs()));
  std::uint64_t gang_tasks = 0;
  for (const GangStats& g : s.gangs) {
    gang_tasks += g.tasks;
    EXPECT_GE(g.busy_seconds, 0.0);
  }
  EXPECT_EQ(gang_tasks, s.completed);
  EXPECT_GT(s.uptime_seconds, 0.0);
  EXPECT_GE(utilization(s), 0.0);
  EXPECT_LE(utilization(s), 1.0);
}

// ---------------------------------------------------------------------------
// Per-gang busy-time counters: submit_task closures (the sharded plan's
// wave path) are attributed to the gang that ran them, busy time
// accumulates measurably, and a throwing closure counts as failed without
// losing its gang attribution.
// ---------------------------------------------------------------------------

TEST(Executor, GangBusyCountersTrackSubmittedTasks) {
  Executor ex({.gangs = 2, .threads_per_gang = 1});
  constexpr std::uint64_t kTasks = 8;
  std::vector<std::future<void>> futs;
  for (std::uint64_t i = 0; i < kTasks; ++i)
    futs.push_back(ex.submit_task(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); }));
  futs.push_back(ex.submit_task([] { throw std::runtime_error("boom"); }));
  for (std::uint64_t i = 0; i < kTasks; ++i)
    EXPECT_NO_THROW(futs[static_cast<std::size_t>(i)].get());
  EXPECT_THROW(futs.back().get(), std::runtime_error);
  ex.wait_idle();

  const ExecutorStats s = ex.stats();
  EXPECT_EQ(s.submitted, kTasks + 1);
  EXPECT_EQ(s.completed, kTasks);
  EXPECT_EQ(s.failed, 1u);
  ASSERT_EQ(s.gangs.size(), 2u);
  std::uint64_t tasks = 0;
  double busy = 0.0;
  for (const GangStats& g : s.gangs) {
    tasks += g.tasks;
    busy += g.busy_seconds;
  }
  EXPECT_EQ(tasks, kTasks + 1);  // the failed task still occupied a gang
  EXPECT_GE(busy, static_cast<double>(kTasks) * 0.002);
  EXPECT_GT(s.uptime_seconds, 0.0);
  EXPECT_GT(utilization(s), 0.0);
  EXPECT_LE(utilization(s), 1.0);
}

// ---------------------------------------------------------------------------
// Plan-cache accounting is deterministic: insertion happens exactly once
// under the shard lock, so M same-key submissions = 1 miss + M-1 hits.
// ---------------------------------------------------------------------------

TEST(Executor, PlanCacheAccounting) {
  Executor ex({.gangs = 2, .threads_per_gang = 1});
  const Shape shape = shape1d(256);
  const Options o = opts(Method::kTranspose, Tiling::kNone, 3);

  constexpr int kSame = 12;
  std::vector<std::unique_ptr<Grid1D<double>>> grids;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < kSame; ++i) {
    grids.push_back(std::make_unique<Grid1D<double>>(make_grid<Grid1D<double>>(shape)));
    fill_noise(*grids.back(), i);
    futs.push_back(ex.submit(*grids.back(), StencilKind::k1d3p, o));
  }
  for (auto& f : futs) f.get();
  ExecutorStats s = ex.stats();
  EXPECT_EQ(s.plan_cache.misses, 1u);
  EXPECT_EQ(s.plan_cache.hits, static_cast<std::uint64_t>(kSame - 1));
  EXPECT_EQ(s.plan_cache.entries, 1u);

  // A different configuration is a new entry, not a hit.
  Grid1D<double> other = make_grid<Grid1D<double>>(shape);
  fill_noise(other, 99);
  ex.submit(other, StencilKind::k1d3p,
            opts(Method::kReorg, Tiling::kNone, 3))
      .get();
  s = ex.stats();
  EXPECT_EQ(s.plan_cache.misses, 2u);
  EXPECT_EQ(s.plan_cache.entries, 2u);
}

// ---------------------------------------------------------------------------
// The cache is bounded: a service whose requests vary per-call fields
// (steps here) must not grow memory without bound. Idle entries are
// evicted and rebuilt on next use; entries held by in-flight requests are
// pinned.
// ---------------------------------------------------------------------------

TEST(Executor, PlanCacheBoundsIdleEntries) {
  PlanCache cache(8);  // tiny bound: every shard's share is 1
  const Shape shape = shape1d(256);
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  Options o = opts(Method::kTranspose, Tiling::kNone, 1);

  // Hold one entry like an in-flight request would: eviction must skip it.
  auto held = cache.get(shape, spec, o);
  const Plan* held_plan = &held->plan();

  for (index steps = 2; steps < 60; ++steps) {
    o.steps = steps;  // a new key every call — the unbounded-growth shape
    cache.get(shape, spec, o);
  }
  const PlanCacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  // Bound: at most ~1 idle entry per shard plus the pinned one.
  EXPECT_LE(s.entries, 2u * 8u + 1u);
  // The held entry survived (whether or not its map slot was evicted).
  EXPECT_EQ(&held->plan(), held_plan);
  Grid1D<double> g = make_grid<Grid1D<double>>(shape);
  fill_noise(g, 7);
  EXPECT_NO_THROW(held->plan().execute(g));
}

// ---------------------------------------------------------------------------
// Failures propagate as ConfigError through the future; the executor keeps
// serving afterwards.
// ---------------------------------------------------------------------------

TEST(Executor, FutureExceptionPropagatesConfigError) {
  Executor ex({.gangs = 2, .threads_per_gang = 1});

  // nx = 251 violates every compiled width's DLT rule (odd, W >= 2).
  Grid1D<double> bad(251, 1);
  fill_noise(bad, 1);
  auto f1 = ex.submit(bad, StencilKind::k1d3p,
                      opts(Method::kDlt, Tiling::kNone, 2));
  EXPECT_THROW(f1.get(), ConfigError);

  // Odd temporal block for the 2-step unroll&jam tiling.
  Grid1D<double> bad2(512, 1);
  fill_noise(bad2, 2);
  Options o = opts(Method::kTransposeUJ, Tiling::kTessellate, 4);
  o.bt = 3;
  auto f2 = ex.submit(bad2, StencilKind::k1d3p, o);
  EXPECT_THROW(f2.get(), ConfigError);

  // A deterministically-invalid key stays loud on every later submit.
  auto f3 = ex.submit(bad, StencilKind::k1d3p,
                      opts(Method::kDlt, Tiling::kNone, 2));
  EXPECT_THROW(f3.get(), ConfigError);

  // Invalid gang hints are rejected exactly like the serial path, not
  // silently sanitized to the gang cap.
  Grid1D<double> bad3(512, 1);
  fill_noise(bad3, 4);
  Options neg = opts(Method::kTranspose, Tiling::kNone, 2);
  neg.max_threads = -1;
  auto f4 = ex.submit(bad3, StencilKind::k1d3p, neg);
  EXPECT_THROW(f4.get(), ConfigError);

  // The workers survived: a valid request still completes.
  Grid1D<double> good(512, 1);
  fill_noise(good, 3);
  EXPECT_NO_THROW(
      ex.submit(good, StencilKind::k1d3p, opts(Method::kTranspose, Tiling::kNone, 2))
          .get());
  const ExecutorStats s = ex.stats();
  EXPECT_EQ(s.failed, 4u);
  EXPECT_EQ(s.completed, 1u);
}

// ---------------------------------------------------------------------------
// Gang hints: an explicit thread request is clamped to the gang size, so
// one request can never fork a machine-wide team.
// ---------------------------------------------------------------------------

TEST(Executor, GangCapClampsThreads) {
  Executor ex({.gangs = 2, .threads_per_gang = 2});

  // An executed tiled request whose team resolves from the runtime default
  // (clamped to the gang): under the TSan CI job OMP_NUM_THREADS=1 keeps
  // this single-threaded — libgomp must not spawn there (see ci.yml) —
  // while native runs exercise a real gang team.
  Grid2D<double> g = make_grid<Grid2D<double>>(shape2d(256, 16));
  fill_noise(g, 5);
  Options o = opts(Method::kAutoVec, Tiling::kTessellate, 2);
  ex.submit(g, StencilKind::k2d5p, o).get();

  // The clamp itself, checked at resolve time with steps = 0: execute
  // returns before any parallel region, so asserting "8 requested threads
  // resolve to the gang cap of 2" forks no OpenMP team under any runner.
  Grid2D<double> g2 = make_grid<Grid2D<double>>(shape2d(256, 16));
  fill_noise(g2, 6);
  Options wide = opts(Method::kAutoVec, Tiling::kTessellate, 0);
  wide.threads = 8;  // wants the whole machine
  ex.submit(g2, StencilKind::k2d5p, wide).get();

  // Probe the cache under the executor's own normalization: same key, and
  // the resolved team must be the gang cap, not 8.
  const Options probe = normalized<Grid2D<double>>(wide, ex.threads_per_gang());
  auto entry = ex.plan_cache().get(shape2d(256, 16),
                                   StencilSpec{.kind = StencilKind::k2d5p}, probe);
  EXPECT_EQ(entry->plan().config().threads, 2);
  EXPECT_LE(entry->plan().config().threads, ex.threads_per_gang());
  EXPECT_GE(ex.stats().plan_cache.hits, 1u);  // the probe hit, not rebuilt
}

// ---------------------------------------------------------------------------
// Destruction drains: every submitted future is satisfied, never abandoned.
// ---------------------------------------------------------------------------

TEST(Executor, DestructorDrainsQueue) {
  constexpr int kJobs = 16;
  std::vector<std::unique_ptr<Grid1D<double>>> grids;
  std::vector<std::future<void>> futs;
  {
    Executor ex({.gangs = 2, .threads_per_gang = 1});
    for (int i = 0; i < kJobs; ++i) {
      grids.push_back(std::make_unique<Grid1D<double>>(512, 1));
      fill_noise(*grids.back(), i);
      futs.push_back(ex.submit(*grids.back(), StencilKind::k1d3p,
                               opts(Method::kTranspose, Tiling::kNone, 4)));
    }
  }  // destructor runs the whole queue before joining
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_NO_THROW(f.get());
  }
}

// wait_idle is the whole-batch barrier.
TEST(Executor, WaitIdleDrains) {
  Executor ex({.gangs = 2, .threads_per_gang = 1});
  std::vector<std::unique_ptr<Grid1D<double>>> grids;
  for (int i = 0; i < 8; ++i) {
    grids.push_back(std::make_unique<Grid1D<double>>(512, 1));
    fill_noise(*grids.back(), i);
    ex.submit(*grids.back(), StencilKind::k1d3p,
              opts(Method::kTranspose, Tiling::kNone, 3));
  }
  ex.wait_idle();
  const ExecutorStats s = ex.stats();
  EXPECT_EQ(s.completed + s.failed, s.submitted);
  EXPECT_EQ(s.workspaces.in_flight, 0u);
}

}  // namespace
}  // namespace tsv
