// Registry-consistency suite: every (method, tiling, rank, isa) combination
// the registry claims to support must plan and execute correctly — agreeing
// with the scalar reference — and every combination it does not claim must
// fail with a structured ConfigError at plan time, never from inside a
// kernel. Also covers the name <-> enum round-trips used by CLI parsing.
#include <gtest/gtest.h>

#include <cmath>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

constexpr double kTol = 1e-11;

double f1(index x) { return std::sin(0.041 * x) + 0.002 * x; }
double f2(index x, index y) { return std::sin(0.041 * x - 0.07 * y); }
double f3(index x, index y, index z) {
  return std::sin(0.041 * x - 0.07 * y + 0.03 * z);
}

// Conforming extents: nx is a multiple of 64 = W^2 for the widest kernels,
// so every layout rule accepts the shape for every compiled width.
constexpr index kNx = 128, kNy = 6, kNz = 4, kSteps = 4;

Options combo_options(Method m, Tiling t, Isa isa) {
  Options o;
  o.method = m;
  o.tiling = t;
  o.isa = isa;
  o.steps = kSteps;
  // Blocks stay 0: the plan must resolve sane defaults for tiled runs.
  return o;
}

std::string combo_label(Method m, Tiling t, int rank, Isa isa) {
  std::string s = method_name(m);
  s += "+";
  s += tiling_name(t);
  s += " rank=" + std::to_string(rank) + " isa=";
  s += isa_name(isa);
  return s;
}

// Plans and executes one claimed combination at the given rank and checks
// agreement with the scalar reference.
void expect_combo_matches(Method m, Tiling t, int rank, Isa isa) {
  const Options o = combo_options(m, t, isa);
  const std::string label = combo_label(m, t, rank, isa);
  switch (rank) {
    case 1: {
      const auto s = make_1d3p(0.3);
      Grid1D<double> ref(kNx, 1), g(kNx, 1);
      ref.fill(f1);
      g.fill(f1);
      reference_run(ref, s, kSteps);
      auto plan = make_plan(shape1d(kNx), s, o);
      plan.execute(g);
      EXPECT_LE(max_abs_diff(ref, g), kTol) << label;
      break;
    }
    case 2: {
      const auto s = make_2d5p(0.5, 0.12, 0.13);
      Grid2D<double> ref(kNx, kNy, 1), g(kNx, kNy, 1);
      ref.fill(f2);
      g.fill(f2);
      reference_run(ref, s, kSteps);
      auto plan = make_plan(shape2d(kNx, kNy), s, o);
      plan.execute(g);
      EXPECT_LE(max_abs_diff(ref, g), kTol) << label;
      break;
    }
    default: {
      const auto s = make_3d7p();
      Grid3D<double> ref(kNx, kNy, kNz, 1), g(kNx, kNy, kNz, 1);
      ref.fill(f3);
      g.fill(f3);
      reference_run(ref, s, kSteps);
      auto plan = make_plan(shape3d(kNx, kNy, kNz), s, o);
      plan.execute(g);
      EXPECT_LE(max_abs_diff(ref, g), kTol) << label;
      break;
    }
  }
}

// make_plan must fail with ConfigError exactly when the registry says the
// combination is unsupported.
void expect_combo_rejected_at_plan_time(Method m, Tiling t, int rank,
                                        Isa isa) {
  const Options o = combo_options(m, t, isa);
  const std::string label = combo_label(m, t, rank, isa);
  switch (rank) {
    case 1:
      EXPECT_THROW(make_plan(shape1d(kNx), make_1d3p(), o), ConfigError)
          << label;
      break;
    case 2:
      EXPECT_THROW(make_plan(shape2d(kNx, kNy), make_2d5p(), o), ConfigError)
          << label;
      break;
    default:
      EXPECT_THROW(make_plan(shape3d(kNx, kNy, kNz), make_3d7p(), o),
                   ConfigError)
          << label;
      break;
  }
}

TEST(Registry, EveryClaimedComboExecutesAndMatchesReference) {
  int executed = 0;
  for (Method m : all_methods())
    for (Tiling t : all_tilings())
      for (int rank = 1; rank <= 3; ++rank)
        for (Isa isa : all_isas()) {
          if (supports(m, t, rank, isa)) {
            expect_combo_matches(m, t, rank, isa);
            ++executed;
          } else {
            expect_combo_rejected_at_plan_time(m, t, rank, isa);
          }
        }
  // At least the scalar-ISA rows must have run on any machine.
  EXPECT_GE(executed, 20);
}

TEST(Registry, TableIsWellFormed) {
  ASSERT_FALSE(capabilities().empty());
  for (const Capability& c : capabilities()) {
    EXPECT_NE(c.rank_mask, 0u) << method_name(c.method);
    EXPECT_EQ(c.rank_mask & ~7u, 0u) << method_name(c.method);
    EXPECT_NE(c.note, nullptr);
    EXPECT_EQ(find_capability(c.method, c.tiling), &c);
  }
  // No duplicate (method, tiling) rows.
  for (std::size_t i = 0; i < capabilities().size(); ++i)
    for (std::size_t j = i + 1; j < capabilities().size(); ++j)
      EXPECT_FALSE(capabilities()[i].method == capabilities()[j].method &&
                   capabilities()[i].tiling == capabilities()[j].tiling);
}

TEST(Registry, KnownUnsupportedCombos) {
  EXPECT_EQ(find_capability(Method::kScalar, Tiling::kTessellate), nullptr);
  EXPECT_EQ(find_capability(Method::kDlt, Tiling::kTessellate), nullptr);
  EXPECT_EQ(find_capability(Method::kReorg, Tiling::kSplit), nullptr);
  EXPECT_FALSE(supports(Method::kMultiLoad, Tiling::kTessellate, 2));
  EXPECT_FALSE(supports(Method::kReorg, Tiling::kTessellate, 3));
  EXPECT_TRUE(supports(Method::kTranspose, Tiling::kNone, 2));
}

TEST(Registry, SupportedMethodsEnumerates) {
  const auto untiled_1d = supported_methods(Tiling::kNone, 1);
  EXPECT_EQ(untiled_1d.size(), 7u);  // all methods sweep untiled
  const auto tess_2d = supported_methods(Tiling::kTessellate, 2);
  for (Method m : tess_2d)
    EXPECT_TRUE(m == Method::kAutoVec || m == Method::kTranspose ||
                m == Method::kTransposeUJ)
        << method_name(m);
  const auto split_3d = supported_methods(Tiling::kSplit, 3);
  ASSERT_EQ(split_3d.size(), 1u);
  EXPECT_EQ(split_3d[0], Method::kDlt);
}

TEST(Registry, NameRoundTrips) {
  for (Method m : all_methods())
    EXPECT_EQ(method_from_name(method_name(m)), m) << method_name(m);
  for (Tiling t : all_tilings())
    EXPECT_EQ(tiling_from_name(tiling_name(t)), t) << tiling_name(t);
  for (Isa isa : all_isas())
    EXPECT_EQ(isa_from_name(isa_name(isa)), isa) << isa_name(isa);
  EXPECT_EQ(isa_from_name("auto"), Isa::kAuto);
  EXPECT_FALSE(method_from_name("no-such-method").has_value());
  EXPECT_FALSE(tiling_from_name("").has_value());
  EXPECT_FALSE(isa_from_name("avx1024").has_value());
}

TEST(Registry, RunnableIsasAreOrderedAndRunnable) {
  const auto isas = runnable_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (Isa isa : isas) {
    EXPECT_TRUE(isa_compiled(isa));
    EXPECT_TRUE(isa_supported(isa));
    EXPECT_NE(isa, Isa::kAuto);
  }
  EXPECT_EQ(isas.back(), best_isa());
}

}  // namespace
}  // namespace tsv
