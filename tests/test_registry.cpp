// Registry-consistency suite: every (method, tiling, rank, isa, dtype)
// combination the registry claims to support must plan and execute correctly
// — agreeing with the scalar reference of the same dtype — and every
// combination it does not claim must fail with a structured ConfigError at
// plan time, never from inside a kernel. Also covers the name <-> enum
// round-trips used by CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

template <typename T>
T f1(index x) {
  return T(std::sin(0.041 * double(x)) + 0.002 * double(x));
}
template <typename T>
T f2(index x, index y) {
  return T(std::sin(0.041 * double(x) - 0.07 * double(y)));
}
template <typename T>
T f3(index x, index y, index z) {
  return T(std::sin(0.041 * double(x) - 0.07 * double(y) + 0.03 * double(z)));
}

// Conforming extents: nx is a multiple of 256 = W^2 for the widest kernels
// (float AVX-512, W = 16), so every layout rule accepts the shape for every
// compiled width and dtype.
constexpr index kNx = 256, kNy = 6, kNz = 4, kSteps = 4;

Options combo_options(Method m, Tiling t, Isa isa, Dtype d) {
  Options o;
  o.method = m;
  o.tiling = t;
  o.isa = isa;
  o.dtype = d;
  o.steps = kSteps;
  // Blocks stay 0: the plan must resolve sane defaults for tiled runs.
  return o;
}

std::string combo_label(Method m, Tiling t, int rank, Isa isa, Dtype d) {
  std::string s = method_name(m);
  s += "+";
  s += tiling_name(t);
  s += " rank=" + std::to_string(rank) + " isa=";
  s += isa_name(isa);
  s += " dtype=";
  s += dtype_name(d);
  return s;
}

// Plans and executes one claimed combination at the given rank and checks
// agreement with the scalar reference of the same dtype, within the
// dtype-aware tolerance (check.hpp).
template <typename T>
void expect_combo_matches(Method m, Tiling t, int rank, Isa isa) {
  const Options o = combo_options(m, t, isa, dtype_of<T>());
  const std::string label = combo_label(m, t, rank, isa, dtype_of<T>());
  const double tol = accuracy_tolerance<T>(kSteps);
  switch (rank) {
    case 1: {
      const auto s = make_1d3p<T>(0.3);
      Grid1D<T> ref(kNx, 1), g(kNx, 1);
      ref.fill(f1<T>);
      g.fill(f1<T>);
      reference_run(ref, s, kSteps);
      auto plan = make_plan(shape1d(kNx), s, o);
      plan.execute(g);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
    case 2: {
      const auto s = make_2d5p<T>(0.5, 0.12, 0.13);
      Grid2D<T> ref(kNx, kNy, 1), g(kNx, kNy, 1);
      ref.fill(f2<T>);
      g.fill(f2<T>);
      reference_run(ref, s, kSteps);
      auto plan = make_plan(shape2d(kNx, kNy), s, o);
      plan.execute(g);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
    default: {
      const auto s = make_3d7p<T>();
      Grid3D<T> ref(kNx, kNy, kNz, 1), g(kNx, kNy, kNz, 1);
      ref.fill(f3<T>);
      g.fill(f3<T>);
      reference_run(ref, s, kSteps);
      auto plan = make_plan(shape3d(kNx, kNy, kNz), s, o);
      plan.execute(g);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
  }
}

// make_plan must fail with ConfigError exactly when the registry says the
// combination is unsupported. The rank-erased (StencilKind) overload is used
// here so the dtype axis goes through Options::dtype dispatch.
void expect_combo_rejected_at_plan_time(Method m, Tiling t, int rank, Isa isa,
                                        Dtype d) {
  const Options o = combo_options(m, t, isa, d);
  const std::string label = combo_label(m, t, rank, isa, d);
  switch (rank) {
    case 1:
      EXPECT_THROW(make_plan(shape1d(kNx), StencilKind::k1d3p, o), ConfigError)
          << label;
      break;
    case 2:
      EXPECT_THROW(make_plan(shape2d(kNx, kNy), StencilKind::k2d5p, o),
                   ConfigError)
          << label;
      break;
    default:
      EXPECT_THROW(make_plan(shape3d(kNx, kNy, kNz), StencilKind::k3d7p, o),
                   ConfigError)
          << label;
      break;
  }
}

TEST(Registry, EveryClaimedComboExecutesAndMatchesReference) {
  int executed = 0;
  for (Method m : all_methods())
    for (Tiling t : all_tilings())
      for (int rank = 1; rank <= 3; ++rank)
        for (Isa isa : all_isas())
          for (Dtype d : all_dtypes()) {
            if (supports(m, t, rank, isa, d)) {
              if (d == Dtype::kF32)
                expect_combo_matches<float>(m, t, rank, isa);
              else
                expect_combo_matches<double>(m, t, rank, isa);
              ++executed;
            } else {
              expect_combo_rejected_at_plan_time(m, t, rank, isa, d);
            }
          }
  // At least the scalar-ISA rows must have run, in both dtypes, on any
  // machine.
  EXPECT_GE(executed, 40);
}

TEST(Registry, RankErasedPlanDispatchesOnDtype) {
  Options o = combo_options(Method::kTranspose, Tiling::kNone, Isa::kAuto,
                            Dtype::kF32);
  Plan p = make_plan(shape1d(kNx), StencilKind::k1d3p, o);
  EXPECT_EQ(p.config().dtype, Dtype::kF32);

  Grid1D<float> gf(kNx, 1);
  gf.fill(f1<float>);
  EXPECT_NO_THROW(p.execute(gf));
  // A double grid on a float plan is a structured error, not a crash.
  Grid1D<double> gd(kNx, 1);
  gd.fill(f1<double>);
  EXPECT_THROW(p.execute(gd), ConfigError);

  // Float kernels are twice as wide: the resolved width doubles.
  Options od = o;
  od.dtype = Dtype::kF64;
  Plan pd = make_plan(shape1d(kNx), StencilKind::k1d3p, od);
  EXPECT_EQ(2 * pd.config().width, p.config().width);
}

TEST(Registry, TableIsWellFormed) {
  ASSERT_FALSE(capabilities().empty());
  for (const Capability& c : capabilities()) {
    EXPECT_NE(c.rank_mask, 0u) << method_name(c.method);
    EXPECT_EQ(c.rank_mask & ~7u, 0u) << method_name(c.method);
    EXPECT_NE(c.dtype_mask, 0u) << method_name(c.method);
    EXPECT_EQ(c.dtype_mask & ~kAllDtypes, 0u) << method_name(c.method);
    EXPECT_NE(c.note, nullptr);
    EXPECT_EQ(find_capability(c.method, c.tiling), &c);
  }
  // No duplicate (method, tiling) rows.
  for (std::size_t i = 0; i < capabilities().size(); ++i)
    for (std::size_t j = i + 1; j < capabilities().size(); ++j)
      EXPECT_FALSE(capabilities()[i].method == capabilities()[j].method &&
                   capabilities()[i].tiling == capabilities()[j].tiling);
}

TEST(Registry, KnownUnsupportedCombos) {
  EXPECT_EQ(find_capability(Method::kScalar, Tiling::kTessellate), nullptr);
  EXPECT_EQ(find_capability(Method::kDlt, Tiling::kTessellate), nullptr);
  EXPECT_EQ(find_capability(Method::kReorg, Tiling::kSplit), nullptr);
  EXPECT_FALSE(supports(Method::kMultiLoad, Tiling::kTessellate, 2));
  EXPECT_FALSE(supports(Method::kReorg, Tiling::kTessellate, 3));
  EXPECT_TRUE(supports(Method::kTranspose, Tiling::kNone, 2));
  // Every currently implemented row claims both dtypes (the kernels are one
  // template); the mask exists so future rows can opt out.
  for (Dtype d : all_dtypes())
    EXPECT_TRUE(supports(Method::kTranspose, Tiling::kNone, 2, Isa::kAuto, d))
        << dtype_name(d);
}

TEST(Registry, SupportedMethodsEnumerates) {
  const auto untiled_1d = supported_methods(Tiling::kNone, 1);
  EXPECT_EQ(untiled_1d.size(), 8u);  // all methods sweep untiled
  const auto tess_2d = supported_methods(Tiling::kTessellate, 2);
  for (Method m : tess_2d)
    EXPECT_TRUE(m == Method::kAutoVec || m == Method::kTranspose ||
                m == Method::kTransposeUJ || m == Method::kGeneric)
        << method_name(m);
  const auto split_3d = supported_methods(Tiling::kSplit, 3);
  ASSERT_EQ(split_3d.size(), 1u);
  EXPECT_EQ(split_3d[0], Method::kDlt);
}

TEST(Registry, NameRoundTrips) {
  for (Method m : all_methods())
    EXPECT_EQ(method_from_name(method_name(m)), m) << method_name(m);
  for (Tiling t : all_tilings())
    EXPECT_EQ(tiling_from_name(tiling_name(t)), t) << tiling_name(t);
  for (Isa isa : all_isas())
    EXPECT_EQ(isa_from_name(isa_name(isa)), isa) << isa_name(isa);
  for (Dtype d : all_dtypes())
    EXPECT_EQ(dtype_from_name(dtype_name(d)), d) << dtype_name(d);
  EXPECT_EQ(isa_from_name("auto"), Isa::kAuto);
  EXPECT_EQ(dtype_from_name("double"), Dtype::kF64);
  EXPECT_EQ(dtype_from_name("float"), Dtype::kF32);
  EXPECT_FALSE(method_from_name("no-such-method").has_value());
  EXPECT_FALSE(tiling_from_name("").has_value());
  EXPECT_FALSE(isa_from_name("avx1024").has_value());
  EXPECT_FALSE(dtype_from_name("f16").has_value());
}

TEST(Registry, RunnableIsasAreOrderedAndRunnable) {
  const auto isas = runnable_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (Isa isa : isas) {
    EXPECT_TRUE(isa_compiled(isa));
    EXPECT_TRUE(isa_supported(isa));
    EXPECT_NE(isa, Isa::kAuto);
  }
  EXPECT_EQ(isas.back(), best_isa());
}

TEST(Registry, KernelWidthsPerDtype) {
  EXPECT_EQ(kernel_width(Isa::kScalar, Dtype::kF64), 2);
  EXPECT_EQ(kernel_width(Isa::kScalar, Dtype::kF32), 4);
  EXPECT_EQ(kernel_width(Isa::kAvx2, Dtype::kF64), 4);
  EXPECT_EQ(kernel_width(Isa::kAvx2, Dtype::kF32), 8);
  EXPECT_EQ(kernel_width(Isa::kAvx512, Dtype::kF64), 8);
  EXPECT_EQ(kernel_width(Isa::kAvx512, Dtype::kF32), 16);
  // The one-argument form stays the double-precision width.
  for (Isa isa : all_isas())
    EXPECT_EQ(kernel_width(isa), kernel_width(isa, Dtype::kF64));
}

// Concurrency regression (TSan-audited): the registry's lazy-initialized
// tables — capabilities(), the enum universes, cpu_info()/best_isa() behind
// supports(), and every exec_table the plan layer builds from them — must
// be safe to first-touch and read from many threads at once; the batched
// executor's workers do exactly that on a cold process. The tables are
// function-local statics (C++11 thread-safe initialization) and immutable
// afterwards; this test pins the stable-address + consistent-content
// contract so a future "optimization" away from magic statics fails
// loudly under the TSan CI job.
TEST(Registry, ConcurrentLazyInitAndLookupsAreConsistent) {
  constexpr int kThreads = 8;
  std::vector<const std::vector<Capability>*> tables(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const auto& caps = capabilities();
        tables[t] = &caps;
        for (const Capability& c : caps) {
          EXPECT_EQ(find_capability(c.method, c.tiling), &c);
          EXPECT_EQ(method_from_name(method_name(c.method)), c.method);
          EXPECT_EQ(tiling_from_name(tiling_name(c.tiling)), c.tiling);
        }
        EXPECT_TRUE(supports(Method::kTranspose, Tiling::kNone, 1));
        EXPECT_FALSE(runnable_isas().empty());
        // Concurrent plan construction exercises the dispatch-table and
        // resolver statics behind the registry.
        const auto plan = make_plan(
            shape1d(256), StencilKind::k1d3p,
            Options{.method = Method::kTranspose, .steps = 1});
        EXPECT_EQ(plan.config().method, Method::kTranspose);
      }
    });
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(tables[t], tables[0]) << "registry must initialize once";
}

}  // namespace
}  // namespace tsv
