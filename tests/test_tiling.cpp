// Tiling correctness: tessellation (all stages, all methods) must be
// bit-equivalent in shape to the untiled schedule — we verify against the
// scalar reference over exhaustive small configurations, which exercises
// every triangle/inverted-triangle/seam/boundary combination.
#include <gtest/gtest.h>

#include <cmath>

#include "tsv/kernels/reference.hpp"
#include "tsv/tiling/tiled.hpp"

namespace tsv {
namespace {

constexpr double kTol = 1e-11;

double f1(index x) { return std::sin(0.037 * x) + 0.01 * x; }
double f2(index x, index y) { return std::sin(0.037 * x + 0.11 * y) - 0.002 * y; }
double f3(index x, index y, index z) {
  return std::sin(0.037 * x + 0.11 * y - 0.05 * z) + 0.001 * (x - z);
}

template <int R, typename Fn>
void check_1d(index nx, index steps, const Stencil1D<R>& s, Fn&& fn,
              const char* what) {
  Grid1D<double> ref(nx, R), got(nx, R);
  ref.fill(f1);
  got.fill(f1);
  reference_run(ref, s, steps);
  fn(got, s, steps);
  EXPECT_LE(max_abs_diff(ref, got), kTol)
      << what << " nx=" << nx << " T=" << steps;
}

// ---- 1D exhaustive sweeps ----------------------------------------------------

TEST(Tess1D, AutovecAllConfigs) {
  const auto s = make_1d3p(0.32);
  for (index nx : {32, 48, 97})
    for (index bx : {16, 32})
      for (index bt : {1, 2, 3, 4})
        for (index steps : {0, 1, 3, 6, 7}) {
          if (tile_count(nx, bx) > 1 && bx < 2 * 1 * bt) continue;
          check_1d(nx, steps, s,
                   [&](auto& g, auto& st, index t) {
                     tess_autovec_run(g, st, t, bx, bt);
                   },
                   "tess-autovec");
        }
}

TEST(Tess1D, AutovecRadius2) {
  const auto s = make_1d5p(0.05, 0.2, 0.5);
  for (index bx : {24, 48})
    for (index bt : {2, 4})
      for (index steps : {3, 8}) {
        if (24 < 2 * 2 * bt && bx == 24) continue;
        check_1d(96, steps, s,
                 [&](auto& g, auto& st, index t) {
                   tess_autovec_run(g, st, t, bx, bt);
                 },
                 "tess-autovec-r2");
      }
}

template <typename V>
void transpose_tiled_1d_sweep() {
  constexpr int W = V::width;
  const auto s = make_1d3p(0.29);
  const index nx = 8 * W * W;
  for (index bx : {2 * W * W, 4 * W * W})
    for (index bt : {1, 2, 4})
      for (index steps : {0, 1, 4, 7}) {
        if (bx < 2 * bt) continue;
        check_1d(nx, steps, s,
                 [&](auto& g, auto& st, index t) {
                   tess_transpose_run<V>(g, st, t, bx, bt);
                 },
                 "tess-transpose");
      }
  // Radius-2 stencil, tile edges cut through vector sets.
  const auto s5 = make_1d5p(0.06, 0.2, 0.44);
  for (index steps : {2, 5})
    check_1d(nx, steps, s5,
             [&](auto& g, auto& st, index t) {
               tess_transpose_run<V>(g, st, t, 2 * W * W, 2);
             },
             "tess-transpose-r2");
}

TEST(Tess1D, TransposeW2) { transpose_tiled_1d_sweep<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Tess1D, TransposeAvx2) { transpose_tiled_1d_sweep<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Tess1D, TransposeAvx512) { transpose_tiled_1d_sweep<Vec<double, 8>>(); }
#endif

template <typename V>
void uj2_tiled_1d_sweep() {
  constexpr int W = V::width;
  const auto s = make_1d3p(0.27);
  const index nx = 8 * W * W;
  for (index bx : {2 * W * W, 4 * W * W})
    for (index bt : {2, 4})
      for (index steps : {0, 2, 4, 6, 7, 9}) {  // odd tails included
        if (bx < 2 * bt) continue;
        check_1d(nx, steps, s,
                 [&](auto& g, auto& st, index t) {
                   tess_transpose_uj2_run<V>(g, st, t, bx, bt);
                 },
                 "tess-uj2");
      }
  const auto s5 = make_1d5p(0.05, 0.22, 0.4);
  for (index steps : {4, 5})
    check_1d(nx, steps, s5,
             [&](auto& g, auto& st, index t) {
               tess_transpose_uj2_run<V>(g, st, t, 4 * W * W, 2);
             },
             "tess-uj2-r2");
}

TEST(Tess1D, Uj2W2) { uj2_tiled_1d_sweep<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Tess1D, Uj2Avx2) { uj2_tiled_1d_sweep<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Tess1D, Uj2Avx512) { uj2_tiled_1d_sweep<Vec<double, 8>>(); }
#endif

template <typename V>
void sdsl_1d_sweep() {
  constexpr int W = V::width;
  const auto s = make_1d3p(0.3);
  const index nx = 64 * W;  // L = 64 columns
  for (index bi : {16, 32})
    for (index bt : {2, 4})
      for (index steps : {0, 1, 4, 9}) {
        if (bi < 2 * bt) continue;
        check_1d(nx, steps, s,
                 [&](auto& g, auto& st, index t) {
                   sdsl_run<V>(g, st, t, bi, bt);
                 },
                 "sdsl");
      }
  const auto s5 = make_1d5p(0.07, 0.2, 0.42);
  check_1d(nx, 6, s5,
           [&](auto& g, auto& st, index t) { sdsl_run<V>(g, st, t, 16, 2); },
           "sdsl-r2");
}

TEST(Split1D, SdslW2) { sdsl_1d_sweep<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Split1D, SdslAvx2) { sdsl_1d_sweep<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Split1D, SdslAvx512) { sdsl_1d_sweep<Vec<double, 8>>(); }
#endif

TEST(Tess1D, MultiloadAndReorgTiled) {
  const auto s = make_1d3p(0.26);
  using V = Vec<double, 2>;
  for (index steps : {3, 6}) {
    check_1d(96, steps, s,
             [&](auto& g, auto& st, index t) {
               tess_multiload_run<V>(g, st, t, 32, 3);
             },
             "tess-multiload");
    check_1d(96, steps, s,
             [&](auto& g, auto& st, index t) {
               tess_reorg_run<V>(g, st, t, 32, 3);
             },
             "tess-reorg");
  }
}

TEST(Split1D, RaggedLastTileIsSafe) {
  // Regression: a ragged last tile smaller than 2*r*bt used to let the
  // inverted seam overrun the domain (heap overflow) and overlap the wrap
  // seam. The driver must clamp the temporal range and stay correct.
  using V = Vec<double, 2>;
  const auto s = make_1d3p(0.3);
  // L = 123 columns, bi = 32 -> last tile 27 < 2*1*16.
  const index nx = 2 * 123;
  for (index bt : {4, 16, 64})
    check_1d(nx, 9, s,
             [&](auto& g, auto& st, index t) { sdsl_run<V>(g, st, t, 32, bt); },
             "sdsl-ragged");
}

TEST(Tess1D, RaggedLastTileIsSafe) {
  const auto s = make_1d3p(0.28);
  for (index nx : {70, 100})
    for (index bt : {2, 4})
      check_1d(nx, 7, s,
               [&](auto& g, auto& st, index t) {
                 tess_autovec_run(g, st, t, 32, bt);
               },
               "tess-ragged");
}

TEST(Tess1D, RejectsBadBlocking) {
  const auto s = make_1d3p();
  Grid1D<double> g(64, 1);
  g.fill(f1);
  // Multiple tiles with bx < 2*r*bt must be rejected.
  EXPECT_THROW(tess_autovec_run(g, s, 4, 8, 8), std::invalid_argument);
  // Odd bt for the pair scheme must be rejected.
  EXPECT_THROW((tess_transpose_uj2_run<Vec<double, 2>>(g, s, 4, 16, 3)),
               std::invalid_argument);
}

// ---- 2D ----------------------------------------------------------------------

template <int R, int NR, typename Fn>
void check_2d(index nx, index ny, index steps, const Stencil2D<R, NR>& s,
              Fn&& fn, const char* what) {
  Grid2D<double> ref(nx, ny, R), got(nx, ny, R);
  ref.fill(f2);
  got.fill(f2);
  reference_run(ref, s, steps);
  fn(got, s, steps);
  EXPECT_LE(max_abs_diff(ref, got), kTol)
      << what << " " << nx << "x" << ny << " T=" << steps;
}

TEST(Tess2D, AutovecConfigs) {
  const auto s = make_2d5p(0.45, 0.14, 0.13);
  for (index bx : {16, 32})
    for (index by : {8, 16})
      for (index bt : {2, 4})
        for (index steps : {0, 3, 7}) {
          if (bx < 2 * bt || by < 2 * bt) continue;
          check_2d(32, 24, steps, s,
                   [&](auto& g, auto& st, index t) {
                     tess_autovec_run(g, st, t, bx, by, bt);
                   },
                   "tess2d-autovec");
        }
}

TEST(Tess2D, AutovecBox) {
  const auto s = make_2d9p(0.21, 0.1, 0.07);
  check_2d(32, 24, 6, s,
           [&](auto& g, auto& st, index t) {
             tess_autovec_run(g, st, t, 16, 12, 3);
           },
           "tess2d-autovec-box");
}

template <typename V>
void tess2d_transpose_sweep() {
  constexpr int W = V::width;
  const auto s5 = make_2d5p(0.44, 0.15, 0.12);
  const auto s9 = make_2d9p(0.19, 0.11, 0.06);
  const index nx = 4 * W * W;
  for (index steps : {0, 3, 6}) {
    check_2d(nx, 24, steps, s5,
             [&](auto& g, auto& st, index t) {
               tess_transpose_run<V>(g, st, t, 2 * W * W, 12, 3);
             },
             "tess2d-transpose");
    check_2d(nx, 24, steps, s9,
             [&](auto& g, auto& st, index t) {
               tess_transpose_run<V>(g, st, t, 2 * W * W, 12, 3);
             },
             "tess2d-transpose-box");
    check_2d(nx, 24, steps, s5,
             [&](auto& g, auto& st, index t) {
               tess_transpose_uj2_run<V>(g, st, t, 2 * W * W, 12, 2);
             },
             "tess2d-uj2");
    check_2d(nx, 24, steps, s9,
             [&](auto& g, auto& st, index t) {
               tess_transpose_uj2_run<V>(g, st, t, 2 * W * W, 12, 2);
             },
             "tess2d-uj2-box");
    check_2d(nx, 24, steps, s5,
             [&](auto& g, auto& st, index t) { sdsl_run<V>(g, st, t, 12, 3); },
             "sdsl2d");
  }
}

TEST(Tess2D, TransposeW2) { tess2d_transpose_sweep<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Tess2D, TransposeAvx2) { tess2d_transpose_sweep<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Tess2D, TransposeAvx512) { tess2d_transpose_sweep<Vec<double, 8>>(); }
#endif

// ---- 3D ----------------------------------------------------------------------

template <int R, int NR, typename Fn>
void check_3d(index nx, index ny, index nz, index steps,
              const Stencil3D<R, NR>& s, Fn&& fn, const char* what) {
  Grid3D<double> ref(nx, ny, nz, R), got(nx, ny, nz, R);
  ref.fill(f3);
  got.fill(f3);
  reference_run(ref, s, steps);
  fn(got, s, steps);
  EXPECT_LE(max_abs_diff(ref, got), kTol)
      << what << " " << nx << "x" << ny << "x" << nz << " T=" << steps;
}

TEST(Tess3D, Autovec) {
  const auto s = make_3d7p(0.4, 0.1, 0.11, 0.09);
  check_3d(24, 16, 16, 5, s,
           [&](auto& g, auto& st, index t) {
             tess_autovec_run(g, st, t, 12, 8, 8, 2);
           },
           "tess3d-autovec");
}

template <typename V>
void tess3d_transpose_sweep() {
  constexpr int W = V::width;
  const auto s7 = make_3d7p(0.41, 0.09, 0.1, 0.12);
  const auto s27 = make_3d27p(0.12);
  const index nx = 2 * W * W;
  for (index steps : {0, 3, 6}) {
    check_3d(nx, 16, 16, steps, s7,
             [&](auto& g, auto& st, index t) {
               tess_transpose_run<V>(g, st, t, W * W, 8, 8, 2);
             },
             "tess3d-transpose");
    check_3d(nx, 16, 16, steps, s7,
             [&](auto& g, auto& st, index t) {
               tess_transpose_uj2_run<V>(g, st, t, W * W, 8, 8, 2);
             },
             "tess3d-uj2");
    check_3d(nx, 16, 16, steps, s27,
             [&](auto& g, auto& st, index t) {
               tess_transpose_uj2_run<V>(g, st, t, W * W, 8, 8, 2);
             },
             "tess3d-uj2-box");
    check_3d(nx, 16, 16, steps, s7,
             [&](auto& g, auto& st, index t) { sdsl_run<V>(g, st, t, 8, 2); },
             "sdsl3d");
  }
}

TEST(Tess3D, TransposeW2) { tess3d_transpose_sweep<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Tess3D, TransposeAvx2) { tess3d_transpose_sweep<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Tess3D, TransposeAvx512) { tess3d_transpose_sweep<Vec<double, 8>>(); }
#endif

}  // namespace
}  // namespace tsv
