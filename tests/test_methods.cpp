// Cross-method equivalence suite: every vectorization method must reproduce
// the scalar reference on every stencil, for several sizes, step counts and
// vector widths (generic W=2, AVX2 W=4, AVX-512 W=8).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tsv/kernels/reference.hpp"
#include "tsv/vectorize/autovec.hpp"
#include "tsv/vectorize/dlt_method.hpp"
#include "tsv/vectorize/multiload.hpp"
#include "tsv/vectorize/reorg.hpp"
#include "tsv/vectorize/transpose_vs.hpp"
#include "tsv/vectorize/unroll_jam.hpp"

namespace tsv {
namespace {

constexpr double kTol = 1e-11;

// Smooth-ish but non-symmetric deterministic field; nonzero halo values so
// boundary-handling bugs show up.
double field1(index x) { return std::sin(0.037 * x) + 0.01 * x; }
double field2(index x, index y) {
  return std::sin(0.037 * x + 0.11 * y) + 0.003 * (x - 2 * y);
}
double field3(index x, index y, index z) {
  return std::sin(0.037 * x + 0.11 * y - 0.05 * z) + 0.002 * (x + y - z);
}

template <int R>
Grid1D<double> make_grid_1d(index nx) {
  Grid1D<double> g(nx, R);
  g.fill(field1);
  return g;
}

// Runs method_fn and the reference on identical grids and compares.
template <int R, typename Fn>
void expect_matches_reference_1d(index nx, index steps, const Stencil1D<R>& s,
                                 Fn&& method_fn) {
  Grid1D<double> ref = make_grid_1d<R>(nx);
  Grid1D<double> got = make_grid_1d<R>(nx);
  const Grid1D<double> before = got;  // bitwise snapshot
  reference_run(ref, s, steps);
  method_fn(got, s, steps);
  EXPECT_LE(max_abs_diff(ref, got), kTol) << "nx=" << nx << " T=" << steps;
  // Halo must be bitwise untouched.
  for (index l = 1; l <= R; ++l) {
    EXPECT_EQ(got.at(-l), before.at(-l)) << "left halo, nx=" << nx;
    EXPECT_EQ(got.at(nx + l - 1), before.at(nx + l - 1))
        << "right halo, nx=" << nx;
  }
}

template <int R, int NR, typename Fn>
void expect_matches_reference_2d(index nx, index ny, index steps,
                                 const Stencil2D<R, NR>& s, Fn&& method_fn) {
  Grid2D<double> ref(nx, ny, R), got(nx, ny, R);
  ref.fill(field2);
  got.fill(field2);
  reference_run(ref, s, steps);
  method_fn(got, s, steps);
  EXPECT_LE(max_abs_diff(ref, got), kTol)
      << "nx=" << nx << " ny=" << ny << " T=" << steps;
}

template <int R, int NR, typename Fn>
void expect_matches_reference_3d(index nx, index ny, index nz, index steps,
                                 const Stencil3D<R, NR>& s, Fn&& method_fn) {
  Grid3D<double> ref(nx, ny, nz, R), got(nx, ny, nz, R);
  ref.fill(field3);
  got.fill(field3);
  reference_run(ref, s, steps);
  method_fn(got, s, steps);
  EXPECT_LE(max_abs_diff(ref, got), kTol)
      << nx << "x" << ny << "x" << nz << " T=" << steps;
}

// ---- 1D, all methods, parameterized over width ------------------------------

template <typename V>
void all_methods_1d() {
  constexpr int W = V::width;
  const auto s3 = make_1d3p(0.31);
  const auto s5 = make_1d5p(0.04, 0.21, 0.47);

  const index conforming[] = {W * W, 3 * W * W, 5 * W * W};
  const index steps_list[] = {0, 1, 2, 3, 7};

  for (index nx : conforming)
    for (index steps : steps_list) {
      expect_matches_reference_1d(nx, steps, s3, [](auto& g, auto& s, index t) {
        multiload_run<V>(g, s, t);
      });
      expect_matches_reference_1d(nx, steps, s3, [](auto& g, auto& s, index t) {
        reorg_run<V>(g, s, t);
      });
      expect_matches_reference_1d(nx, steps, s3, [](auto& g, auto& s, index t) {
        dlt_run<V>(g, s, t);
      });
      expect_matches_reference_1d(nx, steps, s3, [](auto& g, auto& s, index t) {
        transpose_vs_run<V>(g, s, t);
      });
      expect_matches_reference_1d(nx, steps, s3, [](auto& g, auto& s, index t) {
        unroll_jam_run<V, 1, 2>(g, s, t);
      });
      // Radius-2 stencil.
      expect_matches_reference_1d(nx, steps, s5, [](auto& g, auto& s, index t) {
        reorg_run<V>(g, s, t);
      });
      expect_matches_reference_1d(nx, steps, s5, [](auto& g, auto& s, index t) {
        transpose_vs_run<V>(g, s, t);
      });
      expect_matches_reference_1d(nx, steps, s5, [](auto& g, auto& s, index t) {
        unroll_jam_run<V, 2, 2>(g, s, t);
      });
      if (nx / W > 2)  // DLT's own minimum-size constraint for R = 2
        expect_matches_reference_1d(nx, steps, s5,
                                    [](auto& g, auto& s, index t) {
                                      dlt_run<V>(g, s, t);
                                    });
    }

  // Methods without layout constraints must handle awkward sizes.
  for (index nx : {static_cast<index>(2 * W + 3), static_cast<index>(101)}) {
    expect_matches_reference_1d(nx, 3, s3, [](auto& g, auto& s, index t) {
      multiload_run<V>(g, s, t);
    });
    expect_matches_reference_1d(nx, 3, s3, [](auto& g, auto& s, index t) {
      reorg_run<V>(g, s, t);
    });
    expect_matches_reference_1d(nx, 3, s3, [](auto& g, auto& s, index t) {
      autovec_run(g, s, t);
    });
  }

  // Unroll factors other than the paper's K=2, including odd K and K > 2.
  for (int rep = 0; rep < 1; ++rep) {
    expect_matches_reference_1d(3 * W * W, 5, s3,
                                [](auto& g, auto& s, index t) {
                                  unroll_jam_run<V, 1, 1>(g, s, t);
                                });
    expect_matches_reference_1d(3 * W * W, 9, s3,
                                [](auto& g, auto& s, index t) {
                                  unroll_jam_run<V, 1, 3>(g, s, t);
                                });
    expect_matches_reference_1d(3 * W * W, 8, s3,
                                [](auto& g, auto& s, index t) {
                                  unroll_jam_run<V, 1, 4>(g, s, t);
                                });
  }
}

TEST(Methods1D, GenericW2) { all_methods_1d<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Methods1D, Avx2) { all_methods_1d<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Methods1D, Avx512) { all_methods_1d<Vec<double, 8>>(); }
#endif

TEST(Methods1D, AutovecMatchesReference) {
  const auto s5 = make_1d5p(0.04, 0.21, 0.47);
  for (index steps : {0, 1, 5})
    expect_matches_reference_1d(96, steps, s5, [](auto& g, auto& s, index t) {
      autovec_run(g, s, t);
    });
}

// ---- layout-constraint failure injection ------------------------------------

TEST(Methods1D, LayoutMethodsRejectNonConformingSizes) {
  auto s = make_1d3p();
  // W = 2: transpose layout needs nx % 4 == 0, DLT needs nx % 2 == 0.
  Grid1D<double> g10(10, 1);
  g10.fill(field1);
  EXPECT_THROW((transpose_vs_run<Vec<double, 2>>(g10, s, 1)),
               std::invalid_argument);
  EXPECT_THROW((unroll_jam_run<Vec<double, 2>, 1, 2>(g10, s, 1)),
               std::invalid_argument);
  Grid1D<double> g11(11, 1);
  g11.fill(field1);
  EXPECT_THROW((dlt_run<Vec<double, 2>>(g11, s, 1)), std::invalid_argument);
  // Multiload has no constraint: same size must work.
  EXPECT_NO_THROW((multiload_run<Vec<double, 2>>(g11, s, 1)));
}

// ---- 2D ----------------------------------------------------------------------

template <typename V>
void all_methods_2d() {
  constexpr int W = V::width;
  const auto s5 = make_2d5p(0.46, 0.13, 0.14);
  const auto s9 = make_2d9p(0.2, 0.11, 0.069);

  const index nx = 2 * W * W;
  for (index ny : {static_cast<index>(1), static_cast<index>(5)})
    for (index steps : {0, 1, 2, 5}) {
      expect_matches_reference_2d(nx, ny, steps, s5,
                                  [](auto& g, auto& s, index t) {
                                    multiload_run<V>(g, s, t);
                                  });
      expect_matches_reference_2d(nx, ny, steps, s5,
                                  [](auto& g, auto& s, index t) {
                                    reorg_run<V>(g, s, t);
                                  });
      expect_matches_reference_2d(nx, ny, steps, s5,
                                  [](auto& g, auto& s, index t) {
                                    dlt_run<V>(g, s, t);
                                  });
      expect_matches_reference_2d(nx, ny, steps, s5,
                                  [](auto& g, auto& s, index t) {
                                    transpose_vs_run<V>(g, s, t);
                                  });
      expect_matches_reference_2d(nx, ny, steps, s5,
                                  [](auto& g, auto& s, index t) {
                                    unroll_jam2_run<V>(g, s, t);
                                  });
      expect_matches_reference_2d(nx, ny, steps, s9,
                                  [](auto& g, auto& s, index t) {
                                    transpose_vs_run<V>(g, s, t);
                                  });
      expect_matches_reference_2d(nx, ny, steps, s9,
                                  [](auto& g, auto& s, index t) {
                                    unroll_jam2_run<V>(g, s, t);
                                  });
      expect_matches_reference_2d(nx, ny, steps, s9,
                                  [](auto& g, auto& s, index t) {
                                    reorg_run<V>(g, s, t);
                                  });
    }

  expect_matches_reference_2d(nx, 7, 3, s9, [](auto& g, auto& s, index t) {
    autovec_run(g, s, t);
  });
  expect_matches_reference_2d(nx, 7, 3, s9, [](auto& g, auto& s, index t) {
    dlt_run<V>(g, s, t);
  });
  expect_matches_reference_2d(nx, 7, 3, s9, [](auto& g, auto& s, index t) {
    multiload_run<V>(g, s, t);
  });
}

TEST(Methods2D, GenericW2) { all_methods_2d<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Methods2D, Avx2) { all_methods_2d<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Methods2D, Avx512) { all_methods_2d<Vec<double, 8>>(); }
#endif

// ---- 3D ----------------------------------------------------------------------

template <typename V>
void all_methods_3d() {
  constexpr int W = V::width;
  const auto s7 = make_3d7p(0.39, 0.1, 0.11, 0.09);
  const auto s27 = make_3d27p(0.13);

  const index nx = W * W;
  const index ny = 4, nz = 3;
  for (index steps : {0, 1, 2, 5}) {
    expect_matches_reference_3d(nx, ny, nz, steps, s7,
                                [](auto& g, auto& s, index t) {
                                  multiload_run<V>(g, s, t);
                                });
    expect_matches_reference_3d(nx, ny, nz, steps, s7,
                                [](auto& g, auto& s, index t) {
                                  reorg_run<V>(g, s, t);
                                });
    expect_matches_reference_3d(nx, ny, nz, steps, s7,
                                [](auto& g, auto& s, index t) {
                                  dlt_run<V>(g, s, t);
                                });
    expect_matches_reference_3d(nx, ny, nz, steps, s7,
                                [](auto& g, auto& s, index t) {
                                  transpose_vs_run<V>(g, s, t);
                                });
    expect_matches_reference_3d(nx, ny, nz, steps, s7,
                                [](auto& g, auto& s, index t) {
                                  unroll_jam2_run<V>(g, s, t);
                                });
    expect_matches_reference_3d(nx, ny, nz, steps, s27,
                                [](auto& g, auto& s, index t) {
                                  transpose_vs_run<V>(g, s, t);
                                });
    expect_matches_reference_3d(nx, ny, nz, steps, s27,
                                [](auto& g, auto& s, index t) {
                                  unroll_jam2_run<V>(g, s, t);
                                });
  }
  expect_matches_reference_3d(nx, ny, nz, 2, s27,
                              [](auto& g, auto& s, index t) {
                                autovec_run(g, s, t);
                              });
}

TEST(Methods3D, GenericW2) { all_methods_3d<Vec<double, 2>>(); }
#if defined(__AVX2__)
TEST(Methods3D, Avx2) { all_methods_3d<Vec<double, 4>>(); }
#endif
#if defined(__AVX512F__)
TEST(Methods3D, Avx512) { all_methods_3d<Vec<double, 8>>(); }
#endif

// ---- region sweep contract -----------------------------------------------------

template <typename V>
void check_region_writes_only_range() {
  constexpr int W = V::width;
  const index nx = 4 * W * W;
  const auto s = make_1d3p(0.3);
  Grid1D<double> in(nx, 1), out(nx, 1), ref(nx, 1);
  in.fill(field1);
  ref.fill(field1);
  reference_step(ref, ref, s);  // unused content; just shape

  block_transpose_grid<double, W>(in);
  // Sweep several awkward sub-ranges; cells outside must stay poisoned.
  for (index xlo : {static_cast<index>(0), static_cast<index>(3),
                    static_cast<index>(W * W - 1)})
    for (index xhi : {xlo + 1, static_cast<index>(2 * W * W + 5), nx}) {
      out.fill([](index) { return -777.0; });
      transpose_sweep_row_region<V, 1, 1>({in.x0()}, out.x0(), {s.w}, nx, xlo,
                                          xhi);
      for (index x = 0; x < nx; ++x) {
        const double v = out.x0()[block_transposed_offset<W>(x)];
        if (x < xlo || x >= xhi) {
          EXPECT_EQ(v, -777.0) << "leak at x=" << x << " range [" << xlo
                               << "," << xhi << ")";
        } else {
          EXPECT_NE(v, -777.0) << "missing write at x=" << x;
        }
      }
    }
}

TEST(RegionSweep, WritesOnlyRangeW2) {
  check_region_writes_only_range<Vec<double, 2>>();
}
#if defined(__AVX2__)
TEST(RegionSweep, WritesOnlyRangeAvx2) {
  check_region_writes_only_range<Vec<double, 4>>();
}
#endif
#if defined(__AVX512F__)
TEST(RegionSweep, WritesOnlyRangeAvx512) {
  check_region_writes_only_range<Vec<double, 8>>();
}
#endif

// ---- float methods: every kernel in single precision -------------------------

// Bounded away from zero: ULP comparisons are meaningful for O(1)-magnitude
// values, while cells near zero see cancellation-amplified relative error.
template <typename T>
T ffield1(index x) {
  return T(1.5 + std::sin(0.037 * double(x)) + 0.01 * double(x % 61));
}

// Runs method_fn and the same-dtype reference on identical float grids and
// compares under the dtype-aware tolerance (check.hpp policy).
template <typename V, int R, typename Fn>
void expect_matches_float_reference_1d(index nx, index steps,
                                       const Stencil1D<R, float>& s,
                                       Fn&& method_fn) {
  Grid1D<float> ref(nx, R), got(nx, R);
  ref.fill(ffield1<float>);
  got.fill(ffield1<float>);
  reference_run(ref, s, steps);
  method_fn(got, s, steps);
  EXPECT_LE(max_abs_diff(ref, got), accuracy_tolerance<float>(steps))
      << "nx=" << nx << " T=" << steps << " W=" << V::width;
}

template <typename V>
void all_float_methods_1d() {
  constexpr int W = V::width;
  const auto s3 = make_1d3p<float>(0.31);
  const auto s5 = make_1d5p<float>(0.04, 0.21, 0.47);
  for (index nx : {static_cast<index>(W * W), static_cast<index>(3 * W * W)})
    for (index steps : {0, 1, 2, 7}) {
      expect_matches_float_reference_1d<V>(
          nx, steps, s3,
          [](auto& g, auto& s, index t) { multiload_run<V>(g, s, t); });
      expect_matches_float_reference_1d<V>(
          nx, steps, s3,
          [](auto& g, auto& s, index t) { reorg_run<V>(g, s, t); });
      expect_matches_float_reference_1d<V>(
          nx, steps, s3,
          [](auto& g, auto& s, index t) { dlt_run<V>(g, s, t); });
      expect_matches_float_reference_1d<V>(
          nx, steps, s3,
          [](auto& g, auto& s, index t) { transpose_vs_run<V>(g, s, t); });
      expect_matches_float_reference_1d<V>(
          nx, steps, s3, [](auto& g, auto& s, index t) {
            unroll_jam_run<V, 1, 2>(g, s, t);
          });
      expect_matches_float_reference_1d<V>(
          nx, steps, s5,
          [](auto& g, auto& s, index t) { transpose_vs_run<V>(g, s, t); });
    }
}

TEST(FloatMethods1D, GenericW4) { all_float_methods_1d<Vec<float, 4>>(); }
#if defined(__AVX2__)
TEST(FloatMethods1D, Avx2W8) { all_float_methods_1d<Vec<float, 8>>(); }
#endif
#if defined(__AVX512F__)
TEST(FloatMethods1D, Avx512W16) { all_float_methods_1d<Vec<float, 16>>(); }
#endif

template <typename V>
void float_methods_2d_3d() {
  constexpr int W = V::width;
  const auto tol = [](index steps) { return accuracy_tolerance<float>(steps); };
  {
    const auto s = make_2d5p<float>(0.46, 0.13, 0.14);
    const index nx = W * W, ny = 5, steps = 3;
    Grid2D<float> ref(nx, ny, 1), got(nx, ny, 1);
    auto f = [](index x, index y) {
      return float(std::sin(0.037 * double(x) + 0.11 * double(y)));
    };
    ref.fill(f);
    got.fill(f);
    reference_run(ref, s, steps);
    transpose_vs_run<V>(got, s, steps);
    EXPECT_LE(max_abs_diff(ref, got), tol(steps)) << "2d W=" << W;
    Grid2D<float> got_uj(nx, ny, 1);
    got_uj.fill(f);
    unroll_jam2_run<V>(got_uj, s, steps);
    EXPECT_LE(max_abs_diff(ref, got_uj), tol(steps)) << "2d uj W=" << W;
  }
  {
    const auto s = make_3d7p<float>(0.39, 0.1, 0.11, 0.09);
    const index nx = W * W, ny = 4, nz = 3, steps = 2;
    Grid3D<float> ref(nx, ny, nz, 1), got(nx, ny, nz, 1);
    auto f = [](index x, index y, index z) {
      return float(std::sin(0.037 * double(x) + 0.11 * double(y) -
                            0.05 * double(z)));
    };
    ref.fill(f);
    got.fill(f);
    reference_run(ref, s, steps);
    transpose_vs_run<V>(got, s, steps);
    EXPECT_LE(max_abs_diff(ref, got), tol(steps)) << "3d W=" << W;
  }
}

TEST(FloatMethods2D3D, GenericW4) { float_methods_2d_3d<Vec<float, 4>>(); }
#if defined(__AVX2__)
TEST(FloatMethods2D3D, Avx2W8) { float_methods_2d_3d<Vec<float, 8>>(); }
#endif
#if defined(__AVX512F__)
TEST(FloatMethods2D3D, Avx512W16) { float_methods_2d_3d<Vec<float, 16>>(); }
#endif

// ---- float-vs-double ULP bound ------------------------------------------------
// The float run must track the double run to within a small number of float
// ulps per step: the only divergence sources are rounding (0.5 ulp/op) and
// reassociation, both of which scale with the step count.

int64_t float_ulp_distance(float a, float b) {
  auto key = [](float x) {
    int32_t i;
    std::memcpy(&i, &x, sizeof(i));
    // Map the sign-magnitude float ordering onto a monotone integer line.
    return (i < 0) ? int64_t{INT32_MIN} - i : int64_t{i};
  };
  const int64_t d = key(a) - key(b);
  return d < 0 ? -d : d;
}

template <typename V>
void float_tracks_double_within_ulps() {
  constexpr int W = V::width;
  const index nx = 4 * W * W;
  const index steps = 6;
  const auto sd = make_1d3p(0.33);
  const auto sf = make_1d3p<float>(0.33);

  Grid1D<double> gd(nx, 1);
  Grid1D<float> gf(nx, 1);
  gd.fill([](index x) { return double(ffield1<float>(x)); });  // same values
  gf.fill(ffield1<float>);
  reference_run(gd, sd, steps);
  transpose_vs_run<V>(gf, sf, steps);

  // Rounding + reassociation contribute a few ulps per step, and boundary
  // cells see mild cancellation that amplifies the relative error; 4
  // ulps/step (+ the final cast) covers both with margin.
  const int64_t bound = 4 * steps + 4;
  for (index x = 0; x < nx; ++x)
    EXPECT_LE(float_ulp_distance(gf.at(x), float(gd.at(x))), bound)
        << "x=" << x << " W=" << W;
}

TEST(FloatVsDouble, UlpBoundGenericW4) {
  float_tracks_double_within_ulps<Vec<float, 4>>();
}
#if defined(__AVX2__)
TEST(FloatVsDouble, UlpBoundAvx2W8) {
  float_tracks_double_within_ulps<Vec<float, 8>>();
}
#endif
#if defined(__AVX512F__)
TEST(FloatVsDouble, UlpBoundAvx512W16) {
  float_tracks_double_within_ulps<Vec<float, 16>>();
}
#endif

// ---- cross-width agreement ----------------------------------------------------

#if defined(__AVX2__) && defined(__AVX512F__)
TEST(Methods1D, WidthsAgreeWithEachOther) {
  const auto s = make_1d3p(0.33);
  const index nx = 4 * 64;  // conforming for W in {2, 4, 8}
  Grid1D<double> g2 = make_grid_1d<1>(nx), g4 = make_grid_1d<1>(nx),
                 g8 = make_grid_1d<1>(nx);
  transpose_vs_run<Vec<double, 2>>(g2, s, 6);
  transpose_vs_run<Vec<double, 4>>(g4, s, 6);
  transpose_vs_run<Vec<double, 8>>(g8, s, 6);
  EXPECT_LE(max_abs_diff(g2, g4), kTol);
  EXPECT_LE(max_abs_diff(g4, g8), kTol);
}
#endif

}  // namespace
}  // namespace tsv
