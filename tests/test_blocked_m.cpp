// Tests for the generalized block-row-size layout (paper §3.2's m).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tsv/kernels/reference.hpp"
#include "tsv/layout/block_transpose.hpp"
#include "tsv/layout/dlt.hpp"
#include "tsv/vectorize/blocked_m.hpp"

namespace tsv {
namespace {

double f1(index x) { return std::sin(0.05 * x) + 0.002 * x; }

TEST(BlockedM, OffsetMatchesSquareTransposeAtMEqualsW) {
  for (index x = 0; x < 256; ++x)
    EXPECT_EQ((blocked_m_offset<4>(x, 4)),
              (block_transposed_offset<4>(x)));
}

TEST(BlockedM, OffsetMatchesDltAtMEqualsRowLength) {
  constexpr int W = 4;
  const index nx = 64;
  for (index x = 0; x < nx; ++x)
    EXPECT_EQ((blocked_m_offset<W>(x, nx / W)), (dlt_offset<W>(x, nx)));
}

TEST(BlockedM, OffsetIsIdentityAtM1) {
  for (index x = 0; x < 128; ++x) EXPECT_EQ((blocked_m_offset<4>(x, 1)), x);
}

TEST(BlockedM, ForwardBackwardRoundtrip) {
  constexpr int W = 4;
  for (index m : {1, 2, 3, 5, 8}) {
    const index nx = W * m * 6;
    AlignedBuffer<double> row(nx);
    std::iota(row.begin(), row.end(), 0.0);
    blocked_m_forward_row<double, W>(row.data(), nx, m);
    for (index x = 0; x < nx; ++x)
      EXPECT_EQ(row[blocked_m_offset<W>(x, m)], static_cast<double>(x))
          << "m=" << m;
    blocked_m_backward_row<double, W>(row.data(), nx, m);
    for (index x = 0; x < nx; ++x) EXPECT_EQ(row[x], static_cast<double>(x));
  }
}

template <typename V>
void check_blocked_m_matches_reference() {
  constexpr int W = V::width;
  const auto s3 = make_1d3p(0.32);
  const auto s5 = make_1d5p(0.06, 0.2, 0.45);
  for (index m : {1, 2, 3, 8, 16}) {
    const index nx = W * m * 8;
    Grid1D<double> ref(nx, 2), got(nx, 2);
    ref.fill(f1);
    got.fill(f1);
    reference_run(ref, s3, 4);
    blocked_m_run<V, 1>(got, s3, 4, m);
    EXPECT_LE(max_abs_diff(ref, got), 1e-11) << "m=" << m << " W=" << W;
    if (m >= 2) {  // radius-2 stencil needs m >= R
      Grid1D<double> r2(nx, 2), g2(nx, 2);
      r2.fill(f1);
      g2.fill(f1);
      reference_run(r2, s5, 3);
      blocked_m_run<V, 2>(g2, s5, 3, m);
      EXPECT_LE(max_abs_diff(r2, g2), 1e-11) << "m=" << m << " W=" << W;
    }
  }
  // DLT extreme: one block per row.
  const index nx = W * 64;
  Grid1D<double> ref(nx, 1), got(nx, 1);
  ref.fill(f1);
  got.fill(f1);
  reference_run(ref, s3, 5);
  blocked_m_run<V, 1>(got, s3, 5, nx / W);
  EXPECT_LE(max_abs_diff(ref, got), 1e-11);
}

TEST(BlockedM, MatchesReferenceW2) {
  check_blocked_m_matches_reference<Vec<double, 2>>();
}
#if defined(__AVX2__)
TEST(BlockedM, MatchesReferenceAvx2) {
  check_blocked_m_matches_reference<Vec<double, 4>>();
}
#endif
#if defined(__AVX512F__)
TEST(BlockedM, MatchesReferenceAvx512) {
  check_blocked_m_matches_reference<Vec<double, 8>>();
}
#endif

TEST(BlockedM, RejectsBadConfig) {
  auto s = make_1d5p();
  Grid1D<double> g(64, 2);
  g.fill(f1);
  // m < radius
  EXPECT_THROW((blocked_m_run<Vec<double, 4>, 2>(g, s, 1, 1)),
               std::invalid_argument);
  // nx not a multiple of W*m
  Grid1D<double> h(60, 1);
  h.fill(f1);
  auto s3 = make_1d3p();
  EXPECT_THROW((blocked_m_run<Vec<double, 4>, 1>(h, s3, 1, 8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsv
