// Boundary-condition suite: the ghost-fill routines (core/halo.hpp), the
// plan-layer boundary execution, and the StencilSpec runtime-coefficient
// path.
//
// The heart of the suite sweeps every (method, tiling, rank, isa, dtype)
// combination the registry claims x every Boundary condition, and checks
// the plan's result against the boundary-aware scalar oracle
// (reference_run with a BoundarySpec) — both sides read ghost values
// produced by the SAME fill_ghosts, so any divergence is a method bug.
// A radius-2 periodic wrap case regresses the halo-widening class of bug
// (ghosts two cells deep must wrap from two cells inside the far edge).
#include <gtest/gtest.h>

#include <cmath>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

template <typename T>
T f1(index x) {
  return T(std::sin(0.041 * double(x)) + 0.002 * double(x));
}
template <typename T>
T f2(index x, index y) {
  return T(std::sin(0.041 * double(x) - 0.07 * double(y)));
}
template <typename T>
T f3(index x, index y, index z) {
  return T(std::sin(0.041 * double(x) - 0.07 * double(y) + 0.03 * double(z)));
}

// nx a multiple of 256 = W^2 for the widest kernels (float AVX-512), so
// every layout rule accepts the shape at every compiled width and dtype.
constexpr index kNx = 256, kNy = 6, kNz = 4;
// Odd on purpose: frozen-boundary runs exercise the unroll&jam odd tail,
// per-step runs exercise several refresh iterations.
constexpr index kSteps = 5;

// ---- fill_ghosts unit tests -------------------------------------------------

TEST(GhostFill, Periodic1DWrapsBothRadii) {
  for (int r : {1, 2}) {
    Grid1D<double> g(8, r);
    g.fill([](index x) { return double(100 + x); });  // halo garbage too
    fill_ghosts(g, BoundarySpec::uniform(Boundary::kPeriodic), r);
    for (int d = 1; d <= r; ++d) {
      EXPECT_EQ(g.at(-d), g.at(8 - d)) << "left ghost r=" << r << " d=" << d;
      EXPECT_EQ(g.at(7 + d), g.at(d - 1)) << "right ghost r=" << r;
    }
    // Interior untouched.
    for (index x = 0; x < 8; ++x) EXPECT_EQ(g.at(x), double(100 + x));
  }
}

TEST(GhostFill, Neumann1DMirrors) {
  const int r = 2;
  Grid1D<double> g(6, r);
  g.fill([](index x) { return double(x) * 3.0; });
  fill_ghosts(g, BoundarySpec::uniform(Boundary::kNeumann), r);
  EXPECT_EQ(g.at(-1), g.at(0));
  EXPECT_EQ(g.at(-2), g.at(1));
  EXPECT_EQ(g.at(6), g.at(5));
  EXPECT_EQ(g.at(7), g.at(4));
}

TEST(GhostFill, Zero1DZeroesGhostsOnly) {
  Grid1D<double> g(6, 1);
  g.fill([](index) { return 7.0; });
  fill_ghosts(g, BoundarySpec::uniform(Boundary::kZero), 1);
  EXPECT_EQ(g.at(-1), 0.0);
  EXPECT_EQ(g.at(6), 0.0);
  for (index x = 0; x < 6; ++x) EXPECT_EQ(g.at(x), 7.0);
}

TEST(GhostFill, DirichletLeavesEverything) {
  Grid1D<double> g(6, 1);
  g.fill([](index x) { return double(x); });
  fill_ghosts(g, BoundarySpec{}, 1);  // default: all kDirichlet
  EXPECT_EQ(g.at(-1), -1.0);
  EXPECT_EQ(g.at(6), 6.0);
}

TEST(GhostFill, Periodic2DCornersWrapDiagonally) {
  const index nx = 5, ny = 4;
  Grid2D<double> g(nx, ny, 1);
  g.fill([&](index x, index y) { return double(10 * y + x); });
  fill_ghosts(g, BoundarySpec::uniform(Boundary::kPeriodic), 1);
  // Edges wrap...
  EXPECT_EQ(g.at(-1, 0), g.at(nx - 1, 0));
  EXPECT_EQ(g.at(0, -1), g.at(0, ny - 1));
  EXPECT_EQ(g.at(nx, 2), g.at(0, 2));
  EXPECT_EQ(g.at(2, ny), g.at(2, 0));
  // ...and corners wrap in BOTH axes (sequential exchange: the y fill
  // copies rows whose x ghosts are already periodic).
  EXPECT_EQ(g.at(-1, -1), g.at(nx - 1, ny - 1));
  EXPECT_EQ(g.at(nx, ny), g.at(0, 0));
  EXPECT_EQ(g.at(-1, ny), g.at(nx - 1, 0));
}

TEST(GhostFill, MixedAxes2D) {
  const index nx = 5, ny = 4;
  Grid2D<double> g(nx, ny, 1);
  g.fill([&](index x, index y) { return double(10 * y + x); });
  fill_ghosts(g, {.x = Boundary::kPeriodic, .y = Boundary::kNeumann}, 1);
  EXPECT_EQ(g.at(-1, 1), g.at(nx - 1, 1));  // x wraps
  EXPECT_EQ(g.at(2, -1), g.at(2, 0));       // y mirrors
  EXPECT_EQ(g.at(2, ny), g.at(2, ny - 1));
  // Corner: y mirror of a row whose x ghost wrapped.
  EXPECT_EQ(g.at(-1, -1), g.at(nx - 1, 0));
}

TEST(GhostFill, Periodic3DCornerWrapsAllAxes) {
  Grid3D<double> g(4, 3, 3, 1);
  g.fill([](index x, index y, index z) {
    return double(100 * z + 10 * y + x);
  });
  fill_ghosts(g, BoundarySpec::uniform(Boundary::kPeriodic), 1);
  EXPECT_EQ(g.at(-1, -1, -1), g.at(3, 2, 2));
  EXPECT_EQ(g.at(4, 3, 3), g.at(0, 0, 0));
  EXPECT_EQ(g.at(2, -1, 1), g.at(2, 2, 1));
  EXPECT_EQ(g.at(2, 1, -1), g.at(2, 1, 2));
}

// ---- boundary-aware oracle sanity -------------------------------------------

// One periodic reference step of the 3-point average must equal the
// hand-computed circular convolution.
TEST(BoundaryOracle, Periodic1DStepByHand) {
  const index nx = 6;
  const auto s = make_1d3p(1.0 / 3.0);
  Grid1D<double> g(nx, 1);
  g.fill([](index x) { return double(x * x); });
  Grid1D<double> expect(nx, 1);
  for (index x = 0; x < nx; ++x) {
    const double l = double(((x + nx - 1) % nx) * ((x + nx - 1) % nx));
    const double c = double(x * x);
    const double rr = double(((x + 1) % nx) * ((x + 1) % nx));
    expect.at(x) = (l + c + rr) / 3.0;
  }
  reference_run(g, s, 1, BoundarySpec::uniform(Boundary::kPeriodic));
  for (index x = 0; x < nx; ++x)
    EXPECT_NEAR(g.at(x), expect.at(x), 1e-12) << "x=" << x;
}

// ---- full plan sweep: every claimed combo x every boundary ------------------

Options combo_options(Method m, Tiling t, Isa isa, Dtype d, Boundary b) {
  Options o;
  o.method = m;
  o.tiling = t;
  o.isa = isa;
  o.dtype = d;
  o.steps = kSteps;
  o.boundary = BoundarySpec::uniform(b);
  return o;
}

std::string combo_label(Method m, Tiling t, int rank, Isa isa, Dtype d,
                        Boundary b) {
  std::string s = method_name(m);
  s += "+";
  s += tiling_name(t);
  s += " rank=" + std::to_string(rank) + " isa=";
  s += isa_name(isa);
  s += " dtype=";
  s += dtype_name(d);
  s += " bc=";
  s += boundary_name(b);
  return s;
}

template <typename T>
void expect_combo_matches(Method m, Tiling t, int rank, Isa isa, Boundary b) {
  const Options o = combo_options(m, t, isa, dtype_of<T>(), b);
  const std::string label = combo_label(m, t, rank, isa, dtype_of<T>(), b);
  const double tol = accuracy_tolerance<T>(kSteps);
  const BoundarySpec bc = BoundarySpec::uniform(b);
  switch (rank) {
    case 1: {
      const auto s = make_1d3p<T>(0.3);
      Grid1D<T> ref(kNx, 1), g(kNx, 1);
      ref.fill(f1<T>);
      g.fill(f1<T>);
      reference_run(ref, s, kSteps, bc);
      make_plan(shape1d(kNx), s, o).execute(g);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
    case 2: {
      const auto s = make_2d5p<T>(0.5, 0.12, 0.13);
      Grid2D<T> ref(kNx, kNy, 1), g(kNx, kNy, 1);
      ref.fill(f2<T>);
      g.fill(f2<T>);
      reference_run(ref, s, kSteps, bc);
      make_plan(shape2d(kNx, kNy), s, o).execute(g);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
    default: {
      const auto s = make_3d7p<T>();
      Grid3D<T> ref(kNx, kNy, kNz, 1), g(kNx, kNy, kNz, 1);
      ref.fill(f3<T>);
      g.fill(f3<T>);
      reference_run(ref, s, kSteps, bc);
      make_plan(shape3d(kNx, kNy, kNz), s, o).execute(g);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
  }
}

TEST(Boundary, EveryClaimedComboMatchesOracleUnderEveryBoundary) {
  int executed = 0;
  for (Boundary b : all_boundaries())
    for (Method m : all_methods())
      for (Tiling t : all_tilings())
        for (int rank = 1; rank <= 3; ++rank)
          for (Isa isa : runnable_isas())
            for (Dtype d : all_dtypes()) {
              if (!supports(m, t, rank, isa, d, b)) continue;
              if (d == Dtype::kF32)
                expect_combo_matches<float>(m, t, rank, isa, b);
              else
                expect_combo_matches<double>(m, t, rank, isa, b);
              ++executed;
            }
  // All rows claim all four boundaries; at least the scalar-ISA rows must
  // have run everywhere, in both dtypes.
  EXPECT_GE(executed, 4 * 40);
}

// ---- radius-2 periodic wrap (halo-widening regression) ----------------------

// Ghost cells two deep must wrap from two cells inside the far edge; a
// kernel (or scratch buffer) that only honours one halo cell diverges from
// the oracle immediately at the boundary.
TEST(Boundary, Radius2PeriodicWrap1D) {
  const auto s = make_1d5p(0.04, 0.21, 0.47);
  const BoundarySpec bc = BoundarySpec::uniform(Boundary::kPeriodic);
  for (Method m : {Method::kScalar, Method::kAutoVec, Method::kMultiLoad,
                   Method::kReorg, Method::kDlt, Method::kTranspose,
                   Method::kTransposeUJ}) {
    Grid1D<double> ref(kNx, 2), g(kNx, 2);
    ref.fill(f1<double>);
    g.fill(f1<double>);
    reference_run(ref, s, kSteps, bc);
    Options o;
    o.method = m;
    o.steps = kSteps;
    o.boundary = bc;
    make_plan(shape1d(kNx, 2), s, o).execute(g);
    EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<double>(kSteps))
        << method_name(m);
  }
  // The same wrap through both tiling frameworks.
  for (auto [m, t] : {std::pair{Method::kTranspose, Tiling::kTessellate},
                      std::pair{Method::kTransposeUJ, Tiling::kTessellate},
                      std::pair{Method::kDlt, Tiling::kSplit}}) {
    Grid1D<double> ref(kNx, 2), g(kNx, 2);
    ref.fill(f1<double>);
    g.fill(f1<double>);
    reference_run(ref, s, kSteps, bc);
    Options o;
    o.method = m;
    o.tiling = t;
    o.steps = kSteps;
    o.boundary = bc;
    o.threads = 2;
    make_plan(shape1d(kNx, 2), s, o).execute(g);
    EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<double>(kSteps))
        << method_name(m) << "+" << tiling_name(t);
  }
}

// ---- mixed per-axis conditions ----------------------------------------------

TEST(Boundary, MixedPeriodicXNeumannY2D) {
  const auto s = make_2d9p(0.2, 0.11, 0.069);
  const BoundarySpec bc{.x = Boundary::kPeriodic, .y = Boundary::kNeumann};
  Grid2D<double> ref(kNx, kNy, 1), g(kNx, kNy, 1);
  ref.fill(f2<double>);
  g.fill(f2<double>);
  reference_run(ref, s, kSteps, bc);
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = kSteps;
  o.boundary = bc;
  make_plan(shape2d(kNx, kNy), s, o).execute(g);
  EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<double>(kSteps));
}

// ---- semantics of the frozen conditions -------------------------------------

// kZero on a garbage halo must equal kDirichlet on a zeroed halo: the
// enforced fill and the user convention are the same physics.
TEST(Boundary, ZeroEqualsDirichletWithZeroedHalo) {
  const auto s = make_1d3p(0.3);
  Grid1D<double> gz(kNx, 1), gd(kNx, 1);
  gz.fill([](index x) { return x < 0 || x >= kNx ? 999.0 : f1<double>(x); });
  gd.fill([](index x) { return x < 0 || x >= kNx ? 0.0 : f1<double>(x); });
  Options oz;
  oz.steps = kSteps;
  oz.boundary = BoundarySpec::uniform(Boundary::kZero);
  make_plan(shape1d(kNx), s, oz).execute(gz);
  Options od;
  od.steps = kSteps;  // default boundary: kDirichlet
  make_plan(shape1d(kNx), s, od).execute(gd);
  EXPECT_EQ(max_abs_diff(gz, gd), 0.0);
}

// The default (all-kDirichlet) plan path must stay bit-identical to the
// legacy frozen-halo oracle — the seed behaviour is unchanged.
TEST(Boundary, DirichletDefaultIsBitIdenticalToLegacyReference) {
  const auto s = make_2d5p(0.5, 0.12, 0.13);
  Grid2D<double> ref(kNx, kNy, 1), g(kNx, kNy, 1);
  ref.fill(f2<double>);
  g.fill(f2<double>);
  reference_run(ref, s, kSteps);  // legacy overload, frozen halo
  Options o;
  o.method = Method::kScalar;
  o.steps = kSteps;
  make_plan(shape2d(kNx, kNy), s, o).execute(g);
  EXPECT_EQ(max_abs_diff(ref, g), 0.0);
}

// ---- resolution and validation ----------------------------------------------

TEST(Boundary, PerStepBoundaryForcesStepGranularBt) {
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = 16;
  o.bt = 8;
  o.boundary = BoundarySpec::uniform(Boundary::kPeriodic);
  const auto r = resolve_options(shape1d(kNx), 1, o);
  EXPECT_EQ(r.bt, 1);
  EXPECT_EQ(r.boundary.x, Boundary::kPeriodic);  // y/z normalized (rank 1)

  // The even-bt unroll&jam rows resolve bt = 2 (their engines then take the
  // single-step path between ghost refreshes).
  o.method = Method::kTransposeUJ;
  EXPECT_EQ(resolve_options(shape1d(kNx), 1, o).bt, 2);

  // Frozen boundaries keep the user's temporal block.
  o.boundary = BoundarySpec::uniform(Boundary::kZero);
  EXPECT_EQ(resolve_options(shape1d(kNx), 1, o).bt, 8);
}

TEST(Boundary, AxesBeyondRankAreNormalized) {
  Options o;
  o.steps = 1;
  o.boundary = BoundarySpec::uniform(Boundary::kPeriodic);
  const auto r = resolve_options(shape1d(kNx), 1, o);
  EXPECT_EQ(r.boundary.x, Boundary::kPeriodic);
  EXPECT_EQ(r.boundary.y, Boundary::kDirichlet);
  EXPECT_EQ(r.boundary.z, Boundary::kDirichlet);
}

TEST(Boundary, WrapNeedsExtentAtLeastRadius) {
  Options o;
  o.method = Method::kMultiLoad;  // no layout rule on nx
  o.steps = 1;
  o.boundary = BoundarySpec::uniform(Boundary::kPeriodic);
  EXPECT_THROW(resolve_options(shape1d(1, 2), 2, o), ConfigError);
  EXPECT_NO_THROW(resolve_options(shape1d(2, 2), 2, o));
}

TEST(Boundary, NamesRoundTrip) {
  for (Boundary b : all_boundaries())
    EXPECT_EQ(boundary_from_name(boundary_name(b)), b) << boundary_name(b);
  EXPECT_FALSE(boundary_from_name("open").has_value());
  EXPECT_EQ(all_boundaries().size(), 4u);
}

TEST(Boundary, RegistryMasksAreWellFormed) {
  for (const Capability& c : capabilities()) {
    EXPECT_NE(c.boundary_mask, 0u) << method_name(c.method);
    EXPECT_EQ(c.boundary_mask & ~kAllBoundaries, 0u) << method_name(c.method);
    // Every current row handles every boundary (the fill lives at the plan
    // layer, outside the kernels).
    EXPECT_EQ(c.boundary_mask, kAllBoundaries) << method_name(c.method);
  }
  for (Boundary b : all_boundaries())
    EXPECT_TRUE(supports(Method::kTranspose, Tiling::kTessellate, 2,
                         Isa::kAuto, Dtype::kF64, b))
        << boundary_name(b);
}

// ---- StencilSpec: runtime coefficients --------------------------------------

TEST(StencilSpec, CustomCoefficientsMatchTypedFactory) {
  const Shape shape = shape2d(kNx, kNy);
  Options o;
  o.steps = kSteps;
  o.boundary = BoundarySpec::uniform(Boundary::kPeriodic);

  StencilSpec spec{.kind = StencilKind::k2d5p, .coeffs = {0.42, 0.14, 0.15}};
  Plan erased = make_plan(shape, spec, o);
  auto typed = make_plan(shape, make_2d5p(0.42, 0.14, 0.15), o);

  Grid2D<double> ge(kNx, kNy, 1), gt(kNx, kNy, 1);
  ge.fill(f2<double>);
  gt.fill(f2<double>);
  erased.execute(ge);
  typed.execute(gt);
  EXPECT_EQ(max_abs_diff(ge, gt), 0.0);
}

TEST(StencilSpec, EmptyCoeffsAreFactoryDefaults) {
  const Shape shape = shape1d(kNx);
  Plan a = make_plan(shape, StencilSpec{.kind = StencilKind::k1d3p}, {});
  Plan b = make_plan(shape, StencilKind::k1d3p, {});
  Grid1D<double> ga(kNx, 1), gb(kNx, 1);
  ga.fill(f1<double>);
  gb.fill(f1<double>);
  a.execute(ga);
  b.execute(gb);
  EXPECT_EQ(max_abs_diff(ga, gb), 0.0);
}

TEST(StencilSpec, ValidationThrowsStructuredErrors) {
  const Shape shape = shape1d(kNx);
  // Wrong coefficient count.
  EXPECT_THROW(make_plan(shape, StencilSpec{.kind = StencilKind::k1d3p,
                                            .coeffs = {0.1, 0.2}},
                         {}),
               ConfigError);
  // Radius cross-check.
  EXPECT_THROW(
      make_plan(shape, StencilSpec{.kind = StencilKind::k1d3p, .radius = 2},
                {}),
      ConfigError);
  EXPECT_NO_THROW(
      make_plan(shape, StencilSpec{.kind = StencilKind::k1d3p, .radius = 1},
                {}));
}

TEST(StencilSpec, KindHelpersAreConsistent) {
  for (StencilKind k : {StencilKind::k1d3p, StencilKind::k1d5p,
                        StencilKind::k2d5p, StencilKind::k2d9p,
                        StencilKind::k3d7p, StencilKind::k3d27p}) {
    EXPECT_EQ(stencil_kind_from_name(stencil_kind_name(k)), k);
    EXPECT_GE(stencil_kind_rank(k), 1);
    EXPECT_LE(stencil_kind_rank(k), 3);
    EXPECT_GE(stencil_kind_coeff_count(k), 1u);
  }
  EXPECT_EQ(stencil_kind_radius(StencilKind::k1d5p), 2);
  EXPECT_FALSE(stencil_kind_from_name("4d2p").has_value());
}

}  // namespace
}  // namespace tsv
