// Autotuner tests: determinism under cached mode, JSON round-trip of the
// memo cache, legality of tuned blocks on tiny grids, bit-identical results
// between tuned and default plans for both dtypes, and thread-safety of the
// memo cache + trial path under concurrent make_plan (the batched executor
// plans from worker threads).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

template <typename T>
T fill1(index x) {
  return static_cast<T>(0.3 + 1e-3 * static_cast<double>(x % 53));
}

Options tess_options(Tune tune, index steps = 16) {
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = steps;
  o.tune = tune;
  return o;
}

TEST(Tuner, NamesRoundTrip) {
  for (Tune t : {Tune::kOff, Tune::kCached, Tune::kFull})
    EXPECT_EQ(tune_from_name(tune_name(t)), t);
  EXPECT_FALSE(tune_from_name("banana").has_value());
}

TEST(Tuner, CandidatesIncludeDefaultAndRespectPins) {
  Options user;
  user.bx = 512;  // pinned by the user: every candidate must keep it
  const auto cands = tune_candidates(1, 4096, 1, 1, 1, Tiling::kTessellate,
                                     false, 100, user);
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front().bx, 512);  // candidate 0 is the user's own config
  EXPECT_EQ(cands.front().bt, 0);
  for (const TunedBlocks& b : cands) EXPECT_EQ(b.bx, 512);
  EXPECT_GT(cands.size(), 1u) << "unpinned bt should produce alternatives";
}

TEST(Tuner, TrialStepsAreBudgetCapped) {
  // Small grid: trials run two full time blocks.
  EXPECT_EQ(tune_trial_steps(4096, 32, 1000), 64);
  // Huge grid: the budget caps the step count instead.
  EXPECT_LE(tune_trial_steps(index{1} << 30, 128, 1000), 2);
  // Never longer than the real run.
  EXPECT_EQ(tune_trial_steps(4096, 32, 3), 3);
}

TEST(Tuner, CachedModeIsDeterministic) {
  tune_cache_clear();
  const auto s = make_1d3p(0.3);
  const Shape shape = shape1d(2048);
  const auto p1 = make_plan(shape, s, tess_options(Tune::kCached));
  const std::size_t after_first = tune_cache_size();
  EXPECT_GE(after_first, 1u);
  const auto p2 = make_plan(shape, s, tess_options(Tune::kCached));
  EXPECT_EQ(tune_cache_size(), after_first) << "second plan must hit the cache";
  EXPECT_EQ(p1.config().bx, p2.config().bx);
  EXPECT_EQ(p1.config().bt, p2.config().bt);
  EXPECT_EQ(p1.config().tune, Tune::kCached);
}

// A cache hit must never overwrite an explicitly pinned field: the pins are
// part of the key, so pinned and unpinned plans can never alias.
TEST(Tuner, CacheHitNeverOverridesPins) {
  tune_cache_clear();
  const auto s = make_1d3p(0.3);
  Options o = tess_options(Tune::kCached);
  const auto unpinned = make_plan(shape1d(2048), s, o);
  EXPECT_GT(unpinned.config().bx, 0);
  o.bx = 256;  // explicit pin
  const auto pinned = make_plan(shape1d(2048), s, o);
  EXPECT_EQ(pinned.config().bx, 256);
  // And the reverse direction: the unpinned key still serves its own entry.
  o.bx = 0;
  EXPECT_EQ(make_plan(shape1d(2048), s, o).config().bx,
            unpinned.config().bx);
}

TEST(Tuner, JsonRoundTrip) {
  tune_cache_clear();
  TuneKey key;
  key.method = Method::kTranspose;
  key.tiling = Tiling::kTessellate;
  key.rank = 2;
  key.isa = Isa::kAvx2;
  key.dtype = Dtype::kF32;
  key.nx = 1024;
  key.ny = 256;
  key.radius = 1;
  key.threads = 8;
  const TunedBlocks blocks{2048, 32, 0, 8};
  tune_cache_store(key, blocks);

  const std::string json = tune_cache_to_json();
  tune_cache_clear();
  EXPECT_EQ(tune_cache_size(), 0u);
  EXPECT_EQ(tune_cache_from_json(json), 1u);
  const auto hit = tune_cache_lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, blocks);

  EXPECT_THROW(tune_cache_from_json("[{\"method\":\"nope\"}]"),
               std::invalid_argument);
  EXPECT_THROW(tune_cache_from_json("not json"), std::invalid_argument);
  EXPECT_EQ(tune_cache_from_json("[]"), 0u);
  // Partial entries must be rejected loudly, not merged under a
  // default-initialized key (that would silently un-pin the config).
  EXPECT_THROW(tune_cache_from_json("[{}]"), std::invalid_argument);
  EXPECT_THROW(tune_cache_from_json("[{\"bx\":4096}]"),
               std::invalid_argument);
}

TEST(Tuner, JsonImportAcceptsPreBoundaryExports) {
  // Caches exported before the boundary axis existed carry no bc_x/bc_y/
  // bc_z fields; they were tuned under frozen (kDirichlet) halos, so the
  // import must default exactly that — not reject the file.
  tune_cache_clear();
  const std::string legacy =
      "[{\"method\":\"transpose\",\"tiling\":\"tessellate\",\"rank\":1,"
      "\"isa\":\"avx2\",\"dtype\":\"f64\",\"nx\":8192,\"ny\":1,\"nz\":1,"
      "\"radius\":1,\"threads\":4,\"steps\":100,\"pin_bx\":0,\"pin_by\":0,"
      "\"pin_bz\":0,\"pin_bt\":0,\"bx\":2048,\"by\":0,\"bz\":0,\"bt\":8}]";
  EXPECT_EQ(tune_cache_from_json(legacy), 1u);
  TuneKey key;
  key.method = Method::kTranspose;
  key.tiling = Tiling::kTessellate;
  key.rank = 1;
  key.isa = Isa::kAvx2;
  key.dtype = Dtype::kF64;
  key.nx = 8192;
  key.radius = 1;
  key.threads = 4;
  key.steps = 100;
  // Default-constructed boundary == all kDirichlet: the legacy entry must
  // be found under the frozen-halo key and no other.
  const auto hit = tune_cache_lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->bx, 2048);
  key.boundary = BoundarySpec::uniform(Boundary::kPeriodic);
  EXPECT_FALSE(tune_cache_lookup(key).has_value());
  tune_cache_clear();
}

TEST(Tuner, JsonFileRoundTrip) {
  tune_cache_clear();
  TuneKey key;
  key.method = Method::kDlt;
  key.tiling = Tiling::kSplit;
  key.rank = 1;
  key.isa = Isa::kScalar;
  key.dtype = Dtype::kF64;
  key.nx = 4096;
  key.radius = 1;
  key.threads = 2;
  tune_cache_store(key, {1024, 0, 0, 2});

  const std::string path = ::testing::TempDir() + "tsv_tuned.json";
  ASSERT_TRUE(tune_cache_export_json(path));
  tune_cache_clear();
  EXPECT_EQ(tune_cache_import_json(path), 1u);
  EXPECT_TRUE(tune_cache_lookup(key).has_value());
  std::remove(path.c_str());
  EXPECT_THROW(tune_cache_import_json(path), std::invalid_argument);
}

// Tuned blocks must be legal wherever the default heuristics are: a tiny
// grid leaves little blocking freedom, and make_plan must still succeed for
// every tuned tiled capability, with results matching the reference.
TEST(Tuner, TunedBlocksLegalOnTinyGrids) {
  tune_cache_clear();
  const auto s = make_1d3p(0.3);
  const index nx = 256;  // W^2-conforming for every compiled width
  Grid1D<double> ref(nx, 1);
  ref.fill(fill1<double>);
  reference_run(ref, s, 9);
  for (Method m : supported_methods(Tiling::kTessellate, 1)) {
    Options o;
    o.method = m;
    o.tiling = Tiling::kTessellate;
    o.steps = 9;
    o.tune = Tune::kFull;
    Grid1D<double> g(nx, 1);
    g.fill(fill1<double>);
    const auto plan = make_plan(shape1d(nx), s, o);
    EXPECT_GT(plan.config().bx, 0) << method_name(m);
    EXPECT_GT(plan.config().bt, 0) << method_name(m);
    plan.execute(g);
    EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<double>(9))
        << method_name(m);
  }
  {
    Options o;
    o.method = Method::kDlt;
    o.tiling = Tiling::kSplit;
    o.steps = 9;
    o.tune = Tune::kFull;
    Grid1D<double> g(nx, 1);
    g.fill(fill1<double>);
    const auto plan = make_plan(shape1d(nx), s, o);
    plan.execute(g);
    EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<double>(9));
  }
}

// Blocking changes the traversal order of tiles, never the per-cell
// arithmetic: a tuned plan must produce bit-identical results to the
// default plan, for both element types.
template <typename T>
void expect_tuned_bit_identical() {
  tune_cache_clear();
  const auto s = make_1d3p<T>(T(1) / T(3));
  const index nx = 4096;
  Grid1D<T> gd(nx, 1), gt(nx, 1);
  gd.fill(fill1<T>);
  gt.fill(fill1<T>);

  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = 12;
  make_plan(shape1d(nx), s, o).execute(gd);  // fixed-default blocks

  o.tune = Tune::kFull;
  const auto tuned = make_plan(shape1d(nx), s, o);
  tuned.execute(gt);
  EXPECT_EQ(max_abs_diff(gd, gt), T(0))
      << "tuned blocks (bx=" << tuned.config().bx
      << ", bt=" << tuned.config().bt << ") changed the numerics";
}

TEST(Tuner, TunedPlanBitIdenticalToDefaultF64) {
  expect_tuned_bit_identical<double>();
}

TEST(Tuner, TunedPlanBitIdenticalToDefaultF32) {
  expect_tuned_bit_identical<float>();
}

// Concurrency regression (TSan-audited): N threads planning the SAME key
// under kCached must single-flight the trial — the tuner's trial lock
// serializes the search and the losers reuse the winner's result, so the
// memo cache ends with exactly one entry and every plan carries identical
// blocks. Before the single-flight fix this raced lookup-then-trial: every
// thread ran its own timed search, the trials time-shared the cores, and
// whichever noisy winner stored last won the cache.
TEST(Tuner, ConcurrentCachedPlanningSingleFlights) {
  tune_cache_clear();
  const auto s = make_1d3p(0.3);
  const Shape shape = shape1d(2048);
  const Options o = tess_options(Tune::kCached, 8);
  constexpr int kThreads = 8;
  std::vector<ResolvedOptions> cfgs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(
        [&, t] { cfgs[t] = make_plan(shape, s, o).config(); });
  for (auto& t : threads) t.join();
  EXPECT_EQ(tune_cache_size(), 1u)
      << "concurrent same-key planning must run exactly one search";
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(cfgs[t].bx, cfgs[0].bx) << "thread " << t;
    EXPECT_EQ(cfgs[t].bt, cfgs[0].bt) << "thread " << t;
  }
}

// Distinct keys tuned concurrently must all land (no lost updates in the
// memo cache) and stay individually replayable.
TEST(Tuner, ConcurrentDistinctKeysAllLand) {
  tune_cache_clear();
  const auto s = make_1d3p(0.3);
  const index sizes[] = {512, 1024, 2048, 4096};
  std::vector<std::thread> threads;
  for (index nx : sizes)
    threads.emplace_back([&, nx] {
      const auto p = make_plan(shape1d(nx), s, tess_options(Tune::kCached, 8));
      EXPECT_GT(p.config().bx, 0);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(tune_cache_size(), 4u);
  for (index nx : sizes) {  // every key memoized: replans are pure hits
    const std::size_t before = tune_cache_size();
    make_plan(shape1d(nx), s, tess_options(Tune::kCached, 8));
    EXPECT_EQ(tune_cache_size(), before) << "nx=" << nx;
  }
}

// Rank-erased plans tune through the same path.
TEST(Tuner, StencilKindPlansTune) {
  tune_cache_clear();
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = 8;
  o.tune = Tune::kCached;
  const Plan plan = make_plan(shape1d(2048), StencilKind::k1d3p, o);
  EXPECT_GT(plan.config().bx, 0);
  EXPECT_GE(tune_cache_size(), 1u);
  Grid1D<double> g(2048, 1);
  g.fill(fill1<double>);
  Grid1D<double> ref = g;
  reference_run(ref, make_1d3p(), 8);
  plan.execute(g);
  EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<double>(8));
}

}  // namespace
}  // namespace tsv
