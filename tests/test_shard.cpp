// Sharding suite: the outermost-axis decomposition (core/shard.hpp) and the
// wave-driven sharded step loop (ShardedPlan, core/plan.hpp).
//
// The heart of the suite is BIT-identity: for every (method, tiling, rank,
// isa, dtype) combination the registry claims under every boundary
// condition, executing N shards through ShardedPlan must reproduce the
// monolithic Plan::execute result exactly (max_abs_diff == 0), and both
// must stay within the oracle tolerance of the boundary-aware scalar
// reference. A ghost-parity test additionally pins the exchange machinery
// itself at radius 2 for every rank: after the fill + exchange waves, each
// shard's full EXTENDED block (interior + ghost rim) must hold the same
// bits as the corresponding region of a monolithic grid after fill_ghosts.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace tsv {
namespace {

template <typename T>
T f1(index x) {
  return T(std::sin(0.041 * double(x)) + 0.002 * double(x));
}
template <typename T>
T f2(index x, index y) {
  return T(std::sin(0.041 * double(x) - 0.07 * double(y)));
}
template <typename T>
T f3(index x, index y, index z) {
  return T(std::sin(0.041 * double(x) - 0.07 * double(y) + 0.03 * double(z)));
}

// nx a multiple of 256 = W^2 for the widest kernels (float AVX-512), so
// every layout rule accepts the shape at every compiled width and dtype.
// 1D shards split nx itself, so the 1D extent and shard counts are chosen
// to keep every shard extent a multiple of 256 too (1024 -> 512 / 256).
constexpr index kNx = 256, kNy = 13, kNz = 7;
constexpr index kNx1 = 1024;
constexpr index kSteps = 5;

// ---- shard_layout -----------------------------------------------------------

TEST(ShardLayout, EvenAndUnevenSplits) {
  const ShardLayout even = shard_layout(2, 12, {.count = 3});
  EXPECT_EQ(even.axis, 1);
  EXPECT_EQ(even.count, 3);
  ASSERT_EQ(even.base.size(), 3u);
  EXPECT_EQ(even.base[0], 0);
  EXPECT_EQ(even.base[1], 4);
  EXPECT_EQ(even.base[2], 8);
  EXPECT_EQ(even.extent[0], 4);

  // Remainder slabs go to the leading shards, one each.
  const ShardLayout odd = shard_layout(3, 11, {.count = 3});
  EXPECT_EQ(odd.axis, 2);
  EXPECT_EQ(odd.extent[0], 4);
  EXPECT_EQ(odd.extent[1], 4);
  EXPECT_EQ(odd.extent[2], 3);
  EXPECT_EQ(odd.base[2], 8);

  // Bases tile the axis: base[i] + extent[i] == base[i+1].
  for (int i = 0; i + 1 < odd.count; ++i)
    EXPECT_EQ(odd.base[size_t(i)] + odd.extent[size_t(i)],
              odd.base[size_t(i) + 1]);
}

TEST(ShardLayout, DefaultCountClampsToExtent) {
  // count = 0 resolves to the core count but never exceeds the extent.
  const ShardLayout tiny = shard_layout(1, 2, {.count = 0});
  EXPECT_LE(tiny.count, 2);
  EXPECT_GE(tiny.count, 1);
}

TEST(ShardLayout, RejectsInnerAxisAndOversubscription) {
  EXPECT_THROW(shard_layout(2, 8, {.axis = 0, .count = 2}),
               std::invalid_argument);  // x is unit-stride, never split
  EXPECT_THROW(shard_layout(3, 8, {.axis = 1, .count = 2}),
               std::invalid_argument);
  EXPECT_THROW(shard_layout(2, 4, {.count = 5}), std::invalid_argument);
  EXPECT_THROW(shard_layout(4, 8, {.count = 2}), std::invalid_argument);
  // The outermost axis named explicitly is fine.
  EXPECT_EQ(shard_layout(2, 8, {.axis = 1, .count = 2}).count, 2);
}

TEST(ShardLayout, ViolationWhenShardThinnerThanRadius) {
  const ShardLayout l = shard_layout(1, 5, {.count = 3});  // 2, 2, 1
  EXPECT_EQ(shard_violation(l, 1), nullptr);
  EXPECT_NE(shard_violation(l, 2), nullptr);  // extent 1 < radius 2
}

// ---- ShardedGrid: scatter / gather ------------------------------------------

TEST(ShardedGrid, ScatterGatherRoundTrips2D) {
  Grid2D<double> src(8, 9, 1);
  src.fill([](index x, index y) { return double(100 * y + x); });
  ShardedGrid<Grid2D<double>> sg(src, {.count = 3});
  sg.scatter(src);
  // Shard interiors are the slabs; the scatter also installs ghosts
  // (internal faces land on neighbor interior, physical faces on src halo).
  EXPECT_EQ(sg.shard(1).at(2, 0), src.at(2, 3));  // base[1] == 3
  EXPECT_EQ(sg.shard(1).at(2, -1), src.at(2, 2));
  EXPECT_EQ(sg.shard(0).at(4, -1), src.at(4, -1));  // physical halo rides in

  Grid2D<double> out(8, 9, 1);
  out.fill([](index, index) { return -1.0; });
  sg.gather(out);
  EXPECT_EQ(max_abs_diff(src, out), 0.0);
  EXPECT_EQ(out.at(0, -1), -1.0);  // gather leaves dst ghosts alone
}

TEST(ShardedGrid, GeometryMismatchThrows) {
  Grid2D<double> proto(8, 9, 1);
  ShardedGrid<Grid2D<double>> sg(proto, {.count = 2});
  Grid2D<double> other(8, 10, 1);
  EXPECT_THROW(sg.scatter(other), std::invalid_argument);
  EXPECT_THROW(sg.gather(other), std::invalid_argument);
}

// ---- ghost parity: fill + exchange == monolithic fill_ghosts ----------------
//
// After one fill wave and one exchange wave, every shard's full extended
// block must be bitwise equal to the matching region of a monolithic grid
// after fill_ghosts: interior ghosts come from neighbor interior (which IS
// the monolithic interior there), physical split faces and the non-split
// axes go through the same fill code, and the extended-strip exchange
// reproduces the sequential x -> y -> z corner semantics.

template <typename G>
void run_waves(ShardedGrid<G>& sg, const BoundarySpec& bc, int r) {
  for (int i = 0; i < sg.shards(); ++i) sg.fill_shard_ghosts(i, bc, r);
  for (int i = 0; i < sg.shards(); ++i) sg.exchange_shard_ghosts(i, bc, r);
}

void expect_ghost_parity_2d(const BoundarySpec& bc, int r, int count) {
  const index nx = 7, ny = 11;
  Grid2D<double> mono(nx, ny, r);
  mono.fill([](index x, index y) { return double(1000 + 50 * y + x); });
  ShardedGrid<Grid2D<double>> sg(mono, {.count = count});
  sg.scatter(mono);
  fill_ghosts(mono, bc, r);
  run_waves(sg, bc, r);
  for (int i = 0; i < sg.shards(); ++i) {
    const Grid2D<double>& s = sg.shard(i);
    const index b = sg.layout().base[size_t(i)];
    const index e = sg.layout().extent[size_t(i)];
    for (index y = -r; y < e + r; ++y)
      for (index x = -r; x < nx + r; ++x)
        ASSERT_EQ(s.at(x, y), mono.at(x, b + y))
            << "shard " << i << " (" << x << "," << y << ") r=" << r;
  }
}

void expect_ghost_parity_3d(const BoundarySpec& bc, int r, int count) {
  const index nx = 6, ny = 5, nz = 9;
  Grid3D<double> mono(nx, ny, nz, r);
  mono.fill([](index x, index y, index z) {
    return double(10000 + 500 * z + 50 * y + x);
  });
  ShardedGrid<Grid3D<double>> sg(mono, {.count = count});
  sg.scatter(mono);
  fill_ghosts(mono, bc, r);
  run_waves(sg, bc, r);
  for (int i = 0; i < sg.shards(); ++i) {
    const Grid3D<double>& s = sg.shard(i);
    const index b = sg.layout().base[size_t(i)];
    const index e = sg.layout().extent[size_t(i)];
    for (index z = -r; z < e + r; ++z)
      for (index y = -r; y < ny + r; ++y)
        for (index x = -r; x < nx + r; ++x)
          ASSERT_EQ(s.at(x, y, z), mono.at(x, y, b + z))
              << "shard " << i << " (" << x << "," << y << "," << z << ")";
  }
}

TEST(ShardedGrid, GhostParityEveryBoundaryBothRadii2D) {
  for (int r : {1, 2})
    for (int count : {2, 3})
      for (Boundary b : all_boundaries())
        expect_ghost_parity_2d(BoundarySpec::uniform(b), r, count);
}

TEST(ShardedGrid, GhostParityMixedAxes3DRadius2) {
  expect_ghost_parity_3d(
      {.x = Boundary::kPeriodic, .y = Boundary::kNeumann,
       .z = Boundary::kDirichlet}, 2, 3);
  expect_ghost_parity_3d(
      {.x = Boundary::kZero, .y = Boundary::kDirichlet,
       .z = Boundary::kPeriodic}, 2, 2);
  expect_ghost_parity_3d(
      {.x = Boundary::kNeumann, .y = Boundary::kPeriodic,
       .z = Boundary::kNeumann}, 1, 3);
  expect_ghost_parity_3d(
      {.x = Boundary::kDirichlet, .y = Boundary::kZero,
       .z = Boundary::kZero}, 2, 3);
}

// ---- ShardedPlan: bit-identity sweep ----------------------------------------

Options combo_options(Method m, Tiling t, Isa isa, Dtype d,
                      const BoundarySpec& bc) {
  Options o;
  o.method = m;
  o.tiling = t;
  o.isa = isa;
  o.dtype = d;
  o.steps = kSteps;
  o.boundary = bc;
  return o;
}

std::string combo_label(Method m, Tiling t, int rank, Isa isa, Dtype d,
                        Boundary b, int count) {
  std::string s = method_name(m);
  s += "+";
  s += tiling_name(t);
  s += " rank=" + std::to_string(rank) + " isa=";
  s += isa_name(isa);
  s += " dtype=";
  s += dtype_name(d);
  s += " bc=";
  s += boundary_name(b);
  s += " shards=" + std::to_string(count);
  return s;
}

/// Monolithic plan vs ShardedPlan on identical inputs: the sharded result
/// must be BITWISE equal, and both within oracle tolerance.
template <typename T, typename G, typename S>
void expect_sharded_matches(const Shape& shape, const S& s, G& mono, G& init,
                            const Options& o, int count,
                            const std::string& label) {
  make_plan(shape, s, o).execute(mono);

  ShardedGrid<G> sg(init, ShardSpec{.count = count});
  sg.scatter(init);
  const auto plan = make_sharded_plan(shape, s, ShardSpec{.count = count}, o);
  plan.execute(sg);
  G out = init;  // halos carry the initial condition, like mono's
  sg.gather(out);
  EXPECT_EQ(max_abs_diff(mono, out), T(0)) << label;
}

template <typename T>
void expect_combo_matches(Method m, Tiling t, int rank, Isa isa, Boundary b,
                          int count) {
  const Options o = combo_options(m, t, isa, dtype_of<T>(),
                                  BoundarySpec::uniform(b));
  const std::string label = combo_label(m, t, rank, isa, dtype_of<T>(), b,
                                        count);
  const double tol = accuracy_tolerance<T>(kSteps);
  const BoundarySpec bc = BoundarySpec::uniform(b);
  switch (rank) {
    case 1: {
      const auto s = make_1d3p<T>(0.3);
      Grid1D<T> ref(kNx1, 1), g(kNx1, 1), init(kNx1, 1);
      ref.fill(f1<T>);
      g.fill(f1<T>);
      init.fill(f1<T>);
      reference_run(ref, s, kSteps, bc);
      expect_sharded_matches<T>(shape1d(kNx1), s, g, init, o, count, label);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
    case 2: {
      const auto s = make_2d5p<T>(0.5, 0.12, 0.13);
      Grid2D<T> ref(kNx, kNy, 1), g(kNx, kNy, 1), init(kNx, kNy, 1);
      ref.fill(f2<T>);
      g.fill(f2<T>);
      init.fill(f2<T>);
      reference_run(ref, s, kSteps, bc);
      expect_sharded_matches<T>(shape2d(kNx, kNy), s, g, init, o, count,
                                label);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
    default: {
      const auto s = make_3d7p<T>();
      Grid3D<T> ref(kNx, kNy, kNz, 1), g(kNx, kNy, kNz, 1),
          init(kNx, kNy, kNz, 1);
      ref.fill(f3<T>);
      g.fill(f3<T>);
      init.fill(f3<T>);
      reference_run(ref, s, kSteps, bc);
      expect_sharded_matches<T>(shape3d(kNx, kNy, kNz), s, g, init, o, count,
                                label);
      EXPECT_LE(max_abs_diff(ref, g), tol) << label;
      break;
    }
  }
}

TEST(ShardedPlan, EveryClaimedComboBitIdenticalToMonolithic) {
  int executed = 0;
  for (Boundary b : all_boundaries())
    for (Method m : all_methods())
      for (Tiling t : all_tilings())
        for (int rank = 1; rank <= 3; ++rank)
          for (Isa isa : runnable_isas())
            for (Dtype d : all_dtypes()) {
              if (!supports(m, t, rank, isa, d, b)) continue;
              // 1D splits nx itself: shard extents must satisfy the same
              // W^2 layout rules as a monolithic grid, so the counts keep
              // every extent a multiple of 256 (1024 -> 512 / 256).
              const int count = rank == 1 ? (executed % 2 != 0 ? 4 : 2)
                                          : (executed % 2 != 0 ? 3 : 2);
              if (d == Dtype::kF32)
                expect_combo_matches<float>(m, t, rank, isa, b, count);
              else
                expect_combo_matches<double>(m, t, rank, isa, b, count);
              ++executed;
            }
  // All registry rows claim all four boundaries; at least the scalar-ISA
  // rows must have run everywhere, in both dtypes.
  EXPECT_GE(executed, 4 * 40);
}

// ---- mixed physical boundaries across the shard seam ------------------------
//
// The split axis and the non-split axes carry DIFFERENT conditions, so the
// exchange corners mix internal-face data with periodic wraps, Neumann
// mirrors and frozen Dirichlet halos. Checked for both dtypes against the
// monolithic plan (bitwise) and the oracle (tolerance).

template <typename T>
void expect_mixed_2d(const BoundarySpec& bc, Method m, Tiling t, int count) {
  if (!supports(m, t, 2, Isa::kAuto, dtype_of<T>(), bc.x) ||
      !supports(m, t, 2, Isa::kAuto, dtype_of<T>(), bc.y))
    return;
  Options o = combo_options(m, t, Isa::kAuto, dtype_of<T>(), bc);
  const auto s = make_2d5p<T>(0.5, 0.12, 0.13);
  Grid2D<T> ref(kNx, kNy, 1), g(kNx, kNy, 1), init(kNx, kNy, 1);
  ref.fill(f2<T>);
  g.fill(f2<T>);
  init.fill(f2<T>);
  reference_run(ref, s, kSteps, bc);
  const std::string label = std::string("mixed2d ") + method_name(m) + "+" +
                            tiling_name(t) + " x=" + boundary_name(bc.x) +
                            " y=" + boundary_name(bc.y);
  expect_sharded_matches<T>(shape2d(kNx, kNy), s, g, init, o, count, label);
  EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<T>(kSteps)) << label;
}

template <typename T>
void expect_mixed_3d(const BoundarySpec& bc, Method m, Tiling t, int count) {
  for (Boundary b : {bc.x, bc.y, bc.z})
    if (!supports(m, t, 3, Isa::kAuto, dtype_of<T>(), b)) return;
  Options o = combo_options(m, t, Isa::kAuto, dtype_of<T>(), bc);
  const auto s = make_3d7p<T>();
  Grid3D<T> ref(kNx, kNy, kNz, 1), g(kNx, kNy, kNz, 1), init(kNx, kNy, kNz, 1);
  ref.fill(f3<T>);
  g.fill(f3<T>);
  init.fill(f3<T>);
  reference_run(ref, s, kSteps, bc);
  const std::string label = std::string("mixed3d ") + method_name(m) + "+" +
                            tiling_name(t) + " x=" + boundary_name(bc.x) +
                            " y=" + boundary_name(bc.y) +
                            " z=" + boundary_name(bc.z);
  expect_sharded_matches<T>(shape3d(kNx, kNy, kNz), s, g, init, o, count,
                            label);
  EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<T>(kSteps)) << label;
}

template <typename T>
void run_mixed_suite() {
  const BoundarySpec mixes2[] = {
      {.x = Boundary::kPeriodic, .y = Boundary::kNeumann},
      {.x = Boundary::kNeumann, .y = Boundary::kPeriodic},
      {.x = Boundary::kDirichlet, .y = Boundary::kZero},
      {.x = Boundary::kZero, .y = Boundary::kDirichlet},
  };
  const BoundarySpec mixes3[] = {
      {.x = Boundary::kPeriodic, .y = Boundary::kNeumann,
       .z = Boundary::kDirichlet},
      {.x = Boundary::kNeumann, .y = Boundary::kDirichlet,
       .z = Boundary::kPeriodic},
      {.x = Boundary::kZero, .y = Boundary::kPeriodic,
       .z = Boundary::kNeumann},
  };
  for (int count : {2, 3}) {
    for (const BoundarySpec& bc : mixes2) {
      expect_mixed_2d<T>(bc, Method::kScalar, Tiling::kNone, count);
      expect_mixed_2d<T>(bc, Method::kAutoVec, Tiling::kNone, count);
      expect_mixed_2d<T>(bc, Method::kTranspose, Tiling::kTessellate, count);
    }
    for (const BoundarySpec& bc : mixes3) {
      expect_mixed_3d<T>(bc, Method::kScalar, Tiling::kNone, count);
      expect_mixed_3d<T>(bc, Method::kTranspose, Tiling::kTessellate, count);
    }
  }
}

TEST(ShardedPlan, MixedBoundariesAcrossShardSeamF64) {
  run_mixed_suite<double>();
}
TEST(ShardedPlan, MixedBoundariesAcrossShardSeamF32) {
  run_mixed_suite<float>();
}

// ---- radius 2 across the seam -----------------------------------------------
//
// The 1D five-point stencil is the named radius-2 kind: the exchange must
// move TWO slabs of neighbor interior per face, and a periodic wrap two
// cells deep must come from two cells inside the far shard.

template <typename T>
void expect_radius2_matches(Boundary b, Method m, Tiling t, int count) {
  if (!supports(m, t, 1, Isa::kAuto, dtype_of<T>(), b)) return;
  const BoundarySpec bc = BoundarySpec::uniform(b);
  Options o = combo_options(m, t, Isa::kAuto, dtype_of<T>(), bc);
  const auto s = make_1d5p<T>();
  Grid1D<T> ref(kNx1, 2), g(kNx1, 2), init(kNx1, 2);
  ref.fill(f1<T>);
  g.fill(f1<T>);
  init.fill(f1<T>);
  reference_run(ref, s, kSteps, bc);
  const std::string label = std::string("r2 ") + method_name(m) + "+" +
                            tiling_name(t) + " bc=" + boundary_name(b) +
                            " shards=" + std::to_string(count);
  expect_sharded_matches<T>(shape1d(kNx1, 2), s, g, init, o, count, label);
  EXPECT_LE(max_abs_diff(ref, g), accuracy_tolerance<T>(kSteps)) << label;
}

TEST(ShardedPlan, Radius2SeamEveryBoundaryBothDtypes) {
  for (Boundary b : all_boundaries())
    for (int count : {2, 4}) {
      expect_radius2_matches<double>(b, Method::kScalar, Tiling::kNone, count);
      expect_radius2_matches<float>(b, Method::kScalar, Tiling::kNone, count);
      expect_radius2_matches<double>(b, Method::kTranspose,
                                     Tiling::kTessellate, count);
      expect_radius2_matches<float>(b, Method::kTranspose, Tiling::kTessellate,
                                    count);
    }
}

// ---- executor-driven waves --------------------------------------------------

TEST(ShardedPlan, ExecutorWavesBitIdenticalToSerial) {
  const auto s = make_2d5p<double>(0.5, 0.12, 0.13);
  const BoundarySpec bc{.x = Boundary::kPeriodic, .y = Boundary::kNeumann};
  Options o = combo_options(Method::kAutoVec, Tiling::kNone, Isa::kAuto,
                            Dtype::kF64, bc);
  Grid2D<double> init(kNx, kNy, 1);
  init.fill(f2<double>);

  const ShardSpec spec{.count = 3};
  const auto plan = make_sharded_plan(shape2d(kNx, kNy), s, spec, o);

  ShardedGrid<Grid2D<double>> serial(init, spec);
  serial.scatter(init);
  plan.execute(serial);

  Executor ex({.gangs = 2, .threads_per_gang = 1});
  ShardedGrid<Grid2D<double>> waved(init, spec);
  waved.scatter(init);
  plan.execute(waved, ex);

  Grid2D<double> a(kNx, kNy, 1), b(kNx, kNy, 1);
  serial.gather(a);
  waved.gather(b);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);

  // The wave tasks ran through the gangs and are visible in the stats.
  const ExecutorStats st = ex.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GT(st.completed, 0u);
  ASSERT_EQ(st.gangs.size(), 2u);
  std::uint64_t tasks = 0;
  for (const GangStats& g : st.gangs) tasks += g.tasks;
  EXPECT_EQ(tasks, st.completed);
}

// ---- plan validation and edge cases -----------------------------------------

TEST(ShardedPlan, ZeroStepsIsIdentity) {
  const auto s = make_2d5p<double>(0.5, 0.12, 0.13);
  Options o;
  o.steps = 0;
  const auto plan = make_sharded_plan(shape2d(kNx, kNy), s, {.count = 2}, o);
  Grid2D<double> init(kNx, kNy, 1), out(kNx, kNy, 1);
  init.fill(f2<double>);
  out.fill(f2<double>);
  ShardedGrid<Grid2D<double>> sg(init, {.count = 2});
  sg.scatter(init);
  plan.execute(sg);
  sg.gather(out);
  EXPECT_EQ(max_abs_diff(init, out), 0.0);
}

TEST(ShardedPlan, RejectsBadDecompositions) {
  const auto s2 = make_2d5p<double>(0.5, 0.12, 0.13);
  Options o;
  o.steps = 1;
  // Inner axis.
  EXPECT_THROW(
      make_sharded_plan(shape2d(kNx, kNy), s2, {.axis = 0, .count = 2}, o),
      ConfigError);
  // More shards than slabs.
  EXPECT_THROW(
      make_sharded_plan(shape2d(kNx, kNy), s2, {.count = int(kNy) + 1}, o),
      ConfigError);
  // Shards thinner than the radius (1D r=2: 5 slabs over 3 shards -> 2,2,1).
  const auto s1 = make_1d5p<double>();
  EXPECT_THROW(make_sharded_plan(shape1d(5, 2), s1, {.count = 3}, o),
               ConfigError);
  // Rank mismatch between shape and stencil.
  EXPECT_THROW(make_sharded_plan(shape1d(kNx1), s2, {.count = 2}, o),
               ConfigError);
}

TEST(ShardedPlan, RejectsMismatchedShardedGrid) {
  const auto s = make_2d5p<double>(0.5, 0.12, 0.13);
  Options o;
  o.steps = 1;
  const auto plan = make_sharded_plan(shape2d(kNx, kNy), s, {.count = 2}, o);
  Grid2D<double> proto(kNx, kNy, 1);
  ShardedGrid<Grid2D<double>> wrong(proto, {.count = 3});
  EXPECT_THROW(plan.execute(wrong), ConfigError);
}

TEST(ShardedPlan, ShardPlansRunSingleStepsWithCappedTeams) {
  const auto s = make_2d5p<double>(0.5, 0.12, 0.13);
  Options o;
  o.method = Method::kTranspose;
  o.tiling = Tiling::kTessellate;
  o.steps = kSteps;
  const auto plan = make_sharded_plan(
      shape2d(kNx, kNy), s, {.count = 2, .threads_per_shard = 1}, o);
  EXPECT_EQ(plan.steps(), kSteps);
  EXPECT_EQ(plan.shards(), 2);
  for (int i = 0; i < plan.shards(); ++i) {
    EXPECT_EQ(plan.shard_plan(i).config().steps, 1);
    EXPECT_EQ(plan.shard_plan(i).config().threads, 1);
    // The shard plans never see the split-axis condition: the step loop
    // owns every ghost write, so their y boundary is frozen Dirichlet.
    EXPECT_EQ(plan.shard_plan(i).config().boundary.y, Boundary::kDirichlet);
  }
}

}  // namespace
}  // namespace tsv
