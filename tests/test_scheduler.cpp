// Semantics suite for the serving scheduler (core/scheduler.hpp).
//
// The contract under test: the scheduler changes ADMISSION and ORDER, never
// results. Every completed request is bit-identical to the serial plan;
// policy decisions (EDF-within-class, shedding order, tenant quotas,
// coalescing) are asserted deterministically by building queue states under
// pause() and reading back Result::dispatch_seq after resume() — no
// sleep-based ordering guesses, so the suite holds under ASan/UBSan/TSan
// slowdowns.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "tsv/tsv.hpp"

namespace tsv {
namespace {

template <typename T>
T noise(index salt, index lin) {
  return static_cast<T>(0.25 +
                        1e-3 * static_cast<double>((salt * 31 + lin * 7) % 101));
}

Options opts(Method m, Tiling t, index steps) {
  Options o;
  o.method = m;
  o.tiling = t;
  o.steps = steps;
  return o;
}

/// Mirrors the scheduler's (= executor's) option normalization so a serial
/// baseline resolves to the exact plan a gang runs.
Options normalized(Options o, int threads_per_gang) {
  o.dtype = dtype_of<double>();
  o.max_threads = o.max_threads > 0 ? std::min(o.max_threads, threads_per_gang)
                                    : threads_per_gang;
  return o;
}

/// One request's worth of state: an independent 1D grid with salt-keyed
/// contents (distinct salts = distinct content digests = never coalesced;
/// equal salts = coalescing candidates).
struct Req {
  std::unique_ptr<Grid1D<double>> grid;
  std::future<Scheduler::Result> fut;

  explicit Req(index salt, index nx = 512) {
    grid = std::make_unique<Grid1D<double>>(nx, 1);
    grid->fill([salt](index x) { return noise<double>(salt, x); });
  }
};

Grid1D<double> serial_expected(index salt, const Options& o,
                               int threads_per_gang, index nx = 512) {
  Grid1D<double> g(nx, 1);
  g.fill([salt](index x) { return noise<double>(salt, x); });
  make_plan(shape_of(g), StencilSpec{.kind = StencilKind::k1d3p},
            normalized(o, threads_per_gang))
      .execute(g);
  return g;
}

const Options kRun = opts(Method::kTranspose, Tiling::kNone, 4);

// ---------------------------------------------------------------------------
// Histogram arithmetic stands alone: counts, mean, interpolated quantiles.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, QuantilesAndMean) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean_seconds(), 0.0);

  for (int i = 0; i < 900; ++i) h.record(3e-6);   // bucket [2 us, 4 us)
  for (int i = 0; i < 100; ++i) h.record(100e-6); // bucket [64 us, 128 us)
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean_seconds(), (900 * 3e-6 + 100 * 100e-6) / 1000.0, 1e-12);
  // p50 lands in the 3 us bucket, p99 in the 100 us bucket; interpolation
  // stays inside the landing bucket's bounds.
  EXPECT_GE(h.quantile(0.50), 2e-6);
  EXPECT_LE(h.quantile(0.50), 4e-6);
  EXPECT_GE(h.quantile(0.99), 64e-6);
  EXPECT_LE(h.quantile(0.99), 128e-6);
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
  // Degenerate quantiles clamp instead of reading out of range.
  EXPECT_GE(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(1.0), 128e-6);
}

// ---------------------------------------------------------------------------
// The baseline contract: requests complete, results are bit-identical to
// the serial plan, and every counter adds up.
// ---------------------------------------------------------------------------

TEST(Scheduler, CompletesBitIdenticalWithHonestCounters) {
  Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1}});
  constexpr int kN = 8;
  std::vector<Req> reqs;
  for (int i = 0; i < kN; ++i) {
    reqs.emplace_back(i);
    reqs[static_cast<std::size_t>(i)].fut = sched.submit(
        *reqs[static_cast<std::size_t>(i)].grid,
        StencilSpec{.kind = StencilKind::k1d3p}, kRun,
        i % 2 ? ServiceClass::kBatch : ServiceClass::kInteractive);
  }
  for (auto& r : reqs) EXPECT_NO_THROW(r.fut.get());
  sched.wait_idle();

  for (int i = 0; i < kN; ++i) {
    const Grid1D<double> expected =
        serial_expected(i, kRun, sched.executor().threads_per_gang());
    EXPECT_EQ(max_abs_diff(expected, *reqs[static_cast<std::size_t>(i)].grid),
              0.0)
        << "request " << i << " diverged from serial Plan::execute";
  }

  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.admitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.deadline_missed, 0u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.inflight, 0u);
  // Per-class latency: every completion recorded exactly once, in its class.
  EXPECT_EQ(s.latency_of(ServiceClass::kInteractive).count(),
            static_cast<std::uint64_t>(kN / 2));
  EXPECT_EQ(s.latency_of(ServiceClass::kBatch).count(),
            static_cast<std::uint64_t>(kN / 2));
  EXPECT_GT(s.latency_of(ServiceClass::kBatch).mean_seconds(), 0.0);
  // The wrapped executor saw exactly one task per group, nothing queued.
  EXPECT_EQ(s.executor.submitted, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(s.executor.queue_depth, 0u);
  EXPECT_EQ(sched.executor().queue_depth(), 0u);
}

// ---------------------------------------------------------------------------
// Dispatch order. Build the whole queue under pause(), resume, and read the
// policy's decisions back from Result::dispatch_seq — one gang serializes
// dispatch, so the order is exact, not statistical.
// ---------------------------------------------------------------------------

TEST(Scheduler, EdfOrdersInteractiveFirstThenDeadline) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1}});
  sched.pause();
  Req a(1), b(2), c(3), d(4);
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  a.fut = sched.submit(*a.grid, spec, kRun, ServiceClass::kBatch, 1000.0);
  b.fut = sched.submit(*b.grid, spec, kRun, ServiceClass::kBatch, 100.0);
  c.fut = sched.submit(*c.grid, spec, kRun, ServiceClass::kInteractive);
  d.fut = sched.submit(*d.grid, spec, kRun, ServiceClass::kInteractive, 50.0);
  sched.resume();

  // Interactive bypasses batch; within a class EDF, no deadline sorts last.
  EXPECT_EQ(d.fut.get().dispatch_seq, 0u);
  EXPECT_EQ(c.fut.get().dispatch_seq, 1u);
  EXPECT_EQ(b.fut.get().dispatch_seq, 2u);
  EXPECT_EQ(a.fut.get().dispatch_seq, 3u);
}

TEST(Scheduler, FifoControlPreservesAdmissionOrder) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1},
                   .policy = SchedPolicy::kFifo});
  sched.pause();
  Req a(1), b(2), c(3), d(4);
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  a.fut = sched.submit(*a.grid, spec, kRun, ServiceClass::kBatch, 1000.0);
  b.fut = sched.submit(*b.grid, spec, kRun, ServiceClass::kBatch, 100.0);
  c.fut = sched.submit(*c.grid, spec, kRun, ServiceClass::kInteractive);
  d.fut = sched.submit(*d.grid, spec, kRun, ServiceClass::kInteractive, 50.0);
  sched.resume();

  EXPECT_EQ(a.fut.get().dispatch_seq, 0u);
  EXPECT_EQ(b.fut.get().dispatch_seq, 1u);
  EXPECT_EQ(c.fut.get().dispatch_seq, 2u);
  EXPECT_EQ(d.fut.get().dispatch_seq, 3u);
}

// ---------------------------------------------------------------------------
// Tenant quotas: a tenant at its in-flight cap is overtaken by other
// tenants' queued work; its backlog resumes as completions free the quota.
// ---------------------------------------------------------------------------

TEST(Scheduler, TenantQuotaLetsOtherTenantsOvertake) {
  Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1},
                   .max_inflight_per_tenant = 1});
  sched.pause();
  Req a1(1), a2(2), a3(3), b1(4);
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  a1.fut = sched.submit(*a1.grid, spec, kRun, ServiceClass::kBatch, 0, "a");
  a2.fut = sched.submit(*a2.grid, spec, kRun, ServiceClass::kBatch, 0, "a");
  a3.fut = sched.submit(*a3.grid, spec, kRun, ServiceClass::kBatch, 0, "a");
  b1.fut = sched.submit(*b1.grid, spec, kRun, ServiceClass::kBatch, 0, "b");
  // resume dispatches both gangs' worth under ONE lock hold: a1 first
  // (admission order), then b1 — a2/a3 are at tenant a's quota. The peak
  // gauge is therefore exactly 1 before any completion can race it.
  sched.resume();

  EXPECT_EQ(a1.fut.get().dispatch_seq, 0u);
  EXPECT_EQ(b1.fut.get().dispatch_seq, 1u);
  const Scheduler::Result ra2 = a2.fut.get();
  const Scheduler::Result ra3 = a3.fut.get();
  EXPECT_EQ(ra2.dispatch_seq, 2u);
  EXPECT_EQ(ra3.dispatch_seq, 3u);
  sched.wait_idle();
  EXPECT_EQ(sched.stats().peak_tenant_inflight, 1u);
}

// ---------------------------------------------------------------------------
// Coalescing: identical (spec, shape, options, contents) submissions against
// a queued leader become ONE executor task; every waiter's grid gets the
// leader's bits.
// ---------------------------------------------------------------------------

TEST(Scheduler, CoalescesIdenticalSubmissionsToOneExecution) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1}});
  sched.pause();
  constexpr int kWaiters = 4;  // one leader + 3 followers, same salt
  std::vector<Req> reqs;
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  for (int i = 0; i < kWaiters; ++i) {
    reqs.emplace_back(7);
    reqs[static_cast<std::size_t>(i)].fut =
        sched.submit(*reqs[static_cast<std::size_t>(i)].grid, spec, kRun,
                     ServiceClass::kBatch);
  }
  sched.resume();

  std::uint64_t leader_seq = 0;
  for (int i = 0; i < kWaiters; ++i) {
    const Scheduler::Result r = reqs[static_cast<std::size_t>(i)].fut.get();
    if (i == 0) {
      EXPECT_FALSE(r.coalesced);
      leader_seq = r.dispatch_seq;
    } else {
      EXPECT_TRUE(r.coalesced);
      EXPECT_EQ(r.dispatch_seq, leader_seq);  // one group, one dispatch
    }
  }
  const Grid1D<double> expected =
      serial_expected(7, kRun, sched.executor().threads_per_gang());
  for (auto& r : reqs)
    EXPECT_EQ(max_abs_diff(expected, *r.grid), 0.0)
        << "a coalesced waiter is not bit-identical to the leader";

  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.admitted, static_cast<std::uint64_t>(kWaiters));
  EXPECT_EQ(s.coalesced, static_cast<std::uint64_t>(kWaiters - 1));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kWaiters));
  // Exactly ONE task reached the executor, ONE plan-cache probe ran.
  EXPECT_EQ(s.executor.submitted, 1u);
  EXPECT_EQ(s.executor.plan_cache.misses, 1u);
  EXPECT_EQ(s.executor.plan_cache.hits, 0u);

  // A dispatched group's coalescing window is CLOSED: the same contents
  // submitted after the drain start a fresh group and a fresh execution
  // (the input grids now hold advanced state, digests differ anyway; this
  // pins the open_-map erase on dispatch).
  Req late(7);
  late.fut = sched.submit(*late.grid, spec, kRun, ServiceClass::kBatch);
  EXPECT_FALSE(late.fut.get().coalesced);
  EXPECT_EQ(sched.stats().coalesced, static_cast<std::uint64_t>(kWaiters - 1));
}

// ---------------------------------------------------------------------------
// Overload: shedding order (lowest class first among past-deadline queued
// groups), rejection when nothing is sheddable, OverloadError through every
// affected future — all decided at submit, asserted while paused.
// ---------------------------------------------------------------------------

TEST(Scheduler, ShedsPastDeadlineLowestClassFirstThenRejects) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1},
                   .queue_capacity = 2});
  sched.pause();
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  Req b1(1), i1(2), i2(3), i3(4), b2(5);

  b1.fut = sched.submit(*b1.grid, spec, kRun, ServiceClass::kBatch, 1e-6);
  i1.fut = sched.submit(*i1.grid, spec, kRun, ServiceClass::kInteractive, 1e-6);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));  // both overdue

  // Full queue + sheddable batch work: the batch group goes first even
  // though the interactive one is just as dead.
  i2.fut = sched.submit(*i2.grid, spec, kRun, ServiceClass::kInteractive);
  EXPECT_THROW(b1.fut.get(), OverloadError);

  // Full again; only the overdue INTERACTIVE group is sheddable now.
  i3.fut = sched.submit(*i3.grid, spec, kRun, ServiceClass::kInteractive);
  EXPECT_THROW(i1.fut.get(), OverloadError);

  // Full, and nothing queued is past its deadline: the NEWCOMER is refused.
  b2.fut = sched.submit(*b2.grid, spec, kRun, ServiceClass::kBatch);
  EXPECT_THROW(b2.fut.get(), OverloadError);

  SchedulerStats s = sched.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.admitted, 4u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.queued, 2u);

  sched.resume();
  EXPECT_NO_THROW(i2.fut.get());
  EXPECT_NO_THROW(i3.fut.get());
  s = sched.stats();
  EXPECT_EQ(s.completed, 2u);
  // Shed work never reached the executor.
  EXPECT_EQ(s.executor.submitted, 2u);
}

// ---------------------------------------------------------------------------
// Deadline misses count COMPLETED-late requests — distinct from shedding.
// ---------------------------------------------------------------------------

TEST(Scheduler, DeadlineMissAccountsCompletedLateWork) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1}});
  sched.pause();
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  Req late(1), ok(2);
  late.fut = sched.submit(*late.grid, spec, kRun, ServiceClass::kInteractive,
                          0.5);  // 0.5 ms deadline...
  ok.fut = sched.submit(*ok.grid, spec, kRun, ServiceClass::kInteractive);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // ...long gone
  sched.resume();

  const Scheduler::Result r1 = late.fut.get();
  const Scheduler::Result r2 = ok.fut.get();
  EXPECT_TRUE(r1.deadline_missed);
  EXPECT_GE(r1.latency_seconds, 0.0005);
  EXPECT_FALSE(r2.deadline_missed);  // no deadline, can't miss
  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.deadline_missed, 1u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.shed, 0u);
}

// ---------------------------------------------------------------------------
// Failures surface through the future exactly like Executor::submit, and
// count as failed, not completed.
// ---------------------------------------------------------------------------

TEST(Scheduler, ConfigErrorPropagatesThroughFuture) {
  Scheduler sched({.executor = {.gangs = 1, .threads_per_gang = 1}});
  Req bad(1), good(2);
  Options neg = kRun;
  neg.max_threads = -1;  // rejected at resolve, like the serial path
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  bad.fut = sched.submit(*bad.grid, spec, neg);
  EXPECT_THROW(bad.fut.get(), ConfigError);
  good.fut = sched.submit(*good.grid, spec, kRun);
  EXPECT_NO_THROW(good.fut.get());

  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
  // Failed completions record no latency sample.
  EXPECT_EQ(s.latency_of(ServiceClass::kBatch).count(), 1u);
}

// ---------------------------------------------------------------------------
// Destruction drains: paused, with a full queue, the destructor resumes,
// runs everything, and satisfies every future before joining.
// ---------------------------------------------------------------------------

TEST(Scheduler, DestructorResumesAndDrains) {
  constexpr int kJobs = 6;
  std::vector<Req> reqs;
  {
    Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1}});
    sched.pause();
    const StencilSpec spec{.kind = StencilKind::k1d3p};
    for (int i = 0; i < kJobs; ++i) {
      reqs.emplace_back(i);
      reqs[static_cast<std::size_t>(i)].fut =
          sched.submit(*reqs[static_cast<std::size_t>(i)].grid, spec, kRun);
    }
  }  // ~Scheduler: unpause, dispatch all, wait for completion
  for (int i = 0; i < kJobs; ++i) {
    auto& f = reqs[static_cast<std::size_t>(i)].fut;
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_NO_THROW(f.get());
    const Grid1D<double> expected = serial_expected(i, kRun, 1);
    EXPECT_EQ(max_abs_diff(expected, *reqs[static_cast<std::size_t>(i)].grid),
              0.0);
  }
}

// ---------------------------------------------------------------------------
// Concurrent submitters racing the admission path: counters still add up,
// results stay serial-identical. (The TSan job runs this suite.)
// ---------------------------------------------------------------------------

TEST(Scheduler, ConcurrentSubmittersKeepCountersConsistent) {
  Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1}});
  constexpr int kThreads = 4, kPerThread = 6;
  std::vector<Req> reqs;
  for (int i = 0; i < kThreads * kPerThread; ++i) reqs.emplace_back(i);

  std::vector<std::thread> submitters;
  const StencilSpec spec{.kind = StencilKind::k1d3p};
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      for (int i = t; i < kThreads * kPerThread; i += kThreads)
        reqs[static_cast<std::size_t>(i)].fut = sched.submit(
            *reqs[static_cast<std::size_t>(i)].grid, spec, kRun,
            i % 2 ? ServiceClass::kBatch : ServiceClass::kInteractive,
            /*deadline_ms=*/0.0, i % 3 ? "x" : "y");
    });
  for (auto& t : submitters) t.join();
  for (auto& r : reqs) EXPECT_NO_THROW(r.fut.get());
  sched.wait_idle();

  for (int i = 0; i < kThreads * kPerThread; ++i) {
    const Grid1D<double> expected = serial_expected(i, kRun, 1);
    EXPECT_EQ(max_abs_diff(expected, *reqs[static_cast<std::size_t>(i)].grid),
              0.0);
  }
  const SchedulerStats s = sched.stats();
  const auto n = static_cast<std::uint64_t>(kThreads * kPerThread);
  EXPECT_EQ(s.submitted, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.latency_of(ServiceClass::kInteractive).count() +
                s.latency_of(ServiceClass::kBatch).count(),
            n);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.inflight, 0u);
  EXPECT_EQ(s.executor.workspaces.in_flight, 0u);
}

}  // namespace
}  // namespace tsv
