// Iterated 9-point box smoothing of an image — the paper's motivating case
// for *small* time-step counts (§2.2): a global DLT transform cannot be
// amortized over a handful of sweeps, while the register-block transpose
// pays only two in-register passes.
//
// The "image" is a synthetic noisy gradient; we apply a few Gaussian-like
// smoothing iterations (each = normalized 3x3 box) with the DLT baseline and
// with the transpose scheme and report both runtimes.
//
//   ./examples/image_smoothing [width] [height] [iterations]

#include <cstdio>
#include <cstdlib>

#include "tsv/tsv.hpp"

namespace {

double noisy_gradient(tsv::index x, tsv::index y) {
  // Deterministic noise (hash-ish) over a diagonal gradient.
  const unsigned h = static_cast<unsigned>(x * 2654435761u ^ y * 40503u);
  return 0.5 * (x + y) + ((h >> 8) % 1000) * 0.05;
}

double roughness(const tsv::Grid2D<double>& g) {
  // Mean squared difference between horizontal neighbours — drops as the
  // image smooths.
  double acc = 0;
  for (tsv::index y = 0; y < g.ny(); ++y)
    for (tsv::index x = 0; x + 1 < g.nx(); ++x) {
      const double d = g.at(x + 1, y) - g.at(x, y);
      acc += d * d;
    }
  return acc / (static_cast<double>(g.nx() - 1) * g.ny());
}

}  // namespace

int main(int argc, char** argv) {
  const tsv::index w = tsv::round_up(argc > 1 ? std::atoll(argv[1]) : 1920, 64);
  const tsv::index h = argc > 2 ? std::atoll(argv[2]) : 1080;
  const tsv::index iters = argc > 3 ? std::atoll(argv[3]) : 6;

  std::printf("box smoothing of a %td x %td image, %td iterations\n\n", w, h,
              iters);

  // Normalized 3x3 box: all nine weights 1/9.
  const auto box = tsv::make_2d9p(1.0 / 9, 1.0 / 9, 1.0 / 9);

  double before = 0, after = 0;
  double t_dlt = 0, t_transpose = 0;
  for (tsv::Method m : {tsv::Method::kDlt, tsv::Method::kTranspose}) {
    tsv::Grid2D<double> img(w, h, 1);
    img.fill(noisy_gradient);
    before = roughness(img);
    tsv::Timer timer;
    tsv::run(img, box, {.method = m, .isa = tsv::best_isa(), .steps = iters});
    (m == tsv::Method::kDlt ? t_dlt : t_transpose) = timer.seconds();
    after = roughness(img);
  }

  std::printf("roughness: %.2f -> %.2f\n", before, after);
  std::printf("DLT (global transform each way):  %8.4f s\n", t_dlt);
  std::printf("transpose layout (in-register):   %8.4f s\n", t_transpose);
  std::printf("speedup at T=%td: %.2fx  (the DLT transform cannot be "
              "amortized over few sweeps)\n",
              iters, t_dlt / t_transpose);
  return after < before ? 0 : 1;
}
