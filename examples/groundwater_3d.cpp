// 3D groundwater/pressure diffusion in a porous block — the paper's
// "3D-Heat" (7-point) workload in an application costume.
//
// A pressure pulse is injected at a well in the middle of the domain; fixed
// far-field pressure on the boundary. We march the 7-point diffusion stencil
// with the tiled transpose-uj2 scheme and track how the pulse spreads
// (radius where pressure falls to half of the peak).
//
//   ./examples/groundwater_3d [n] [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tsv/tsv.hpp"

int main(int argc, char** argv) {
  const tsv::index n = tsv::round_up(argc > 1 ? std::atoll(argv[1]) : 128, 64);
  const tsv::index ny = argc > 1 ? n : 96, nz = ny;
  const tsv::index steps = argc > 2 ? std::atoll(argv[2]) : 60;
  const double c = 0.1;  // diffusion number per axis (stable: 6c <= 1)

  std::printf("3D groundwater diffusion, %td x %td x %td, %td steps\n", n, ny,
              nz, steps);

  tsv::Grid3D<double> p(n, ny, nz, 1);
  p.fill([&](tsv::index x, tsv::index y, tsv::index z) {
    const bool well = std::abs(x - n / 2) < 2 && std::abs(y - ny / 2) < 2 &&
                      std::abs(z - nz / 2) < 2;
    return well ? 1000.0 : 0.0;
  });
  const auto stencil = tsv::make_3d7p(1.0 - 6.0 * c, c, c, c);

  tsv::Options o;
  o.method = tsv::Method::kTransposeUJ;
  o.tiling = tsv::Tiling::kTessellate;
  o.isa = tsv::best_isa();
  o.steps = steps;
  o.bx = 64;
  o.by = 24;
  o.bz = 24;
  o.bt = 8;
  o.threads = static_cast<int>(tsv::cpu_info().logical_cores);

  tsv::Timer timer;
  tsv::run(p, stencil, o);
  const double sec = timer.seconds();

  // Peak and half-width along x through the well.
  const double peak = p.at(n / 2, ny / 2, nz / 2);
  tsv::index radius = 0;
  while (n / 2 + radius + 1 < n &&
         p.at(n / 2 + radius + 1, ny / 2, nz / 2) > 0.5 * peak)
    ++radius;

  const double gflops = 1e-9 * static_cast<double>(n) * ny * nz * steps *
                        static_cast<double>(stencil.flops_per_point) / sec;
  std::printf("peak pressure %.3f, half-width %td cells after %td steps\n",
              peak, radius, steps);
  std::printf("%.3f s -> %.1f GFLOP/s (transpose-uj2 + tessellate, %d "
              "threads)\n",
              sec, gflops, o.threads);

  // Diffusion must conserve positivity and spread the pulse.
  return (peak > 0 && peak < 1000.0 && radius >= 1) ? 0 : 1;
}
