// 3D heat conduction in an INSULATED brick (Neumann / zero-flux walls) with
// a runtime-configurable conductivity — the second workload frozen halos
// cannot express: no heat may leave the domain, so the temperature must
// equilibrate to the initial mean instead of draining out through the
// boundary.
//
// The stencil is the paper's 3D 7-point heat kernel, but its weights come
// from a runtime StencilSpec (wc = 1 - 6c, face weight c = alpha*dt/dx^2) —
// the path a service would use to plan a user-supplied conductivity without
// recompiling. Zero-gradient walls come from Options::boundary: before
// every step the ghost cells mirror the first interior layer
// (core/halo.hpp), which makes the discrete boundary flux exactly zero.
//
//   ./examples/neumann_heat_plate_3d [n] [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tsv/tsv.hpp"

namespace {

double mean_temperature(const tsv::Grid3D<double>& g) {
  double m = 0;
  for (tsv::index z = 0; z < g.nz(); ++z)
    for (tsv::index y = 0; y < g.ny(); ++y)
      for (tsv::index x = 0; x < g.nx(); ++x) m += g.at(x, y, z);
  return m / (double(g.nx()) * double(g.ny()) * double(g.nz()));
}

std::pair<double, double> min_max(const tsv::Grid3D<double>& g) {
  double lo = g.at(0, 0, 0), hi = lo;
  for (tsv::index z = 0; z < g.nz(); ++z)
    for (tsv::index y = 0; y < g.ny(); ++y)
      for (tsv::index x = 0; x < g.nx(); ++x) {
        lo = std::min(lo, g.at(x, y, z));
        hi = std::max(hi, g.at(x, y, z));
      }
  return {lo, hi};
}

}  // namespace

int main(int argc, char** argv) {
  const tsv::index n = tsv::round_up(argc > 1 ? std::atoll(argv[1]) : 256, 256);
  const tsv::index ny = 64, nz = 48;
  const tsv::index steps = argc > 2 ? std::atoll(argv[2]) : 400;
  const double c = 0.12;  // alpha*dt/dx^2, stable for c <= 1/6

  std::printf("3D heat in an insulated %td x %td x %td brick, %td steps, "
              "c = %.2f\n\n", n, ny, nz, steps, c);

  // One hot octant in a cold brick.
  tsv::Grid3D<double> brick(n, ny, nz, 1);
  brick.fill([&](tsv::index x, tsv::index y, tsv::index z) {
    return (x < n / 2 && y < ny / 2 && z < nz / 2) ? 100.0 : 0.0;
  });

  // Runtime coefficients through the rank-erased StencilSpec path: the 7
  // weights of the 3d7p shape are (wc, wx, wy, wz) factory parameters.
  tsv::StencilSpec spec{.kind = tsv::StencilKind::k3d7p,
                        .coeffs = {1.0 - 6.0 * c, c, c, c}};
  tsv::Options o;
  o.method = tsv::Method::kTranspose;
  o.tiling = tsv::Tiling::kTessellate;
  o.steps = steps;
  o.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kNeumann);
  o.threads = static_cast<int>(tsv::cpu_info().logical_cores);
  tsv::Plan plan = tsv::make_plan(tsv::shape_of(brick), spec, o);
  std::printf("plan: %s + %s, boundary=%s, dtype=%s, threads=%d\n\n",
              tsv::method_name(plan.config().method),
              tsv::tiling_name(plan.config().tiling),
              tsv::boundary_name(plan.config().boundary.x),
              tsv::dtype_name(plan.config().dtype), plan.config().threads);

  const double mean0 = mean_temperature(brick);
  const auto [lo0, hi0] = min_max(brick);
  std::printf("t=0    mean %7.3f  range [%7.3f, %7.3f]\n", mean0, lo0, hi0);

  tsv::Timer total;
  plan.execute(brick);
  const double sec = total.seconds();

  const double mean1 = mean_temperature(brick);
  const auto [lo1, hi1] = min_max(brick);
  std::printf("t=%-4td mean %7.3f  range [%7.3f, %7.3f]\n", steps, mean1, lo1,
              hi1);
  std::printf("\n%.1f M cell-updates/s (%d threads)\n",
              1e-6 * double(n) * double(ny) * double(nz) * double(steps) / sec,
              plan.config().threads);

  // Physics checks for insulated walls: (a) the mean temperature is
  // conserved — the mirror ghosts make the net boundary flux zero and the
  // sum-1 weights conserve interior heat; (b) diffusion contracts the
  // range toward the mean (maximum principle).
  // (the 1e-8 bound leaves room for the naive summation in
  // mean_temperature itself, ~n*eps relative over 786k cells)
  const double drift = std::abs(mean1 - mean0) / mean0;
  const bool ok = drift < 1e-8 && hi1 < hi0 && lo1 > lo0 - 1e-12;
  std::printf("mean drift %.2e, range contracted: %s\n", drift,
              ok ? "yes" : "NO");
  std::printf(ok ? "OK: no heat escaped the insulated brick\n" : "FAILED\n");
  return ok ? 0 : 1;
}
