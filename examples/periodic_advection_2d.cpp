// 2D linear advection on a periodic (torus) domain — the first workload the
// library can run that is impossible with frozen halos: a blob carried by a
// constant wind leaves one edge and re-enters the opposite one.
//
// First-order upwind discretization of  u_t + a u_x + b u_y = 0  with
// positive wind (a, b):
//
//   u_new = (1 - cx - cy) * u + cx * u[x-1] + cy * u[y-1]
//
// where cx = a*dt/dx, cy = b*dt/dy are the CFL numbers (stable for
// cx + cy <= 1). The tap structure is an ASYMMETRIC 2-row stencil — built
// directly from Row2D, not a Table-1 factory — which every vector kernel
// handles: x-taps become shifted vectors, the y-offset row a strided load.
//
// Periodic boundaries come from Options::boundary; the plan refreshes the
// ghost cells from the wrapped interior before every step (core/halo.hpp),
// so the interior kernels never see the boundary. Upwind advection on a
// torus conserves total mass EXACTLY (every cell's outflow is another
// cell's inflow) — the example checks that, and checks the result against
// the boundary-aware scalar oracle.
//
//   ./examples/periodic_advection_2d [n] [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace {

double total_mass(const tsv::Grid2D<double>& g) {
  double m = 0;
  for (tsv::index y = 0; y < g.ny(); ++y)
    for (tsv::index x = 0; x < g.nx(); ++x) m += g.at(x, y);
  return m;
}

void print_midline(const tsv::Grid2D<double>& g, const char* label) {
  std::printf("%-8s|", label);
  const tsv::index step = g.nx() / 48;
  for (tsv::index x = 0; x < g.nx(); x += step) {
    const double v = g.at(x, g.ny() / 2);
    const char c = v > 0.6 ? '#' : v > 0.3 ? '*' : v > 0.1 ? ':' : v > 0.02 ? '.' : ' ';
    std::putchar(c);
  }
  std::printf("|\n");
}

}  // namespace

int main(int argc, char** argv) {
  const tsv::index n = tsv::round_up(argc > 1 ? std::atoll(argv[1]) : 512, 256);
  const tsv::index ny = n / 2;
  const tsv::index steps = argc > 2 ? std::atoll(argv[2]) : 600;
  const double cx = 0.4, cy = 0.2;  // CFL numbers, cx + cy <= 1

  std::printf("2D upwind advection on a %td x %td torus, %td steps, "
              "cx=%.2f cy=%.2f\n\n", n, ny, steps, cx, cy);

  // The asymmetric upwind stencil: row dy=-1 carries the y inflow, row dy=0
  // the x inflow and the center.
  tsv::Stencil2D<1, 2> wind;
  wind.rows[0] = {.dy = -1, .xlo = 0, .xhi = 0, .w = {cy}};
  wind.rows[1] = {.dy = 0, .xlo = -1, .xhi = 0, .w = {cx, 1.0 - cx - cy}};
  wind.flops_per_point = 2 * 3 - 1;

  // A Gaussian blob near the domain edge, so the wrap happens immediately.
  tsv::Grid2D<double> u(n, ny, 1);
  u.fill([&](tsv::index x, tsv::index y) {
    const double dx = double(x - 7 * n / 8) / double(n / 16);
    const double dy = double(y - ny / 2) / double(ny / 8);
    return std::exp(-(dx * dx + dy * dy));
  });
  tsv::Grid2D<double> oracle = u;

  tsv::Options o;
  o.method = tsv::Method::kTranspose;
  o.tiling = tsv::Tiling::kTessellate;
  o.steps = steps / 3;
  o.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kPeriodic);
  o.threads = static_cast<int>(tsv::cpu_info().logical_cores);
  auto plan = tsv::make_plan(tsv::shape_of(u), wind, o);
  std::printf("plan: %s + %s, boundary=%s, threads=%d (bt=%td: one step per "
              "ghost refresh)\n\n",
              tsv::method_name(plan.config().method),
              tsv::tiling_name(plan.config().tiling),
              tsv::boundary_name(plan.config().boundary.x),
              plan.config().threads, plan.config().bt);

  const double mass0 = total_mass(u);
  print_midline(u, "t=0");
  tsv::Timer total;
  for (int phase = 1; phase <= 3; ++phase) {
    plan.execute(u);
    char label[32];
    std::snprintf(label, sizeof label, "t=%td", (steps / 3) * phase);
    print_midline(u, label);
  }
  const double sec = total.seconds();
  const double mass1 = total_mass(u);

  std::printf("\n%.1f M cell-updates/s (%d threads)\n",
              1e-6 * double(n) * double(ny) * double(3 * (steps / 3)) / sec,
              plan.config().threads);
  std::printf("mass: %.12g -> %.12g (relative drift %.2e)\n", mass0, mass1,
              std::abs(mass1 - mass0) / mass0);

  // Cross-check against the boundary-aware scalar oracle.
  tsv::reference_run(oracle, wind, 3 * (steps / 3), o.boundary);
  const double diff = tsv::max_abs_diff(oracle, u);
  std::printf("max |oracle - vectorized| = %.3e\n", diff);

  const bool ok = std::abs(mass1 - mass0) / mass0 < 1e-9 &&
                  diff < tsv::accuracy_tolerance<double>(steps);
  std::printf(ok ? "OK: mass conserved on the torus, oracle matched\n"
                 : "FAILED\n");
  return ok ? 0 : 1;
}
