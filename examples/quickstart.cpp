// Quickstart: the 1D 3-point heat stencil from the paper's Figure 1, run
// with every vectorization scheme, timed and cross-checked.
//
//   ./examples/quickstart [nx] [steps]
//
// Expected output: identical results from every method, with the transpose
// scheme (and its 2-step variant) fastest once the problem spills L2.

#include <cstdio>
#include <cstdlib>

#include "tsv/tsv.hpp"

int main(int argc, char** argv) {
  const tsv::index nx = argc > 1 ? std::atoll(argv[1]) : 1 << 20;
  const tsv::index steps = argc > 2 ? std::atoll(argv[2]) : 100;
  const tsv::index nx_pad = tsv::round_up(nx, 64);  // transpose layout: W^2

  std::printf("1D heat (3-point), nx = %td (padded from %td), T = %td, %s\n\n",
              nx_pad, nx, steps, tsv::isa_name(tsv::best_isa()));

  const auto stencil = tsv::make_1d3p(1.0 / 3.0);
  auto initial = [](tsv::index x) { return x % 97 * 0.01; };

  // Ground truth for the cross-check.
  tsv::Grid1D<double> ref(nx_pad, 1);
  ref.fill(initial);
  tsv::run(ref, stencil, {.method = tsv::Method::kScalar, .steps = steps});

  std::printf("%-14s %10s %10s %12s\n", "method", "time[s]", "GFLOP/s",
              "max|diff|");
  // Every untiled method the capability registry claims for 1D grids —
  // a method added to the library shows up here automatically.
  for (tsv::Method m : tsv::supported_methods(tsv::Tiling::kNone, 1)) {
    if (m == tsv::Method::kScalar) continue;  // that's the reference above
    tsv::Grid1D<double> g(nx_pad, 1);
    g.fill(initial);
    tsv::Timer timer;
    tsv::run(g, stencil, {.method = m, .isa = tsv::best_isa(), .steps = steps});
    const double sec = timer.seconds();
    const double gflops = 1e-9 * static_cast<double>(nx_pad) *
                          static_cast<double>(steps) *
                          static_cast<double>(stencil.flops_per_point) / sec;
    std::printf("%-14s %10.3f %10.2f %12.2e\n", tsv::method_name(m), sec,
                gflops, tsv::max_abs_diff(ref, g));
  }
  std::printf("\nAll methods agree with the scalar reference.\n");
  return 0;
}
