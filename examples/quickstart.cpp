// Quickstart: the 1D 3-point heat stencil from the paper's Figure 1, run
// with every vectorization scheme, timed and cross-checked.
//
//   ./examples/quickstart [nx] [steps] [--dtype float|double]
//                         [--boundary zero|dirichlet|periodic|neumann]
//
// Expected output: identical results from every method, with the transpose
// scheme (and its 2-step variant) fastest once the problem spills L2 — and
// the float runs roughly twice as fast as the double runs (2x lanes).
// Under --boundary periodic|neumann every method runs step-granular with a
// ghost refresh between steps (see docs/TUNING.md) and must still agree
// with the scalar reference executed under the same condition.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tsv/tsv.hpp"

namespace {

template <typename T>
int run_quickstart(tsv::index nx, tsv::index steps, tsv::BoundarySpec bc) {
  // Transpose layout needs nx % W^2; 256 conforms for every width and dtype.
  const tsv::index nx_pad = tsv::round_up(nx, 256);

  std::printf(
      "1D heat (3-point), nx = %td (padded from %td), T = %td, %s %s, "
      "boundary %s\n\n",
      nx_pad, nx, steps, tsv::isa_name(tsv::best_isa()),
      tsv::dtype_name(tsv::dtype_of<T>()), tsv::boundary_name(bc.x));

  const auto stencil = tsv::make_1d3p<T>(1.0 / 3.0);
  auto initial = [](tsv::index x) { return T(x % 97) * T(0.01); };

  // Ground truth for the cross-check, under the same boundary condition.
  tsv::Grid1D<T> ref(nx_pad, 1);
  ref.fill(initial);
  tsv::run(ref, stencil, {.method = tsv::Method::kScalar, .steps = steps,
                          .boundary = bc});

  std::printf("%-14s %10s %10s %12s\n", "method", "time[s]", "GFLOP/s",
              "max|diff|");
  // Every untiled method the capability registry claims for 1D grids —
  // a method added to the library shows up here automatically.
  const double tol = tsv::accuracy_tolerance<T>(steps);
  bool ok = true;
  for (tsv::Method m : tsv::supported_methods(tsv::Tiling::kNone, 1)) {
    if (m == tsv::Method::kScalar) continue;  // that's the reference above
    tsv::Grid1D<T> g(nx_pad, 1);
    g.fill(initial);
    tsv::Timer timer;
    tsv::run(g, stencil, {.method = m, .isa = tsv::best_isa(), .steps = steps,
                          .boundary = bc});
    const double sec = timer.seconds();
    const double gflops = 1e-9 * static_cast<double>(nx_pad) *
                          static_cast<double>(steps) *
                          static_cast<double>(stencil.flops_per_point) / sec;
    const double diff = tsv::max_abs_diff(ref, g);
    std::printf("%-14s %10.3f %10.2f %12.2e\n", tsv::method_name(m), sec,
                gflops, diff);
    ok &= diff <= tol;
  }
  if (ok)
    std::printf("\nAll methods agree with the scalar reference (tol %.1e).\n",
                tol);
  else
    std::printf("\nERROR: a method diverged beyond the %.1e tolerance.\n", tol);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  tsv::index nx = 1 << 20, steps = 100;
  tsv::Dtype dtype = tsv::Dtype::kF64;
  tsv::BoundarySpec bc;  // default: frozen Dirichlet halo
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--dtype") && i + 1 < argc) {
      if (auto d = tsv::dtype_from_name(argv[++i])) {
        dtype = *d;
      } else {
        std::fprintf(stderr, "unknown --dtype %s (want float|double)\n",
                     argv[i]);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--boundary") && i + 1 < argc) {
      if (auto b = tsv::boundary_from_name(argv[++i])) {
        bc = tsv::BoundarySpec::uniform(*b);
      } else {
        std::fprintf(stderr,
                     "unknown --boundary %s "
                     "(want zero|dirichlet|periodic|neumann)\n",
                     argv[i]);
        return 2;
      }
    } else if (positional == 0) {
      nx = std::atoll(argv[i]);
      ++positional;
    } else if (positional == 1) {
      steps = std::atoll(argv[i]);
      ++positional;
    }
  }
  return dtype == tsv::Dtype::kF32 ? run_quickstart<float>(nx, steps, bc)
                                   : run_quickstart<double>(nx, steps, bc);
}
