// 2D heat diffusion on a sharded grid — the sharding subsystem end to end:
// decompose one domain into outermost-axis shards (ShardedGrid), build one
// plan per shard (ShardedPlan), and drive the time loop as waves of
// exchange -> sweep over an Executor's gangs, one single-threaded gang per
// shard.
//
// The domain mixes boundary conditions across the shard seam on purpose —
// periodic in x, insulated (Neumann) in y, so the split faces of the first
// and last shard are PHYSICAL Neumann faces while the interior seams are
// refreshed from the neighboring shard every step. The example is
// self-checking twice over (nonzero exit on failure):
//
//   * bit-identity — the gathered sharded result must equal the monolithic
//     Plan::execute on the same inputs, bit for bit, and both must match
//     the boundary-aware scalar oracle;
//   * conservation — an insulated periodic domain neither creates nor
//     destroys heat, so the total must be preserved to rounding.
//
// Finally it prints the executor's per-gang busy counters: how the wave
// tasks spread over the gangs and what fraction of the wall time each gang
// computed (ExecutorStats::gangs, utilization()).
//
//   ./examples/sharded_heat_2d [n] [steps] [shards]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace {

double total_heat(const tsv::Grid2D<double>& g) {
  double m = 0;
  for (tsv::index y = 0; y < g.ny(); ++y)
    for (tsv::index x = 0; x < g.nx(); ++x) m += g.at(x, y);
  return m;
}

void fill_hotspots(tsv::Grid2D<double>& g) {
  const tsv::index nx = g.nx(), ny = g.ny();
  g.fill([&](tsv::index x, tsv::index y) {
    const double dx1 = double(x - nx / 4), dy1 = double(y - ny / 3);
    const double dx2 = double(x - 3 * nx / 4), dy2 = double(y - 2 * ny / 3);
    return std::exp(-(dx1 * dx1 + dy1 * dy1) / double(nx)) +
           0.5 * std::exp(-(dx2 * dx2 + dy2 * dy2) / double(nx));
  });
}

}  // namespace

int main(int argc, char** argv) {
  const tsv::index n = argc > 1 ? std::atoll(argv[1]) : 256;
  const tsv::index steps = argc > 2 ? std::atoll(argv[2]) : 100;
  const int shards = argc > 3 ? std::atoi(argv[3]) : 4;

  // Weights sum to 1: pure diffusion, total heat is conserved on an
  // insulated domain.
  const auto s = tsv::make_2d5p<double>(0.6, 0.1, 0.1);
  tsv::Options o;
  o.method = tsv::Method::kAutoVec;
  o.steps = steps;
  o.boundary = {.x = tsv::Boundary::kPeriodic, .y = tsv::Boundary::kNeumann};

  tsv::Grid2D<double> init(n, n, 1);
  fill_hotspots(init);
  const double heat0 = total_heat(init);

  // Sharded run: one plan per shard, waves over one gang per shard.
  const tsv::ShardSpec spec{.count = shards};
  const auto plan = tsv::make_sharded_plan(tsv::shape2d(n, n), s, spec, o);
  tsv::ShardedGrid<tsv::Grid2D<double>> sg(init, spec);
  sg.scatter(init);
  tsv::Executor ex({.gangs = plan.shards(), .threads_per_gang = 1});
  tsv::Timer t;
  plan.execute(sg, ex);
  const double secs = t.seconds();
  tsv::Grid2D<double> sharded = init;
  sg.gather(sharded);

  // Monolithic twin + oracle.
  tsv::Grid2D<double> mono = init;
  tsv::make_plan(tsv::shape2d(n, n), s, o).execute(mono);
  tsv::Grid2D<double> oracle = init;
  tsv::reference_run(oracle, s, steps, o.boundary);

  const auto& layout = plan.layout();
  std::printf("sharded_heat_2d: %td x %td, %td steps, %d shards (y slabs:",
              n, n, steps, plan.shards());
  for (int i = 0; i < layout.count; ++i)
    std::printf(" %td", layout.extent[static_cast<std::size_t>(i)]);
  std::printf(")\n");
  std::printf("  %.1f Mpoints/s over %d gangs\n",
              double(n) * double(n) * double(steps) / secs / 1e6, ex.gangs());

  const tsv::ExecutorStats st = ex.stats();
  for (std::size_t i = 0; i < st.gangs.size(); ++i)
    std::printf("  gang %zu: %llu wave tasks, %.1f ms busy\n", i,
                static_cast<unsigned long long>(st.gangs[i].tasks),
                st.gangs[i].busy_seconds * 1e3);
  std::printf("  pool utilization: %.0f%%\n", 100.0 * tsv::utilization(st));

  // ---- self-checks ---------------------------------------------------------
  const double diff = tsv::max_abs_diff(mono, sharded);
  if (diff != 0.0) {
    std::fprintf(stderr, "FAIL: sharded != monolithic (|diff| = %g)\n", diff);
    return 1;
  }
  const double err = tsv::max_abs_diff(oracle, sharded);
  const double tol = tsv::accuracy_tolerance<double>(steps);
  if (err > tol) {
    std::fprintf(stderr, "FAIL: oracle mismatch (%g > %g)\n", err, tol);
    return 1;
  }
  const double heat1 = total_heat(sharded);
  const double drift = std::abs(heat1 - heat0) / heat0;
  if (drift > 1e-12 * double(steps)) {
    std::fprintf(stderr, "FAIL: heat drifted by %.3e (insulated domain)\n",
                 drift);
    return 1;
  }
  std::printf("  OK: bit-identical to monolithic, oracle error %.2e, "
              "heat drift %.2e\n", err, drift);
  return 0;
}
