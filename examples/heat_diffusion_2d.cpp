// 2D heat diffusion on a plate with fixed-temperature edges — the classic
// workload behind the paper's "2D-Heat" (5-point) benchmark.
//
// A hot spot in the middle of a cold plate diffuses under
//   u' = u + alpha * laplacian(u)
// discretized as the 5-point stencil  u_new = (1-4c)*u + c*(N+S+E+W).
// The simulation runs multicore with tessellate tiling + the paper's
// transpose-layout 2-step scheme, and prints the temperature profile along
// the plate's horizontal midline as it evolves.
//
//   ./examples/heat_diffusion_2d [n] [steps]

#include <cstdio>
#include <cstdlib>

#include "tsv/tsv.hpp"

namespace {

void print_midline(const tsv::Grid2D<double>& g, const char* label) {
  std::printf("%-10s|", label);
  const tsv::index step = g.nx() / 32;
  for (tsv::index x = 0; x < g.nx(); x += step) {
    const double v = g.at(x, g.ny() / 2);
    // Crude heat map: space . : * # for increasing temperature.
    const char c = v > 75 ? '#' : v > 25 ? '*' : v > 5 ? ':' : v > 0.5 ? '.' : ' ';
    std::putchar(c);
  }
  std::printf("|\n");
}

}  // namespace

int main(int argc, char** argv) {
  const tsv::index n = tsv::round_up(argc > 1 ? std::atoll(argv[1]) : 1024, 64);
  const tsv::index steps = argc > 2 ? std::atoll(argv[2]) : 400;
  const double c = 0.2;  // alpha*dt/dx^2, stable for c <= 0.25

  std::printf("2D heat diffusion, %td x %td plate, %td steps, c = %.2f\n\n",
              n, n, steps, c);

  tsv::Grid2D<double> plate(n, n, 1);
  // Cold plate (0 degrees), edges held at 0, hot square in the center.
  plate.fill([&](tsv::index x, tsv::index y) {
    const bool hot = std::abs(x - n / 2) < n / 8 && std::abs(y - n / 2) < n / 8;
    return hot ? 100.0 : 0.0;
  });
  const auto stencil = tsv::make_2d5p(1.0 - 4.0 * c, c, c);

  tsv::Options o;
  o.method = tsv::Method::kTransposeUJ;
  o.tiling = tsv::Tiling::kTessellate;
  o.isa = tsv::best_isa();
  o.bx = std::min<tsv::index>(n, 256);
  o.by = std::min<tsv::index>(n, 128);
  o.bt = 16;
  o.threads = static_cast<int>(tsv::cpu_info().logical_cores);

  print_midline(plate, "t=0");
  tsv::Timer total;
  const tsv::index chunk = steps / 4;
  for (int phase = 1; phase <= 4; ++phase) {
    o.steps = chunk;
    tsv::run(plate, stencil, o);
    char label[32];
    std::snprintf(label, sizeof label, "t=%td", chunk * phase);
    print_midline(plate, label);
  }
  const double sec = total.seconds();

  const double gflops = 1e-9 * static_cast<double>(n) * n * (4 * chunk) *
                        static_cast<double>(stencil.flops_per_point) / sec;
  std::printf(
      "\n%td cell-updates in %.3f s -> %.1f GFLOP/s "
      "(transpose-uj2 + tessellate, %d threads)\n",
      n * n * 4 * chunk, sec, gflops, o.threads);

  // Sanity: total heat only leaves through the cold edges, so the center
  // must have cooled and nothing can be hotter than the initial 100.
  double maxv = 0;
  for (tsv::index y = 0; y < n; ++y)
    for (tsv::index x = 0; x < n; ++x) maxv = std::max(maxv, plate.at(x, y));
  std::printf("max temperature now %.2f (started at 100.00)\n", maxv);
  return maxv <= 100.0 ? 0 : 1;
}
