// Multi-tenant service simulation: three tenants with different physics
// share one batched Executor, each running several independent sessions
// over multiple rounds — the serving shape the executor subsystem exists
// for (core/executor.hpp).
//
//   ./service_simulation [rounds]
//
//   tenant A  2D heat plate, custom conductivity (StencilSpec coefficients),
//             zero halo, tessellate+transpose (tiled; may claim a gang team)
//   tenant B  1D smoothing on a ring (periodic), float, transpose layout
//   tenant C  3D insulated diffusion (Neumann), compiler-vectorized sweeps
//
// Self-checking: after all rounds every session must match the
// boundary-aware scalar oracle advanced the same total number of steps
// (exit nonzero otherwise), every submission must have completed, and the
// plan cache must show exactly one construction per distinct configuration
// — rounds beyond the first are pure cache hits reusing pooled workspaces.

#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <vector>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace {

constexpr tsv::index kStepsA = 4, kStepsB = 3, kStepsC = 2;

template <typename G, typename S>
bool check_session(const G& got, G& oracle, const S& stencil,
                   tsv::index total_steps, const tsv::BoundarySpec& bc,
                   const char* tenant) {
  using T = typename S::value_type;
  tsv::reference_run(oracle, stencil, total_steps, bc);
  const double diff = tsv::max_abs_diff(oracle, got);
  const double tol = tsv::accuracy_tolerance<T>(total_steps);
  std::printf("  tenant %s: max|got - oracle| = %.3g (tolerance %.3g)\n",
              tenant, diff, tol);
  if (diff > tol) {
    std::fprintf(stderr, "tenant %s diverged from the oracle\n", tenant);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;

  tsv::Executor ex({.gangs = 4, .threads_per_gang = 2});
  std::printf("service simulation: %d gangs x %d threads, %d rounds\n\n",
              ex.gangs(), ex.threads_per_gang(), rounds);

  // ---- tenant A: 2D heat plate, runtime conductivity, tiled ---------------
  const tsv::StencilSpec spec_a{.kind = tsv::StencilKind::k2d5p,
                                .coeffs = {0.6, 0.11, 0.09}};
  tsv::Options opt_a;
  opt_a.method = tsv::Method::kTranspose;
  opt_a.tiling = tsv::Tiling::kTessellate;
  opt_a.steps = kStepsA;
  opt_a.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kZero);
  std::vector<std::unique_ptr<tsv::Grid2D<double>>> sessions_a;
  for (int s = 0; s < 3; ++s) {
    sessions_a.push_back(std::make_unique<tsv::Grid2D<double>>(256, 32, 1));
    sessions_a.back()->fill([s](tsv::index x, tsv::index y) {
      return 0.2 + 1e-3 * static_cast<double>((x + 3 * y + 7 * s) % 89);
    });
  }

  // ---- tenant B: 1D periodic smoothing, float -----------------------------
  const tsv::StencilSpec spec_b{.kind = tsv::StencilKind::k1d3p,
                                .coeffs = {1.0 / 3.0}};
  tsv::Options opt_b;
  opt_b.method = tsv::Method::kTranspose;
  opt_b.steps = kStepsB;
  opt_b.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kPeriodic);
  std::vector<std::unique_ptr<tsv::Grid1D<float>>> sessions_b;
  for (int s = 0; s < 3; ++s) {
    sessions_b.push_back(std::make_unique<tsv::Grid1D<float>>(512, 1));
    sessions_b.back()->fill([s](tsv::index x) {
      return static_cast<float>(0.1 + 1e-3 * static_cast<double>((5 * x + s) % 71));
    });
  }

  // ---- tenant C: 3D insulated diffusion (Neumann walls) -------------------
  const tsv::StencilSpec spec_c{.kind = tsv::StencilKind::k3d7p,
                                .coeffs = {0.4, 0.1, 0.1, 0.1}};
  tsv::Options opt_c;
  opt_c.method = tsv::Method::kAutoVec;
  opt_c.steps = kStepsC;
  opt_c.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kNeumann);
  std::vector<std::unique_ptr<tsv::Grid3D<double>>> sessions_c;
  for (int s = 0; s < 2; ++s) {
    sessions_c.push_back(std::make_unique<tsv::Grid3D<double>>(48, 10, 8, 1));
    sessions_c.back()->fill([s](tsv::index x, tsv::index y, tsv::index z) {
      return 0.3 + 1e-3 * static_cast<double>((x + 3 * y + 5 * z + 11 * s) % 83);
    });
  }

  // Oracle twins of session 0 of each tenant, advanced serially at the end.
  tsv::Grid2D<double> oracle_a = *sessions_a[0];
  tsv::Grid1D<float> oracle_b = *sessions_b[0];
  tsv::Grid3D<double> oracle_c = *sessions_c[0];

  // ---- rounds: every tenant submits every session, then the batch drains --
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::future<void>> futs;
    for (auto& g : sessions_a) futs.push_back(ex.submit(*g, spec_a, opt_a));
    for (auto& g : sessions_b) futs.push_back(ex.submit(*g, spec_b, opt_b));
    for (auto& g : sessions_c) futs.push_back(ex.submit(*g, spec_c, opt_c));
    for (auto& f : futs) f.get();  // rethrows any ConfigError
  }

  const tsv::ExecutorStats st = ex.stats();
  std::printf("submitted %llu, completed %llu, failed %llu\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.failed));
  std::printf(
      "plan cache: %llu hits / %llu misses (%zu entries); workspaces: %llu "
      "created, %llu reused\n\n",
      static_cast<unsigned long long>(st.plan_cache.hits),
      static_cast<unsigned long long>(st.plan_cache.misses),
      st.plan_cache.entries, static_cast<unsigned long long>(st.workspaces.created),
      static_cast<unsigned long long>(st.workspaces.reused));

  bool ok = st.failed == 0 && st.completed == st.submitted;
  // Three distinct configurations => exactly three plan constructions, no
  // matter how many sessions, rounds or racing workers.
  if (st.plan_cache.misses != 3) {
    std::fprintf(stderr, "expected 3 plan-cache misses, saw %llu\n",
                 static_cast<unsigned long long>(st.plan_cache.misses));
    ok = false;
  }
  if (st.workspaces.in_flight != 0) {
    std::fprintf(stderr, "workspace leak: %zu still in flight\n",
                 st.workspaces.in_flight);
    ok = false;
  }

  const auto total = [rounds](tsv::index per) { return rounds * per; };
  ok &= check_session(*sessions_a[0], oracle_a,
                      tsv::make_2d5p(0.6, 0.11, 0.09), total(kStepsA),
                      opt_a.boundary, "A (2D heat, tiled)");
  ok &= check_session(*sessions_b[0], oracle_b, tsv::make_1d3p<float>(1.0 / 3.0),
                      total(kStepsB), opt_b.boundary, "B (1D periodic, f32)");
  ok &= check_session(*sessions_c[0], oracle_c,
                      tsv::make_3d7p(0.4, 0.1, 0.1, 0.1), total(kStepsC),
                      opt_c.boundary, "C (3D Neumann)");

  std::printf("\n%s\n", ok ? "service simulation: OK" : "service simulation: FAILED");
  return ok ? 0 : 1;
}
