// Multi-tenant service simulation: three tenants with different physics and
// different SLOs share one deadline-aware Scheduler (core/scheduler.hpp)
// over multiple rounds — the serving shape the scheduler subsystem exists
// for, on top of the batched Executor it wraps.
//
//   ./service_simulation [rounds]
//
//   tenant A  2D heat plate, custom conductivity (StencilSpec coefficients),
//             zero halo, tessellate+transpose — INTERACTIVE, 250 ms deadline
//   tenant B  1D smoothing on a ring (periodic), float, transpose layout —
//             INTERACTIVE; a dashboard duplicate of session 0 rides along
//             every round and must coalesce onto the queued original
//   tenant C  3D insulated diffusion (Neumann), compiler-vectorized — BATCH;
//             round 0 carries an impossible 1 us deadline, so exactly its
//             two sessions must complete late and be counted as misses
//
// Each round is built under pause() and released with resume(): admission
// decisions (coalescing, quota) become deterministic, so the demo can
// SELF-CHECK the serving layer exactly — coalesced == rounds, deadline
// misses == 2, nothing shed, per-tenant in-flight never above the quota —
// on top of the physics: after all rounds every session must match the
// boundary-aware scalar oracle advanced the same total number of steps,
// and the plan cache must show exactly one construction per distinct
// configuration (the coalesced duplicate triggers none).
//
// The run ends with one observability scrape (core/metrics.hpp): the final
// Prometheus exposition is printed, three conservation invariants are
// spot-checked by hand, and the full metrics_check_invariants audit must
// come back empty — docs/OBSERVABILITY.md documents every exported family.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "tsv/kernels/reference.hpp"
#include "tsv/tsv.hpp"

namespace {

constexpr tsv::index kStepsA = 4, kStepsB = 3, kStepsC = 2;

template <typename G, typename S>
bool check_session(const G& got, G& oracle, const S& stencil,
                   tsv::index total_steps, const tsv::BoundarySpec& bc,
                   const char* tenant) {
  using T = typename S::value_type;
  tsv::reference_run(oracle, stencil, total_steps, bc);
  const double diff = tsv::max_abs_diff(oracle, got);
  const double tol = tsv::accuracy_tolerance<T>(total_steps);
  std::printf("  tenant %s: max|got - oracle| = %.3g (tolerance %.3g)\n",
              tenant, diff, tol);
  if (diff > tol) {
    std::fprintf(stderr, "tenant %s diverged from the oracle\n", tenant);
    return false;
  }
  return true;
}

void drain(std::vector<std::future<tsv::Scheduler::Result>>& futs) {
  for (auto& f : futs) f.get();  // rethrows ConfigError / OverloadError
  futs.clear();
}

// ---- chaos round ----------------------------------------------------------
// Fault tolerance with EXACT accounting. Three transients are injected with
// COUNT triggers (fire on the first N passes through the point, independent
// of the rng seed — so every counter below is a hard assertion on any
// machine), one session is cancelled while queued, and one is admitted with
// an already-spent wall-clock budget:
//
//   workspace.alloc  count=2 \  each fire surfaces as TransientError and is
//   executor.dispatch count=1 /  absorbed by the scheduler's retry budget
//
// Ledger: 6 submitted = 4 completed + 1 cancelled + 1 timed out; retries
// exactly 3, budget never exhausted; the two failed sessions' grids stay
// bit-untouched (both faults strike before execution mutates anything) and
// the four survivors land bit-identical to a fault-free serial run.
bool chaos_round() {
  constexpr int kSessions = 4;
  constexpr tsv::index kNx = 512, kSteps = 4;
  std::printf(
      "chaos round: 3 count-triggered transients, 1 cancel, 1 zero budget\n");

  tsv::FaultInjector& fi = tsv::FaultInjector::instance();
  fi.reset();
  fi.arm("workspace.alloc", {.count = 2});   // arm() force-enables injection
  fi.arm("executor.dispatch", {.count = 1});

  const tsv::StencilSpec spec{.kind = tsv::StencilKind::k1d3p};
  tsv::Options o;
  o.method = tsv::Method::kTranspose;
  o.steps = kSteps;
  o.max_threads = 1;

  // kSessions survivors + the cancel victim + the timeout victim, all with
  // distinct contents so nothing coalesces; `inputs` keeps pristine copies
  // for the untouched checks and the serial baseline.
  std::vector<std::unique_ptr<tsv::Grid1D<double>>> grids;
  std::vector<tsv::Grid1D<double>> inputs;
  for (int s = 0; s < kSessions + 2; ++s) {
    grids.push_back(std::make_unique<tsv::Grid1D<double>>(kNx, 1));
    grids.back()->fill([s](tsv::index x) {
      return 0.25 + 1e-3 * static_cast<double>((13 * x + 7 * s) % 101);
    });
    inputs.push_back(*grids.back());
  }

  bool ok = true;
  tsv::Scheduler sched({.executor = {.gangs = 2, .threads_per_gang = 1},
                        .retry_budget = 8,
                        .retry_backoff_ms = 0.05,
                        .retry_backoff_max_ms = 0.5});
  sched.pause();  // queue the whole round, then release: deterministic fate
  std::vector<std::future<tsv::Scheduler::Result>> futs;
  for (int s = 0; s < kSessions; ++s)
    futs.push_back(sched.submit(*grids[s], spec, o,
                                tsv::ServiceClass::kInteractive,
                                /*deadline_ms=*/0.0, "chaos"));
  tsv::CancelToken quit = tsv::CancelToken::make();
  auto cancel_fut =
      sched.submit({tsv::Scheduler::GridRef{grids[kSessions].get()}, spec, o,
                    tsv::ServiceClass::kInteractive, /*deadline_ms=*/0.0,
                    "chaos", /*timeout_ms=*/0.0, quit});
  auto timeout_fut =
      sched.submit({tsv::Scheduler::GridRef{grids[kSessions + 1].get()}, spec,
                    o, tsv::ServiceClass::kBatch, /*deadline_ms=*/0.0,
                    "chaos", /*timeout_ms=*/0.001});
  quit.cancel();  // cancelled while queued: pruned at dispatch, never run
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // budget spent
  sched.resume();

  for (auto& f : futs) {
    try {
      f.get();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos: survivor failed: %s\n", e.what());
      ok = false;
    }
  }
  try {
    cancel_fut.get();
    std::fprintf(stderr, "chaos: cancelled session completed\n");
    ok = false;
  } catch (const tsv::CancelledError&) {
  }
  try {
    timeout_fut.get();
    std::fprintf(stderr, "chaos: zero-budget session completed\n");
    ok = false;
  } catch (const tsv::TimeoutError&) {
  }

  const tsv::SchedulerStats st = sched.stats();
  std::printf(
      "  submitted %llu: completed %llu, cancelled %llu, timed out %llu "
      "(retries %llu, exhausted %llu)\n",
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.cancelled),
      static_cast<unsigned long long>(st.timed_out),
      static_cast<unsigned long long>(st.retries),
      static_cast<unsigned long long>(st.retry_exhausted));
  const bool ledger =
      st.submitted == kSessions + 2 && st.completed == kSessions &&
      st.failed == 2 && st.cancelled == 1 && st.timed_out == 1 &&
      st.retries == 3 && st.retry_exhausted == 0 && st.coalesced == 0 &&
      st.shed == 0 && st.rejected == 0 &&
      st.executor.workspaces.in_flight == 0;
  if (!ledger) {
    std::fprintf(stderr, "chaos: serving ledger does not balance\n");
    ok = false;
  }

  // Disarm, then hold the service to its word: failed sessions untouched,
  // survivors bit-identical to a fault-free serial run of the same plan.
  fi.reset();
  fi.set_enabled(false);
  for (int s = kSessions; s < kSessions + 2; ++s)
    if (tsv::max_abs_diff(*grids[static_cast<std::size_t>(s)],
                          inputs[static_cast<std::size_t>(s)]) != 0.0) {
      std::fprintf(stderr, "chaos: failed session %d was mutated\n", s);
      ok = false;
    }
  for (int s = 0; s < kSessions; ++s) {
    tsv::Grid1D<double>& expect = inputs[static_cast<std::size_t>(s)];
    tsv::make_plan(tsv::shape_of(expect), spec, o).execute(expect);
    if (tsv::max_abs_diff(*grids[static_cast<std::size_t>(s)], expect) != 0.0) {
      std::fprintf(stderr, "chaos: survivor %d not bit-identical\n", s);
      ok = false;
    }
  }
  std::printf("  retried work bit-identical, failed sessions untouched\n\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 3;

  tsv::Scheduler sched({.executor = {.gangs = 4, .threads_per_gang = 2},
                        .queue_capacity = 64,
                        .max_inflight_per_tenant = 2});
  std::printf(
      "service simulation: %d gangs x %d threads, %d rounds, "
      "tenant quota 2\n\n",
      sched.executor().gangs(), sched.executor().threads_per_gang(), rounds);

  // ---- tenant A: 2D heat plate, runtime conductivity, tiled ---------------
  const tsv::StencilSpec spec_a{.kind = tsv::StencilKind::k2d5p,
                                .coeffs = {0.6, 0.11, 0.09}};
  tsv::Options opt_a;
  opt_a.method = tsv::Method::kTranspose;
  opt_a.tiling = tsv::Tiling::kTessellate;
  opt_a.steps = kStepsA;
  opt_a.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kZero);
  std::vector<std::unique_ptr<tsv::Grid2D<double>>> sessions_a;
  for (int s = 0; s < 3; ++s) {
    sessions_a.push_back(std::make_unique<tsv::Grid2D<double>>(256, 32, 1));
    sessions_a.back()->fill([s](tsv::index x, tsv::index y) {
      return 0.2 + 1e-3 * static_cast<double>((x + 3 * y + 7 * s) % 89);
    });
  }

  // ---- tenant B: 1D periodic smoothing, float -----------------------------
  const tsv::StencilSpec spec_b{.kind = tsv::StencilKind::k1d3p,
                                .coeffs = {1.0f / 3.0f}};
  tsv::Options opt_b;
  opt_b.method = tsv::Method::kTranspose;
  opt_b.steps = kStepsB;
  opt_b.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kPeriodic);
  std::vector<std::unique_ptr<tsv::Grid1D<float>>> sessions_b;
  for (int s = 0; s < 3; ++s) {
    sessions_b.push_back(std::make_unique<tsv::Grid1D<float>>(512, 1));
    sessions_b.back()->fill([s](tsv::index x) {
      return static_cast<float>(0.1 + 1e-3 * static_cast<double>((5 * x + s) % 71));
    });
  }

  // ---- tenant C: 3D insulated diffusion (Neumann walls) -------------------
  const tsv::StencilSpec spec_c{.kind = tsv::StencilKind::k3d7p,
                                .coeffs = {0.4, 0.1, 0.1, 0.1}};
  tsv::Options opt_c;
  opt_c.method = tsv::Method::kAutoVec;
  opt_c.steps = kStepsC;
  opt_c.boundary = tsv::BoundarySpec::uniform(tsv::Boundary::kNeumann);
  std::vector<std::unique_ptr<tsv::Grid3D<double>>> sessions_c;
  for (int s = 0; s < 2; ++s) {
    sessions_c.push_back(std::make_unique<tsv::Grid3D<double>>(48, 10, 8, 1));
    sessions_c.back()->fill([s](tsv::index x, tsv::index y, tsv::index z) {
      return 0.3 + 1e-3 * static_cast<double>((x + 3 * y + 5 * z + 11 * s) % 83);
    });
  }

  // Oracle twins of session 0 of each tenant, advanced serially at the end.
  tsv::Grid2D<double> oracle_a = *sessions_a[0];
  tsv::Grid1D<float> oracle_b = *sessions_b[0];
  tsv::Grid3D<double> oracle_c = *sessions_c[0];

  // ---- rounds -------------------------------------------------------------
  // pause() -> submit the round -> resume(): every submission of a round is
  // queued before any dispatches, so the dashboard duplicate ALWAYS finds
  // tenant B's session 0 still queued and coalesces onto it, every round.
  bool ok = true;
  std::vector<std::future<tsv::Scheduler::Result>> futs;
  for (int r = 0; r < rounds; ++r) {
    sched.pause();
    for (auto& g : sessions_a)
      futs.push_back(sched.submit(*g, spec_a, opt_a,
                                  tsv::ServiceClass::kInteractive,
                                  /*deadline_ms=*/250.0, "tenant-a"));
    for (auto& g : sessions_b)
      futs.push_back(sched.submit(*g, spec_b, opt_b,
                                  tsv::ServiceClass::kInteractive,
                                  /*deadline_ms=*/0.0, "tenant-b"));
    // Round 0's batch work carries a deadline that already passed when it
    // was admitted: it still completes (shedding only happens under queue
    // pressure), but must be accounted as missed — exactly 2 sessions.
    const double deadline_c = r == 0 ? 0.001 : 0.0;
    for (auto& g : sessions_c)
      futs.push_back(sched.submit(*g, spec_c, opt_c,
                                  tsv::ServiceClass::kBatch, deadline_c,
                                  "tenant-c"));
    // The dashboard duplicate: same stencil, options and CONTENTS as the
    // queued session 0 of tenant B — served by one execution, fanned out.
    tsv::Grid1D<float> dup = *sessions_b[0];
    auto dup_fut = sched.submit(dup, spec_b, opt_b,
                                tsv::ServiceClass::kInteractive,
                                /*deadline_ms=*/0.0, "dashboard");
    sched.resume();
    drain(futs);
    const tsv::Scheduler::Result dup_r = dup_fut.get();
    if (!dup_r.coalesced || tsv::max_abs_diff(dup, *sessions_b[0]) != 0.0f) {
      std::fprintf(stderr,
                   "round %d: dashboard duplicate not coalesced "
                   "bit-identically\n", r);
      ok = false;
    }
  }

  const tsv::SchedulerStats st = sched.stats();
  std::printf("submitted %llu (coalesced %llu), completed %llu, failed %llu, "
              "shed %llu, missed %llu\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.coalesced),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.failed),
              static_cast<unsigned long long>(st.shed + st.rejected),
              static_cast<unsigned long long>(st.deadline_missed));
  for (int c = 0; c < tsv::kServiceClasses; ++c) {
    const auto& h = st.latency[static_cast<std::size_t>(c)];
    std::printf("  %-12s %llu done, p50 %.2f ms, p99 %.2f ms\n",
                tsv::service_class_name(static_cast<tsv::ServiceClass>(c)),
                static_cast<unsigned long long>(h.count()),
                h.quantile(0.5) * 1e3, h.quantile(0.99) * 1e3);
  }
  std::printf(
      "plan cache: %llu hits / %llu misses (%zu entries); workspaces: %llu "
      "created, %llu reused\n\n",
      static_cast<unsigned long long>(st.executor.plan_cache.hits),
      static_cast<unsigned long long>(st.executor.plan_cache.misses),
      st.executor.plan_cache.entries,
      static_cast<unsigned long long>(st.executor.workspaces.created),
      static_cast<unsigned long long>(st.executor.workspaces.reused));

  // ---- serving-layer self-checks ------------------------------------------
  ok = ok && st.failed == 0 && st.completed == st.admitted &&
       st.shed == 0 && st.rejected == 0;
  if (st.coalesced != static_cast<std::uint64_t>(rounds)) {
    std::fprintf(stderr, "expected %d coalesced duplicates, saw %llu\n",
                 rounds, static_cast<unsigned long long>(st.coalesced));
    ok = false;
  }
  if (st.deadline_missed != 2) {  // tenant C's two round-0 sessions, no more
    std::fprintf(stderr, "expected 2 deadline misses, saw %llu\n",
                 static_cast<unsigned long long>(st.deadline_missed));
    ok = false;
  }
  if (st.peak_tenant_inflight > 2) {
    std::fprintf(stderr, "tenant quota breached: peak in-flight %zu > 2\n",
                 st.peak_tenant_inflight);
    ok = false;
  }
  // Three distinct configurations => exactly three plan constructions, no
  // matter how many sessions, rounds or racing workers — and the coalesced
  // duplicate never probed the cache at all.
  if (st.executor.plan_cache.misses != 3) {
    std::fprintf(stderr, "expected 3 plan-cache misses, saw %llu\n",
                 static_cast<unsigned long long>(st.executor.plan_cache.misses));
    ok = false;
  }
  if (st.executor.workspaces.in_flight != 0) {
    std::fprintf(stderr, "workspace leak: %zu still in flight\n",
                 st.executor.workspaces.in_flight);
    ok = false;
  }

  // ---- observability: one scrape of the whole serving stack ---------------
  // Idle invariants span BOTH layers: the scheduler's completion hook runs
  // inside the executor task body, so quiesce the scheduler AND its executor
  // before asserting the strict identities.
  sched.wait_idle();
  sched.executor().wait_idle();
  tsv::MetricsRegistry reg;
  reg.attach(&sched);
  const tsv::MetricsSnapshot m = reg.snapshot();
  std::printf("---- final Prometheus scrape ----\n%s----\n",
              tsv::metrics_to_prometheus(m).c_str());

  // Three spot-checked conservation invariants, by hand so the example shows
  // WHAT an operator should alert on...
  const tsv::SchedulerStats& ms = m.scheduler;
  std::uint64_t latency_n = 0;
  for (const auto& h : ms.latency) latency_n += h.count();
  struct {
    const char* what;
    bool holds;
  } invariants[] = {
      {"admission balances: admitted + rejected == submitted",
       ms.admitted + ms.rejected == ms.submitted},
      {"every completion is timed: sum(latency counts) == completed",
       latency_n == ms.completed},
      {"executor drained: completed + failed == submitted, 0 in flight",
       ms.executor.completed + ms.executor.failed == ms.executor.submitted &&
           ms.executor.workspaces.in_flight == 0},
  };
  for (const auto& inv : invariants) {
    std::printf("invariant: %-60s %s\n", inv.what, inv.holds ? "OK" : "VIOLATED");
    ok &= inv.holds;
  }
  // ...then the full audit: every always-true AND idle-only identity.
  for (const std::string& v : tsv::metrics_check_invariants(m, /*idle=*/true)) {
    std::fprintf(stderr, "metrics invariant violated: %s\n", v.c_str());
    ok = false;
  }

  const auto total = [rounds](tsv::index per) { return rounds * per; };
  ok &= check_session(*sessions_a[0], oracle_a,
                      tsv::make_2d5p(0.6, 0.11, 0.09), total(kStepsA),
                      opt_a.boundary, "A (2D heat, tiled)");
  ok &= check_session(*sessions_b[0], oracle_b, tsv::make_1d3p<float>(1.0f / 3.0f),
                      total(kStepsB), opt_b.boundary, "B (1D periodic, f32)");
  ok &= check_session(*sessions_c[0], oracle_c,
                      tsv::make_3d7p(0.4, 0.1, 0.1, 0.1), total(kStepsC),
                      opt_c.boundary, "C (3D Neumann)");

  std::printf("\n");
  ok &= chaos_round();

  std::printf("%s\n", ok ? "service simulation: OK" : "service simulation: FAILED");
  return ok ? 0 : 1;
}
