// Ablation D (paper §3.4, Fig. 5(d)) — cost of tile-boundary handling in the
// tiled transpose scheme.
//
// Inside a tessellation tile the update range shrinks/expands by r cells per
// step, so partial vector sets at the rims are computed through the layout
// tsv::index map (scalar). The deeper the temporal block bt, the more rim work per
// tile round — this sweep quantifies that overhead by varying bt at a fixed
// tile size, and compares against the tessellation baseline whose kernels
// have no layout rims. bt = 1 has no shrinking at all (pure full sets).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Ablation: tile-boundary (partial vector set) overhead");

  const tsv::index nx = cfg.paper_scale ? 10240000 : storage_ladder()[3].nx;
  const tsv::index steps = cfg.paper_scale ? 1000 : 256;
  const tsv::index bx = 2048;
  CsvSink csv(cfg.csv_path, "ablation,bt,method,gflops");

  std::printf("1D heat, nx=%td, T=%td, bx=%td, %d threads\n", nx, steps, bx,
              cfg.threads);
  std::printf("%6s | %12s %12s %14s\n", "bt", "our", "our(2stp)",
              "tess-autovec");
  for (tsv::index bt : {1, 2, 8, 32, 128, 512}) {
    if (bx < 2 * bt) continue;
    tsv::Problem p{.name = "1d3p", .kind = tsv::StencilKind::k1d3p,
                   .nx = nx, .ny = 1, .nz = 1, .steps = steps,
                   .bx = bx, .by = 1, .bz = 1, .bt = bt};
    const double our = run_problem_best(p, tsv::Method::kTranspose,
                                   tsv::Tiling::kTessellate, tsv::best_isa(),
                                   cfg.threads);
    const double our2 =
        (bt % 2 == 0)
            ? run_problem_best(p, tsv::Method::kTransposeUJ,
                          tsv::Tiling::kTessellate, tsv::best_isa(),
                          cfg.threads)
            : 0.0;
    const double base = run_problem_best(p, tsv::Method::kAutoVec,
                                    tsv::Tiling::kTessellate, tsv::best_isa(),
                                    cfg.threads);
    std::printf("%6td | %12.1f %12.1f %14.1f\n", bt, our, our2, base);
    csv.row("boundary,%td,our,%.3f", bt, our);
    if (bt % 2 == 0) csv.row("boundary,%td,our2,%.3f", bt, our2);
    csv.row("boundary,%td,tess-autovec,%.3f", bt, base);
  }
  std::printf("\n(deeper bt = more rim work per tile, but more in-cache "
              "time-step reuse; the paper's Fig. 5(d) trick trades these)\n");
  return 0;
}
