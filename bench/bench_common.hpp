#pragma once
// Shared benchmark harness: size ladders derived from the detected cache
// hierarchy, timing/GFLOP/s helpers, table printing and optional CSV output.
//
// Conventions shared by every bench binary:
//   --paper-scale   use the paper's Table 1 problem sizes and step counts
//   --long          10x the time steps (paper's T=10000 variants)
//   --csv FILE      additionally append rows as CSV
//   --threads N     cap the thread count (default: all logical cores)

#include <omp.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tsv/tsv.hpp"

namespace bench {

using tsv::index;

struct Config {
  bool paper_scale = false;
  bool long_t = false;
  std::string csv_path;
  int threads = 0;

  static Config parse(int argc, char** argv) {
    Config c;
    c.threads = static_cast<int>(tsv::cpu_info().logical_cores);
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--paper-scale")) c.paper_scale = true;
      else if (!std::strcmp(argv[i], "--long")) c.long_t = true;
      else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
        c.csv_path = argv[++i];
      else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
        c.threads = std::atoi(argv[++i]);
      else if (!std::strcmp(argv[i], "--help")) {
        std::printf("flags: --paper-scale --long --csv FILE --threads N\n");
        std::exit(0);
      }
    }
    return c;
  }
};

/// Appends one CSV line (creates the file with a header if needed).
class CsvSink {
 public:
  CsvSink(const std::string& path, const std::string& header) {
    if (path.empty()) return;
    const bool fresh = std::fopen(path.c_str(), "r") == nullptr;
    f_ = std::fopen(path.c_str(), "a");
    if (f_ != nullptr && fresh) std::fprintf(f_, "%s\n", header.c_str());
  }
  ~CsvSink() {
    if (f_ != nullptr) std::fclose(f_);
  }
  template <typename... Args>
  void row(const char* fmt, Args... args) {
    if (f_ != nullptr) {
      std::fprintf(f_, fmt, args...);
      std::fprintf(f_, "\n");
    }
  }

 private:
  std::FILE* f_ = nullptr;
};

/// One rung of the working-set ladder (paper Figs. 7-8 x-axis).
struct SizeRung {
  const char* level;  ///< "L1", "L2", "L3", "Mem"
  index nx;           ///< 1D interior elements (multiple of 64)
};

/// Sizes whose two-buffer working set lands in each storage level.
inline std::vector<SizeRung> storage_ladder() {
  const auto& cpu = tsv::cpu_info();
  auto fit = [](index cap_bytes, double frac) {
    // two buffers of nx doubles; rounded down to a multiple of 64 elements
    return tsv::round_up(
               static_cast<index>(cap_bytes * frac / (2 * 8)) - 63, 64);
  };
  return {
      {"L1", fit(cpu.l1_bytes, 0.5)},
      {"L2", fit(cpu.l2_bytes, 0.5)},
      {"L3", fit(cpu.l3_bytes, 0.4)},
      {"Mem", tsv::round_up(4 * cpu.l3_bytes / 8, 64)},
  };
}

/// Times one execution; returns GFLOP/s. Plan construction (registry
/// validation, ISA/block resolution, kernel binding) happens once, outside
/// the measured region — the timer sees only Plan::execute.
template <typename Grid, typename S>
double time_run(Grid& g, const S& s, const tsv::Options& o, index points) {
  const auto plan = tsv::make_plan(tsv::shape_of(g), s, o);
  tsv::Timer t;
  plan.execute(g);
  const double sec = t.seconds();
  return 1e-9 * static_cast<double>(points) *
         static_cast<double>(o.steps) *
         static_cast<double>(s.flops_per_point) / sec;
}

inline void print_header(const char* title) {
  std::printf("## %s\n", title);
  std::printf("machine: %td cores, ISA %s, caches L1=%tdK L2=%tdK L3=%tdM\n\n",
              tsv::cpu_info().logical_cores, tsv::isa_name(tsv::best_isa()),
              tsv::cpu_info().l1_bytes / 1024, tsv::cpu_info().l2_bytes / 1024,
              tsv::cpu_info().l3_bytes / (1024 * 1024));
}

/// Pins threads deterministically; call first in every main().
inline void setup_omp() {
  setenv("OMP_PROC_BIND", "close", 0);
  setenv("OMP_PLACES", "cores", 0);
  setenv("OMP_DYNAMIC", "false", 0);
}

/// Runs one Table-1 problem with the given method/tiling/ISA/thread count and
/// returns GFLOP/s. steps_override > 0 replaces the preset step count.
inline double run_problem(const tsv::Problem& p, tsv::Method m, tsv::Tiling t,
                          tsv::Isa isa, int threads, index steps_override = 0) {
  tsv::Options o;
  o.method = m;
  o.tiling = t;
  o.isa = isa;
  o.steps = steps_override > 0 ? steps_override : p.steps;
  o.bx = p.bx;
  o.by = p.by;
  o.bz = p.bz;
  o.bt = p.bt;
  o.threads = threads;

  switch (p.kind) {
    case tsv::StencilKind::k1d3p: {
      tsv::Grid1D<double> g(p.nx, 1);
      g.fill([](index x) { return 0.3 + 1e-4 * static_cast<double>(x % 97); });
      return time_run(g, tsv::make_1d3p(1.0 / 3.0), o, p.nx);
    }
    case tsv::StencilKind::k1d5p: {
      tsv::Grid1D<double> g(p.nx, 2);
      g.fill([](index x) { return 0.3 + 1e-4 * static_cast<double>(x % 97); });
      return time_run(g, tsv::make_1d5p(), o, p.nx);
    }
    case tsv::StencilKind::k2d5p: {
      tsv::Grid2D<double> g(p.nx, p.ny, 1);
      g.fill([](index x, index y) {
        return 0.3 + 1e-4 * static_cast<double>((x + 3 * y) % 97);
      });
      return time_run(g, tsv::make_2d5p(), o, p.nx * p.ny);
    }
    case tsv::StencilKind::k2d9p: {
      tsv::Grid2D<double> g(p.nx, p.ny, 1);
      g.fill([](index x, index y) {
        return 0.3 + 1e-4 * static_cast<double>((x + 3 * y) % 97);
      });
      return time_run(g, tsv::make_2d9p(), o, p.nx * p.ny);
    }
    case tsv::StencilKind::k3d7p: {
      tsv::Grid3D<double> g(p.nx, p.ny, p.nz, 1);
      g.fill([](index x, index y, index z) {
        return 0.3 + 1e-4 * static_cast<double>((x + 3 * y + 7 * z) % 97);
      });
      return time_run(g, tsv::make_3d7p(), o, p.nx * p.ny * p.nz);
    }
    case tsv::StencilKind::k3d27p: {
      tsv::Grid3D<double> g(p.nx, p.ny, p.nz, 1);
      g.fill([](index x, index y, index z) {
        return 0.3 + 1e-4 * static_cast<double>((x + 3 * y + 7 * z) % 97);
      });
      return time_run(g, tsv::make_3d27p(), o, p.nx * p.ny * p.nz);
    }
  }
  return 0;
}

/// Best-of-N wrapper for the noisy multicore measurements: this machine is
/// virtualized, so single-shot timings vary by >2x; the maximum over a few
/// repetitions is the standard robust estimator for throughput.
inline double run_problem_best(const tsv::Problem& p, tsv::Method m,
                               tsv::Tiling t, tsv::Isa isa, int threads,
                               int reps = 3, index steps_override = 0) {
  double best = 0;
  for (int i = 0; i < reps; ++i)
    best = std::max(best, run_problem(p, m, t, isa, threads, steps_override));
  return best;
}

/// The four multicore contenders of Figs. 8-9 (paper naming).
struct Contender {
  const char* name;
  tsv::Method method;
  tsv::Tiling tiling;
};

inline const std::vector<Contender>& contenders() {
  static const std::vector<Contender> v = [] {
    std::vector<Contender> c = {
        {"SDSL", tsv::Method::kDlt, tsv::Tiling::kSplit},
        {"Tessellation", tsv::Method::kAutoVec, tsv::Tiling::kTessellate},
        {"Our", tsv::Method::kTranspose, tsv::Tiling::kTessellate},
        {"Our(2stp)", tsv::Method::kTransposeUJ, tsv::Tiling::kTessellate},
    };
    // The paper naming is fixed, but every row must be backed by a registry
    // capability — catch drift between the benches and the library here.
    for (const Contender& k : c)
      if (tsv::find_capability(k.method, k.tiling) == nullptr) {
        std::fprintf(stderr, "contender %s (%s+%s) missing from registry\n",
                     k.name, tsv::method_name(k.method),
                     tsv::tiling_name(k.tiling));
        std::abort();
      }
    return c;
  }();
  return v;
}

}  // namespace bench
