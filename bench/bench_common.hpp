#pragma once
// Shared benchmark harness: size ladders derived from the detected cache
// hierarchy, timing/GFLOP/s helpers, table printing and optional CSV/JSON
// output.
//
// Conventions shared by every bench binary:
//   --paper-scale   use the paper's Table 1 problem sizes and step counts
//   --long          10x the time steps (paper's T=10000 variants)
//   --smoke         tiny sizes + step counts (CI artifact runs: seconds, not
//                   minutes; every enabled combination still executes)
//   --csv FILE      additionally append rows as CSV
//   --json FILE     write every measurement as a JSON array (machine-readable
//                   perf trajectory; uploaded as the bench-smoke artifact)
//   --dtype D       element type sweep: f64 (default), f32, or both
//   --threads N     cap the thread count (default: all logical cores)
//   --tune MODE     block autotuning: off (default), cached, or full; every
//                   --json record carries threads/tune/resolved blocks so
//                   BENCH_*.json trajectories are self-describing
//   --nx N          replace the cache ladder with one custom rung of N
//                   elements (A/B runs at a pinned size)
//   --stream MODE   non-temporal store policy: auto (default), off, on
//   --boundary B    boundary condition on every axis: zero (default — the
//                   paper's implicit zero halo, so committed baseline
//                   numbers stay comparable), dirichlet, periodic, neumann;
//                   every fig7/table4 --json record carries the value

#include <omp.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "tsv/tsv.hpp"

namespace bench {

using tsv::index;

/// Process-wide streaming-store policy for every run_problem() plan, set by
/// Config::parse from --stream. A global (not another positional argument)
/// because every bench body already threads 8 parameters into run_problem
/// and the policy is a harness-wide A/B switch, never per-measurement.
inline tsv::StreamMode g_stream = tsv::StreamMode::kAuto;

/// Process-wide boundary condition for every run_problem() plan (same
/// rationale as g_stream). The bench default is kZero — the paper's
/// implicit zero halo — NOT the library's source-compatible kDirichlet
/// default, so the committed bench/baseline.json numbers stay comparable
/// and every record's "boundary" field is explicit.
inline tsv::BoundarySpec g_boundary =
    tsv::BoundarySpec::uniform(tsv::Boundary::kZero);

/// The uniform boundary name for JSON records ("zero", "periodic", ...).
inline const char* boundary_field_name() {
  return tsv::boundary_name(g_boundary.x);
}

struct Config {
  bool paper_scale = false;
  bool long_t = false;
  bool smoke = false;
  std::string csv_path;
  std::string json_path;
  std::vector<tsv::Dtype> dtypes = {tsv::Dtype::kF64};
  tsv::Isa isa = tsv::Isa::kAuto;  ///< pin one ISA (--isa avx2); kAuto = best
  int threads = 0;
  tsv::Tune tune = tsv::Tune::kOff;  ///< plan-time block autotuning
  index nx_override = 0;             ///< --nx: one custom ladder rung
  tsv::StreamMode stream = tsv::StreamMode::kAuto;
  tsv::BoundarySpec boundary =
      tsv::BoundarySpec::uniform(tsv::Boundary::kZero);

  static Config parse(int argc, char** argv) {
    Config c;
    c.threads = static_cast<int>(tsv::cpu_info().logical_cores);
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--paper-scale")) c.paper_scale = true;
      else if (!std::strcmp(argv[i], "--long")) c.long_t = true;
      else if (!std::strcmp(argv[i], "--smoke")) c.smoke = true;
      else if (!std::strcmp(argv[i], "--csv") && i + 1 < argc)
        c.csv_path = argv[++i];
      else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
        c.json_path = argv[++i];
      else if (!std::strcmp(argv[i], "--dtype") && i + 1 < argc) {
        const char* d = argv[++i];
        if (!std::strcmp(d, "both")) {
          c.dtypes = {tsv::Dtype::kF64, tsv::Dtype::kF32};
        } else if (auto parsed = tsv::dtype_from_name(d)) {
          c.dtypes = {*parsed};
        } else {
          std::fprintf(stderr, "unknown --dtype %s (want f64|f32|both)\n", d);
          std::exit(2);
        }
      } else if (!std::strcmp(argv[i], "--isa") && i + 1 < argc) {
        const char* a = argv[++i];
        if (auto parsed = tsv::isa_from_name(a)) {
          c.isa = *parsed;
        } else {
          std::fprintf(stderr, "unknown --isa %s\n", a);
          std::exit(2);
        }
      } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
        c.threads = std::atoi(argv[++i]);
      } else if (!std::strcmp(argv[i], "--tune") && i + 1 < argc) {
        const char* t = argv[++i];
        if (auto parsed = tsv::tune_from_name(t)) {
          c.tune = *parsed;
        } else {
          std::fprintf(stderr, "unknown --tune %s (want off|cached|full)\n",
                       t);
          std::exit(2);
        }
      } else if (!std::strcmp(argv[i], "--nx") && i + 1 < argc) {
        c.nx_override = std::atoll(argv[++i]);
      } else if (!std::strcmp(argv[i], "--stream") && i + 1 < argc) {
        const char* m = argv[++i];
        if (!std::strcmp(m, "auto")) c.stream = tsv::StreamMode::kAuto;
        else if (!std::strcmp(m, "off")) c.stream = tsv::StreamMode::kOff;
        else if (!std::strcmp(m, "on")) c.stream = tsv::StreamMode::kOn;
        else {
          std::fprintf(stderr, "unknown --stream %s (want auto|off|on)\n", m);
          std::exit(2);
        }
      } else if (!std::strcmp(argv[i], "--boundary") && i + 1 < argc) {
        const char* b = argv[++i];
        if (auto parsed = tsv::boundary_from_name(b)) {
          c.boundary = tsv::BoundarySpec::uniform(*parsed);
        } else {
          std::fprintf(stderr,
                       "unknown --boundary %s "
                       "(want zero|dirichlet|periodic|neumann)\n",
                       b);
          std::exit(2);
        }
      } else if (!std::strcmp(argv[i], "--help")) {
        std::printf(
            "flags: --paper-scale --long --smoke --csv FILE --json FILE "
            "--dtype f64|f32|both --isa auto|scalar|avx2|avx512 --threads N "
            "--tune off|cached|full --nx N --stream auto|off|on "
            "--boundary zero|dirichlet|periodic|neumann\n");
        std::exit(0);
      }
    }
    g_stream = c.stream;      // picked up by every run_problem() plan
    g_boundary = c.boundary;  // likewise
    return c;
  }
};

/// Appends one CSV line (creates the file with a header if needed).
class CsvSink {
 public:
  CsvSink(const std::string& path, const std::string& header) {
    if (path.empty()) return;
    const bool fresh = std::fopen(path.c_str(), "r") == nullptr;
    f_ = std::fopen(path.c_str(), "a");
    if (f_ != nullptr && fresh) std::fprintf(f_, "%s\n", header.c_str());
  }
  ~CsvSink() {
    if (f_ != nullptr) std::fclose(f_);
  }
  template <typename... Args>
  void row(const char* fmt, Args... args) {
    if (f_ != nullptr) {
      std::fprintf(f_, fmt, args...);
      std::fprintf(f_, "\n");
    }
  }

 private:
  std::FILE* f_ = nullptr;
};

/// Collects printf-formatted JSON objects and writes them as one JSON array
/// at destruction. Empty path = disabled. The records are flat key/value
/// objects so downstream tooling (jq, pandas) can diff runs without a schema.
class JsonSink {
 public:
  explicit JsonSink(const std::string& path) : path_(path) {}

  ~JsonSink() {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[");
    for (std::size_t i = 0; i < records_.size(); ++i)
      std::fprintf(f, "%s%s", i ? ",\n " : "\n ", records_[i].c_str());
    std::fprintf(f, "\n]\n");
    std::fclose(f);
  }

  /// record("{\"bench\":\"fig7\",...}") — caller supplies a complete object.
  template <typename... Args>
  void record(const char* fmt, Args... args) {
    if (path_.empty()) return;
    // Two-pass format: a truncated record would corrupt the JSON array far
    // from the cause (the CI jq merge), so size exactly.
    const int n = std::snprintf(nullptr, 0, fmt, args...);
    if (n < 0) {
      std::fprintf(stderr, "json: bad record format %s\n", fmt);
      std::abort();
    }
    std::string buf(static_cast<std::size_t>(n) + 1, '\0');
    std::snprintf(buf.data(), buf.size(), fmt, args...);
    buf.resize(static_cast<std::size_t>(n));
    records_.push_back(std::move(buf));
  }

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
  std::vector<std::string> records_;
};

/// One rung of the working-set ladder (paper Figs. 7-8 x-axis).
struct SizeRung {
  const char* level;  ///< "L1", "L2", "L3", "Mem"
  index nx;           ///< 1D interior elements (multiple of 256)
};

/// Sizes whose two-buffer working set lands in each storage level for
/// elements of @p dtype (half the bytes per element means twice the rung in
/// elements — the levels must stay honest for the f32 sweeps). Rounded to
/// multiples of 256 so every layout rule accepts them at every compiled
/// width and dtype (float AVX-512 needs nx % 16^2 == 0).
inline std::vector<SizeRung> storage_ladder(bool smoke = false,
                                            tsv::Dtype dtype = tsv::Dtype::kF64) {
  if (smoke)  // one tiny rung: every combination executes in milliseconds
    return {{"smoke", 4096}};
  const auto& cpu = tsv::cpu_info();
  const index esz = tsv::dtype_size(dtype);
  auto fit = [esz](index cap_bytes, double frac) {
    // two buffers of nx elements; rounded down to a multiple of 256
    return tsv::round_up(
               static_cast<index>(cap_bytes * frac / (2 * esz)) - 255, 256);
  };
  return {
      {"L1", fit(cpu.l1_bytes, 0.5)},
      {"L2", fit(cpu.l2_bytes, 0.5)},
      {"L3", fit(cpu.l3_bytes, 0.4)},
      {"Mem", tsv::round_up(4 * cpu.l3_bytes / esz, 256)},
  };
}

/// Times one execution; returns GFLOP/s. Plan construction (registry
/// validation, ISA/block resolution, kernel binding — and autotuning trials
/// when Options::tune is on) happens once, outside the measured region —
/// the timer sees only Plan::execute. @p cfg_out (optional) receives the
/// fully resolved configuration so callers can report the blocks that
/// actually ran.
template <typename Grid, typename S>
double time_run(Grid& g, const S& s, const tsv::Options& o, index points,
                tsv::ResolvedOptions* cfg_out = nullptr) {
  const auto plan = tsv::make_plan(tsv::shape_of(g), s, o);
  if (cfg_out != nullptr) *cfg_out = plan.config();
  tsv::Timer t;
  plan.execute(g);
  const double sec = t.seconds();
  return 1e-9 * static_cast<double>(points) *
         static_cast<double>(o.steps) *
         static_cast<double>(s.flops_per_point) / sec;
}

/// The harness-config fields every --json record must carry (threads, tune
/// mode, resolved blocks): formatted once here so the benches stay in sync.
inline std::string json_cfg_fields(const tsv::ResolvedOptions& r) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                ",\"threads\":%d,\"tune\":\"%s\",\"bx\":%td,\"by\":%td,"
                "\"bz\":%td,\"bt\":%td,\"streaming\":%s",
                r.threads, tsv::tune_name(r.tune), r.bx, r.by, r.bz, r.bt,
                r.streaming ? "true" : "false");
  return buf;
}

/// Grid-point updates per second for a GFLOP/s figure of the same run — the
/// dtype-fair metric (a float and a double run do the same updates/s work at
/// equal GFLOP/s, but the float run serves 2x the lanes per vector).
inline double points_per_sec(double gflops, index flops_per_point) {
  return gflops * 1e9 / static_cast<double>(flops_per_point);
}

inline void print_header(const char* title) {
  std::printf("## %s\n", title);
  std::printf("machine: %td cores, ISA %s, caches L1=%tdK L2=%tdK L3=%tdM\n\n",
              tsv::cpu_info().logical_cores, tsv::isa_name(tsv::best_isa()),
              tsv::cpu_info().l1_bytes / 1024, tsv::cpu_info().l2_bytes / 1024,
              tsv::cpu_info().l3_bytes / (1024 * 1024));
}

/// Pins threads deterministically; call first in every main().
inline void setup_omp() {
  setenv("OMP_PROC_BIND", "close", 0);
  setenv("OMP_PLACES", "cores", 0);
  setenv("OMP_DYNAMIC", "false", 0);
}

namespace detail {

template <typename T>
double run_problem_t(const tsv::Problem& p, const tsv::Options& o,
                     tsv::ResolvedOptions* cfg_out) {
  auto fill1 = [](index x) {
    return T(0.3 + 1e-4 * static_cast<double>(x % 97));
  };
  auto fill2 = [](index x, index y) {
    return T(0.3 + 1e-4 * static_cast<double>((x + 3 * y) % 97));
  };
  auto fill3 = [](index x, index y, index z) {
    return T(0.3 + 1e-4 * static_cast<double>((x + 3 * y + 7 * z) % 97));
  };
  switch (p.kind) {
    case tsv::StencilKind::k1d3p: {
      tsv::Grid1D<T> g(p.nx, 1);
      g.fill(fill1);
      return time_run(g, tsv::make_1d3p<T>(1.0 / 3.0), o, p.nx, cfg_out);
    }
    case tsv::StencilKind::k1d5p: {
      tsv::Grid1D<T> g(p.nx, 2);
      g.fill(fill1);
      return time_run(g, tsv::make_1d5p<T>(), o, p.nx, cfg_out);
    }
    case tsv::StencilKind::k2d5p: {
      tsv::Grid2D<T> g(p.nx, p.ny, 1);
      g.fill(fill2);
      return time_run(g, tsv::make_2d5p<T>(), o, p.nx * p.ny, cfg_out);
    }
    case tsv::StencilKind::k2d9p: {
      tsv::Grid2D<T> g(p.nx, p.ny, 1);
      g.fill(fill2);
      return time_run(g, tsv::make_2d9p<T>(), o, p.nx * p.ny, cfg_out);
    }
    case tsv::StencilKind::k3d7p: {
      tsv::Grid3D<T> g(p.nx, p.ny, p.nz, 1);
      g.fill(fill3);
      return time_run(g, tsv::make_3d7p<T>(), o, p.nx * p.ny * p.nz, cfg_out);
    }
    case tsv::StencilKind::k3d27p: {
      tsv::Grid3D<T> g(p.nx, p.ny, p.nz, 1);
      g.fill(fill3);
      return time_run(g, tsv::make_3d27p<T>(), o, p.nx * p.ny * p.nz, cfg_out);
    }
  }
  return 0;
}

}  // namespace detail

/// Runs one Table-1 problem with the given method/tiling/ISA/dtype/thread
/// count and returns GFLOP/s. steps_override > 0 replaces the preset steps.
inline double run_problem(const tsv::Problem& p, tsv::Method m, tsv::Tiling t,
                          tsv::Isa isa, int threads, index steps_override = 0,
                          tsv::Dtype dtype = tsv::Dtype::kF64,
                          tsv::Tune tune = tsv::Tune::kOff,
                          tsv::ResolvedOptions* cfg_out = nullptr) {
  tsv::Options o;
  o.method = m;
  o.tiling = t;
  o.isa = isa;
  o.dtype = dtype;
  o.steps = steps_override > 0 ? steps_override : p.steps;
  o.bx = p.bx;
  o.by = p.by;
  o.bz = p.bz;
  o.bt = p.bt;
  o.threads = threads;
  o.tune = tune;
  o.stream = g_stream;
  o.boundary = g_boundary;
  return dtype == tsv::Dtype::kF32
             ? detail::run_problem_t<float>(p, o, cfg_out)
             : detail::run_problem_t<double>(p, o, cfg_out);
}

/// Best-of-N wrapper for the noisy multicore measurements: this machine is
/// virtualized, so single-shot timings vary by >2x; the maximum over a few
/// repetitions is the standard robust estimator for throughput.
inline double run_problem_best(const tsv::Problem& p, tsv::Method m,
                               tsv::Tiling t, tsv::Isa isa, int threads,
                               int reps = 3, index steps_override = 0,
                               tsv::Dtype dtype = tsv::Dtype::kF64,
                               tsv::Tune tune = tsv::Tune::kOff,
                               tsv::ResolvedOptions* cfg_out = nullptr) {
  double best = 0;
  tsv::ResolvedOptions best_cfg;
  for (int i = 0; i < reps; ++i) {
    tsv::ResolvedOptions rc;
    const double gf =
        run_problem(p, m, t, isa, threads, steps_override, dtype, tune, &rc);
    // Keep the config of the rep that produced the best number: under
    // Tune::kFull each rep re-tunes and may pick different blocks, and the
    // JSON record must attribute the reported gflops to the blocks that
    // actually ran it.
    if (gf >= best || i == 0) best_cfg = rc;
    best = std::max(best, gf);
  }
  if (cfg_out != nullptr) *cfg_out = best_cfg;
  return best;
}

/// Shrinks a Table-1 problem to smoke-test scale: every (method, isa, dtype)
/// combination executes in milliseconds, block fields reset so the plan
/// resolves legal defaults at the tiny extents.
inline tsv::Problem smoke_problem(tsv::Problem p) {
  // Sizes and steps are the smallest that keep one measurement in the
  // hundreds-of-microseconds range: smoke timings feed the CI regression
  // gate, and a microsecond-scale measurement is all jitter. 8192 is a
  // multiple of 256, so every layout rule accepts it at every width/dtype.
  p.nx = p.ny > 1 ? 512 : 8192;
  if (p.ny > 1) p.ny = 32;
  if (p.nz > 1) p.nz = 8;
  p.steps = 16;
  p.bx = p.by = p.bz = p.bt = 0;
  return p;
}

/// Open-loop Poisson arrival offsets: seconds from t=0, strictly inside
/// [0, horizon_s), sorted. Implemented by inverse-CDF over raw mt19937_64
/// draws instead of std::exponential_distribution, whose algorithm the
/// standard leaves to the library — the committed baseline and the CI
/// runners must derive the SAME arrival counts from one seed regardless of
/// which standard library compiled the bench.
inline std::vector<double> poisson_arrivals(double rate_hz, double horizon_s,
                                            std::uint64_t seed) {
  std::vector<double> t;
  std::mt19937_64 rng(seed);
  double now = 0.0;
  for (;;) {
    const double u =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;  // uniform [0, 1)
    now += -std::log1p(-u) / rate_hz;                  // exponential gap
    if (now >= horizon_s) break;
    t.push_back(now);
  }
  return t;
}

/// One mixed-workload request slot (figs. 10 and 12): an independent grid
/// advancing `steps` under kTranspose. Even ids are 1D (nx elements), odd
/// ids 2D (nx/64 x 32) — both W^2-conforming for every compiled width/dtype
/// when nx is a multiple of 4096. reset() refills with an id-dependent
/// pattern, so distinct ids are distinct INPUTS (no accidental coalescing)
/// and a reused slot is restored to a known pre-run state.
struct MixSlot {
  std::unique_ptr<tsv::Grid1D<double>> g1;
  std::unique_ptr<tsv::Grid2D<double>> g2;
  tsv::StencilSpec spec;
  tsv::Options o;
  tsv::index points = 0;

  void reset(int id, tsv::index nx, tsv::index steps) {
    o = {};
    o.method = tsv::Method::kTranspose;
    o.steps = steps;
    o.boundary = g_boundary;
    o.stream = g_stream;
    if (id % 2 == 0) {
      spec.kind = tsv::StencilKind::k1d3p;
      points = nx;
      if (!g1) g1 = std::make_unique<tsv::Grid1D<double>>(nx, 1);
      g1->fill([id](tsv::index x) {
        return 0.3 + 1e-4 * static_cast<double>((x + 13 * id) % 97);
      });
    } else {
      spec.kind = tsv::StencilKind::k2d5p;
      const tsv::index ny = 32;
      points = (nx / 64) * ny;
      if (!g2) g2 = std::make_unique<tsv::Grid2D<double>>(nx / 64, ny, 1);
      g2->fill([id](tsv::index x, tsv::index y) {
        return 0.3 + 1e-4 * static_cast<double>((x + 3 * y + 13 * id) % 97);
      });
    }
  }

  /// The grid of the LAST reset() — a slot reused across parities keeps
  /// both grids alive, so the spec (not grid presence) picks the one the
  /// current configuration targets.
  tsv::Executor::GridRef grid_ref() {
    return spec.kind == tsv::StencilKind::k1d3p
               ? tsv::Executor::GridRef{g1.get()}
               : tsv::Executor::GridRef{g2.get()};
  }
};

/// The four multicore contenders of Figs. 8-9 (paper naming).
struct Contender {
  const char* name;
  tsv::Method method;
  tsv::Tiling tiling;
};

inline const std::vector<Contender>& contenders() {
  static const std::vector<Contender> v = [] {
    std::vector<Contender> c = {
        {"SDSL", tsv::Method::kDlt, tsv::Tiling::kSplit},
        {"Tessellation", tsv::Method::kAutoVec, tsv::Tiling::kTessellate},
        {"Our", tsv::Method::kTranspose, tsv::Tiling::kTessellate},
        {"Our(2stp)", tsv::Method::kTransposeUJ, tsv::Tiling::kTessellate},
    };
    // The paper naming is fixed, but every row must be backed by a registry
    // capability — catch drift between the benches and the library here.
    for (const Contender& k : c)
      if (tsv::find_capability(k.method, k.tiling) == nullptr) {
        std::fprintf(stderr, "contender %s (%s+%s) missing from registry\n",
                     k.name, tsv::method_name(k.method),
                     tsv::tiling_name(k.tiling));
        std::abort();
      }
    return c;
  }();
  return v;
}

}  // namespace bench
