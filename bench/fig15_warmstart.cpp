// Fig. 15 (companion experiment): tune-database warm start.
//
// A fleet restart with Tune::kCached re-pays every timed trial race the
// process had already won. core/tunedb.hpp persists the tuner's memo cache;
// this bench quantifies the payoff and GATES the two promises that make the
// db trustworthy:
//
//   1. Zero timed trials on warm start — counter-asserted via
//      TuneCounters::trial_executions / trial_searches staying at 0 across
//      the whole warm planning pass (not inferred from timing).
//   2. Bit-identical numerics — a warm-planned execute must reproduce the
//      cold-planned execute exactly (max_abs_diff == 0): the db hands back
//      the SAME blocks, and blocks never change results.
//   3. --min-speedup S — warm total plan time must beat cold total plan
//      time by at least S (default 1.0: warm is at least no slower).
//
// Output: one JSON record per phase (cold/warm) with plans-per-second as
// the points_per_s metric, so bench/compare_baseline.py joins and gates it
// like every other bench. All machine-varying fields are NON_IDENTITY
// (points_per_s, mean_ms, requests, speedup).

#include <unistd.h>

#include "bench_common.hpp"

namespace {

struct Flags {
  double min_speedup = 1.0;
  std::string db_path;
  bool keep_db = false;  ///< --db PATH is user-managed: left on disk so a
                         ///< later process can exercise a cross-run reload
};

Flags parse_extra(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
      f.min_speedup = std::atof(argv[++i]);
    else if (!std::strcmp(argv[i], "--db") && i + 1 < argc)
      f.db_path = argv[++i];
  }
  f.keep_db = !f.db_path.empty();
  if (f.db_path.empty())
    f.db_path = "/tmp/tsv_fig15_tunedb." +
                std::to_string(static_cast<long>(::getpid())) + ".json";
  return f;
}

/// One tuned configuration: a distinct nx is a distinct TuneKey, so K sizes
/// exercise K independent trial races cold and K db-served lookups warm.
struct Key {
  tsv::index nx;
  tsv::Grid1D<double> grid;
  explicit Key(tsv::index n) : nx(n), grid(n, 1) { refill(); }
  void refill() {
    grid.fill([](tsv::index x) {
      return 0.3 + 1e-4 * static_cast<double>(x % 97);
    });
  }
};

struct PhaseResult {
  double plan_seconds = 0;          ///< total make_plan wall time, all keys
  std::uint64_t trial_execs = 0;    ///< timed trial executions in the phase
  std::vector<tsv::Grid1D<double>> out;  ///< post-execute grids (bit compare)
};

/// Plans every key @p reps times (timed), executes each key once (untimed —
/// the executes only exist to pin the bit-identical-numerics gate).
/// plan_seconds is the PER-SWEEP total: a warm lookup is microseconds, so
/// the warm phase amortizes over many sweeps to keep the CI regression gate
/// out of clock-granularity jitter; cold must use reps == 1 because only
/// the first sweep pays trials — the rest would hit the memo.
PhaseResult plan_and_run(std::vector<Key>& keys, const tsv::Options& base,
                         int reps) {
  PhaseResult r;
  const auto spec = tsv::make_1d3p<double>(1.0 / 3.0);
  double total = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (Key& k : keys) {
      if (rep == 0) k.refill();
      tsv::Timer t;
      const auto plan = tsv::make_plan(tsv::shape_of(k.grid), spec, base);
      total += t.seconds();
      if (rep == 0) {
        plan.execute(k.grid);
        r.out.push_back(k.grid);
      }
    }
  }
  r.plan_seconds = total / reps;
  r.trial_execs = tsv::tune_counters().trial_executions;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::setup_omp();
  bench::Config cfg = bench::Config::parse(argc, argv);
  const Flags flags = parse_extra(argc, argv);
  bench::print_header("Fig. 15 companion: tune-db warm start (plan time)");

  bench::JsonSink json(cfg.json_path);
  bench::CsvSink csv(cfg.csv_path, "phase,keys,plan_ms,plans_per_s,trials");
  const char* level = cfg.smoke ? "smoke" : "full";

  // Distinct sizes (multiples of 4096: legal at every compiled width/dtype)
  // = distinct TuneKeys. Smoke keeps the cold trial races in the
  // tens-of-milliseconds range per key.
  std::vector<tsv::index> sizes =
      cfg.smoke ? std::vector<tsv::index>{4096, 8192, 12288, 16384}
                : std::vector<tsv::index>{4096,  8192,  16384, 32768,
                                          65536, 131072, 262144, 524288};
  std::vector<Key> keys;
  keys.reserve(sizes.size());
  for (tsv::index n : sizes) keys.emplace_back(n);

  tsv::Options o;
  o.method = tsv::Method::kTranspose;
  o.tiling = tsv::Tiling::kTessellate;
  o.isa = cfg.isa;
  o.steps = cfg.smoke ? 12 : 32;
  o.threads = cfg.threads;
  o.tune = tsv::Tune::kCached;
  o.stream = bench::g_stream;
  o.boundary = bench::g_boundary;

  bool ok = true;

  // ---- Cold: empty memo cache, every key pays its timed trial race. ----
  tsv::tune_cache_clear();
  tsv::tune_counters_reset();
  const PhaseResult cold = plan_and_run(keys, o, 1);
  if (cold.trial_execs == 0) {
    std::fprintf(stderr,
                 "FAIL: cold pass ran no timed trials — Tune::kCached did "
                 "not tune, warm comparison is meaningless\n");
    ok = false;
  }

  std::string err;
  if (!tsv::tune_db_save(flags.db_path, &err)) {
    std::fprintf(stderr, "FAIL: tune_db_save(%s): %s\n", flags.db_path.c_str(),
                 err.c_str());
    return 1;
  }

  // ---- Warm: fresh cache, then load the db we just saved. ----
  tsv::tune_cache_clear();
  tsv::tune_counters_reset();
  const tsv::TuneDbLoadResult load = tsv::tune_db_load(flags.db_path);
  if (!load.loaded() || load.entries < keys.size()) {
    std::fprintf(stderr, "FAIL: tune_db_load: %s (%zu entries, want >= %zu)\n",
                 tsv::tune_db_status_name(load.status), load.entries,
                 keys.size());
    ok = false;
  }
  const PhaseResult warm = plan_and_run(keys, o, 256);
  const tsv::TuneCounters wc = tsv::tune_counters();
  if (wc.trial_executions != 0 || wc.trial_searches != 0) {
    std::fprintf(stderr,
                 "FAIL: warm start ran timed trials (executions=%llu "
                 "searches=%llu) — the db did not serve the memo cache\n",
                 static_cast<unsigned long long>(wc.trial_executions),
                 static_cast<unsigned long long>(wc.trial_searches));
    ok = false;
  }
  if (wc.db_warm_hits < keys.size()) {
    std::fprintf(stderr, "FAIL: db_warm_hits=%llu, want >= %zu\n",
                 static_cast<unsigned long long>(wc.db_warm_hits),
                 keys.size());
    ok = false;
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const double diff = tsv::max_abs_diff(cold.out[i], warm.out[i]);
    if (diff != 0.0) {
      std::fprintf(stderr,
                   "FAIL: warm plan changed numerics at nx=%td "
                   "(max_abs_diff=%g)\n",
                   sizes[i], diff);
      ok = false;
    }
  }

  const double speedup = cold.plan_seconds / warm.plan_seconds;
  const std::size_t k = keys.size();
  std::printf("%-6s %4s %12s %12s %8s\n", "phase", "keys", "plan_ms",
              "plans/s", "trials");
  std::printf("%-6s %4zu %12.3f %12.1f %8llu\n", "cold", k,
              1e3 * cold.plan_seconds,
              static_cast<double>(k) / cold.plan_seconds,
              static_cast<unsigned long long>(cold.trial_execs));
  std::printf("%-6s %4zu %12.3f %12.1f %8llu\n", "warm", k,
              1e3 * warm.plan_seconds,
              static_cast<double>(k) / warm.plan_seconds,
              static_cast<unsigned long long>(wc.trial_executions));
  std::printf("\nwarm-start plan-time speedup: %.1fx (gate: >= %.2fx)\n",
              speedup, flags.min_speedup);
  if (speedup < flags.min_speedup) {
    std::fprintf(stderr, "FAIL: warm-start speedup %.2fx < --min-speedup %.2fx\n",
                 speedup, flags.min_speedup);
    ok = false;
  }

  // points_per_s carries plans-per-second so compare_baseline.py picks it up
  // with its normalized (machine-speed-corrected) gate; every varying field
  // is in its NON_IDENTITY set.
  json.record(
      "{\"bench\":\"fig15\",\"kind\":\"warmstart\",\"phase\":\"cold\","
      "\"level\":\"%s\",\"keys\":%zu,\"method\":\"transpose\","
      "\"dtype\":\"f64\",\"boundary\":\"%s\",\"points_per_s\":%.6g,"
      "\"mean_ms\":%.6g,\"requests\":%llu}",
      level, k, bench::boundary_field_name(),
      static_cast<double>(k) / cold.plan_seconds,
      1e3 * cold.plan_seconds / static_cast<double>(k),
      static_cast<unsigned long long>(cold.trial_execs));
  json.record(
      "{\"bench\":\"fig15\",\"kind\":\"warmstart\",\"phase\":\"warm\","
      "\"level\":\"%s\",\"keys\":%zu,\"method\":\"transpose\","
      "\"dtype\":\"f64\",\"boundary\":\"%s\",\"points_per_s\":%.6g,"
      "\"mean_ms\":%.6g,\"requests\":%llu,\"speedup\":%.3f}",
      level, k, bench::boundary_field_name(),
      static_cast<double>(k) / warm.plan_seconds,
      1e3 * warm.plan_seconds / static_cast<double>(k),
      static_cast<unsigned long long>(wc.trial_executions), speedup);
  csv.row("cold,%zu,%.3f,%.1f,%llu", k, 1e3 * cold.plan_seconds,
          static_cast<double>(k) / cold.plan_seconds,
          static_cast<unsigned long long>(cold.trial_execs));
  csv.row("warm,%zu,%.3f,%.1f,%llu", k, 1e3 * warm.plan_seconds,
          static_cast<double>(k) / warm.plan_seconds,
          static_cast<unsigned long long>(wc.trial_executions));

  if (!flags.keep_db) std::remove(flags.db_path.c_str());
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
