// Table 4 — average performance improvement per stencil and ISA (paper
// §4.4), plus the many-core speedup over a single core.
//
// Rows (paper): speedup over SDSL (AVX-2 columns) / over Tessellation
// (AVX-512 columns, where SDSL has no implementation) for Tessellation, Our,
// Our*; and per-method speedup of the full machine over one core.
//
// Expected shape (paper): Our* 3.52x (1D3P/AVX2) tapering to 1.76x
// (3D27P/AVX2); AVX-512 gains 1.24x-1.98x over Tessellation; near-ideal
// many-core scaling for 1D, degrading with dimension.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Table 4: average speedups per stencil and ISA");

  const int maxc = cfg.threads;
  CsvSink csv(cfg.csv_path, "table,stencil,isa,method,metric,value");

  // Registry-enumerated: every vector ISA this binary can actually run.
  for (tsv::Isa isa : tsv::runnable_isas()) {
    if (isa == tsv::Isa::kScalar) continue;  // the paper compares vector ISAs
    const char* base_name = (isa == tsv::Isa::kAvx2) ? "SDSL" : "Tessellation";
    const int base_idx = (isa == tsv::Isa::kAvx2) ? 0 : 1;
    std::printf("[%s] speedup over %s at %d cores / scaling vs 1 core\n",
                tsv::isa_name(isa), base_name, maxc);
    std::printf("  %-8s", "stencil");
    for (const auto& c : contenders()) std::printf(" %12s", c.name);
    std::printf("   | scaling:");
    for (const auto& c : contenders()) std::printf(" %10s", c.name);
    std::printf("\n");

    for (const tsv::Problem& p : tsv::table1_problems(cfg.paper_scale)) {
      double gf_max[4], gf_one[4];
      for (int k = 0; k < 4; ++k) {
        const auto& c = contenders()[k];
        gf_max[k] = run_problem_best(p, c.method, c.tiling, isa, maxc);
        gf_one[k] = run_problem_best(p, c.method, c.tiling, isa, 1);
      }
      std::printf("  %-8s", p.name.c_str());
      for (int k = 0; k < 4; ++k) {
        std::printf(" %11.2fx", gf_max[k] / gf_max[base_idx]);
        csv.row("4,%s,%s,%s,speedup,%.3f", p.name.c_str(),
                tsv::isa_name(isa), contenders()[k].name,
                gf_max[k] / gf_max[base_idx]);
      }
      std::printf("   |         ");
      for (int k = 0; k < 4; ++k) {
        std::printf(" %9.1fx", gf_max[k] / gf_one[k]);
        csv.row("4,%s,%s,%s,scaling,%.3f", p.name.c_str(),
                tsv::isa_name(isa), contenders()[k].name,
                gf_max[k] / gf_one[k]);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("(paper AVX2 Our* over SDSL: 3.52x 1D3P ... 1.76x 3D27P;\n"
              " paper AVX512 Our* over Tessellation: 1.24x-1.98x)\n");
  return 0;
}
