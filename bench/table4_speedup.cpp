// Table 4 — average performance improvement per stencil and ISA (paper
// §4.4), plus the many-core speedup over a single core, for every requested
// element type (--dtype f64|f32|both).
//
// Rows (paper): speedup over SDSL (AVX-2 columns) / over Tessellation
// (AVX-512 columns, where SDSL has no implementation) for Tessellation, Our,
// Our*; and per-method speedup of the full machine over one core.
//
// Expected shape (paper): Our* 3.52x (1D3P/AVX2) tapering to 1.76x
// (3D27P/AVX2); AVX-512 gains 1.24x-1.98x over Tessellation; near-ideal
// many-core scaling for 1D, degrading with dimension.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  setup_omp();
  const Config cfg = Config::parse(argc, argv);
  print_header("Table 4: average speedups per stencil and ISA");

  const int maxc = cfg.threads;
  CsvSink csv(cfg.csv_path, "table,stencil,isa,dtype,method,metric,value");
  JsonSink json(cfg.json_path);
  bool ok = true;

  // Registry-enumerated: every vector ISA this binary can actually run.
  for (tsv::Isa isa : tsv::runnable_isas()) {
    if (isa == tsv::Isa::kScalar) continue;  // the paper compares vector ISAs
    const char* base_name = (isa == tsv::Isa::kAvx2) ? "SDSL" : "Tessellation";
    const int base_idx = (isa == tsv::Isa::kAvx2) ? 0 : 1;
    for (tsv::Dtype dt : cfg.dtypes) {
      std::printf(
          "[%s/%s] speedup over %s at %d cores / scaling vs 1 core\n",
          tsv::isa_name(isa), tsv::dtype_name(dt), base_name, maxc);
      std::printf("  %-8s", "stencil");
      for (const auto& c : contenders()) std::printf(" %12s", c.name);
      std::printf("   | scaling:");
      for (const auto& c : contenders()) std::printf(" %10s", c.name);
      std::printf("\n");

      for (tsv::Problem p : tsv::table1_problems(cfg.paper_scale)) {
        if (cfg.smoke) p = smoke_problem(p);
        double gf_max[4], gf_one[4];
        tsv::ResolvedOptions rcfg[4];
        bool cok[4];  // per-contender: a failure must not zero its siblings
        for (int k = 0; k < 4; ++k) {
          const auto& c = contenders()[k];
          cok[k] = true;
          try {
            gf_max[k] = run_problem_best(p, c.method, c.tiling, isa, maxc, 3,
                                         0, dt, cfg.tune, &rcfg[k]);
            gf_one[k] =
                maxc == 1 ? gf_max[k]
                          : run_problem_best(p, c.method, c.tiling, isa, 1, 3,
                                             0, dt, cfg.tune);
          } catch (const std::exception& e) {
            ok = cok[k] = false;
            gf_max[k] = gf_one[k] = 0;
            std::fprintf(stderr, "table4 %s %s %s/%s failed: %s\n",
                         p.name.c_str(), c.name, tsv::isa_name(isa),
                         tsv::dtype_name(dt), e.what());
            json.record(
                "{\"bench\":\"table4\",\"stencil\":\"%s\",\"method\":\"%s\","
                "\"isa\":\"%s\",\"dtype\":\"%s\",\"boundary\":\"%s\","
                "\"error\":true}",
                p.name.c_str(), c.name, tsv::isa_name(isa),
                tsv::dtype_name(dt), boundary_field_name());
          }
        }
        // Speedups are only defined when both the contender and the
        // baseline measured; errors are marked as such in the CSV instead
        // of masquerading as a 0.000 measurement.
        std::printf("  %-8s", p.name.c_str());
        for (int k = 0; k < 4; ++k) {
          const bool valid = cok[k] && cok[base_idx] && gf_max[base_idx] > 0;
          const double speedup = valid ? gf_max[k] / gf_max[base_idx] : 0;
          if (valid)
            std::printf(" %11.2fx", speedup);
          else
            std::printf(" %12s", cok[k] ? "n/a" : "ERROR");
          csv.row("4,%s,%s,%s,%s,speedup,%s", p.name.c_str(),
                  tsv::isa_name(isa), tsv::dtype_name(dt),
                  contenders()[k].name,
                  valid ? std::to_string(speedup).c_str()
                        : (cok[k] ? "n/a" : "error"));
          if (cok[k] && valid)
            json.record(
                "{\"bench\":\"table4\",\"stencil\":\"%s\",\"method\":\"%s\","
                "\"isa\":\"%s\",\"dtype\":\"%s\",\"boundary\":\"%s\","
                "\"gflops\":%.3f,\"speedup\":%.3f%s}",
                p.name.c_str(), contenders()[k].name, tsv::isa_name(isa),
                tsv::dtype_name(dt), boundary_field_name(), gf_max[k],
                speedup, json_cfg_fields(rcfg[k]).c_str());
          else if (cok[k])  // measured, but the baseline failed: no speedup
            json.record(
                "{\"bench\":\"table4\",\"stencil\":\"%s\",\"method\":\"%s\","
                "\"isa\":\"%s\",\"dtype\":\"%s\",\"boundary\":\"%s\","
                "\"gflops\":%.3f%s}",
                p.name.c_str(), contenders()[k].name, tsv::isa_name(isa),
                tsv::dtype_name(dt), boundary_field_name(), gf_max[k],
                json_cfg_fields(rcfg[k]).c_str());
        }
        std::printf("   |         ");
        for (int k = 0; k < 4; ++k) {
          const bool valid = cok[k] && gf_one[k] > 0;
          const double scaling = valid ? gf_max[k] / gf_one[k] : 0;
          if (valid)
            std::printf(" %9.1fx", scaling);
          else
            std::printf(" %10s", cok[k] ? "n/a" : "ERROR");
          csv.row("4,%s,%s,%s,%s,scaling,%s", p.name.c_str(),
                  tsv::isa_name(isa), tsv::dtype_name(dt),
                  contenders()[k].name,
                  valid ? std::to_string(scaling).c_str()
                        : (cok[k] ? "n/a" : "error"));
        }
        std::printf("\n");
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf("(paper AVX2 Our* over SDSL: 3.52x 1D3P ... 1.76x 3D27P;\n"
              " paper AVX512 Our* over Tessellation: 1.24x-1.98x)\n");
  return ok ? 0 : 1;
}
